#include "obs/trace.h"

#include <algorithm>
#include <sstream>

namespace proxy::obs {

TraceContext SpanRecorder::Begin(const TraceContext& parent, std::string name,
                                 SimTime now) {
  if (!enabled_) return TraceContext{};
  if (spans_.size() >= capacity_) {
    dropped_++;
    return TraceContext{};
  }
  TraceContext ctx;
  ctx.trace_id = parent.active() ? parent.trace_id : NextId();
  ctx.span_id = NextId();
  ctx.parent_span_id = parent.active() ? parent.span_id : 0;
  Span span;
  span.ctx = ctx;
  span.name = std::move(name);
  span.start = now;
  by_span_id_[ctx.span_id] = spans_.size();
  spans_.push_back(std::move(span));
  return ctx;
}

void SpanRecorder::Annotate(const TraceContext& span, SimTime now,
                            std::string note) {
  if (!enabled_ || !span.active()) return;
  const auto it = by_span_id_.find(span.span_id);
  if (it == by_span_id_.end()) return;
  spans_[it->second].notes.emplace_back(now, std::move(note));
}

void SpanRecorder::End(const TraceContext& span, SimTime now,
                       const Status& status) {
  if (!enabled_ || !span.active()) return;
  const auto it = by_span_id_.find(span.span_id);
  if (it == by_span_id_.end()) return;
  Span& s = spans_[it->second];
  s.end = now;
  s.status = std::string(StatusCodeName(status.code()));
}

void SpanRecorder::Event(SimTime now, std::string text) {
  if (!enabled_) return;
  if (events_.size() >= capacity_) {
    dropped_++;
    return;
  }
  events_.emplace_back(now, std::move(text));
}

std::vector<std::uint64_t> SpanRecorder::TraceIds() const {
  std::vector<std::uint64_t> ids;
  for (const Span& s : spans_) ids.push_back(s.ctx.trace_id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

namespace {

void RenderSpan(std::ostringstream& os, const Span& span,
                const std::multimap<std::uint64_t, const Span*>& children,
                int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << "[" << span.ctx.span_id << "] " << span.name << " t="
     << FormatDuration(span.start);
  if (span.end >= span.start && !span.status.empty()) {
    os << "+" << FormatDuration(span.end - span.start) << " " << span.status;
  } else {
    os << " OPEN";
  }
  os << "\n";
  for (const auto& [t, note] : span.notes) {
    for (int i = 0; i < depth + 1; ++i) os << "  ";
    os << "@" << FormatDuration(t) << " " << note << "\n";
  }
  // Children sorted by (start, span_id): deterministic tree layout.
  std::vector<const Span*> kids;
  const auto [lo, hi] = children.equal_range(span.ctx.span_id);
  for (auto it = lo; it != hi; ++it) kids.push_back(it->second);
  std::sort(kids.begin(), kids.end(), [](const Span* a, const Span* b) {
    return a->start != b->start ? a->start < b->start
                                : a->ctx.span_id < b->ctx.span_id;
  });
  for (const Span* kid : kids) RenderSpan(os, *kid, children, depth + 1);
}

}  // namespace

std::string SpanRecorder::RenderTree(std::uint64_t trace_id) const {
  std::vector<const Span*> roots;
  std::multimap<std::uint64_t, const Span*> children;
  for (const Span& s : spans_) {
    if (s.ctx.trace_id != trace_id) continue;
    if (s.ctx.parent_span_id == 0) {
      roots.push_back(&s);
    } else {
      children.emplace(s.ctx.parent_span_id, &s);
    }
  }
  // Orphans (parent span never recorded — e.g. dropped at capacity)
  // surface as roots rather than vanishing.
  for (auto& [parent, span] : children) {
    const bool parent_known =
        by_span_id_.contains(parent) &&
        spans_[by_span_id_.at(parent)].ctx.trace_id == trace_id;
    if (!parent_known) roots.push_back(span);
  }
  std::sort(roots.begin(), roots.end(), [](const Span* a, const Span* b) {
    return a->start != b->start ? a->start < b->start
                                : a->ctx.span_id < b->ctx.span_id;
  });
  std::ostringstream os;
  os << "trace " << trace_id << "\n";
  for (const Span* root : roots) RenderSpan(os, *root, children, 1);
  return os.str();
}

std::string SpanRecorder::RenderAll() const {
  std::ostringstream os;
  for (const std::uint64_t id : TraceIds()) os << RenderTree(id);
  if (!events_.empty()) {
    os << "--- events ---\n";
    for (const auto& [t, text] : events_) {
      os << "@" << FormatDuration(t) << " " << text << "\n";
    }
  }
  if (dropped_ > 0) {
    os << "(" << dropped_ << " spans/events dropped at capacity)\n";
  }
  return os.str();
}

void SpanRecorder::Clear() {
  spans_.clear();
  by_span_id_.clear();
  events_.clear();
  dropped_ = 0;
  next_id_ = 1;
}

}  // namespace proxy::obs
