#include "obs/metrics.h"

#include <cassert>
#include <sstream>

namespace proxy::obs {

const std::vector<std::uint64_t>& DefaultLatencyBounds() {
  static const std::vector<std::uint64_t> kBounds = [] {
    std::vector<std::uint64_t> b;
    // 1-2-5 ladder, 1µs .. 100s (virtual nanoseconds).
    for (std::uint64_t decade = 1000; decade <= 100'000'000'000ULL;
         decade *= 10) {
      b.push_back(decade);
      b.push_back(decade * 2);
      b.push_back(decade * 5);
    }
    return b;
  }();
  return kBounds;
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must ascend");
}

void Histogram::Record(std::uint64_t value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())]++;
  count_++;
  sum_ += value;
  max_ = std::max(max_, value);
  min_ = std::min(min_, value);
}

std::uint64_t Histogram::Percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based; ceil without float drift.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.9999999));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Overflow bucket has no upper bound; report the observed max.
      return i < bounds_.size() ? bounds_[i] : max_;
    }
  }
  return max_;
}

void Histogram::Merge(const Histogram& other) {
  assert(bounds_ == other.bounds_ && "histogram bounds mismatch");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

void Histogram::Reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = ~0ULL;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Entry& e = entry(name);
  if (!e.owned_counter) e.owned_counter = std::make_unique<Counter>();
  return *e.owned_counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Entry& e = entry(name);
  if (!e.owned_gauge) e.owned_gauge = std::make_unique<Gauge>();
  return *e.owned_gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Entry& e = entry(name);
  if (!e.owned_histogram) e.owned_histogram = std::make_unique<Histogram>();
  return *e.owned_histogram;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  Entry& e = entry(name);
  if (!e.owned_histogram) {
    e.owned_histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.owned_histogram;
}

void MetricsRegistry::Attach(const std::string& name, const Counter* cell) {
  entry(name).counters.push_back(cell);
}
void MetricsRegistry::Attach(const std::string& name, const Gauge* cell) {
  entry(name).gauges.push_back(cell);
}
void MetricsRegistry::Attach(const std::string& name, const Histogram* cell) {
  entry(name).histograms.push_back(cell);
}

namespace {
template <typename T>
void EraseCell(std::vector<const T*>& cells, const T* cell) {
  cells.erase(std::remove(cells.begin(), cells.end(), cell), cells.end());
}
}  // namespace

void MetricsRegistry::Detach(const std::string& name, const Counter* cell) {
  Entry& e = entry(name);
  // Fold the departing tallies into the owned cell so totals never drop.
  counter(name).Inc(cell->value());
  EraseCell(e.counters, cell);
}
void MetricsRegistry::Detach(const std::string& name, const Gauge* cell) {
  EraseCell(entry(name).gauges, cell);
}
void MetricsRegistry::Detach(const std::string& name, const Histogram* cell) {
  Entry& e = entry(name);
  histogram(name, cell->bounds()).Merge(*cell);
  EraseCell(e.histograms, cell);
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSnapshot snap;
    snap.name = name;
    if (e.owned_histogram || !e.histograms.empty()) {
      snap.kind = MetricSnapshot::Kind::kHistogram;
      const std::vector<std::uint64_t>& bounds =
          e.owned_histogram ? e.owned_histogram->bounds()
                            : e.histograms.front()->bounds();
      snap.histogram = Histogram(bounds);
      if (e.owned_histogram) snap.histogram.Merge(*e.owned_histogram);
      for (const Histogram* h : e.histograms) snap.histogram.Merge(*h);
    } else if (e.owned_gauge || !e.gauges.empty()) {
      snap.kind = MetricSnapshot::Kind::kGauge;
      if (e.owned_gauge) snap.gauge += e.owned_gauge->value();
      for (const Gauge* g : e.gauges) snap.gauge += g->value();
    } else {
      snap.kind = MetricSnapshot::Kind::kCounter;
      if (e.owned_counter) snap.counter += e.owned_counter->value();
      for (const Counter* c : e.counters) snap.counter += c->value();
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string RenderHistogramLine(const Histogram& h) {
  std::ostringstream os;
  os << "count=" << h.count();
  if (h.count() == 0) return os.str();
  os << " p50=" << FormatDuration(h.Percentile(0.50))
     << " p95=" << FormatDuration(h.Percentile(0.95))
     << " p99=" << FormatDuration(h.Percentile(0.99))
     << " max=" << FormatDuration(h.max())
     << " mean=" << FormatDuration(h.sum() / h.count());
  return os.str();
}

std::string MetricsRegistry::RenderTable() const {
  std::ostringstream os;
  os << "--- metrics ---\n";
  for (const MetricSnapshot& m : Snapshot()) {
    os << m.name << " ";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << m.counter;
        break;
      case MetricSnapshot::Kind::kGauge:
        os << m.gauge;
        break;
      case MetricSnapshot::Kind::kHistogram:
        os << RenderHistogramLine(m.histogram);
        break;
    }
    os << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const MetricSnapshot& m : Snapshot()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << m.name << "\":";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        os << m.counter;
        break;
      case MetricSnapshot::Kind::kGauge:
        os << m.gauge;
        break;
      case MetricSnapshot::Kind::kHistogram: {
        const Histogram& h = m.histogram;
        os << "{\"count\":" << h.count() << ",\"sum\":" << h.sum()
           << ",\"max\":" << h.max() << ",\"p50\":" << h.Percentile(0.50)
           << ",\"p95\":" << h.Percentile(0.95)
           << ",\"p99\":" << h.Percentile(0.99) << "}";
        break;
      }
    }
  }
  os << "}";
  return os.str();
}

}  // namespace proxy::obs
