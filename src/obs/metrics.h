// Unified instrumentation: counters, gauges, latency histograms, and the
// per-Runtime MetricsRegistry that collects them.
//
// The proxy is the one place a service's distribution protocol is
// visible, which makes it the natural interception point for
// measurement — but measurement is only useful if every layer reports
// into *one* model. This module is that model:
//
//   Counter / Gauge    trivially-copy-free value cells. Components keep
//                      them inline in their stats structs (the old
//                      ad-hoc uint64 tallies, now typed), so existing
//                      accessors keep working, and *attach* them to a
//                      registry for export.
//   Histogram          fixed, deterministic bucket bounds; records a
//                      count/sum/max plus per-bucket tallies, and
//                      derives p50/p95/p99 by bucket upper-bound (no
//                      interpolation — identical across runs and
//                      platforms by construction).
//   MetricsRegistry    a name -> metric map owned per core::Runtime.
//                      Owned metrics are created on demand; external
//                      metrics (a component's inline counters) are
//                      attached by pointer and summed into the same
//                      name at export time. Export renders in sorted
//                      name order, so a seeded run prints byte-identical
//                      tables and JSON every time.
//
// Determinism rules (DESIGN.md §12): metric values are functions of the
// simulation only — virtual time, message counts — never of wall-clock
// or host state; names are stable strings; exports iterate sorted maps.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/clock.h"

namespace proxy::obs {

/// Monotonic event count. Deliberately convertible to its value so the
/// pre-existing `stats().x == 3u` test idiom keeps working unchanged.
class Counter {
 public:
  constexpr Counter() noexcept = default;

  void Inc(std::uint64_t n = 1) noexcept { value_ += n; }
  Counter& operator++() noexcept {
    ++value_;
    return *this;
  }
  void operator++(int) noexcept { ++value_; }
  Counter& operator+=(std::uint64_t n) noexcept {
    value_ += n;
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  operator std::uint64_t() const noexcept { return value_; }  // NOLINT

  friend std::ostream& operator<<(std::ostream& os, const Counter& c) {
    return os << c.value_;
  }

 private:
  std::uint64_t value_ = 0;
};

/// A value that can move both ways (queue depth, open breakers, epoch).
class Gauge {
 public:
  constexpr Gauge() noexcept = default;

  void Set(std::int64_t v) noexcept { value_ = v; }
  void Add(std::int64_t d) noexcept { value_ += d; }
  /// Monotonic high-water convenience.
  void Max(std::int64_t v) noexcept { value_ = std::max(value_, v); }

  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  operator std::int64_t() const noexcept { return value_; }  // NOLINT

  friend std::ostream& operator<<(std::ostream& os, const Gauge& g) {
    return os << g.value_;
  }

 private:
  std::int64_t value_ = 0;
};

/// The default latency bucket ladder: 1-2-5 decades from 1µs to 100s,
/// in virtual nanoseconds. Chosen once, shared by every latency metric,
/// so histograms from different layers merge and compare directly.
const std::vector<std::uint64_t>& DefaultLatencyBounds();

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds in
/// ascending order; values above the last bound land in an implicit
/// overflow bucket. Percentiles resolve to the upper bound of the bucket
/// containing the target rank (overflow reports the observed max) —
/// coarse, but exactly reproducible.
class Histogram {
 public:
  Histogram() : Histogram(DefaultLatencyBounds()) {}
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void Record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket tallies; buckets_[bounds_.size()] is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  /// Value at quantile `q` in [0,1]: the upper bound of the bucket that
  /// contains the ceil(q*count)-th observation. Returns 0 when empty.
  [[nodiscard]] std::uint64_t Percentile(double q) const noexcept;

  /// Merges `other` into this histogram. Bucket bounds must match.
  void Merge(const Histogram& other);

  void Reset() noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~0ULL;
};

/// One aggregated view of a metric at export time.
struct MetricSnapshot {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  Histogram histogram;  // kind == kHistogram only
};

/// Name -> metric registry, owned per core::Runtime. Not thread-safe —
/// the simulation is single-threaded by design.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned metrics, created on first use. References stay valid for the
  /// registry's lifetime (node-based map).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  /// Attaches a component-owned metric cell under `name`; export sums
  /// every attachment (and any owned metric) of the same name. The
  /// pointer must stay valid until detached or the registry dies;
  /// components with a shorter life than the Runtime must Detach (their
  /// tallies are folded into an owned metric so totals never regress).
  void Attach(const std::string& name, const Counter* cell);
  void Attach(const std::string& name, const Gauge* cell);
  void Attach(const std::string& name, const Histogram* cell);
  void Detach(const std::string& name, const Counter* cell);
  void Detach(const std::string& name, const Gauge* cell);
  void Detach(const std::string& name, const Histogram* cell);

  /// Aggregated snapshot, sorted by name (deterministic).
  [[nodiscard]] std::vector<MetricSnapshot> Snapshot() const;

  /// Human-readable fixed-layout table.
  [[nodiscard]] std::string RenderTable() const;

  /// Machine-readable JSON (one object, sorted keys).
  [[nodiscard]] std::string RenderJson() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_histogram;
    std::vector<const Counter*> counters;
    std::vector<const Gauge*> gauges;
    std::vector<const Histogram*> histograms;
  };

  Entry& entry(const std::string& name) { return entries_[name]; }

  std::map<std::string, Entry> entries_;  // sorted => deterministic export
};

/// Renders "count=N sum=.. p50=.. p95=.. p99=.. max=.." for one
/// histogram (durations formatted, so tables read naturally).
std::string RenderHistogramLine(const Histogram& h);

}  // namespace proxy::obs
