// Causal tracing: TraceContext on the wire, SpanRecorder in the Runtime.
//
// A TraceContext is three ids: which end-to-end operation this work
// belongs to (trace_id), which unit of work it is (span_id), and which
// unit caused it (parent_span_id). The *client proxy* mints the root
// context — the proxy is the interception point — and the ids travel in
// the request frame's v4 field, so every hop (forwarding chains, nested
// re-resolution, replication fan-out, failover retries) hangs off the
// span that caused it.
//
// The SpanRecorder is owned per core::Runtime, like the MetricsRegistry:
// ids come from one monotonic counter, so a seeded run produces the same
// ids, the same spans, and a byte-identical rendered call tree every
// replay. Recording is off by default (a span per RPC is real memory);
// tools and tests that want trees call set_enabled(true) before driving
// the workload.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace proxy::obs {

/// Wire-visible causal identity of one unit of work. All-zero means
/// "no trace": v3-and-older peers, or tracing disabled.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }

  friend bool operator==(const TraceContext& a,
                         const TraceContext& b) noexcept {
    return a.trace_id == b.trace_id && a.span_id == b.span_id &&
           a.parent_span_id == b.parent_span_id;
  }
};

/// One recorded unit of work. `end == 0` means the span never closed
/// (crashed mid-flight — itself a useful signal in the tree).
struct Span {
  TraceContext ctx;
  std::string name;
  SimTime start = 0;
  SimTime end = 0;
  std::string status;  // StatusCodeName, "OK" for success; "" while open
  std::vector<std::pair<SimTime, std::string>> notes;
};

/// Collects spans and rebuilds call trees. Owned per Runtime; not
/// thread-safe (the simulation is single-threaded).
class SpanRecorder {
 public:
  SpanRecorder() = default;
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Recording toggle. While disabled, Begin returns an inactive context
  /// and nothing is stored — callers need no branches of their own.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Bounds memory: once `capacity` spans exist, further Begins return
  /// inactive contexts (counted in dropped()).
  void set_capacity(std::size_t capacity) noexcept { capacity_ = capacity; }

  /// Opens a span named `name` at `now`: a child of `parent` when the
  /// parent is active, otherwise the root of a fresh trace.
  TraceContext Begin(const TraceContext& parent, std::string name,
                     SimTime now);

  /// Appends a timestamped note to the span (rebinds, fencing, epoch
  /// bumps — the protocol events a latency number cannot show).
  void Annotate(const TraceContext& span, SimTime now, std::string note);

  /// Closes the span with the outcome's code name.
  void End(const TraceContext& span, SimTime now, const Status& status);

  /// Global protocol event outside any call (promotions fired by
  /// timers, lease expiry): lands in the event log rendered with every
  /// trace dump.
  void Event(SimTime now, std::string text);

  [[nodiscard]] std::size_t span_count() const noexcept {
    return spans_.size();
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// All trace ids seen, ascending.
  [[nodiscard]] std::vector<std::uint64_t> TraceIds() const;

  /// The indented call tree of one trace — children ordered by
  /// (start, span_id), notes inline. Byte-identical across replays of
  /// the same seed.
  [[nodiscard]] std::string RenderTree(std::uint64_t trace_id) const;

  /// Every tree (ascending trace id) plus the global event log.
  [[nodiscard]] std::string RenderAll() const;

  void Clear();

 private:
  std::uint64_t NextId() noexcept { return next_id_++; }

  bool enabled_ = false;
  std::size_t capacity_ = 1 << 16;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
  std::unordered_map<std::uint64_t, std::size_t> by_span_id_;
  std::vector<std::pair<SimTime, std::string>> events_;
};

}  // namespace proxy::obs
