#include "common/rng.h"

#include <cmath>

namespace proxy {

namespace {

constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

std::uint64_t Rng::NextU64() noexcept {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(UniformU64(span));
}

double Rng::UniformDouble() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) noexcept {
  // Inverse CDF; clamp u away from 0 so log() stays finite.
  double u = UniformDouble();
  if (u < 1e-12) u = 1e-12;
  return -mean * std::log(u);
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double skew, std::uint64_t seed)
    : n_(n == 0 ? 1 : n), skew_(skew), rng_(seed), cdf_(n_) {
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n_; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew_);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::uint64_t ZipfGenerator::Next() noexcept {
  const double u = rng_.UniformDouble();
  // Binary search the CDF.
  std::uint64_t lo = 0;
  std::uint64_t hi = n_ - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace proxy
