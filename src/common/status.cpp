#include "common/status.h"

namespace proxy {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kCorrupt: return "CORRUPT";
    case StatusCode::kObjectMoved: return "OBJECT_MOVED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kFenced: return "FENCED";
    case StatusCode::kWrongShard: return "WRONG_SHARD";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status TimeoutError(std::string msg) {
  return {StatusCode::kTimeout, std::move(msg)};
}
Status UnavailableError(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
Status NotFoundError(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
Status AlreadyExistsError(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
Status PermissionDeniedError(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
Status InvalidArgumentError(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
Status CorruptError(std::string msg) {
  return {StatusCode::kCorrupt, std::move(msg)};
}
Status ObjectMovedError(std::string msg) {
  return {StatusCode::kObjectMoved, std::move(msg)};
}
Status CancelledError(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
Status ResourceExhaustedError(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
Status FailedPreconditionError(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
Status InternalError(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
Status FencedError(std::string msg) {
  return {StatusCode::kFenced, std::move(msg)};
}
Status WrongShardError(std::string msg) {
  return {StatusCode::kWrongShard, std::move(msg)};
}

}  // namespace proxy
