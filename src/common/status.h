// Error model for the proxy runtime.
//
// Expected failures (the network dropped a packet, a name is unbound, a
// capability was revoked) travel as Status / Result<T> values; exceptions
// are reserved for programmer error (contract violations), per the
// project's design rules.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace proxy {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kTimeout,            // call or lease deadline expired
  kUnavailable,        // endpoint unreachable / partitioned
  kNotFound,           // name, object, or method does not exist
  kAlreadyExists,      // bind/export collision
  kPermissionDenied,   // capability missing or revoked
  kInvalidArgument,    // malformed request visible at the API boundary
  kCorrupt,            // wire data failed to decode
  kObjectMoved,        // target migrated; payload carries forwarding hint
  kCancelled,          // caller or runtime cancelled the operation
  kResourceExhausted,  // queue full, message too large, etc.
  kFailedPrecondition, // valid request in the wrong state (e.g. lock not held)
  kInternal,           // invariant violation reported instead of aborting
  kFenced,             // request carried a stale replication epoch
  kWrongShard,         // key routed to a group that does not own its shard
};

/// Human-readable, stable name of a code ("TIMEOUT", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A status is a code plus an optional diagnostic message. The OK status
/// carries no message and is cheap to copy.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  explicit Status(StatusCode code) : code_(code) {}

  static Status Ok() noexcept { return Status(); }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "TIMEOUT: no reply after 3 retries" — for logs and test failures.
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Convenience constructors mirroring the code enum.
Status TimeoutError(std::string msg);
Status UnavailableError(std::string msg);
Status NotFoundError(std::string msg);
Status AlreadyExistsError(std::string msg);
Status PermissionDeniedError(std::string msg);
Status InvalidArgumentError(std::string msg);
Status CorruptError(std::string msg);
Status ObjectMovedError(std::string msg);
Status CancelledError(std::string msg);
Status ResourceExhaustedError(std::string msg);
Status FailedPreconditionError(std::string msg);
Status InternalError(std::string msg);
Status FencedError(std::string msg);
Status WrongShardError(std::string msg);

/// Result<T> is either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}              // NOLINT(implicit)
  Result(Status status) : rep_(std::move(status)) {        // NOLINT(implicit)
    // A Result must not hold an OK status without a value; promote the
    // misuse to a visible error instead of silently looking "ok".
    if (std::get<Status>(rep_).ok()) {
      rep_ = InternalError("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(rep_);
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  [[nodiscard]] const T& value() const& { return std::get<T>(rep_); }
  [[nodiscard]] T& value() & { return std::get<T>(rep_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(rep_)); }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// value() if ok, otherwise `fallback`.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? value() : std::move(fallback);
  }

  /// Applies `fn` to the value, propagating errors unchanged.
  template <typename Fn>
  auto map(Fn&& fn) && -> Result<decltype(fn(std::declval<T&&>()))> {
    if (!ok()) return status();
    return fn(std::get<T>(std::move(rep_)));
  }

 private:
  std::variant<Status, T> rep_;
};

/// Propagate a non-OK status out of the current function.
#define PROXY_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::proxy::Status _st = (expr);                     \
    if (!_st.ok()) return _st;                        \
  } while (false)

/// Evaluate a Result<T> expression; bind the value or return the error.
#define PROXY_ASSIGN_OR_RETURN(lhs, expr)             \
  PROXY_ASSIGN_OR_RETURN_IMPL_(                       \
      PROXY_STATUS_CONCAT_(_res, __LINE__), lhs, expr)
#define PROXY_STATUS_CONCAT_INNER_(a, b) a##b
#define PROXY_STATUS_CONCAT_(a, b) PROXY_STATUS_CONCAT_INNER_(a, b)
#define PROXY_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace proxy
