// Virtual time units. All time in the runtime is simulated; these types
// keep nanosecond integers from mixing with wall-clock values.
#pragma once

#include <cstdint>
#include <string>

namespace proxy {

/// Nanoseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of simulated time, in nanoseconds.
using SimDuration = std::uint64_t;

constexpr SimDuration Nanoseconds(std::uint64_t n) noexcept { return n; }
constexpr SimDuration Microseconds(std::uint64_t n) noexcept {
  return n * 1000ULL;
}
constexpr SimDuration Milliseconds(std::uint64_t n) noexcept {
  return n * 1000'000ULL;
}
constexpr SimDuration Seconds(std::uint64_t n) noexcept {
  return n * 1000'000'000ULL;
}

constexpr double ToMicros(SimDuration d) noexcept {
  return static_cast<double>(d) / 1e3;
}
constexpr double ToMillis(SimDuration d) noexcept {
  return static_cast<double>(d) / 1e6;
}
constexpr double ToSeconds(SimDuration d) noexcept {
  return static_cast<double>(d) / 1e9;
}

/// "12.345ms" style rendering for traces and bench tables.
std::string FormatDuration(SimDuration d);

}  // namespace proxy
