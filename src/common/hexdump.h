// Debug rendering of byte buffers, used by traces and decode-failure
// diagnostics.
#pragma once

#include <string>

#include "common/bytes.h"

namespace proxy {

/// "0000: 0a 0b 0c ... |...|" classic hexdump, at most `max_bytes` shown.
std::string HexDump(BytesView bytes, std::size_t max_bytes = 256);

/// Compact single-line form: "0a0b0c0d" truncated with "…".
std::string HexString(BytesView bytes, std::size_t max_bytes = 32);

}  // namespace proxy
