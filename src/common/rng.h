// Deterministic randomness.
//
// Every stochastic decision in the runtime (link jitter, packet loss,
// object-id minting, workload generation) draws from a seeded generator
// owned by its component, so any run is replayable from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace proxy {

/// SplitMix64: used to expand a single user seed into independent
/// sub-seeds for each component.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t NextU64() noexcept;

  /// Uniform in [0, bound), bias-free via rejection.
  std::uint64_t UniformU64(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double UniformDouble() noexcept;

  /// Bernoulli trial with probability p of true.
  bool Chance(double p) noexcept;

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean) noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks in [0, n). Popular ranks are small. Used by
/// workload generators (key popularity in the caching experiments).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double skew, std::uint64_t seed);

  /// Draws a rank in [0, n).
  std::uint64_t Next() noexcept;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double skew() const noexcept { return skew_; }

 private:
  std::uint64_t n_;
  double skew_;
  Rng rng_;
  std::vector<double> cdf_;  // cumulative probabilities, size n
};

}  // namespace proxy
