#include "common/id.h"

#include <cstdio>

namespace proxy {

std::string ObjectId::ToString() const {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%016llx-%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

}  // namespace proxy
