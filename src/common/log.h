// Minimal leveled logger.
//
// Logging defaults to off (kNone) so tests and benches stay quiet and
// deterministic; examples turn it up to narrate what the runtime does.
// Messages carry the simulated timestamp supplied by the caller, never
// wall-clock time.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#include "common/clock.h"

namespace proxy {

enum class LogLevel : std::uint8_t {
  kNone = 0,
  kError,
  kInfo,
  kDebug,
  kTrace,
};

/// Process-wide log configuration. A sink receives fully formatted lines;
/// the default sink writes to stderr.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void SetLevel(LogLevel level) noexcept;
  static LogLevel Level() noexcept;

  /// Replaces the sink; pass nullptr to restore the stderr sink.
  static void SetSink(Sink sink);

  /// Emits one line if `level` is enabled. `now` is simulated time.
  static void Write(LogLevel level, SimTime now, std::string_view component,
                    const std::string& message);

  [[nodiscard]] static bool Enabled(LogLevel level) noexcept {
    return static_cast<int>(level) <= static_cast<int>(Log::Level());
  }
};

// Stream-style macros: PROXY_LOG(kDebug, now, "net", "sent " << n << "B");
#define PROXY_LOG(level, now, component, expr)                          \
  do {                                                                  \
    if (::proxy::Log::Enabled(::proxy::LogLevel::level)) {              \
      std::ostringstream _oss;                                          \
      _oss << expr; /* NOLINT */                                        \
      ::proxy::Log::Write(::proxy::LogLevel::level, (now), (component), \
                          _oss.str());                                  \
    }                                                                   \
  } while (false)

}  // namespace proxy
