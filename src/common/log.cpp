#include "common/log.h"

#include <cstdio>
#include <utility>

namespace proxy {

namespace {

LogLevel g_level = LogLevel::kNone;
Log::Sink g_sink;  // empty => stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kNone: return "NONE";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
  }
  return "?";
}

}  // namespace

void Log::SetLevel(LogLevel level) noexcept { g_level = level; }

LogLevel Log::Level() noexcept { return g_level; }

void Log::SetSink(Sink sink) { g_sink = std::move(sink); }

void Log::Write(LogLevel level, SimTime now, std::string_view component,
                const std::string& message) {
  if (!Enabled(level)) return;
  std::string line;
  line.reserve(message.size() + 48);
  line += '[';
  line += FormatDuration(now);
  line += "] ";
  line += LevelName(level);
  line += ' ';
  line += component;
  line += ": ";
  line += message;
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

std::string FormatDuration(SimDuration d) {
  char buf[32];
  if (d < 1000ULL) {
    std::snprintf(buf, sizeof buf, "%lluns", static_cast<unsigned long long>(d));
  } else if (d < 1000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.3fus", ToMicros(d));
  } else if (d < 1000'000'000ULL) {
    std::snprintf(buf, sizeof buf, "%.3fms", ToMillis(d));
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", ToSeconds(d));
  }
  return buf;
}

}  // namespace proxy
