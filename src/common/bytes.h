// Byte-buffer aliases shared by the wire format, transport, and RPC layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace proxy {

/// Owned, contiguous byte buffer. The runtime moves these between layers;
/// copies are explicit.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over immutable bytes.
using BytesView = std::span<const std::uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline BytesView View(const Bytes& b) noexcept {
  return BytesView(b.data(), b.size());
}

}  // namespace proxy
