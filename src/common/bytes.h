// Byte-buffer aliases shared by the wire format, transport, and RPC layers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace proxy {

/// Owned, contiguous byte buffer. The runtime moves these between layers;
/// copies are explicit.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over immutable bytes.
using BytesView = std::span<const std::uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline BytesView View(const Bytes& b) noexcept {
  return BytesView(b.data(), b.size());
}

/// An owned arrival buffer plus the window of it the current layer may
/// read. Layers peel framing by narrowing the window instead of copying
/// the remainder: the transport strips its envelope, RPC decode borrows
/// `args` straight out of the window, and the buffer itself rides along
/// as the arena that keeps every borrowed view alive. Move-only, like
/// the paper's "one owner per message" discipline — copies are explicit
/// via ToBytes().
class OwnedBytes {
 public:
  OwnedBytes() = default;
  explicit OwnedBytes(Bytes buf)
      : buf_(std::move(buf)), off_(0), len_(buf_.size()) {}

  OwnedBytes(OwnedBytes&&) noexcept = default;
  OwnedBytes& operator=(OwnedBytes&&) noexcept = default;
  OwnedBytes(const OwnedBytes&) = delete;
  OwnedBytes& operator=(const OwnedBytes&) = delete;

  /// The readable window. Views derived from it stay valid for the
  /// lifetime of this OwnedBytes (vector moves keep the heap block).
  [[nodiscard]] BytesView view() const noexcept {
    return BytesView(buf_.data() + off_, len_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }
  [[nodiscard]] bool empty() const noexcept { return len_ == 0; }

  /// Shrinks the window to `sub`, which must point into view() — the
  /// zero-copy "strip this layer's header" step.
  void Narrow(BytesView sub) noexcept {
    off_ = static_cast<std::size_t>(sub.data() - buf_.data());
    len_ = sub.size();
  }

  /// Explicit copy of the window into a standalone buffer.
  [[nodiscard]] Bytes ToBytes() const {
    const BytesView v = view();
    return Bytes(v.begin(), v.end());
  }

 private:
  Bytes buf_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

}  // namespace proxy
