#include "common/hexdump.h"

#include <cctype>
#include <cstdio>

namespace proxy {

std::string HexDump(BytesView bytes, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = std::min(bytes.size(), max_bytes);
  for (std::size_t row = 0; row < n; row += 16) {
    char head[24];
    std::snprintf(head, sizeof head, "%04zx: ", row);
    out += head;
    std::string ascii;
    for (std::size_t i = row; i < row + 16; ++i) {
      if (i < n) {
        char hex[4];
        std::snprintf(hex, sizeof hex, "%02x ", bytes[i]);
        out += hex;
        ascii += std::isprint(bytes[i]) ? static_cast<char>(bytes[i]) : '.';
      } else {
        out += "   ";
      }
    }
    out += '|';
    out += ascii;
    out += "|\n";
  }
  if (bytes.size() > max_bytes) {
    out += "… (";
    out += std::to_string(bytes.size() - max_bytes);
    out += " more bytes)\n";
  }
  return out;
}

std::string HexString(BytesView bytes, std::size_t max_bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  const std::size_t n = std::min(bytes.size(), max_bytes);
  out.reserve(n * 2 + 4);
  for (std::size_t i = 0; i < n; ++i) {
    out += kHex[bytes[i] >> 4];
    out += kHex[bytes[i] & 0xf];
  }
  if (bytes.size() > max_bytes) out += "…";
  return out;
}

}  // namespace proxy
