// Strongly-typed identifiers used across the runtime.
//
// Each id wraps an integer but is a distinct type, so a NodeId cannot be
// passed where a PortId is expected. ObjectId is 128-bit and sparse: it is
// drawn from a seeded generator and acts as the *unforgeable reference*
// of the proxy principle — a context only honours ids present in its
// capability table, and the space is too sparse to guess.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace proxy {

namespace detail {

template <typename Tag, typename Rep>
class StrongId {
 public:
  constexpr StrongId() noexcept = default;
  constexpr explicit StrongId(Rep value) noexcept : value_(value) {}

  [[nodiscard]] constexpr Rep value() const noexcept { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) noexcept {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) noexcept {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) noexcept {
    return a.value_ < b.value_;
  }

 private:
  Rep value_ = 0;
};

}  // namespace detail

/// A machine in the simulated distributed system.
using NodeId = detail::StrongId<struct NodeTag, std::uint32_t>;

/// A message queue endpoint within a node.
using PortId = detail::StrongId<struct PortTag, std::uint32_t>;

/// A protection domain (address space) within a node.
using ContextId = detail::StrongId<struct ContextTag, std::uint32_t>;

/// An interface (abstract type) identity; hash of its registered name.
using InterfaceId = detail::StrongId<struct InterfaceTag, std::uint64_t>;

/// 128-bit sparse object identity. Unforgeable by construction: minted
/// only by the context that owns the object.
struct ObjectId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] constexpr bool IsNil() const noexcept {
    return hi == 0 && lo == 0;
  }

  friend constexpr bool operator==(const ObjectId& a,
                                   const ObjectId& b) noexcept {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend constexpr bool operator!=(const ObjectId& a,
                                   const ObjectId& b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(const ObjectId& a,
                                  const ObjectId& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  [[nodiscard]] std::string ToString() const;
};

/// FNV-1a over an interface name; used to derive InterfaceId at compile
/// time from the registered interface string.
constexpr std::uint64_t Fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr InterfaceId InterfaceIdOf(std::string_view name) noexcept {
  return InterfaceId(Fnv1a(name));
}

}  // namespace proxy

namespace std {

template <>
struct hash<proxy::ObjectId> {
  size_t operator()(const proxy::ObjectId& id) const noexcept {
    // The id is already uniformly random; fold the halves.
    return static_cast<size_t>(id.hi ^ (id.lo * 0x9e3779b97f4a7c15ULL));
  }
};

template <>
struct hash<proxy::NodeId> {
  size_t operator()(proxy::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct hash<proxy::PortId> {
  size_t operator()(proxy::PortId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct hash<proxy::ContextId> {
  size_t operator()(proxy::ContextId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct hash<proxy::InterfaceId> {
  size_t operator()(proxy::InterfaceId id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};

}  // namespace std
