// Name service wire protocol.
//
// The name space is hierarchical: a record is either a service binding
// (leaf) or a directory referral to another name server (interior node),
// so name servers federate — resolving "a/b/svc" may hop across several
// servers. Records may carry a lease; expired records vanish.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/binding.h"
#include "net/address.h"
#include "serde/traits.h"

namespace proxy::naming {

/// The bootstrap object id of every name server: the one well-known
/// capability in the system (everything else is obtained by lookup).
inline constexpr ObjectId kNameServiceObject{0x626f6f74ULL, 0x6e616d65ULL};

/// Conventional port a name server listens on.
inline constexpr PortId kNameServicePort{100};

enum class RecordKind : std::uint8_t {
  kService = 1,    // leaf: a service binding
  kDirectory = 2,  // referral to another name server
};

struct NameRecord {
  RecordKind kind = RecordKind::kService;
  core::ServiceBinding binding;     // valid when kind == kService
  net::Address directory_server;    // valid when kind == kDirectory
  std::uint64_t lease_ns = 0;       // 0 = no expiry; else TTL at register

  PROXY_SERDE_FIELDS(kind, binding, directory_server, lease_ns)
};

enum Method : std::uint32_t {
  kRegister = 1,
  kLookup = 2,
  kUnregister = 3,
  kList = 4,
};

struct RegisterRequest {
  std::string name;  // single path segment (no '/')
  NameRecord record;
  bool overwrite = false;
  PROXY_SERDE_FIELDS(name, record, overwrite)
};

struct LookupRequest {
  std::string name;
  PROXY_SERDE_FIELDS(name)
};

struct LookupResponse {
  NameRecord record;
  PROXY_SERDE_FIELDS(record)
};

struct UnregisterRequest {
  std::string name;
  PROXY_SERDE_FIELDS(name)
};

struct ListRequest {
  std::string prefix;
  PROXY_SERDE_FIELDS(prefix)
};

struct ListResponse {
  std::vector<std::pair<std::string, NameRecord>> entries;
  PROXY_SERDE_FIELDS(entries)
};

}  // namespace proxy::naming
