// Name server: the directory service of the runtime.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "naming/protocol.h"
#include "rpc/server.h"
#include "rpc/stub.h"

namespace proxy::naming {

class NameServer {
 public:
  /// Exports the name service on `server` under kNameServiceObject.
  explicit NameServer(rpc::RpcServer& server);

  NameServer(const NameServer&) = delete;
  NameServer& operator=(const NameServer&) = delete;

  /// Direct (in-process) registration, used when wiring a topology up
  /// before any client can speak RPC.
  Status RegisterDirect(const std::string& name, NameRecord record,
                        bool overwrite = false);

  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_.size();
  }

 private:
  struct Entry {
    NameRecord record;
    SimTime expires_at = 0;  // 0 = never
  };

  /// Drops `name` if its lease expired; returns true if still live.
  bool Sweep(const std::string& name);

  sim::Co<Result<rpc::Void>> HandleRegister(RegisterRequest req);
  sim::Co<Result<LookupResponse>> HandleLookup(LookupRequest req);
  sim::Co<Result<rpc::Void>> HandleUnregister(UnregisterRequest req);
  sim::Co<Result<ListResponse>> HandleList(ListRequest req);

  rpc::RpcServer* server_;
  std::shared_ptr<rpc::Dispatch> dispatch_;
  std::map<std::string, Entry> records_;
};

}  // namespace proxy::naming
