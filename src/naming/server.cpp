#include "naming/server.h"

#include "rpc/stub.h"

namespace proxy::naming {

NameServer::NameServer(rpc::RpcServer& server)
    : server_(&server), dispatch_(std::make_shared<rpc::Dispatch>()) {
  rpc::RegisterTyped<RegisterRequest, rpc::Void>(
      *dispatch_, Method::kRegister,
      [this](RegisterRequest req, const rpc::CallContext&) {
        return HandleRegister(std::move(req));
      });
  rpc::RegisterTyped<LookupRequest, LookupResponse>(
      *dispatch_, Method::kLookup,
      [this](LookupRequest req, const rpc::CallContext&) {
        return HandleLookup(std::move(req));
      });
  rpc::RegisterTyped<UnregisterRequest, rpc::Void>(
      *dispatch_, Method::kUnregister,
      [this](UnregisterRequest req, const rpc::CallContext&) {
        return HandleUnregister(std::move(req));
      });
  rpc::RegisterTyped<ListRequest, ListResponse>(
      *dispatch_, Method::kList,
      [this](ListRequest req, const rpc::CallContext&) {
        return HandleList(std::move(req));
      });
  // The bootstrap capability: the only well-known object in the system.
  (void)server_->ExportObject(kNameServiceObject, dispatch_);
}

Status NameServer::RegisterDirect(const std::string& name, NameRecord record,
                                  bool overwrite) {
  if (name.empty()) {
    return InvalidArgumentError("record name must not be empty");
  }
  if (!overwrite && records_.contains(name) && Sweep(name)) {
    return AlreadyExistsError("name already bound: " + name);
  }
  Entry entry;
  entry.expires_at = record.lease_ns == 0
                         ? 0
                         : server_->scheduler().now() + record.lease_ns;
  entry.record = std::move(record);
  records_[name] = std::move(entry);
  return Status::Ok();
}

bool NameServer::Sweep(const std::string& name) {
  const auto it = records_.find(name);
  if (it == records_.end()) return false;
  if (it->second.expires_at != 0 &&
      it->second.expires_at <= server_->scheduler().now()) {
    records_.erase(it);
    return false;
  }
  return true;
}

sim::Co<Result<rpc::Void>> NameServer::HandleRegister(RegisterRequest req) {
  const Status st = RegisterDirect(req.name, std::move(req.record),
                                   req.overwrite);
  if (!st.ok()) co_return st;
  co_return rpc::Void{};
}

sim::Co<Result<LookupResponse>> NameServer::HandleLookup(LookupRequest req) {
  if (!Sweep(req.name)) {
    co_return NotFoundError("unbound name: " + req.name);
  }
  co_return LookupResponse{records_.at(req.name).record};
}

sim::Co<Result<rpc::Void>> NameServer::HandleUnregister(UnregisterRequest req) {
  if (records_.erase(req.name) == 0) {
    co_return NotFoundError("unbound name: " + req.name);
  }
  co_return rpc::Void{};
}

sim::Co<Result<ListResponse>> NameServer::HandleList(ListRequest req) {
  ListResponse resp;
  // Expired entries are skipped but only erased by their own lookups, so
  // listing stays iterator-safe.
  const SimTime now = server_->scheduler().now();
  for (const auto& [name, entry] : records_) {
    if (name.compare(0, req.prefix.size(), req.prefix) != 0) continue;
    if (entry.expires_at != 0 && entry.expires_at <= now) continue;
    resp.entries.emplace_back(name, entry.record);
  }
  co_return resp;
}

}  // namespace proxy::naming
