// Name service clients.
//
// NameClient is the plain stub. CachingNameClient is the same interface
// *as a proxy*: it keeps a TTL'd local cache of lookups, illustrating the
// proxy principle applied to the name service itself (experiment F4
// measures the difference).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "naming/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/stub.h"

namespace proxy::naming {

class NameClient : public rpc::StubBase {
 public:
  NameClient(rpc::RpcClient& client, net::Address name_server)
      : rpc::StubBase(client, name_server, kNameServiceObject) {}

  sim::Co<Result<rpc::Void>> Register(std::string name, NameRecord record,
                                      bool overwrite = false);
  sim::Co<Result<NameRecord>> Lookup(std::string name);
  sim::Co<Result<rpc::Void>> Unregister(std::string name);
  sim::Co<Result<std::vector<std::pair<std::string, NameRecord>>>> List(
      std::string prefix);

  /// Resolves a '/'-separated path, following directory referrals across
  /// federated name servers. At most `max_hops` referrals. When `trace`
  /// is active, every lookup of the walk carries it — nested
  /// re-resolution shows up as children in the caller's span tree.
  sim::Co<Result<core::ServiceBinding>> ResolvePath(
      std::string path, int max_hops = 16, obs::TraceContext trace = {});

  /// Convenience: registers a service-binding leaf record.
  sim::Co<Result<rpc::Void>> RegisterService(std::string name,
                                             core::ServiceBinding binding,
                                             std::uint64_t lease_ns = 0);
};

/// Caching proxy over the name service. Positive lookups are cached for
/// `ttl`; entries are dropped eagerly when a consumer reports a stale
/// binding (Invalidate).
class CachingNameClient {
 public:
  CachingNameClient(rpc::RpcClient& client, net::Address name_server,
                    SimDuration ttl = Seconds(10))
      : inner_(client, name_server), ttl_(ttl),
        scheduler_(&client.scheduler()) {}

  sim::Co<Result<core::ServiceBinding>> ResolvePath(
      std::string path, obs::TraceContext trace = {});

  /// Drops a cached path (on OBJECT_MOVED / UNAVAILABLE, callers should
  /// invalidate and re-resolve).
  void Invalidate(const std::string& path) { cache_.erase(path); }

  void Clear() { cache_.clear(); }

  /// Attaches the cache tallies to `registry` as naming.cache.*.
  void BindMetrics(obs::MetricsRegistry& registry) {
    registry.Attach("naming.cache.hits", &hits_);
    registry.Attach("naming.cache.misses", &misses_);
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  [[nodiscard]] NameClient& inner() noexcept { return inner_; }

 private:
  struct CacheEntry {
    core::ServiceBinding binding;
    SimTime expires_at = 0;
  };

  NameClient inner_;
  SimDuration ttl_;
  sim::Scheduler* scheduler_;
  std::unordered_map<std::string, CacheEntry> cache_;
  obs::Counter hits_;
  obs::Counter misses_;
};

}  // namespace proxy::naming
