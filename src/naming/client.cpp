#include "naming/client.h"

namespace proxy::naming {

sim::Co<Result<rpc::Void>> NameClient::Register(std::string name,
                                                NameRecord record,
                                                bool overwrite) {
  RegisterRequest req{std::move(name), std::move(record), overwrite};
  co_return co_await TypedCall<rpc::Void>(Method::kRegister, std::move(req));
}

sim::Co<Result<NameRecord>> NameClient::Lookup(std::string name) {
  LookupRequest req{std::move(name)};  // named: see stub.h "GCC note"
  Result<LookupResponse> resp =
      co_await TypedCall<LookupResponse>(Method::kLookup, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->record);
}

sim::Co<Result<rpc::Void>> NameClient::Unregister(std::string name) {
  UnregisterRequest req{std::move(name)};
  co_return co_await TypedCall<rpc::Void>(Method::kUnregister, std::move(req));
}

sim::Co<Result<std::vector<std::pair<std::string, NameRecord>>>>
NameClient::List(std::string prefix) {
  ListRequest req{std::move(prefix)};
  Result<ListResponse> resp =
      co_await TypedCall<ListResponse>(Method::kList, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->entries);
}

sim::Co<Result<core::ServiceBinding>> NameClient::ResolvePath(
    std::string path, int max_hops, obs::TraceContext trace) {
  // Walk the path, hopping servers at directory referrals. A server may
  // store names containing '/' directly, so at each hop the whole
  // remaining path is tried as one record first; only on a miss is it
  // split at the first '/' into (directory, rest). The walk uses a
  // scratch stub so this client's own binding is untouched.
  NameClient cursor(client(), server());
  rpc::CallOptions walk_options = call_options();
  walk_options.trace = trace;
  cursor.set_call_options(walk_options);
  std::size_t start = 0;
  for (int hop = 0; hop < max_hops; ++hop) {
    std::string rest = path.substr(start);
    if (rest.empty()) co_return InvalidArgumentError("empty path");

    Result<NameRecord> whole = co_await cursor.Lookup(rest);
    if (whole.ok()) {
      if (whole->kind != RecordKind::kService) {
        co_return FailedPreconditionError("path ends at a directory: " + path);
      }
      co_return whole->binding;
    }
    if (whole.status().code() != StatusCode::kNotFound) {
      co_return whole.status();
    }

    const std::size_t slash = rest.find('/');
    if (slash == std::string::npos || slash == 0) {
      co_return NotFoundError("unbound name: " + path);
    }
    Result<NameRecord> dir = co_await cursor.Lookup(rest.substr(0, slash));
    if (!dir.ok()) co_return dir.status();
    if (dir->kind != RecordKind::kDirectory) {
      co_return FailedPreconditionError("path descends into a leaf: " + path);
    }
    cursor.Rebind(dir->directory_server, kNameServiceObject);
    start += slash + 1;
  }
  co_return FailedPreconditionError("referral chain too long: " + path);
}

sim::Co<Result<rpc::Void>> NameClient::RegisterService(
    std::string name, core::ServiceBinding binding, std::uint64_t lease_ns) {
  NameRecord record;
  record.kind = RecordKind::kService;
  record.binding = binding;
  record.lease_ns = lease_ns;
  co_return co_await Register(std::move(name), std::move(record),
                              /*overwrite=*/true);
}

sim::Co<Result<core::ServiceBinding>> CachingNameClient::ResolvePath(
    std::string path, obs::TraceContext trace) {
  const auto it = cache_.find(path);
  if (it != cache_.end() && (it->second.expires_at == 0 ||
                             it->second.expires_at > scheduler_->now())) {
    ++hits_;
    co_return it->second.binding;
  }
  ++misses_;
  Result<core::ServiceBinding> resolved =
      co_await inner_.ResolvePath(path, 16, trace);
  if (resolved.ok()) {
    cache_[path] = CacheEntry{*resolved, scheduler_->now() + ttl_};
  }
  co_return resolved;
}

}  // namespace proxy::naming
