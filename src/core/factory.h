// Proxy installation: factory registries and Acquire.
//
// In the 1986 system, binding to a service causes proxy *code* to be
// installed in the client's context, chosen by the service. C++ cannot
// ship native code safely, so the equivalent mechanism is a registry:
// services register, per (interface, protocol-version), a factory that
// instantiates their proxy inside a given context. Acquire<I>() resolves
// a name to a ServiceBinding, verifies the interface, and asks the
// registry for the proxy the *service* advertised — the client names only
// the abstract interface I. Acquire is the ONE acquisition path: cached
// vs authoritative resolution, direct/local shortcut, protocol override
// and call-policy tuning are all AcquireOptions knobs, not separate APIs.
//
// A parallel registry of server-object factories serves migration: a
// context receiving an object rebuilds the implementation from its
// serialized state.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/binding.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "sim/task.h"

namespace proxy::core {

/// Creates a proxy (as the interface's abstract type, erased to void) in
/// `context`, bound per `binding`.
using ProxyFactory =
    std::function<std::shared_ptr<void>(Context& context,
                                        const ServiceBinding& binding)>;

class ProxyFactoryRegistry {
 public:
  /// The process-wide registry (models the system's code-installation
  /// service; see DESIGN.md design rules).
  static ProxyFactoryRegistry& Instance();

  Status Register(InterfaceId iface, std::uint32_t protocol,
                  ProxyFactory factory);

  /// Instantiates the proxy advertised by `binding`.
  Result<std::shared_ptr<void>> Create(Context& context,
                                       const ServiceBinding& binding) const;

  [[nodiscard]] bool Has(InterfaceId iface, std::uint32_t protocol) const;

  /// Drops all registrations (tests only).
  void Reset() { factories_.clear(); }

 private:
  using Key = std::pair<std::uint64_t, std::uint32_t>;  // (iface, protocol)
  std::map<Key, ProxyFactory> factories_;
};

/// Rebuilds a server implementation from migrated state and exports it in
/// `context` under the (stable) object id. Returns the new binding.
using ServerObjectFactory = std::function<Result<ServiceBinding>(
    Context& context, ObjectId id, std::uint32_t protocol, Bytes state)>;

class ServerObjectFactoryRegistry {
 public:
  static ServerObjectFactoryRegistry& Instance();

  Status Register(InterfaceId iface, ServerObjectFactory factory);

  Result<ServiceBinding> Create(Context& context, InterfaceId iface,
                                ObjectId id, std::uint32_t protocol,
                                Bytes state) const;

  [[nodiscard]] bool Has(InterfaceId iface) const {
    return factories_.contains(iface);
  }

  void Reset() { factories_.clear(); }

 private:
  std::unordered_map<InterfaceId, ServerObjectFactory> factories_;
};

/// Acquisition knobs. `allow_direct` lets Acquire return the
/// implementation itself when the object lives in the caller's own
/// context (the paper's "a local object is its own proxy").
/// `protocol_override` forces a proxy protocol regardless of what the
/// service advertises (benchmarks use it to compare protocols on one
/// service). `call` (when set) becomes the proxy's ambient
/// rpc::CallOptions — deadline, retry budget, breaker opt-out — so call
/// policy is declared at acquisition instead of patched on afterwards.
/// `trace` threads a causal context through the name resolution itself.
struct AcquireOptions {
  bool allow_direct = true;
  bool use_name_cache = true;
  std::uint32_t protocol_override = 0;  // 0 = respect the service
  std::optional<rpc::CallOptions> call;
  obs::TraceContext trace;
};

/// Binds to a ServiceBinding already in hand (no name resolution). The
/// building block Acquire and migration share.
template <typename I>
Result<std::shared_ptr<I>> BindObject(Context& context, ServiceBinding binding,
                                      const AcquireOptions& options = {}) {
  if (binding.interface != InterfaceIdOf(I::kInterfaceName)) {
    return FailedPreconditionError(
        std::string("binding is not a ") + std::string(I::kInterfaceName));
  }
  if (options.protocol_override != 0) {
    binding.protocol = options.protocol_override;
  }
  if (options.allow_direct) {
    // Same context: the object itself is the cheapest possible proxy.
    if (const auto* entry = context.FindLocal(binding.object)) {
      if (entry->iface != binding.interface) {
        return FailedPreconditionError("local object has wrong interface");
      }
      return std::static_pointer_cast<I>(entry->impl);
    }
  }
  PROXY_ASSIGN_OR_RETURN(
      std::shared_ptr<void> proxy,
      ProxyFactoryRegistry::Instance().Create(context, binding));
  std::shared_ptr<I> typed = std::static_pointer_cast<I>(std::move(proxy));
  if (options.call.has_value()) {
    if (auto* base = dynamic_cast<ProxyBase*>(typed.get())) {
      base->set_call_options(*options.call);
    }
  }
  return typed;
}

/// THE way a client acquires a service: resolves `path` in the name
/// service (cached or authoritative per options), verifies the
/// interface, instantiates the advertised proxy, and arms it for
/// failure re-resolution. Replaces the old Bind / cached-Bind /
/// test-BindByName trio.
///
/// (The two resolve branches are separate statements, not a conditional
/// expression: `cond ? co_await a : co_await b` miscompiles under GCC 12
/// — see DESIGN.md toolchain notes.)
template <typename I>
sim::Co<Result<std::shared_ptr<I>>> Acquire(Context& context, std::string path,
                                            AcquireOptions options = {}) {
  Result<ServiceBinding> binding = InternalError("unresolved");
  if (options.use_name_cache) {
    Result<ServiceBinding> resolved =
        co_await context.cached_names().ResolvePath(path, options.trace);
    binding = std::move(resolved);
  } else {
    Result<ServiceBinding> resolved =
        co_await context.names().ResolvePath(path, 16, options.trace);
    binding = std::move(resolved);
  }
  if (!binding.ok()) co_return binding.status();
  Result<std::shared_ptr<I>> bound =
      BindObject<I>(context, std::move(*binding), options);
  if (bound.ok()) {
    // Name-bound proxies can re-resolve after a host failure.
    if (auto* proxy = dynamic_cast<ProxyBase*>(bound->get())) {
      proxy->set_name_path(path);
    }
  }
  co_return bound;
}

}  // namespace proxy::core
