// ServiceBinding: the wire-transportable description of where and how to
// reach a service object.
//
// This is what the name service stores and what a proxy is constructed
// from. `protocol` is the service's advertised proxy-protocol version —
// the hook that lets a service upgrade its distribution protocol (plain
// stub -> caching -> batching) without touching any client source: the
// client's Acquire<I>() simply instantiates whichever proxy the service
// names (the "dynamic installation" half of the proxy principle).
#pragma once

#include <string>

#include "common/id.h"
#include "net/address.h"
#include "serde/traits.h"

namespace proxy::core {

struct ServiceBinding {
  net::Address server;      // RPC endpoint of the hosting context
  ObjectId object;          // exported object id (stable across migration)
  InterfaceId interface;    // abstract type the object implements
  std::uint32_t protocol = 1;  // proxy protocol version to instantiate

  PROXY_SERDE_FIELDS(server, object, interface, protocol)

  friend bool operator==(const ServiceBinding& a,
                         const ServiceBinding& b) noexcept {
    return a.server == b.server && a.object == b.object &&
           a.interface == b.interface && a.protocol == b.protocol;
  }

  [[nodiscard]] std::string ToString() const {
    return server.ToString() + "/" + object.ToString() + " proto" +
           std::to_string(protocol);
  }
};

}  // namespace proxy::core
