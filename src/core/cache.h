// LRU cache — the building block of caching proxies.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"

namespace proxy::core {

/// Cache tallies as obs::Counter cells (accessors unchanged; attachable
/// to a MetricsRegistry via LruCache::BindMetrics).
struct CacheStats {
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter evictions;
  obs::Counter invalidations;

  [[nodiscard]] double hit_rate() const noexcept {
    const auto total = hits.value() + misses.value();
    return total == 0 ? 0.0 : static_cast<double>(hits.value()) / total;
  }
};

template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Looks `key` up, refreshing its recency. Counts a hit or miss.
  std::optional<V> Get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      stats_.misses++;
      return std::nullopt;
    }
    stats_.hits++;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Peeks without touching recency or stats (tests, flush scans).
  [[nodiscard]] const V* Peek(const K& key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Mutable access for in-place patching (write-through proxies update
  /// their cached copy instead of dropping it). Refreshes recency; not
  /// counted in hit/miss stats.
  [[nodiscard]] V* Mutable(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when
  /// over capacity.
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      stats_.evictions++;
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  /// Drops `key` (counted as an invalidation). Returns true if present.
  bool Invalidate(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    stats_.invalidations++;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Attaches the tallies to `registry` as <prefix>.hits / .misses /
  /// .evictions / .invalidations. The cache must outlive the registry or
  /// DetachMetrics first.
  void BindMetrics(obs::MetricsRegistry& registry, const std::string& prefix) {
    registry.Attach(prefix + ".hits", &stats_.hits);
    registry.Attach(prefix + ".misses", &stats_.misses);
    registry.Attach(prefix + ".evictions", &stats_.evictions);
    registry.Attach(prefix + ".invalidations", &stats_.invalidations);
  }
  void DetachMetrics(obs::MetricsRegistry& registry,
                     const std::string& prefix) {
    registry.Detach(prefix + ".hits", &stats_.hits);
    registry.Detach(prefix + ".misses", &stats_.misses);
    registry.Detach(prefix + ".evictions", &stats_.evictions);
    registry.Detach(prefix + ".invalidations", &stats_.invalidations);
  }

  /// Iterates entries most-recent first.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [k, v] : order_) fn(k, v);
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> index_;
  CacheStats stats_;
};

}  // namespace proxy::core
