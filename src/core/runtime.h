// Runtime and Context: the structuring concepts of the proxy principle.
//
// A Runtime is one simulated distributed system: the scheduler, the
// network, the nodes, and the contexts living on them. A Context is a
// protection domain (address space) on one node. Objects live inside
// contexts; a client in one context can reach an object in another only
// through a proxy bound via the runtime — there is no way to conjure a
// reference out of thin air, which is what makes references capabilities.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/id.h"
#include "common/rng.h"
#include "core/binding.h"
#include "naming/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "naming/server.h"
#include "net/endpoint.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace proxy::core {

class Runtime;
class MigrationManager;

/// Marker interface for objects whose state can be captured and rebuilt
/// elsewhere — the contract migration needs from a server implementation.
class IMigratable {
 public:
  virtual ~IMigratable() = default;
  /// Serializes the object's full state.
  [[nodiscard]] virtual Bytes SnapshotState() const = 0;
};

class Context {
 public:
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  ~Context();  // defined in migration.cpp (MigrationManager completeness)

  [[nodiscard]] ContextId id() const noexcept { return id_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] Runtime& runtime() noexcept { return *runtime_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept;
  [[nodiscard]] rpc::RpcServer& server() noexcept { return *rpc_server_; }
  [[nodiscard]] rpc::RpcClient& client() noexcept { return *rpc_client_; }

  /// Address of this context's RPC server endpoint.
  [[nodiscard]] net::Address server_address() const noexcept {
    return server_addr_;
  }

  /// Name-service clients of this context (plain and caching).
  [[nodiscard]] naming::NameClient& names() noexcept { return *names_; }
  [[nodiscard]] naming::CachingNameClient& cached_names() noexcept {
    return *cached_names_;
  }

  /// The Runtime-wide instrumentation surfaces (one registry, one span
  /// recorder per simulated system — DESIGN.md §12).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept;
  [[nodiscard]] obs::SpanRecorder& spans() noexcept;

  /// Mints a fresh sparse object id (unforgeable by construction).
  ObjectId MintObjectId();

  /// Registers an implementation object for the direct (same-context)
  /// invocation path and for migration. `migratable` may be null.
  Status RegisterLocal(ObjectId id, InterfaceId iface,
                       std::shared_ptr<void> impl,
                       std::shared_ptr<IMigratable> migratable = nullptr);

  void UnregisterLocal(ObjectId id);

  struct LocalEntry {
    InterfaceId iface;
    std::shared_ptr<void> impl;
    std::shared_ptr<IMigratable> migratable;
  };

  [[nodiscard]] const LocalEntry* FindLocal(ObjectId id) const;

  [[nodiscard]] std::size_t local_object_count() const noexcept {
    return locals_.size();
  }

  /// This context's migration manager, created (and its control object
  /// exported) on first use. Defined in migration.cpp.
  MigrationManager& migration();

  /// Crash-stop hooks. Services register handlers so volatile state dies
  /// with the node: crash handlers run when the node crash-stops (after
  /// the network cut, before RPC state is torn down — mark yourself dead
  /// first), restart handlers when it comes back empty (kick off rejoin).
  /// Handlers run in registration order and stay registered across
  /// crashes — a context may crash and restart many times per run.
  void OnCrash(std::function<void()> handler) {
    crash_handlers_.push_back(std::move(handler));
  }
  void OnRestart(std::function<void()> handler) {
    restart_handlers_.push_back(std::move(handler));
  }

  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

 private:
  friend class Runtime;

  void NotifyCrash();
  void NotifyRestart();
  Context(Runtime& runtime, ContextId id, NodeId node, std::string name,
          net::NodeStack& stack, std::uint64_t client_nonce,
          const net::Address& name_server);

  Runtime* runtime_;
  ContextId id_;
  NodeId node_;
  std::string name_;
  net::Endpoint* server_endpoint_;
  net::Endpoint* client_endpoint_;
  net::Address server_addr_;
  std::unique_ptr<rpc::RpcServer> rpc_server_;
  std::unique_ptr<rpc::RpcClient> rpc_client_;
  std::unique_ptr<naming::NameClient> names_;
  std::unique_ptr<naming::CachingNameClient> cached_names_;
  std::unique_ptr<MigrationManager> migration_;
  std::unordered_map<ObjectId, LocalEntry> locals_;
  std::vector<std::function<void()>> crash_handlers_;
  std::vector<std::function<void()>> restart_handlers_;
  bool crashed_ = false;
};

class Runtime {
 public:
  struct Params {
    std::uint64_t seed = 42;
    sim::LinkParams default_link;     // inter-node link characteristics
    SimDuration name_cache_ttl = Seconds(10);
  };

  Runtime() : Runtime(Params{}) {}
  explicit Runtime(Params params);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] sim::Network& network() noexcept { return network_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// The one MetricsRegistry of this simulated system: every context's
  /// RPC runtime, every proxy, cache and replica reports here, so a
  /// seeded run exports byte-identical numbers on every replay.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// The one SpanRecorder (disabled until spans().set_enabled(true)).
  [[nodiscard]] obs::SpanRecorder& spans() noexcept { return spans_; }

  /// Adds a node (a machine) to the system.
  NodeId AddNode(std::string name);

  /// Creates a context (protection domain) on `node`.
  Context& CreateContext(NodeId node, std::string name);

  /// Creates a context on `node` hosting the system name service on the
  /// conventional port. Must be called once, before contexts bind names.
  Context& StartNameService(NodeId node);

  /// Crash-stops `node`: all in-flight messages to/from it are lost, its
  /// contexts' crash handlers run, outstanding RPCs fail locally and
  /// server-side executions are abandoned. The node stays dark until
  /// RestartNode. Crashing the name-service node is not supported.
  void CrashNode(NodeId node);

  /// Brings a crashed node back with empty volatile state (crash-stop,
  /// then rejoin): restart handlers run so services can resync.
  void RestartNode(NodeId node);

  [[nodiscard]] net::Address name_server_address() const {
    return name_server_addr_;
  }
  [[nodiscard]] naming::NameServer* name_server() noexcept {
    return name_server_.get();
  }

  [[nodiscard]] const std::vector<std::unique_ptr<Context>>& contexts()
      const noexcept {
    return contexts_;
  }

  /// The per-node network stack. Lets harness code (chaos probes, raw
  /// transport streams) open endpoints on a node outside any context.
  [[nodiscard]] net::NodeStack& stack(NodeId node) {
    assert(node.value() < stacks_.size() && "unknown node");
    return *stacks_[node.value()];
  }

  /// Locates an object in any context on `node` (the direct-invocation
  /// probe used by Bind). Returns (context, entry) or nullopt.
  struct LocalHit {
    Context* context;
    const Context::LocalEntry* entry;
  };
  [[nodiscard]] std::optional<LocalHit> FindObjectOnNode(NodeId node,
                                                         ObjectId id);

  /// Drives the scheduler until `future.ready()` — the bridge between
  /// driver code (tests, examples, benches) and the simulated world.
  template <typename T>
  T Await(sim::Future<T> future) {
    scheduler_.RunUntil([&] { return future.ready(); });
    return future.take();
  }

  /// Spawns a coroutine and drives the scheduler to its completion.
  template <typename T>
  T Run(sim::Co<T> co) {
    return Await(sim::Spawn(scheduler_, std::move(co)));
  }
  void Run(sim::Co<void> co) {
    (void)Await(sim::Spawn(scheduler_, std::move(co)));
  }

 private:
  Params params_;
  sim::Scheduler scheduler_;
  sim::Network network_;
  Rng rng_;
  obs::MetricsRegistry metrics_;
  obs::SpanRecorder spans_;
  std::vector<std::unique_ptr<net::NodeStack>> stacks_;  // by node id
  std::vector<std::unique_ptr<Context>> contexts_;
  std::unique_ptr<rpc::RpcServer> name_server_rpc_;
  std::unique_ptr<naming::NameServer> name_server_;
  net::Address name_server_addr_{};
};

}  // namespace proxy::core
