// Batcher — the building block of batching proxies.
//
// Items are accumulated and flushed as one unit when either the batch
// reaches `max_items` or `window` elapses since the first queued item.
// Each Add returns a future resolved with the flush outcome of its batch,
// so callers keep per-item completion even though the wire sees batches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sim/future.h"
#include "sim/task.h"

namespace proxy::core {

/// Batcher tallies as obs::Counter cells (attachable to a
/// MetricsRegistry via Batcher::BindMetrics).
struct BatcherStats {
  obs::Counter items;
  obs::Counter batches;
  obs::Counter size_flushes;    // triggered by max_items
  obs::Counter window_flushes;  // triggered by the timer
  obs::Counter manual_flushes;
};

template <typename Item>
class Batcher {
 public:
  /// Ships one batch; the returned status resolves every item's future.
  using FlushFn = std::function<sim::Co<Status>(std::vector<Item> batch)>;

  Batcher(sim::Scheduler& scheduler, FlushFn flush, std::size_t max_items,
          SimDuration window)
      : scheduler_(&scheduler), flush_(std::move(flush)),
        max_items_(max_items == 0 ? 1 : max_items), window_(window) {}

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Queues an item. The future resolves when its batch lands (or fails).
  sim::Future<Status> Add(Item item) {
    stats_.items++;
    pending_.push_back(std::move(item));
    waiters_.emplace_back(*scheduler_);
    auto future = waiters_.back().future();

    if (pending_.size() >= max_items_) {
      stats_.size_flushes++;
      FlushNow();
    } else if (!timer_.armed()) {
      timer_ = scheduler_->PostAfter(window_, [this] {
        if (!pending_.empty()) {
          stats_.window_flushes++;
          FlushNow();
        }
      });
    }
    return future;
  }

  /// Forces the current batch out (used before a dependent read).
  sim::Future<Status> Flush() {
    sim::Promise<Status> done(*scheduler_);
    if (pending_.empty()) {
      done.Set(Status::Ok());
      return done.future();
    }
    stats_.manual_flushes++;
    waiters_.emplace_back(*scheduler_);
    auto batch_future = waiters_.back().future();
    // Resolve `done` with the batch outcome; the sentinel waiter shares
    // the batch's fate without adding an item.
    batch_future.Then([done](Status&& st) { done.Set(std::move(st)); });
    FlushNow();
    return done.future();
  }

  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] const BatcherStats& stats() const noexcept { return stats_; }

  /// Attaches the tallies to `registry` as <prefix>.items / .batches /
  /// .size_flushes / .window_flushes / .manual_flushes.
  void BindMetrics(obs::MetricsRegistry& registry, const std::string& prefix) {
    registry.Attach(prefix + ".items", &stats_.items);
    registry.Attach(prefix + ".batches", &stats_.batches);
    registry.Attach(prefix + ".size_flushes", &stats_.size_flushes);
    registry.Attach(prefix + ".window_flushes", &stats_.window_flushes);
    registry.Attach(prefix + ".manual_flushes", &stats_.manual_flushes);
  }
  void DetachMetrics(obs::MetricsRegistry& registry,
                     const std::string& prefix) {
    registry.Detach(prefix + ".items", &stats_.items);
    registry.Detach(prefix + ".batches", &stats_.batches);
    registry.Detach(prefix + ".size_flushes", &stats_.size_flushes);
    registry.Detach(prefix + ".window_flushes", &stats_.window_flushes);
    registry.Detach(prefix + ".manual_flushes", &stats_.manual_flushes);
  }

 private:
  sim::Co<void> RunFlush(std::vector<Item> batch,
                         std::vector<sim::Promise<Status>> waiters) {
    Status st = co_await flush_(std::move(batch));
    for (auto& w : waiters) w.Set(st);
  }

  void FlushNow() {
    timer_.Cancel();
    stats_.batches++;
    std::vector<Item> batch = std::move(pending_);
    std::vector<sim::Promise<Status>> waiters = std::move(waiters_);
    pending_.clear();
    waiters_.clear();
    (void)sim::Spawn(*scheduler_,
                     RunFlush(std::move(batch), std::move(waiters)));
  }

  sim::Scheduler* scheduler_;
  FlushFn flush_;
  std::size_t max_items_;
  SimDuration window_;
  std::vector<Item> pending_;
  std::vector<sim::Promise<Status>> waiters_;
  sim::Timer timer_;  // pending window flush (RAII)
  BatcherStats stats_;
};

}  // namespace proxy::core
