// Lease maintenance.
//
// Name-service records may carry a lease so that crashed services vanish
// from the directory instead of poisoning it. A live service therefore
// needs a heartbeat; LeaseMaintainer renews a registration at a fraction
// of its TTL until stopped (or until renewal fails repeatedly, at which
// point the service has effectively lost its name).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "core/binding.h"
#include "core/runtime.h"
#include "naming/client.h"
#include "sim/task.h"

namespace proxy::core {

/// Lease tuning (namespace scope so it can be a default argument;
/// see DESIGN.md toolchain notes).
struct LeaseParams {
  std::uint64_t ttl_ns = Seconds(2);
  /// Renewal period as a fraction of the TTL (renew well before expiry).
  double renew_fraction = 0.4;
  int max_consecutive_failures = 3;
};

class LeaseMaintainer {
 public:
  using Params = LeaseParams;

  /// Starts heartbeating immediately. The registration itself is also
  /// performed by the maintainer (first heartbeat).
  LeaseMaintainer(Context& context, std::string name, ServiceBinding binding,
                  Params params = {})
      : state_(std::make_shared<State>()) {
    state_->context = &context;
    state_->name = std::move(name);
    state_->binding = binding;
    state_->params = params;
    (void)sim::Spawn(context.scheduler(), HeartbeatLoop(state_));
  }

  LeaseMaintainer(const LeaseMaintainer&) = delete;
  LeaseMaintainer& operator=(const LeaseMaintainer&) = delete;

  ~LeaseMaintainer() { Stop(); }

  /// Stops renewing; the record then expires naturally within one TTL.
  void Stop() { state_->stopped = true; }

  [[nodiscard]] std::uint64_t renewals() const noexcept {
    return state_->renewals;
  }
  [[nodiscard]] bool lost() const noexcept { return state_->lost; }

 private:
  struct State {
    Context* context = nullptr;
    std::string name;
    ServiceBinding binding;
    Params params;
    bool stopped = false;
    bool lost = false;
    std::uint64_t renewals = 0;
  };

  // Static coroutine holding the state by shared_ptr: the loop survives
  // the maintainer being destroyed mid-heartbeat (it then observes
  // `stopped` and winds down).
  static sim::Co<void> HeartbeatLoop(std::shared_ptr<State> st) {
    const auto period = static_cast<SimDuration>(
        st->params.renew_fraction * static_cast<double>(st->params.ttl_ns));
    // A renewal attempt must never outlive its own period: otherwise a
    // partitioned owner takes several backed-off timeouts — far more
    // than the TTL — to notice it lost the name, and failover stalls.
    // Dedicated stub so the deadline does not leak into other users of
    // the context-wide name client.
    naming::NameClient names(st->context->client(),
                             st->context->names().server());
    rpc::CallOptions bounded;
    bounded.retry_interval = std::max<SimDuration>(period / 8, 1);
    bounded.max_retries = 8;
    bounded.deadline = period;
    names.set_call_options(bounded);

    int failures = 0;
    while (!st->stopped) {
      Result<rpc::Void> renewed = co_await names.RegisterService(
          st->name, st->binding, st->params.ttl_ns);
      if (renewed.ok()) {
        failures = 0;
        st->renewals++;
      } else if (++failures >= st->params.max_consecutive_failures) {
        st->lost = true;
        co_return;
      }
      co_await sim::SleepFor(st->context->scheduler(), period);
    }
  }

  std::shared_ptr<State> state_;
};

}  // namespace proxy::core
