// ProxyBase: the local representative of a remote object.
//
// A proxy lives in the client's context, implements the service's
// interface, and encapsulates the service's distribution protocol. The
// base class provides the behaviour every proxy shares: transparent
// recovery when the target moves or its host becomes unreachable.
//
// A call that comes back OBJECT_MOVED carries a forwarding hint (an
// encoded ServiceBinding); the proxy rebinds and retries, following
// forwarding chains up to a bounded depth, without the client ever
// observing the move. A call that fails with TIMEOUT/UNAVAILABLE — the
// host may be partitioned away or gone for good — triggers one
// re-resolution through the name service (when the proxy knows the name
// it was bound under): if the authoritative binding has changed, the
// proxy adopts it and retries instead of erroring forever against a dead
// address.
//
// Everything beyond that — caching, batching, write-back, migrate-on-use
// — is a subclass's private protocol with its service (see
// services/*_proxy.* for the concrete proxies).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/rng.h"
#include "core/binding.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/client.h"
#include "rpc/stub.h"
#include "serde/traits.h"
#include "sim/future.h"
#include "sim/task.h"

namespace proxy::core {

/// Per-proxy tallies (obs::Counter cells, so the pre-existing accessor
/// idiom `proxy_stats().calls == 3u` keeps working). The system-wide
/// aggregates live in the Runtime registry under core.proxy.*.
struct ProxyStats {
  obs::Counter calls;
  obs::Counter rebinds;       // OBJECT_MOVED recoveries
  obs::Counter failed_calls;  // non-OK outcomes surfaced to the client
  obs::Counter recoveries;    // name-service rebinds after a failure
  obs::Counter pushback_backoffs;  // waits honoring a server retry-after
};

class ProxyBase {
 public:
  /// Maximum forwarding-chain length a single call will follow.
  static constexpr int kMaxForwardHops = 8;

  /// Maximum times one call sleeps out a server's retry-after hint and
  /// re-offers the work before surfacing RESOURCE_EXHAUSTED. Small on
  /// purpose: under sustained overload the *caller* must slow down —
  /// that is graceful degradation; looping here would be a polite
  /// retry storm.
  static constexpr int kMaxPushbackRetries = 2;

  ProxyBase(Context& context, ServiceBinding binding)
      : context_(&context),
        binding_(std::move(binding)),
        pushback_rng_(context.client().nonce() ^ 0x5bd1e995u),
        agg_calls_(context.metrics().counter("core.proxy.calls")),
        agg_rebinds_(context.metrics().counter("core.proxy.rebinds")),
        agg_failed_(context.metrics().counter("core.proxy.failed_calls")),
        agg_recoveries_(context.metrics().counter("core.proxy.recoveries")),
        agg_pushbacks_(
            context.metrics().counter("core.proxy.pushback_backoffs")),
        call_latency_(context.metrics().histogram("core.proxy.call_ns")) {}

  virtual ~ProxyBase() = default;

  [[nodiscard]] const ServiceBinding& binding() const noexcept {
    return binding_;
  }
  [[nodiscard]] Context& context() noexcept { return *context_; }
  [[nodiscard]] const ProxyStats& proxy_stats() const noexcept {
    return stats_;
  }

  void set_call_options(const rpc::CallOptions& options) noexcept {
    options_ = options;
  }

  /// Remembers the name-service path this proxy was bound under, enabling
  /// re-resolution when the host stops answering. Set by Acquire(); empty
  /// (no failure rebinding) for proxies built from a raw binding.
  void set_name_path(std::string path) { name_path_ = std::move(path); }
  [[nodiscard]] const std::string& name_path() const noexcept {
    return name_path_;
  }

 protected:
  /// Typed remote call with transparent rebinding on OBJECT_MOVED, using
  /// the proxy's ambient options.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> Call(std::uint32_t method, Req req) {
    Bytes args = serde::EncodeToBytes(req);
    Result<Bytes> raw = co_await CallRaw(method, std::move(args), options_);
    if (!raw.ok()) co_return raw.status();
    co_return serde::DecodeFromBytes<Resp>(View(*raw));
  }

  /// Typed remote call with explicit per-call options — the same
  /// rpc::CallOptions RpcClient::Call takes, so deadline / retry budget /
  /// breaker opt-out / trace tune uniformly at every layer.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> Call(std::uint32_t method, Req req,
                             rpc::CallOptions options) {
    Bytes args = serde::EncodeToBytes(req);
    Result<Bytes> raw =
        co_await CallRaw(method, std::move(args), std::move(options));
    if (!raw.ok()) co_return raw.status();
    co_return serde::DecodeFromBytes<Resp>(View(*raw));
  }

  /// Untyped variant for proxies that marshal manually.
  sim::Co<Result<Bytes>> CallRaw(std::uint32_t method, Bytes args) {
    co_return co_await CallRaw(method, std::move(args), options_);
  }

  /// The invocation loop, and the system's measurement point: the proxy
  /// is where a call's whole story (forwarding hops, recoveries, final
  /// latency) is visible, so this is where the span opens and closes.
  sim::Co<Result<Bytes>> CallRaw(std::uint32_t method, Bytes args,
                                 rpc::CallOptions options) {
    stats_.calls++;
    agg_calls_++;
    const SimTime started = context_->scheduler().now();
    obs::SpanRecorder& spans = context_->spans();
    // Root of a fresh trace when the caller carried none; child span
    // otherwise. Inactive (and all recorder calls no-ops) when recording
    // is off.
    const obs::TraceContext span =
        spans.Begin(options.trace, "proxy m" + std::to_string(method), started);
    if (span.active()) options.trace = span;
    // Every proxy call carries a shared retransmission allowance: two
    // full transport legs' worth (the original binding plus one
    // recovery rebind). Callers that span several hops over one logical
    // operation (the failover proxy's passes) pass their own budget in,
    // and this respects it.
    if (options.attempt_budget == nullptr) {
      options.attempt_budget = std::make_shared<rpc::AttemptBudget>(
          options.max_retries * 2);
    }

    Result<Bytes> outcome = UnavailableError(
        "forwarding chain exceeded " + std::to_string(kMaxForwardHops) +
        " hops");
    bool recovery_tried = false;
    int pushback_waits = 0;
    SimDuration prev_pushback_wait = 0;
    for (int hop = 0; hop <= kMaxForwardHops; ++hop) {
      rpc::RpcResult raw = co_await context_->client().Call(
          binding_.server, binding_.object, method, args, options);
      if (raw.ok()) {
        outcome = std::move(raw.payload);
        break;
      }
      if (raw.status.code() == StatusCode::kObjectMoved) {
        // Follow the forwarding hint: adopt the new binding and retry.
        Result<ServiceBinding> fwd =
            serde::DecodeFromBytes<ServiceBinding>(View(raw.payload));
        if (!fwd.ok()) {
          outcome = fwd.status();
          break;
        }
        stats_.rebinds++;
        agg_rebinds_++;
        binding_.server = fwd->server;
        binding_.object = fwd->object;
        spans.Annotate(span, context_->scheduler().now(),
                       "rebind -> " + binding_.server.ToString());
        continue;
      }
      // Server pushback: it is alive but shedding load, and told us how
      // long to stay away. Honor the hint with decorrelated jitter
      // (uniform in [hint, max(2×hint, 3×previous wait)]) so a fleet of
      // rejected callers does not re-offer its work in lockstep, then
      // retry — a bounded number of times, after which the exhaustion
      // surfaces to the caller (whose degradation hooks take over).
      if (raw.status.code() == StatusCode::kResourceExhausted &&
          raw.retry_after > 0 && pushback_waits < kMaxPushbackRetries) {
        pushback_waits++;
        stats_.pushback_backoffs++;
        agg_pushbacks_++;
        const SimDuration lo = raw.retry_after;
        const SimDuration hi =
            std::max(2 * raw.retry_after, 3 * prev_pushback_wait);
        const SimDuration wait = lo + pushback_rng_.UniformU64(hi - lo + 1);
        prev_pushback_wait = wait;
        spans.Annotate(span, context_->scheduler().now(),
                       "pushback: retry-after " +
                           std::to_string(raw.retry_after) + "ns");
        co_await sim::SleepFor(context_->scheduler(), wait);
        continue;
      }
      // The host stopped answering (or the breaker declared it down):
      // ask the name service where the object lives *now*. The cached
      // entry is what just failed, so bypass the cache. A single attempt
      // per call: if the fresh binding is unchanged the failure stands.
      if ((raw.status.code() == StatusCode::kTimeout ||
           raw.status.code() == StatusCode::kUnavailable) &&
          !name_path_.empty() && !recovery_tried) {
        recovery_tried = true;
        context_->cached_names().Invalidate(name_path_);
        Result<ServiceBinding> fresh =
            co_await context_->names().ResolvePath(name_path_, 16,
                                                   options.trace);
        if (fresh.ok() && fresh->interface == binding_.interface &&
            !(fresh->server == binding_.server &&
              fresh->object == binding_.object)) {
          stats_.rebinds++;
          stats_.recoveries++;
          agg_rebinds_++;
          agg_recoveries_++;
          binding_.server = fresh->server;
          binding_.object = fresh->object;
          spans.Annotate(span, context_->scheduler().now(),
                         "recovered via " + name_path_ + " -> " +
                             binding_.server.ToString());
          continue;
        }
      }
      outcome = raw.status;
      break;
    }
    if (!outcome.ok()) {
      stats_.failed_calls++;
      agg_failed_++;
    }
    const SimTime ended = context_->scheduler().now();
    call_latency_.Record(ended - started);
    spans.End(span, ended, outcome.status());
    co_return outcome;
  }

  rpc::CallOptions options_;

 private:
  Context* context_;
  ServiceBinding binding_;
  ProxyStats stats_;
  std::string name_path_;
  /// Pushback jitter; seeded from the context's client nonce so replays
  /// stay byte-identical.
  Rng pushback_rng_;
  // Runtime-registry aggregate cells (valid for the Runtime's lifetime,
  // which outlives every proxy it hosts).
  obs::Counter& agg_calls_;
  obs::Counter& agg_rebinds_;
  obs::Counter& agg_failed_;
  obs::Counter& agg_recoveries_;
  obs::Counter& agg_pushbacks_;
  obs::Histogram& call_latency_;
};

}  // namespace proxy::core
