// ProxyBase: the local representative of a remote object.
//
// A proxy lives in the client's context, implements the service's
// interface, and encapsulates the service's distribution protocol. The
// base class provides the behaviour every proxy shares: transparent
// recovery when the target moves or its host becomes unreachable.
//
// A call that comes back OBJECT_MOVED carries a forwarding hint (an
// encoded ServiceBinding); the proxy rebinds and retries, following
// forwarding chains up to a bounded depth, without the client ever
// observing the move. A call that fails with TIMEOUT/UNAVAILABLE — the
// host may be partitioned away or gone for good — triggers one
// re-resolution through the name service (when the proxy knows the name
// it was bound under): if the authoritative binding has changed, the
// proxy adopts it and retries instead of erroring forever against a dead
// address.
//
// Everything beyond that — caching, batching, write-back, migrate-on-use
// — is a subclass's private protocol with its service (see
// services/*_proxy.* for the concrete proxies).
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "core/binding.h"
#include "core/runtime.h"
#include "rpc/client.h"
#include "rpc/stub.h"
#include "serde/traits.h"
#include "sim/task.h"

namespace proxy::core {

struct ProxyStats {
  std::uint64_t calls = 0;
  std::uint64_t rebinds = 0;       // OBJECT_MOVED recoveries
  std::uint64_t failed_calls = 0;  // non-OK outcomes surfaced to the client
  std::uint64_t recoveries = 0;    // name-service rebinds after a failure
};

class ProxyBase {
 public:
  /// Maximum forwarding-chain length a single call will follow.
  static constexpr int kMaxForwardHops = 8;

  ProxyBase(Context& context, ServiceBinding binding)
      : context_(&context), binding_(std::move(binding)) {}

  virtual ~ProxyBase() = default;

  [[nodiscard]] const ServiceBinding& binding() const noexcept {
    return binding_;
  }
  [[nodiscard]] Context& context() noexcept { return *context_; }
  [[nodiscard]] const ProxyStats& proxy_stats() const noexcept {
    return stats_;
  }

  void set_call_options(const rpc::CallOptions& options) noexcept {
    options_ = options;
  }

  /// Remembers the name-service path this proxy was bound under, enabling
  /// re-resolution when the host stops answering. Set by Bind(); empty
  /// (no failure rebinding) for proxies built from a raw binding.
  void set_name_path(std::string path) { name_path_ = std::move(path); }
  [[nodiscard]] const std::string& name_path() const noexcept {
    return name_path_;
  }

 protected:
  /// Typed remote call with transparent rebinding on OBJECT_MOVED.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> Call(std::uint32_t method, Req req) {
    Bytes args = serde::EncodeToBytes(req);
    Result<Bytes> raw = co_await CallRaw(method, std::move(args));
    if (!raw.ok()) co_return raw.status();
    co_return serde::DecodeFromBytes<Resp>(View(*raw));
  }

  /// Untyped variant for proxies that marshal manually.
  sim::Co<Result<Bytes>> CallRaw(std::uint32_t method, Bytes args) {
    stats_.calls++;
    bool recovery_tried = false;
    for (int hop = 0; hop <= kMaxForwardHops; ++hop) {
      rpc::RpcResult raw = co_await context_->client().Call(
          binding_.server, binding_.object, method, args, options_);
      if (raw.ok()) co_return std::move(raw.payload);
      if (raw.status.code() == StatusCode::kObjectMoved) {
        // Follow the forwarding hint: adopt the new binding and retry.
        Result<ServiceBinding> fwd =
            serde::DecodeFromBytes<ServiceBinding>(View(raw.payload));
        if (!fwd.ok()) {
          stats_.failed_calls++;
          co_return fwd.status();
        }
        stats_.rebinds++;
        binding_.server = fwd->server;
        binding_.object = fwd->object;
        continue;
      }
      // The host stopped answering (or the breaker declared it down):
      // ask the name service where the object lives *now*. The cached
      // entry is what just failed, so bypass the cache. A single attempt
      // per call: if the fresh binding is unchanged the failure stands.
      if ((raw.status.code() == StatusCode::kTimeout ||
           raw.status.code() == StatusCode::kUnavailable) &&
          !name_path_.empty() && !recovery_tried) {
        recovery_tried = true;
        context_->cached_names().Invalidate(name_path_);
        Result<ServiceBinding> fresh =
            co_await context_->names().ResolvePath(name_path_);
        if (fresh.ok() && fresh->interface == binding_.interface &&
            !(fresh->server == binding_.server &&
              fresh->object == binding_.object)) {
          stats_.rebinds++;
          stats_.recoveries++;
          binding_.server = fresh->server;
          binding_.object = fresh->object;
          continue;
        }
      }
      stats_.failed_calls++;
      co_return raw.status;
    }
    stats_.failed_calls++;
    co_return UnavailableError("forwarding chain exceeded " +
                               std::to_string(kMaxForwardHops) + " hops");
  }

  rpc::CallOptions options_;

 private:
  Context* context_;
  ServiceBinding binding_;
  ProxyStats stats_;
  std::string name_path_;
};

}  // namespace proxy::core
