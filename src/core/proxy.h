// ProxyBase: the local representative of a remote object.
//
// A proxy lives in the client's context, implements the service's
// interface, and encapsulates the service's distribution protocol. The
// base class provides the one behaviour every proxy shares: transparent
// recovery when the target migrates. A call that comes back OBJECT_MOVED
// carries a forwarding hint (an encoded ServiceBinding); the proxy
// rebinds and retries, following forwarding chains up to a bounded depth,
// without the client ever observing the move.
//
// Everything beyond that — caching, batching, write-back, migrate-on-use
// — is a subclass's private protocol with its service (see
// services/*_proxy.* for the concrete proxies).
#pragma once

#include <cstdint>
#include <utility>

#include "core/binding.h"
#include "core/runtime.h"
#include "rpc/client.h"
#include "rpc/stub.h"
#include "serde/traits.h"
#include "sim/task.h"

namespace proxy::core {

struct ProxyStats {
  std::uint64_t calls = 0;
  std::uint64_t rebinds = 0;       // OBJECT_MOVED recoveries
  std::uint64_t failed_calls = 0;  // non-OK outcomes surfaced to the client
};

class ProxyBase {
 public:
  /// Maximum forwarding-chain length a single call will follow.
  static constexpr int kMaxForwardHops = 8;

  ProxyBase(Context& context, ServiceBinding binding)
      : context_(&context), binding_(std::move(binding)) {}

  virtual ~ProxyBase() = default;

  [[nodiscard]] const ServiceBinding& binding() const noexcept {
    return binding_;
  }
  [[nodiscard]] Context& context() noexcept { return *context_; }
  [[nodiscard]] const ProxyStats& proxy_stats() const noexcept {
    return stats_;
  }

  void set_call_options(const rpc::CallOptions& options) noexcept {
    options_ = options;
  }

 protected:
  /// Typed remote call with transparent rebinding on OBJECT_MOVED.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> Call(std::uint32_t method, Req req) {
    Bytes args = serde::EncodeToBytes(req);
    Result<Bytes> raw = co_await CallRaw(method, std::move(args));
    if (!raw.ok()) co_return raw.status();
    co_return serde::DecodeFromBytes<Resp>(View(*raw));
  }

  /// Untyped variant for proxies that marshal manually.
  sim::Co<Result<Bytes>> CallRaw(std::uint32_t method, Bytes args) {
    stats_.calls++;
    for (int hop = 0; hop <= kMaxForwardHops; ++hop) {
      rpc::RpcResult raw = co_await context_->client().Call(
          binding_.server, binding_.object, method, args, options_);
      if (raw.ok()) co_return std::move(raw.payload);
      if (raw.status.code() != StatusCode::kObjectMoved) {
        stats_.failed_calls++;
        co_return raw.status;
      }
      // Follow the forwarding hint: adopt the new binding and retry.
      Result<ServiceBinding> fwd =
          serde::DecodeFromBytes<ServiceBinding>(View(raw.payload));
      if (!fwd.ok()) {
        stats_.failed_calls++;
        co_return fwd.status();
      }
      stats_.rebinds++;
      binding_.server = fwd->server;
      binding_.object = fwd->object;
    }
    stats_.failed_calls++;
    co_return UnavailableError("forwarding chain exceeded " +
                               std::to_string(kMaxForwardHops) + " hops");
  }

  rpc::CallOptions options_;

 private:
  Context* context_;
  ServiceBinding binding_;
  ProxyStats stats_;
};

}  // namespace proxy::core
