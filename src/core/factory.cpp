#include "core/factory.h"

namespace proxy::core {

ProxyFactoryRegistry& ProxyFactoryRegistry::Instance() {
  static ProxyFactoryRegistry registry;
  return registry;
}

Status ProxyFactoryRegistry::Register(InterfaceId iface, std::uint32_t protocol,
                                      ProxyFactory factory) {
  if (!factory) return InvalidArgumentError("null proxy factory");
  const auto [it, inserted] = factories_.emplace(
      Key{iface.value(), protocol}, std::move(factory));
  (void)it;
  if (!inserted) return AlreadyExistsError("proxy factory already registered");
  return Status::Ok();
}

Result<std::shared_ptr<void>> ProxyFactoryRegistry::Create(
    Context& context, const ServiceBinding& binding) const {
  const auto it =
      factories_.find(Key{binding.interface.value(), binding.protocol});
  if (it == factories_.end()) {
    return NotFoundError("no proxy factory for interface " +
                         std::to_string(binding.interface.value()) +
                         " protocol " + std::to_string(binding.protocol));
  }
  std::shared_ptr<void> proxy = it->second(context, binding);
  if (proxy == nullptr) return InternalError("proxy factory returned null");
  return proxy;
}

bool ProxyFactoryRegistry::Has(InterfaceId iface,
                               std::uint32_t protocol) const {
  return factories_.contains(Key{iface.value(), protocol});
}

ServerObjectFactoryRegistry& ServerObjectFactoryRegistry::Instance() {
  static ServerObjectFactoryRegistry registry;
  return registry;
}

Status ServerObjectFactoryRegistry::Register(InterfaceId iface,
                                             ServerObjectFactory factory) {
  if (!factory) return InvalidArgumentError("null server-object factory");
  const auto [it, inserted] = factories_.emplace(iface, std::move(factory));
  (void)it;
  if (!inserted) {
    return AlreadyExistsError("server-object factory already registered");
  }
  return Status::Ok();
}

Result<ServiceBinding> ServerObjectFactoryRegistry::Create(
    Context& context, InterfaceId iface, ObjectId id, std::uint32_t protocol,
    Bytes state) const {
  const auto it = factories_.find(iface);
  if (it == factories_.end()) {
    return NotFoundError("no server-object factory for interface " +
                         std::to_string(iface.value()));
  }
  return it->second(context, id, protocol, std::move(state));
}

}  // namespace proxy::core
