#include "core/runtime.h"

#include <cassert>

#include "common/log.h"
#include "core/migration.h"  // completes MigrationManager for unique_ptr

namespace proxy::core {

Context::Context(Runtime& runtime, ContextId id, NodeId node, std::string name,
                 net::NodeStack& stack, std::uint64_t client_nonce,
                 const net::Address& name_server)
    : runtime_(&runtime), id_(id), node_(node), name_(std::move(name)) {
  server_endpoint_ = stack.OpenEphemeral();
  client_endpoint_ = stack.OpenEphemeral();
  server_addr_ = server_endpoint_->address();
  rpc_server_ = std::make_unique<rpc::RpcServer>(*server_endpoint_);
  rpc_client_ = std::make_unique<rpc::RpcClient>(*client_endpoint_, client_nonce);
  names_ = std::make_unique<naming::NameClient>(*rpc_client_, name_server);
  cached_names_ = std::make_unique<naming::CachingNameClient>(
      *rpc_client_, name_server);
  // Every context reports into the runtime's one registry and recorder.
  rpc_client_->BindMetrics(runtime.metrics());
  rpc_server_->BindMetrics(runtime.metrics());
  rpc_server_->set_span_recorder(&runtime.spans());
  cached_names_->BindMetrics(runtime.metrics());
}

sim::Scheduler& Context::scheduler() noexcept { return runtime_->scheduler(); }

obs::MetricsRegistry& Context::metrics() noexcept {
  return runtime_->metrics();
}

obs::SpanRecorder& Context::spans() noexcept { return runtime_->spans(); }

ObjectId Context::MintObjectId() {
  ObjectId id;
  do {
    id.hi = runtime_->rng().NextU64();
    id.lo = runtime_->rng().NextU64();
  } while (id.IsNil());
  return id;
}

Status Context::RegisterLocal(ObjectId id, InterfaceId iface,
                              std::shared_ptr<void> impl,
                              std::shared_ptr<IMigratable> migratable) {
  if (id.IsNil() || impl == nullptr) {
    return InvalidArgumentError("nil object id or null implementation");
  }
  const auto [it, inserted] = locals_.emplace(
      id, LocalEntry{iface, std::move(impl), std::move(migratable)});
  (void)it;
  if (!inserted) return AlreadyExistsError("object already registered");
  return Status::Ok();
}

void Context::UnregisterLocal(ObjectId id) { locals_.erase(id); }

const Context::LocalEntry* Context::FindLocal(ObjectId id) const {
  const auto it = locals_.find(id);
  return it == locals_.end() ? nullptr : &it->second;
}

void Context::NotifyCrash() {
  crashed_ = true;
  // Services first (they mark themselves dead), then the RPC runtime:
  // outstanding calls fail so coroutines blocked on them unwind, and
  // in-flight server executions are abandoned along with the reply cache.
  for (auto& handler : crash_handlers_) handler();
  rpc_client_->Reset(UnavailableError("node crashed"));
  rpc_server_->Reset();
  cached_names_->Clear();
}

void Context::NotifyRestart() {
  crashed_ = false;
  for (auto& handler : restart_handlers_) handler();
}

Runtime::Runtime(Params params)
    : params_(params),
      network_(scheduler_, params.seed),
      rng_(SplitMix64(params.seed ^ 0x70726f7879ULL).Next()) {
  network_.SetDefaultLink(params.default_link);
}

Runtime::~Runtime() = default;

NodeId Runtime::AddNode(std::string name) {
  const NodeId id = network_.AddNode(std::move(name));
  stacks_.push_back(std::make_unique<net::NodeStack>(network_, id));
  return id;
}

Context& Runtime::CreateContext(NodeId node, std::string name) {
  assert(node.value() < stacks_.size() && "unknown node");
  const ContextId id(static_cast<std::uint32_t>(contexts_.size()));
  auto ctx = std::unique_ptr<Context>(
      new Context(*this, id, node, std::move(name), *stacks_[node.value()],
                  rng_.NextU64(), name_server_addr_));
  contexts_.push_back(std::move(ctx));
  return *contexts_.back();
}

Context& Runtime::StartNameService(NodeId node) {
  assert(name_server_ == nullptr && "name service already started");
  // The name server listens on the conventional port so that other
  // contexts can construct their bootstrap proxy from (node, port) alone.
  net::NodeStack& stack = *stacks_[node.value()];
  net::Endpoint* ep = stack.OpenEndpoint(naming::kNameServicePort);
  assert(ep != nullptr && "name service port already taken");

  Context& ctx = CreateContext(node, "name-service");
  // Replace the context's server with one on the well-known port.
  auto server = std::make_unique<rpc::RpcServer>(*ep);
  name_server_ = std::make_unique<naming::NameServer>(*server);
  // The context keeps its regular server too (for migration etc.); the
  // name service itself lives on the well-known endpoint.
  name_server_rpc_ = std::move(server);
  name_server_addr_ = ep->address();

  // Contexts created before the name service learn the address lazily via
  // their NameClient rebind; contexts created after get it at birth.
  for (auto& existing : contexts_) {
    existing->names().Rebind(name_server_addr_, naming::kNameServiceObject);
    existing->cached_names().inner().Rebind(name_server_addr_,
                                            naming::kNameServiceObject);
  }
  return ctx;
}

void Runtime::CrashNode(NodeId node) {
  assert((name_server_ == nullptr ||
          name_server_addr_.node != node) &&
         "crashing the name-service node is not supported");
  if (network_.IsNodeCrashed(node)) return;
  // Cut the network first so nothing a crash handler does can leak a
  // message out of the dying node.
  network_.SetNodeCrashed(node, true);
  for (auto& ctx : contexts_) {
    if (ctx->node() == node) ctx->NotifyCrash();
  }
}

void Runtime::RestartNode(NodeId node) {
  if (!network_.IsNodeCrashed(node)) return;
  network_.SetNodeCrashed(node, false);
  for (auto& ctx : contexts_) {
    if (ctx->node() == node) ctx->NotifyRestart();
  }
}

std::optional<Runtime::LocalHit> Runtime::FindObjectOnNode(NodeId node,
                                                           ObjectId id) {
  for (auto& ctx : contexts_) {
    if (ctx->node() != node) continue;
    if (const auto* entry = ctx->FindLocal(id)) {
      return LocalHit{ctx.get(), entry};
    }
  }
  return std::nullopt;
}

}  // namespace proxy::core
