#include "core/migration.h"

#include "common/log.h"
#include "serde/traits.h"

namespace proxy::core {

Context::~Context() = default;

MigrationManager& Context::migration() {
  if (!migration_) migration_ = std::make_unique<MigrationManager>(*this);
  return *migration_;
}

MigrationManager::MigrationManager(Context& context)
    : context_(&context), dispatch_(std::make_shared<rpc::Dispatch>()) {
  rpc::RegisterTyped<ReleaseRequest, ReleaseResponse>(
      *dispatch_, Method::kRelease,
      [this](ReleaseRequest req, const rpc::CallContext&) {
        return HandleRelease(std::move(req));
      });
  rpc::RegisterTyped<AcceptRequest, AcceptResponse>(
      *dispatch_, Method::kAccept,
      [this](AcceptRequest req, const rpc::CallContext&) {
        return HandleAccept(std::move(req));
      });
  (void)context_->server().ExportObject(kMigrationControlObject, dispatch_);
}

Result<MigrationManager::ReleaseResponse> MigrationManager::Evict(
    ObjectId id, const net::Address& new_home) {
  const Context::LocalEntry* entry = context_->FindLocal(id);
  if (entry == nullptr) {
    return NotFoundError("object not local: " + id.ToString());
  }
  if (entry->migratable == nullptr) {
    return FailedPreconditionError("object is not migratable");
  }
  // Copy what we need out of the registry entry: UnregisterLocal below
  // frees it.
  const InterfaceId iface = entry->iface;
  ReleaseResponse resp;
  resp.iface = iface;
  resp.protocol = 1;
  resp.state = entry->migratable->SnapshotState();

  // Withdraw the object and leave a forwarding hint: proxies that still
  // hold the old binding learn the new home on their next call.
  (void)context_->server().RemoveObject(id);
  context_->UnregisterLocal(id);

  ServiceBinding forward;
  forward.server = new_home;
  forward.object = id;
  forward.interface = iface;
  forward.protocol = resp.protocol;
  context_->server().SetForwarding(id, serde::EncodeToBytes(forward));

  stats_.state_bytes_moved += resp.state.size();
  return resp;
}

sim::Co<Result<ServiceBinding>> MigrationManager::PushTo(ObjectId id,
                                                         net::Address target) {
  // Snapshot and withdraw first; if the target refuses, reinstall via the
  // registry (the state is still in hand).
  const Context::LocalEntry* entry = context_->FindLocal(id);
  if (entry == nullptr) {
    co_return NotFoundError("object not local: " + id.ToString());
  }
  const InterfaceId iface = entry->iface;
  Result<ReleaseResponse> evicted = Evict(id, target);
  if (!evicted.ok()) co_return evicted.status();

  AcceptRequest req;
  req.object = id;
  req.iface = iface;
  req.protocol = evicted->protocol;
  req.state = evicted->state;  // keep a copy for rollback

  // A migration that can't complete promptly should roll back, not hold
  // the withdrawn object in limbo while retries grind on.
  rpc::RpcResult raw = co_await context_->client().Call(
      net::Address{target.node, target.port}, kMigrationControlObject,
      Method::kAccept, serde::EncodeToBytes(req),
      rpc::CallOptions{}.WithDeadline(Seconds(2)));
  if (!raw.ok()) {
    // Roll back: rebuild locally from the snapshot under the same id and
    // drop the (now wrong) forwarding hint.
    context_->server().ClearForwarding(id);
    (void)ServerObjectFactoryRegistry::Instance().Create(
        *context_, iface, id, evicted->protocol, std::move(evicted->state));
    co_return raw.status;
  }
  Result<AcceptResponse> resp =
      serde::DecodeFromBytes<AcceptResponse>(View(raw.payload));
  if (!resp.ok()) co_return resp.status();
  stats_.pushed++;
  PROXY_LOG(kInfo, context_->scheduler().now(), "migration",
            "pushed " << id.ToString() << " to "
                      << resp->binding.server.ToString());
  co_return resp->binding;
}

sim::Co<Result<ServiceBinding>> MigrationManager::Pull(
    ServiceBinding binding) {
  ReleaseRequest req;
  req.object = binding.object;
  req.new_home = context_->server_address();

  rpc::RpcResult raw = co_await context_->client().Call(
      binding.server, kMigrationControlObject, Method::kRelease,
      serde::EncodeToBytes(req), rpc::CallOptions{}.WithDeadline(Seconds(2)));
  if (!raw.ok()) co_return raw.status;
  Result<ReleaseResponse> resp =
      serde::DecodeFromBytes<ReleaseResponse>(View(raw.payload));
  if (!resp.ok()) co_return resp.status();

  Result<ServiceBinding> rebuilt =
      ServerObjectFactoryRegistry::Instance().Create(
          *context_, resp->iface, binding.object, resp->protocol,
          std::move(resp->state));
  if (!rebuilt.ok()) co_return rebuilt.status();
  stats_.pulled++;
  PROXY_LOG(kInfo, context_->scheduler().now(), "migration",
            "pulled " << binding.object.ToString() << " from "
                      << binding.server.ToString());
  co_return *rebuilt;
}

sim::Co<Result<MigrationManager::ReleaseResponse>>
MigrationManager::HandleRelease(ReleaseRequest req) {
  Result<ReleaseResponse> resp = Evict(req.object, req.new_home);
  if (!resp.ok()) co_return resp.status();
  stats_.released++;
  co_return std::move(*resp);
}

sim::Co<Result<MigrationManager::AcceptResponse>>
MigrationManager::HandleAccept(AcceptRequest req) {
  Result<ServiceBinding> rebuilt =
      ServerObjectFactoryRegistry::Instance().Create(
          *context_, req.iface, req.object, req.protocol,
          std::move(req.state));
  if (!rebuilt.ok()) co_return rebuilt.status();
  stats_.accepted++;
  co_return AcceptResponse{*rebuilt};
}

}  // namespace proxy::core
