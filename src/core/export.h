// ServiceExport: the server side of the proxy principle.
//
// Exporting an object makes it reachable: it appears in the context's
// RPC dispatch (for proxies), in the context's local registry (for the
// direct path and migration), and — once Publish()ed — in the name
// service. The export handle is also the capability root: Revoke() cuts
// every proxy off at once.
#pragma once

#include <memory>
#include <string>
#include <utility>

#include "core/binding.h"
#include "core/migration.h"
#include "core/runtime.h"
#include "rpc/server.h"
#include "rpc/stub.h"
#include "sim/task.h"

namespace proxy::core {

template <typename I>
class ServiceExport {
 public:
  /// Exports `impl` with `dispatch` (its skeleton) in `context`,
  /// advertising proxy protocol `protocol`. `migratable` may be null for
  /// objects that cannot move.
  static Result<ServiceExport> Create(
      Context& context, std::shared_ptr<I> impl,
      std::shared_ptr<rpc::Dispatch> dispatch, std::uint32_t protocol,
      std::shared_ptr<IMigratable> migratable = nullptr) {
    if (!impl || !dispatch) {
      return InvalidArgumentError("null implementation or dispatch");
    }
    const ObjectId id = context.MintObjectId();
    return CreateWithId(context, id, std::move(impl), std::move(dispatch),
                        protocol, std::move(migratable));
  }

  /// As Create, but under a caller-chosen id — migration re-exports an
  /// object under its original (stable) identity.
  static Result<ServiceExport> CreateWithId(
      Context& context, ObjectId id, std::shared_ptr<I> impl,
      std::shared_ptr<rpc::Dispatch> dispatch, std::uint32_t protocol,
      std::shared_ptr<IMigratable> migratable = nullptr) {
    PROXY_RETURN_IF_ERROR(context.server().ExportObject(id, dispatch));
    const Status local = context.RegisterLocal(
        id, InterfaceIdOf(I::kInterfaceName), impl, std::move(migratable));
    if (!local.ok()) {
      (void)context.server().RemoveObject(id);
      return local;
    }
    // Exporting makes this context a migration participant: its control
    // object must exist so peers can Pull objects away from it.
    context.migration();
    ServiceBinding binding;
    binding.server = context.server_address();
    binding.object = id;
    binding.interface = InterfaceIdOf(I::kInterfaceName);
    binding.protocol = protocol;
    return ServiceExport(context, binding, std::move(impl));
  }

  ServiceExport(ServiceExport&&) noexcept = default;
  ServiceExport& operator=(ServiceExport&&) noexcept = default;

  [[nodiscard]] const ServiceBinding& binding() const noexcept {
    return binding_;
  }
  [[nodiscard]] const std::shared_ptr<I>& impl() const noexcept {
    return impl_;
  }
  [[nodiscard]] Context& context() noexcept { return *context_; }

  /// Registers the binding in the name service under `name`.
  sim::Co<Result<rpc::Void>> Publish(std::string name,
                                     std::uint64_t lease_ns = 0) {
    return context_->names().RegisterService(std::move(name), binding_,
                                             lease_ns);
  }

  /// Revokes the capability: every proxy's next call fails with
  /// PERMISSION_DENIED, permanently.
  void Revoke() {
    context_->server().Revoke(binding_.object);
    context_->UnregisterLocal(binding_.object);
  }

  /// Withdraws the export without revoking (e.g. before migration: the
  /// id stays honourable via a forwarding hint).
  void Withdraw() {
    (void)context_->server().RemoveObject(binding_.object);
    context_->UnregisterLocal(binding_.object);
  }

 private:
  ServiceExport(Context& context, ServiceBinding binding,
                std::shared_ptr<I> impl)
      : context_(&context), binding_(binding), impl_(std::move(impl)) {}

  Context* context_;
  ServiceBinding binding_;
  std::shared_ptr<I> impl_;
};

}  // namespace proxy::core
