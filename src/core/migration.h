// Object migration.
//
// Each participating context runs a MigrationManager, which exports a
// control object under a per-context well-known id. Two operations move
// an object O from context A to context B, keeping O's object id stable:
//
//   push (A initiates): A snapshots O, calls B.Accept(id, iface, state);
//     B rebuilds O via the ServerObjectFactoryRegistry and exports it;
//     A withdraws its export and installs a forwarding hint.
//
//   pull (B initiates): B calls A.Release(id); A snapshots O, withdraws
//     it, installs the forwarding hint toward B *optimistically*, and
//     returns the state; B rebuilds and exports.
//
// Proxies never see any of this: their next call to A gets OBJECT_MOVED
// plus the new binding and retries transparently (ProxyBase::CallRaw).
//
// The "always-migrate" (distributed-virtual-memory-like) baseline in the
// experiments is built from pull: a DSM-style proxy pulls the object to
// its own context before operating on it.
#pragma once

#include <memory>

#include "core/binding.h"
#include "core/factory.h"
#include "core/runtime.h"
#include "rpc/server.h"
#include "rpc/stub.h"
#include "sim/task.h"

namespace proxy::core {

/// Well-known control object id every MigrationManager exports under.
inline constexpr ObjectId kMigrationControlObject{0x6d696772ULL,
                                                  0x6374726cULL};

struct MigrationStats {
  std::uint64_t pushed = 0;
  std::uint64_t pulled = 0;
  std::uint64_t accepted = 0;
  std::uint64_t released = 0;
  std::uint64_t state_bytes_moved = 0;
};

class MigrationManager {
 public:
  /// Exports the control object in `context`.
  explicit MigrationManager(Context& context);

  MigrationManager(const MigrationManager&) = delete;
  MigrationManager& operator=(const MigrationManager&) = delete;

  /// The control binding of the manager in the context at `server`.
  /// (Every context uses the same well-known control id.)
  static net::Address ControlAddress(const ServiceBinding& object_binding) {
    return object_binding.server;
  }

  /// Pushes local object `id` to the context whose RPC server is at
  /// `target`. Returns the object's new binding.
  sim::Co<Result<ServiceBinding>> PushTo(ObjectId id, net::Address target);

  /// Pulls the object described by `binding` into this context. Returns
  /// the new (local) binding.
  sim::Co<Result<ServiceBinding>> Pull(ServiceBinding binding);

  [[nodiscard]] const MigrationStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] Context& context() noexcept { return *context_; }

 private:
  struct ReleaseRequest {
    ObjectId object;
    net::Address new_home;  // forwarding target (the puller's server)
    PROXY_SERDE_FIELDS(object, new_home)
  };
  struct ReleaseResponse {
    InterfaceId iface;
    std::uint32_t protocol = 1;
    Bytes state;
    PROXY_SERDE_FIELDS(iface, protocol, state)
  };
  struct AcceptRequest {
    ObjectId object;
    InterfaceId iface;
    std::uint32_t protocol = 1;
    Bytes state;
    PROXY_SERDE_FIELDS(object, iface, protocol, state)
  };
  struct AcceptResponse {
    ServiceBinding binding;
    PROXY_SERDE_FIELDS(binding)
  };

  enum Method : std::uint32_t { kRelease = 1, kAccept = 2 };

  /// Snapshots and withdraws local object `id`; installs forwarding to
  /// `new_home`. Core of both push (local half) and Release (remote half).
  Result<ReleaseResponse> Evict(ObjectId id, const net::Address& new_home);

  sim::Co<Result<ReleaseResponse>> HandleRelease(ReleaseRequest req);
  sim::Co<Result<AcceptResponse>> HandleAccept(AcceptRequest req);

  Context* context_;
  std::shared_ptr<rpc::Dispatch> dispatch_;
  MigrationStats stats_;
};

}  // namespace proxy::core
