// Reliable, ordered delivery over unreliable datagrams.
//
// A go-back-N ARQ with cumulative acks and duplicate suppression. One
// channel serves many peers; state is kept per peer address. This is the
// transport used where a service needs an ordered stream (e.g. cache
// invalidation callbacks); the RPC runtime instead does its own
// retry/dedup because request/response needs no ordering.
//
// A peer that exhausts its retry budget is declared failed: its queued
// messages are dropped (the failure handler tells the layer above) and
// its sequence window is advanced past them, so the counters stay
// monotonic. Failure is no longer terminal: the channel can probe the
// peer (explicitly via Probe()/ResetPeer(), or automatically when
// `probe_interval` is set) with a resync message carrying the sender's
// next sequence number; an ack from the healed peer re-opens the lane and
// fires the recovery handler.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "net/endpoint.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"

namespace proxy::net {

/// ARQ tuning knobs (namespace-scope so it can be a default argument).
struct ArqParams {
  SimDuration retransmit_timeout = Milliseconds(10);
  int max_retries = 10;
  std::size_t window = 32;  // in-flight messages per peer
  /// Probe cadence toward a failed peer; 0 disables automatic probing
  /// (recovery then requires an explicit Probe()/ResetPeer()).
  SimDuration probe_interval = 0;
  /// Automatic probes sent per failure episode before giving up; 0 means
  /// keep probing until the peer answers.
  int max_probes = 0;
};

class ReliableChannel {
 public:
  using Handler = std::function<void(const Address& from, Bytes payload)>;
  /// Notified when a peer exhausts retries (e.g. partitioned away).
  using FailureHandler = std::function<void(const Address& peer)>;
  /// Notified when a failed peer answers a probe and is reachable again.
  using RecoveryHandler = std::function<void(const Address& peer)>;

  using Params = ArqParams;

  struct Stats {
    obs::Counter data_sent;
    obs::Counter retransmits;
    obs::Counter acks_sent;
    obs::Counter duplicates_dropped;
    obs::Counter delivered;
    obs::Counter peers_failed;
    obs::Counter peers_recovered;
    obs::Counter probes_sent;
  };

  /// Takes over the endpoint's handler.
  explicit ReliableChannel(Endpoint& endpoint, Params params = {});

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  void SetHandler(Handler handler) { handler_ = std::move(handler); }
  void SetFailureHandler(FailureHandler handler) {
    on_failure_ = std::move(handler);
  }
  void SetRecoveryHandler(RecoveryHandler handler) {
    on_recovery_ = std::move(handler);
  }

  /// Queues `payload` for ordered delivery to `to`. Fails only if the
  /// peer's send queue is full, the peer is currently declared dead, or
  /// the local endpoint refuses the datagram (oversized, unknown node) —
  /// in which case nothing is queued and the sequence space is untouched.
  Status Send(const Address& to, Bytes payload);

  /// Sends one probe/resync datagram toward a failed peer. An ack from
  /// the peer clears the failure and fires the recovery handler. Returns
  /// FAILED_PRECONDITION if the peer is not in the failed state.
  Status Probe(const Address& to);

  /// Forcibly clears `peer`'s failure state and resynchronizes: pending
  /// retransmission state is dropped, the sequence window advances past
  /// it, and a resync probe tells the receiver to expect the new base.
  /// The lane is immediately usable again (the normal retry path will
  /// re-declare failure if the peer is still dead).
  void ResetPeer(const Address& peer);

  /// True while `peer` is declared unreachable.
  [[nodiscard]] bool IsFailed(const Address& peer) const;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Attaches the tallies to `registry` as net.arq.*.
  void BindMetrics(obs::MetricsRegistry& registry) {
    registry.Attach("net.arq.data_sent", &stats_.data_sent);
    registry.Attach("net.arq.retransmits", &stats_.retransmits);
    registry.Attach("net.arq.acks_sent", &stats_.acks_sent);
    registry.Attach("net.arq.duplicates_dropped", &stats_.duplicates_dropped);
    registry.Attach("net.arq.delivered", &stats_.delivered);
    registry.Attach("net.arq.peers_failed", &stats_.peers_failed);
    registry.Attach("net.arq.peers_recovered", &stats_.peers_recovered);
    registry.Attach("net.arq.probes_sent", &stats_.probes_sent);
  }

  /// In-flight + queued messages toward `to` (for tests and backpressure).
  [[nodiscard]] std::size_t OutstandingTo(const Address& to) const;

 private:
  enum class MsgType : std::uint8_t { kData = 1, kAck = 2, kProbe = 3 };

  struct SendState {
    std::uint64_t next_seq = 0;   // next seq to assign
    std::uint64_t base = 0;       // oldest unacked seq
    std::deque<Bytes> in_flight;  // payloads [base, next_seq)
    sim::Timer timer;  // retransmit or probe timer (RAII)
    int retries = 0;
    int probes = 0;               // probes sent this failure episode
    bool failed = false;
  };

  struct RecvState {
    std::uint64_t expected = 0;
    std::map<std::uint64_t, Bytes> out_of_order;
  };

  void OnDatagram(const Address& from, OwnedBytes payload);
  void OnData(const Address& from, std::uint64_t seq, Bytes payload);
  void OnAck(const Address& from, std::uint64_t ack);
  void OnProbe(const Address& from, std::uint64_t seq);
  void TransmitWindow(const Address& to, SendState& st, bool is_retransmit);
  void ArmTimer(const Address& to, SendState& st);
  void OnTimeout(const Address& to);
  void OnProbeTimer(const Address& to);
  void SendAck(const Address& to, std::uint64_t expected);
  void SendProbe(const Address& to, SendState& st);
  void DeclareFailed(const Address& to, SendState& st);
  void Recover(const Address& from, SendState& st);

  Endpoint* endpoint_;
  Params params_;
  Handler handler_;
  FailureHandler on_failure_;
  RecoveryHandler on_recovery_;
  Stats stats_;
  std::unordered_map<Address, SendState> senders_;
  std::unordered_map<Address, RecvState> receivers_;
};

}  // namespace proxy::net
