// Datagram endpoints.
//
// A NodeStack is the per-node network stack: it owns the node's receive
// hook on the simulated Network and demultiplexes incoming datagrams to
// Endpoints by port. An Endpoint is an unreliable, unordered datagram
// socket: messages may be lost, duplicated (by retransmitting layers
// above) or reordered (by link jitter). Reliability is layered above —
// either by ReliableChannel or by the RPC runtime's retry/dedup logic.
//
// Each datagram is wrapped in the serde envelope (magic/version/CRC) plus
// a source-port header, so receivers can reply and corrupted traffic is
// rejected at this boundary.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "net/address.h"
#include "sim/network.h"

namespace proxy::net {

class NodeStack;

class Endpoint {
 public:
  /// Receives the datagram body as an OwnedBytes window of the arrival
  /// buffer: the envelope and source-port header have been stripped by
  /// narrowing, not copying. The handler owns the buffer from here —
  /// decode may borrow views of it for as long as it is kept alive.
  using Handler = std::function<void(const Address& from, OwnedBytes payload)>;

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  [[nodiscard]] Address address() const noexcept { return addr_; }

  /// The scheduler driving this endpoint's node.
  [[nodiscard]] sim::Scheduler& scheduler() noexcept;

  /// Installs the receive handler (one per endpoint).
  void SetHandler(Handler handler) { handler_ = std::move(handler); }

  /// Sends a datagram. Returns an error only for local misuse (unknown
  /// destination node, oversized payload); loss in transit is silent.
  Status Send(const Address& to, Bytes payload);

  /// Maximum payload accepted by Send.
  static constexpr std::size_t kMaxPayload = 1 << 20;  // 1 MiB

 private:
  friend class NodeStack;
  Endpoint(NodeStack& stack, Address addr) : stack_(&stack), addr_(addr) {}

  void Deliver(const Address& from, OwnedBytes payload) {
    if (handler_) handler_(from, std::move(payload));
  }

  NodeStack* stack_;
  Address addr_;
  Handler handler_;
};

class NodeStack {
 public:
  NodeStack(sim::Network& network, NodeId node);
  NodeStack(const NodeStack&) = delete;
  NodeStack& operator=(const NodeStack&) = delete;

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] sim::Network& network() noexcept { return *network_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept {
    return network_->scheduler();
  }

  /// Opens an endpoint on an explicit port. Returns null if taken.
  Endpoint* OpenEndpoint(PortId port);

  /// Opens an endpoint on the next free ephemeral port.
  Endpoint* OpenEphemeral();

  void CloseEndpoint(PortId port);

  /// Datagrams that failed envelope validation (corruption, truncation).
  [[nodiscard]] std::uint64_t rejected_datagrams() const noexcept {
    return rejected_;
  }

 private:
  friend class Endpoint;

  Status SendFrom(const Address& from, const Address& to, Bytes payload);
  void OnNetworkDeliver(NodeId from_node, PortId to_port, Bytes framed);

  sim::Network* network_;
  NodeId node_;
  std::uint32_t next_ephemeral_ = 0x8000;
  std::uint64_t rejected_ = 0;
  std::unordered_map<PortId, std::unique_ptr<Endpoint>> endpoints_;
};

inline sim::Scheduler& Endpoint::scheduler() noexcept {
  return stack_->scheduler();
}

}  // namespace proxy::net
