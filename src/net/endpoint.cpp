#include "net/endpoint.h"

#include "common/log.h"
#include "serde/message.h"
#include "serde/reader.h"
#include "serde/writer.h"

namespace proxy::net {

Status Endpoint::Send(const Address& to, Bytes payload) {
  return stack_->SendFrom(addr_, to, std::move(payload));
}

NodeStack::NodeStack(sim::Network& network, NodeId node)
    : network_(&network), node_(node) {
  network_->AttachReceiver(
      node, [this](NodeId from, PortId to_port, Bytes framed) {
        OnNetworkDeliver(from, to_port, std::move(framed));
      });
}

Endpoint* NodeStack::OpenEndpoint(PortId port) {
  auto [it, inserted] = endpoints_.try_emplace(port);
  if (!inserted) return nullptr;
  it->second.reset(new Endpoint(*this, Address{node_, port}));
  return it->second.get();
}

Endpoint* NodeStack::OpenEphemeral() {
  for (;;) {
    const PortId port(next_ephemeral_++);
    if (auto* ep = OpenEndpoint(port)) return ep;
  }
}

void NodeStack::CloseEndpoint(PortId port) { endpoints_.erase(port); }

Status NodeStack::SendFrom(const Address& from, const Address& to,
                           Bytes payload) {
  if (payload.size() > Endpoint::kMaxPayload) {
    return ResourceExhaustedError("datagram exceeds max payload");
  }
  // Header: source port, then the payload, all inside a CRC envelope.
  // The payload buffer is adopted into the writer's chain and gathered
  // exactly once, inside WrapEnvelope — the send path's single flatten.
  serde::Writer w;
  w.WriteVarint(from.port.value());
  w.WriteRaw(std::move(payload));
  return network_->Send(from.node, to.node, to.port,
                        serde::WrapEnvelope(std::move(w)));
}

void NodeStack::OnNetworkDeliver(NodeId from_node, PortId to_port,
                                 Bytes framed) {
  // Validate and strip the envelope + source-port header by narrowing
  // the arrival buffer; the body is never copied on this path.
  auto unwrapped = serde::UnwrapEnvelopeView(View(framed));
  if (!unwrapped.ok()) {
    ++rejected_;
    PROXY_LOG(kDebug, scheduler().now(), "net",
              "rejected datagram on node " << node_.value() << ": "
                                           << unwrapped.status().ToString());
    return;
  }
  serde::Reader r(*unwrapped);
  std::uint64_t src_port = 0;
  if (!r.ReadVarint(src_port).ok() || src_port > 0xffffffffULL) {
    ++rejected_;
    return;
  }
  BytesView body;
  if (!r.ReadRaw(r.remaining(), body).ok()) {
    ++rejected_;
    return;
  }
  const auto it = endpoints_.find(to_port);
  if (it == endpoints_.end()) {
    PROXY_LOG(kTrace, scheduler().now(), "net",
              "no endpoint on port " << to_port.value() << "; dropping");
    return;
  }
  const Address from{from_node, PortId(static_cast<std::uint32_t>(src_port))};
  OwnedBytes arena(std::move(framed));
  arena.Narrow(body);
  it->second->Deliver(from, std::move(arena));
}

}  // namespace proxy::net
