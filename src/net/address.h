// Network-visible address of an endpoint: (node, port).
#pragma once

#include <functional>
#include <string>

#include "common/id.h"
#include "serde/traits.h"

namespace proxy::net {

struct Address {
  NodeId node;
  PortId port;

  PROXY_SERDE_FIELDS(node, port)

  friend bool operator==(const Address& a, const Address& b) noexcept {
    return a.node == b.node && a.port == b.port;
  }
  friend bool operator!=(const Address& a, const Address& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Address& a, const Address& b) noexcept {
    if (a.node != b.node) return a.node < b.node;
    return a.port < b.port;
  }

  [[nodiscard]] std::string ToString() const {
    return "n" + std::to_string(node.value()) + ":p" +
           std::to_string(port.value());
  }
};

}  // namespace proxy::net

namespace std {
template <>
struct hash<proxy::net::Address> {
  size_t operator()(const proxy::net::Address& a) const noexcept {
    return (static_cast<size_t>(a.node.value()) << 32) ^ a.port.value();
  }
};
}  // namespace std
