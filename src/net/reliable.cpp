#include "net/reliable.h"

#include "common/log.h"
#include "serde/reader.h"
#include "serde/writer.h"

namespace proxy::net {

ReliableChannel::ReliableChannel(Endpoint& endpoint, Params params)
    : endpoint_(&endpoint), params_(params) {
  endpoint_->SetHandler([this](const Address& from, Bytes payload) {
    OnDatagram(from, std::move(payload));
  });
}

Status ReliableChannel::Send(const Address& to, Bytes payload) {
  SendState& st = senders_[to];
  if (st.failed) return UnavailableError("peer declared unreachable");
  if (st.in_flight.size() >= params_.window) {
    return ResourceExhaustedError("ARQ window full");
  }
  const std::uint64_t seq = st.next_seq++;
  st.in_flight.push_back(std::move(payload));

  // Transmit immediately (the whole window is always in flight).
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MsgType::kData));
  w.WriteVarint(seq);
  w.WriteBytes(View(st.in_flight.back()));
  stats_.data_sent++;
  PROXY_RETURN_IF_ERROR(endpoint_->Send(to, w.Take()));
  if (st.timer == sim::kInvalidTimer) ArmTimer(to, st);
  return Status::Ok();
}

std::size_t ReliableChannel::OutstandingTo(const Address& to) const {
  const auto it = senders_.find(to);
  return it == senders_.end() ? 0 : it->second.in_flight.size();
}

void ReliableChannel::OnDatagram(const Address& from, Bytes payload) {
  serde::Reader r(View(payload));
  std::uint8_t type = 0;
  if (!r.ReadU8(type).ok()) return;
  if (type == static_cast<std::uint8_t>(MsgType::kData)) {
    std::uint64_t seq = 0;
    Bytes body;
    if (!r.ReadVarint(seq).ok() || !r.ReadBytes(body).ok()) return;
    OnData(from, seq, std::move(body));
  } else if (type == static_cast<std::uint8_t>(MsgType::kAck)) {
    std::uint64_t ack = 0;
    if (!r.ReadVarint(ack).ok()) return;
    OnAck(from, ack);
  }
}

void ReliableChannel::OnData(const Address& from, std::uint64_t seq,
                             Bytes payload) {
  RecvState& st = receivers_[from];
  if (seq < st.expected) {
    // Duplicate of something already delivered: re-ack so the sender can
    // advance (its ack may have been lost).
    stats_.duplicates_dropped++;
    SendAck(from, st.expected);
    return;
  }
  if (seq > st.expected) {
    // Out of order: buffer (bounded by the sender window) and re-ack.
    if (st.out_of_order.size() < params_.window) {
      st.out_of_order.emplace(seq, std::move(payload));
    }
    SendAck(from, st.expected);
    return;
  }
  // In order: deliver, then drain any buffered successors.
  stats_.delivered++;
  st.expected++;
  if (handler_) handler_(from, std::move(payload));
  for (auto it = st.out_of_order.begin();
       it != st.out_of_order.end() && it->first == st.expected;) {
    stats_.delivered++;
    st.expected++;
    Bytes next = std::move(it->second);
    it = st.out_of_order.erase(it);
    if (handler_) handler_(from, std::move(next));
  }
  SendAck(from, st.expected);
}

void ReliableChannel::OnAck(const Address& from, std::uint64_t ack) {
  const auto it = senders_.find(from);
  if (it == senders_.end()) return;
  SendState& st = it->second;
  if (ack <= st.base) return;  // stale
  const std::uint64_t advanced = std::min(ack, st.next_seq) - st.base;
  for (std::uint64_t i = 0; i < advanced && !st.in_flight.empty(); ++i) {
    st.in_flight.pop_front();
  }
  st.base += advanced;
  st.retries = 0;  // progress resets the failure countdown
  if (st.timer != sim::kInvalidTimer) {
    endpoint_->scheduler().Cancel(st.timer);
    st.timer = sim::kInvalidTimer;
  }
  if (!st.in_flight.empty()) ArmTimer(from, st);
}

void ReliableChannel::TransmitWindow(const Address& to, SendState& st,
                                     bool is_retransmit) {
  std::uint64_t seq = st.base;
  for (const Bytes& payload : st.in_flight) {
    serde::Writer w;
    w.WriteU8(static_cast<std::uint8_t>(MsgType::kData));
    w.WriteVarint(seq++);
    w.WriteBytes(View(payload));
    if (is_retransmit) {
      stats_.retransmits++;
    } else {
      stats_.data_sent++;
    }
    (void)endpoint_->Send(to, w.Take());
  }
}

void ReliableChannel::ArmTimer(const Address& to, SendState& st) {
  st.timer = endpoint_->scheduler().PostAfter(
      params_.retransmit_timeout, [this, to] { OnTimeout(to); });
}

void ReliableChannel::OnTimeout(const Address& to) {
  const auto it = senders_.find(to);
  if (it == senders_.end()) return;
  SendState& st = it->second;
  st.timer = sim::kInvalidTimer;
  if (st.in_flight.empty()) return;
  if (++st.retries > params_.max_retries) {
    st.failed = true;
    st.in_flight.clear();
    stats_.peers_failed++;
    PROXY_LOG(kInfo, endpoint_->scheduler().now(), "arq",
              "peer " << to.ToString() << " declared unreachable");
    if (on_failure_) on_failure_(to);
    return;
  }
  TransmitWindow(to, st, /*is_retransmit=*/true);
  ArmTimer(to, st);
}

void ReliableChannel::SendAck(const Address& to, std::uint64_t expected) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MsgType::kAck));
  w.WriteVarint(expected);
  stats_.acks_sent++;
  (void)endpoint_->Send(to, w.Take());
}

}  // namespace proxy::net
