#include "net/reliable.h"

#include "common/log.h"
#include "serde/reader.h"
#include "serde/writer.h"

namespace proxy::net {

namespace {

Bytes EncodeSeqMessage(std::uint8_t type, std::uint64_t seq,
                       const Bytes* payload) {
  serde::Writer w;
  w.WriteU8(type);
  w.WriteVarint(seq);
  if (payload != nullptr) w.WriteBytes(View(*payload));
  return w.Take();
}

}  // namespace

ReliableChannel::ReliableChannel(Endpoint& endpoint, Params params)
    : endpoint_(&endpoint), params_(params) {
  endpoint_->SetHandler([this](const Address& from, OwnedBytes payload) {
    OnDatagram(from, std::move(payload));
  });
}

Status ReliableChannel::Send(const Address& to, Bytes payload) {
  SendState& st = senders_[to];
  if (st.failed) return UnavailableError("peer declared unreachable");
  if (st.in_flight.size() >= params_.window) {
    return ResourceExhaustedError("ARQ window full");
  }
  // Transmit immediately (the whole window is always in flight) — and
  // only on success queue the payload and consume a sequence number. A
  // local send failure must leave no trace, or the caller would see an
  // error while the message stays queued for retransmission and the peer
  // receives it anyway.
  PROXY_RETURN_IF_ERROR(endpoint_->Send(
      to, EncodeSeqMessage(static_cast<std::uint8_t>(MsgType::kData),
                           st.next_seq, &payload)));
  stats_.data_sent++;
  st.next_seq++;
  st.in_flight.push_back(std::move(payload));
  if (!st.timer.armed()) ArmTimer(to, st);
  return Status::Ok();
}

Status ReliableChannel::Probe(const Address& to) {
  const auto it = senders_.find(to);
  if (it == senders_.end() || !it->second.failed) {
    return FailedPreconditionError("peer is not in the failed state");
  }
  SendProbe(to, it->second);
  return Status::Ok();
}

void ReliableChannel::ResetPeer(const Address& peer) {
  const auto it = senders_.find(peer);
  if (it == senders_.end()) return;
  SendState& st = it->second;
  st.timer.Cancel();
  // Drop unacknowledged state but keep the sequence space monotonic: the
  // resync probe moves the receiver's `expected` forward to the new base,
  // so the two sides agree again without replaying stale duplicates.
  st.in_flight.clear();
  st.base = st.next_seq;
  st.retries = 0;
  st.probes = 0;
  st.failed = false;
  SendProbe(peer, st);
}

bool ReliableChannel::IsFailed(const Address& peer) const {
  const auto it = senders_.find(peer);
  return it != senders_.end() && it->second.failed;
}

std::size_t ReliableChannel::OutstandingTo(const Address& to) const {
  const auto it = senders_.find(to);
  return it == senders_.end() ? 0 : it->second.in_flight.size();
}

void ReliableChannel::OnDatagram(const Address& from, OwnedBytes payload) {
  serde::Reader r(payload.view());
  std::uint8_t type = 0;
  if (!r.ReadU8(type).ok()) return;
  if (type == static_cast<std::uint8_t>(MsgType::kData)) {
    std::uint64_t seq = 0;
    Bytes body;
    if (!r.ReadVarint(seq).ok() || !r.ReadBytes(body).ok()) return;
    OnData(from, seq, std::move(body));
  } else if (type == static_cast<std::uint8_t>(MsgType::kAck)) {
    std::uint64_t ack = 0;
    if (!r.ReadVarint(ack).ok()) return;
    OnAck(from, ack);
  } else if (type == static_cast<std::uint8_t>(MsgType::kProbe)) {
    std::uint64_t seq = 0;
    if (!r.ReadVarint(seq).ok()) return;
    OnProbe(from, seq);
  }
}

void ReliableChannel::OnData(const Address& from, std::uint64_t seq,
                             Bytes payload) {
  RecvState& st = receivers_[from];
  if (seq < st.expected) {
    // Duplicate of something already delivered: re-ack so the sender can
    // advance (its ack may have been lost).
    stats_.duplicates_dropped++;
    SendAck(from, st.expected);
    return;
  }
  if (seq > st.expected) {
    // Out of order: buffer (bounded by the sender window) and re-ack.
    if (st.out_of_order.size() < params_.window) {
      st.out_of_order.emplace(seq, std::move(payload));
    }
    SendAck(from, st.expected);
    return;
  }
  // In order: deliver, then drain any buffered successors.
  stats_.delivered++;
  st.expected++;
  if (handler_) handler_(from, std::move(payload));
  for (auto it = st.out_of_order.begin();
       it != st.out_of_order.end() && it->first == st.expected;) {
    stats_.delivered++;
    st.expected++;
    Bytes next = std::move(it->second);
    it = st.out_of_order.erase(it);
    if (handler_) handler_(from, std::move(next));
  }
  SendAck(from, st.expected);
}

void ReliableChannel::OnAck(const Address& from, std::uint64_t ack) {
  const auto it = senders_.find(from);
  if (it == senders_.end()) return;
  SendState& st = it->second;
  if (st.failed) {
    // Any ack at or past the (advanced) base proves the peer healed and
    // is synchronized with our sequence space.
    if (ack >= st.base) Recover(from, st);
    return;
  }
  if (ack <= st.base) return;  // stale
  const std::uint64_t advanced = std::min(ack, st.next_seq) - st.base;
  for (std::uint64_t i = 0; i < advanced && !st.in_flight.empty(); ++i) {
    st.in_flight.pop_front();
  }
  st.base += advanced;
  st.retries = 0;  // progress resets the failure countdown
  st.timer.Cancel();
  if (!st.in_flight.empty()) ArmTimer(from, st);
}

void ReliableChannel::OnProbe(const Address& from, std::uint64_t seq) {
  // Resync: the sender dropped everything below `seq`; expecting less
  // would deadlock both sides. Never move backwards — a stale probe
  // reordered behind fresh data must not reopen the duplicate window.
  RecvState& st = receivers_[from];
  if (seq > st.expected) {
    st.expected = seq;
    st.out_of_order.erase(st.out_of_order.begin(),
                          st.out_of_order.lower_bound(seq));
  }
  SendAck(from, st.expected);
}

void ReliableChannel::TransmitWindow(const Address& to, SendState& st,
                                     bool is_retransmit) {
  std::uint64_t seq = st.base;
  for (const Bytes& payload : st.in_flight) {
    if (is_retransmit) {
      stats_.retransmits++;
    } else {
      stats_.data_sent++;
    }
    (void)endpoint_->Send(
        to, EncodeSeqMessage(static_cast<std::uint8_t>(MsgType::kData), seq++,
                             &payload));
  }
}

void ReliableChannel::ArmTimer(const Address& to, SendState& st) {
  st.timer = endpoint_->scheduler().PostAfter(
      params_.retransmit_timeout, [this, to] { OnTimeout(to); });
}

void ReliableChannel::OnTimeout(const Address& to) {
  const auto it = senders_.find(to);
  if (it == senders_.end()) return;
  SendState& st = it->second;
  if (st.failed || st.in_flight.empty()) return;
  if (++st.retries > params_.max_retries) {
    DeclareFailed(to, st);
    return;
  }
  TransmitWindow(to, st, /*is_retransmit=*/true);
  ArmTimer(to, st);
}

void ReliableChannel::DeclareFailed(const Address& to, SendState& st) {
  st.failed = true;
  // The queued messages are lost for good — advance the sequence window
  // past them so a later recovery starts from agreed, monotonic counters
  // instead of desyncing with the receiver's `expected`.
  st.in_flight.clear();
  st.base = st.next_seq;
  st.retries = 0;
  st.probes = 0;
  stats_.peers_failed++;
  PROXY_LOG(kInfo, endpoint_->scheduler().now(), "arq",
            "peer " << to.ToString() << " declared unreachable");
  if (on_failure_) on_failure_(to);
  if (params_.probe_interval > 0) {
    st.timer = endpoint_->scheduler().PostAfter(
        params_.probe_interval, [this, to] { OnProbeTimer(to); });
  }
}

void ReliableChannel::OnProbeTimer(const Address& to) {
  const auto it = senders_.find(to);
  if (it == senders_.end()) return;
  SendState& st = it->second;
  if (!st.failed) return;  // recovered in the meantime
  if (params_.max_probes > 0 && st.probes >= params_.max_probes) {
    PROXY_LOG(kInfo, endpoint_->scheduler().now(), "arq",
              "giving up probing " << to.ToString());
    return;
  }
  SendProbe(to, st);
  st.timer = endpoint_->scheduler().PostAfter(
      params_.probe_interval, [this, to] { OnProbeTimer(to); });
}

void ReliableChannel::SendProbe(const Address& to, SendState& st) {
  st.probes++;
  stats_.probes_sent++;
  (void)endpoint_->Send(
      to, EncodeSeqMessage(static_cast<std::uint8_t>(MsgType::kProbe),
                           st.next_seq, nullptr));
}

void ReliableChannel::Recover(const Address& from, SendState& st) {
  st.failed = false;
  st.retries = 0;
  st.probes = 0;
  st.timer.Cancel();  // pending probe timer
  stats_.peers_recovered++;
  PROXY_LOG(kInfo, endpoint_->scheduler().now(), "arq",
            "peer " << from.ToString() << " reachable again");
  if (on_recovery_) on_recovery_(from);
}

void ReliableChannel::SendAck(const Address& to, std::uint64_t expected) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(MsgType::kAck));
  w.WriteVarint(expected);
  stats_.acks_sent++;
  (void)endpoint_->Send(to, w.Take());
}

}  // namespace proxy::net
