// Deterministic discrete-event scheduler.
//
// All concurrency in the runtime is cooperative: coroutines and callbacks
// are interleaved by this single-threaded event loop over *virtual* time.
// Two runs with the same seed execute the same events in the same order,
// which is what makes every test and benchmark replayable.
//
// The core is a hierarchical timer wheel (DESIGN.md §17): 8 levels of 256
// slots, each level covering one byte of the 64-bit nanosecond timestamp.
// An event lands at the level of the highest byte in which its deadline
// differs from the current time; advancing time cascades a covering slot
// down one level at a time until due events reach the level-0 slot for
// their exact instant, which is spliced — in insertion order — onto a
// same-instant FIFO run queue. Events live in a generation-stamped slab
// (freelist reuse, small-buffer-optimized callback storage), so the steady
// state allocates nothing and cancellation is an O(1) generation bump.
//
// Ordering semantics are bit-stable with the original heap-based core:
// events run in (timestamp, monotonic sequence) order, FIFO among equal
// timestamps — the wheel produces this order structurally, with no
// comparator (see DESIGN.md §17 for the invariant argument).
//
// Scheduling returns a move-only RAII `Timer` handle that cancels the
// event when dropped; use `.Detach()` for fire-and-forget work.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace proxy::sim {

class Scheduler;

namespace detail {

/// One-shot type-erased callable with inline small-buffer storage. The
/// slab stores one per event; callables up to kInlineBytes (which covers
/// every lambda the runtime posts, including network delivery closures
/// carrying a Bytes payload) are constructed in place — no heap traffic.
class InlineCallback {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  InlineCallback() noexcept = default;
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { Reset(); }

  template <typename F>
  void Emplace(F&& fn) {
    assert(destroy_ == nullptr);
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      target_ = ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      target_ = new Fn(std::forward<F>(fn));
      invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
      destroy_ = [](void* p) { delete static_cast<Fn*>(p); };
    }
  }

  void Invoke() { invoke_(target_); }

  void Reset() noexcept {
    if (destroy_ != nullptr) destroy_(target_);
    destroy_ = nullptr;
    invoke_ = nullptr;
    target_ = nullptr;
  }

  [[nodiscard]] bool empty() const noexcept { return destroy_ == nullptr; }

 private:
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void* target_ = nullptr;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace detail

/// RAII handle for a scheduled event. Move-only: dropping the handle
/// cancels the event (an armed timer someone forgot is almost always a
/// bug — proxy_lint L5 flags a discarded temporary). Call `.Detach()` for
/// deliberate fire-and-forget work, `.Cancel()` to cancel explicitly.
class [[nodiscard]] Timer {
 public:
  Timer() noexcept = default;
  Timer(Timer&& other) noexcept
      : sched_(std::exchange(other.sched_, nullptr)),
        index_(other.index_),
        gen_(other.gen_) {}
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      Cancel();
      sched_ = std::exchange(other.sched_, nullptr);
      index_ = other.index_;
      gen_ = other.gen_;
    }
    return *this;
  }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { Cancel(); }

  /// Cancels the event. Returns true if it had not yet fired; cancelling
  /// a fired, detached or empty handle is a no-op returning false.
  bool Cancel() noexcept;

  /// Releases the handle without cancelling: the event fires on schedule.
  void Detach() noexcept { sched_ = nullptr; }

  /// True while the event is still queued (not fired, not cancelled).
  [[nodiscard]] bool armed() const noexcept;
  explicit operator bool() const noexcept { return armed(); }

 private:
  friend class Scheduler;
  Timer(Scheduler* sched, std::uint32_t index, std::uint32_t gen) noexcept
      : sched_(sched), index_(index), gen_(gen) {}

  Scheduler* sched_ = nullptr;  // null = empty/detached/cancelled
  std::uint32_t index_ = 0;
  std::uint32_t gen_ = 0;
};

/// Where `Drive` should stop. Constructed via the named factories; the
/// legacy `Run`/`RunUntil`/`RunFor` names forward to these.
class StopCondition {
 public:
  /// Stop when no live events remain.
  [[nodiscard]] static StopCondition Drained() { return StopCondition(Kind::kDrained); }

  /// Stop when `pred()` holds (checked before every event, and once more
  /// if the queue drains first).
  [[nodiscard]] static StopCondition When(std::function<bool()> pred) {
    StopCondition c(Kind::kWhen);
    c.pred_ = std::move(pred);
    return c;
  }

  /// Run every event with timestamp <= now + d, then set time to that
  /// instant (even if the queue drained earlier).
  [[nodiscard]] static StopCondition After(SimDuration d) {
    StopCondition c(Kind::kAfter);
    c.time_ = d;
    return c;
  }

  /// Absolute form of After: run events with timestamp <= t, then set
  /// time to t (no-op on time if t is already in the past).
  [[nodiscard]] static StopCondition At(SimTime t) {
    StopCondition c(Kind::kAt);
    c.time_ = t;
    return c;
  }

 private:
  friend class Scheduler;
  enum class Kind : std::uint8_t { kDrained, kWhen, kAfter, kAt };
  explicit StopCondition(Kind kind) : kind_(kind) {}

  Kind kind_;
  SimTime time_ = 0;
  std::function<bool()> pred_;
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// The scheduler currently driving events. Set by Step() and by
  /// Spawn(); used by coroutine plumbing that has no other way to reach
  /// its event loop (the runtime is single-threaded by design).
  static Scheduler* Current() noexcept;

  /// Marks this scheduler as the current one (normally automatic).
  void MakeCurrent() noexcept;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at the current time (after already-queued events at
  /// this instant — FIFO among equal timestamps).
  template <typename F>
  Timer Post(F&& fn) {
    return PostAt(now_, std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now).
  template <typename F>
  Timer PostAt(SimTime t, F&& fn) {
    const std::uint32_t index = Enqueue(t < now_ ? now_ : t);
    Event& ev = EventAt(index);
    ev.fn.Emplace(std::forward<F>(fn));
    return Timer(this, index, ev.gen);
  }

  /// Schedules `fn` after a delay.
  template <typename F>
  Timer PostAfter(SimDuration d, F&& fn) {
    return PostAt(now_ + d, std::forward<F>(fn));
  }

  /// Runs the earliest live event. Returns false if none remain.
  bool Step();

  /// Drives the event loop until `stop` is satisfied. Returns true when
  /// the stop condition was met; for `When`, returns the final predicate
  /// value (false means the queue drained with the predicate unmet).
  bool Drive(StopCondition stop);

  // Legacy names, kept as thin forwarders so call sites read either way.
  /// Runs until the queue drains.
  void Run() { (void)Drive(StopCondition::Drained()); }
  /// Runs until `pred()` is true or the queue drains; returns pred().
  bool RunUntil(std::function<bool()> pred) {
    return Drive(StopCondition::When(std::move(pred)));
  }
  /// Runs events with timestamp <= now + d, then advances time to it.
  void RunFor(SimDuration d) { (void)Drive(StopCondition::After(d)); }

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_run() const noexcept {
    return events_run_;
  }

  /// Live (non-cancelled) events still queued.
  [[nodiscard]] std::size_t pending() const noexcept { return live_count_; }

  /// Observation hook: called once per executed event, before its
  /// callback runs, with (virtual time, event sequence number). The
  /// sequence number is the FIFO tiebreak — monotonic across Post calls —
  /// so it fingerprints a run's exact event interleaving; installed by
  /// the chaos harness's trace recorder, unset in normal operation.
  using StepHook = std::function<void(SimTime, std::uint64_t)>;
  void SetStepHook(StepHook hook) { step_hook_ = std::move(hook); }

 private:
  friend class Timer;

  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr int kLevels = 8;    // one per byte of SimTime
  static constexpr int kSlots = 256;   // slots per level
  static constexpr std::uint32_t kBlockShift = 8;
  static constexpr std::uint32_t kBlockSize = 1u << kBlockShift;  // events

  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;     // monotonic; the FIFO tiebreak
    std::uint32_t next = kNil; // intrusive slot-list / freelist link
    std::uint32_t gen = 0;     // bumped when fired or cancelled
    bool armed = false;
    detail::InlineCallback fn;
  };

  /// Singly-linked intrusive list with O(1) append and splice. Append
  /// order is insertion order, which is what makes FIFO structural.
  struct SlotList {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    [[nodiscard]] bool empty() const noexcept { return head == kNil; }
  };

  Event& EventAt(std::uint32_t index) noexcept {
    return blocks_[index >> kBlockShift][index & (kBlockSize - 1)];
  }
  [[nodiscard]] const Event& EventAt(std::uint32_t index) const noexcept {
    return blocks_[index >> kBlockShift][index & (kBlockSize - 1)];
  }

  // Slab + wheel plumbing (scheduler.cpp).
  std::uint32_t Enqueue(SimTime t);
  std::uint32_t AllocEvent();
  void FreeEvent(std::uint32_t index) noexcept;
  void InsertIntoWheel(std::uint32_t index, SimTime t) noexcept;
  void Append(SlotList& list, std::uint32_t index) noexcept;
  /// Next live event to run (advancing time past empty regions), or kNil
  /// if none is due at or before `limit`.
  std::uint32_t NextRunnable(SimTime limit);
  /// Refills the run queue from the wheel: cascades covering slots and
  /// splices the next due level-0 slot. False when drained or when the
  /// next region starts after `limit`.
  bool Advance(SimTime limit);
  void RunEvent(std::uint32_t index);

  // Timer backend.
  bool CancelEvent(std::uint32_t index, std::uint32_t gen) noexcept;
  [[nodiscard]] bool EventArmed(std::uint32_t index,
                                std::uint32_t gen) const noexcept;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_run_ = 0;
  std::size_t live_count_ = 0;

  SlotList run_queue_;                  // events due exactly at now_
  SlotList wheel_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels][kSlots / 64] = {};

  std::vector<std::unique_ptr<Event[]>> blocks_;
  std::uint32_t slab_size_ = 0;         // high-water mark of used indices
  std::uint32_t free_head_ = kNil;

  StepHook step_hook_;
};

inline bool Timer::Cancel() noexcept {
  if (sched_ == nullptr) return false;
  Scheduler* sched = std::exchange(sched_, nullptr);
  return sched->CancelEvent(index_, gen_);
}

inline bool Timer::armed() const noexcept {
  return sched_ != nullptr && sched_->EventArmed(index_, gen_);
}

}  // namespace proxy::sim
