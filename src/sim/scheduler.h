// Deterministic discrete-event scheduler.
//
// All concurrency in the runtime is cooperative: coroutines and callbacks
// are interleaved by this single-threaded event loop over *virtual* time.
// Two runs with the same seed execute the same events in the same order,
// which is what makes every test and benchmark replayable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/clock.h"

namespace proxy::sim {

/// Handle for cancelling a scheduled event.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// The scheduler currently driving events. Set by Step() and by
  /// Spawn(); used by coroutine plumbing that has no other way to reach
  /// its event loop (the runtime is single-threaded by design).
  static Scheduler* Current() noexcept;

  /// Marks this scheduler as the current one (normally automatic).
  void MakeCurrent() noexcept;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `fn` at the current time (after already-queued events at
  /// this instant — FIFO among equal timestamps).
  TimerId Post(std::function<void()> fn) { return PostAt(now_, std::move(fn)); }

  /// Schedules `fn` at absolute virtual time `t` (clamped to now).
  TimerId PostAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after a delay.
  TimerId PostAfter(SimDuration d, std::function<void()> fn) {
    return PostAt(now_ + d, std::move(fn));
  }

  /// Cancels a pending event. Returns true if it had not yet fired;
  /// cancelling a fired or unknown id is a no-op.
  bool Cancel(TimerId id);

  /// Runs the earliest event. Returns false if the queue is empty.
  bool Step();

  /// Runs until the queue drains.
  void Run();

  /// Runs until `pred()` is true or the queue drains; returns pred().
  bool RunUntil(const std::function<bool()>& pred);

  /// Runs events with timestamp <= now + d, then advances time to it.
  void RunFor(SimDuration d);

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_run() const noexcept {
    return events_run_;
  }

  /// Live (non-cancelled) events still queued.
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.size();
  }

  /// Observation hook: called once per executed event, before its
  /// callback runs, with (virtual time, timer id). Installed by the chaos
  /// harness's trace recorder to fingerprint a run's exact event
  /// interleaving; unset in normal operation (one branch per event).
  using StepHook = std::function<void(SimTime, TimerId)>;
  void SetStepHook(StepHook hook) { step_hook_ = std::move(hook); }

 private:
  struct Event {
    SimTime time = 0;
    TimerId id = 0;            // also the FIFO tiebreak (monotonic)
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  /// Pops cancelled events off the top of the heap.
  void SkipCancelled();

  SimTime now_ = 0;
  TimerId next_id_ = 1;
  StepHook step_hook_;
  std::uint64_t events_run_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<TimerId> pending_;  // ids queued and not cancelled
};

}  // namespace proxy::sim
