#include "sim/scheduler.h"

#include <algorithm>
#include <utility>

namespace proxy::sim {

namespace {
Scheduler* g_current = nullptr;
}  // namespace

Scheduler* Scheduler::Current() noexcept { return g_current; }

void Scheduler::MakeCurrent() noexcept { g_current = this; }

TimerId Scheduler::PostAt(SimTime t, std::function<void()> fn) {
  g_current = this;
  const TimerId id = next_id_++;
  heap_.push(Event{std::max(t, now_), id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool Scheduler::Cancel(TimerId id) {
  // Lazy cancellation: forget the id; the heap entry is dropped when it
  // reaches the top.
  return pending_.erase(id) > 0;
}

void Scheduler::SkipCancelled() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

bool Scheduler::Step() {
  g_current = this;
  SkipCancelled();
  if (heap_.empty()) return false;
  // Move the event out before running it: the handler may schedule more.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  pending_.erase(ev.id);
  now_ = ev.time;
  ++events_run_;
  if (step_hook_) step_hook_(ev.time, ev.id);
  ev.fn();
  return true;
}

void Scheduler::Run() {
  while (Step()) {
  }
}

bool Scheduler::RunUntil(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!Step()) return pred();
  }
  return true;
}

void Scheduler::RunFor(SimDuration d) {
  const SimTime deadline = now_ + d;
  for (;;) {
    SkipCancelled();
    if (heap_.empty() || heap_.top().time > deadline) break;
    Step();
  }
  now_ = deadline;
}

}  // namespace proxy::sim
