#include "sim/scheduler.h"

#include <algorithm>
#include <bit>

namespace proxy::sim {

namespace {

Scheduler* g_current = nullptr;

/// First occupied slot at or after `from` in a 256-bit occupancy row,
/// or -1 if the rest of the row is empty.
int FindOccupied(const std::uint64_t words[4], int from) noexcept {
  std::uint64_t mask = ~std::uint64_t{0} << (from & 63);
  for (int word = from >> 6; word < 4; ++word) {
    const std::uint64_t bits = words[word] & mask;
    if (bits != 0) return word * 64 + std::countr_zero(bits);
    mask = ~std::uint64_t{0};
  }
  return -1;
}

}  // namespace

Scheduler::Scheduler() = default;
Scheduler::~Scheduler() = default;

Scheduler* Scheduler::Current() noexcept { return g_current; }

void Scheduler::MakeCurrent() noexcept { g_current = this; }

std::uint32_t Scheduler::AllocEvent() {
  if (free_head_ != kNil) {
    const std::uint32_t index = free_head_;
    free_head_ = EventAt(index).next;
    return index;
  }
  if ((slab_size_ >> kBlockShift) == blocks_.size()) {
    blocks_.push_back(std::make_unique<Event[]>(kBlockSize));
  }
  return slab_size_++;
}

void Scheduler::FreeEvent(std::uint32_t index) noexcept {
  Event& ev = EventAt(index);
  ev.fn.Reset();
  ev.armed = false;
  ev.next = free_head_;
  free_head_ = index;
}

void Scheduler::Append(SlotList& list, std::uint32_t index) noexcept {
  EventAt(index).next = kNil;
  if (list.head == kNil) {
    list.head = index;
  } else {
    EventAt(list.tail).next = index;
  }
  list.tail = index;
}

void Scheduler::InsertIntoWheel(std::uint32_t index, SimTime t) noexcept {
  // The event belongs at the level of the highest byte in which its
  // deadline differs from now: only after time enters that byte's region
  // (cascading the covering slot) can it sink toward level 0. This is
  // what keeps FIFO structural — a slot can never receive a direct
  // insert after it has started accumulating cascaded events.
  const SimTime diff = t ^ now_;
  assert(t > now_);
  const int level = (63 - std::countl_zero(diff)) >> 3;
  const int slot = static_cast<int>((t >> (8 * level)) & 0xFF);
  Append(wheel_[level][slot], index);
  occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

std::uint32_t Scheduler::Enqueue(SimTime t) {
  g_current = this;
  const std::uint32_t index = AllocEvent();
  Event& ev = EventAt(index);
  ev.time = t;
  ev.seq = next_seq_++;
  ev.next = kNil;
  ev.armed = true;
  ++live_count_;
  if (t == now_) {
    // Due at the current instant: straight onto the FIFO run queue,
    // after everything already queued for this instant.
    Append(run_queue_, index);
  } else {
    InsertIntoWheel(index, t);
  }
  return index;
}

bool Scheduler::CancelEvent(std::uint32_t index, std::uint32_t gen) noexcept {
  if (index >= slab_size_) return false;
  Event& ev = EventAt(index);
  if (ev.gen != gen || !ev.armed) return false;
  ev.armed = false;
  ev.gen++;       // stale handles to a reused slot (ABA) now miss
  ev.fn.Reset();  // drop captures eagerly; the node unlinks lazily
  --live_count_;
  return true;
}

bool Scheduler::EventArmed(std::uint32_t index,
                           std::uint32_t gen) const noexcept {
  if (index >= slab_size_) return false;
  const Event& ev = EventAt(index);
  return ev.gen == gen && ev.armed;
}

bool Scheduler::Advance(SimTime limit) {
  while (run_queue_.empty()) {
    if (live_count_ == 0) return false;
    // The earliest pending region is the first occupied slot at/after the
    // cursor on the lowest occupied level: lower levels always hold
    // earlier deadlines (their higher bytes match now's), and within a
    // level the slot index orders regions.
    int level = 0;
    int slot = -1;
    for (; level < kLevels; ++level) {
      const int cursor = static_cast<int>((now_ >> (8 * level)) & 0xFF);
      slot = FindOccupied(occupied_[level], cursor);
      if (slot >= 0) break;
    }
    assert(level < kLevels && slot >= 0);

    // Start of the region this slot covers: now's bytes above `level`,
    // byte `level` replaced by `slot`, lower bytes zeroed. Every event in
    // the slot is at or after it.
    const SimTime high = level == kLevels - 1
                             ? 0
                             : (now_ & (~SimTime{0} << (8 * (level + 1))));
    const SimTime region_start =
        high | (static_cast<SimTime>(static_cast<unsigned>(slot))
                << (8 * level));
    if (region_start > limit) return false;  // slot left in place

    now_ = region_start;
    SlotList list = wheel_[level][slot];
    wheel_[level][slot] = SlotList{};
    occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));

    if (level == 0) {
      // A level-0 slot holds events with the identical timestamp
      // (== region_start): splice the whole list, insertion order
      // intact, onto the run queue.
      if (run_queue_.head == kNil) {
        run_queue_ = list;
      } else {
        EventAt(run_queue_.tail).next = list.head;
        run_queue_.tail = list.tail;
      }
    } else {
      // Cascade one level down, preserving insertion order. Lower-level
      // slots of this region are necessarily empty (no direct insert can
      // target a region time hasn't entered), so append order stays seq
      // order. Cancelled events are reclaimed here, not reinserted.
      for (std::uint32_t i = list.head; i != kNil;) {
        Event& ev = EventAt(i);
        const std::uint32_t next = ev.next;
        if (!ev.armed) {
          FreeEvent(i);
        } else if (ev.time == now_) {
          Append(run_queue_, i);
        } else {
          InsertIntoWheel(i, ev.time);
        }
        i = next;
      }
    }
  }
  return true;
}

std::uint32_t Scheduler::NextRunnable(SimTime limit) {
  for (;;) {
    while (run_queue_.head != kNil) {
      const std::uint32_t index = run_queue_.head;
      Event& ev = EventAt(index);
      run_queue_.head = ev.next;
      if (run_queue_.head == kNil) run_queue_.tail = kNil;
      if (!ev.armed) {
        FreeEvent(index);  // cancelled while queued; reclaim lazily
        continue;
      }
      return index;
    }
    if (!Advance(limit)) return kNil;
  }
}

void Scheduler::RunEvent(std::uint32_t index) {
  Event& ev = EventAt(index);
  assert(ev.time == now_);
  // Consume before running: a self-Cancel from inside the callback is a
  // no-op returning false, exactly as with the old lazy-cancel heap.
  ev.armed = false;
  ev.gen++;
  --live_count_;
  ++events_run_;
  if (step_hook_) step_hook_(ev.time, ev.seq);
  ev.fn.Invoke();
  // Reclaim only after the callback returns: it runs out of the slab
  // node, and freeing first would let a Post from inside it reuse (and
  // clobber) the storage mid-flight.
  FreeEvent(index);
}

bool Scheduler::Step() {
  g_current = this;
  const std::uint32_t index = NextRunnable(~SimTime{0});
  if (index == kNil) return false;
  RunEvent(index);
  return true;
}

bool Scheduler::Drive(StopCondition stop) {
  g_current = this;
  switch (stop.kind_) {
    case StopCondition::Kind::kDrained:
      while (Step()) {
      }
      return true;
    case StopCondition::Kind::kWhen:
      while (!stop.pred_()) {
        if (!Step()) return stop.pred_();
      }
      return true;
    case StopCondition::Kind::kAfter:
    case StopCondition::Kind::kAt: {
      const SimTime deadline = stop.kind_ == StopCondition::Kind::kAfter
                                   ? now_ + stop.time_
                                   : std::max(stop.time_, now_);
      for (;;) {
        const std::uint32_t index = NextRunnable(deadline);
        if (index == kNil) break;
        RunEvent(index);
      }
      now_ = deadline;
      return true;
    }
  }
  return true;  // unreachable; all kinds handled above
}

}  // namespace proxy::sim
