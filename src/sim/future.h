// Future / Promise over simulated time.
//
// A Future<T> is the single-consumer side of a one-shot value produced
// elsewhere in the event loop (an RPC reply, a migration completion, a
// lease renewal). It can be `co_await`ed from a Co<> coroutine, given a
// callback, or polled by driver code after running the scheduler.
//
// Resumption of an awaiting coroutine is *posted* to the scheduler rather
// than run inline, so completion order is governed by the event queue and
// stays deterministic and stack-bounded.
#pragma once

#include <cassert>
#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "sim/scheduler.h"

namespace proxy::sim {

namespace detail {

template <typename T>
struct FutureState {
  explicit FutureState(Scheduler& sched) : scheduler(&sched) {}

  Scheduler* scheduler;
  std::optional<T> value;
  std::coroutine_handle<> waiter;      // at most one awaiting coroutine
  std::function<void(T&&)> callback;   // or one completion callback

  /// Delivers the value exactly once; later calls are ignored (e.g. a
  /// late reply racing a timeout that already completed the future).
  bool Set(T&& v) {
    if (value.has_value()) return false;
    value.emplace(std::move(v));
    if (waiter) {
      auto h = std::exchange(waiter, nullptr);
      scheduler->Post([h] { h.resume(); }).Detach();
    } else if (callback) {
      auto cb = std::exchange(callback, nullptr);
      // Post, not call: keeps completion ordering queue-driven.
      auto* self = this;
      scheduler->Post([cb = std::move(cb), self] { cb(std::move(*self->value)); })
          .Detach();
    }
    return true;
  }
};

}  // namespace detail

template <typename T>
class Promise;

template <typename T>
class [[nodiscard]] Future {
 public:
  Future() = default;

  /// True once the value has been produced.
  [[nodiscard]] bool ready() const noexcept {
    return state_ && state_->value.has_value();
  }

  /// Peeks at the value; only valid when ready().
  [[nodiscard]] const T& peek() const {
    assert(ready());
    return *state_->value;
  }

  /// Takes the value out; only valid when ready().
  [[nodiscard]] T take() {
    assert(ready());
    return std::move(*state_->value);
  }

  /// Registers a completion callback (alternative to co_await). If the
  /// value is already present the callback is posted immediately.
  void Then(std::function<void(T&&)> cb) {
    assert(state_ && !state_->waiter && !state_->callback);
    if (state_->value.has_value()) {
      auto st = state_;
      st->scheduler
          ->Post([st, cb = std::move(cb)] { cb(std::move(*st->value)); })
          .Detach();
    } else {
      state_->callback = std::move(cb);
    }
  }

  // --- awaitable interface ---
  [[nodiscard]] bool await_ready() const noexcept { return ready(); }
  void await_suspend(std::coroutine_handle<> h) {
    assert(state_ && !state_->waiter && !state_->callback);
    state_->waiter = h;
  }
  T await_resume() { return std::move(*state_->value); }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  explicit Promise(Scheduler& sched)
      : state_(std::make_shared<detail::FutureState<T>>(sched)) {}

  [[nodiscard]] Future<T> future() const { return Future<T>(state_); }

  /// Fulfills the future. Returns false if it was already fulfilled.
  bool Set(T value) const { return state_->Set(std::move(value)); }

  [[nodiscard]] bool fulfilled() const noexcept {
    return state_->value.has_value();
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Awaitable that resumes the coroutine after `d` of virtual time.
class SleepAwaiter {
 public:
  SleepAwaiter(Scheduler& sched, SimDuration d) noexcept
      : sched_(&sched), delay_(d) {}

  [[nodiscard]] bool await_ready() const noexcept { return delay_ == 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    sched_->PostAfter(delay_, [h] { h.resume(); }).Detach();
  }
  void await_resume() const noexcept {}

 private:
  Scheduler* sched_;
  SimDuration delay_;
};

inline SleepAwaiter SleepFor(Scheduler& sched, SimDuration d) noexcept {
  return {sched, d};
}

}  // namespace proxy::sim
