// Simulated network.
//
// Nodes are connected by point-to-point links with configurable latency,
// bandwidth, jitter and loss. Delivery is store-and-forward: each
// directed link transmits one message at a time, so bandwidth contention
// and queueing delay emerge naturally. Same-node sends go through a
// loopback path with a small fixed cost (the "same machine, different
// context" case the lightweight-RPC experiment measures).
//
// This is the substitute for the 1986 paper's real LAN (see DESIGN.md
// "Substitutions"): experiments sweep the link parameters instead of
// being pinned to one piece of 1986 hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/scheduler.h"

namespace proxy::sim {

/// Characteristics of one direction of a link.
struct LinkParams {
  SimDuration latency = Microseconds(100);  // propagation delay
  double bandwidth_bps = 10e6;              // 10 Mb/s: 1986-era Ethernet
  SimDuration jitter = 0;                   // uniform extra delay [0, jitter]
  double loss = 0.0;                        // drop probability per message
};

/// Cost of the in-node loopback path (context switch + copy).
struct LoopbackParams {
  SimDuration fixed = Microseconds(5);
  SimDuration per_kib = Microseconds(1);
};

struct NetStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;   // loss or partition
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t loopback_messages = 0;
  std::uint64_t messages_held = 0;      // delayed by a paused node
  std::uint64_t delivery_batches = 0;   // scheduler events spent delivering
  std::uint64_t messages_coalesced = 0; // rode an existing batch for free

  void Reset() { *this = NetStats{}; }
};

/// What happened to a message, as seen by the trace hook.
enum class NetTraceKind : std::uint8_t {
  kSend = 1,
  kDeliver = 2,
  kDropLoss = 3,
  kDropPartition = 4,
  kHold = 5,       // destination paused; queued for later delivery
  kRelease = 6,    // held message re-injected on unpause
  kCrash = 7,      // node crash-stopped (in-flight + held messages die)
  kRestart = 8,    // node came back empty
  kDropCrash = 9,  // message lost because an endpoint was crashed
};

class Network {
 public:
  /// Called on message arrival at a node: (source node, destination port,
  /// payload). The net layer demultiplexes ports to endpoints.
  using DeliveryFn =
      std::function<void(NodeId from, PortId to_port, Bytes payload)>;

  Network(Scheduler& sched, std::uint64_t seed);

  /// Adds a node; returns its id. Ids are dense, starting at 0.
  NodeId AddNode(std::string name);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  /// Registers the receive hook for a node (one per node).
  void AttachReceiver(NodeId node, DeliveryFn fn);

  /// Sets the parameters for both directions of the (a, b) link.
  void SetLink(NodeId a, NodeId b, const LinkParams& params);

  /// Default used by node pairs without an explicit SetLink.
  void SetDefaultLink(const LinkParams& params) { default_link_ = params; }

  void SetLoopback(const LoopbackParams& params) { loopback_ = params; }

  /// Cuts or heals connectivity between two nodes. While partitioned,
  /// messages are silently dropped (as on a real network).
  void SetPartitioned(NodeId a, NodeId b, bool partitioned);
  [[nodiscard]] bool IsPartitioned(NodeId a, NodeId b) const;

  /// Drops every partition at once (the chaos harness's heal-all).
  void ClearPartitions() { partitioned_.clear(); }

  /// Pauses a node: arriving messages are held (in arrival order) instead
  /// of delivered, modeling a stalled process whose peers see silence.
  /// Unpausing re-injects the backlog at the current instant — the burst
  /// of delayed, batched delivery a real stall produces.
  void SetNodePaused(NodeId node, bool paused);
  [[nodiscard]] bool IsNodePaused(NodeId node) const;

  /// Crash-stops a node: every in-flight message to or from it is lost
  /// (even ones that would arrive after a restart — the old incarnation
  /// is gone), its held backlog is discarded, and new sends to/from it
  /// vanish silently. Restarting clears the flag; the node rejoins with
  /// no memory of its past (crash-stop, then rejoin). Both transitions
  /// are traced so replay fingerprints cover them.
  void SetNodeCrashed(NodeId node, bool crashed);
  [[nodiscard]] bool IsNodeCrashed(NodeId node) const;

  /// Effective parameters of the (from, to) direction — the explicit
  /// SetLink value or the default. Lets fault injectors perturb a link
  /// and restore what was there before.
  [[nodiscard]] LinkParams link_params(NodeId from, NodeId to) const;

  /// Observation hook for every message event (send, deliver, drop,
  /// hold, release). Installed by the chaos trace recorder; unset in
  /// normal operation.
  using TraceHook = std::function<void(NetTraceKind, NodeId from, NodeId to,
                                       PortId to_port, std::size_t bytes)>;
  void SetTraceHook(TraceHook hook) { trace_hook_ = std::move(hook); }

  /// Queues `payload` for delivery to `to_port` on node `to`. Returns
  /// InvalidArgument for unknown nodes; loss and partition are *not*
  /// errors at the sender (datagram semantics).
  Status Send(NodeId from, NodeId to, PortId to_port, Bytes payload);

  [[nodiscard]] const NetStats& stats() const noexcept { return stats_; }
  NetStats& mutable_stats() noexcept { return stats_; }

  [[nodiscard]] Scheduler& scheduler() noexcept { return *sched_; }

 private:
  struct DirectedLink {
    LinkParams params;
    SimTime busy_until = 0;  // store-and-forward serialization point
  };

  static std::uint64_t LinkKey(NodeId a, NodeId b) noexcept {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }

  struct HeldMessage {
    NodeId from;
    PortId to_port;
    Bytes payload;
  };

  // Batched delivery: same-instant arrivals at the same node coalesce
  // into one scheduler event that drains the batch in arrival order. The
  // per-message partition/crash/incarnation checks and the trace hook
  // still run once per message, at drain time, in the original order.
  struct PendingDelivery {
    NodeId from;
    PortId to_port;
    Bytes payload;
    std::uint64_t dest_incarnation;
    bool via_link;  // link messages re-check the partition on arrival
  };
  struct BatchKey {
    std::uint32_t node;
    SimTime at;
    bool operator==(const BatchKey&) const = default;
  };
  struct BatchKeyHash {
    std::size_t operator()(const BatchKey& k) const noexcept {
      std::uint64_t h = (k.at + k.node) * 0x9e3779b97f4a7c15ULL;
      h ^= h >> 32;
      return static_cast<std::size_t>(h);
    }
  };

  DirectedLink& LinkFor(NodeId from, NodeId to);
  void ScheduleDelivery(NodeId from, NodeId to, PortId to_port,
                        SimTime arrival, std::uint64_t dest_incarnation,
                        bool via_link, Bytes payload);
  void DrainDeliveries(NodeId to, SimTime at);
  void Deliver(NodeId from, NodeId to, PortId to_port, Bytes payload);
  void Trace(NetTraceKind kind, NodeId from, NodeId to, PortId to_port,
             std::size_t bytes) {
    if (trace_hook_) trace_hook_(kind, from, to, to_port, bytes);
  }

  Scheduler* sched_;
  Rng rng_;
  LinkParams default_link_;
  LoopbackParams loopback_;
  std::vector<std::string> nodes_;
  std::vector<DeliveryFn> receivers_;
  std::unordered_map<std::uint64_t, DirectedLink> links_;
  std::unordered_map<std::uint64_t, bool> partitioned_;  // undirected key
  std::unordered_map<std::uint32_t, std::vector<HeldMessage>> paused_;
  std::unordered_map<BatchKey, std::vector<PendingDelivery>, BatchKeyHash>
      batches_;
  std::vector<bool> crashed_;
  // Bumped on every crash; a message captures its destination's value at
  // send time and is dropped on arrival if it no longer matches, so mail
  // addressed to a dead incarnation never reaches the restarted node.
  std::vector<std::uint64_t> incarnation_;
  NetStats stats_;
  TraceHook trace_hook_;
};

}  // namespace proxy::sim
