#include "sim/network.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.h"

namespace proxy::sim {

Network::Network(Scheduler& sched, std::uint64_t seed)
    : sched_(&sched), rng_(seed) {}

NodeId Network::AddNode(std::string name) {
  const NodeId id(static_cast<std::uint32_t>(nodes_.size()));
  nodes_.push_back(std::move(name));
  receivers_.emplace_back();
  crashed_.push_back(false);
  incarnation_.push_back(0);
  return id;
}

const std::string& Network::node_name(NodeId id) const {
  assert(id.value() < nodes_.size());
  return nodes_[id.value()];
}

void Network::AttachReceiver(NodeId node, DeliveryFn fn) {
  assert(node.value() < receivers_.size());
  receivers_[node.value()] = std::move(fn);
}

void Network::SetLink(NodeId a, NodeId b, const LinkParams& params) {
  links_[LinkKey(a, b)].params = params;
  links_[LinkKey(b, a)].params = params;
}

void Network::SetPartitioned(NodeId a, NodeId b, bool partitioned) {
  const auto key = LinkKey(NodeId(std::min(a.value(), b.value())),
                           NodeId(std::max(a.value(), b.value())));
  partitioned_[key] = partitioned;
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  const auto key = LinkKey(NodeId(std::min(a.value(), b.value())),
                           NodeId(std::max(a.value(), b.value())));
  const auto it = partitioned_.find(key);
  return it != partitioned_.end() && it->second;
}

void Network::SetNodePaused(NodeId node, bool paused) {
  if (paused) {
    paused_.try_emplace(node.value());
    return;
  }
  const auto it = paused_.find(node.value());
  if (it == paused_.end()) return;
  std::vector<HeldMessage> backlog = std::move(it->second);
  paused_.erase(it);
  // Re-inject the backlog in arrival order at the current instant: the
  // stalled process wakes up and drains everything at once.
  for (auto& held : backlog) {
    sched_
        ->Post([this, node, held = std::move(held)]() mutable {
          Trace(NetTraceKind::kRelease, held.from, node, held.to_port,
                held.payload.size());
          Deliver(held.from, node, held.to_port, std::move(held.payload));
        })
        .Detach();
  }
}

bool Network::IsNodePaused(NodeId node) const {
  return paused_.contains(node.value());
}

void Network::SetNodeCrashed(NodeId node, bool crashed) {
  assert(node.value() < nodes_.size());
  if (crashed_[node.value()] == crashed) return;
  crashed_[node.value()] = crashed;
  if (crashed) {
    incarnation_[node.value()]++;
    // Any backlog held for a paused node dies with the process.
    paused_.erase(node.value());
    Trace(NetTraceKind::kCrash, node, node, PortId(0), 0);
    PROXY_LOG(kDebug, sched_->now(), "net", "crash " << node_name(node));
  } else {
    Trace(NetTraceKind::kRestart, node, node, PortId(0), 0);
    PROXY_LOG(kDebug, sched_->now(), "net", "restart " << node_name(node));
  }
}

bool Network::IsNodeCrashed(NodeId node) const {
  return node.value() < crashed_.size() && crashed_[node.value()];
}

LinkParams Network::link_params(NodeId from, NodeId to) const {
  const auto it = links_.find(LinkKey(from, to));
  return it == links_.end() ? default_link_ : it->second.params;
}

Network::DirectedLink& Network::LinkFor(NodeId from, NodeId to) {
  auto [it, inserted] = links_.try_emplace(LinkKey(from, to));
  if (inserted) it->second.params = default_link_;
  return it->second;
}

Status Network::Send(NodeId from, NodeId to, PortId to_port, Bytes payload) {
  if (from.value() >= nodes_.size() || to.value() >= nodes_.size()) {
    return InvalidArgumentError("send to/from unknown node");
  }
  stats_.messages_sent++;
  stats_.bytes_sent += payload.size();
  Trace(NetTraceKind::kSend, from, to, to_port, payload.size());

  if (crashed_[from.value()] || crashed_[to.value()]) {
    stats_.messages_dropped++;
    Trace(NetTraceKind::kDropCrash, from, to, to_port, payload.size());
    return Status::Ok();  // datagram semantics: sender does not learn
  }
  const std::uint64_t dest_incarnation = incarnation_[to.value()];

  if (from == to) {
    // Loopback: fixed context-switch cost plus a copy cost per KiB.
    stats_.loopback_messages++;
    const SimDuration delay =
        loopback_.fixed + loopback_.per_kib * (payload.size() / 1024);
    ScheduleDelivery(from, to, to_port, sched_->now() + delay,
                     dest_incarnation, /*via_link=*/false,
                     std::move(payload));
    return Status::Ok();
  }

  if (IsPartitioned(from, to)) {
    stats_.messages_dropped++;
    Trace(NetTraceKind::kDropPartition, from, to, to_port, payload.size());
    PROXY_LOG(kTrace, sched_->now(), "net",
              "drop (partition) " << node_name(from) << "->" << node_name(to));
    return Status::Ok();  // datagram semantics: sender does not learn
  }

  DirectedLink& link = LinkFor(from, to);
  if (rng_.Chance(link.params.loss)) {
    stats_.messages_dropped++;
    Trace(NetTraceKind::kDropLoss, from, to, to_port, payload.size());
    PROXY_LOG(kTrace, sched_->now(), "net",
              "drop (loss) " << node_name(from) << "->" << node_name(to));
    return Status::Ok();
  }

  // Store-and-forward: the link transmits one message at a time.
  const double bits = static_cast<double>(payload.size()) * 8.0;
  const auto transmit = static_cast<SimDuration>(
      bits / link.params.bandwidth_bps * 1e9);
  const SimTime start = std::max(sched_->now(), link.busy_until);
  link.busy_until = start + transmit;
  const SimDuration jitter =
      link.params.jitter == 0
          ? 0
          : rng_.UniformU64(link.params.jitter + 1);
  const SimTime arrival = link.busy_until + link.params.latency + jitter;

  ScheduleDelivery(from, to, to_port, arrival, dest_incarnation,
                   /*via_link=*/true, std::move(payload));
  return Status::Ok();
}

void Network::ScheduleDelivery(NodeId from, NodeId to, PortId to_port,
                               SimTime arrival,
                               std::uint64_t dest_incarnation, bool via_link,
                               Bytes payload) {
  // Same-instant arrivals at one node share a single scheduler event: the
  // first opens the batch, the rest append to it for free. Batch order is
  // append order, which is exactly the per-message event order the old
  // one-event-per-message core produced.
  auto [it, opened] = batches_.try_emplace(BatchKey{to.value(), arrival});
  it->second.push_back(PendingDelivery{from, to_port, std::move(payload),
                                       dest_incarnation, via_link});
  if (opened) {
    stats_.delivery_batches++;
    sched_->PostAt(arrival, [this, to, arrival] { DrainDeliveries(to, arrival); })
        .Detach();
  } else {
    stats_.messages_coalesced++;
  }
}

void Network::DrainDeliveries(NodeId to, SimTime at) {
  const auto it = batches_.find(BatchKey{to.value(), at});
  assert(it != batches_.end());
  // Detach the batch first: a receiver callback may send again and open a
  // fresh batch for this (node, instant) — events posted "now" run later
  // in this same virtual instant, exactly like the unbatched core.
  std::vector<PendingDelivery> batch = std::move(it->second);
  batches_.erase(it);
  for (auto& msg : batch) {
    // A partition raised while in flight also eats the message.
    if (msg.via_link && IsPartitioned(msg.from, to)) {
      stats_.messages_dropped++;
      Trace(NetTraceKind::kDropPartition, msg.from, to, msg.to_port,
            msg.payload.size());
      continue;
    }
    // So does a crash of either endpoint: mail addressed to a dead
    // incarnation is lost even if the node restarted in the meantime —
    // checked per message, so a crash mid-drain still eats the tail.
    if (crashed_[to.value()] ||
        incarnation_[to.value()] != msg.dest_incarnation) {
      stats_.messages_dropped++;
      Trace(NetTraceKind::kDropCrash, msg.from, to, msg.to_port,
            msg.payload.size());
      continue;
    }
    Deliver(msg.from, to, msg.to_port, std::move(msg.payload));
  }
}

void Network::Deliver(NodeId from, NodeId to, PortId to_port, Bytes payload) {
  if (const auto it = paused_.find(to.value()); it != paused_.end()) {
    stats_.messages_held++;
    Trace(NetTraceKind::kHold, from, to, to_port, payload.size());
    it->second.push_back(HeldMessage{from, to_port, std::move(payload)});
    return;
  }
  stats_.messages_delivered++;
  stats_.bytes_delivered += payload.size();
  Trace(NetTraceKind::kDeliver, from, to, to_port, payload.size());
  auto& receiver = receivers_[to.value()];
  if (!receiver) {
    PROXY_LOG(kDebug, sched_->now(), "net",
              "no receiver attached on " << node_name(to) << "; dropping");
    return;
  }
  receiver(from, to_port, std::move(payload));
}

}  // namespace proxy::sim
