// Coroutine task types.
//
// Co<T> is a *lazy* coroutine: creating one does nothing until it is
// co_awaited (which chains it onto the awaiting coroutine via symmetric
// transfer) or handed to Spawn(), which starts it as a root activity and
// exposes its result as a Future<T>.
//
// Exceptions escaping a coroutine terminate the program by design:
// expected failures travel as Result values, so an exception here is a
// programmer error (see DESIGN.md design rules).
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/future.h"
#include "sim/scheduler.h"

namespace proxy::sim {

template <typename T>
class Co;

namespace detail {

// The continuation is *posted* to the scheduler rather than resumed by
// symmetric transfer. Besides keeping completion ordering queue-driven,
// this is load-bearing: GCC 12's symmetric transfer lets a continuation
// destroy the completed coroutine's frame while that coroutine's actor
// invocation is still on the native stack, double-destroying by-value
// parameters (reproduced in isolation; see DESIGN.md "toolchain notes").
// Posting means the actor always returns to the event loop before the
// continuation — and therefore any frame destruction — runs.
struct FinalAwaiter {
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  template <typename P>
  void await_suspend(std::coroutine_handle<P> h) const noexcept {
    if (auto cont = h.promise().continuation) {
      Scheduler::Current()->Post([cont] { cont.resume(); }).Detach();
    }
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct CoPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  [[noreturn]] void unhandled_exception() { std::terminate(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    std::optional<T> value;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Co(Co&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~Co() {
    if (h_) h_.destroy();
  }

  // --- awaitable interface (transfers execution into this coroutine) ---
  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() {
    assert(h_.promise().value.has_value());
    return std::move(*h_.promise().value);
  }

 private:
  template <typename U>
  friend Future<U> Spawn(Scheduler& sched, Co<U> co);

  explicit Co(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase<void> {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Co(Co&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~Co() {
    if (h_) h_.destroy();
  }

  [[nodiscard]] bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() const noexcept {}

 private:
  friend Future<bool> Spawn(Scheduler& sched, Co<void> co);

  explicit Co(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

namespace detail {

/// Self-destroying eager coroutine used as the root of a spawned chain.
struct RootTask {
  struct promise_type {
    RootTask get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };
};

template <typename T>
RootTask RunRoot(Co<T> co, Promise<T> done) {
  done.Set(co_await std::move(co));
}

inline RootTask RunRootVoid(Co<void> co, Promise<bool> done) {
  co_await std::move(co);
  done.Set(true);
}

}  // namespace detail

/// Starts `co` as a root activity on `sched`. The coroutine begins
/// executing immediately (up to its first suspension point); its result
/// is delivered through the returned future.
template <typename T>
Future<T> Spawn(Scheduler& sched, Co<T> co) {
  sched.MakeCurrent();  // completions posted before the first Step
  Promise<T> done(sched);
  detail::RunRoot(std::move(co), done);
  return done.future();
}

/// Void overload: the future reports completion as `true`.
inline Future<bool> Spawn(Scheduler& sched, Co<void> co) {
  sched.MakeCurrent();
  Promise<bool> done(sched);
  detail::RunRootVoid(std::move(co), done);
  return done.future();
}

}  // namespace proxy::sim
