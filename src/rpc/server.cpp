#include "rpc/server.h"

#include <string>
#include <utility>

#include "common/log.h"

namespace proxy::rpc {

RpcServer::RpcServer(net::Endpoint& endpoint)
    : RpcServer(endpoint, Params{}) {}

RpcServer::RpcServer(net::Endpoint& endpoint, Params params)
    : endpoint_(&endpoint), params_(params) {
  endpoint_->SetHandler([this](const net::Address& from, OwnedBytes payload) {
    OnDatagram(from, std::move(payload));
  });
}

Status RpcServer::ExportObject(ObjectId id, std::shared_ptr<Dispatch> dispatch) {
  if (id.IsNil()) return InvalidArgumentError("nil object id");
  const auto [it, inserted] = objects_.emplace(id, std::move(dispatch));
  (void)it;
  if (!inserted) return AlreadyExistsError("object already exported");
  forwarding_.erase(id);
  return Status::Ok();
}

Status RpcServer::RemoveObject(ObjectId id) {
  if (objects_.erase(id) == 0) return NotFoundError("object not exported");
  return Status::Ok();
}

void RpcServer::SetForwarding(ObjectId id, Bytes hint) {
  forwarding_[id] = std::move(hint);
}

void RpcServer::Revoke(ObjectId id) {
  objects_.erase(id);
  forwarding_.erase(id);
  revoked_.insert(id);
}

void RpcServer::Reset() {
  generation_++;
  history_.clear();
}

void RpcServer::BindMetrics(obs::MetricsRegistry& registry) {
  registry.Attach("rpc.server.requests_received", &stats_.requests_received);
  registry.Attach("rpc.server.executions", &stats_.executions);
  registry.Attach("rpc.server.duplicate_suppressed",
                  &stats_.duplicate_suppressed);
  registry.Attach("rpc.server.in_progress_dropped",
                  &stats_.in_progress_dropped);
  registry.Attach("rpc.server.unknown_object", &stats_.unknown_object);
  registry.Attach("rpc.server.unknown_method", &stats_.unknown_method);
  registry.Attach("rpc.server.expired_dropped", &stats_.expired_dropped);
  registry.Attach("rpc.server.queue_wait_ns", &queue_wait_);
  registry.Attach("rpc.server.exec_ns", &exec_latency_);
}

void RpcServer::OnDatagram(const net::Address& from, OwnedBytes payload) {
  // Borrowed decode: request.args is a window of `payload`, which rides
  // into Execute's coroutine frame as the request-scoped arena.
  auto request = DecodeRequestView(payload.view());
  if (!request.ok()) {
    PROXY_LOG(kDebug, scheduler().now(), "rpc",
              "undecodable request: " << request.status().ToString());
    return;
  }
  stats_.requests_received++;

  ClientHistory& hist = history_[request->call.client_nonce];
  const std::uint64_t seq = request->call.seq;

  // At-most-once: answer retransmissions from the cache...
  if (const auto cached = hist.replies.find(seq);
      cached != hist.replies.end()) {
    stats_.duplicate_suppressed++;
    (void)endpoint_->Send(from, cached->second);
    return;
  }
  // ...and drop duplicates of calls still executing (the eventual reply
  // will answer both transmissions).
  if (hist.in_progress.contains(seq)) {
    stats_.in_progress_dropped++;
    return;
  }

  // Deadline already passed: the caller has given up on this call, so
  // executing it would only burn server time. Answer TIMEOUT (uncached —
  // any retransmission carries the same expired deadline).
  if (request->deadline != 0 && scheduler().now() >= request->deadline) {
    stats_.expired_dropped++;
    ReplyFrame reply;
    reply.call = request->call;
    reply.code = StatusCode::kTimeout;
    reply.error_message = "deadline expired before dispatch";
    (void)endpoint_->Send(from, EncodeReply(reply));
    return;
  }

  // Revoked capability: refuse before any dispatch work.
  if (revoked_.contains(request->object)) {
    ReplyFrame reply;
    reply.call = request->call;
    reply.code = StatusCode::kPermissionDenied;
    reply.error_message = "capability revoked";
    (void)endpoint_->Send(from, EncodeReply(reply));
    return;
  }

  // Migrated object? Answer with the forwarding hint without executing.
  if (const auto fwd = forwarding_.find(request->object);
      fwd != forwarding_.end()) {
    ReplyFrame reply;
    reply.call = request->call;
    reply.code = StatusCode::kObjectMoved;
    reply.error_message = "object migrated";
    reply.result = fwd->second;
    (void)endpoint_->Send(from, EncodeReply(reply));
    return;
  }

  hist.in_progress.emplace(seq, true);
  // Detach the execution coroutine; it replies and updates the cache.
  (void)sim::Spawn(scheduler(), Execute(from, *request, std::move(payload),
                                        scheduler().now()));
}

sim::Co<void> RpcServer::Execute(net::Address from, RequestFrameView request,
                                 OwnedBytes arena, SimTime received_at) {
  // `arena` is not read here by name: its whole job is to live in this
  // coroutine's frame so request.args stays valid across suspensions.
  (void)arena;
  const std::uint64_t born = generation_;
  Result<Bytes> outcome = InternalError("uninitialized outcome");

  const auto obj = objects_.find(request.object);
  if (obj == objects_.end()) {
    stats_.unknown_object++;
    outcome = NotFoundError("no such object: " + request.object.ToString());
  } else if (const Method* method = obj->second->Find(request.method);
             method == nullptr) {
    stats_.unknown_method++;
    outcome = NotFoundError("no such method: " + std::to_string(request.method));
  } else {
    stats_.executions++;
    const SimTime dispatched = scheduler().now();
    queue_wait_.Record(dispatched - received_at);
    CallContext ctx{from, request.call, dispatched, request.trace};
    if (spans_ != nullptr && request.trace.active()) {
      // The execution is a child of the caller's wire span; the handler
      // sees the child so its own downstream calls nest under it.
      ctx.trace = spans_->Begin(
          request.trace, "exec m" + std::to_string(request.method),
          dispatched);
    }
    outcome = co_await (*method)(request.args, ctx);
    if (spans_ != nullptr && ctx.trace.active() &&
        ctx.trace != request.trace) {
      spans_->End(ctx.trace, scheduler().now(), outcome.status());
    }
    exec_latency_.Record(scheduler().now() - dispatched);
  }

  // The process crashed while this handler ran: the execution dies with
  // it — no reply, no cache entry.
  if (born != generation_) co_return;

  SendReply(from, request.call, std::move(outcome));

  ClientHistory& hist = history_[request.call.client_nonce];
  hist.in_progress.erase(request.call.seq);
}

void RpcServer::SendReply(const net::Address& to, const CallId& call,
                          Result<Bytes> outcome) {
  ReplyFrame reply;
  reply.call = call;
  if (outcome.ok()) {
    reply.code = StatusCode::kOk;
    reply.result = std::move(*outcome);
  } else {
    reply.code = outcome.status().code();
    reply.error_message = outcome.status().message();
  }
  Bytes encoded = EncodeReply(std::move(reply));
  CacheReply(call.client_nonce, call.seq, encoded);
  (void)endpoint_->Send(to, std::move(encoded));
}

void RpcServer::CacheReply(std::uint64_t nonce, std::uint64_t seq,
                           Bytes encoded) {
  ClientHistory& hist = history_[nonce];
  hist.replies[seq] = std::move(encoded);
  hist.order.push_back(seq);
  while (hist.order.size() > params_.reply_cache_per_client) {
    hist.replies.erase(hist.order.front());
    hist.order.pop_front();
  }
}

}  // namespace proxy::rpc
