#include "rpc/server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/log.h"

namespace proxy::rpc {

RpcServer::RpcServer(net::Endpoint& endpoint)
    : RpcServer(endpoint, Params{}) {}

RpcServer::RpcServer(net::Endpoint& endpoint, Params params)
    : endpoint_(&endpoint), params_(params) {
  endpoint_->SetHandler([this](const net::Address& from, OwnedBytes payload) {
    OnDatagram(from, std::move(payload));
  });
}

Status RpcServer::ExportObject(ObjectId id, std::shared_ptr<Dispatch> dispatch) {
  if (id.IsNil()) return InvalidArgumentError("nil object id");
  const auto [it, inserted] = objects_.emplace(id, std::move(dispatch));
  (void)it;
  if (!inserted) return AlreadyExistsError("object already exported");
  forwarding_.erase(id);
  return Status::Ok();
}

Status RpcServer::RemoveObject(ObjectId id) {
  if (objects_.erase(id) == 0) return NotFoundError("object not exported");
  return Status::Ok();
}

void RpcServer::SetForwarding(ObjectId id, Bytes hint) {
  forwarding_[id] = std::move(hint);
}

void RpcServer::Revoke(ObjectId id) {
  objects_.erase(id);
  forwarding_.erase(id);
  revoked_.insert(id);
}

void RpcServer::Reset() {
  generation_++;
  history_.clear();
  // The process died: queued work vanishes with it (no replies — the
  // clients' retry/deadline machinery takes over), and the in-flight
  // executions that the generation fence will strand no longer hold
  // admission slots.
  for (auto& bucket : queue_) bucket.clear();
  running_ = 0;
}

std::size_t RpcServer::admission_queue_depth() const noexcept {
  std::size_t depth = 0;
  for (const auto& bucket : queue_) depth += bucket.size();
  return depth;
}

void RpcServer::BindMetrics(obs::MetricsRegistry& registry) {
  registry.Attach("rpc.server.requests_received", &stats_.requests_received);
  registry.Attach("rpc.server.executions", &stats_.executions);
  registry.Attach("rpc.server.duplicate_suppressed",
                  &stats_.duplicate_suppressed);
  registry.Attach("rpc.server.in_progress_dropped",
                  &stats_.in_progress_dropped);
  registry.Attach("rpc.server.unknown_object", &stats_.unknown_object);
  registry.Attach("rpc.server.unknown_method", &stats_.unknown_method);
  registry.Attach("rpc.server.expired_dropped", &stats_.expired_dropped);
  registry.Attach("rpc.server.admission_queued", &stats_.admission_queued);
  registry.Attach("rpc.server.admission_rejected",
                  &stats_.admission_rejected);
  registry.Attach("rpc.server.admission_evicted", &stats_.admission_evicted);
  registry.Attach("rpc.server.shed_expired_queued",
                  &stats_.shed_expired_queued);
  registry.Attach("rpc.server.queue_wait_ns", &queue_wait_);
  registry.Attach("rpc.server.exec_ns", &exec_latency_);
}

void RpcServer::OnDatagram(const net::Address& from, OwnedBytes payload) {
  // Borrowed decode: request.args is a window of `payload`, which rides
  // into Execute's coroutine frame as the request-scoped arena.
  auto request = DecodeRequestView(payload.view());
  if (!request.ok()) {
    PROXY_LOG(kDebug, scheduler().now(), "rpc",
              "undecodable request: " << request.status().ToString());
    return;
  }
  stats_.requests_received++;

  ClientHistory& hist = history_[request->call.client_nonce];
  const std::uint64_t seq = request->call.seq;

  // At-most-once: answer retransmissions from the cache...
  if (const auto cached = hist.replies.find(seq);
      cached != hist.replies.end()) {
    stats_.duplicate_suppressed++;
    (void)endpoint_->Send(from, cached->second);
    return;
  }
  // ...and drop duplicates of calls still executing (the eventual reply
  // will answer both transmissions).
  if (hist.in_progress.contains(seq)) {
    stats_.in_progress_dropped++;
    return;
  }

  // Deadline already passed: the caller has given up on this call, so
  // executing it would only burn server time. Answer TIMEOUT (uncached —
  // any retransmission carries the same expired deadline).
  if (request->deadline != 0 && scheduler().now() >= request->deadline) {
    stats_.expired_dropped++;
    ReplyFrame reply;
    reply.call = request->call;
    reply.code = StatusCode::kTimeout;
    reply.error_message = "deadline expired before dispatch";
    (void)endpoint_->Send(from, EncodeReply(reply));
    return;
  }

  // Revoked capability: refuse before any dispatch work.
  if (revoked_.contains(request->object)) {
    ReplyFrame reply;
    reply.call = request->call;
    reply.code = StatusCode::kPermissionDenied;
    reply.error_message = "capability revoked";
    (void)endpoint_->Send(from, EncodeReply(reply));
    return;
  }

  // Migrated object? Answer with the forwarding hint without executing.
  if (const auto fwd = forwarding_.find(request->object);
      fwd != forwarding_.end()) {
    ReplyFrame reply;
    reply.call = request->call;
    reply.code = StatusCode::kObjectMoved;
    reply.error_message = "object migrated";
    reply.result = fwd->second;
    (void)endpoint_->Send(from, EncodeReply(reply));
    return;
  }

  // From here the call is "in progress" whether it runs now or waits in
  // the admission queue: duplicates of either are dropped, and the
  // eventual reply (or rejection) answers all transmissions.
  hist.in_progress.emplace(seq, true);
  Admit(from, *request, std::move(payload), scheduler().now());
}

void RpcServer::Admit(const net::Address& from,
                      const RequestFrameView& request, OwnedBytes arena,
                      SimTime received_at) {
  if (params_.max_concurrency == 0 ||
      running_ < params_.max_concurrency) {
    StartExecution(from, request, std::move(arena), received_at);
    return;
  }
  const auto level = static_cast<std::size_t>(request.priority);
  if (admission_queue_depth() < params_.queue_capacity) {
    stats_.admission_queued++;
    queue_[level].push_back(
        QueuedRequest{from, request, std::move(arena), received_at});
    queue_peak_ = std::max(queue_peak_, admission_queue_depth());
    LogAdmission(request.priority, AdmissionEvent::Action::kQueue);
    return;
  }
  // Queue full: displace the *youngest* waiter of the numerically-worst
  // class strictly below the arrival — it has waited least and matters
  // least. If nothing queued is worse, the arrival itself is shed; by
  // construction a P0 is only ever rejected when everything waiting is
  // P0 too (the no-priority-inversion invariant the chaos checker pins).
  for (std::size_t worse = kPriorityLevels; worse-- > level + 1;) {
    if (queue_[worse].empty()) continue;
    QueuedRequest victim = std::move(queue_[worse].back());
    queue_[worse].pop_back();
    stats_.admission_evicted++;
    RejectOverload(victim.from, victim.request.call,
                   AdmissionEvent::Action::kEvict, victim.request.priority);
    queue_[level].push_back(
        QueuedRequest{from, request, std::move(arena), received_at});
    stats_.admission_queued++;
    LogAdmission(request.priority, AdmissionEvent::Action::kQueue);
    return;
  }
  stats_.admission_rejected++;
  RejectOverload(from, request.call, AdmissionEvent::Action::kReject,
                 request.priority);
}

void RpcServer::StartExecution(const net::Address& from,
                               const RequestFrameView& request,
                               OwnedBytes arena, SimTime received_at) {
  running_++;
  LogAdmission(request.priority, AdmissionEvent::Action::kRun);
  // Detach the execution coroutine; it replies and updates the cache.
  (void)sim::Spawn(scheduler(),
                   Execute(from, request, std::move(arena), received_at));
}

void RpcServer::FinishExecution() {
  if (running_ > 0) running_--;
  while (params_.max_concurrency == 0 ||
         running_ < params_.max_concurrency) {
    std::size_t level = 0;
    while (level < kPriorityLevels && queue_[level].empty()) level++;
    if (level == kPriorityLevels) break;
    QueuedRequest ready = std::move(queue_[level].front());
    queue_[level].pop_front();
    if (ready.request.deadline != 0 &&
        scheduler().now() >= ready.request.deadline) {
      // The caller's budget ran out while the request waited: shed it
      // (TIMEOUT, uncached — a retransmission carries the same expired
      // deadline) instead of burning the freed slot on dead work.
      stats_.shed_expired_queued++;
      LogAdmission(ready.request.priority,
                   AdmissionEvent::Action::kShedExpired);
      history_[ready.request.call.client_nonce].in_progress.erase(
          ready.request.call.seq);
      ReplyFrame reply;
      reply.call = ready.request.call;
      reply.code = StatusCode::kTimeout;
      reply.error_message = "deadline expired in admission queue";
      (void)endpoint_->Send(ready.from, EncodeReply(std::move(reply)));
      continue;
    }
    StartExecution(ready.from, ready.request, std::move(ready.arena),
                   ready.received_at);
  }
}

SimDuration RpcServer::RetryAfterHint() const noexcept {
  // Pressure-scaled: base at an empty queue, 2x base at a full one.
  const std::size_t cap = std::max<std::size_t>(params_.queue_capacity, 1);
  const std::size_t depth = std::min(admission_queue_depth(), cap);
  return params_.retry_after_base +
         params_.retry_after_base * depth / cap;
}

void RpcServer::RejectOverload(const net::Address& from, const CallId& call,
                               AdmissionEvent::Action action,
                               Priority priority) {
  LogAdmission(priority, action);
  history_[call.client_nonce].in_progress.erase(call.seq);
  ReplyFrame reply;
  reply.call = call;
  reply.code = StatusCode::kResourceExhausted;
  reply.error_message = "server overloaded";
  reply.retry_after = RetryAfterHint();
  Bytes encoded = EncodeReply(std::move(reply));
  // Cached: shed means *never executed*, so a retransmission of this
  // call id must get the same rejection rather than a second admission
  // roll (which could execute work the caller was already told is shed).
  CacheReply(call.client_nonce, call.seq, encoded);
  (void)endpoint_->Send(from, std::move(encoded));
}

void RpcServer::LogAdmission(Priority priority,
                             AdmissionEvent::Action action) {
  if (admission_log_ == nullptr) return;
  AdmissionEvent ev;
  ev.at = scheduler().now();
  ev.priority = priority;
  ev.action = action;
  ev.depth = static_cast<std::uint32_t>(admission_queue_depth());
  ev.worst_waiting = kPriorityLevels;
  for (std::size_t level = kPriorityLevels; level-- > 0;) {
    if (!queue_[level].empty()) {
      ev.worst_waiting = static_cast<std::uint8_t>(level);
      break;
    }
  }
  admission_log_->push_back(ev);
}

sim::Co<void> RpcServer::Execute(net::Address from, RequestFrameView request,
                                 OwnedBytes arena, SimTime received_at) {
  // `arena` is not read here by name: its whole job is to live in this
  // coroutine's frame so request.args stays valid across suspensions.
  (void)arena;
  const std::uint64_t born = generation_;
  Result<Bytes> outcome = InternalError("uninitialized outcome");

  const auto obj = objects_.find(request.object);
  if (obj == objects_.end()) {
    stats_.unknown_object++;
    outcome = NotFoundError("no such object: " + request.object.ToString());
  } else if (const Method* method = obj->second->Find(request.method);
             method == nullptr) {
    stats_.unknown_method++;
    outcome = NotFoundError("no such method: " + std::to_string(request.method));
  } else {
    stats_.executions++;
    const SimTime dispatched = scheduler().now();
    queue_wait_.Record(dispatched - received_at);
    CallContext ctx{from, request.call, dispatched, request.trace};
    if (spans_ != nullptr && request.trace.active()) {
      // The execution is a child of the caller's wire span; the handler
      // sees the child so its own downstream calls nest under it.
      ctx.trace = spans_->Begin(
          request.trace, "exec m" + std::to_string(request.method),
          dispatched);
    }
    outcome = co_await (*method)(request.args, ctx);
    if (spans_ != nullptr && ctx.trace.active() &&
        ctx.trace != request.trace) {
      spans_->End(ctx.trace, scheduler().now(), outcome.status());
    }
    exec_latency_.Record(scheduler().now() - dispatched);
  }

  // The process crashed while this handler ran: the execution dies with
  // it — no reply, no cache entry, and no admission bookkeeping (Reset
  // already zeroed the running count and dropped the queue).
  if (born != generation_) co_return;

  SendReply(from, request.call, std::move(outcome));

  ClientHistory& hist = history_[request.call.client_nonce];
  hist.in_progress.erase(request.call.seq);

  FinishExecution();
}

void RpcServer::SendReply(const net::Address& to, const CallId& call,
                          Result<Bytes> outcome) {
  ReplyFrame reply;
  reply.call = call;
  if (outcome.ok()) {
    reply.code = StatusCode::kOk;
    reply.result = std::move(*outcome);
  } else {
    reply.code = outcome.status().code();
    reply.error_message = outcome.status().message();
  }
  Bytes encoded = EncodeReply(std::move(reply));
  CacheReply(call.client_nonce, call.seq, encoded);
  (void)endpoint_->Send(to, std::move(encoded));
}

void RpcServer::CacheReply(std::uint64_t nonce, std::uint64_t seq,
                           Bytes encoded) {
  ClientHistory& hist = history_[nonce];
  hist.replies[seq] = std::move(encoded);
  hist.order.push_back(seq);
  while (hist.order.size() > params_.reply_cache_per_client) {
    hist.replies.erase(hist.order.front());
    hist.order.pop_front();
  }
}

}  // namespace proxy::rpc
