// RPC client runtime.
//
// One RpcClient serves a whole context: it owns an endpoint, matches
// replies to outstanding calls, retransmits on timeout (the server's
// duplicate filter makes this safe — together they give at-most-once
// execution), and fails calls whose retry budget is exhausted.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "net/endpoint.h"
#include "rpc/frame.h"
#include "sim/future.h"

namespace proxy::rpc {

/// Per-call knobs. `retry_interval` is the retransmission period; the
/// call fails with TIMEOUT after `max_retries` retransmissions go
/// unanswered.
struct CallOptions {
  SimDuration retry_interval = Milliseconds(20);
  int max_retries = 5;
};

struct ClientStats {
  std::uint64_t calls_started = 0;
  std::uint64_t calls_ok = 0;
  std::uint64_t calls_failed = 0;  // non-OK outcome delivered to caller
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;      // calls failed specifically by timeout
  std::uint64_t stray_replies = 0; // reply for an unknown/finished call
};

class RpcClient {
 public:
  /// Takes over the endpoint's handler. `nonce` must be unique among all
  /// clients in the system (mint it from a seeded Rng).
  RpcClient(net::Endpoint& endpoint, std::uint64_t nonce);

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Invokes `method` on `object` at `to`. The future resolves with the
  /// reply payload, the server's error, or TIMEOUT. An OBJECT_MOVED
  /// outcome carries the forwarding hint in `payload`.
  sim::Future<RpcResult> Call(const net::Address& to, ObjectId object,
                              std::uint32_t method, Bytes args,
                              const CallOptions& options = {});

  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Address address() const noexcept {
    return endpoint_->address();
  }
  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept {
    return endpoint_->scheduler();
  }

 private:
  struct PendingCall {
    sim::Promise<RpcResult> promise;
    net::Address dest;
    Bytes encoded_request;  // kept for retransmission
    CallOptions options;
    int attempts = 0;
    sim::TimerId timer = sim::kInvalidTimer;

    explicit PendingCall(sim::Scheduler& sched) : promise(sched) {}
  };

  void OnDatagram(const net::Address& from, Bytes payload);
  void OnRetryTimer(std::uint64_t seq);
  void Finish(std::uint64_t seq, RpcResult outcome);

  net::Endpoint* endpoint_;
  std::uint64_t nonce_;
  std::uint64_t next_seq_ = 1;
  ClientStats stats_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;  // by seq
};

}  // namespace proxy::rpc
