// RPC client runtime.
//
// One RpcClient serves a whole context: it owns an endpoint, matches
// replies to outstanding calls, retransmits on timeout (the server's
// duplicate filter makes this safe — together they give at-most-once
// execution), and fails calls whose retry budget is exhausted.
//
// The retry policy is the client's, not the application's (the proxy
// principle: robustness lives behind the invocation boundary):
//   - retransmission intervals grow exponentially with decorrelated
//     jitter, drawn from a generator seeded by the client nonce, so a
//     fleet of clients facing the same outage does not retry in lockstep
//     (and every run is still replayable);
//   - an optional per-call deadline bounds the total time a call may
//     spend, is enforced locally (fail fast, cancel retries) and is
//     carried on the wire so the server can skip expired work;
//   - a per-destination circuit breaker opens after a run of consecutive
//     timeouts, fails subsequent calls immediately (UNAVAILABLE), and
//     lets a single half-open probe through after a cooldown — retry
//     storms cannot amplify under partition.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/endpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/frame.h"
#include "sim/future.h"

namespace proxy::rpc {

/// A retransmission allowance shared across every hop of one logical
/// operation. Nested proxies each apply their own retry policy; without
/// a shared budget a single client call fans into retries-of-retries
/// (router passes × failover passes × transport retries). The budget
/// caps *retransmissions only* — a first transmission is always allowed,
/// so failover can still walk the replica set; what it cannot do is keep
/// hammering each dead replica once the operation's total allowance is
/// spent. Share one instance through CallOptions::attempt_budget across
/// the hops of one operation (see KvFailoverProxy::ReadCall/WriteCall).
class AttemptBudget {
 public:
  explicit AttemptBudget(int retransmissions) noexcept
      : remaining_(retransmissions) {}

  /// Consumes one retransmission if any remain.
  bool TryConsume() noexcept {
    if (remaining_ <= 0) return false;
    remaining_--;
    return true;
  }

  [[nodiscard]] int remaining() const noexcept { return remaining_; }

 private:
  int remaining_;
};

/// Per-call knobs — THE call-policy surface of the system. One
/// CallOptions value is accepted identically by RpcClient::Call, by
/// core::ProxyBase (ambient via set_call_options, or per call), and by
/// the failover proxies; there is no other way to tune a call.
///
/// `retry_interval` is the *initial* retransmission backoff; each
/// unanswered attempt grows the backoff exponentially (with decorrelated
/// jitter unless `backoff_jitter` is off) up to `max_backoff`. The call
/// fails with TIMEOUT after `max_retries` retransmissions go unanswered,
/// or when `deadline` elapses, whichever comes first.
///
/// The With* builders cover the common policy axes:
///     auto opts = rpc::CallOptions{}
///                     .WithDeadline(Milliseconds(50))
///                     .WithRetries(2)
///                     .WithoutBreaker();
struct CallOptions {
  SimDuration retry_interval = Milliseconds(20);
  int max_retries = 5;
  /// Cap on a single backoff step; 0 means 16 × retry_interval.
  SimDuration max_backoff = 0;
  /// Decorrelated jitter (uniform in [base, 3 × previous]); when off the
  /// backoff is a plain doubling — only tests that assert exact retry
  /// timing should turn this off.
  bool backoff_jitter = true;
  /// Total budget for the call, measured from Call(); 0 = none. Encoded
  /// on the wire as an absolute expiry so the server sheds expired work.
  SimDuration deadline = 0;
  /// Breaker opt-out: the call neither fast-fails while the breaker is
  /// open nor feeds the breaker's timeout tally (liveness probes and
  /// lease heartbeats must see the real link, not the breaker's memory).
  bool bypass_breaker = false;
  /// Causal trace the request carries (frame v4); inactive = untraced.
  obs::TraceContext trace = {};
  /// Admission priority the request carries (frame v5). The server's
  /// admission queue serves kHigh first and sheds kLow first.
  Priority priority = Priority::kNormal;
  /// Shared retransmission allowance for one logical operation across
  /// nested proxy hops; null = each call retries on its own policy.
  std::shared_ptr<AttemptBudget> attempt_budget = nullptr;

  CallOptions& WithDeadline(SimDuration d) noexcept {
    deadline = d;
    return *this;
  }
  CallOptions& WithRetries(int n) noexcept {
    max_retries = n;
    return *this;
  }
  CallOptions& WithRetryInterval(SimDuration d) noexcept {
    retry_interval = d;
    return *this;
  }
  CallOptions& WithMaxBackoff(SimDuration d) noexcept {
    max_backoff = d;
    return *this;
  }
  CallOptions& WithoutBreaker() noexcept {
    bypass_breaker = true;
    return *this;
  }
  CallOptions& WithTrace(const obs::TraceContext& t) noexcept {
    trace = t;
    return *this;
  }
  CallOptions& WithPriority(Priority p) noexcept {
    priority = p;
    return *this;
  }
  CallOptions& WithAttemptBudget(std::shared_ptr<AttemptBudget> b) noexcept {
    attempt_budget = std::move(b);
    return *this;
  }
};

/// Client-side tallies. The cells are obs::Counter so the same storage
/// the accessors expose is what BindMetrics attaches to the Runtime's
/// MetricsRegistry — one counter, two views.
struct ClientStats {
  obs::Counter calls_started;
  obs::Counter calls_ok;
  obs::Counter calls_failed;  // non-OK outcome delivered to caller
  obs::Counter retransmissions;
  obs::Counter timeouts;       // calls failed specifically by timeout
  obs::Counter stray_replies;  // reply for an unknown/finished call
  obs::Counter spoofed_replies;  // reply from an address != call dest
  obs::Counter deadline_expirations;  // timeouts caused by `deadline`
  obs::Counter breaker_opens;       // closed/half-open → open edges
  obs::Counter breaker_fast_fails;  // calls rejected while open
  obs::Counter rejected_pushback;   // RESOURCE_EXHAUSTED replies received
  obs::Counter attempt_budget_stops;  // retransmissions stopped: shared
                                      // per-operation budget spent
  obs::Counter retry_budget_stops;    // retransmissions stopped: per-dest
                                      // adaptive token bucket empty
};

class RpcClient {
 public:
  /// Per-destination circuit breaker tuning. The breaker opens after
  /// `open_after` *consecutive* call timeouts to one address; while open,
  /// calls to that address fail immediately with UNAVAILABLE. After
  /// `cooldown` one probe call is let through (half-open): a reply of any
  /// kind closes the breaker, another timeout re-opens it with the
  /// cooldown grown by `cooldown_growth` (capped at `max_cooldown`).
  struct BreakerParams {
    int open_after = 5;
    SimDuration cooldown = Milliseconds(100);
    double cooldown_growth = 2.0;
    SimDuration max_cooldown = Seconds(2);
  };

  /// Per-destination adaptive retry budget: a token bucket that only OK
  /// replies refill. Every retransmission to a destination withdraws one
  /// token; when the bucket is empty the call is failed after its next
  /// unanswered wait instead of being retransmitted. The breaker cannot
  /// catch overload (an overloaded server still answers — with
  /// RESOURCE_EXHAUSTED — so contact keeps the breaker closed); the
  /// budget is what keeps timed-out traffic from amplifying into a
  /// retry storm when goodput dries up. Defaults are loose enough that
  /// healthy workloads never feel them: one token per success sustains
  /// any per-attempt round-trip failure probability below 50% (the F5
  /// loss sweep peaks at 20% each way = 36% per attempt, i.e. ~0.56
  /// retransmissions per success) — sustained retries with *no*
  /// successes are the only way to drain the bucket.
  struct RetryBudgetParams {
    double initial_tokens = 64.0;
    double max_tokens = 64.0;
    /// Tokens deposited per OK reply from the destination.
    double refill_per_success = 1.0;
  };

  /// Takes over the endpoint's handler. `nonce` must be unique among all
  /// clients in the system (mint it from a seeded Rng); it also seeds the
  /// client's jitter generator.
  RpcClient(net::Endpoint& endpoint, std::uint64_t nonce);
  RpcClient(net::Endpoint& endpoint, std::uint64_t nonce,
            BreakerParams breaker);

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Invokes `method` on `object` at `to`. The future resolves with the
  /// reply payload, the server's error, or TIMEOUT. An OBJECT_MOVED
  /// outcome carries the forwarding hint in `payload`.
  sim::Future<RpcResult> Call(const net::Address& to, ObjectId object,
                              std::uint32_t method, Bytes args,
                              const CallOptions& options = {});

  /// Replaces the breaker tuning (existing per-destination state is kept).
  void set_breaker_params(const BreakerParams& params) noexcept {
    breaker_params_ = params;
  }

  /// Replaces the retry-budget tuning (existing buckets are re-clamped
  /// lazily; new destinations start at the new initial level).
  void set_retry_budget_params(const RetryBudgetParams& params) noexcept {
    retry_budget_params_ = params;
  }

  /// Chaos-harness fault hook: disabling retry governance reintroduces
  /// the pre-hardening retry storm (nested proxies each retry on their
  /// own policy, unbounded by the shared attempt budget or the
  /// per-destination token bucket), so the chaos sweep can prove the
  /// amplification checker detects that regression. Never disable
  /// outside adversarial tests.
  void set_testing_retry_governors(bool enabled) noexcept {
    retry_governors_ = enabled;
  }

  /// Attaches this client's counters and latency histogram to `registry`
  /// under the rpc.client.* names. Called once by the owning Context;
  /// clients built outside a Runtime simply never attach (their stats
  /// remain readable through stats()).
  void BindMetrics(obs::MetricsRegistry& registry);

  /// Chaos-harness fault hook: turning reply authentication off
  /// reintroduces the pre-hardening spoofing bug (any host that guesses
  /// nonce+seq can complete a call), so the chaos sweep can prove it
  /// detects that regression. Never disable outside adversarial tests.
  void set_testing_reply_auth(bool enabled) noexcept {
    reply_auth_ = enabled;
  }

  /// True while the breaker for `dest` rejects calls (open, cooldown not
  /// yet elapsed, or a half-open probe already in flight).
  [[nodiscard]] bool CircuitOpen(const net::Address& dest) const;

  /// Crash-stop support: fails every outstanding call with `status` (in
  /// ascending seq order, for replay determinism) and forgets all
  /// per-destination breaker state. The nonce and seq counter survive so
  /// a restarted process cannot collide with its pre-crash calls in peer
  /// reply caches.
  void Reset(const Status& status);

  [[nodiscard]] const ClientStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Address address() const noexcept {
    return endpoint_->address();
  }
  [[nodiscard]] std::uint64_t nonce() const noexcept { return nonce_; }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept {
    return endpoint_->scheduler();
  }

 private:
  struct PendingCall {
    sim::Promise<RpcResult> promise;
    net::Address dest;
    Bytes encoded_request;  // kept for retransmission
    CallOptions options;
    int attempts = 0;
    SimTime started_at = 0;        // Call() entry, for the latency histogram
    SimTime deadline = 0;          // absolute; 0 = none
    SimDuration prev_backoff = 0;  // last interval (decorrelated jitter)
    bool is_probe = false;         // this call is a half-open breaker probe
    sim::Timer timer;           // next retransmission (RAII)
    sim::Timer deadline_timer;  // overall budget (RAII)

    explicit PendingCall(sim::Scheduler& sched) : promise(sched) {}
  };

  struct Breaker {
    int consecutive_timeouts = 0;
    bool open = false;
    bool probing = false;        // half-open probe in flight
    SimTime open_until = 0;
    SimDuration cooldown = 0;    // current cooldown (grows on re-open)
  };

  struct RetryBudget {
    double tokens = 0.0;
    bool initialized = false;
  };

  void OnDatagram(const net::Address& from, OwnedBytes payload);
  void OnRetryTimer(std::uint64_t seq);
  void OnDeadline(std::uint64_t seq);
  void Finish(std::uint64_t seq, RpcResult outcome);

  /// Next retransmission interval for `call` (exponential, jittered).
  SimDuration NextBackoff(PendingCall& call);

  /// Fails `seq` with TIMEOUT and feeds the breaker.
  void TimeOutCall(std::uint64_t seq, PendingCall& call, std::string why);

  // Breaker transitions.
  void BreakerOnContact(const net::Address& dest);
  void BreakerOnTimeout(const net::Address& dest, bool was_probe);

  /// True when a retransmission to `dest` is allowed: consumes one token
  /// from the destination's bucket and one unit of the call's shared
  /// attempt budget (when present). False = stop retrying this call.
  bool ConsumeRetryAllowance(const net::Address& dest, PendingCall& call);

  net::Endpoint* endpoint_;
  std::uint64_t nonce_;
  std::uint64_t next_seq_ = 1;
  bool reply_auth_ = true;
  bool retry_governors_ = true;
  Rng rng_;  // jitter; seeded from the nonce, so runs stay replayable
  BreakerParams breaker_params_;
  RetryBudgetParams retry_budget_params_;
  ClientStats stats_;
  /// End-to-end call latency (Call() to outcome), including retries and
  /// breaker fast-fails — what the caller actually waited.
  obs::Histogram call_latency_;
  std::unordered_map<std::uint64_t, PendingCall> pending_;  // by seq
  std::unordered_map<net::Address, Breaker> breakers_;      // by destination
  std::unordered_map<net::Address, RetryBudget> retry_budgets_;  // by dest
};

}  // namespace proxy::rpc
