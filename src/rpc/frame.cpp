#include "rpc/frame.h"

#include "serde/reader.h"
#include "serde/versioned.h"
#include "serde/writer.h"

namespace proxy::rpc {

namespace {

template <typename Frame>
Bytes EncodeWithTag(FrameType type, const Frame& frame) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(type));
  serde::Serialize(w, frame);
  return w.Take();
}

template <typename Frame>
Result<Frame> DecodeAfterTag(FrameType expected, BytesView data) {
  serde::Reader r(data);
  std::uint8_t tag = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU8(tag));
  if (tag != static_cast<std::uint8_t>(expected)) {
    return CorruptError("unexpected frame type");
  }
  Frame frame;
  PROXY_RETURN_IF_ERROR(serde::Deserialize(r, frame));
  PROXY_RETURN_IF_ERROR(r.ExpectEnd());
  return frame;
}

}  // namespace

Bytes EncodeRequest(const RequestFrame& frame) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(FrameType::kRequest));
  serde::VersionedWriter vw(w, kRequestWireVersion);
  serde::Serialize(vw.body(), frame);       // v1 fields
  vw.body().WriteVarint(frame.deadline);    // v2: absolute expiry, 0 = none
  vw.body().WriteVarint(frame.trace.trace_id);         // v4: causal trace
  vw.body().WriteVarint(frame.trace.span_id);
  vw.body().WriteVarint(frame.trace.parent_span_id);
  vw.Finish();
  return w.Take();
}

Bytes EncodeReply(const ReplyFrame& frame) {
  return EncodeWithTag(FrameType::kReply, frame);
}

Result<FrameType> PeekFrameType(BytesView data) {
  if (data.empty()) return CorruptError("empty frame");
  const auto tag = data[0];
  if (tag != static_cast<std::uint8_t>(FrameType::kRequest) &&
      tag != static_cast<std::uint8_t>(FrameType::kReply)) {
    return CorruptError("unknown frame type");
  }
  return static_cast<FrameType>(tag);
}

Result<RequestFrame> DecodeRequest(BytesView data) {
  serde::Reader r(data);
  std::uint8_t tag = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU8(tag));
  if (tag != static_cast<std::uint8_t>(FrameType::kRequest)) {
    return CorruptError("unexpected frame type");
  }
  serde::VersionedReader vr;
  PROXY_RETURN_IF_ERROR(vr.Open(r));
  RequestFrame frame;
  PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), frame));
  if (vr.version() >= 2 && !vr.body().AtEnd()) {
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(frame.deadline));
  }
  if (vr.version() >= kTraceWireVersion && !vr.body().AtEnd()) {
    // The trace triple travels as a unit: a v4 body with only part of it
    // is corrupt, not "a shorter version".
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(frame.trace.trace_id));
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(frame.trace.span_id));
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(frame.trace.parent_span_id));
  }
  PROXY_RETURN_IF_ERROR(vr.Close());  // skips fields from newer versions
  PROXY_RETURN_IF_ERROR(r.ExpectEnd());
  return frame;
}

Result<ReplyFrame> DecodeReply(BytesView data) {
  return DecodeAfterTag<ReplyFrame>(FrameType::kReply, data);
}

}  // namespace proxy::rpc
