#include "rpc/frame.h"

#include "serde/reader.h"
#include "serde/versioned.h"
#include "serde/writer.h"

namespace proxy::rpc {

namespace {

template <typename Frame>
Bytes EncodeWithTag(FrameType type, const Frame& frame) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(type));
  serde::Serialize(w, frame);
  return w.Take();
}

template <typename Frame>
Result<Frame> DecodeAfterTag(FrameType expected, BytesView data) {
  serde::Reader r(data);
  std::uint8_t tag = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU8(tag));
  if (tag != static_cast<std::uint8_t>(expected)) {
    return CorruptError("unexpected frame type");
  }
  Frame frame;
  PROXY_RETURN_IF_ERROR(serde::Deserialize(r, frame));
  PROXY_RETURN_IF_ERROR(r.ExpectEnd());
  return frame;
}

}  // namespace

namespace {

// Shared by the copying and adopting overloads: `args` rides separately
// from the other v1 fields so the rvalue path can hand its buffer to the
// chain. Bytes on the wire are identical either way.
template <typename Args>
Bytes EncodeRequestWith(const RequestFrame& frame, Args&& args) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(FrameType::kRequest));
  serde::VersionedWriter vw(w, kRequestWireVersion);
  serde::Serialize(vw.body(), frame.call);  // v1 fields
  serde::Serialize(vw.body(), frame.object);
  serde::Serialize(vw.body(), frame.method);
  vw.body().WriteBytes(std::forward<Args>(args));
  vw.body().WriteVarint(frame.deadline);    // v2: absolute expiry, 0 = none
  vw.body().WriteVarint(frame.trace.trace_id);         // v4: causal trace
  vw.body().WriteVarint(frame.trace.span_id);
  vw.body().WriteVarint(frame.trace.parent_span_id);
  vw.body().WriteVarint(
      static_cast<std::uint64_t>(frame.priority));     // v5: admission class
  vw.Finish();
  return w.Take();
}

}  // namespace

Bytes EncodeRequest(const RequestFrame& frame) {
  return EncodeRequestWith(frame, View(frame.args));
}

Bytes EncodeRequest(RequestFrame&& frame) {
  return EncodeRequestWith(frame, std::move(frame.args));
}

Bytes EncodeReply(const ReplyFrame& frame) {
  return EncodeWithTag(FrameType::kReply, frame);
}

Bytes EncodeReply(ReplyFrame&& frame) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(FrameType::kReply));
  serde::Serialize(w, frame.call);
  serde::Serialize(w, frame.code);
  serde::Serialize(w, frame.error_message);
  serde::Serialize(w, frame.retry_after);
  w.WriteBytes(std::move(frame.result));  // adopt, don't re-copy
  return w.Take();
}

Result<FrameType> PeekFrameType(BytesView data) {
  if (data.empty()) return CorruptError("empty frame");
  const auto tag = data[0];
  if (tag != static_cast<std::uint8_t>(FrameType::kRequest) &&
      tag != static_cast<std::uint8_t>(FrameType::kReply)) {
    return CorruptError("unknown frame type");
  }
  return static_cast<FrameType>(tag);
}

namespace {

// Body bytes left after every field this build knows about are legal
// only when the sender could plausibly be newer: v3 is reserved (the
// wire-evolution tests use it as the hypothetical newer sender) and
// anything past kRequestWireVersion is the future. For versions this
// build fully understands, a tail is corruption, and Close() says so.
serde::TailPolicy RequestTailPolicy(std::uint32_t version) {
  const bool fully_known = version == 1 || version == 2 ||
                           version == kTraceWireVersion ||
                           version == kRequestWireVersion;
  return fully_known ? serde::TailPolicy::kRejectUnread
                     : serde::TailPolicy::kSkipUnknown;
}

}  // namespace

Result<RequestFrameView> DecodeRequestView(BytesView data) {
  serde::Reader r(data);
  std::uint8_t tag = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU8(tag));
  if (tag != static_cast<std::uint8_t>(FrameType::kRequest)) {
    return CorruptError("unexpected frame type");
  }
  serde::VersionedReader vr;
  PROXY_RETURN_IF_ERROR(vr.OpenBorrowed(r));
  RequestFrameView frame;
  PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), frame.call));
  PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), frame.object));
  PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), frame.method));
  PROXY_RETURN_IF_ERROR(vr.body().ReadBytesView(frame.args));
  if (vr.version() >= 2 && !vr.body().AtEnd()) {
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(frame.deadline));
  }
  if (vr.version() >= kTraceWireVersion && !vr.body().AtEnd()) {
    // The trace triple travels as a unit: a v4 body with only part of it
    // is corrupt, not "a shorter version".
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(frame.trace.trace_id));
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(frame.trace.span_id));
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(frame.trace.parent_span_id));
  }
  if (vr.version() >= kPriorityWireVersion && !vr.body().AtEnd()) {
    std::uint64_t level = 0;
    PROXY_RETURN_IF_ERROR(vr.body().ReadVarint(level));
    if (level >= kPriorityLevels) {
      return CorruptError("priority level out of range");
    }
    frame.priority = static_cast<Priority>(level);
  }
  PROXY_RETURN_IF_ERROR(vr.Close(RequestTailPolicy(vr.version())));
  PROXY_RETURN_IF_ERROR(r.ExpectEnd());
  return frame;
}

Result<RequestFrame> DecodeRequest(BytesView data) {
  Result<RequestFrameView> view = DecodeRequestView(data);
  if (!view.ok()) return view.status();
  RequestFrame frame;
  frame.call = view->call;
  frame.object = view->object;
  frame.method = view->method;
  if (!view->args.empty()) {
    serde::CountWireCopy(view->args.size());
    frame.args.assign(view->args.begin(), view->args.end());
  }
  frame.deadline = view->deadline;
  frame.trace = view->trace;
  frame.priority = view->priority;
  return frame;
}

const char* PriorityName(Priority p) noexcept {
  switch (p) {
    case Priority::kHigh:
      return "P0";
    case Priority::kNormal:
      return "P1";
    case Priority::kLow:
      return "P2";
  }
  return "P?";
}

Result<ReplyFrame> DecodeReply(BytesView data) {
  return DecodeAfterTag<ReplyFrame>(FrameType::kReply, data);
}

}  // namespace proxy::rpc
