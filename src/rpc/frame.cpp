#include "rpc/frame.h"

#include "serde/reader.h"
#include "serde/writer.h"

namespace proxy::rpc {

namespace {

template <typename Frame>
Bytes EncodeWithTag(FrameType type, const Frame& frame) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(type));
  serde::Serialize(w, frame);
  return w.Take();
}

template <typename Frame>
Result<Frame> DecodeAfterTag(FrameType expected, BytesView data) {
  serde::Reader r(data);
  std::uint8_t tag = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU8(tag));
  if (tag != static_cast<std::uint8_t>(expected)) {
    return CorruptError("unexpected frame type");
  }
  Frame frame;
  PROXY_RETURN_IF_ERROR(serde::Deserialize(r, frame));
  PROXY_RETURN_IF_ERROR(r.ExpectEnd());
  return frame;
}

}  // namespace

Bytes EncodeRequest(const RequestFrame& frame) {
  return EncodeWithTag(FrameType::kRequest, frame);
}

Bytes EncodeReply(const ReplyFrame& frame) {
  return EncodeWithTag(FrameType::kReply, frame);
}

Result<FrameType> PeekFrameType(BytesView data) {
  if (data.empty()) return CorruptError("empty frame");
  const auto tag = data[0];
  if (tag != static_cast<std::uint8_t>(FrameType::kRequest) &&
      tag != static_cast<std::uint8_t>(FrameType::kReply)) {
    return CorruptError("unknown frame type");
  }
  return static_cast<FrameType>(tag);
}

Result<RequestFrame> DecodeRequest(BytesView data) {
  return DecodeAfterTag<RequestFrame>(FrameType::kRequest, data);
}

Result<ReplyFrame> DecodeReply(BytesView data) {
  return DecodeAfterTag<ReplyFrame>(FrameType::kReply, data);
}

}  // namespace proxy::rpc
