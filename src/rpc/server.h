// RPC server runtime.
//
// An RpcServer owns an endpoint and a table of exported objects, each
// with a method dispatch table. Handlers are coroutines, so a method can
// itself perform RPCs or sleep over simulated time. The server keeps a
// bounded per-client reply cache: a retransmitted request whose execution
// already finished gets the cached reply instead of re-executing — the
// server half of at-most-once semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "net/endpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rpc/frame.h"
#include "sim/task.h"

namespace proxy::rpc {

/// Ambient information handed to every method handler.
struct CallContext {
  net::Address client;
  CallId call_id;
  SimTime received_at = 0;
  /// The server-side span of this execution (child of the caller's
  /// wire span), or the raw wire context when no recorder is attached.
  /// Handlers pass it into their own downstream CallOptions
  /// (.WithTrace(ctx.trace)) to extend the causal tree.
  obs::TraceContext trace;
};

/// A method handler: decoded-by-the-callee args in, reply payload out.
/// `args` is a borrowed window of the request's arrival buffer; the
/// server keeps that buffer alive for the handler's whole execution
/// (across suspension points), so decoding may be deferred — but a
/// handler that stashes bytes past its own completion must copy them.
using Method = std::function<sim::Co<Result<Bytes>>(BytesView args,
                                                    const CallContext& ctx)>;

/// Dispatch table of one exported object.
class Dispatch {
 public:
  /// Registers a handler; replaces any previous binding of `method`.
  void Register(std::uint32_t method, Method handler) {
    methods_[method] = std::move(handler);
  }

  [[nodiscard]] const Method* Find(std::uint32_t method) const {
    const auto it = methods_.find(method);
    return it == methods_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t method_count() const noexcept {
    return methods_.size();
  }

 private:
  std::unordered_map<std::uint32_t, Method> methods_;
};

/// Server-side tallies; obs::Counter cells, attachable to a registry
/// (see RpcClient stats for the one-counter-two-views scheme).
struct ServerStats {
  obs::Counter requests_received;
  obs::Counter executions;            // handlers actually run
  obs::Counter duplicate_suppressed;  // answered from the reply cache
  obs::Counter in_progress_dropped;   // duplicate while still executing
  obs::Counter unknown_object;
  obs::Counter unknown_method;
  obs::Counter expired_dropped;  // deadline passed before dispatch
  obs::Counter admission_queued;    // parked in the admission queue
  obs::Counter admission_rejected;  // fast-rejected RESOURCE_EXHAUSTED
  obs::Counter admission_evicted;   // queued entry displaced by a
                                    // higher-priority arrival
  obs::Counter shed_expired_queued;  // deadline expired while queued
};

/// One admission decision, for the chaos checkers. The server appends to
/// the log installed via set_admission_log (null = no recording): the
/// no-priority-inversion and bounded-queue invariants are statements
/// about these decisions, not about what clients eventually observe
/// through the network.
struct AdmissionEvent {
  enum class Action : std::uint8_t {
    kRun = 0,          // dispatched immediately
    kQueue = 1,        // parked in the admission queue
    kReject = 2,       // fast-rejected: no capacity, nothing to evict
    kEvict = 3,        // displaced from the queue by a better arrival
    kShedExpired = 4,  // deadline expired while queued
  };

  SimTime at = 0;
  Priority priority = Priority::kNormal;
  Action action = Action::kRun;
  /// Numerically-worst (least important) priority waiting in the queue
  /// *after* this decision; kPriorityLevels when the queue is empty.
  std::uint8_t worst_waiting = kPriorityLevels;
  /// Queued entries after this decision.
  std::uint32_t depth = 0;
};

class RpcServer {
 public:
  struct Params {
    std::size_t reply_cache_per_client = 128;
    /// Admission control: ceiling on concurrently-executing handlers.
    /// 0 = unlimited (admission control off — the historical behavior).
    std::size_t max_concurrency = 0;
    /// Bounded admission queue beyond the running set; 0 = no queue
    /// (at capacity, every arrival is fast-rejected). Only meaningful
    /// with max_concurrency > 0.
    std::size_t queue_capacity = 0;
    /// Base pushback hint carried in RESOURCE_EXHAUSTED rejects; the
    /// server scales it with queue pressure (up to 2x at a full queue).
    SimDuration retry_after_base = Milliseconds(10);
  };

  /// Takes over the endpoint's handler.
  explicit RpcServer(net::Endpoint& endpoint);
  RpcServer(net::Endpoint& endpoint, Params params);

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Exports `object` under `id`. The dispatch table is shared so the
  /// owner may keep registering methods afterwards.
  Status ExportObject(ObjectId id, std::shared_ptr<Dispatch> dispatch);

  Status RemoveObject(ObjectId id);

  /// Installs a forwarding address for a migrated object: requests for
  /// `id` are answered with OBJECT_MOVED carrying `hint` (an encoded
  /// binding the proxy layer understands).
  void SetForwarding(ObjectId id, Bytes hint);

  /// Removes a forwarding hint (e.g. when a migration is rolled back).
  void ClearForwarding(ObjectId id) { forwarding_.erase(id); }

  /// Revokes `id`: the object is removed (if present) and all future
  /// requests for it are answered with PERMISSION_DENIED. Revocation of
  /// an id is permanent for the life of the server.
  void Revoke(ObjectId id);

  [[nodiscard]] bool IsRevoked(ObjectId id) const {
    return revoked_.contains(id);
  }

  [[nodiscard]] bool HasObject(ObjectId id) const {
    return objects_.contains(id);
  }

  /// Crash-stop support: drops the at-most-once reply cache and abandons
  /// every in-flight execution — a handler started before the crash never
  /// replies or touches the cache, exactly as if the process died mid-call.
  /// Exported objects stay registered; the owning service decides what of
  /// its own state survives via Context crash handlers.
  void Reset();

  /// Attaches counters and the execution histograms to `registry` under
  /// the rpc.server.* names (see RpcClient::BindMetrics).
  void BindMetrics(obs::MetricsRegistry& registry);

  /// Installs the Runtime's span recorder: each execution becomes a
  /// child span of the request's wire trace, and handlers receive that
  /// span in CallContext::trace. Null detaches.
  void set_span_recorder(obs::SpanRecorder* recorder) noexcept {
    spans_ = recorder;
  }

  /// Reconfigures admission control on a live server (the chaos harness
  /// and benches flip it per scenario). Takes effect for the next
  /// arrival; already-queued work is not re-evaluated.
  void set_admission(std::size_t max_concurrency, std::size_t queue_capacity,
                     SimDuration retry_after_base = Milliseconds(10)) {
    params_.max_concurrency = max_concurrency;
    params_.queue_capacity = queue_capacity;
    params_.retry_after_base = retry_after_base;
  }

  /// Installs a sink for admission decisions (chaos checkers); null
  /// detaches. The log outlives the server's use of it.
  void set_admission_log(std::vector<AdmissionEvent>* log) noexcept {
    admission_log_ = log;
  }

  [[nodiscard]] std::size_t admission_running() const noexcept {
    return running_;
  }
  [[nodiscard]] std::size_t admission_queue_depth() const noexcept;
  /// High-water mark of the admission queue over the server's lifetime
  /// (survives Reset — the bounded-queue invariant is about the whole
  /// run).
  [[nodiscard]] std::size_t admission_queue_peak() const noexcept {
    return queue_peak_;
  }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] net::Address address() const noexcept {
    return endpoint_->address();
  }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept {
    return endpoint_->scheduler();
  }

 private:
  struct ClientHistory {
    // Finished calls: seq -> encoded reply, bounded FIFO.
    std::unordered_map<std::uint64_t, Bytes> replies;
    std::deque<std::uint64_t> order;
    // Calls still executing.
    std::unordered_map<std::uint64_t, bool> in_progress;
  };

  /// A request parked in the admission queue. Owns its arrival buffer:
  /// `request.args` stays a valid window of `arena` across the park
  /// (OwnedBytes moves keep the heap block).
  struct QueuedRequest {
    net::Address from;
    RequestFrameView request;
    OwnedBytes arena;
    SimTime received_at = 0;
  };

  void OnDatagram(const net::Address& from, OwnedBytes payload);
  /// Admission decision for a decoded, non-duplicate request: run it,
  /// park it, displace a worse waiter, or fast-reject with pushback.
  void Admit(const net::Address& from, const RequestFrameView& request,
             OwnedBytes arena, SimTime received_at);
  /// Dispatches the request (running_ accounting + Execute spawn).
  void StartExecution(const net::Address& from,
                      const RequestFrameView& request, OwnedBytes arena,
                      SimTime received_at);
  /// Called when an execution finishes (same generation): frees the
  /// slot, then admits queued work — highest priority first, shedding
  /// entries whose deadline expired while they waited.
  void FinishExecution();
  /// RESOURCE_EXHAUSTED + retry-after. The reply is cached: a
  /// retransmission of a rejected call must see the same rejection, or
  /// "shed" would not imply "never executed".
  void RejectOverload(const net::Address& from, const CallId& call,
                      AdmissionEvent::Action action, Priority priority);
  [[nodiscard]] SimDuration RetryAfterHint() const noexcept;
  void LogAdmission(Priority priority, AdmissionEvent::Action action);
  sim::Co<void> Execute(net::Address from, RequestFrameView request,
                        OwnedBytes arena, SimTime received_at);
  void SendReply(const net::Address& to, const CallId& call,
                 Result<Bytes> outcome);
  void CacheReply(std::uint64_t nonce, std::uint64_t seq, Bytes encoded);

  net::Endpoint* endpoint_;
  Params params_;
  ServerStats stats_;
  obs::SpanRecorder* spans_ = nullptr;
  /// Receive-to-dispatch wait (admission queueing) and handler run time.
  obs::Histogram queue_wait_;
  obs::Histogram exec_latency_;
  std::uint64_t generation_ = 0;  // bumped by Reset(); fences executions
  std::size_t running_ = 0;       // executions in flight
  std::deque<QueuedRequest> queue_[kPriorityLevels];  // by priority
  std::size_t queue_peak_ = 0;
  std::vector<AdmissionEvent>* admission_log_ = nullptr;
  std::unordered_map<ObjectId, std::shared_ptr<Dispatch>> objects_;
  std::unordered_map<ObjectId, Bytes> forwarding_;
  std::unordered_set<ObjectId> revoked_;
  std::unordered_map<std::uint64_t, ClientHistory> history_;  // by nonce
};

}  // namespace proxy::rpc
