// Typed stub / skeleton helpers — the classic RPC programming model.
//
// A *stub* is the baseline of the proxy principle comparison: it marshals
// arguments, performs the remote call, and unmarshals the result — and
// does nothing else. Service definitions build typed stubs from
// TypedCall<Req, Resp>() and typed skeletons from RegisterTyped<>().
//
// Proxies (src/core) may *contain* a stub as their transport leg, but add
// management intelligence around it (caching, batching, rebinding).
//
// GCC note (load-bearing convention): never write an aggregate-initialized
// temporary with a non-trivial destructor inside a co_await full-expression
// — `co_await Call<R>(kGet, GetRequest{key})` double-destroys the temporary
// under GCC 12 (isolated repro in DESIGN.md "toolchain notes"). Build the
// request as a named local and move it:
//     GetRequest req{key};
//     auto resp = co_await Call<GetResponse>(kGet, std::move(req));
#pragma once

#include <cstdint>
#include <utility>

#include "rpc/client.h"
#include "rpc/server.h"
#include "serde/traits.h"
#include "sim/task.h"

namespace proxy::rpc {

/// Client-side base: holds the binding triple (client, server address,
/// object id) every stub needs.
class StubBase {
 public:
  StubBase(RpcClient& client, net::Address server, ObjectId object)
      : client_(&client), server_(server), object_(object) {}

  [[nodiscard]] net::Address server() const noexcept { return server_; }
  [[nodiscard]] ObjectId object() const noexcept { return object_; }
  [[nodiscard]] RpcClient& client() noexcept { return *client_; }

  void set_call_options(const CallOptions& options) noexcept {
    options_ = options;
  }
  [[nodiscard]] const CallOptions& call_options() const noexcept {
    return options_;
  }

  /// Rebinds the stub (used after OBJECT_MOVED forwarding).
  void Rebind(net::Address server, ObjectId object) noexcept {
    server_ = server;
    object_ = object;
  }

 protected:
  /// Marshals `req`, calls `method`, unmarshals a Resp.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> TypedCall(std::uint32_t method, Req req) {
    Bytes args = serde::EncodeToBytes(req);
    RpcResult raw = co_await client_->Call(server_, object_, method,
                                           std::move(args), options_);
    if (!raw.ok()) co_return raw.status;
    co_return serde::DecodeFromBytes<Resp>(View(raw.payload));
  }

  /// Same, with explicit per-call options (deadline, retries, trace) —
  /// the uniform knob set accepted at every call layer.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> TypedCall(std::uint32_t method, Req req,
                                  CallOptions options) {
    Bytes args = serde::EncodeToBytes(req);
    RpcResult raw = co_await client_->Call(server_, object_, method,
                                           std::move(args), options);
    if (!raw.ok()) co_return raw.status;
    co_return serde::DecodeFromBytes<Resp>(View(raw.payload));
  }

 private:
  RpcClient* client_;
  net::Address server_;
  ObjectId object_;
  CallOptions options_;
};

/// Registers a typed handler on a dispatch table. `fn` has signature
/// sim::Co<Result<Resp>>(Req, const CallContext&). Decode errors are
/// answered with the decode Status; the handler never sees bad input.
template <typename Req, typename Resp, typename Fn>
void RegisterTyped(Dispatch& dispatch, std::uint32_t method, Fn fn) {
  dispatch.Register(
      method,
      [fn = std::move(fn)](BytesView args,
                           const CallContext& ctx) -> sim::Co<Result<Bytes>> {
        // `args` borrows the request's arrival buffer; the server keeps
        // it alive for the handler's lifetime, so decoding here is safe.
        Result<Req> req = serde::DecodeFromBytes<Req>(args);
        if (!req.ok()) co_return req.status();
        Result<Resp> resp = co_await fn(std::move(*req), ctx);
        if (!resp.ok()) co_return resp.status();
        co_return serde::EncodeToBytes(*resp);
      });
}

/// Empty request/response payload for methods with no arguments or no
/// result.
struct Void {
  std::uint8_t zero = 0;  // keeps the wire non-empty and versionable
  PROXY_SERDE_FIELDS(zero)
};

}  // namespace proxy::rpc
