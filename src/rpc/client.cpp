#include "rpc/client.h"

#include <utility>

#include "common/log.h"

namespace proxy::rpc {

RpcClient::RpcClient(net::Endpoint& endpoint, std::uint64_t nonce)
    : endpoint_(&endpoint), nonce_(nonce) {
  endpoint_->SetHandler([this](const net::Address& from, Bytes payload) {
    OnDatagram(from, std::move(payload));
  });
}

sim::Future<RpcResult> RpcClient::Call(const net::Address& to,
                                       ObjectId object, std::uint32_t method,
                                       Bytes args,
                                       const CallOptions& options) {
  stats_.calls_started++;
  const std::uint64_t seq = next_seq_++;

  RequestFrame frame;
  frame.call = CallId{nonce_, seq};
  frame.object = object;
  frame.method = method;
  frame.args = std::move(args);

  auto [it, inserted] = pending_.try_emplace(seq, scheduler());
  PendingCall& call = it->second;
  call.dest = to;
  call.encoded_request = EncodeRequest(frame);
  call.options = options;
  call.attempts = 1;

  auto future = call.promise.future();

  const Status sent = endpoint_->Send(to, call.encoded_request);
  if (!sent.ok()) {
    // Local send failure (unknown node, oversized): fail immediately.
    Finish(seq, sent);
    return future;
  }
  call.timer = scheduler().PostAfter(options.retry_interval,
                                     [this, seq] { OnRetryTimer(seq); });
  return future;
}

void RpcClient::OnDatagram(const net::Address& from, Bytes payload) {
  (void)from;
  auto reply = DecodeReply(View(payload));
  if (!reply.ok()) {
    PROXY_LOG(kDebug, scheduler().now(), "rpc",
              "undecodable reply: " << reply.status().ToString());
    return;
  }
  if (reply->call.client_nonce != nonce_) {
    stats_.stray_replies++;
    return;
  }
  const auto it = pending_.find(reply->call.seq);
  if (it == pending_.end()) {
    // Duplicate reply to a retransmission of a call that already finished.
    stats_.stray_replies++;
    return;
  }
  if (reply->code == StatusCode::kOk) {
    Finish(reply->call.seq,
           RpcResult(Status::Ok(), std::move(reply->result)));
  } else if (reply->code == StatusCode::kObjectMoved) {
    // Forwarding hint: the payload carries the new location; the caller
    // (typically a proxy) rebinds and retries.
    Finish(reply->call.seq, RpcResult(ObjectMovedError(reply->error_message),
                                      std::move(reply->result)));
  } else {
    Finish(reply->call.seq, Status(reply->code, reply->error_message));
  }
}

void RpcClient::OnRetryTimer(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  call.timer = sim::kInvalidTimer;
  if (call.attempts > call.options.max_retries) {
    stats_.timeouts++;
    Finish(seq, TimeoutError("no reply after " +
                             std::to_string(call.options.max_retries) +
                             " retries"));
    return;
  }
  call.attempts++;
  stats_.retransmissions++;
  (void)endpoint_->Send(call.dest, call.encoded_request);
  call.timer = scheduler().PostAfter(call.options.retry_interval,
                                     [this, seq] { OnRetryTimer(seq); });
}

void RpcClient::Finish(std::uint64_t seq, RpcResult outcome) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  if (outcome.ok()) {
    stats_.calls_ok++;
  } else {
    stats_.calls_failed++;
  }
  if (it->second.timer != sim::kInvalidTimer) {
    scheduler().Cancel(it->second.timer);
  }
  auto promise = it->second.promise;  // keep alive past erase
  pending_.erase(it);
  promise.Set(std::move(outcome));
}

}  // namespace proxy::rpc
