#include "rpc/client.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/log.h"

namespace proxy::rpc {

RpcClient::RpcClient(net::Endpoint& endpoint, std::uint64_t nonce)
    : RpcClient(endpoint, nonce, BreakerParams{}) {}

RpcClient::RpcClient(net::Endpoint& endpoint, std::uint64_t nonce,
                     BreakerParams breaker)
    : endpoint_(&endpoint), nonce_(nonce), rng_(nonce ^ 0x9e3779b97f4a7c15ULL),
      breaker_params_(breaker) {
  endpoint_->SetHandler([this](const net::Address& from, OwnedBytes payload) {
    OnDatagram(from, std::move(payload));
  });
}

void RpcClient::BindMetrics(obs::MetricsRegistry& registry) {
  registry.Attach("rpc.client.calls_started", &stats_.calls_started);
  registry.Attach("rpc.client.calls_ok", &stats_.calls_ok);
  registry.Attach("rpc.client.calls_failed", &stats_.calls_failed);
  registry.Attach("rpc.client.retransmissions", &stats_.retransmissions);
  registry.Attach("rpc.client.timeouts", &stats_.timeouts);
  registry.Attach("rpc.client.stray_replies", &stats_.stray_replies);
  registry.Attach("rpc.client.spoofed_replies", &stats_.spoofed_replies);
  registry.Attach("rpc.client.deadline_expirations",
                  &stats_.deadline_expirations);
  registry.Attach("rpc.client.breaker_opens", &stats_.breaker_opens);
  registry.Attach("rpc.client.breaker_fast_fails",
                  &stats_.breaker_fast_fails);
  registry.Attach("rpc.client.rejected_pushback", &stats_.rejected_pushback);
  registry.Attach("rpc.client.attempt_budget_stops",
                  &stats_.attempt_budget_stops);
  registry.Attach("rpc.client.retry_budget_stops",
                  &stats_.retry_budget_stops);
  registry.Attach("rpc.client.call_ns", &call_latency_);
}

bool RpcClient::CircuitOpen(const net::Address& dest) const {
  const auto it = breakers_.find(dest);
  if (it == breakers_.end() || !it->second.open) return false;
  const Breaker& br = it->second;
  // Open but cooled down and not yet probing: the next call is admitted.
  if (!br.probing && endpoint_->scheduler().now() >= br.open_until) {
    return false;
  }
  return true;
}

sim::Future<RpcResult> RpcClient::Call(const net::Address& to,
                                       ObjectId object, std::uint32_t method,
                                       Bytes args,
                                       const CallOptions& options) {
  stats_.calls_started++;
  const std::uint64_t seq = next_seq_++;

  auto [it, inserted] = pending_.try_emplace(seq, scheduler());
  PendingCall& call = it->second;
  call.dest = to;
  call.options = options;
  call.attempts = 1;
  call.started_at = scheduler().now();

  auto future = call.promise.future();

  // Circuit breaker: while open, fail fast instead of feeding a retry
  // storm into a partition. Once the cooldown elapses, exactly one call
  // is admitted as the half-open probe. A bypass_breaker call ignores
  // the breaker entirely (and, symmetrically, never feeds it).
  if (!options.bypass_breaker) {
    Breaker& br = breakers_[to];
    if (br.open) {
      if (br.probing || scheduler().now() < br.open_until) {
        stats_.breaker_fast_fails++;
        Finish(seq, UnavailableError("circuit open to " + to.ToString()));
        return future;
      }
      br.probing = true;
      call.is_probe = true;
    }
  }

  RequestFrame frame;
  frame.call = CallId{nonce_, seq};
  frame.object = object;
  frame.method = method;
  frame.args = std::move(args);
  frame.trace = options.trace;
  frame.priority = options.priority;
  if (options.deadline > 0) {
    call.deadline = scheduler().now() + options.deadline;
    frame.deadline = call.deadline;
  }
  // The frame is built only to be encoded: hand args to the encoder's
  // buffer chain instead of re-copying them. The encoded bytes are
  // retained for retransmission, so each (re)send explicitly copies the
  // retained buffer — the one counted copy this layer still makes.
  call.encoded_request = EncodeRequest(std::move(frame));

  serde::CountWireCopy(call.encoded_request.size());
  const Status sent = endpoint_->Send(to, call.encoded_request);
  if (!sent.ok()) {
    // Local send failure (unknown node, oversized): fail immediately.
    Finish(seq, sent);
    return future;
  }
  call.timer = scheduler().PostAfter(options.retry_interval,
                                     [this, seq] { OnRetryTimer(seq); });
  if (call.deadline != 0) {
    call.deadline_timer = scheduler().PostAfter(
        options.deadline, [this, seq] { OnDeadline(seq); });
  }
  return future;
}

void RpcClient::OnDatagram(const net::Address& from, OwnedBytes payload) {
  auto reply = DecodeReply(payload.view());
  if (!reply.ok()) {
    PROXY_LOG(kDebug, scheduler().now(), "rpc",
              "undecodable reply: " << reply.status().ToString());
    return;
  }
  if (reply->call.client_nonce != nonce_) {
    stats_.stray_replies++;
    return;
  }
  const auto it = pending_.find(reply->call.seq);
  if (it == pending_.end()) {
    // Duplicate reply to a retransmission of a call that already finished.
    stats_.stray_replies++;
    return;
  }
  // Reply authentication: an attacker who guesses the nonce+seq must not
  // be able to complete (and thereby corrupt) a call from a third
  // address. Only the destination we called may answer.
  if (reply_auth_ && from != it->second.dest) {
    stats_.stray_replies++;
    stats_.spoofed_replies++;
    PROXY_LOG(kDebug, scheduler().now(), "rpc",
              "reply for call " << reply->call.seq << " from "
                                << from.ToString() << ", expected "
                                << it->second.dest.ToString());
    return;
  }
  // Any authentic reply proves the destination reachable.
  BreakerOnContact(it->second.dest);
  if (reply->code == StatusCode::kOk) {
    // Successes are what refill the destination's retry budget: retries
    // stay proportional to the goodput the destination actually delivers.
    RetryBudget& budget = retry_budgets_[it->second.dest];
    if (!budget.initialized) {
      budget.tokens = retry_budget_params_.initial_tokens;
      budget.initialized = true;
    }
    budget.tokens = std::min(retry_budget_params_.max_tokens,
                             budget.tokens +
                                 retry_budget_params_.refill_per_success);
    Finish(reply->call.seq,
           RpcResult(Status::Ok(), std::move(reply->result)));
  } else if (reply->code == StatusCode::kObjectMoved) {
    // Forwarding hint: the payload carries the new location; the caller
    // (typically a proxy) rebinds and retries.
    Finish(reply->call.seq, RpcResult(ObjectMovedError(reply->error_message),
                                      std::move(reply->result)));
  } else if (reply->code == StatusCode::kResourceExhausted) {
    // Server pushback: surface the retry-after hint so the proxy layer
    // can back off before re-offering the work (ProxyBase::CallRaw).
    stats_.rejected_pushback++;
    RpcResult outcome(Status(reply->code, reply->error_message));
    outcome.retry_after = reply->retry_after;
    Finish(reply->call.seq, std::move(outcome));
  } else {
    Finish(reply->call.seq, Status(reply->code, reply->error_message));
  }
}

SimDuration RpcClient::NextBackoff(PendingCall& call) {
  const SimDuration base = call.options.retry_interval;
  const SimDuration cap = call.options.max_backoff != 0
                              ? call.options.max_backoff
                              : 16 * base;
  SimDuration next;
  if (!call.options.backoff_jitter) {
    next = call.prev_backoff == 0 ? base : call.prev_backoff * 2;
  } else if (call.prev_backoff == 0) {
    next = base;
  } else {
    // Decorrelated jitter: uniform in [base, 3 × previous]. Spreads a
    // fleet of synchronized retriers apart within a few attempts.
    const SimDuration hi = std::max(base, call.prev_backoff * 3);
    next = base + rng_.UniformU64(hi - base + 1);
  }
  next = std::min(next, std::max(base, cap));
  call.prev_backoff = next;
  return next;
}

void RpcClient::TimeOutCall(std::uint64_t seq, PendingCall& call,
                            std::string why) {
  stats_.timeouts++;
  if (!call.options.bypass_breaker) {
    BreakerOnTimeout(call.dest, call.is_probe);
  }
  Finish(seq, TimeoutError(std::move(why)));
}

void RpcClient::OnRetryTimer(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  if (call.deadline != 0 && scheduler().now() >= call.deadline) {
    // The deadline timer fires at the same instant; resolve here so the
    // call never outlives its budget.
    stats_.deadline_expirations++;
    TimeOutCall(seq, call, "deadline exceeded");
    return;
  }
  if (call.attempts > call.options.max_retries) {
    TimeOutCall(seq, call,
                "no reply after " +
                    std::to_string(call.options.max_retries) + " retries");
    return;
  }
  if (!ConsumeRetryAllowance(call.dest, call)) {
    // Retry governance says stop: the operation's shared attempt budget
    // is spent, or the destination's token bucket ran dry. One
    // transmission went unanswered and no more are allowed — fail now
    // (as a timeout: it still feeds the breaker) rather than hang.
    TimeOutCall(seq, call, "retry budget exhausted");
    return;
  }
  call.attempts++;
  stats_.retransmissions++;
  serde::CountWireCopy(call.encoded_request.size());
  (void)endpoint_->Send(call.dest, call.encoded_request);
  const SimDuration backoff = NextBackoff(call);
  if (call.deadline != 0 &&
      scheduler().now() + backoff >= call.deadline) {
    // No point arming a retry past the deadline; the deadline timer
    // finishes the call.
    return;
  }
  call.timer = scheduler().PostAfter(backoff,
                                     [this, seq] { OnRetryTimer(seq); });
}

void RpcClient::OnDeadline(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  stats_.deadline_expirations++;
  TimeOutCall(seq, it->second, "deadline exceeded");
}

void RpcClient::Reset(const Status& status) {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(pending_.size());
  for (const auto& [seq, call] : pending_) seqs.push_back(seq);
  std::sort(seqs.begin(), seqs.end());
  for (const std::uint64_t seq : seqs) Finish(seq, status);
  breakers_.clear();
  retry_budgets_.clear();
}

bool RpcClient::ConsumeRetryAllowance(const net::Address& dest,
                                      PendingCall& call) {
  if (!retry_governors_) return true;  // chaos bug hook: pre-hardening
  if (call.options.attempt_budget != nullptr &&
      !call.options.attempt_budget->TryConsume()) {
    stats_.attempt_budget_stops++;
    return false;
  }
  RetryBudget& budget = retry_budgets_[dest];
  if (!budget.initialized) {
    budget.tokens = retry_budget_params_.initial_tokens;
    budget.initialized = true;
  }
  if (budget.tokens < 1.0) {
    stats_.retry_budget_stops++;
    return false;
  }
  budget.tokens -= 1.0;
  return true;
}

void RpcClient::BreakerOnContact(const net::Address& dest) {
  Breaker& br = breakers_[dest];
  br.consecutive_timeouts = 0;
  br.open = false;
  br.probing = false;
  br.cooldown = 0;
}

void RpcClient::BreakerOnTimeout(const net::Address& dest, bool was_probe) {
  Breaker& br = breakers_[dest];
  br.consecutive_timeouts++;
  const SimTime now = scheduler().now();
  if (br.open) {
    if (was_probe) {
      // Half-open probe went unanswered: re-open, longer cooldown.
      br.probing = false;
      br.cooldown = std::min(
          breaker_params_.max_cooldown,
          static_cast<SimDuration>(static_cast<double>(br.cooldown) *
                                   breaker_params_.cooldown_growth));
      br.open_until = now + br.cooldown;
      stats_.breaker_opens++;
    }
    return;
  }
  if (br.consecutive_timeouts >= breaker_params_.open_after) {
    br.open = true;
    br.probing = false;
    br.cooldown = breaker_params_.cooldown;
    br.open_until = now + br.cooldown;
    stats_.breaker_opens++;
    PROXY_LOG(kInfo, now, "rpc",
              "circuit to " << dest.ToString() << " opened after "
                            << br.consecutive_timeouts
                            << " consecutive timeouts");
  }
}

void RpcClient::Finish(std::uint64_t seq, RpcResult outcome) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  PendingCall& call = it->second;
  if (outcome.ok()) {
    stats_.calls_ok++;
  } else {
    stats_.calls_failed++;
  }
  call_latency_.Record(scheduler().now() - call.started_at);
  // The RAII timers cancel themselves when pending_.erase destroys the
  // call below; nothing to do here.
  if (call.is_probe) {
    // Whatever ended the probe (contact, timeout, or a local error), the
    // half-open slot must not stay occupied.
    const auto br = breakers_.find(call.dest);
    if (br != breakers_.end() && br->second.open) {
      br->second.probing = false;
    }
  }
  auto promise = call.promise;  // keep alive past erase
  pending_.erase(it);
  promise.Set(std::move(outcome));
}

}  // namespace proxy::rpc
