// RPC wire frames.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/status.h"
#include "obs/trace.h"
#include "serde/traits.h"

namespace proxy::rpc {

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
};

/// Version of the request frame's VersionedBody envelope. v1 carried
/// (call, object, method, args); v2 appended `deadline`; v4 appended the
/// causal trace triple (trace_id, span_id, parent_span_id); v5 appended
/// `priority`. v3 is reserved — the wire-evolution tests used it as the
/// "hypothetical newer sender" whose trailing fields a v2 decoder must
/// skip, so its encodings must stay meaningless. Decoders accept any
/// version: older fields are read, unknown trailing fields skipped,
/// absent new fields default (deadline 0 = none, all-zero trace =
/// untraced, priority = kNormal).
inline constexpr std::uint32_t kRequestWireVersion = 5;

/// First version whose envelope carries the trace triple.
inline constexpr std::uint32_t kTraceWireVersion = 4;

/// First version whose envelope carries the priority level.
inline constexpr std::uint32_t kPriorityWireVersion = 5;

/// Request priority lattice, smallest value most important. The server's
/// admission queue dequeues kHigh before kNormal before kLow and, when
/// the queue overflows, evicts the lowest-priority waiter first — so
/// background traffic (kLow) is shed long before interactive traffic
/// (kHigh) feels overload. The default is the middle level: callers can
/// opt *up* (latency-critical control paths) or *down* (scans, repair,
/// analytics) relative to unannotated traffic.
enum class Priority : std::uint8_t {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

inline constexpr std::uint8_t kPriorityLevels = 3;

/// Stable names for logs/benches ("P0".."P2").
const char* PriorityName(Priority p) noexcept;

/// Globally unique call identity: the client instance's random nonce plus
/// a per-client sequence number. Retransmissions reuse the id, which is
/// what lets the server suppress duplicate executions (at-most-once).
struct CallId {
  std::uint64_t client_nonce = 0;
  std::uint64_t seq = 0;

  PROXY_SERDE_FIELDS(client_nonce, seq)

  friend bool operator==(const CallId& a, const CallId& b) noexcept {
    return a.client_nonce == b.client_nonce && a.seq == b.seq;
  }
};

struct RequestFrame {
  CallId call;
  ObjectId object;        // target object within the server context
  std::uint32_t method = 0;
  Bytes args;
  /// Absolute virtual time after which the caller no longer wants the
  /// result; 0 means no deadline. Carried on the wire (since v2) so the
  /// server can skip dispatching work whose reply nobody will read.
  SimTime deadline = 0;
  /// Causal trace of the call (since v4); all-zero = untraced. The
  /// server hands it to the handler, which threads it through its own
  /// downstream calls — that is what stitches forwarding chains,
  /// re-resolution, and replication fan-out into one tree.
  obs::TraceContext trace;
  /// Admission priority (since v5); pre-v5 senders decode as kNormal.
  Priority priority = Priority::kNormal;

  // v1 fields only — `deadline` (v2), `trace` (v4) and `priority` (v5)
  // are appended manually under the versioned envelope (see
  // EncodeRequest/DecodeRequest).
  PROXY_SERDE_FIELDS(call, object, method, args)
};

/// Borrowed decode of a request: identical fields to RequestFrame except
/// `args` is a window of the buffer handed to DecodeRequestView — no
/// copy. The borrower (server dispatch) keeps the arrival buffer alive
/// as the request-scoped arena for as long as the view is read,
/// including across handler suspension points.
struct RequestFrameView {
  CallId call;
  ObjectId object;
  std::uint32_t method = 0;
  BytesView args;
  SimTime deadline = 0;
  obs::TraceContext trace;
  Priority priority = Priority::kNormal;
};

struct ReplyFrame {
  CallId call;
  StatusCode code = StatusCode::kOk;
  std::string error_message;  // empty when code == kOk
  /// Pushback hint, nanoseconds; nonzero only with kResourceExhausted.
  /// The client should not re-offer this work to the server before the
  /// hint elapses (the server scales it with queue pressure).
  SimDuration retry_after = 0;
  Bytes result;  // empty unless code == kOk or kObjectMoved

  PROXY_SERDE_FIELDS(call, code, error_message, retry_after, result)
};

/// Outcome of one RPC as seen by the caller. `payload` is the reply body
/// when the status is OK, and the forwarding hint (an encoded new
/// binding) when the status is OBJECT_MOVED; empty otherwise.
struct RpcResult {
  Status status;
  Bytes payload;
  /// Server pushback hint (RESOURCE_EXHAUSTED replies); 0 = none.
  SimDuration retry_after = 0;

  RpcResult() = default;
  RpcResult(Status s) : status(std::move(s)) {}  // NOLINT(implicit)
  RpcResult(Status s, Bytes p) : status(std::move(s)), payload(std::move(p)) {}

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// Encodes a frame with its type tag. The rvalue overload adopts
/// `frame.args` into the encoder's buffer chain instead of copying it —
/// use it when the frame is built just to be encoded (the client stub).
Bytes EncodeRequest(const RequestFrame& frame);
Bytes EncodeRequest(RequestFrame&& frame);
Bytes EncodeReply(const ReplyFrame& frame);
Bytes EncodeReply(ReplyFrame&& frame);

/// Decodes the type tag, then the matching frame.
Result<FrameType> PeekFrameType(BytesView data);
Result<RequestFrame> DecodeRequest(BytesView data);
Result<ReplyFrame> DecodeReply(BytesView data);

/// Borrowed decode: `args` in the result is a window of `data`. The
/// caller owns `data`'s backing buffer and must keep it alive while the
/// view is used (server dispatch holds the arrival buffer as arena).
Result<RequestFrameView> DecodeRequestView(BytesView data);

}  // namespace proxy::rpc
