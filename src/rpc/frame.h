// RPC wire frames.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/status.h"
#include "obs/trace.h"
#include "serde/traits.h"

namespace proxy::rpc {

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kReply = 2,
};

/// Version of the request frame's VersionedBody envelope. v1 carried
/// (call, object, method, args); v2 appended `deadline`; v4 appended the
/// causal trace triple (trace_id, span_id, parent_span_id). v3 is
/// reserved — the wire-evolution tests used it as the "hypothetical
/// newer sender" whose trailing fields a v2 decoder must skip, so its
/// encodings must stay meaningless. Decoders accept any version: older
/// fields are read, unknown trailing fields skipped, absent new fields
/// default (deadline 0 = none, all-zero trace = untraced).
inline constexpr std::uint32_t kRequestWireVersion = 4;

/// First version whose envelope carries the trace triple.
inline constexpr std::uint32_t kTraceWireVersion = 4;

/// Globally unique call identity: the client instance's random nonce plus
/// a per-client sequence number. Retransmissions reuse the id, which is
/// what lets the server suppress duplicate executions (at-most-once).
struct CallId {
  std::uint64_t client_nonce = 0;
  std::uint64_t seq = 0;

  PROXY_SERDE_FIELDS(client_nonce, seq)

  friend bool operator==(const CallId& a, const CallId& b) noexcept {
    return a.client_nonce == b.client_nonce && a.seq == b.seq;
  }
};

struct RequestFrame {
  CallId call;
  ObjectId object;        // target object within the server context
  std::uint32_t method = 0;
  Bytes args;
  /// Absolute virtual time after which the caller no longer wants the
  /// result; 0 means no deadline. Carried on the wire (since v2) so the
  /// server can skip dispatching work whose reply nobody will read.
  SimTime deadline = 0;
  /// Causal trace of the call (since v4); all-zero = untraced. The
  /// server hands it to the handler, which threads it through its own
  /// downstream calls — that is what stitches forwarding chains,
  /// re-resolution, and replication fan-out into one tree.
  obs::TraceContext trace;

  // v1 fields only — `deadline` (v2) and `trace` (v4) are appended
  // manually under the versioned envelope (see EncodeRequest/
  // DecodeRequest).
  PROXY_SERDE_FIELDS(call, object, method, args)
};

struct ReplyFrame {
  CallId call;
  StatusCode code = StatusCode::kOk;
  std::string error_message;  // empty when code == kOk
  Bytes result;               // empty unless code == kOk or kObjectMoved

  PROXY_SERDE_FIELDS(call, code, error_message, result)
};

/// Outcome of one RPC as seen by the caller. `payload` is the reply body
/// when the status is OK, and the forwarding hint (an encoded new
/// binding) when the status is OBJECT_MOVED; empty otherwise.
struct RpcResult {
  Status status;
  Bytes payload;

  RpcResult() = default;
  RpcResult(Status s) : status(std::move(s)) {}  // NOLINT(implicit)
  RpcResult(Status s, Bytes p) : status(std::move(s)), payload(std::move(p)) {}

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
};

/// Encodes a frame with its type tag.
Bytes EncodeRequest(const RequestFrame& frame);
Bytes EncodeReply(const ReplyFrame& frame);

/// Decodes the type tag, then the matching frame.
Result<FrameType> PeekFrameType(BytesView data);
Result<RequestFrame> DecodeRequest(BytesView data);
Result<ReplyFrame> DecodeReply(BytesView data);

}  // namespace proxy::rpc
