// Key-value store service.
//
// The workhorse service of the experiment suite. One abstract interface
// (IKeyValue), one server implementation, and three *proxy protocols*
// that clients absorb transparently through Acquire<IKeyValue>():
//
//   protocol 1 — KvStub           plain RPC per operation (the baseline)
//   protocol 2 — KvCachingProxy   client-side read cache, write-through,
//                                 server-driven invalidation
//   protocol 3 — KvWriteBackProxy caching + buffered writes flushed in
//                                 batches (write-behind)
//
// The server supports invalidation subscriptions: a caching proxy exports
// a small "sink" object in its own context and registers it; the server
// notifies every sink when a key changes. That a *client* context can
// host server-side objects at all is itself the proxy principle at work.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/batcher.h"
#include "core/cache.h"
#include "core/export.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "rpc/stub.h"
#include "sim/task.h"

namespace proxy::services {

/// Abstract key-value interface — all a client ever sees.
class IKeyValue {
 public:
  static constexpr std::string_view kInterfaceName = "proxy.services.KeyValue";

  virtual ~IKeyValue() = default;

  virtual sim::Co<Result<std::optional<std::string>>> Get(std::string key) = 0;
  virtual sim::Co<Result<rpc::Void>> Put(std::string key,
                                         std::string value) = 0;
  /// Returns true if the key existed.
  virtual sim::Co<Result<bool>> Del(std::string key) = 0;
  virtual sim::Co<Result<std::uint64_t>> Size() = 0;
  /// All keys starting with `prefix`, sorted ascending ("" = every key).
  /// A sharded implementation fans this out across every owning group
  /// and merges; single-store implementations answer locally.
  virtual sim::Co<Result<std::vector<std::string>>> List(
      std::string prefix) = 0;
};

// --- wire protocol ---

namespace kvwire {

enum Method : std::uint32_t {
  kGet = 1,
  kPut = 2,
  kDel = 3,
  kSize = 4,
  kSubscribe = 5,
  kUnsubscribe = 6,
  kBatchPut = 7,
  kList = 8,
};

/// Method id on a subscriber's sink object.
enum SinkMethod : std::uint32_t {
  kInvalidate = 1,
};

struct GetRequest {
  std::string key;
  PROXY_SERDE_FIELDS(key)
};
struct GetResponse {
  std::optional<std::string> value;
  PROXY_SERDE_FIELDS(value)
};
struct PutRequest {
  std::string key;
  std::string value;
  ObjectId exclude_sink;  // writer's own sink: skipped by invalidation
  PROXY_SERDE_FIELDS(key, value, exclude_sink)
};
struct DelRequest {
  std::string key;
  ObjectId exclude_sink;
  PROXY_SERDE_FIELDS(key, exclude_sink)
};
struct DelResponse {
  bool existed = false;
  PROXY_SERDE_FIELDS(existed)
};
struct SizeResponse {
  std::uint64_t size = 0;
  PROXY_SERDE_FIELDS(size)
};
struct SubscribeRequest {
  net::Address sink_server;
  ObjectId sink_object;
  PROXY_SERDE_FIELDS(sink_server, sink_object)
};
struct BatchPutRequest {
  std::vector<std::pair<std::string, std::string>> entries;
  ObjectId exclude_sink;
  PROXY_SERDE_FIELDS(entries, exclude_sink)
};
struct ListRequest {
  std::string prefix;
  PROXY_SERDE_FIELDS(prefix)
};
struct ListResponse {
  std::vector<std::string> keys;  // sorted ascending
  PROXY_SERDE_FIELDS(keys)
};
struct InvalidateMessage {
  std::vector<std::string> keys;
  PROXY_SERDE_FIELDS(keys)
};

}  // namespace kvwire

// --- server ---

/// Server implementation. Also usable directly (same-context binding).
class KvService : public IKeyValue, public core::IMigratable {
 public:
  explicit KvService(core::Context& context) : context_(&context) {}

  // IKeyValue
  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  sim::Co<Result<std::vector<std::string>>> List(std::string prefix) override;

  /// Mutation entry points with writer exclusion: the subscriber whose
  /// sink is `exclude` already reflects the write locally (it made it)
  /// and is skipped by the invalidation fan-out.
  sim::Co<Result<rpc::Void>> PutExcluding(std::string key, std::string value,
                                          ObjectId exclude);
  sim::Co<Result<bool>> DelExcluding(std::string key, ObjectId exclude);

  /// Applies many puts as one unit (the write-back flush path).
  sim::Co<Result<rpc::Void>> BatchPut(
      std::vector<std::pair<std::string, std::string>> entries,
      ObjectId exclude = ObjectId{});

  Status Subscribe(const net::Address& sink_server, ObjectId sink_object);
  Status Unsubscribe(ObjectId sink_object);

  // IMigratable: data plus subscriber list travel together.
  [[nodiscard]] Bytes SnapshotState() const override;
  Status RestoreState(BytesView state);

  [[nodiscard]] std::size_t subscriber_count() const noexcept {
    return subscribers_.size();
  }
  [[nodiscard]] std::uint64_t invalidations_sent() const noexcept {
    return invalidations_sent_;
  }

  /// Rebinds the service to a new hosting context (after migration).
  void AttachContext(core::Context& context) { context_ = &context; }

 private:
  struct Subscriber {
    net::Address sink_server;
    ObjectId sink_object;
    PROXY_SERDE_FIELDS(sink_server, sink_object)
  };

  /// Fire-and-forget invalidation fan-out for changed keys, skipping the
  /// writer's own sink.
  void NotifyInvalidate(std::vector<std::string> keys, ObjectId exclude);

  core::Context* context_;
  std::map<std::string, std::string> data_;
  std::vector<Subscriber> subscribers_;
  std::uint64_t invalidations_sent_ = 0;
};

/// Builds the skeleton (dispatch table) for a KvService.
std::shared_ptr<rpc::Dispatch> MakeKvDispatch(std::shared_ptr<KvService> impl);

/// Creates, exports and optionally publishes a KV service in `context`,
/// advertising proxy protocol `protocol` (1, 2 or 3).
struct KvExport {
  std::shared_ptr<KvService> impl;
  core::ServiceBinding binding;
};
Result<KvExport> ExportKvService(core::Context& context,
                                 std::uint32_t protocol = 1);

// --- proxies ---

/// Protocol 1: the classic stub. Marshal, send, unmarshal — nothing else.
class KvStub : public IKeyValue, public core::ProxyBase {
 public:
  KvStub(core::Context& context, core::ServiceBinding binding)
      : core::ProxyBase(context, std::move(binding)) {}

  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  sim::Co<Result<std::vector<std::string>>> List(std::string prefix) override;
};

/// Tuning for the caching proxies.
struct KvCacheParams {
  std::size_t capacity = 1024;
  bool subscribe_invalidations = true;
  /// Graceful degradation: when the server sheds a Get (RESOURCE_EXHAUSTED
  /// after the proxy's bounded pushback retries), answer from the
  /// last-observed-value cache instead of failing. Stale by construction —
  /// entries deliberately survive invalidation — so this trades freshness
  /// for availability, exactly and only under overload.
  bool stale_on_shed = true;
  std::size_t stale_capacity = 1024;
};

/// Protocol 2: read cache + write-through + server invalidation.
class KvCachingProxy : public IKeyValue, public core::ProxyBase {
 public:
  KvCachingProxy(core::Context& context, core::ServiceBinding binding,
                 KvCacheParams params = {});
  ~KvCachingProxy() override;

  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  sim::Co<Result<std::vector<std::string>>> List(std::string prefix) override;

  [[nodiscard]] const core::CacheStats& cache_stats() const noexcept {
    return cache_.stats();
  }

  /// Gets answered from the stale cache because the server shed the call.
  [[nodiscard]] std::uint64_t stale_served() const noexcept {
    return stale_served_.value();
  }

 protected:
  /// Registers the invalidation sink with the server (first call only).
  sim::Co<Status> EnsureSubscribed();

  void OnInvalidate(const std::vector<std::string>& keys);

  /// Records `value` as the last value observed for `key` (the stale
  /// fallback pool). Called alongside every coherent-cache update.
  void RememberStale(const std::string& key,
                     const std::optional<std::string>& value) {
    if (params_.stale_on_shed) stale_.Put(key, value);
  }

  KvCacheParams params_;
  // Cached values: present-with-value or known-absent (negative entry).
  core::LruCache<std::string, std::optional<std::string>> cache_;
  // Last value ever observed per key. NOT kept coherent: invalidations
  // skip it on purpose, so it can answer when the server sheds load.
  core::LruCache<std::string, std::optional<std::string>> stale_;
  obs::Counter stale_served_;
  ObjectId sink_id_;
  std::shared_ptr<rpc::Dispatch> sink_dispatch_;
  bool subscribed_ = false;
  bool subscribe_in_flight_ = false;
};

/// Tuning for the write-back proxy.
struct KvWriteBackParams {
  KvCacheParams cache;
  std::size_t max_batch = 16;
  SimDuration flush_window = Milliseconds(5);
};

/// Protocol 3: caching + write-behind. Puts accumulate locally and flush
/// as BatchPut; reads of dirty keys are served from the buffer.
class KvWriteBackProxy : public KvCachingProxy {
 public:
  KvWriteBackProxy(core::Context& context, core::ServiceBinding binding,
                   KvWriteBackParams params = {});
  ~KvWriteBackProxy() override;

  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  sim::Co<Result<std::vector<std::string>>> List(std::string prefix) override;

  /// Forces buffered writes out (also called before Del and Size).
  sim::Co<Status> FlushWrites();

  [[nodiscard]] const core::BatcherStats& batch_stats() const noexcept {
    return batcher_.stats();
  }

 private:
  sim::Co<Status> FlushBatch(
      std::vector<std::pair<std::string, std::string>> batch);

  KvWriteBackParams wb_params_;
  std::map<std::string, std::string> dirty_;  // newest value per key
  core::Batcher<std::pair<std::string, std::string>> batcher_;
};

/// Registers KV proxy factories (protocols 1-3) and the server-object
/// factory (for migration). Idempotent.
void RegisterKvFactories();

}  // namespace proxy::services
