#include "services/spooler.h"

#include "core/factory.h"

namespace proxy::services {

using spoolwire::CountResponse;
using spoolwire::IdResponse;
using spoolwire::SubmitManyRequest;
using spoolwire::SubmitRequest;

sim::Co<void> SpoolerService::ProcessJobs(std::uint64_t count) {
  // The device works through jobs one by one over simulated time.
  for (std::uint64_t i = 0; i < count; ++i) {
    co_await sim::SleepFor(*scheduler_, per_job_cost_);
    completed_++;
  }
}

sim::Co<Result<std::uint64_t>> SpoolerService::Submit(SpoolJob job) {
  (void)job;
  const std::uint64_t id = next_id_++;
  (void)sim::Spawn(*scheduler_, ProcessJobs(1));
  co_return id;
}

sim::Co<Result<std::uint64_t>> SpoolerService::SubmitMany(
    std::vector<SpoolJob> jobs) {
  if (jobs.empty()) co_return InvalidArgumentError("empty job batch");
  const std::uint64_t first = next_id_;
  next_id_ += jobs.size();
  (void)sim::Spawn(*scheduler_, ProcessJobs(jobs.size()));
  co_return first;
}

sim::Co<Result<std::uint64_t>> SpoolerService::CompletedCount() {
  co_return completed_;
}

std::shared_ptr<rpc::Dispatch> MakeSpoolerDispatch(
    std::shared_ptr<SpoolerService> impl) {
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<SubmitRequest, IdResponse>(
      *dispatch, spoolwire::kSubmit,
      [impl](SubmitRequest req,
             const rpc::CallContext&) -> sim::Co<Result<IdResponse>> {
        Result<std::uint64_t> id = co_await impl->Submit(std::move(req.job));
        if (!id.ok()) co_return id.status();
        co_return IdResponse{*id};
      });
  rpc::RegisterTyped<SubmitManyRequest, IdResponse>(
      *dispatch, spoolwire::kSubmitMany,
      [impl](SubmitManyRequest req,
             const rpc::CallContext&) -> sim::Co<Result<IdResponse>> {
        Result<std::uint64_t> id =
            co_await impl->SubmitMany(std::move(req.jobs));
        if (!id.ok()) co_return id.status();
        co_return IdResponse{*id};
      });
  rpc::RegisterTyped<rpc::Void, CountResponse>(
      *dispatch, spoolwire::kCompleted,
      [impl](rpc::Void,
             const rpc::CallContext&) -> sim::Co<Result<CountResponse>> {
        Result<std::uint64_t> count = co_await impl->CompletedCount();
        if (!count.ok()) co_return count.status();
        co_return CountResponse{*count};
      });
  return dispatch;
}

Result<SpoolerExport> ExportSpoolerService(core::Context& context,
                                           std::uint32_t protocol) {
  auto impl = std::make_shared<SpoolerService>(context.scheduler());
  auto dispatch = MakeSpoolerDispatch(impl);
  PROXY_ASSIGN_OR_RETURN(
      auto exported,
      core::ServiceExport<ISpooler>::Create(context, impl, dispatch,
                                            protocol));
  return SpoolerExport{std::move(impl), exported.binding()};
}

sim::Co<Result<std::uint64_t>> SpoolerStub::Submit(SpoolJob job) {
  SubmitRequest req{std::move(job)};
  Result<IdResponse> resp =
      co_await Call<IdResponse>(spoolwire::kSubmit, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return resp->id;
}

sim::Co<Result<std::uint64_t>> SpoolerStub::SubmitMany(
    std::vector<SpoolJob> jobs) {
  SubmitManyRequest req{std::move(jobs)};
  Result<IdResponse> resp =
      co_await Call<IdResponse>(spoolwire::kSubmitMany, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return resp->id;
}

sim::Co<Result<std::uint64_t>> SpoolerStub::CompletedCount() {
  Result<CountResponse> resp =
      co_await Call<CountResponse>(spoolwire::kCompleted, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->count;
}

SpoolerBatchProxy::SpoolerBatchProxy(core::Context& context,
                                     core::ServiceBinding binding,
                                     SpoolerBatchParams params)
    : core::ProxyBase(context, std::move(binding)),
      params_(params),
      batcher_(
          context.scheduler(),
          [this](std::vector<SpoolJob> batch) {
            return FlushBatch(std::move(batch));
          },
          params.max_batch, params.flush_window) {
  batcher_.BindMetrics(context.metrics(), "svc.spool.batch");
}

SpoolerBatchProxy::~SpoolerBatchProxy() {
  batcher_.DetachMetrics(context().metrics(), "svc.spool.batch");
}

sim::Co<Status> SpoolerBatchProxy::FlushBatch(std::vector<SpoolJob> batch) {
  SubmitManyRequest req{std::move(batch)};
  Result<IdResponse> resp =
      co_await Call<IdResponse>(spoolwire::kSubmitMany, std::move(req));
  co_return resp.status();
}

sim::Co<Result<std::uint64_t>> SpoolerBatchProxy::Submit(SpoolJob job) {
  const std::uint64_t id = local_seq_++;
  (void)batcher_.Add(std::move(job));
  co_return id;
}

sim::Co<Result<std::uint64_t>> SpoolerBatchProxy::SubmitMany(
    std::vector<SpoolJob> jobs) {
  const std::uint64_t first = local_seq_;
  local_seq_ += jobs.size();
  for (auto& job : jobs) (void)batcher_.Add(std::move(job));
  co_return first;
}

sim::Co<Result<std::uint64_t>> SpoolerBatchProxy::CompletedCount() {
  const Status flushed = co_await Flush();
  if (!flushed.ok()) co_return flushed;
  Result<CountResponse> resp =
      co_await Call<CountResponse>(spoolwire::kCompleted, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->count;
}

sim::Co<Status> SpoolerBatchProxy::Flush() {
  while (batcher_.pending() > 0) {
    const Status st = co_await batcher_.Flush();
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

void RegisterSpoolerFactories() {
  const InterfaceId iface = InterfaceIdOf(ISpooler::kInterfaceName);
  auto& proxies = core::ProxyFactoryRegistry::Instance();
  if (!proxies.Has(iface, 1)) {
    (void)proxies.Register(
        iface, 1, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<ISpooler>(
                  std::make_shared<SpoolerStub>(ctx, b)));
        });
  }
  if (!proxies.Has(iface, 2)) {
    (void)proxies.Register(
        iface, 2, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<ISpooler>(
                  std::make_shared<SpoolerBatchProxy>(ctx, b)));
        });
  }
}

}  // namespace proxy::services
