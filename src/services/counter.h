// Counter service — the migration workhorse.
//
// Tiny state (one integer) makes the counter ideal for studying *where*
// an object should live. Three proxy protocols:
//
//   protocol 1 — CounterStub      plain RPC (leave the object where it is)
//   protocol 2 — CounterDsmProxy  distributed-virtual-memory style:
//                                 always pull the object into the local
//                                 context before operating on it
//
// Together with protocol-1 + explicit MigrationManager::PushTo, these are
// the three location strategies of the invocation-matrix experiment (T1):
// leave-at-site, migrate-on-use, and managed placement.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "core/export.h"
#include "core/migration.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "rpc/stub.h"
#include "sim/task.h"

namespace proxy::services {

class ICounter {
 public:
  static constexpr std::string_view kInterfaceName = "proxy.services.Counter";

  virtual ~ICounter() = default;

  /// Adds `delta`; returns the new value.
  virtual sim::Co<Result<std::int64_t>> Increment(std::int64_t delta) = 0;
  virtual sim::Co<Result<std::int64_t>> Read() = 0;
};

namespace counterwire {

enum Method : std::uint32_t {
  kIncrement = 1,
  kRead = 2,
};

struct IncrementRequest {
  std::int64_t delta = 0;
  PROXY_SERDE_FIELDS(delta)
};
struct ValueResponse {
  std::int64_t value = 0;
  PROXY_SERDE_FIELDS(value)
};

}  // namespace counterwire

class CounterService : public ICounter, public core::IMigratable {
 public:
  CounterService() = default;
  explicit CounterService(std::int64_t initial) : value_(initial) {}

  sim::Co<Result<std::int64_t>> Increment(std::int64_t delta) override;
  sim::Co<Result<std::int64_t>> Read() override;

  [[nodiscard]] Bytes SnapshotState() const override;
  Status RestoreState(BytesView state);

 private:
  std::int64_t value_ = 0;
};

std::shared_ptr<rpc::Dispatch> MakeCounterDispatch(
    std::shared_ptr<CounterService> impl);

struct CounterExport {
  std::shared_ptr<CounterService> impl;
  core::ServiceBinding binding;
};
Result<CounterExport> ExportCounterService(core::Context& context,
                                           std::uint32_t protocol = 1,
                                           std::int64_t initial = 0);

/// Protocol 1: plain stub.
class CounterStub : public ICounter, public core::ProxyBase {
 public:
  CounterStub(core::Context& context, core::ServiceBinding binding)
      : core::ProxyBase(context, std::move(binding)) {}

  sim::Co<Result<std::int64_t>> Increment(std::int64_t delta) override;
  sim::Co<Result<std::int64_t>> Read() override;
};

/// Protocol 2: DSM-style proxy. Every operation first ensures the object
/// is resident in the caller's context (pulling it if necessary), then
/// invokes it directly — access is a procedure call, relocation is the
/// price. The mirror image of the stub's trade-off.
class CounterDsmProxy : public ICounter, public core::ProxyBase {
 public:
  CounterDsmProxy(core::Context& context, core::ServiceBinding binding)
      : core::ProxyBase(context, std::move(binding)) {}

  sim::Co<Result<std::int64_t>> Increment(std::int64_t delta) override;
  sim::Co<Result<std::int64_t>> Read() override;

  [[nodiscard]] std::uint64_t pulls() const noexcept { return pulls_; }

 private:
  /// Resolves the local implementation, migrating the object here first
  /// when it lives elsewhere.
  sim::Co<Result<std::shared_ptr<ICounter>>> EnsureLocal();

  std::uint64_t pulls_ = 0;
};

void RegisterCounterFactories();

}  // namespace proxy::services
