#include "services/lock.h"

#include "core/factory.h"

namespace proxy::services {

using lockwire::HolderRequest;
using lockwire::HolderResponse;
using lockwire::LockRequest;
using lockwire::TryAcquireResponse;

sim::Co<Result<bool>> LockServiceImpl::TryAcquire(std::string name,
                                                  std::uint64_t owner) {
  LockState& lock = locks_[name];
  if (lock.holder.has_value()) co_return lock.holder == owner;
  lock.holder = owner;
  co_return true;
}

sim::Co<Result<rpc::Void>> LockServiceImpl::Acquire(std::string name,
                                                    std::uint64_t owner) {
  LockState& lock = locks_[name];
  if (!lock.holder.has_value()) {
    lock.holder = owner;
    co_return rpc::Void{};
  }
  if (lock.holder == owner) co_return rpc::Void{};  // re-entrant
  // Park this handler until Release hands the lock over.
  sim::Promise<bool> granted(*scheduler_);
  auto future = granted.future();
  lock.waiters.emplace_back(owner, std::move(granted));
  (void)co_await future;
  co_return rpc::Void{};
}

sim::Co<Result<rpc::Void>> LockServiceImpl::Release(std::string name,
                                                    std::uint64_t owner) {
  const auto it = locks_.find(name);
  if (it == locks_.end() || !it->second.holder.has_value()) {
    co_return FailedPreconditionError("lock not held: " + name);
  }
  LockState& lock = it->second;
  if (lock.holder != owner) {
    co_return PermissionDeniedError("lock held by another owner: " + name);
  }
  if (lock.waiters.empty()) {
    lock.holder.reset();
    co_return rpc::Void{};
  }
  // FIFO hand-over.
  auto [next_owner, promise] = std::move(lock.waiters.front());
  lock.waiters.pop_front();
  lock.holder = next_owner;
  promise.Set(true);
  co_return rpc::Void{};
}

sim::Co<Result<std::optional<std::uint64_t>>> LockServiceImpl::Holder(
    std::string name) {
  const auto it = locks_.find(name);
  if (it == locks_.end()) co_return std::optional<std::uint64_t>{};
  co_return it->second.holder;
}

std::shared_ptr<rpc::Dispatch> MakeLockDispatch(
    std::shared_ptr<LockServiceImpl> impl) {
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<LockRequest, TryAcquireResponse>(
      *dispatch, lockwire::kTryAcquire,
      [impl](LockRequest req,
             const rpc::CallContext&) -> sim::Co<Result<TryAcquireResponse>> {
        Result<bool> acquired =
            co_await impl->TryAcquire(std::move(req.name), req.owner);
        if (!acquired.ok()) co_return acquired.status();
        co_return TryAcquireResponse{*acquired};
      });
  rpc::RegisterTyped<LockRequest, rpc::Void>(
      *dispatch, lockwire::kAcquire,
      [impl](LockRequest req, const rpc::CallContext&) {
        return impl->Acquire(std::move(req.name), req.owner);
      });
  rpc::RegisterTyped<LockRequest, rpc::Void>(
      *dispatch, lockwire::kRelease,
      [impl](LockRequest req, const rpc::CallContext&) {
        return impl->Release(std::move(req.name), req.owner);
      });
  rpc::RegisterTyped<HolderRequest, HolderResponse>(
      *dispatch, lockwire::kHolder,
      [impl](HolderRequest req,
             const rpc::CallContext&) -> sim::Co<Result<HolderResponse>> {
        Result<std::optional<std::uint64_t>> holder =
            co_await impl->Holder(std::move(req.name));
        if (!holder.ok()) co_return holder.status();
        co_return HolderResponse{*holder};
      });
  return dispatch;
}

Result<LockExport> ExportLockService(core::Context& context) {
  auto impl = std::make_shared<LockServiceImpl>(context.scheduler());
  auto dispatch = MakeLockDispatch(impl);
  PROXY_ASSIGN_OR_RETURN(
      auto exported,
      core::ServiceExport<ILockService>::Create(context, impl, dispatch,
                                                /*protocol=*/1));
  return LockExport{std::move(impl), exported.binding()};
}

sim::Co<Result<bool>> LockStub::TryAcquire(std::string name,
                                           std::uint64_t owner) {
  LockRequest req{std::move(name), owner};
  Result<TryAcquireResponse> resp = co_await Call<TryAcquireResponse>(
      lockwire::kTryAcquire, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return resp->acquired;
}

sim::Co<Result<rpc::Void>> LockStub::Acquire(std::string name,
                                             std::uint64_t owner) {
  LockRequest req{std::move(name), owner};
  co_return co_await Call<rpc::Void>(lockwire::kAcquire, std::move(req));
}

sim::Co<Result<rpc::Void>> LockStub::Release(std::string name,
                                             std::uint64_t owner) {
  LockRequest req{std::move(name), owner};
  co_return co_await Call<rpc::Void>(lockwire::kRelease, std::move(req));
}

sim::Co<Result<std::optional<std::uint64_t>>> LockStub::Holder(
    std::string name) {
  HolderRequest req{std::move(name)};
  Result<HolderResponse> resp =
      co_await Call<HolderResponse>(lockwire::kHolder, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return resp->holder;
}

void RegisterLockFactories() {
  const InterfaceId iface = InterfaceIdOf(ILockService::kInterfaceName);
  auto& proxies = core::ProxyFactoryRegistry::Instance();
  if (!proxies.Has(iface, 1)) {
    (void)proxies.Register(
        iface, 1, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<ILockService>(
                  std::make_shared<LockStub>(ctx, b)));
        });
  }
}

}  // namespace proxy::services
