#include "services/file.h"

#include <algorithm>

#include "core/factory.h"
#include "serde/reader.h"
#include "serde/traits.h"
#include "serde/writer.h"

namespace proxy::services {

using filewire::InvalidateRangeMessage;
using filewire::ReadRequest;
using filewire::ReadResponse;
using filewire::SizeResponse;
using filewire::SubscribeRequest;
using filewire::TruncateRequest;
using filewire::WriteRequest;
using filewire::WriteVecRequest;

// --- server ---

sim::Co<Result<Bytes>> FileService::Read(std::uint64_t offset,
                                         std::uint32_t length) {
  if (offset >= content_.size()) co_return Bytes{};
  const std::uint64_t end =
      std::min<std::uint64_t>(offset + length, content_.size());
  co_return Bytes(content_.begin() + static_cast<std::ptrdiff_t>(offset),
                  content_.begin() + static_cast<std::ptrdiff_t>(end));
}

Status FileService::ApplyWrite(std::uint64_t offset, const Bytes& data) {
  const std::uint64_t end = offset + data.size();
  if (end > kMaxFileSize) {
    return ResourceExhaustedError("write exceeds max file size");
  }
  if (end > content_.size()) content_.resize(end, 0);
  std::copy(data.begin(), data.end(),
            content_.begin() + static_cast<std::ptrdiff_t>(offset));
  return Status::Ok();
}

sim::Co<Result<rpc::Void>> FileService::Write(std::uint64_t offset,
                                              Bytes data) {
  co_return co_await WriteExcluding(offset, std::move(data), ObjectId{});
}

sim::Co<Result<rpc::Void>> FileService::WriteExcluding(std::uint64_t offset,
                                                       Bytes data,
                                                       ObjectId exclude) {
  const std::uint64_t length = data.size();
  const Status st = ApplyWrite(offset, data);
  if (!st.ok()) co_return st;
  NotifyInvalidate(offset, length, exclude);
  co_return rpc::Void{};
}

sim::Co<Result<std::uint64_t>> FileService::Size() {
  co_return static_cast<std::uint64_t>(content_.size());
}

sim::Co<Result<rpc::Void>> FileService::Truncate(std::uint64_t size) {
  co_return co_await TruncateExcluding(size, ObjectId{});
}

sim::Co<Result<rpc::Void>> FileService::TruncateExcluding(std::uint64_t size,
                                                          ObjectId exclude) {
  if (size > kMaxFileSize) {
    co_return ResourceExhaustedError("truncate exceeds max file size");
  }
  content_.resize(size, 0);
  NotifyInvalidate(size, 0, exclude);  // 0 length = "to end of file"
  co_return rpc::Void{};
}

sim::Co<Result<rpc::Void>> FileService::WriteVec(
    std::vector<WriteRequest> writes) {
  for (const auto& w : writes) {
    const Status st = ApplyWrite(w.offset, w.data);
    if (!st.ok()) co_return st;
  }
  // One invalidation covering the whole touched range; the writes in a
  // batch share one excluded sink (they come from one proxy).
  if (!writes.empty()) {
    std::uint64_t lo = UINT64_MAX;
    std::uint64_t hi = 0;
    for (const auto& w : writes) {
      lo = std::min(lo, w.offset);
      hi = std::max(hi, w.offset + w.data.size());
    }
    NotifyInvalidate(lo, hi - lo, writes.front().exclude_sink);
  }
  co_return rpc::Void{};
}

Status FileService::Subscribe(const net::Address& sink_server,
                              ObjectId sink_object) {
  for (const auto& sub : subscribers_) {
    if (sub.sink_object == sink_object) {
      return AlreadyExistsError("sink already subscribed");
    }
  }
  subscribers_.push_back(Subscriber{sink_server, sink_object});
  return Status::Ok();
}

void FileService::NotifyInvalidate(std::uint64_t offset,
                                   std::uint64_t length, ObjectId exclude) {
  if (subscribers_.empty()) return;
  const Bytes msg =
      serde::EncodeToBytes(InvalidateRangeMessage{offset, length});
  for (const auto& sub : subscribers_) {
    if (!exclude.IsNil() && sub.sink_object == exclude) continue;
    // Fire-and-forget with a bounded budget: a sink that stays
    // unreachable costs staleness, not an ever-growing retry queue.
    (void)context_->client().Call(sub.sink_server, sub.sink_object,
                                  filewire::SinkMethod::kInvalidateRange, msg,
                                  rpc::CallOptions{}.WithDeadline(
                                      Milliseconds(500)));
  }
}

Bytes FileService::SnapshotState() const {
  serde::Writer w;
  serde::Serialize(w, content_);
  serde::Serialize(w, subscribers_);
  return w.Take();
}

Status FileService::RestoreState(BytesView state) {
  serde::Reader r(state);
  PROXY_RETURN_IF_ERROR(serde::Deserialize(r, content_));
  PROXY_RETURN_IF_ERROR(serde::Deserialize(r, subscribers_));
  return r.ExpectEnd();
}

void FileService::FillPattern(std::uint64_t size, std::uint8_t seed) {
  content_.resize(size);
  std::uint8_t v = seed;
  for (auto& b : content_) {
    b = v;
    v = static_cast<std::uint8_t>(v * 31 + 7);
  }
}

std::shared_ptr<rpc::Dispatch> MakeFileDispatch(
    std::shared_ptr<FileService> impl) {
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<ReadRequest, ReadResponse>(
      *dispatch, filewire::kRead,
      [impl](ReadRequest req,
             const rpc::CallContext&) -> sim::Co<Result<ReadResponse>> {
        Result<Bytes> data = co_await impl->Read(req.offset, req.length);
        if (!data.ok()) co_return data.status();
        co_return ReadResponse{std::move(*data)};
      });
  rpc::RegisterTyped<WriteRequest, rpc::Void>(
      *dispatch, filewire::kWrite,
      [impl](WriteRequest req, const rpc::CallContext&) {
        return impl->WriteExcluding(req.offset, std::move(req.data),
                                    req.exclude_sink);
      });
  rpc::RegisterTyped<rpc::Void, SizeResponse>(
      *dispatch, filewire::kSize,
      [impl](rpc::Void, const rpc::CallContext&)
          -> sim::Co<Result<SizeResponse>> {
        Result<std::uint64_t> size = co_await impl->Size();
        if (!size.ok()) co_return size.status();
        co_return SizeResponse{*size};
      });
  rpc::RegisterTyped<TruncateRequest, rpc::Void>(
      *dispatch, filewire::kTruncate,
      [impl](TruncateRequest req, const rpc::CallContext&) {
        return impl->TruncateExcluding(req.size, req.exclude_sink);
      });
  rpc::RegisterTyped<SubscribeRequest, rpc::Void>(
      *dispatch, filewire::kSubscribe,
      [impl](SubscribeRequest req,
             const rpc::CallContext&) -> sim::Co<Result<rpc::Void>> {
        const Status st = impl->Subscribe(req.sink_server, req.sink_object);
        if (!st.ok()) co_return st;
        co_return rpc::Void{};
      });
  rpc::RegisterTyped<WriteVecRequest, rpc::Void>(
      *dispatch, filewire::kWriteVec,
      [impl](WriteVecRequest req, const rpc::CallContext&) {
        return impl->WriteVec(std::move(req.writes));
      });
  return dispatch;
}

Result<FileExport> ExportFileService(core::Context& context,
                                     std::uint32_t protocol) {
  auto impl = std::make_shared<FileService>(context);
  auto dispatch = MakeFileDispatch(impl);
  PROXY_ASSIGN_OR_RETURN(
      auto exported,
      core::ServiceExport<IFile>::Create(context, impl, dispatch, protocol,
                                         impl));
  return FileExport{std::move(impl), exported.binding()};
}

// --- protocol 1: stub ---

sim::Co<Result<Bytes>> FileStub::Read(std::uint64_t offset,
                                      std::uint32_t length) {
  ReadRequest req{offset, length};
  Result<ReadResponse> resp =
      co_await Call<ReadResponse>(filewire::kRead, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->data);
}

sim::Co<Result<rpc::Void>> FileStub::Write(std::uint64_t offset, Bytes data) {
  WriteRequest req{offset, std::move(data), ObjectId{}};
  co_return co_await Call<rpc::Void>(filewire::kWrite, std::move(req));
}

sim::Co<Result<std::uint64_t>> FileStub::Size() {
  Result<SizeResponse> resp =
      co_await Call<SizeResponse>(filewire::kSize, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->size;
}

sim::Co<Result<rpc::Void>> FileStub::Truncate(std::uint64_t size) {
  TruncateRequest req{size, ObjectId{}};
  co_return co_await Call<rpc::Void>(filewire::kTruncate, std::move(req));
}

// --- protocol 2: caching proxy ---

FileCachingProxy::FileCachingProxy(core::Context& context,
                                   core::ServiceBinding binding,
                                   FileCacheParams params)
    : core::ProxyBase(context, std::move(binding)),
      params_(params),
      blocks_(params.capacity_blocks),
      sink_id_(context.MintObjectId()),
      sink_dispatch_(std::make_shared<rpc::Dispatch>()) {
  sink_dispatch_->Register(
      filewire::SinkMethod::kInvalidateRange,
      [this](BytesView args,
             const rpc::CallContext&) -> sim::Co<Result<Bytes>> {
        Result<InvalidateRangeMessage> msg =
            serde::DecodeFromBytes<InvalidateRangeMessage>(args);
        if (!msg.ok()) co_return msg.status();
        OnInvalidateRange(msg->offset, msg->length);
        co_return serde::EncodeToBytes(rpc::Void{});
      });
  (void)this->context().server().ExportObject(sink_id_, sink_dispatch_);
  blocks_.BindMetrics(context.metrics(), "svc.file.cache");
  context.metrics().Attach("svc.file.prefetches", &prefetches_);
}

FileCachingProxy::~FileCachingProxy() {
  blocks_.DetachMetrics(context().metrics(), "svc.file.cache");
  context().metrics().Detach("svc.file.prefetches", &prefetches_);
  (void)context().server().RemoveObject(sink_id_);
}

sim::Co<Status> FileCachingProxy::EnsureSubscribed() {
  if (!params_.subscribe_invalidations || subscribed_ ||
      subscribe_in_flight_) {
    co_return Status::Ok();
  }
  subscribe_in_flight_ = true;
  SubscribeRequest req{context().server_address(), sink_id_};
  Result<rpc::Void> resp =
      co_await Call<rpc::Void>(filewire::kSubscribe, std::move(req));
  subscribe_in_flight_ = false;
  if (resp.ok() || resp.status().code() == StatusCode::kAlreadyExists) {
    subscribed_ = true;
    co_return Status::Ok();
  }
  co_return resp.status();
}

void FileCachingProxy::OnInvalidateRange(std::uint64_t offset,
                                         std::uint64_t length) {
  const std::uint64_t bs = params_.block_size;
  if (length == 0) {
    // Truncate: everything at or after `offset` is suspect.
    std::vector<std::uint64_t> doomed;
    blocks_.ForEach([&](std::uint64_t block, const Bytes&) {
      if ((block + 1) * bs > offset) doomed.push_back(block);
    });
    for (const auto block : doomed) blocks_.Invalidate(block);
    return;
  }
  const std::uint64_t first = offset / bs;
  const std::uint64_t last = (offset + length - 1) / bs;
  for (std::uint64_t block = first; block <= last; ++block) {
    blocks_.Invalidate(block);
  }
}

sim::Co<Result<Bytes>> FileCachingProxy::FetchBlock(std::uint64_t block) {
  const std::uint64_t bs = params_.block_size;
  ReadRequest req{block * bs, static_cast<std::uint32_t>(bs)};
  Result<ReadResponse> resp =
      co_await Call<ReadResponse>(filewire::kRead, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->data);
}

void FileCachingProxy::Prefetch(std::uint64_t block) {
  if (!params_.prefetch_next) return;
  if (blocks_.Peek(block) != nullptr) return;
  if (inflight_.contains(block)) return;  // already on the wire
  prefetches_++;
  (void)sim::Spawn(context().scheduler(), PrefetchTask(block));
}

sim::Co<void> FileCachingProxy::PrefetchTask(std::uint64_t block) {
  sim::Promise<bool> done(context().scheduler());
  inflight_.emplace(block, done.future());
  Result<Bytes> data = co_await FetchBlock(block);
  if (data.ok() && !data->empty()) blocks_.Put(block, std::move(*data));
  inflight_.erase(block);
  done.Set(true);
}

sim::Co<Result<Bytes>> FileCachingProxy::Read(std::uint64_t offset,
                                              std::uint32_t length) {
  const Status sub = co_await EnsureSubscribed();
  if (!sub.ok()) co_return sub;

  const std::uint64_t bs = params_.block_size;
  Bytes out;
  out.reserve(length);
  std::uint64_t pos = offset;
  const std::uint64_t want_end = offset + length;

  while (pos < want_end) {
    const std::uint64_t block = pos / bs;
    const std::uint64_t in_block = pos % bs;

    std::optional<Bytes> cached = blocks_.Get(block);
    if (!cached) {
      // A prefetch may already be fetching this block: wait for it
      // rather than issuing a duplicate transfer.
      const auto inflight = inflight_.find(block);
      if (inflight != inflight_.end()) {
        sim::Future<bool> landed = inflight->second;
        (void)co_await landed;
        cached = blocks_.Get(block);
      }
    }
    if (!cached) {
      Result<Bytes> fetched = co_await FetchBlock(block);
      if (!fetched.ok()) co_return fetched.status();
      cached = std::move(*fetched);
      blocks_.Put(block, *cached);
    }
    if (pos / bs == block) Prefetch(block + 1);
    // Short block = EOF inside this block.
    if (in_block >= cached->size()) break;
    const std::uint64_t take =
        std::min<std::uint64_t>(want_end - pos, cached->size() - in_block);
    out.insert(out.end(),
               cached->begin() + static_cast<std::ptrdiff_t>(in_block),
               cached->begin() + static_cast<std::ptrdiff_t>(in_block + take));
    pos += take;
    if (cached->size() < bs) break;  // EOF block
  }
  co_return out;
}

sim::Co<Result<rpc::Void>> FileCachingProxy::Write(std::uint64_t offset,
                                                   Bytes data) {
  const Status sub = co_await EnsureSubscribed();
  if (!sub.ok()) co_return sub;
  // Write-through with in-place patching: our own data is authoritative,
  // so cached blocks are updated rather than dropped, and the server
  // skips our sink in its invalidation fan-out.
  PatchBlocks(offset, data);
  WriteRequest req{offset, std::move(data), sink_id_};
  co_return co_await Call<rpc::Void>(filewire::kWrite, std::move(req));
}

void FileCachingProxy::PatchBlocks(std::uint64_t offset, const Bytes& data) {
  if (data.empty()) return;
  const std::uint64_t bs = params_.block_size;
  const std::uint64_t first = offset / bs;
  const std::uint64_t last = (offset + data.size() - 1) / bs;
  for (std::uint64_t block = first; block <= last; ++block) {
    Bytes* cached = blocks_.Mutable(block);
    if (cached == nullptr) continue;
    const std::uint64_t block_start = block * bs;
    const std::uint64_t lo = std::max(offset, block_start);
    const std::uint64_t hi =
        std::min<std::uint64_t>(offset + data.size(), block_start + bs);
    const std::uint64_t local_hi = hi - block_start;
    // A write may extend the file into this block: grow the cached copy
    // with the same zero fill the server applies.
    if (cached->size() < local_hi) cached->resize(local_hi, 0);
    std::copy(data.begin() + static_cast<std::ptrdiff_t>(lo - offset),
              data.begin() + static_cast<std::ptrdiff_t>(hi - offset),
              cached->begin() + static_cast<std::ptrdiff_t>(lo - block_start));
  }
}

sim::Co<Result<std::uint64_t>> FileCachingProxy::Size() {
  Result<SizeResponse> resp =
      co_await Call<SizeResponse>(filewire::kSize, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->size;
}

sim::Co<Result<rpc::Void>> FileCachingProxy::Truncate(std::uint64_t size) {
  // Truncation is rare: dropping the tail locally is simpler than
  // trimming blocks, and self-exclusion keeps the fan-out quiet.
  OnInvalidateRange(size, 0);
  TruncateRequest req{size, sink_id_};
  co_return co_await Call<rpc::Void>(filewire::kTruncate, std::move(req));
}

// --- protocol 3: batching proxy ---

FileBatchProxy::FileBatchProxy(core::Context& context,
                               core::ServiceBinding binding,
                               FileBatchParams params)
    : FileCachingProxy(context, std::move(binding), params.cache),
      fb_params_(params),
      batcher_(
          context.scheduler(),
          [this](std::vector<WriteRequest> batch) {
            return FlushBatch(std::move(batch));
          },
          params.max_batch, params.flush_window) {
  batcher_.BindMetrics(context.metrics(), "svc.file.writeback");
}

FileBatchProxy::~FileBatchProxy() {
  batcher_.DetachMetrics(context().metrics(), "svc.file.writeback");
}

sim::Co<Status> FileBatchProxy::FlushBatch(std::vector<WriteRequest> batch) {
  WriteVecRequest req{std::move(batch)};
  Result<rpc::Void> resp =
      co_await Call<rpc::Void>(filewire::kWriteVec, std::move(req));
  co_return resp.status();
}

sim::Co<Result<Bytes>> FileBatchProxy::Read(std::uint64_t offset,
                                            std::uint32_t length) {
  // Order reads after buffered writes (no dependency tracking: flush all).
  const Status flushed = co_await FlushWrites();
  if (!flushed.ok()) co_return flushed;
  co_return co_await FileCachingProxy::Read(offset, length);
}

sim::Co<Result<rpc::Void>> FileBatchProxy::Write(std::uint64_t offset,
                                                 Bytes data) {
  PatchBlocks(offset, data);
  (void)batcher_.Add(WriteRequest{offset, std::move(data), sink_id_});
  co_return rpc::Void{};
}

sim::Co<Result<std::uint64_t>> FileBatchProxy::Size() {
  const Status flushed = co_await FlushWrites();
  if (!flushed.ok()) co_return flushed;
  co_return co_await FileCachingProxy::Size();
}

sim::Co<Result<rpc::Void>> FileBatchProxy::Truncate(std::uint64_t size) {
  const Status flushed = co_await FlushWrites();
  if (!flushed.ok()) co_return flushed;
  co_return co_await FileCachingProxy::Truncate(size);
}

sim::Co<Status> FileBatchProxy::FlushWrites() {
  while (batcher_.pending() > 0) {
    const Status st = co_await batcher_.Flush();
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

// --- factories ---

void RegisterFileFactories() {
  const InterfaceId iface = InterfaceIdOf(IFile::kInterfaceName);
  auto& proxies = core::ProxyFactoryRegistry::Instance();
  if (!proxies.Has(iface, 1)) {
    (void)proxies.Register(
        iface, 1, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IFile>(
                  std::make_shared<FileStub>(ctx, b)));
        });
  }
  if (!proxies.Has(iface, 2)) {
    (void)proxies.Register(
        iface, 2, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IFile>(
                  std::make_shared<FileCachingProxy>(ctx, b)));
        });
  }
  if (!proxies.Has(iface, 3)) {
    (void)proxies.Register(
        iface, 3, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IFile>(
                  std::make_shared<FileBatchProxy>(ctx, b)));
        });
  }
  auto& servers = core::ServerObjectFactoryRegistry::Instance();
  if (!servers.Has(iface)) {
    (void)servers.Register(
        iface,
        [](core::Context& ctx, ObjectId id, std::uint32_t protocol,
           Bytes state) -> Result<core::ServiceBinding> {
          auto impl = std::make_shared<FileService>(ctx);
          PROXY_RETURN_IF_ERROR(impl->RestoreState(View(state)));
          auto dispatch = MakeFileDispatch(impl);
          PROXY_ASSIGN_OR_RETURN(
              auto exported,
              core::ServiceExport<IFile>::CreateWithId(ctx, id, impl, dispatch,
                                                       protocol, impl));
          return exported.binding();
        });
  }
}

}  // namespace proxy::services
