#include "services/register_all.h"

#include "services/counter.h"
#include "services/file.h"
#include "services/kv.h"
#include "services/lock.h"
#include "services/replicated_kv.h"
#include "services/shard_router.h"
#include "services/spooler.h"

namespace proxy::services {

void RegisterAllServices() {
  RegisterKvFactories();
  RegisterCounterFactories();
  RegisterFileFactories();
  RegisterLockFactories();
  RegisterReplicatedKvFactories();
  RegisterShardedKvFactories();
  RegisterSpoolerFactories();
}

}  // namespace proxy::services
