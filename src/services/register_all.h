// One-call registration of every service's proxy and server factories.
#pragma once

namespace proxy::services {

/// Idempotent; call once at program start (examples, tests, benches).
void RegisterAllServices();

}  // namespace proxy::services
