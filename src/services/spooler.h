// Spooler service — a print/job queue.
//
// Submissions are small and frequent: exactly the traffic shape where a
// batching proxy pays off (experiment F6). Two proxy protocols:
//
//   protocol 1 — SpoolerStub        one RPC per job
//   protocol 2 — SpoolerBatchProxy  jobs coalesced into SubmitMany
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/batcher.h"
#include "core/export.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "rpc/stub.h"
#include "sim/task.h"

namespace proxy::services {

struct SpoolJob {
  std::string name;
  Bytes payload;
  PROXY_SERDE_FIELDS(name, payload)
};

class ISpooler {
 public:
  static constexpr std::string_view kInterfaceName = "proxy.services.Spooler";

  virtual ~ISpooler() = default;

  /// Queues a job; returns its id.
  virtual sim::Co<Result<std::uint64_t>> Submit(SpoolJob job) = 0;
  /// Queues many jobs; returns the first id of the contiguous id range.
  virtual sim::Co<Result<std::uint64_t>> SubmitMany(
      std::vector<SpoolJob> jobs) = 0;
  /// Jobs fully processed so far.
  virtual sim::Co<Result<std::uint64_t>> CompletedCount() = 0;
};

namespace spoolwire {

enum Method : std::uint32_t {
  kSubmit = 1,
  kSubmitMany = 2,
  kCompleted = 3,
};

struct SubmitRequest {
  SpoolJob job;
  PROXY_SERDE_FIELDS(job)
};
struct SubmitManyRequest {
  std::vector<SpoolJob> jobs;
  PROXY_SERDE_FIELDS(jobs)
};
struct IdResponse {
  std::uint64_t id = 0;
  PROXY_SERDE_FIELDS(id)
};
struct CountResponse {
  std::uint64_t count = 0;
  PROXY_SERDE_FIELDS(count)
};

}  // namespace spoolwire

class SpoolerService : public ISpooler {
 public:
  /// `per_job_cost` models the device time each job consumes.
  SpoolerService(sim::Scheduler& scheduler,
                 SimDuration per_job_cost = Microseconds(200))
      : scheduler_(&scheduler), per_job_cost_(per_job_cost) {}

  sim::Co<Result<std::uint64_t>> Submit(SpoolJob job) override;
  sim::Co<Result<std::uint64_t>> SubmitMany(
      std::vector<SpoolJob> jobs) override;
  sim::Co<Result<std::uint64_t>> CompletedCount() override;

  [[nodiscard]] std::uint64_t submitted() const noexcept { return next_id_; }

 private:
  sim::Co<void> ProcessJobs(std::uint64_t count);

  sim::Scheduler* scheduler_;
  SimDuration per_job_cost_;
  std::uint64_t next_id_ = 0;
  std::uint64_t completed_ = 0;
};

std::shared_ptr<rpc::Dispatch> MakeSpoolerDispatch(
    std::shared_ptr<SpoolerService> impl);

struct SpoolerExport {
  std::shared_ptr<SpoolerService> impl;
  core::ServiceBinding binding;
};
Result<SpoolerExport> ExportSpoolerService(core::Context& context,
                                           std::uint32_t protocol = 1);

class SpoolerStub : public ISpooler, public core::ProxyBase {
 public:
  SpoolerStub(core::Context& context, core::ServiceBinding binding)
      : core::ProxyBase(context, std::move(binding)) {}

  sim::Co<Result<std::uint64_t>> Submit(SpoolJob job) override;
  sim::Co<Result<std::uint64_t>> SubmitMany(
      std::vector<SpoolJob> jobs) override;
  sim::Co<Result<std::uint64_t>> CompletedCount() override;
};

struct SpoolerBatchParams {
  std::size_t max_batch = 32;
  SimDuration flush_window = Milliseconds(2);
};

/// Batching proxy: Submit() acknowledges a job id locally and ships jobs
/// in groups. Ids are assigned pessimistically (the proxy reserves a
/// range on first contact) — returned ids are proxy-local sequence
/// numbers; CompletedCount flushes first so callers observe their jobs.
class SpoolerBatchProxy : public ISpooler, public core::ProxyBase {
 public:
  SpoolerBatchProxy(core::Context& context, core::ServiceBinding binding,
                    SpoolerBatchParams params = {});
  ~SpoolerBatchProxy() override;

  sim::Co<Result<std::uint64_t>> Submit(SpoolJob job) override;
  sim::Co<Result<std::uint64_t>> SubmitMany(
      std::vector<SpoolJob> jobs) override;
  sim::Co<Result<std::uint64_t>> CompletedCount() override;

  sim::Co<Status> Flush();

  [[nodiscard]] const core::BatcherStats& batch_stats() const noexcept {
    return batcher_.stats();
  }

 private:
  sim::Co<Status> FlushBatch(std::vector<SpoolJob> batch);

  SpoolerBatchParams params_;
  std::uint64_t local_seq_ = 0;
  core::Batcher<SpoolJob> batcher_;
};

void RegisterSpoolerFactories();

}  // namespace proxy::services
