#include "services/kv.h"

#include <utility>

#include "common/log.h"
#include "core/factory.h"
#include "serde/reader.h"
#include "serde/traits.h"
#include "serde/writer.h"

namespace proxy::services {

using kvwire::BatchPutRequest;
using kvwire::DelRequest;
using kvwire::DelResponse;
using kvwire::GetRequest;
using kvwire::GetResponse;
using kvwire::InvalidateMessage;
using kvwire::ListRequest;
using kvwire::ListResponse;
using kvwire::PutRequest;
using kvwire::SizeResponse;
using kvwire::SubscribeRequest;

// --- server ---

sim::Co<Result<std::optional<std::string>>> KvService::Get(std::string key) {
  const auto it = data_.find(key);
  if (it == data_.end()) co_return std::optional<std::string>{};
  co_return std::optional<std::string>{it->second};
}

sim::Co<Result<rpc::Void>> KvService::Put(std::string key, std::string value) {
  co_return co_await PutExcluding(std::move(key), std::move(value),
                                  ObjectId{});
}

sim::Co<Result<rpc::Void>> KvService::PutExcluding(std::string key,
                                                   std::string value,
                                                   ObjectId exclude) {
  data_[key] = std::move(value);
  NotifyInvalidate({std::move(key)}, exclude);
  co_return rpc::Void{};
}

sim::Co<Result<bool>> KvService::Del(std::string key) {
  co_return co_await DelExcluding(std::move(key), ObjectId{});
}

sim::Co<Result<bool>> KvService::DelExcluding(std::string key,
                                              ObjectId exclude) {
  const bool existed = data_.erase(key) > 0;
  if (existed) NotifyInvalidate({std::move(key)}, exclude);
  co_return existed;
}

sim::Co<Result<std::uint64_t>> KvService::Size() {
  co_return static_cast<std::uint64_t>(data_.size());
}

sim::Co<Result<std::vector<std::string>>> KvService::List(std::string prefix) {
  std::vector<std::string> keys;
  // data_ is an ordered map, so the range scan yields sorted keys.
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  co_return keys;
}

sim::Co<Result<rpc::Void>> KvService::BatchPut(
    std::vector<std::pair<std::string, std::string>> entries,
    ObjectId exclude) {
  std::vector<std::string> changed;
  changed.reserve(entries.size());
  for (auto& [key, value] : entries) {
    data_[key] = std::move(value);
    changed.push_back(key);
  }
  NotifyInvalidate(std::move(changed), exclude);
  co_return rpc::Void{};
}

Status KvService::Subscribe(const net::Address& sink_server,
                            ObjectId sink_object) {
  for (const auto& sub : subscribers_) {
    if (sub.sink_object == sink_object) {
      return AlreadyExistsError("sink already subscribed");
    }
  }
  subscribers_.push_back(Subscriber{sink_server, sink_object});
  return Status::Ok();
}

Status KvService::Unsubscribe(ObjectId sink_object) {
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (it->sink_object == sink_object) {
      subscribers_.erase(it);
      return Status::Ok();
    }
  }
  return NotFoundError("sink not subscribed");
}

void KvService::NotifyInvalidate(std::vector<std::string> keys,
                                 ObjectId exclude) {
  if (subscribers_.empty() || keys.empty()) return;
  const Bytes msg = serde::EncodeToBytes(InvalidateMessage{std::move(keys)});
  for (const auto& sub : subscribers_) {
    if (!exclude.IsNil() && sub.sink_object == exclude) continue;
    invalidations_sent_++;
    // Fire-and-forget: the future is dropped; a lost invalidation only
    // costs a subscriber staleness until its next miss — so cap the
    // retry budget instead of letting it grind against a dead sink.
    (void)context_->client().Call(sub.sink_server, sub.sink_object,
                                  kvwire::SinkMethod::kInvalidate, msg,
                                  rpc::CallOptions{}.WithDeadline(
                                      Milliseconds(500)));
  }
}

Bytes KvService::SnapshotState() const {
  serde::Writer w;
  serde::Serialize(w, data_);
  serde::Serialize(w, subscribers_);
  return w.Take();
}

Status KvService::RestoreState(BytesView state) {
  serde::Reader r(state);
  PROXY_RETURN_IF_ERROR(serde::Deserialize(r, data_));
  PROXY_RETURN_IF_ERROR(serde::Deserialize(r, subscribers_));
  return r.ExpectEnd();
}

std::shared_ptr<rpc::Dispatch> MakeKvDispatch(
    std::shared_ptr<KvService> impl) {
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<GetRequest, GetResponse>(
      *dispatch, kvwire::kGet,
      [impl](GetRequest req, const rpc::CallContext&)
          -> sim::Co<Result<GetResponse>> {
        Result<std::optional<std::string>> value =
            co_await impl->Get(std::move(req.key));
        if (!value.ok()) co_return value.status();
        co_return GetResponse{std::move(*value)};
      });
  rpc::RegisterTyped<PutRequest, rpc::Void>(
      *dispatch, kvwire::kPut,
      [impl](PutRequest req, const rpc::CallContext&) {
        return impl->PutExcluding(std::move(req.key), std::move(req.value),
                                  req.exclude_sink);
      });
  rpc::RegisterTyped<DelRequest, DelResponse>(
      *dispatch, kvwire::kDel,
      [impl](DelRequest req,
             const rpc::CallContext&) -> sim::Co<Result<DelResponse>> {
        Result<bool> existed =
            co_await impl->DelExcluding(std::move(req.key), req.exclude_sink);
        if (!existed.ok()) co_return existed.status();
        co_return DelResponse{*existed};
      });
  rpc::RegisterTyped<rpc::Void, SizeResponse>(
      *dispatch, kvwire::kSize,
      [impl](rpc::Void, const rpc::CallContext&)
          -> sim::Co<Result<SizeResponse>> {
        Result<std::uint64_t> size = co_await impl->Size();
        if (!size.ok()) co_return size.status();
        co_return SizeResponse{*size};
      });
  rpc::RegisterTyped<SubscribeRequest, rpc::Void>(
      *dispatch, kvwire::kSubscribe,
      [impl](SubscribeRequest req,
             const rpc::CallContext&) -> sim::Co<Result<rpc::Void>> {
        const Status st = impl->Subscribe(req.sink_server, req.sink_object);
        if (!st.ok()) co_return st;
        co_return rpc::Void{};
      });
  rpc::RegisterTyped<SubscribeRequest, rpc::Void>(
      *dispatch, kvwire::kUnsubscribe,
      [impl](SubscribeRequest req,
             const rpc::CallContext&) -> sim::Co<Result<rpc::Void>> {
        const Status st = impl->Unsubscribe(req.sink_object);
        if (!st.ok()) co_return st;
        co_return rpc::Void{};
      });
  rpc::RegisterTyped<BatchPutRequest, rpc::Void>(
      *dispatch, kvwire::kBatchPut,
      [impl](BatchPutRequest req, const rpc::CallContext&) {
        return impl->BatchPut(std::move(req.entries), req.exclude_sink);
      });
  rpc::RegisterTyped<ListRequest, ListResponse>(
      *dispatch, kvwire::kList,
      [impl](ListRequest req,
             const rpc::CallContext&) -> sim::Co<Result<ListResponse>> {
        Result<std::vector<std::string>> keys =
            co_await impl->List(std::move(req.prefix));
        if (!keys.ok()) co_return keys.status();
        co_return ListResponse{std::move(*keys)};
      });
  return dispatch;
}

Result<KvExport> ExportKvService(core::Context& context,
                                 std::uint32_t protocol) {
  auto impl = std::make_shared<KvService>(context);
  auto dispatch = MakeKvDispatch(impl);
  PROXY_ASSIGN_OR_RETURN(
      auto exported,
      core::ServiceExport<IKeyValue>::Create(context, impl, dispatch, protocol,
                                             impl));
  return KvExport{std::move(impl), exported.binding()};
}

// --- protocol 1: stub ---

sim::Co<Result<std::optional<std::string>>> KvStub::Get(std::string key) {
  GetRequest req{std::move(key)};
  Result<GetResponse> resp =
      co_await Call<GetResponse>(kvwire::kGet, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->value);
}

sim::Co<Result<rpc::Void>> KvStub::Put(std::string key, std::string value) {
  PutRequest req{std::move(key), std::move(value), ObjectId{}};
  co_return co_await Call<rpc::Void>(kvwire::kPut, std::move(req));
}

sim::Co<Result<bool>> KvStub::Del(std::string key) {
  DelRequest req{std::move(key), ObjectId{}};
  Result<DelResponse> resp =
      co_await Call<DelResponse>(kvwire::kDel, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return resp->existed;
}

sim::Co<Result<std::uint64_t>> KvStub::Size() {
  Result<SizeResponse> resp =
      co_await Call<SizeResponse>(kvwire::kSize, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->size;
}

sim::Co<Result<std::vector<std::string>>> KvStub::List(std::string prefix) {
  ListRequest req{std::move(prefix)};
  Result<ListResponse> resp =
      co_await Call<ListResponse>(kvwire::kList, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->keys);
}

// --- protocol 2: caching proxy ---

KvCachingProxy::KvCachingProxy(core::Context& context,
                               core::ServiceBinding binding,
                               KvCacheParams params)
    : core::ProxyBase(context, std::move(binding)),
      params_(params),
      cache_(params.capacity),
      stale_(params.stale_on_shed ? params.stale_capacity : 0),
      sink_id_(context.MintObjectId()),
      sink_dispatch_(std::make_shared<rpc::Dispatch>()) {
  // The invalidation sink: a server-side object living in the *client's*
  // context. The KV server calls it when keys change.
  sink_dispatch_->Register(
      kvwire::SinkMethod::kInvalidate,
      [this](BytesView args,
             const rpc::CallContext&) -> sim::Co<Result<Bytes>> {
        Result<InvalidateMessage> msg =
            serde::DecodeFromBytes<InvalidateMessage>(args);
        if (!msg.ok()) co_return msg.status();
        OnInvalidate(msg->keys);
        co_return serde::EncodeToBytes(rpc::Void{});
      });
  (void)this->context().server().ExportObject(sink_id_, sink_dispatch_);
  cache_.BindMetrics(context.metrics(), "svc.kv.cache");
  context.metrics().Attach("svc.kv.cache.stale_served", &stale_served_);
}

KvCachingProxy::~KvCachingProxy() {
  context().metrics().Detach("svc.kv.cache.stale_served", &stale_served_);
  cache_.DetachMetrics(context().metrics(), "svc.kv.cache");
  (void)context().server().RemoveObject(sink_id_);
}

sim::Co<Status> KvCachingProxy::EnsureSubscribed() {
  if (!params_.subscribe_invalidations || subscribed_ ||
      subscribe_in_flight_) {
    co_return Status::Ok();
  }
  subscribe_in_flight_ = true;
  SubscribeRequest req{context().server_address(), sink_id_};
  Result<rpc::Void> resp =
      co_await Call<rpc::Void>(kvwire::kSubscribe, std::move(req));
  subscribe_in_flight_ = false;
  if (resp.ok() || resp.status().code() == StatusCode::kAlreadyExists) {
    subscribed_ = true;
    co_return Status::Ok();
  }
  co_return resp.status();
}

void KvCachingProxy::OnInvalidate(const std::vector<std::string>& keys) {
  for (const auto& key : keys) cache_.Invalidate(key);
}

sim::Co<Result<std::optional<std::string>>> KvCachingProxy::Get(
    std::string key) {
  const Status sub = co_await EnsureSubscribed();
  if (!sub.ok()) co_return sub;
  if (auto cached = cache_.Get(key)) co_return std::move(*cached);

  GetRequest req{key};
  Result<GetResponse> resp =
      co_await Call<GetResponse>(kvwire::kGet, std::move(req));
  if (!resp.ok()) {
    // Graceful degradation: the server shed this read (and the proxy's
    // bounded pushback retries did not get through). Serve the last value
    // we ever observed rather than fail — stale beats unavailable, and
    // only the overload path pays the staleness.
    if (resp.status().code() == StatusCode::kResourceExhausted &&
        params_.stale_on_shed) {
      if (auto stale = stale_.Get(key)) {
        stale_served_++;
        co_return std::move(*stale);
      }
    }
    co_return resp.status();
  }
  cache_.Put(key, resp->value);  // negative results are cached too
  RememberStale(key, resp->value);
  co_return std::move(resp->value);
}

sim::Co<Result<rpc::Void>> KvCachingProxy::Put(std::string key,
                                               std::string value) {
  const Status sub = co_await EnsureSubscribed();
  if (!sub.ok()) co_return sub;
  PutRequest req{key, value, sink_id_};
  Result<rpc::Void> resp =
      co_await Call<rpc::Void>(kvwire::kPut, std::move(req));
  if (!resp.ok()) co_return resp.status();
  // Write-through: the cache reflects the acknowledged write immediately.
  RememberStale(key, std::optional<std::string>(value));
  cache_.Put(std::move(key), std::optional<std::string>(std::move(value)));
  co_return rpc::Void{};
}

sim::Co<Result<bool>> KvCachingProxy::Del(std::string key) {
  DelRequest req{key, sink_id_};
  Result<DelResponse> resp =
      co_await Call<DelResponse>(kvwire::kDel, std::move(req));
  if (!resp.ok()) co_return resp.status();
  RememberStale(key, std::optional<std::string>{});
  cache_.Put(std::move(key), std::optional<std::string>{});
  co_return resp->existed;
}

sim::Co<Result<std::uint64_t>> KvCachingProxy::Size() {
  Result<SizeResponse> resp =
      co_await Call<SizeResponse>(kvwire::kSize, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->size;
}

sim::Co<Result<std::vector<std::string>>> KvCachingProxy::List(
    std::string prefix) {
  // Listings are not cached: the invalidation protocol is per-key, so a
  // cached listing could silently miss keys written by other clients.
  ListRequest req{std::move(prefix)};
  Result<ListResponse> resp =
      co_await Call<ListResponse>(kvwire::kList, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->keys);
}

// --- protocol 3: write-back proxy ---

KvWriteBackProxy::KvWriteBackProxy(core::Context& context,
                                   core::ServiceBinding binding,
                                   KvWriteBackParams params)
    : KvCachingProxy(context, std::move(binding), params.cache),
      wb_params_(params),
      batcher_(
          context.scheduler(),
          [this](std::vector<std::pair<std::string, std::string>> batch) {
            return FlushBatch(std::move(batch));
          },
          params.max_batch, params.flush_window) {
  batcher_.BindMetrics(context.metrics(), "svc.kv.writeback");
}

KvWriteBackProxy::~KvWriteBackProxy() {
  batcher_.DetachMetrics(context().metrics(), "svc.kv.writeback");
}

sim::Co<Status> KvWriteBackProxy::FlushBatch(
    std::vector<std::pair<std::string, std::string>> batch) {
  // Later puts to the same key may have superseded buffered values; ship
  // the freshest value per key, preserving first-write order.
  for (auto& [key, value] : batch) {
    const auto it = dirty_.find(key);
    if (it != dirty_.end()) value = it->second;
  }
  BatchPutRequest req{batch, sink_id_};
  Result<rpc::Void> resp =
      co_await Call<rpc::Void>(kvwire::kBatchPut, std::move(req));
  if (!resp.ok()) co_return resp.status();
  // A key is clean only if no Put re-dirtied it while the flush was in
  // flight: compare the buffered value against what we shipped.
  for (const auto& [key, shipped] : batch) {
    const auto it = dirty_.find(key);
    if (it != dirty_.end() && it->second == shipped) dirty_.erase(it);
  }
  co_return Status::Ok();
}

sim::Co<Result<std::optional<std::string>>> KvWriteBackProxy::Get(
    std::string key) {
  // Read-your-writes: dirty keys are served from the buffer.
  if (const auto it = dirty_.find(key); it != dirty_.end()) {
    co_return std::optional<std::string>(it->second);
  }
  co_return co_await KvCachingProxy::Get(std::move(key));
}

sim::Co<Result<rpc::Void>> KvWriteBackProxy::Put(std::string key,
                                                 std::string value) {
  dirty_[key] = value;
  // Keep the read cache coherent ourselves: the server will skip our
  // sink when this write's invalidation fans out.
  cache_.Put(key, std::optional<std::string>(value));
  RememberStale(key, std::optional<std::string>(value));
  // Write-behind: acknowledge immediately; the per-item future is
  // dropped — callers needing durability use FlushWrites().
  (void)batcher_.Add(std::make_pair(std::move(key), std::move(value)));
  co_return rpc::Void{};
}

sim::Co<Result<bool>> KvWriteBackProxy::Del(std::string key) {
  // Deletions are ordering-sensitive: flush the buffer first.
  const Status flushed = co_await FlushWrites();
  if (!flushed.ok()) co_return flushed;
  co_return co_await KvCachingProxy::Del(std::move(key));
}

sim::Co<Result<std::vector<std::string>>> KvWriteBackProxy::List(
    std::string prefix) {
  // A listing must observe this proxy's own buffered writes: flush first.
  const Status flushed = co_await FlushWrites();
  if (!flushed.ok()) co_return flushed;
  co_return co_await KvCachingProxy::List(std::move(prefix));
}

sim::Co<Status> KvWriteBackProxy::FlushWrites() {
  // Puts may race the flush; drain until nothing is pending.
  while (batcher_.pending() > 0) {
    const Status st = co_await batcher_.Flush();
    if (!st.ok()) co_return st;
  }
  co_return Status::Ok();
}

// --- factories ---

void RegisterKvFactories() {
  const InterfaceId iface = InterfaceIdOf(IKeyValue::kInterfaceName);
  auto& proxies = core::ProxyFactoryRegistry::Instance();
  if (!proxies.Has(iface, 1)) {
    (void)proxies.Register(
        iface, 1, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IKeyValue>(
                  std::make_shared<KvStub>(ctx, b)));
        });
  }
  if (!proxies.Has(iface, 2)) {
    (void)proxies.Register(
        iface, 2, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IKeyValue>(
                  std::make_shared<KvCachingProxy>(ctx, b)));
        });
  }
  if (!proxies.Has(iface, 3)) {
    (void)proxies.Register(
        iface, 3, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IKeyValue>(
                  std::make_shared<KvWriteBackProxy>(ctx, b)));
        });
  }
  auto& servers = core::ServerObjectFactoryRegistry::Instance();
  if (!servers.Has(iface)) {
    (void)servers.Register(
        iface,
        [](core::Context& ctx, ObjectId id, std::uint32_t protocol,
           Bytes state) -> Result<core::ServiceBinding> {
          auto impl = std::make_shared<KvService>(ctx);
          PROXY_RETURN_IF_ERROR(impl->RestoreState(View(state)));
          auto dispatch = MakeKvDispatch(impl);
          PROXY_ASSIGN_OR_RETURN(
              auto exported,
              core::ServiceExport<IKeyValue>::CreateWithId(
                  ctx, id, impl, dispatch, protocol, impl));
          return exported.binding();
        });
  }
}

}  // namespace proxy::services
