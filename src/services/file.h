// File service.
//
// A remote byte array with read/write/size/truncate — the service the
// 1986 literature's canonical proxy example (a caching file proxy) is
// about. Three proxy protocols behind one IFile interface:
//
//   protocol 1 — FileStub          every operation is one RPC
//   protocol 2 — FileCachingProxy  4 KiB block cache with sequential
//                                  prefetch and server-driven
//                                  range invalidation
//   protocol 3 — FileBatchProxy    caching + coalesced write-behind
//
// The protocol-swap experiment (T4) runs byte-identical client code
// against all three: only the service's advertised protocol changes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/batcher.h"
#include "core/cache.h"
#include "core/export.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "rpc/stub.h"
#include "sim/task.h"

namespace proxy::services {

class IFile {
 public:
  static constexpr std::string_view kInterfaceName = "proxy.services.File";

  virtual ~IFile() = default;

  /// Reads up to `length` bytes at `offset` (short read at EOF).
  virtual sim::Co<Result<Bytes>> Read(std::uint64_t offset,
                                      std::uint32_t length) = 0;
  virtual sim::Co<Result<rpc::Void>> Write(std::uint64_t offset,
                                           Bytes data) = 0;
  virtual sim::Co<Result<std::uint64_t>> Size() = 0;
  virtual sim::Co<Result<rpc::Void>> Truncate(std::uint64_t size) = 0;
};

namespace filewire {

enum Method : std::uint32_t {
  kRead = 1,
  kWrite = 2,
  kSize = 3,
  kTruncate = 4,
  kSubscribe = 5,
  kWriteVec = 6,
};

enum SinkMethod : std::uint32_t {
  kInvalidateRange = 1,
};

struct ReadRequest {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  PROXY_SERDE_FIELDS(offset, length)
};
struct ReadResponse {
  Bytes data;
  PROXY_SERDE_FIELDS(data)
};
struct WriteRequest {
  std::uint64_t offset = 0;
  Bytes data;
  ObjectId exclude_sink;  // writer's own sink: skipped by invalidation
  PROXY_SERDE_FIELDS(offset, data, exclude_sink)
};
struct SizeResponse {
  std::uint64_t size = 0;
  PROXY_SERDE_FIELDS(size)
};
struct TruncateRequest {
  std::uint64_t size = 0;
  ObjectId exclude_sink;
  PROXY_SERDE_FIELDS(size, exclude_sink)
};
struct SubscribeRequest {
  net::Address sink_server;
  ObjectId sink_object;
  PROXY_SERDE_FIELDS(sink_server, sink_object)
};
struct WriteVecRequest {
  std::vector<WriteRequest> writes;
  PROXY_SERDE_FIELDS(writes)
};
struct InvalidateRangeMessage {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;  // 0 = to end of file (truncate)
  PROXY_SERDE_FIELDS(offset, length)
};

}  // namespace filewire

class FileService : public IFile, public core::IMigratable {
 public:
  explicit FileService(core::Context& context) : context_(&context) {}

  sim::Co<Result<Bytes>> Read(std::uint64_t offset,
                              std::uint32_t length) override;
  sim::Co<Result<rpc::Void>> Write(std::uint64_t offset, Bytes data) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  sim::Co<Result<rpc::Void>> Truncate(std::uint64_t size) override;

  sim::Co<Result<rpc::Void>> WriteVec(
      std::vector<filewire::WriteRequest> writes);

  /// Mutations with writer exclusion (see kv.h for the rationale).
  sim::Co<Result<rpc::Void>> WriteExcluding(std::uint64_t offset, Bytes data,
                                            ObjectId exclude);
  sim::Co<Result<rpc::Void>> TruncateExcluding(std::uint64_t size,
                                               ObjectId exclude);

  Status Subscribe(const net::Address& sink_server, ObjectId sink_object);

  [[nodiscard]] Bytes SnapshotState() const override;
  Status RestoreState(BytesView state);

  /// Test/bench helper: fills the file with `size` deterministic bytes.
  void FillPattern(std::uint64_t size, std::uint8_t seed = 7);

  static constexpr std::uint64_t kMaxFileSize = 64ULL << 20;  // 64 MiB

 private:
  struct Subscriber {
    net::Address sink_server;
    ObjectId sink_object;
    PROXY_SERDE_FIELDS(sink_server, sink_object)
  };

  void NotifyInvalidate(std::uint64_t offset, std::uint64_t length,
                        ObjectId exclude);
  Status ApplyWrite(std::uint64_t offset, const Bytes& data);

  core::Context* context_;
  Bytes content_;
  std::vector<Subscriber> subscribers_;
};

std::shared_ptr<rpc::Dispatch> MakeFileDispatch(
    std::shared_ptr<FileService> impl);

struct FileExport {
  std::shared_ptr<FileService> impl;
  core::ServiceBinding binding;
};
Result<FileExport> ExportFileService(core::Context& context,
                                     std::uint32_t protocol = 1);

/// Protocol 1: plain stub.
class FileStub : public IFile, public core::ProxyBase {
 public:
  FileStub(core::Context& context, core::ServiceBinding binding)
      : core::ProxyBase(context, std::move(binding)) {}

  sim::Co<Result<Bytes>> Read(std::uint64_t offset,
                              std::uint32_t length) override;
  sim::Co<Result<rpc::Void>> Write(std::uint64_t offset, Bytes data) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  sim::Co<Result<rpc::Void>> Truncate(std::uint64_t size) override;
};

struct FileCacheParams {
  std::size_t block_size = 4096;
  std::size_t capacity_blocks = 256;
  bool prefetch_next = true;
  bool subscribe_invalidations = true;
};

/// Protocol 2: block cache + prefetch + range invalidation.
class FileCachingProxy : public IFile, public core::ProxyBase {
 public:
  FileCachingProxy(core::Context& context, core::ServiceBinding binding,
                   FileCacheParams params = {});
  ~FileCachingProxy() override;

  sim::Co<Result<Bytes>> Read(std::uint64_t offset,
                              std::uint32_t length) override;
  sim::Co<Result<rpc::Void>> Write(std::uint64_t offset, Bytes data) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  sim::Co<Result<rpc::Void>> Truncate(std::uint64_t size) override;

  [[nodiscard]] const core::CacheStats& cache_stats() const noexcept {
    return blocks_.stats();
  }

 protected:
  sim::Co<Status> EnsureSubscribed();
  void OnInvalidateRange(std::uint64_t offset, std::uint64_t length);

  /// Fetches one block (block_size bytes at block*block_size) remotely.
  sim::Co<Result<Bytes>> FetchBlock(std::uint64_t block);

  /// Kicks an asynchronous prefetch of `block` (fire and forget).
  void Prefetch(std::uint64_t block);
  sim::Co<void> PrefetchTask(std::uint64_t block);

  /// Applies one of our own writes to the cached blocks in place, so a
  /// write does not evict data we can keep coherent ourselves.
  void PatchBlocks(std::uint64_t offset, const Bytes& data);

  FileCacheParams params_;
  core::LruCache<std::uint64_t, Bytes> blocks_;  // block index -> data
  // Blocks with a prefetch in flight: a demand read awaits the existing
  // fetch instead of issuing a duplicate. (One waiter suffices: demand
  // reads are serialized per proxy.)
  std::unordered_map<std::uint64_t, sim::Future<bool>> inflight_;
  ObjectId sink_id_;
  std::shared_ptr<rpc::Dispatch> sink_dispatch_;
  bool subscribed_ = false;
  bool subscribe_in_flight_ = false;
  obs::Counter prefetches_;
};

struct FileBatchParams {
  FileCacheParams cache;
  std::size_t max_batch = 8;
  SimDuration flush_window = Milliseconds(5);
};

/// Protocol 3: caching + coalesced write-behind.
class FileBatchProxy : public FileCachingProxy {
 public:
  FileBatchProxy(core::Context& context, core::ServiceBinding binding,
                 FileBatchParams params = {});
  ~FileBatchProxy() override;

  sim::Co<Result<Bytes>> Read(std::uint64_t offset,
                              std::uint32_t length) override;
  sim::Co<Result<rpc::Void>> Write(std::uint64_t offset, Bytes data) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  sim::Co<Result<rpc::Void>> Truncate(std::uint64_t size) override;

  sim::Co<Status> FlushWrites();

  [[nodiscard]] const core::BatcherStats& batch_stats() const noexcept {
    return batcher_.stats();
  }

 private:
  sim::Co<Status> FlushBatch(std::vector<filewire::WriteRequest> batch);

  FileBatchParams fb_params_;
  core::Batcher<filewire::WriteRequest> batcher_;
};

void RegisterFileFactories();

}  // namespace proxy::services
