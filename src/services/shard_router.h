// Shard routing proxy and online migration — distribution as a proxy
// protocol, one more time.
//
// Protocol 5 completes the ladder: a client that Acquire<IKeyValue>()s a
// sharded deployment receives a KvShardRouterProxy whose binding points
// at the ShardMapService object. The router lazily fetches the versioned
// shard map, routes every single-key operation to the owning replica
// group (each group is itself reached through a protocol-4 failover
// proxy, so group-internal failover stays invisible here), and fans
// Size/List out across all groups. A replica that no longer owns a key's
// shard answers WRONG_SHARD; the router re-fetches the map and retries,
// bounded, so a stale map costs a client at most a transient retry.
//
// Online migration is driven from outside the data path by a
// ShardRebalancer: freeze (source stops accepting the shard and hands
// out a snapshot) -> install (destination adopts it under a bumped
// ownership epoch) -> commit (version-checked CAS at the map service)
// -> release (source deletes its copy). Every step is mirrored to the
// group's backups before it is acknowledged and every step is
// idempotent, so a crash of the source primary, the destination primary
// or the rebalancer itself mid-move is recoverable by re-running the
// move.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/export.h"
#include "core/factory.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "services/replicated_kv.h"
#include "services/shard_map.h"

namespace proxy::services {

/// Protocol 5: the routing proxy. Bound to the ShardMapService object;
/// data never flows through the map service, only routing metadata.
class KvShardRouterProxy : public IKeyValue, public core::ProxyBase {
 public:
  /// Route attempts per operation: a WRONG_SHARD answer forces a map
  /// refresh and a retry; after this many the error surfaces (the
  /// stale-map retry bound the tests pin down).
  static constexpr int kRoutePasses = 3;

  /// How long a group that shed a call stays marked overloaded. Ops
  /// routed at a marked group fail fast (RESOURCE_EXHAUSTED, remaining
  /// window as the hint) instead of offering the server more work; the
  /// server's own retry-after hints were already honored by the layers
  /// below before the shed surfaced here.
  static constexpr SimDuration kGroupBackoff = Milliseconds(25);

  KvShardRouterProxy(core::Context& context, core::ServiceBinding binding);
  ~KvShardRouterProxy() override;

  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  /// Fan-out: sum of every group's size. Advisory during a migration
  /// (a frozen-but-unreleased shard is counted at both ends).
  sim::Co<Result<std::uint64_t>> Size() override;
  /// Fan-out with a dedup + sorted merge, so a shard momentarily present
  /// at two groups mid-migration is reported once.
  sim::Co<Result<std::vector<std::string>>> List(std::string prefix) override;

  [[nodiscard]] std::uint64_t map_version() const noexcept {
    return map_.version;
  }
  [[nodiscard]] std::uint64_t map_refreshes() const noexcept {
    return map_refreshes_;
  }
  [[nodiscard]] std::uint64_t wrong_shard_retries() const noexcept {
    return wrong_shard_retries_;
  }
  [[nodiscard]] std::uint64_t fanouts() const noexcept { return fanouts_; }
  /// Ops failed fast because their group was inside its shed-backoff
  /// window (shed-before-fanout: no work was offered to the group).
  [[nodiscard]] std::uint64_t shed_fail_fast() const noexcept {
    return shed_fail_fast_;
  }

  /// Routing observables of the last completed single-key operation —
  /// which shard, which group (by name), and the group's shard-ownership
  /// epoch stamped on the reply. The chaos workload records these per op
  /// for the lost-key / split-shard invariants.
  [[nodiscard]] std::uint32_t last_op_shard() const noexcept {
    return last_op_shard_;
  }
  [[nodiscard]] const std::string& last_op_group() const noexcept {
    return last_op_group_;
  }
  [[nodiscard]] std::uint64_t last_op_shard_epoch() const noexcept {
    return last_op_shard_epoch_;
  }
  [[nodiscard]] std::uint64_t last_op_epoch() const noexcept {
    return last_op_epoch_;
  }
  [[nodiscard]] ObjectId last_write_acker() const noexcept {
    return last_write_acker_;
  }

 private:
  /// Fetches the shard map on first use; with `force`, re-fetches and
  /// adopts the result only if its version is not older than the cached
  /// one (refreshes never regress).
  sim::Co<Status> EnsureMap(bool force, obs::TraceContext trace = {});

  /// The (cached) protocol-4 failover proxy for a group name. Groups are
  /// resolved by *name*, so group-internal failover and promotion stay
  /// the group proxy's business.
  sim::Co<Result<std::shared_ptr<KvFailoverProxy>>> GroupProxy(
      const std::string& name);

  /// Records the routing observables after a routed op against `group`.
  void RecordOp(std::uint32_t shard, const std::string& group_name,
                const KvFailoverProxy& group, bool write);

  /// Time left in `group`'s shed-backoff window (0 = not backed off).
  /// Non-const: expired windows are erased as they are observed.
  [[nodiscard]] SimDuration GroupBackoffRemaining(const std::string& group);
  /// Marks `group` overloaded for kGroupBackoff when `code` is a shed.
  void NoteGroupOutcome(const std::string& group, StatusCode code);
  /// Fail-fast verdict for an op about to target `group`; counts it.
  [[nodiscard]] Status ShedFast(const std::string& group,
                                SimDuration remaining);

  shardwire::ShardMap map_;
  std::map<std::string, std::shared_ptr<KvFailoverProxy>> groups_;
  /// Shed-before-fanout state: group name -> end of its backoff window.
  std::map<std::string, SimTime> group_backoff_until_;
  obs::Counter map_refreshes_;
  obs::Counter wrong_shard_retries_;
  obs::Counter fanouts_;
  obs::Counter shed_fail_fast_;
  std::uint32_t last_op_shard_ = 0;
  std::string last_op_group_;
  std::uint64_t last_op_shard_epoch_ = 0;
  std::uint64_t last_op_epoch_ = 0;
  ObjectId last_write_acker_{};
};

/// Rebalancer tuning. The chaos harness shrinks the pauses so several
/// full moves fit inside its fault window.
struct ShardRebalancerParams {
  /// Attempts per migration step (each re-resolves the group primary).
  int step_attempts = 8;
  /// Pause between attempts of one step.
  SimDuration step_pause = Milliseconds(50);
  /// Per-RPC budget within a step.
  rpc::CallOptions call{.retry_interval = Milliseconds(10),
                        .max_retries = 2,
                        .deadline = Milliseconds(80)};
};

/// Drives online shard moves from outside the data path. MigrateShard is
/// a full idempotent state machine: re-running it after ANY mid-move
/// failure (lost rebalancer, crashed source or destination primary,
/// lost commit ack) finishes or cleanly completes the move.
class ShardRebalancer {
 public:
  ShardRebalancer(core::Context& context, core::ServiceBinding map_binding,
                  ShardRebalancerParams params = {});
  ~ShardRebalancer();

  /// Moves `shard` to `to_group` (an index into the map's group list):
  /// freeze -> install@epoch+1 -> commit -> release-everywhere-else.
  /// Already-moved shards short-circuit to the release sweep, so this is
  /// also the recovery procedure for a half-finished move.
  sim::Co<Status> MigrateShard(std::uint32_t shard, std::uint32_t to_group);

  [[nodiscard]] std::uint64_t moves() const noexcept { return moves_; }
  [[nodiscard]] std::uint64_t move_failures() const noexcept {
    return move_failures_;
  }

 private:
  sim::Co<Result<shardwire::ShardMap>> FetchMap();

  /// One migration step against a group's *current* primary: resolve the
  /// group name, call, retry on liveness failures (re-resolving each
  /// time, so a promotion mid-step is followed). Semantic errors are
  /// final.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> CallPrimary(const std::string& group,
                                    std::uint32_t method, Req req);

  core::Context* context_;
  core::ServiceBinding map_binding_;
  ShardRebalancerParams params_;
  obs::Counter moves_;
  obs::Counter move_failures_;
};

/// A sharded deployment: N replica groups plus the map service.
struct ShardedKvParams {
  /// Base name. The map binding is registered here (protocol 5); group
  /// g lives at "<name>/g<g>" (leased by that group's primary).
  std::string name;
  std::uint32_t num_shards = 8;
  /// Per-group replication template; `group.name` is overridden.
  ReplicatedKvParams group;
};

struct ShardedKvExport {
  core::ServiceBinding binding;  // the routing binding (protocol 5)
  std::shared_ptr<ShardMapService> map_service;
  std::vector<std::string> group_names;
  std::vector<ReplicatedKvExport> groups;
};

/// Exports one replica group per entry of `group_ctxs` (each entry:
/// [0] = that group's initial primary), the shard map service in
/// `map_ctx`, seeds every replica's ShardConfig from the initial map,
/// and registers `params.name` -> the protocol-5 routing binding. A
/// client that Acquires the base name gets the router; nothing about its
/// code changes between a 1-group and an N-group deployment.
sim::Co<Result<ShardedKvExport>> ExportShardedKv(
    core::Context& map_ctx, std::vector<std::vector<core::Context*>> group_ctxs,
    ShardedKvParams params);

/// Registers the routing proxy factory (protocol 5) and, transitively,
/// the group failover factory (protocol 4). Idempotent.
void RegisterShardedKvFactories();

}  // namespace proxy::services
