// Lock service — mutual exclusion as a service.
//
// Exercised by the protection experiments: a lock capability is exactly
// the kind of object whose proxy must be revocable, and whose blocking
// Acquire shows that server method handlers are full coroutines (a
// handler parks until the lock frees without blocking the server).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string_view>

#include "core/export.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "rpc/stub.h"
#include "sim/future.h"
#include "sim/task.h"

namespace proxy::services {

class ILockService {
 public:
  static constexpr std::string_view kInterfaceName = "proxy.services.Lock";

  virtual ~ILockService() = default;

  /// Non-blocking: true if the lock was acquired by `owner`.
  virtual sim::Co<Result<bool>> TryAcquire(std::string name,
                                           std::uint64_t owner) = 0;
  /// Blocking: parks until the lock is granted to `owner`.
  virtual sim::Co<Result<rpc::Void>> Acquire(std::string name,
                                             std::uint64_t owner) = 0;
  virtual sim::Co<Result<rpc::Void>> Release(std::string name,
                                             std::uint64_t owner) = 0;
  virtual sim::Co<Result<std::optional<std::uint64_t>>> Holder(
      std::string name) = 0;
};

namespace lockwire {

enum Method : std::uint32_t {
  kTryAcquire = 1,
  kAcquire = 2,
  kRelease = 3,
  kHolder = 4,
};

struct LockRequest {
  std::string name;
  std::uint64_t owner = 0;
  PROXY_SERDE_FIELDS(name, owner)
};
struct TryAcquireResponse {
  bool acquired = false;
  PROXY_SERDE_FIELDS(acquired)
};
struct HolderRequest {
  std::string name;
  PROXY_SERDE_FIELDS(name)
};
struct HolderResponse {
  std::optional<std::uint64_t> holder;
  PROXY_SERDE_FIELDS(holder)
};

}  // namespace lockwire

class LockServiceImpl : public ILockService {
 public:
  explicit LockServiceImpl(sim::Scheduler& scheduler)
      : scheduler_(&scheduler) {}

  sim::Co<Result<bool>> TryAcquire(std::string name,
                                   std::uint64_t owner) override;
  sim::Co<Result<rpc::Void>> Acquire(std::string name,
                                     std::uint64_t owner) override;
  sim::Co<Result<rpc::Void>> Release(std::string name,
                                     std::uint64_t owner) override;
  sim::Co<Result<std::optional<std::uint64_t>>> Holder(
      std::string name) override;

  [[nodiscard]] std::size_t lock_count() const noexcept {
    return locks_.size();
  }

 private:
  struct LockState {
    std::optional<std::uint64_t> holder;
    std::deque<std::pair<std::uint64_t, sim::Promise<bool>>> waiters;
  };

  sim::Scheduler* scheduler_;
  std::map<std::string, LockState> locks_;
};

std::shared_ptr<rpc::Dispatch> MakeLockDispatch(
    std::shared_ptr<LockServiceImpl> impl);

struct LockExport {
  std::shared_ptr<LockServiceImpl> impl;
  core::ServiceBinding binding;
};
Result<LockExport> ExportLockService(core::Context& context);

class LockStub : public ILockService, public core::ProxyBase {
 public:
  LockStub(core::Context& context, core::ServiceBinding binding)
      : core::ProxyBase(context, std::move(binding)) {
    // Blocking Acquire can out-wait the default retry budget; the lock
    // stub is patient by construction.
    rpc::CallOptions patient;
    patient.retry_interval = Milliseconds(200);
    patient.max_retries = 50;
    set_call_options(patient);
  }

  sim::Co<Result<bool>> TryAcquire(std::string name,
                                   std::uint64_t owner) override;
  sim::Co<Result<rpc::Void>> Acquire(std::string name,
                                     std::uint64_t owner) override;
  sim::Co<Result<rpc::Void>> Release(std::string name,
                                     std::uint64_t owner) override;
  sim::Co<Result<std::optional<std::uint64_t>>> Holder(
      std::string name) override;
};

void RegisterLockFactories();

}  // namespace proxy::services
