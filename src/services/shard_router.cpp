#include "services/shard_router.h"

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace proxy::services {

using kvwire::ShardFreezeRequest;
using kvwire::ShardFreezeResponse;
using kvwire::ShardInstallRequest;
using kvwire::ShardInstallResponse;
using kvwire::ShardReleaseRequest;
using kvwire::ShardUnfreezeRequest;
using shardwire::CommitMoveRequest;
using shardwire::CommitMoveResponse;
using shardwire::GetShardMapResponse;
using shardwire::ShardMap;

// --- routing proxy -----------------------------------------------------

KvShardRouterProxy::KvShardRouterProxy(core::Context& context,
                                       core::ServiceBinding binding)
    : core::ProxyBase(context, std::move(binding)) {
  this->context().metrics().Attach("svc.shard.router.map_refreshes",
                                   &map_refreshes_);
  this->context().metrics().Attach("svc.shard.router.wrong_shard_retries",
                                   &wrong_shard_retries_);
  this->context().metrics().Attach("svc.shard.router.fanouts", &fanouts_);
  this->context().metrics().Attach("svc.shard.router.shed_fail_fast",
                                   &shed_fail_fast_);
}

KvShardRouterProxy::~KvShardRouterProxy() {
  context().metrics().Detach("svc.shard.router.shed_fail_fast",
                             &shed_fail_fast_);
  context().metrics().Detach("svc.shard.router.map_refreshes",
                             &map_refreshes_);
  context().metrics().Detach("svc.shard.router.wrong_shard_retries",
                             &wrong_shard_retries_);
  context().metrics().Detach("svc.shard.router.fanouts", &fanouts_);
}

sim::Co<Status> KvShardRouterProxy::EnsureMap(bool force,
                                              obs::TraceContext trace) {
  if (!force && map_.Valid()) co_return Status::Ok();
  if (force) {
    map_refreshes_++;
    context().spans().Annotate(trace, context().scheduler().now(),
                               "shard map refresh");
  }
  rpc::CallOptions traced = options_;
  traced.trace = trace;
  rpc::Void none;  // named: see stub.h "GCC note"
  Result<Bytes> raw = co_await CallRaw(shardwire::kGetShardMap,
                                       serde::EncodeToBytes(none), traced);
  if (!raw.ok()) co_return raw.status();
  Result<GetShardMapResponse> resp =
      serde::DecodeFromBytes<GetShardMapResponse>(View(*raw));
  if (!resp.ok()) co_return resp.status();
  if (!resp->map.Valid()) co_return InternalError("invalid shard map");
  // Refreshes never regress: a reply raced by a newer fetch is dropped.
  if (resp->map.version >= map_.version) map_ = std::move(resp->map);
  co_return Status::Ok();
}

sim::Co<Result<std::shared_ptr<KvFailoverProxy>>> KvShardRouterProxy::
    GroupProxy(const std::string& name) {
  auto it = groups_.find(name);
  if (it != groups_.end()) co_return it->second;
  core::AcquireOptions opts;
  // Always bind the group's advertised failover proxy, never the raw
  // replica, even when the router happens to share a context with one.
  opts.allow_direct = false;
  // The router's own call policy (declared at *its* acquisition) flows
  // down to every group proxy, so per-op deadlines hold end to end.
  opts.call = options_;
  Result<std::shared_ptr<IKeyValue>> acquired =
      co_await core::Acquire<IKeyValue>(context(), name, opts);
  if (!acquired.ok()) co_return acquired.status();
  auto typed = std::dynamic_pointer_cast<KvFailoverProxy>(*acquired);
  if (!typed) {
    co_return FailedPreconditionError("group " + name +
                                      " is not a protocol-4 replicated KV");
  }
  groups_.emplace(name, typed);
  co_return typed;
}

SimDuration KvShardRouterProxy::GroupBackoffRemaining(
    const std::string& group) {
  const auto it = group_backoff_until_.find(group);
  if (it == group_backoff_until_.end()) return 0;
  const SimTime now = context().scheduler().now();
  if (now >= it->second) {
    group_backoff_until_.erase(it);
    return 0;
  }
  return it->second - now;
}

void KvShardRouterProxy::NoteGroupOutcome(const std::string& group,
                                          StatusCode code) {
  if (code != StatusCode::kResourceExhausted) return;
  const SimTime until = context().scheduler().now() + kGroupBackoff;
  SimTime& slot = group_backoff_until_[group];
  slot = std::max(slot, until);
}

Status KvShardRouterProxy::ShedFast(const std::string& group,
                                    SimDuration remaining) {
  shed_fail_fast_++;
  context().spans().Event(
      context().scheduler().now(),
      "router: shed-before-fanout, " + group + " backed off " +
          FormatDuration(remaining));
  return ResourceExhaustedError("group " + group + " shedding load (retry in " +
                                FormatDuration(remaining) + ")");
}

void KvShardRouterProxy::RecordOp(std::uint32_t shard,
                                  const std::string& group_name,
                                  const KvFailoverProxy& group, bool write) {
  last_op_shard_ = shard;
  last_op_group_ = group_name;
  last_op_shard_epoch_ = group.last_op_shard_epoch();
  last_op_epoch_ = group.last_op_epoch();
  if (write) last_write_acker_ = group.last_write_acker();
}

sim::Co<Result<std::optional<std::string>>> KvShardRouterProxy::Get(
    std::string key) {
  Status last = UnavailableError("no shard map");
  for (int pass = 0; pass < kRoutePasses; ++pass) {
    if (pass > 0) {
      // Give an in-flight migration a beat to commit before re-asking.
      co_await sim::SleepFor(context().scheduler(), Milliseconds(10));
    }
    const Status ready = co_await EnsureMap(pass > 0);
    if (!ready.ok()) co_return ready;
    const std::uint32_t shard = ShardOf(key, map_.num_shards);
    const std::string group_name = map_.groups[map_.owner[shard]];
    // Shed-before-send: a group that just shed load gets no more work
    // from this router until its backoff window passes.
    if (const SimDuration left = GroupBackoffRemaining(group_name); left > 0) {
      co_return ShedFast(group_name, left);
    }
    Result<std::shared_ptr<KvFailoverProxy>> group =
        co_await GroupProxy(group_name);
    if (!group.ok()) co_return group.status();
    Result<std::optional<std::string>> r = co_await (*group)->Get(key);
    if (r.ok()) {
      RecordOp(shard, group_name, **group, /*write=*/false);
      co_return r;
    }
    NoteGroupOutcome(group_name, r.status().code());
    if (r.status().code() != StatusCode::kWrongShard) co_return r.status();
    wrong_shard_retries_++;
    last = r.status();
  }
  co_return last;
}

sim::Co<Result<rpc::Void>> KvShardRouterProxy::Put(std::string key,
                                                   std::string value) {
  Status last = UnavailableError("no shard map");
  for (int pass = 0; pass < kRoutePasses; ++pass) {
    if (pass > 0) {
      co_await sim::SleepFor(context().scheduler(), Milliseconds(10));
    }
    const Status ready = co_await EnsureMap(pass > 0);
    if (!ready.ok()) co_return ready;
    const std::uint32_t shard = ShardOf(key, map_.num_shards);
    const std::string group_name = map_.groups[map_.owner[shard]];
    // Shed-before-send: a group that just shed load gets no more work
    // from this router until its backoff window passes.
    if (const SimDuration left = GroupBackoffRemaining(group_name); left > 0) {
      co_return ShedFast(group_name, left);
    }
    Result<std::shared_ptr<KvFailoverProxy>> group =
        co_await GroupProxy(group_name);
    if (!group.ok()) co_return group.status();
    Result<rpc::Void> r = co_await (*group)->Put(key, value);
    if (r.ok()) {
      RecordOp(shard, group_name, **group, /*write=*/true);
      co_return r;
    }
    NoteGroupOutcome(group_name, r.status().code());
    if (r.status().code() != StatusCode::kWrongShard) co_return r.status();
    wrong_shard_retries_++;
    last = r.status();
  }
  co_return last;
}

sim::Co<Result<bool>> KvShardRouterProxy::Del(std::string key) {
  Status last = UnavailableError("no shard map");
  for (int pass = 0; pass < kRoutePasses; ++pass) {
    if (pass > 0) {
      co_await sim::SleepFor(context().scheduler(), Milliseconds(10));
    }
    const Status ready = co_await EnsureMap(pass > 0);
    if (!ready.ok()) co_return ready;
    const std::uint32_t shard = ShardOf(key, map_.num_shards);
    const std::string group_name = map_.groups[map_.owner[shard]];
    // Shed-before-send: a group that just shed load gets no more work
    // from this router until its backoff window passes.
    if (const SimDuration left = GroupBackoffRemaining(group_name); left > 0) {
      co_return ShedFast(group_name, left);
    }
    Result<std::shared_ptr<KvFailoverProxy>> group =
        co_await GroupProxy(group_name);
    if (!group.ok()) co_return group.status();
    Result<bool> r = co_await (*group)->Del(key);
    if (r.ok()) {
      RecordOp(shard, group_name, **group, /*write=*/true);
      co_return r;
    }
    NoteGroupOutcome(group_name, r.status().code());
    if (r.status().code() != StatusCode::kWrongShard) co_return r.status();
    wrong_shard_retries_++;
    last = r.status();
  }
  co_return last;
}

sim::Co<Result<std::uint64_t>> KvShardRouterProxy::Size() {
  const Status ready = co_await EnsureMap(false);
  if (!ready.ok()) co_return ready;
  // Snapshot: map_ can be refreshed by a concurrent op while a group
  // call below is suspended.
  const std::vector<std::string> group_names = map_.groups;
  // Shed-before-fanout: one overloaded group fails the whole fan-out, so
  // check them all up front rather than amplify N-1 wasted calls.
  for (const auto& name : group_names) {
    if (const SimDuration left = GroupBackoffRemaining(name); left > 0) {
      co_return ShedFast(name, left);
    }
  }
  fanouts_++;
  std::uint64_t total = 0;
  for (const auto& name : group_names) {
    Result<std::shared_ptr<KvFailoverProxy>> group = co_await GroupProxy(name);
    if (!group.ok()) co_return group.status();
    Result<std::uint64_t> part = co_await (*group)->Size();
    if (!part.ok()) {
      // Abort on the first shed: the remaining groups get nothing.
      NoteGroupOutcome(name, part.status().code());
      co_return part.status();
    }
    total += *part;
  }
  co_return total;
}

sim::Co<Result<std::vector<std::string>>> KvShardRouterProxy::List(
    std::string prefix) {
  const Status ready = co_await EnsureMap(false);
  if (!ready.ok()) co_return ready;
  const std::vector<std::string> group_names = map_.groups;  // snapshot
  for (const auto& name : group_names) {
    if (const SimDuration left = GroupBackoffRemaining(name); left > 0) {
      co_return ShedFast(name, left);
    }
  }
  fanouts_++;
  std::vector<std::string> merged;
  for (const auto& name : group_names) {
    Result<std::shared_ptr<KvFailoverProxy>> group = co_await GroupProxy(name);
    if (!group.ok()) co_return group.status();
    Result<std::vector<std::string>> part = co_await (*group)->List(prefix);
    if (!part.ok()) {
      NoteGroupOutcome(name, part.status().code());
      co_return part.status();
    }
    merged.insert(merged.end(), std::make_move_iterator(part->begin()),
                  std::make_move_iterator(part->end()));
  }
  // Dedup: mid-migration a shard is momentarily listable at both ends.
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  co_return merged;
}

// --- rebalancer --------------------------------------------------------

ShardRebalancer::ShardRebalancer(core::Context& context,
                                 core::ServiceBinding map_binding,
                                 ShardRebalancerParams params)
    : context_(&context),
      map_binding_(std::move(map_binding)),
      params_(params) {
  context_->metrics().Attach("svc.shard.rebalancer.moves", &moves_);
  context_->metrics().Attach("svc.shard.rebalancer.move_failures",
                             &move_failures_);
}

ShardRebalancer::~ShardRebalancer() {
  context_->metrics().Detach("svc.shard.rebalancer.moves", &moves_);
  context_->metrics().Detach("svc.shard.rebalancer.move_failures",
                             &move_failures_);
}

sim::Co<Result<ShardMap>> ShardRebalancer::FetchMap() {
  rpc::Void none;  // named: see stub.h "GCC note"
  rpc::RpcResult r = co_await context_->client().Call(
      map_binding_.server, map_binding_.object, shardwire::kGetShardMap,
      serde::EncodeToBytes(none), params_.call);
  if (!r.ok()) co_return r.status;
  Result<GetShardMapResponse> resp =
      serde::DecodeFromBytes<GetShardMapResponse>(View(r.payload));
  if (!resp.ok()) co_return resp.status();
  if (!resp->map.Valid()) co_return InternalError("invalid shard map");
  co_return std::move(resp->map);
}

template <typename Resp, typename Req>
sim::Co<Result<Resp>> ShardRebalancer::CallPrimary(const std::string& group,
                                                   std::uint32_t method,
                                                   Req req) {
  const Bytes args = serde::EncodeToBytes(req);
  Status last = UnavailableError("no attempt against " + group);
  for (int attempt = 0; attempt < params_.step_attempts; ++attempt) {
    if (attempt > 0) {
      co_await sim::SleepFor(context_->scheduler(), params_.step_pause);
    }
    // Re-resolve every attempt: a promotion mid-step moves the name.
    Result<naming::NameRecord> rec = co_await context_->names().Lookup(group);
    if (!rec.ok()) {
      last = rec.status();
      continue;
    }
    rpc::RpcResult r = co_await context_->client().Call(
        rec->binding.server, rec->binding.object, method, args, params_.call);
    if (r.ok()) co_return serde::DecodeFromBytes<Resp>(View(r.payload));
    last = r.status;
    const StatusCode code = r.status.code();
    if (code != StatusCode::kTimeout && code != StatusCode::kUnavailable &&
        code != StatusCode::kFenced) {
      co_return last;  // semantic error: final
    }
  }
  co_return last;
}

sim::Co<Status> ShardRebalancer::MigrateShard(std::uint32_t shard,
                                              std::uint32_t to_group) {
  Result<ShardMap> map = co_await FetchMap();
  if (!map.ok()) {
    move_failures_++;
    co_return map.status();
  }
  if (shard >= map->num_shards || to_group >= map->groups.size()) {
    move_failures_++;
    co_return InvalidArgumentError("shard or group out of range");
  }
  if (map->owner[shard] != to_group) {
    const std::string source = map->groups[map->owner[shard]];
    const std::string dest = map->groups[to_group];
    // 1. Freeze + copy at the source. Also the resume path: a re-run
    //    finds the shard already frozen and gets the same snapshot.
    ShardFreezeRequest freeze_req{shard};
    Result<ShardFreezeResponse> frozen = co_await CallPrimary<ShardFreezeResponse>(
        source, kvwire::kShardFreeze, freeze_req);
    if (!frozen.ok()) {
      move_failures_++;
      // Best-effort thaw: the freeze may have landed with its ack lost.
      ShardUnfreezeRequest thaw{shard};
      (void)co_await CallPrimary<rpc::Void>(source, kvwire::kShardUnfreeze,
                                            thaw);
      co_return frozen.status();
    }
    const std::uint64_t next_epoch = frozen->shard_epoch + 1;
    // 2. Install at the destination under the bumped ownership epoch.
    ShardInstallRequest install_req;
    install_req.shard = shard;
    install_req.shard_epoch = next_epoch;
    install_req.entries = std::move(frozen->entries);
    Result<ShardInstallResponse> installed =
        co_await CallPrimary<ShardInstallResponse>(dest, kvwire::kShardInstall,
                                                   install_req);
    if (!installed.ok()) {
      move_failures_++;
      ShardUnfreezeRequest thaw{shard};
      (void)co_await CallPrimary<rpc::Void>(source, kvwire::kShardUnfreeze,
                                            thaw);
      co_return installed.status();
    }
    // 3. Commit at the map service (version-checked CAS).
    CommitMoveRequest commit;
    commit.shard = shard;
    commit.to_group = to_group;
    commit.expect_version = map->version;
    commit.new_shard_epoch = next_epoch;
    rpc::RpcResult committed = co_await context_->client().Call(
        map_binding_.server, map_binding_.object, shardwire::kCommitMove,
        serde::EncodeToBytes(commit), params_.call);
    if (committed.ok()) {
      Result<CommitMoveResponse> resp =
          serde::DecodeFromBytes<CommitMoveResponse>(View(committed.payload));
      if (!resp.ok()) {
        move_failures_++;
        co_return resp.status();
      }
      *map = std::move(resp->map);
    } else {
      // A failed commit may be OUR earlier commit whose ack was lost (a
      // re-run after a crash): re-read before declaring defeat.
      Result<ShardMap> fresh = co_await FetchMap();
      if (!fresh.ok()) {
        move_failures_++;
        co_return fresh.status();
      }
      if (fresh->owner[shard] != to_group ||
          fresh->shard_epoch[shard] < next_epoch) {
        // A concurrent move really did win; abort cleanly.
        move_failures_++;
        ShardUnfreezeRequest thaw{shard};
        (void)co_await CallPrimary<rpc::Void>(source, kvwire::kShardUnfreeze,
                                              thaw);
        co_return committed.status;
      }
      *map = std::move(*fresh);
    }
  }
  // 4. Release everywhere but the committed owner: idempotent no-ops at
  // groups that never held the shard, so a re-run needs no memory of the
  // source. A failed release leaves the stale copy fenced (safe) and the
  // move incomplete — re-running MigrateShard finishes it.
  Status release_verdict = Status::Ok();
  const std::vector<std::string> group_names = map->groups;
  for (std::uint32_t g = 0; g < group_names.size(); ++g) {
    if (g == map->owner[shard]) continue;
    ShardReleaseRequest rel;
    rel.shard = shard;
    rel.committed_epoch = map->shard_epoch[shard];
    Result<rpc::Void> released = co_await CallPrimary<rpc::Void>(
        group_names[g], kvwire::kShardRelease, rel);
    if (!released.ok()) {
      if (released.status().code() == StatusCode::kFailedPrecondition) {
        // The group holds the shard under a *newer* epoch than our
        // committed proof: a later move's install landed there and its
        // commit is still in flight. That copy is not ours to release —
        // the later move's own (re-)run settles it with a higher proof.
        context_->spans().Event(
            context_->scheduler().now(),
            "rebalancer: release of shard " + std::to_string(shard) + " at " +
                group_names[g] + " deferred (newer resident epoch)");
        continue;
      }
      release_verdict = released.status();
    }
  }
  if (!release_verdict.ok()) {
    move_failures_++;
    co_return release_verdict;
  }
  moves_++;
  context_->spans().Event(context_->scheduler().now(),
                          "rebalancer: shard " + std::to_string(shard) +
                              " -> " + map->groups[to_group] + " @ epoch " +
                              std::to_string(map->shard_epoch[shard]));
  co_return Status::Ok();
}

// --- export ------------------------------------------------------------

sim::Co<Result<ShardedKvExport>> ExportShardedKv(
    core::Context& map_ctx, std::vector<std::vector<core::Context*>> group_ctxs,
    ShardedKvParams params) {
  if (params.name.empty() || group_ctxs.empty() || params.num_shards == 0) {
    co_return InvalidArgumentError(
        "sharded export needs a name, groups and shards");
  }
  ShardedKvExport out;
  for (std::size_t g = 0; g < group_ctxs.size(); ++g) {
    out.group_names.push_back(params.name + "/g" + std::to_string(g));
  }
  const ShardMap initial =
      MakeInitialShardMap(params.num_shards, out.group_names);
  for (std::size_t g = 0; g < group_ctxs.size(); ++g) {
    if (group_ctxs[g].empty()) {
      co_return InvalidArgumentError("group " + std::to_string(g) +
                                     " has no contexts");
    }
    ReplicatedKvParams group_params = params.group;
    group_params.name = out.group_names[g];
    const std::vector<core::Context*> backups(group_ctxs[g].begin() + 1,
                                              group_ctxs[g].end());
    Result<ReplicatedKvExport> exported =
        ExportReplicatedKv(*group_ctxs[g][0], backups, group_params);
    if (!exported.ok()) co_return exported.status();
    // Seed every replica's shard slice before any simulated time passes
    // (this function only suspends below, after all groups exist).
    const ShardConfig config =
        InitialShardConfig(initial, static_cast<std::uint32_t>(g));
    for (const auto& replica : exported->replicas) {
      replica->ConfigureShards(config);
    }
    out.groups.push_back(std::move(*exported));
  }
  auto map_service = std::make_shared<ShardMapService>(map_ctx, initial);
  const ObjectId map_object = map_ctx.MintObjectId();
  const Status exported_map =
      map_ctx.server().ExportObject(map_object, MakeShardMapDispatch(map_service));
  if (!exported_map.ok()) co_return exported_map;
  core::ServiceBinding binding;
  binding.server = map_ctx.server_address();
  binding.object = map_object;
  binding.interface = InterfaceIdOf(IKeyValue::kInterfaceName);
  binding.protocol = 5;
  // The base name is plain configuration (no lease): the map service
  // lives on a non-failing node; each group's *primary* holds the leased
  // group name underneath it.
  Result<rpc::Void> registered = co_await map_ctx.names().RegisterService(
      params.name, binding, /*lease_ns=*/0);
  if (!registered.ok()) co_return registered.status();
  out.binding = binding;
  out.map_service = std::move(map_service);
  co_return out;
}

void RegisterShardedKvFactories() {
  RegisterReplicatedKvFactories();  // groups bind through protocol 4
  const InterfaceId iface = InterfaceIdOf(IKeyValue::kInterfaceName);
  auto& proxies = core::ProxyFactoryRegistry::Instance();
  if (!proxies.Has(iface, 5)) {
    (void)proxies.Register(
        iface, 5, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IKeyValue>(
                  std::make_shared<KvShardRouterProxy>(ctx, b)));
        });
  }
}

}  // namespace proxy::services
