#include "services/counter.h"

#include "core/factory.h"
#include "serde/reader.h"
#include "serde/writer.h"

namespace proxy::services {

using counterwire::IncrementRequest;
using counterwire::ValueResponse;

sim::Co<Result<std::int64_t>> CounterService::Increment(std::int64_t delta) {
  value_ += delta;
  co_return value_;
}

sim::Co<Result<std::int64_t>> CounterService::Read() { co_return value_; }

Bytes CounterService::SnapshotState() const {
  serde::Writer w;
  w.WriteSigned(value_);
  return w.Take();
}

Status CounterService::RestoreState(BytesView state) {
  serde::Reader r(state);
  PROXY_RETURN_IF_ERROR(r.ReadSigned(value_));
  return r.ExpectEnd();
}

std::shared_ptr<rpc::Dispatch> MakeCounterDispatch(
    std::shared_ptr<CounterService> impl) {
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<IncrementRequest, ValueResponse>(
      *dispatch, counterwire::kIncrement,
      [impl](IncrementRequest req,
             const rpc::CallContext&) -> sim::Co<Result<ValueResponse>> {
        Result<std::int64_t> value = co_await impl->Increment(req.delta);
        if (!value.ok()) co_return value.status();
        co_return ValueResponse{*value};
      });
  rpc::RegisterTyped<rpc::Void, ValueResponse>(
      *dispatch, counterwire::kRead,
      [impl](rpc::Void,
             const rpc::CallContext&) -> sim::Co<Result<ValueResponse>> {
        Result<std::int64_t> value = co_await impl->Read();
        if (!value.ok()) co_return value.status();
        co_return ValueResponse{*value};
      });
  return dispatch;
}

Result<CounterExport> ExportCounterService(core::Context& context,
                                           std::uint32_t protocol,
                                           std::int64_t initial) {
  auto impl = std::make_shared<CounterService>(initial);
  auto dispatch = MakeCounterDispatch(impl);
  PROXY_ASSIGN_OR_RETURN(
      auto exported,
      core::ServiceExport<ICounter>::Create(context, impl, dispatch, protocol,
                                            impl));
  return CounterExport{std::move(impl), exported.binding()};
}

sim::Co<Result<std::int64_t>> CounterStub::Increment(std::int64_t delta) {
  IncrementRequest req{delta};
  Result<ValueResponse> resp =
      co_await Call<ValueResponse>(counterwire::kIncrement, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return resp->value;
}

sim::Co<Result<std::int64_t>> CounterStub::Read() {
  Result<ValueResponse> resp =
      co_await Call<ValueResponse>(counterwire::kRead, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->value;
}

sim::Co<Result<std::shared_ptr<ICounter>>> CounterDsmProxy::EnsureLocal() {
  core::Context& ctx = context();
  const InterfaceId iface = InterfaceIdOf(ICounter::kInterfaceName);

  for (int attempt = 0; attempt < 3; ++attempt) {
    // Resident already? (Either pulled earlier, or by a sibling proxy.)
    if (const auto* entry = ctx.FindLocal(binding().object)) {
      if (entry->iface != iface) {
        co_return FailedPreconditionError("local object has wrong interface");
      }
      co_return std::static_pointer_cast<ICounter>(entry->impl);
    }

    Result<core::ServiceBinding> pulled =
        co_await ctx.migration().Pull(binding());
    if (pulled.ok()) {
      pulls_++;
      continue;  // loop re-probes the local registry
    }
    if (pulled.status().code() == StatusCode::kNotFound) {
      // The object moved since we last saw it: a plain call follows the
      // forwarding chain and refreshes our binding, then we retry.
      Result<Bytes> probe =
          co_await CallRaw(counterwire::kRead,
                           serde::EncodeToBytes(rpc::Void{}));
      if (!probe.ok()) co_return probe.status();
      continue;
    }
    co_return pulled.status();
  }
  co_return UnavailableError("object kept moving; pull did not converge");
}

sim::Co<Result<std::int64_t>> CounterDsmProxy::Increment(std::int64_t delta) {
  Result<std::shared_ptr<ICounter>> local = co_await EnsureLocal();
  if (!local.ok()) co_return local.status();
  co_return co_await (*local)->Increment(delta);
}

sim::Co<Result<std::int64_t>> CounterDsmProxy::Read() {
  Result<std::shared_ptr<ICounter>> local = co_await EnsureLocal();
  if (!local.ok()) co_return local.status();
  co_return co_await (*local)->Read();
}

void RegisterCounterFactories() {
  const InterfaceId iface = InterfaceIdOf(ICounter::kInterfaceName);
  auto& proxies = core::ProxyFactoryRegistry::Instance();
  if (!proxies.Has(iface, 1)) {
    (void)proxies.Register(
        iface, 1, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<ICounter>(
                  std::make_shared<CounterStub>(ctx, b)));
        });
  }
  if (!proxies.Has(iface, 2)) {
    (void)proxies.Register(
        iface, 2, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<ICounter>(
                  std::make_shared<CounterDsmProxy>(ctx, b)));
        });
  }
  auto& servers = core::ServerObjectFactoryRegistry::Instance();
  if (!servers.Has(iface)) {
    (void)servers.Register(
        iface,
        [](core::Context& ctx, ObjectId id, std::uint32_t protocol,
           Bytes state) -> Result<core::ServiceBinding> {
          auto impl = std::make_shared<CounterService>();
          PROXY_RETURN_IF_ERROR(impl->RestoreState(View(state)));
          auto dispatch = MakeCounterDispatch(impl);
          PROXY_ASSIGN_OR_RETURN(
              auto exported,
              core::ServiceExport<ICounter>::CreateWithId(ctx, id, impl,
                                                          dispatch, protocol,
                                                          impl));
          return exported.binding();
        });
  }
}

}  // namespace proxy::services
