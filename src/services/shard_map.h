// Shard map service — the routing metadata behind the sharded KV.
//
// The paper's encapsulation claim at scale: clients keep one IKeyValue
// while the backend becomes N epoch-fenced replica groups. The pieces:
//
//   ShardMap          versioned assignment of hash shards to replica
//                     groups (each group is a named, failover-replicated
//                     KV exported by ExportReplicatedKv). Every shard
//                     carries its own **ownership epoch**, bumped on
//                     every migration, so a group can prove — and a
//                     stale one can be told — who owns a key.
//   ShardMapService   the authoritative copy. Routers fetch it lazily
//                     and re-fetch on WRONG_SHARD; the rebalancer
//                     commits moves through it (version-checked CAS).
//   ShardConfig       the per-group slice of the map a replica enforces
//                     on its data path (owned shards, their epochs, and
//                     any frozen mid-migration). It rides every
//                     replication batch and join snapshot, so promotion
//                     and rejoin preserve shard fencing exactly like
//                     they preserve data.
//
// The routing proxy itself (protocol 5) and the online-migration
// rebalancer live in shard_router.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/runtime.h"
#include "obs/metrics.h"
#include "rpc/stub.h"
#include "sim/task.h"

namespace proxy::services {

namespace shardwire {

/// Methods on the shard map object (disjoint from kvwire's ranges).
enum ShardMethod : std::uint32_t {
  kGetShardMap = 40,
  kCommitMove = 41,
};

/// The versioned shard → group assignment. Groups are name-service
/// paths ("app/kv/g0"): a router resolves the *name*, so group failover
/// (the leased record moving to a new primary) is invisible here.
struct ShardMap {
  std::uint64_t version = 0;
  std::uint32_t num_shards = 0;
  std::vector<std::string> groups;        // name path per replica group
  std::vector<std::uint32_t> owner;       // shard -> index into groups
  std::vector<std::uint64_t> shard_epoch; // shard -> ownership epoch
  PROXY_SERDE_FIELDS(version, num_shards, groups, owner, shard_epoch)

  /// Structural sanity: one owner and one epoch per shard, owners in
  /// range. Decoded maps are validated before a router trusts them.
  [[nodiscard]] bool Valid() const noexcept {
    if (num_shards == 0 || groups.empty()) return false;
    if (owner.size() != num_shards || shard_epoch.size() != num_shards) {
      return false;
    }
    for (const std::uint32_t g : owner) {
      if (g >= groups.size()) return false;
    }
    return true;
  }
};

struct GetShardMapResponse {
  ShardMap map;
  PROXY_SERDE_FIELDS(map)
};

/// Version-checked move commit: the rebalancer proves it acted on the
/// map it read. A mismatch means a concurrent move won; re-read.
struct CommitMoveRequest {
  std::uint32_t shard = 0;
  std::uint32_t to_group = 0;
  std::uint64_t expect_version = 0;
  std::uint64_t new_shard_epoch = 0;
  PROXY_SERDE_FIELDS(shard, to_group, expect_version, new_shard_epoch)
};

struct CommitMoveResponse {
  ShardMap map;  // the committed map (version already bumped)
  PROXY_SERDE_FIELDS(map)
};

}  // namespace shardwire

/// Stable key → shard routing (FNV-1a 64, folded). Every router and
/// every replica must agree on this function.
[[nodiscard]] std::uint32_t ShardOf(std::string_view key,
                                    std::uint32_t num_shards) noexcept;

/// The slice of the shard map one replica group enforces. Empty
/// (num_shards == 0) means unsharded: no fencing, the pre-shard
/// behaviour. `owned`/`owned_epoch` are parallel arrays; `frozen` marks
/// owned shards mid-migration (data ops answer WRONG_SHARD while the
/// snapshot is in flight, exactly like a fenced epoch).
struct ShardConfig {
  std::uint32_t num_shards = 0;
  std::vector<std::uint32_t> owned;
  std::vector<std::uint64_t> owned_epoch;
  std::vector<std::uint32_t> frozen;
  PROXY_SERDE_FIELDS(num_shards, owned, owned_epoch, frozen)

  [[nodiscard]] bool sharded() const noexcept { return num_shards != 0; }
  [[nodiscard]] bool Owns(std::uint32_t shard) const noexcept {
    for (const std::uint32_t s : owned) {
      if (s == shard) return true;
    }
    return false;
  }
  [[nodiscard]] bool Frozen(std::uint32_t shard) const noexcept {
    for (const std::uint32_t s : frozen) {
      if (s == shard) return true;
    }
    return false;
  }
  /// Ownership epoch of `shard`; 0 when not owned.
  [[nodiscard]] std::uint64_t EpochOf(std::uint32_t shard) const noexcept {
    for (std::size_t i = 0; i < owned.size(); ++i) {
      if (owned[i] == shard) return owned_epoch[i];
    }
    return 0;
  }

  void Adopt(std::uint32_t shard, std::uint64_t epoch) {
    for (std::size_t i = 0; i < owned.size(); ++i) {
      if (owned[i] == shard) {
        owned_epoch[i] = epoch;
        return;
      }
    }
    owned.push_back(shard);
    owned_epoch.push_back(epoch);
  }
  void Drop(std::uint32_t shard) {
    for (std::size_t i = 0; i < owned.size(); ++i) {
      if (owned[i] == shard) {
        owned.erase(owned.begin() + static_cast<std::ptrdiff_t>(i));
        owned_epoch.erase(owned_epoch.begin() +
                          static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    Unfreeze(shard);
  }
  void Freeze(std::uint32_t shard) {
    if (!Frozen(shard)) frozen.push_back(shard);
  }
  void Unfreeze(std::uint32_t shard) {
    for (std::size_t i = 0; i < frozen.size(); ++i) {
      if (frozen[i] == shard) {
        frozen.erase(frozen.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }
};

/// Builds the initial balanced map: shard s -> group s % groups.size(),
/// every shard at ownership epoch 1, version 1.
[[nodiscard]] shardwire::ShardMap MakeInitialShardMap(
    std::uint32_t num_shards, std::vector<std::string> groups);

/// The ShardConfig group `index` starts with under `map`.
[[nodiscard]] ShardConfig InitialShardConfig(const shardwire::ShardMap& map,
                                             std::uint32_t index);

/// Authoritative shard map holder. One instance per sharded deployment,
/// exported as the target object of the routing binding (protocol 5):
/// routers call kGetShardMap on the very object their IKeyValue binding
/// points at, the rebalancer commits moves through kCommitMove.
class ShardMapService {
 public:
  ShardMapService(core::Context& context, shardwire::ShardMap initial);
  ~ShardMapService();

  sim::Co<Result<shardwire::GetShardMapResponse>> HandleGet();
  sim::Co<Result<shardwire::CommitMoveResponse>> HandleCommitMove(
      shardwire::CommitMoveRequest req);

  [[nodiscard]] const shardwire::ShardMap& map() const noexcept {
    return map_;
  }
  [[nodiscard]] std::uint64_t commits() const noexcept { return commits_; }

 private:
  core::Context* context_;
  shardwire::ShardMap map_;
  obs::Counter gets_;
  obs::Counter commits_;
};

/// The map object's skeleton (kGetShardMap + kCommitMove).
std::shared_ptr<rpc::Dispatch> MakeShardMapDispatch(
    std::shared_ptr<ShardMapService> impl);

}  // namespace proxy::services
