#include "services/shard_map.h"

#include <utility>

#include "common/log.h"

namespace proxy::services {

using shardwire::CommitMoveRequest;
using shardwire::CommitMoveResponse;
using shardwire::GetShardMapResponse;
using shardwire::ShardMap;

std::uint32_t ShardOf(std::string_view key,
                      std::uint32_t num_shards) noexcept {
  // FNV-1a 64: stable across processes and runs (never std::hash, whose
  // value is implementation-defined — routers and replicas must agree).
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h ^= h >> 32;
  return static_cast<std::uint32_t>(h % num_shards);
}

ShardMap MakeInitialShardMap(std::uint32_t num_shards,
                             std::vector<std::string> groups) {
  ShardMap map;
  map.version = 1;
  map.num_shards = num_shards;
  map.groups = std::move(groups);
  map.owner.resize(num_shards);
  map.shard_epoch.assign(num_shards, 1);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    map.owner[s] = s % static_cast<std::uint32_t>(map.groups.size());
  }
  return map;
}

ShardConfig InitialShardConfig(const ShardMap& map, std::uint32_t index) {
  ShardConfig config;
  config.num_shards = map.num_shards;
  for (std::uint32_t s = 0; s < map.num_shards; ++s) {
    if (map.owner[s] == index) {
      config.owned.push_back(s);
      config.owned_epoch.push_back(map.shard_epoch[s]);
    }
  }
  return config;
}

ShardMapService::ShardMapService(core::Context& context, ShardMap initial)
    : context_(&context), map_(std::move(initial)) {
  context_->metrics().Attach("svc.shard.map.gets", &gets_);
  context_->metrics().Attach("svc.shard.map.commits", &commits_);
}

ShardMapService::~ShardMapService() {
  context_->metrics().Detach("svc.shard.map.gets", &gets_);
  context_->metrics().Detach("svc.shard.map.commits", &commits_);
}

sim::Co<Result<GetShardMapResponse>> ShardMapService::HandleGet() {
  gets_++;
  co_return GetShardMapResponse{map_};
}

sim::Co<Result<CommitMoveResponse>> ShardMapService::HandleCommitMove(
    CommitMoveRequest req) {
  if (req.shard >= map_.num_shards || req.to_group >= map_.groups.size()) {
    co_return InvalidArgumentError("shard or group out of range");
  }
  if (req.expect_version != map_.version) {
    // A concurrent move committed first; the caller re-reads and retries
    // (or discovers its move already landed — commits are idempotent at
    // the rebalancer, not here).
    co_return FailedPreconditionError(
        "map version " + std::to_string(map_.version) + " != expected " +
        std::to_string(req.expect_version));
  }
  if (req.new_shard_epoch <= map_.shard_epoch[req.shard]) {
    co_return FailedPreconditionError(
        "shard epoch must advance: " + std::to_string(req.new_shard_epoch) +
        " <= " + std::to_string(map_.shard_epoch[req.shard]));
  }
  map_.version++;
  map_.owner[req.shard] = req.to_group;
  map_.shard_epoch[req.shard] = req.new_shard_epoch;
  commits_++;
  context_->spans().Event(context_->scheduler().now(),
                          "shard map v" + std::to_string(map_.version) +
                              ": shard " + std::to_string(req.shard) +
                              " -> " + map_.groups[req.to_group] +
                              " @ epoch " +
                              std::to_string(req.new_shard_epoch));
  co_return CommitMoveResponse{map_};
}

std::shared_ptr<rpc::Dispatch> MakeShardMapDispatch(
    std::shared_ptr<ShardMapService> impl) {
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<rpc::Void, GetShardMapResponse>(
      *dispatch, shardwire::kGetShardMap,
      [impl](rpc::Void, const rpc::CallContext&) { return impl->HandleGet(); });
  rpc::RegisterTyped<CommitMoveRequest, CommitMoveResponse>(
      *dispatch, shardwire::kCommitMove,
      [impl](CommitMoveRequest req, const rpc::CallContext&) {
        return impl->HandleCommitMove(std::move(req));
      });
  return dispatch;
}

}  // namespace proxy::services
