// Replicated key-value service — the "additional transparencies" layer.
//
// The 1986 argument: once every client/service interaction goes through
// a proxy, *replication* can be introduced by the service alone. This
// module proves it for the KV interface, including recovery from the
// loss of the primary:
//
//   server side   Symmetric KvReplica objects, one per node. At any
//                 instant one of them is the primary: it applies writes
//                 locally and mirrors them synchronously to every other
//                 *active* replica (primary-backup, write-all/read-one)
//                 under a monotonically increasing **epoch**. The
//                 primary holds the service name under a leased
//                 registration (core::LeaseMaintainer); when the lease
//                 lapses, the lowest-ranked live backup re-registers the
//                 name (first-register-wins at the NameServer) and
//                 promotes itself at epoch+1. A deposed or restarted
//                 primary that still tries to mirror gets FENCED and
//                 steps down; restarted replicas rejoin empty and catch
//                 up via a snapshot resync before serving again.
//   client side   KvFailoverProxy (IKeyValue protocol 4) learns the
//                 epoch-stamped replica set at first use; reads prefer
//                 the primary but fail over to backups; writes follow
//                 the primary across failovers by re-fetching the
//                 replica list on FENCED/UNAVAILABLE.
//
// Clients keep calling Get/Put on the same IKeyValue they always had.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/export.h"
#include "core/lease.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "services/kv.h"
#include "services/shard_map.h"

namespace proxy::services {

namespace kvwire {

/// Extra methods every replica adds to the KV protocol.
enum ReplicationMethod : std::uint32_t {
  kGetReplicas = 20,
  kReplicateBatch = 21,
  kJoin = 22,
  kGetStatus = 23,
  // Epoch-stamped data operations: same semantics as kGet/kPut/kDel but
  // the response carries the serving replica's epoch, which the failover
  // proxy records (and the chaos durability invariant consumes).
  kEpochPut = 24,
  kEpochDel = 25,
  kEpochGet = 26,
  // Online shard migration (rebalancer -> group primary). The sequence
  // is freeze -> copy (the freeze response carries the shard snapshot)
  // -> install on the destination at shard_epoch+1 -> commit at the
  // ShardMapService -> release at the source. Every step is idempotent
  // so a rebalancer that crashed or timed out mid-move can re-run it.
  kShardFreeze = 27,
  kShardInstall = 28,
  kShardRelease = 29,
  kShardUnfreeze = 30,
};

struct ReplicaListResponse {
  std::uint64_t epoch = 0;
  std::vector<core::ServiceBinding> replicas;  // [0] is the primary
  PROXY_SERDE_FIELDS(epoch, replicas)
};

/// One mirrored mutation batch. `replicas` is the primary's active set
/// ([0] = the primary itself): receivers adopt it as their view of the
/// membership, and a receiver that no longer appears in it knows it has
/// been evicted and must resync before serving again.
struct ReplicateBatchRequest {
  std::uint64_t epoch = 0;
  std::vector<core::ServiceBinding> replicas;
  std::vector<std::pair<std::string, std::string>> entries;
  std::vector<std::string> deletes;
  /// The primary's shard-ownership view, adopted with the membership:
  /// a freeze or release survives promotion because every active backup
  /// saw it mirrored before the step was acknowledged.
  ShardConfig shard;
  PROXY_SERDE_FIELDS(epoch, replicas, entries, deletes, shard)
};

struct JoinRequest {
  core::ServiceBinding joiner;
  PROXY_SERDE_FIELDS(joiner)
};

struct JoinResponse {
  std::uint64_t epoch = 0;
  Bytes snapshot;  // KvService::SnapshotState() of the primary
  std::vector<core::ServiceBinding> replicas;
  ShardConfig shard;  // rejoiners re-learn shard fencing with the data
  PROXY_SERDE_FIELDS(epoch, snapshot, replicas, shard)
};

struct StatusResponse {
  std::uint64_t epoch = 0;
  bool is_primary = false;
  bool syncing = false;
  PROXY_SERDE_FIELDS(epoch, is_primary, syncing)
};

struct EpochPutResponse {
  std::uint64_t epoch = 0;
  /// Ownership epoch of the key's shard at the serving group (0 when
  /// the group is unsharded) — the split-shard invariant's evidence.
  std::uint64_t shard_epoch = 0;
  PROXY_SERDE_FIELDS(epoch, shard_epoch)
};

struct EpochDelResponse {
  bool existed = false;
  std::uint64_t epoch = 0;
  std::uint64_t shard_epoch = 0;
  PROXY_SERDE_FIELDS(existed, epoch, shard_epoch)
};

struct EpochGetResponse {
  std::optional<std::string> value;
  std::uint64_t epoch = 0;
  std::uint64_t shard_epoch = 0;
  PROXY_SERDE_FIELDS(value, epoch, shard_epoch)
};

struct ShardFreezeRequest {
  std::uint32_t shard = 0;
  PROXY_SERDE_FIELDS(shard)
};

struct ShardFreezeResponse {
  std::uint64_t shard_epoch = 0;  // source's ownership epoch
  std::vector<std::pair<std::string, std::string>> entries;  // the shard
  PROXY_SERDE_FIELDS(shard_epoch, entries)
};

struct ShardInstallRequest {
  std::uint32_t shard = 0;
  std::uint64_t shard_epoch = 0;  // must exceed the source's
  std::vector<std::pair<std::string, std::string>> entries;
  PROXY_SERDE_FIELDS(shard, shard_epoch, entries)
};

struct ShardInstallResponse {
  std::uint64_t shard_epoch = 0;  // epoch actually held after install
  PROXY_SERDE_FIELDS(shard_epoch)
};

/// Drop the shard's data and ownership; legal only once the map holds a
/// newer ownership epoch (proof the handoff committed).
struct ShardReleaseRequest {
  std::uint32_t shard = 0;
  std::uint64_t committed_epoch = 0;
  PROXY_SERDE_FIELDS(shard, committed_epoch)
};

struct ShardUnfreezeRequest {
  std::uint32_t shard = 0;  // abort path: thaw, ownership unchanged
  PROXY_SERDE_FIELDS(shard)
};

}  // namespace kvwire

/// Failover tuning. The defaults suit the unit tests; the chaos harness
/// shrinks everything so a full crash → promote → rejoin cycle fits in
/// its horizon.
struct ReplicatedKvParams {
  /// Name the primary holds under lease. Empty = static mode: no lease,
  /// no promotion, no fencing state machine — the PR-2 behaviour.
  std::string name;
  core::LeaseParams lease{.ttl_ns = Milliseconds(400),
                          .renew_fraction = 0.35,
                          .max_consecutive_failures = 3};
  /// Backup watchdog poll period (lease-expiry detection latency).
  SimDuration watch_interval = Milliseconds(120);
  /// Extra wait per backup rank before claiming the name, so the
  /// lowest-ranked live backup wins without a register race in the
  /// common case (the race itself is still arbitrated by the server).
  SimDuration promote_stagger = Milliseconds(40);
  /// Retry period of a syncing replica looking for a primary to join.
  SimDuration rejoin_interval = Milliseconds(60);
  /// Consecutive NOT_FOUND rejoin lookups before a syncing replica with
  /// an intact store (epoch > 0) attempts the rescue claim (TryRescue).
  /// Guards the liveness backstop for a fully-deposed group — every
  /// replica syncing, so nobody can promote and nobody can rejoin.
  std::uint32_t rescue_after_misses = 4;
  /// Mirror/announce call budget (per peer).
  rpc::CallOptions mirror{.retry_interval = Milliseconds(8),
                          .max_retries = 2,
                          .deadline = Milliseconds(60)};
  /// Chaos-harness fault hook: suppresses epoch fencing *and* the
  /// lease-lost step-down, reintroducing the static-primary bug this PR
  /// fixes (a deposed primary keeps accepting writes). The sweep must
  /// catch the resulting split-brain/durability violations.
  bool testing_disable_fencing = false;
  /// Chaos-harness fault hook for sharding: replicas skip the WRONG_SHARD
  /// ownership check, so a stale-mapped router's op lands on a group that
  /// no longer owns the key. Paired with Bug::kStaleShardMap; kv-lost-key
  /// and kv-split-shard must catch the fallout.
  bool testing_disable_shard_fencing = false;
};

enum class ReplicaRole : std::uint8_t { kPrimary, kBackup };

/// One replica of the replicated KV. All replicas run the same code and
/// export the same dispatch; role, epoch and the active set are dynamic.
class KvReplica : public IKeyValue,
                  public std::enable_shared_from_this<KvReplica> {
 public:
  KvReplica(core::Context& context, ReplicatedKvParams params)
      : context_(&context), params_(std::move(params)),
        store_(std::make_shared<KvService>(context)) {
    context_->metrics().Attach("svc.rkv.replication_failures",
                               &replication_failures_);
    context_->metrics().Attach("svc.rkv.fenced_rejections",
                               &fenced_rejections_);
    context_->metrics().Attach("svc.rkv.promotions", &promotions_);
    context_->metrics().Attach("svc.rkv.rescues", &rescues_);
    context_->metrics().Attach("svc.rkv.wrong_shard_rejections",
                               &wrong_shard_rejections_);
  }
  ~KvReplica() override {
    context_->metrics().Detach("svc.rkv.replication_failures",
                               &replication_failures_);
    context_->metrics().Detach("svc.rkv.fenced_rejections",
                               &fenced_rejections_);
    context_->metrics().Detach("svc.rkv.promotions", &promotions_);
    context_->metrics().Detach("svc.rkv.rescues", &rescues_);
    context_->metrics().Detach("svc.rkv.wrong_shard_rejections",
                               &wrong_shard_rejections_);
  }

  // IKeyValue (primary path; backups serve reads, refuse writes).
  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  /// Serves every locally held key. No shard check: during migration the
  /// same key may momentarily be listable at two groups, and the router's
  /// fan-out merge dedups — listing is advisory, data ops are fenced.
  sim::Co<Result<std::vector<std::string>>> List(std::string prefix) override;

  // Traced write paths: the server-side span of the client's request is
  // threaded through the mirror fan-out, so every replica's apply hangs
  // off the write that caused it in the call tree.
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value,
                                 obs::TraceContext trace,
                                 std::uint64_t* ack_epoch = nullptr);
  sim::Co<Result<bool>> Del(std::string key, obs::TraceContext trace,
                            std::uint64_t* ack_epoch = nullptr);

  // Wire handlers (wired up by MakeReplicatedKvDispatch).
  sim::Co<Result<kvwire::ReplicaListResponse>> HandleGetReplicas();
  sim::Co<Result<rpc::Void>> HandleReplicateBatch(
      kvwire::ReplicateBatchRequest req);
  sim::Co<Result<kvwire::JoinResponse>> HandleJoin(kvwire::JoinRequest req);
  sim::Co<Result<kvwire::StatusResponse>> HandleGetStatus();

  // Shard migration handlers (primary only; every step idempotent and
  // mirrored to the backups before it is acknowledged, so the step
  // survives promotion).
  sim::Co<Result<kvwire::ShardFreezeResponse>> HandleShardFreeze(
      kvwire::ShardFreezeRequest req);
  sim::Co<Result<kvwire::ShardInstallResponse>> HandleShardInstall(
      kvwire::ShardInstallRequest req);
  sim::Co<Result<rpc::Void>> HandleShardRelease(
      kvwire::ShardReleaseRequest req);
  sim::Co<Result<rpc::Void>> HandleShardUnfreeze(
      kvwire::ShardUnfreezeRequest req);

  /// Installs the static replica set ([0] = initial primary) and this
  /// replica's own binding; called once by ExportReplicatedKv.
  void Configure(core::ServiceBinding self,
                 std::vector<core::ServiceBinding> all_replicas,
                 ReplicaRole role);

  /// Installs this group's initial shard slice (ExportShardedKv). An
  /// unsharded replica (the default) never fences on shards.
  void ConfigureShards(ShardConfig shard) { shard_ = std::move(shard); }

  /// Starts the failover machinery (lease heartbeat on the primary, the
  /// watchdog everywhere) and registers crash/restart handlers. Only
  /// called in named mode.
  void StartFailover();

  /// Stops background loops (test teardown).
  void Stop() { stopped_ = true; }

  [[nodiscard]] ReplicaRole role() const noexcept { return role_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] bool syncing() const noexcept { return syncing_; }
  [[nodiscard]] std::uint64_t promotions() const noexcept {
    return promotions_;
  }
  [[nodiscard]] std::uint64_t rescues() const noexcept { return rescues_; }
  [[nodiscard]] std::uint64_t fenced_rejections() const noexcept {
    return fenced_rejections_;
  }
  [[nodiscard]] std::uint64_t replication_failures() const noexcept {
    return replication_failures_;
  }
  [[nodiscard]] const std::shared_ptr<KvService>& local() const noexcept {
    return store_;
  }
  [[nodiscard]] const core::ServiceBinding& self_binding() const noexcept {
    return self_;
  }
  [[nodiscard]] const ShardConfig& shard() const noexcept { return shard_; }
  /// Ownership epoch of `key`'s shard (0 when unsharded/unowned) — the
  /// stamp the epoch-method replies carry.
  [[nodiscard]] std::uint64_t ShardEpochOf(const std::string& key) const;
  [[nodiscard]] std::uint64_t wrong_shard_rejections() const noexcept {
    return wrong_shard_rejections_;
  }

 private:
  /// Mirrors one batch to every active peer. In named mode a peer that
  /// fails liveness is evicted under a bumped epoch and the batch is
  /// re-announced to the survivors; in static mode any failure fails the
  /// write (the strict write-all the PR-2 tests pin down). A FENCED
  /// reply deposes this primary — but only when the fenced frame carried
  /// the *current* epoch: a concurrent frame may have bumped past this
  /// one while it was parked, and a peer fencing the superseded epoch
  /// says nothing about the primary's present claim.
  ///
  /// On success `*ack_epoch` (when non-null) receives the epoch the
  /// batch was actually mirrored under — which may exceed the epoch at
  /// entry if this frame evicted a dead peer mid-write. Responses must
  /// stamp *this* value, not a later read of epoch_: a parked frame can
  /// resume after a successor's announce bumped epoch_, and reporting
  /// the successor's epoch on a write it never served fakes split-brain.
  sim::Co<Status> Mirror(
      std::vector<std::pair<std::string, std::string>> entries,
      std::vector<std::string> deletes, obs::TraceContext trace,
      std::uint64_t* ack_epoch = nullptr);

  /// Sends `req` to `peer`, returns the raw outcome status. The trace
  /// rides in the mirror call options (replication fan-out propagation).
  sim::Co<Status> SendBatch(const core::ServiceBinding& peer,
                            const kvwire::ReplicateBatchRequest& req,
                            obs::TraceContext trace);

  /// The deposed-primary transition: drop the lease, become a syncing
  /// backup, and let the rejoin path pull fresh state.
  void StepDown(bool resync);

  /// Watchdog: on backups, detects a lapsed primary lease and promotes;
  /// on the primary, notices a lost lease; on a syncing replica, drives
  /// the snapshot rejoin.
  static sim::Co<void> WatchdogLoop(std::shared_ptr<KvReplica> self);
  sim::Co<void> TryPromote();
  sim::Co<void> TryRejoin();
  /// Liveness backstop for a fully-deposed group (every replica syncing:
  /// crash-wiped or fenced out — nobody can promote, nobody can rejoin).
  /// A syncing replica with an intact store re-claims the name iff every
  /// configured peer is reachable, also syncing, and at an epoch <= ours.
  /// Safe because an acknowledged write lives on every member of the
  /// active set of its epoch and epochs only grow through that set: no
  /// reachable peer strictly ahead means no acknowledged write we lack.
  sim::Co<void> TryRescue();

  [[nodiscard]] bool InReplicaList(
      const std::vector<core::ServiceBinding>& list) const;
  [[nodiscard]] bool InActiveSet(const core::ServiceBinding& peer) const;

  /// Data-path shard fence: OK when this group owns `key`'s shard and it
  /// is not frozen, WRONG_SHARD otherwise (no-op when unsharded). Runs
  /// before the store is touched and before a write counts as in flight.
  [[nodiscard]] Status CheckShard(const std::string& key);

  core::Context* context_;
  ReplicatedKvParams params_;
  std::shared_ptr<KvService> store_;
  core::ServiceBinding self_;
  std::vector<core::ServiceBinding> all_replicas_;  // static config
  std::vector<core::ServiceBinding> active_;        // [0] = primary
  ReplicaRole role_ = ReplicaRole::kPrimary;
  std::uint64_t epoch_ = 1;
  bool syncing_ = false;
  bool joining_ = false;   // primary: a snapshot join is in progress
  /// Consecutive rejoin lookups that found no name record; at
  /// params_.rescue_after_misses the replica considers the group
  /// deposed and attempts TryRescue.
  std::uint32_t rejoin_misses_ = 0;
  int inflight_writes_ = 0;
  bool stopped_ = false;
  std::unique_ptr<core::LeaseMaintainer> lease_;  // primary only
  /// This group's live shard slice. Mutated only on the primary (by the
  /// migration handlers) and then mirrored; backups adopt it from
  /// ReplicateBatchRequest/JoinResponse. Volatile across crashes — a
  /// restarted replica re-learns it from the join snapshot, exactly like
  /// the data.
  ShardConfig shard_;
  obs::Counter replication_failures_;
  obs::Counter fenced_rejections_;
  obs::Counter promotions_;
  obs::Counter rescues_;
  obs::Counter wrong_shard_rejections_;
};

/// Builds a replica's skeleton: the full KV dispatch plus the
/// replication methods.
std::shared_ptr<rpc::Dispatch> MakeReplicatedKvDispatch(
    std::shared_ptr<KvReplica> impl);

struct ReplicatedKvExport {
  std::shared_ptr<KvReplica> primary;
  core::ServiceBinding binding;                  // advertises protocol 4
  std::vector<core::ServiceBinding> backup_bindings;
  std::vector<std::shared_ptr<KvReplica>> backup_impls;
  std::vector<std::shared_ptr<KvReplica>> replicas;  // all, [0] = primary
};

/// Exports one replica per context ([primary_ctx] + backup_ctxs), wires
/// replication, and returns the initial primary's binding. With a
/// non-empty `params.name` the export also publishes the name under a
/// lease and arms automatic failover (the name must not be separately
/// published by the caller in that mode).
Result<ReplicatedKvExport> ExportReplicatedKv(
    core::Context& primary_ctx, std::vector<core::Context*> backup_ctxs,
    ReplicatedKvParams params = {});

/// Protocol 4: replication-aware proxy. Reads fail over across replicas;
/// writes follow the primary across epochs. When a full pass over the
/// cached replica list fails — or the primary answers FENCED — the proxy
/// invalidates the list and re-fetches it (through the name service if
/// the bound address itself is dead) before retrying.
class KvFailoverProxy : public IKeyValue, public core::ProxyBase {
 public:
  KvFailoverProxy(core::Context& context, core::ServiceBinding binding)
      : core::ProxyBase(context, std::move(binding)) {
    // Fail over quickly rather than retrying one dead replica forever.
    set_call_options(rpc::CallOptions{}
                         .WithRetryInterval(Milliseconds(10))
                         .WithRetries(2));
    this->context().metrics().Attach("svc.rkv.proxy.failovers", &failovers_);
    this->context().metrics().Attach("svc.rkv.proxy.list_refreshes",
                                     &list_refreshes_);
  }
  ~KvFailoverProxy() override {
    context().metrics().Detach("svc.rkv.proxy.failovers", &failovers_);
    context().metrics().Detach("svc.rkv.proxy.list_refreshes",
                               &list_refreshes_);
  }

  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  sim::Co<Result<std::uint64_t>> Size() override;
  sim::Co<Result<std::vector<std::string>>> List(std::string prefix) override;

  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }
  [[nodiscard]] std::uint64_t list_refreshes() const noexcept {
    return list_refreshes_;
  }
  /// Epoch of the replica that served the last completed operation (for
  /// reads/writes via the epoch-stamped methods), and the object that
  /// acknowledged the last write — the observables the chaos invariants
  /// are built from.
  [[nodiscard]] std::uint64_t last_op_epoch() const noexcept {
    return last_op_epoch_;
  }
  [[nodiscard]] ObjectId last_write_acker() const noexcept {
    return last_write_acker_;
  }
  /// Shard-ownership epoch stamped on the last epoch-method reply (0
  /// against an unsharded group). The shard router republishes this per
  /// routed op for the chaos split-shard/lost-key invariants.
  [[nodiscard]] std::uint64_t last_op_shard_epoch() const noexcept {
    return last_op_shard_epoch_;
  }

 private:
  /// Fetches the replica set on first use; with `force`, drops the cache
  /// and re-fetches — first through the bound primary (which re-resolves
  /// the name if dead), then by asking each previously known replica.
  /// `budget` (when set) is the owning operation's shared retransmission
  /// allowance; the refresh's own calls draw from it.
  sim::Co<Status> EnsureReplicaList(
      bool force, obs::TraceContext trace = {},
      std::shared_ptr<rpc::AttemptBudget> budget = nullptr);

  /// One shared retransmission allowance for a whole read/write
  /// operation. Each pass of ReadCall/WriteCall used to retry on its own
  /// policy, so one client op could fan into passes × replicas ×
  /// transport-retries transmissions — a retry storm exactly when the
  /// service was least able to absorb it. Every replica still gets its
  /// first transmission (failover keeps working); what the budget stops
  /// is *re*-transmissions once the op's total allowance is spent.
  [[nodiscard]] std::shared_ptr<rpc::AttemptBudget> MintOpBudget() const {
    return std::make_shared<rpc::AttemptBudget>(options_.max_retries * 2 + 2);
  }

  /// Read path: try replicas starting with the preferred one; after a
  /// full failed pass, refresh the list once and run one more pass.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> ReadCall(std::uint32_t method, Req req);

  /// Write path: the primary only, but re-discover the primary (bounded
  /// number of times) on FENCED/UNAVAILABLE/TIMEOUT.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> WriteCall(std::uint32_t method, Req req);

  static constexpr int kWritePasses = 3;

  std::vector<core::ServiceBinding> replicas_;  // [0] = primary
  std::size_t preferred_ = 0;                   // sticky last-good replica
  obs::Counter failovers_;
  obs::Counter list_refreshes_;
  std::uint64_t list_epoch_ = 0;
  std::uint64_t last_op_epoch_ = 0;
  std::uint64_t last_op_shard_epoch_ = 0;
  ObjectId last_write_acker_{};
};

void RegisterReplicatedKvFactories();

}  // namespace proxy::services
