// Replicated key-value service — the "additional transparencies" layer.
//
// The 1986 argument: once every client/service interaction goes through
// a proxy, *replication* can be introduced by the service alone. This
// module proves it for the KV interface:
//
//   server side   A primary KvReplicaCoordinator applies writes locally
//                 and forwards them synchronously to backup KvService
//                 replicas (primary-backup, write-all / read-one).
//   client side   KvFailoverProxy (IKeyValue protocol 4) learns the
//                 replica set at first use; reads prefer the primary but
//                 fail over to backups when it is unreachable; writes
//                 require the primary (single-writer consistency).
//
// Clients keep calling Get/Put on the same IKeyValue they always had.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/export.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "services/kv.h"

namespace proxy::services {

namespace kvwire {

/// Extra methods the replication coordinator adds to the KV protocol.
enum ReplicationMethod : std::uint32_t {
  kGetReplicas = 20,
  kReplicateBatch = 21,
};

struct ReplicaListResponse {
  std::vector<core::ServiceBinding> replicas;  // [0] is the primary
  PROXY_SERDE_FIELDS(replicas)
};

}  // namespace kvwire

/// The primary: an IKeyValue whose mutations are mirrored to backups
/// before they are acknowledged (write-all).
class KvReplicaCoordinator : public IKeyValue {
 public:
  explicit KvReplicaCoordinator(core::Context& context)
      : context_(&context), local_(std::make_shared<KvService>(context)) {}

  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  sim::Co<Result<std::uint64_t>> Size() override;

  /// Registers a backup replica (a plain KvService exported elsewhere).
  void AddBackup(const core::ServiceBinding& backup) {
    backups_.push_back(backup);
  }

  [[nodiscard]] const std::vector<core::ServiceBinding>& backups()
      const noexcept {
    return backups_;
  }
  [[nodiscard]] const std::shared_ptr<KvService>& local() const noexcept {
    return local_;
  }

  /// Binding of this coordinator (set by ExportReplicatedKv).
  void SetSelfBinding(const core::ServiceBinding& self) { self_ = self; }

  sim::Co<Result<kvwire::ReplicaListResponse>> HandleGetReplicas();

  [[nodiscard]] std::uint64_t replication_failures() const noexcept {
    return replication_failures_;
  }

 private:
  /// Mirrors one batch to every backup; fails if any backup fails (the
  /// write-all policy keeps backups exact, so reads may go anywhere).
  sim::Co<Status> Mirror(
      std::vector<std::pair<std::string, std::string>> entries,
      std::vector<std::string> deletes);

  core::Context* context_;
  std::shared_ptr<KvService> local_;
  core::ServiceBinding self_;
  std::vector<core::ServiceBinding> backups_;
  std::uint64_t replication_failures_ = 0;
};

/// Builds the coordinator's skeleton: the full KV dispatch (backed by the
/// coordinator so mutations replicate) plus the replica-list method.
std::shared_ptr<rpc::Dispatch> MakeReplicatedKvDispatch(
    std::shared_ptr<KvReplicaCoordinator> impl);

struct ReplicatedKvExport {
  std::shared_ptr<KvReplicaCoordinator> primary;
  core::ServiceBinding binding;                  // advertises protocol 4
  std::vector<core::ServiceBinding> backup_bindings;
  std::vector<std::shared_ptr<KvService>> backup_impls;
};

/// Exports a primary in `primary_ctx` and one backup KvService in each
/// of `backup_ctxs`, wires replication, and returns the primary binding.
Result<ReplicatedKvExport> ExportReplicatedKv(
    core::Context& primary_ctx, std::vector<core::Context*> backup_ctxs);

/// Protocol 4: replication-aware proxy. Reads fail over across replicas;
/// writes go to the primary.
class KvFailoverProxy : public IKeyValue, public core::ProxyBase {
 public:
  KvFailoverProxy(core::Context& context, core::ServiceBinding binding)
      : core::ProxyBase(context, std::move(binding)) {
    // Fail over quickly rather than retrying one dead replica forever.
    rpc::CallOptions impatient;
    impatient.retry_interval = Milliseconds(10);
    impatient.max_retries = 2;
    set_call_options(impatient);
  }

  sim::Co<Result<std::optional<std::string>>> Get(std::string key) override;
  sim::Co<Result<rpc::Void>> Put(std::string key, std::string value) override;
  sim::Co<Result<bool>> Del(std::string key) override;
  sim::Co<Result<std::uint64_t>> Size() override;

  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }

 private:
  /// Fetches the replica set on first use.
  sim::Co<Status> EnsureReplicaList();

  /// Read path: try replicas starting with the preferred one.
  template <typename Resp, typename Req>
  sim::Co<Result<Resp>> ReadCall(std::uint32_t method, Req req);

  std::vector<core::ServiceBinding> replicas_;  // [0] = primary
  std::size_t preferred_ = 0;                   // sticky last-good replica
  std::uint64_t failovers_ = 0;
};

void RegisterReplicatedKvFactories();

}  // namespace proxy::services
