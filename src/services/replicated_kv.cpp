#include "services/replicated_kv.h"

#include "core/factory.h"

namespace proxy::services {

using kvwire::BatchPutRequest;
using kvwire::DelRequest;
using kvwire::DelResponse;
using kvwire::GetRequest;
using kvwire::GetResponse;
using kvwire::PutRequest;
using kvwire::ReplicaListResponse;
using kvwire::SizeResponse;
using kvwire::SubscribeRequest;

// --- coordinator -------------------------------------------------------

sim::Co<Result<std::optional<std::string>>> KvReplicaCoordinator::Get(
    std::string key) {
  co_return co_await local_->Get(std::move(key));
}

sim::Co<Result<std::uint64_t>> KvReplicaCoordinator::Size() {
  co_return co_await local_->Size();
}

sim::Co<Status> KvReplicaCoordinator::Mirror(
    std::vector<std::pair<std::string, std::string>> entries,
    std::vector<std::string> deletes) {
  // Write-all: every backup must acknowledge before the client does.
  // (Sequential for determinism; the simulated RTTs still dominate.)
  for (const auto& backup : backups_) {
    if (!entries.empty()) {
      BatchPutRequest req{entries, ObjectId{}};
      rpc::RpcResult r = co_await context_->client().Call(
          backup.server, backup.object, kvwire::kBatchPut,
          serde::EncodeToBytes(req));
      if (!r.ok()) {
        replication_failures_++;
        co_return UnavailableError("backup unreachable: " +
                                   r.status.ToString());
      }
    }
    for (const auto& key : deletes) {
      DelRequest req{key, ObjectId{}};
      rpc::RpcResult r = co_await context_->client().Call(
          backup.server, backup.object, kvwire::kDel,
          serde::EncodeToBytes(req));
      if (!r.ok()) {
        replication_failures_++;
        co_return UnavailableError("backup unreachable: " +
                                   r.status.ToString());
      }
    }
  }
  co_return Status::Ok();
}

sim::Co<Result<rpc::Void>> KvReplicaCoordinator::Put(std::string key,
                                                     std::string value) {
  Result<rpc::Void> applied = co_await local_->Put(key, value);
  if (!applied.ok()) co_return applied.status();
  std::vector<std::pair<std::string, std::string>> entries;
  entries.emplace_back(std::move(key), std::move(value));
  std::vector<std::string> deletes;
  const Status mirrored =
      co_await Mirror(std::move(entries), std::move(deletes));
  if (!mirrored.ok()) co_return mirrored;
  co_return rpc::Void{};
}

sim::Co<Result<bool>> KvReplicaCoordinator::Del(std::string key) {
  Result<bool> existed = co_await local_->Del(key);
  if (!existed.ok()) co_return existed.status();
  std::vector<std::pair<std::string, std::string>> entries;
  std::vector<std::string> deletes;
  deletes.push_back(std::move(key));
  const Status mirrored =
      co_await Mirror(std::move(entries), std::move(deletes));
  if (!mirrored.ok()) co_return mirrored;
  co_return *existed;
}

sim::Co<Result<ReplicaListResponse>>
KvReplicaCoordinator::HandleGetReplicas() {
  ReplicaListResponse resp;
  resp.replicas.push_back(self_);
  for (const auto& b : backups_) resp.replicas.push_back(b);
  co_return resp;
}

std::shared_ptr<rpc::Dispatch> MakeReplicatedKvDispatch(
    std::shared_ptr<KvReplicaCoordinator> impl) {
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<GetRequest, GetResponse>(
      *dispatch, kvwire::kGet,
      [impl](GetRequest req,
             const rpc::CallContext&) -> sim::Co<Result<GetResponse>> {
        Result<std::optional<std::string>> value =
            co_await impl->Get(std::move(req.key));
        if (!value.ok()) co_return value.status();
        co_return GetResponse{std::move(*value)};
      });
  rpc::RegisterTyped<PutRequest, rpc::Void>(
      *dispatch, kvwire::kPut,
      [impl](PutRequest req, const rpc::CallContext&) {
        return impl->Put(std::move(req.key), std::move(req.value));
      });
  rpc::RegisterTyped<DelRequest, DelResponse>(
      *dispatch, kvwire::kDel,
      [impl](DelRequest req,
             const rpc::CallContext&) -> sim::Co<Result<DelResponse>> {
        Result<bool> existed = co_await impl->Del(std::move(req.key));
        if (!existed.ok()) co_return existed.status();
        co_return DelResponse{*existed};
      });
  rpc::RegisterTyped<rpc::Void, SizeResponse>(
      *dispatch, kvwire::kSize,
      [impl](rpc::Void, const rpc::CallContext&)
          -> sim::Co<Result<SizeResponse>> {
        Result<std::uint64_t> size = co_await impl->Size();
        if (!size.ok()) co_return size.status();
        co_return SizeResponse{*size};
      });
  rpc::RegisterTyped<SubscribeRequest, rpc::Void>(
      *dispatch, kvwire::kSubscribe,
      [impl](SubscribeRequest req,
             const rpc::CallContext&) -> sim::Co<Result<rpc::Void>> {
        const Status st =
            impl->local()->Subscribe(req.sink_server, req.sink_object);
        if (!st.ok()) co_return st;
        co_return rpc::Void{};
      });
  rpc::RegisterTyped<rpc::Void, ReplicaListResponse>(
      *dispatch, kvwire::kGetReplicas,
      [impl](rpc::Void, const rpc::CallContext&) {
        return impl->HandleGetReplicas();
      });
  return dispatch;
}

Result<ReplicatedKvExport> ExportReplicatedKv(
    core::Context& primary_ctx, std::vector<core::Context*> backup_ctxs) {
  ReplicatedKvExport out;

  auto primary = std::make_shared<KvReplicaCoordinator>(primary_ctx);
  for (core::Context* ctx : backup_ctxs) {
    auto backup_impl = std::make_shared<KvService>(*ctx);
    auto dispatch = MakeKvDispatch(backup_impl);
    PROXY_ASSIGN_OR_RETURN(
        auto exported,
        core::ServiceExport<IKeyValue>::Create(*ctx, backup_impl, dispatch,
                                               /*protocol=*/1, backup_impl));
    primary->AddBackup(exported.binding());
    out.backup_bindings.push_back(exported.binding());
    out.backup_impls.push_back(std::move(backup_impl));
  }

  auto dispatch = MakeReplicatedKvDispatch(primary);
  PROXY_ASSIGN_OR_RETURN(
      auto exported,
      core::ServiceExport<IKeyValue>::Create(primary_ctx, primary, dispatch,
                                             /*protocol=*/4));
  primary->SetSelfBinding(exported.binding());
  out.primary = std::move(primary);
  out.binding = exported.binding();
  return out;
}

// --- failover proxy ----------------------------------------------------

sim::Co<Status> KvFailoverProxy::EnsureReplicaList() {
  if (!replicas_.empty()) co_return Status::Ok();
  Result<Bytes> raw = co_await CallRaw(kvwire::kGetReplicas,
                                       serde::EncodeToBytes(rpc::Void{}));
  if (!raw.ok()) co_return raw.status();
  Result<ReplicaListResponse> resp =
      serde::DecodeFromBytes<ReplicaListResponse>(View(*raw));
  if (!resp.ok()) co_return resp.status();
  if (resp->replicas.empty()) {
    co_return FailedPreconditionError("empty replica list");
  }
  replicas_ = std::move(resp->replicas);
  co_return Status::Ok();
}

template <typename Resp, typename Req>
sim::Co<Result<Resp>> KvFailoverProxy::ReadCall(std::uint32_t method,
                                                Req req) {
  const Status ready = co_await EnsureReplicaList();
  if (!ready.ok()) co_return ready;

  const Bytes args = serde::EncodeToBytes(req);
  Status last = UnavailableError("no replicas");
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const std::size_t idx = (preferred_ + i) % replicas_.size();
    const core::ServiceBinding& replica = replicas_[idx];
    rpc::RpcResult raw = co_await context().client().Call(
        replica.server, replica.object, method, args, options_);
    if (raw.ok()) {
      if (idx != preferred_) {
        failovers_++;
        preferred_ = idx;  // stick with the replica that answered
      }
      co_return serde::DecodeFromBytes<Resp>(View(raw.payload));
    }
    // Only liveness failures trigger failover; semantic errors are final.
    if (raw.status.code() != StatusCode::kTimeout &&
        raw.status.code() != StatusCode::kUnavailable) {
      co_return raw.status;
    }
    last = raw.status;
  }
  co_return last;
}

sim::Co<Result<std::optional<std::string>>> KvFailoverProxy::Get(
    std::string key) {
  GetRequest req{std::move(key)};  // named: see stub.h "GCC note"
  Result<GetResponse> resp =
      co_await ReadCall<GetResponse>(kvwire::kGet, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->value);
}

sim::Co<Result<std::uint64_t>> KvFailoverProxy::Size() {
  Result<SizeResponse> resp =
      co_await ReadCall<SizeResponse>(kvwire::kSize, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->size;
}

sim::Co<Result<rpc::Void>> KvFailoverProxy::Put(std::string key,
                                                std::string value) {
  // Writes need the primary (single-writer). No failover: surfacing the
  // outage beats silently diverging replicas. Primary election is listed
  // as future work in DESIGN.md. Discovery still happens opportunistically
  // so that a later read can fail over even if the primary dies first.
  (void)co_await EnsureReplicaList();
  PutRequest req{std::move(key), std::move(value), ObjectId{}};
  co_return co_await Call<rpc::Void>(kvwire::kPut, std::move(req));
}

sim::Co<Result<bool>> KvFailoverProxy::Del(std::string key) {
  (void)co_await EnsureReplicaList();
  DelRequest req{std::move(key), ObjectId{}};
  Result<DelResponse> resp =
      co_await Call<DelResponse>(kvwire::kDel, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return resp->existed;
}

void RegisterReplicatedKvFactories() {
  const InterfaceId iface = InterfaceIdOf(IKeyValue::kInterfaceName);
  auto& proxies = core::ProxyFactoryRegistry::Instance();
  if (!proxies.Has(iface, 4)) {
    (void)proxies.Register(
        iface, 4, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IKeyValue>(
                  std::make_shared<KvFailoverProxy>(ctx, b)));
        });
  }
}

}  // namespace proxy::services
