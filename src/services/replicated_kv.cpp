#include "services/replicated_kv.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "core/factory.h"

namespace proxy::services {

using kvwire::DelRequest;
using kvwire::DelResponse;
using kvwire::EpochDelResponse;
using kvwire::EpochGetResponse;
using kvwire::EpochPutResponse;
using kvwire::GetRequest;
using kvwire::GetResponse;
using kvwire::JoinRequest;
using kvwire::JoinResponse;
using kvwire::ListRequest;
using kvwire::ListResponse;
using kvwire::PutRequest;
using kvwire::ReplicaListResponse;
using kvwire::ReplicateBatchRequest;
using kvwire::ShardFreezeRequest;
using kvwire::ShardFreezeResponse;
using kvwire::ShardInstallRequest;
using kvwire::ShardInstallResponse;
using kvwire::ShardReleaseRequest;
using kvwire::ShardUnfreezeRequest;
using kvwire::SizeResponse;
using kvwire::StatusResponse;
using kvwire::SubscribeRequest;

namespace {

bool SameObject(const core::ServiceBinding& a, const core::ServiceBinding& b) {
  return a.object == b.object;
}

}  // namespace

// --- replica: configuration and lifecycle ------------------------------

void KvReplica::Configure(core::ServiceBinding self,
                          std::vector<core::ServiceBinding> all_replicas,
                          ReplicaRole role) {
  self_ = self;
  all_replicas_ = std::move(all_replicas);
  active_ = all_replicas_;  // [0] is the initial primary by construction
  role_ = role;
  epoch_ = 1;
}

void KvReplica::StartFailover() {
  if (role_ == ReplicaRole::kPrimary) {
    lease_ = std::make_unique<core::LeaseMaintainer>(*context_, params_.name,
                                                     self_, params_.lease);
  }
  auto self = shared_from_this();
  context_->OnCrash([self] {
    // Crash-stop: every bit of volatile state dies with the process. The
    // static replica list is configuration and survives (a restarted
    // process re-reads its config); data, role, epoch and view do not.
    self->store_ = std::make_shared<KvService>(*self->context_);
    self->role_ = ReplicaRole::kBackup;
    self->syncing_ = true;
    self->joining_ = false;
    self->rejoin_misses_ = 0;
    self->inflight_writes_ = 0;
    self->epoch_ = 0;
    self->active_.clear();
    // Shard ownership is volatile like the data: a restarted replica
    // re-learns it from the join snapshot, never from stale memory.
    self->shard_ = ShardConfig{};
    if (self->lease_) {
      self->lease_->Stop();
      self->lease_.reset();
    }
  });
  (void)sim::Spawn(context_->scheduler(), WatchdogLoop(self));
}

void KvReplica::StepDown(bool resync) {
  role_ = ReplicaRole::kBackup;
  if (resync) syncing_ = true;
  if (lease_) {
    lease_->Stop();
    lease_.reset();
  }
  PROXY_LOG(kInfo, context_->scheduler().now(), "rkv",
            "replica " << self_.object.ToString() << " stepped down"
                       << (resync ? " (resync)" : ""));
  context_->spans().Event(context_->scheduler().now(),
                          "rkv " + self_.object.ToString() + " step-down" +
                              (resync ? " (resync)" : ""));
}

bool KvReplica::InReplicaList(
    const std::vector<core::ServiceBinding>& list) const {
  return std::any_of(list.begin(), list.end(), [this](const auto& r) {
    return SameObject(r, self_);
  });
}

bool KvReplica::InActiveSet(const core::ServiceBinding& peer) const {
  return std::any_of(active_.begin(), active_.end(), [&](const auto& r) {
    return SameObject(r, peer);
  });
}

// --- replica: data path ------------------------------------------------

Status KvReplica::CheckShard(const std::string& key) {
  if (!shard_.sharded() || params_.testing_disable_shard_fencing) {
    return Status::Ok();
  }
  const std::uint32_t shard = ShardOf(key, shard_.num_shards);
  if (!shard_.Owns(shard)) {
    wrong_shard_rejections_++;
    return WrongShardError("shard " + std::to_string(shard) +
                           " not owned by this group");
  }
  if (shard_.Frozen(shard)) {
    wrong_shard_rejections_++;
    return WrongShardError("shard " + std::to_string(shard) +
                           " frozen for migration");
  }
  return Status::Ok();
}

std::uint64_t KvReplica::ShardEpochOf(const std::string& key) const {
  if (!shard_.sharded()) return 0;
  return shard_.EpochOf(ShardOf(key, shard_.num_shards));
}

sim::Co<Result<std::optional<std::string>>> KvReplica::Get(std::string key) {
  if (syncing_) co_return UnavailableError("replica syncing");
  const Status owned = CheckShard(key);
  if (!owned.ok()) co_return owned;
  co_return co_await store_->Get(std::move(key));
}

sim::Co<Result<std::uint64_t>> KvReplica::Size() {
  if (syncing_) co_return UnavailableError("replica syncing");
  co_return co_await store_->Size();
}

sim::Co<Result<std::vector<std::string>>> KvReplica::List(std::string prefix) {
  if (syncing_) co_return UnavailableError("replica syncing");
  co_return co_await store_->List(std::move(prefix));
}

sim::Co<Status> KvReplica::SendBatch(const core::ServiceBinding& peer,
                                     const ReplicateBatchRequest& req,
                                     obs::TraceContext trace) {
  rpc::CallOptions mirror = params_.mirror;
  mirror.trace = trace;
  rpc::RpcResult r = co_await context_->client().Call(
      peer.server, peer.object, kvwire::kReplicateBatch,
      serde::EncodeToBytes(req), mirror);
  co_return r.status;
}

sim::Co<Status> KvReplica::Mirror(
    std::vector<std::pair<std::string, std::string>> entries,
    std::vector<std::string> deletes, obs::TraceContext trace,
    std::uint64_t* ack_epoch) {
  // The caller's role check ran before its first suspension; a
  // successor's announce may have deposed us while the frame was
  // parked in the local apply. A deposed replica must not push batches
  // under the successor's adopted epoch — the write stays applied
  // locally but unacknowledged (the ambiguity clients already absorb).
  if (role_ != ReplicaRole::kPrimary || syncing_) {
    co_return UnavailableError("deposed before mirroring");
  }
  const bool named = !params_.name.empty();
  ReplicateBatchRequest req;
  req.epoch = epoch_;
  req.replicas = active_;
  req.entries = std::move(entries);
  req.deletes = std::move(deletes);
  req.shard = shard_;

  // Write-all over the active set: every active peer must acknowledge
  // before the client does (so any active replica can later promote
  // without losing an acknowledged write).
  //
  // Iterate a snapshot: SendBatch suspends, and a concurrent write (or a
  // fencing response) can reassign active_ while this frame is parked —
  // a range-for over the member would read freed vector storage.
  std::vector<core::ServiceBinding> survivors{self_};
  bool lost_any = false;
  const std::vector<core::ServiceBinding> mirror_view = active_;
  for (const auto& peer : mirror_view) {
    if (SameObject(peer, self_)) continue;
    const Status st = co_await SendBatch(peer, req, trace);
    if (st.ok()) {
      survivors.push_back(peer);
      continue;
    }
    if (st.code() == StatusCode::kFenced) {
      if (req.epoch < epoch_ || role_ != ReplicaRole::kPrimary) {
        // This frame was superseded while it was parked (a concurrent
        // mirror bumped the epoch, or another frame already stepped us
        // down). The peer fenced the *stale frame*, not our current
        // claim — fail the write without abdicating.
        co_return UnavailableError("superseded mirror frame fenced at epoch " +
                                   std::to_string(req.epoch));
      }
      // A peer under a newer epoch refused us: we have been deposed.
      StepDown(/*resync=*/true);
      co_return FencedError("deposed: peer reports a newer epoch than " +
                            std::to_string(epoch_));
    }
    replication_failures_++;
    if (!named) {
      // Static mode keeps the strict PR-2 semantics: any unreachable
      // backup fails the write outright.
      co_return UnavailableError("backup unreachable: " + st.ToString());
    }
    lost_any = true;
  }

  if (lost_any) {
    if (role_ != ReplicaRole::kPrimary) {
      // Deposed while parked in the mirror fan-out: only a standing
      // primary may evict peers and mint a new epoch.
      co_return UnavailableError("deposed during mirror fan-out");
    }
    if (survivors.size() < 2) {
      // Never acknowledge a write this primary alone holds: a single
      // crash could then lose acknowledged data. The local apply stands
      // (the client sees a failure, which may or may not have executed —
      // the ambiguity every checker already tolerates) and the watchdog
      // probe walks the evicted replicas back in before writes resume.
      co_return UnavailableError("no reachable backup to mirror to");
    }
    // Evict the unreachable peers under a bumped epoch and re-announce
    // the same (idempotent) batch so the survivors adopt the new view.
    // The evicted replica is fenced out: it can neither promote (it will
    // see a newer epoch when it polls) nor rejoin the active set without
    // a snapshot resync.
    epoch_++;
    context_->spans().Event(context_->scheduler().now(),
                            "rkv " + self_.object.ToString() +
                                " epoch bump -> " + std::to_string(epoch_) +
                                " (evicting unreachable backups)");
    active_ = std::move(survivors);
    req.epoch = epoch_;
    req.replicas = active_;
    std::vector<core::ServiceBinding> confirmed{self_};
    const std::vector<core::ServiceBinding> reannounce_view = active_;
    for (const auto& peer : reannounce_view) {
      if (SameObject(peer, self_)) continue;
      const Status st = co_await SendBatch(peer, req, trace);
      if (st.ok()) {
        confirmed.push_back(peer);
      } else if (st.code() == StatusCode::kFenced) {
        if (req.epoch < epoch_ || role_ != ReplicaRole::kPrimary) {
          co_return UnavailableError(
              "superseded re-announce frame fenced at epoch " +
              std::to_string(req.epoch));
        }
        StepDown(/*resync=*/true);
        co_return FencedError("deposed during eviction re-announce");
      } else {
        // Died between the two passes: evict it too. The remaining
        // peers learn the final view with the next mirrored batch.
        replication_failures_++;
      }
    }
    if (confirmed.size() < 2) {
      co_return UnavailableError("no reachable backup to mirror to");
    }
    if (role_ != ReplicaRole::kPrimary) {
      co_return UnavailableError("deposed during eviction re-announce");
    }
    if (confirmed.size() != reannounce_view.size()) {
      epoch_++;
      context_->spans().Event(context_->scheduler().now(),
                              "rkv " + self_.object.ToString() +
                                  " epoch bump -> " + std::to_string(epoch_) +
                                  " (peer died during re-announce)");
      active_ = std::move(confirmed);
    }
  }
  // The epoch the surviving peers actually confirmed the batch under
  // (req.epoch, not epoch_: a later bump by this frame's eviction tail
  // or by a concurrent frame is not the epoch this write was served at).
  if (ack_epoch != nullptr) *ack_epoch = req.epoch;
  co_return Status::Ok();
}

sim::Co<Result<rpc::Void>> KvReplica::Put(std::string key, std::string value) {
  co_return co_await Put(std::move(key), std::move(value), obs::TraceContext{});
}

sim::Co<Result<rpc::Void>> KvReplica::Put(std::string key, std::string value,
                                          obs::TraceContext trace,
                                          std::uint64_t* ack_epoch) {
  if (syncing_) co_return UnavailableError("replica syncing");
  if (role_ != ReplicaRole::kPrimary) {
    co_return UnavailableError("not the primary");
  }
  if (joining_) co_return UnavailableError("snapshot join in progress");
  const Status owned = CheckShard(key);
  if (!owned.ok()) co_return owned;
  inflight_writes_++;
  Result<rpc::Void> applied = co_await store_->Put(key, value);
  if (!applied.ok()) {
    inflight_writes_--;
    co_return applied.status();
  }
  std::vector<std::pair<std::string, std::string>> entries;
  entries.emplace_back(std::move(key), std::move(value));
  const Status mirrored =
      co_await Mirror(std::move(entries), {}, trace, ack_epoch);
  inflight_writes_--;
  if (!mirrored.ok()) co_return mirrored;
  co_return rpc::Void{};
}

sim::Co<Result<bool>> KvReplica::Del(std::string key) {
  co_return co_await Del(std::move(key), obs::TraceContext{});
}

sim::Co<Result<bool>> KvReplica::Del(std::string key, obs::TraceContext trace,
                                     std::uint64_t* ack_epoch) {
  if (syncing_) co_return UnavailableError("replica syncing");
  if (role_ != ReplicaRole::kPrimary) {
    co_return UnavailableError("not the primary");
  }
  if (joining_) co_return UnavailableError("snapshot join in progress");
  const Status owned = CheckShard(key);
  if (!owned.ok()) co_return owned;
  inflight_writes_++;
  Result<bool> existed = co_await store_->Del(key);
  if (!existed.ok()) {
    inflight_writes_--;
    co_return existed.status();
  }
  std::vector<std::string> deletes;
  deletes.push_back(std::move(key));
  const Status mirrored =
      co_await Mirror({}, std::move(deletes), trace, ack_epoch);
  inflight_writes_--;
  if (!mirrored.ok()) co_return mirrored;
  co_return *existed;
}

// --- replica: wire handlers --------------------------------------------

sim::Co<Result<ReplicaListResponse>> KvReplica::HandleGetReplicas() {
  if (syncing_) co_return UnavailableError("replica syncing");
  ReplicaListResponse resp;
  resp.epoch = epoch_;
  resp.replicas = active_;
  co_return resp;
}

sim::Co<Result<StatusResponse>> KvReplica::HandleGetStatus() {
  StatusResponse resp;
  resp.epoch = epoch_;
  resp.is_primary = role_ == ReplicaRole::kPrimary && !syncing_;
  resp.syncing = syncing_;
  co_return resp;
}

sim::Co<Result<rpc::Void>> KvReplica::HandleReplicateBatch(
    ReplicateBatchRequest req) {
  if (syncing_) {
    // Mid-resync our store is a mix of old and new state; acknowledging
    // a batch we may later overwrite with the snapshot would fake
    // durability. Refuse until the join completes.
    co_return UnavailableError("replica syncing");
  }
  const bool fencing = !params_.testing_disable_fencing;
  if (fencing && req.epoch < epoch_) {
    fenced_rejections_++;
    context_->spans().Event(context_->scheduler().now(),
                            "rkv " + self_.object.ToString() +
                                " fenced stale batch: epoch " +
                                std::to_string(req.epoch) + " < " +
                                std::to_string(epoch_));
    co_return FencedError("stale epoch " + std::to_string(req.epoch) +
                          " < " + std::to_string(epoch_));
  }
  if (req.epoch >= epoch_) {
    if (!InReplicaList(req.replicas)) {
      if (fencing && role_ == ReplicaRole::kPrimary) {
        // An evicted ex-primary must fully step down: keeping the lease
        // maintainer alive would let its overwrite-renewals steal the
        // name back from the successor after a partition heals.
        StepDown(/*resync=*/true);
        co_return UnavailableError("evicted from the active set");
      }
      if (fencing || role_ != ReplicaRole::kPrimary) {
        // A newer view evicted us (our ack was lost, or we were cut
        // off): our data may be behind, so resync before serving again.
        syncing_ = true;
        co_return UnavailableError("evicted from the active set");
      }
      // Bug mode: a stale primary shrugs off its eviction and keeps
      // acting as primary — the split-brain the sweep must catch.
    }
    if (fencing || role_ == ReplicaRole::kBackup) {
      if (req.epoch > epoch_ && role_ == ReplicaRole::kPrimary) {
        // A successor announced a newer epoch that still includes us, so
        // our data is current: become a serving backup, no resync.
        StepDown(/*resync=*/false);
      }
      epoch_ = req.epoch;
      active_ = req.replicas;
      // Adopt the shard view BEFORE applying the batch below: a replica
      // that applies a release's deletes has, by then, already dropped
      // the shard, so it can never serve a false "absent" for a key it
      // silently deleted.
      shard_ = req.shard;
    }
    // With fencing disabled a (stale) primary keeps its role and epoch —
    // the reintroduced bug the chaos sweep must catch.
  }
  if (!req.entries.empty()) {
    Result<rpc::Void> applied = co_await store_->BatchPut(req.entries);
    if (!applied.ok()) co_return applied.status();
  }
  for (const auto& key : req.deletes) {
    Result<bool> deleted = co_await store_->Del(key);
    if (!deleted.ok()) co_return deleted.status();
  }
  co_return rpc::Void{};
}

sim::Co<Result<JoinResponse>> KvReplica::HandleJoin(JoinRequest req) {
  if (role_ != ReplicaRole::kPrimary || syncing_) {
    co_return UnavailableError("not the primary");
  }
  // Pause writes while the snapshot is cut so the joiner cannot miss a
  // concurrently mirrored batch (writes racing the join fail unacked).
  joining_ = true;
  for (int i = 0; i < 64 && inflight_writes_ > 0; ++i) {
    co_await sim::SleepFor(context_->scheduler(), Milliseconds(1));
  }
  if (inflight_writes_ > 0) {
    joining_ = false;
    co_return UnavailableError("write drain timed out");
  }
  if (!std::any_of(active_.begin(), active_.end(), [&](const auto& r) {
        return SameObject(r, req.joiner);
      })) {
    // Re-admit in static-configuration order, primary first, so every
    // replica agrees on backup ranks (the promotion stagger).
    std::vector<core::ServiceBinding> next{self_};
    for (const auto& r : all_replicas_) {
      if (SameObject(r, self_)) continue;
      const bool was_active =
          std::any_of(active_.begin(), active_.end(), [&](const auto& a) {
            return SameObject(a, r);
          });
      if (was_active || SameObject(r, req.joiner)) next.push_back(r);
    }
    active_ = std::move(next);
  }
  JoinResponse resp;
  resp.epoch = epoch_;
  resp.snapshot = store_->SnapshotState();
  resp.replicas = active_;
  resp.shard = shard_;
  joining_ = false;
  co_return resp;
}

// --- replica: shard migration handlers ---------------------------------
//
// All four run on the owning group's primary, driven by the rebalancer
// (shard_router.h). Each one mirrors the resulting ShardConfig to every
// active backup before acknowledging, so the step survives promotion;
// each one is idempotent, so a rebalancer that lost an ack re-runs it.

sim::Co<Result<ShardFreezeResponse>> KvReplica::HandleShardFreeze(
    ShardFreezeRequest req) {
  if (syncing_ || role_ != ReplicaRole::kPrimary) {
    co_return UnavailableError("not the primary");
  }
  if (joining_) co_return UnavailableError("snapshot join in progress");
  if (!shard_.sharded() || req.shard >= shard_.num_shards) {
    co_return FailedPreconditionError("group not sharded or shard " +
                                      std::to_string(req.shard) +
                                      " out of range");
  }
  if (!shard_.Owns(req.shard)) {
    co_return WrongShardError("freeze: shard " + std::to_string(req.shard) +
                              " not owned by this group");
  }
  // Freeze first: from this instant new writes to the shard refuse with
  // WRONG_SHARD, so the snapshot cut below cannot miss an acked write.
  shard_.Freeze(req.shard);
  // Drain in-flight writes (they passed CheckShard before the freeze and
  // may still be mirroring) under the same write pause a join uses.
  joining_ = true;
  for (int i = 0; i < 64 && inflight_writes_ > 0; ++i) {
    co_await sim::SleepFor(context_->scheduler(), Milliseconds(1));
  }
  joining_ = false;
  if (inflight_writes_ > 0) {
    shard_.Unfreeze(req.shard);
    co_return UnavailableError("write drain timed out");
  }
  // The freeze must reach every active backup before any data leaves:
  // if this primary dies after handing out the copy, its successor must
  // refuse shard writes too, or the installed copy silently goes stale.
  const Status mirrored = co_await Mirror({}, {}, obs::TraceContext{});
  if (!mirrored.ok()) {
    // Backups that did adopt the frozen view heal on the next mirrored
    // batch (the config rides every one of them, as state not deltas).
    shard_.Unfreeze(req.shard);
    co_return mirrored;
  }
  ShardFreezeResponse resp;
  resp.shard_epoch = shard_.EpochOf(req.shard);
  Result<std::vector<std::string>> keys = co_await store_->List("");
  if (!keys.ok()) co_return keys.status();
  const std::vector<std::string> snapshot_keys = std::move(*keys);
  for (const auto& key : snapshot_keys) {
    if (ShardOf(key, shard_.num_shards) != req.shard) continue;
    Result<std::optional<std::string>> value = co_await store_->Get(key);
    if (!value.ok()) co_return value.status();
    if (value->has_value()) resp.entries.emplace_back(key, **value);
  }
  context_->spans().Event(context_->scheduler().now(),
                          "rkv " + self_.object.ToString() + " froze shard " +
                              std::to_string(req.shard) + " (" +
                              std::to_string(resp.entries.size()) + " keys)");
  co_return resp;
}

sim::Co<Result<ShardInstallResponse>> KvReplica::HandleShardInstall(
    ShardInstallRequest req) {
  if (syncing_ || role_ != ReplicaRole::kPrimary) {
    co_return UnavailableError("not the primary");
  }
  if (joining_) co_return UnavailableError("snapshot join in progress");
  if (!shard_.sharded() || req.shard >= shard_.num_shards) {
    co_return FailedPreconditionError("group not sharded or shard " +
                                      std::to_string(req.shard) +
                                      " out of range");
  }
  if (req.shard_epoch < shard_.EpochOf(req.shard)) {
    // A duplicate of some older, long-committed move: refuse rather than
    // regress the ownership epoch.
    co_return FailedPreconditionError(
        "install epoch " + std::to_string(req.shard_epoch) + " behind held " +
        std::to_string(shard_.EpochOf(req.shard)));
  }
  // Re-runs repeat identical work: adopt (monotonic), re-apply the same
  // entries, re-mirror — so a retry after a lost ack also repairs any
  // backup that missed the first mirror.
  shard_.Adopt(req.shard, req.shard_epoch);
  shard_.Unfreeze(req.shard);
  // An install replaces the group's slice of the shard wholesale: a key
  // resident here but absent from the snapshot is left over from an
  // older, uncommitted install of the same shard and must not resurrect
  // (it may have been deleted at the group that stayed owner meanwhile).
  std::vector<std::string> stale;
  Result<std::vector<std::string>> held = co_await store_->List("");
  if (!held.ok()) co_return held.status();
  const std::vector<std::string> held_keys = std::move(*held);
  for (const auto& key : held_keys) {
    if (ShardOf(key, shard_.num_shards) != req.shard) continue;
    const bool in_snapshot =
        std::any_of(req.entries.begin(), req.entries.end(),
                    [&](const auto& e) { return e.first == key; });
    if (!in_snapshot) stale.push_back(key);
  }
  inflight_writes_++;
  for (const auto& key : stale) {
    Result<bool> deleted = co_await store_->Del(key);
    if (!deleted.ok()) {
      inflight_writes_--;
      co_return deleted.status();
    }
  }
  if (!req.entries.empty()) {
    Result<rpc::Void> applied = co_await store_->BatchPut(req.entries);
    if (!applied.ok()) {
      inflight_writes_--;
      co_return applied.status();
    }
  }
  const Status mirrored =
      co_await Mirror(req.entries, std::move(stale), obs::TraceContext{});
  inflight_writes_--;
  if (!mirrored.ok()) co_return mirrored;
  context_->spans().Event(context_->scheduler().now(),
                          "rkv " + self_.object.ToString() +
                              " installed shard " + std::to_string(req.shard) +
                              " @ epoch " + std::to_string(req.shard_epoch) +
                              " (" + std::to_string(req.entries.size()) +
                              " keys)");
  co_return ShardInstallResponse{shard_.EpochOf(req.shard)};
}

sim::Co<Result<rpc::Void>> KvReplica::HandleShardRelease(
    ShardReleaseRequest req) {
  if (syncing_ || role_ != ReplicaRole::kPrimary) {
    co_return UnavailableError("not the primary");
  }
  if (joining_) co_return UnavailableError("snapshot join in progress");
  if (!shard_.sharded() || req.shard >= shard_.num_shards) {
    co_return FailedPreconditionError("group not sharded or shard " +
                                      std::to_string(req.shard) +
                                      " out of range");
  }
  if (shard_.Owns(req.shard)) {
    if (req.committed_epoch <= shard_.EpochOf(req.shard)) {
      // No proof the handoff committed — dropping now could lose the only
      // live copy of the shard.
      co_return FailedPreconditionError(
          "release without a newer committed epoch: " +
          std::to_string(req.committed_epoch) + " <= " +
          std::to_string(shard_.EpochOf(req.shard)));
    }
    shard_.Drop(req.shard);
  }
  // Delete whatever of the shard is still held. A retry after a partial
  // failure finds less (or nothing) to delete but still re-mirrors the
  // dropped config. Receivers adopt the config before applying these
  // deletes (HandleReplicateBatch), so no replica ever serves a false
  // "absent" for a key it deleted here.
  std::vector<std::string> deletes;
  Result<std::vector<std::string>> keys = co_await store_->List("");
  if (!keys.ok()) co_return keys.status();
  const std::vector<std::string> held_keys = std::move(*keys);
  for (const auto& key : held_keys) {
    if (ShardOf(key, shard_.num_shards) == req.shard) deletes.push_back(key);
  }
  inflight_writes_++;
  for (const auto& key : deletes) {
    Result<bool> deleted = co_await store_->Del(key);
    if (!deleted.ok()) {
      inflight_writes_--;
      co_return deleted.status();
    }
  }
  const Status mirrored =
      co_await Mirror({}, std::move(deletes), obs::TraceContext{});
  inflight_writes_--;
  if (!mirrored.ok()) co_return mirrored;
  context_->spans().Event(context_->scheduler().now(),
                          "rkv " + self_.object.ToString() +
                              " released shard " + std::to_string(req.shard) +
                              " (committed epoch " +
                              std::to_string(req.committed_epoch) + ")");
  co_return rpc::Void{};
}

sim::Co<Result<rpc::Void>> KvReplica::HandleShardUnfreeze(
    ShardUnfreezeRequest req) {
  if (syncing_ || role_ != ReplicaRole::kPrimary) {
    co_return UnavailableError("not the primary");
  }
  if (joining_) co_return UnavailableError("snapshot join in progress");
  if (shard_.Frozen(req.shard)) {
    shard_.Unfreeze(req.shard);
    const Status mirrored = co_await Mirror({}, {}, obs::TraceContext{});
    if (!mirrored.ok()) co_return mirrored;
  }
  co_return rpc::Void{};
}

// --- replica: watchdog (promotion, rejoin, lease loss) -----------------

sim::Co<void> KvReplica::WatchdogLoop(std::shared_ptr<KvReplica> self) {
  sim::Scheduler& sched = self->context_->scheduler();
  while (!self->stopped_) {
    co_await sim::SleepFor(sched, self->syncing_
                                      ? self->params_.rejoin_interval
                                      : self->params_.watch_interval);
    if (self->stopped_) co_return;
    if (self->context_->crashed()) continue;
    if (self->syncing_) {
      co_await self->TryRejoin();
      continue;
    }
    if (self->role_ == ReplicaRole::kPrimary) {
      if (self->lease_ && self->lease_->lost() &&
          !self->params_.testing_disable_fencing) {
        // Renewal failed repeatedly: the record may have expired and a
        // backup may already own the name. Our data is complete up to
        // our last ack, so serve on as a backup; epoch fencing corrects
        // us if a successor exists.
        self->StepDown(/*resync=*/false);
        continue;
      }
      // Probe configured replicas that fell out of the active set: an
      // evicted replica that never saw its eviction (it was partitioned
      // at the time) learns from the empty announce that it must resync.
      const std::vector<core::ServiceBinding> probe_view =
          self->all_replicas_;
      for (const auto& peer : probe_view) {
        if (self->InActiveSet(peer) || SameObject(peer, self->self_)) {
          continue;
        }
        ReplicateBatchRequest probe;
        probe.epoch = self->epoch_;
        probe.replicas = self->active_;
        probe.shard = self->shard_;
        (void)co_await self->SendBatch(peer, probe, obs::TraceContext{});
        if (self->role_ != ReplicaRole::kPrimary) break;  // deposed mid-probe
      }
      continue;
    }
    co_await self->TryPromote();
  }
}

sim::Co<void> KvReplica::TryPromote() {
  Result<naming::NameRecord> rec =
      co_await context_->names().Lookup(params_.name);
  if (rec.ok() || rec.status().code() != StatusCode::kNotFound) {
    // A primary is registered (possibly our own stale record, which will
    // expire unrenewed), or the name service is unreachable. Wait.
    co_return;
  }
  // The lease lapsed. Before claiming, poll the other replicas. The poll
  // enforces election safety under the crash-stop model (at most one
  // node down at a time):
  //   - a reachable peer under a newer epoch means we were evicted while
  //     cut off — promoting would resurrect stale data, so resync;
  //   - more than one unreachable peer means we cannot tell a partition
  //     from the one allowed crash — someone we cannot see may hold
  //     newer acknowledged writes, so wait;
  //   - with exactly one peer unreachable (presumed crashed) we still
  //     need one reachable *serving* peer as a witness that our data is
  //     current; a syncing peer knows nothing.
  std::size_t unreachable = 0;
  bool serving_witness = false;
  const std::vector<core::ServiceBinding> poll_view = all_replicas_;
  for (const auto& peer : poll_view) {
    if (SameObject(peer, self_)) continue;
    rpc::RpcResult r = co_await context_->client().Call(
        peer.server, peer.object, kvwire::kGetStatus,
        serde::EncodeToBytes(rpc::Void{}), params_.mirror);
    if (!r.ok()) {
      ++unreachable;
      continue;
    }
    Result<StatusResponse> st =
        serde::DecodeFromBytes<StatusResponse>(View(r.payload));
    if (!st.ok()) {
      ++unreachable;
      continue;
    }
    if (st->epoch > epoch_) {
      syncing_ = true;
      co_return;
    }
    if (!st->syncing) serving_witness = true;
  }
  if (unreachable > 1) co_return;
  if (unreachable == 1 && !serving_witness) co_return;
  // Stagger by backup rank so the lowest-ranked live backup claims first.
  std::size_t rank = active_.size();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (SameObject(active_[i], self_)) {
      rank = i;
      break;
    }
  }
  if (rank > 1) {
    co_await sim::SleepFor(context_->scheduler(),
                           static_cast<SimDuration>(rank - 1) *
                               params_.promote_stagger);
  }
  if (stopped_ || context_->crashed() || syncing_ ||
      role_ != ReplicaRole::kBackup) {
    co_return;
  }
  rec = co_await context_->names().Lookup(params_.name);
  if (rec.ok() || rec.status().code() != StatusCode::kNotFound) co_return;

  // Claim the name: first-register-wins arbitration at the name server.
  naming::NameRecord claim;
  claim.kind = naming::RecordKind::kService;
  claim.binding = self_;
  claim.lease_ns = params_.lease.ttl_ns;
  Result<rpc::Void> won = co_await context_->names().Register(
      params_.name, claim, /*overwrite=*/false);
  if (!won.ok()) co_return;  // lost the race, or the name service flaked

  // Promoted. Announce the new epoch to the previous view; peers that do
  // not answer (typically the dead old primary) are evicted.
  promotions_++;
  role_ = ReplicaRole::kPrimary;
  epoch_++;
  std::vector<core::ServiceBinding> view{self_};
  for (const auto& r : active_) {
    if (!SameObject(r, self_)) view.push_back(r);
  }
  active_ = std::move(view);
  PROXY_LOG(kInfo, context_->scheduler().now(), "rkv",
            "replica " << self_.object.ToString() << " promoted to primary"
                       << " at epoch " << epoch_);
  context_->spans().Event(context_->scheduler().now(),
                          "rkv " + self_.object.ToString() +
                              " promoted to primary at epoch " +
                              std::to_string(epoch_));
  ReplicateBatchRequest announce;
  announce.epoch = epoch_;
  announce.replicas = active_;
  announce.shard = shard_;
  // Snapshot before the awaited loops: active_ can be reassigned by a
  // concurrent frame while SendBatch is suspended (see Mirror).
  const std::vector<core::ServiceBinding> announce_view = active_;
  std::vector<core::ServiceBinding> survivors{self_};
  for (const auto& peer : announce_view) {
    if (SameObject(peer, self_)) continue;
    const Status st = co_await SendBatch(peer, announce, obs::TraceContext{});
    if (st.ok()) {
      survivors.push_back(peer);
    } else if (st.code() == StatusCode::kFenced) {
      // Someone is ahead of us after all: undo the claim and resync.
      StepDown(/*resync=*/true);
      co_return;
    }
  }
  if (survivors.size() != announce_view.size()) {
    epoch_++;
    context_->spans().Event(context_->scheduler().now(),
                            "rkv " + self_.object.ToString() +
                                " epoch bump -> " + std::to_string(epoch_) +
                                " (old primary evicted on promote)");
    active_ = survivors;
    announce.epoch = epoch_;
    announce.replicas = active_;
    for (const auto& peer : survivors) {
      if (SameObject(peer, self_)) continue;
      (void)co_await SendBatch(peer, announce, obs::TraceContext{});
    }
  }
  // Keep the name from now on.
  lease_ = std::make_unique<core::LeaseMaintainer>(*context_, params_.name,
                                                   self_, params_.lease);
}

sim::Co<void> KvReplica::TryRejoin() {
  Result<naming::NameRecord> rec =
      co_await context_->names().Lookup(params_.name);
  if (!rec.ok()) {
    if (rec.status().code() == StatusCode::kNotFound &&
        ++rejoin_misses_ >= params_.rescue_after_misses) {
      // No primary to join, repeatedly: the whole group may be deposed
      // (every replica syncing). See whether we are the one to revive it.
      co_await TryRescue();
    }
    co_return;
  }
  rejoin_misses_ = 0;
  if (rec->kind != naming::RecordKind::kService) co_return;
  if (SameObject(rec->binding, self_)) co_return;  // our own stale record

  JoinRequest req;
  req.joiner = self_;
  rpc::RpcResult r = co_await context_->client().Call(
      rec->binding.server, rec->binding.object, kvwire::kJoin,
      serde::EncodeToBytes(req), params_.mirror);
  if (!r.ok()) co_return;
  Result<JoinResponse> resp =
      serde::DecodeFromBytes<JoinResponse>(View(r.payload));
  if (!resp.ok()) co_return;
  if (context_->crashed() || stopped_) co_return;  // crashed mid-join

  const Status installed = store_->RestoreState(View(resp->snapshot));
  if (!installed.ok()) co_return;
  epoch_ = resp->epoch;
  active_ = resp->replicas;
  shard_ = resp->shard;
  role_ = ReplicaRole::kBackup;
  syncing_ = false;
  PROXY_LOG(kInfo, context_->scheduler().now(), "rkv",
            "replica " << self_.object.ToString()
                       << " rejoined at epoch " << epoch_);
  context_->spans().Event(context_->scheduler().now(),
                          "rkv " + self_.object.ToString() +
                              " rejoined at epoch " + std::to_string(epoch_));
}

sim::Co<void> KvReplica::TryRescue() {
  // A crash-wiped replica (epoch 0, empty store) has nothing to offer;
  // it waits for a peer with data to claim. At least one such peer
  // exists in any all-syncing state: the last acknowledged write lives
  // on >= 2 replicas, and a replica only reaches syncing-with-data via
  // fencing/eviction, which preserves its store.
  if (epoch_ == 0) co_return;
  // Every configured peer must be reachable (otherwise wait for the
  // partition to heal: the missing peer may be strictly ahead), must
  // itself be syncing (a serving backup will promote through the normal
  // path), and must not be ahead of us (defer to the most current copy).
  const std::vector<core::ServiceBinding> poll_view = all_replicas_;
  for (const auto& peer : poll_view) {
    if (SameObject(peer, self_)) continue;
    rpc::RpcResult r = co_await context_->client().Call(
        peer.server, peer.object, kvwire::kGetStatus,
        serde::EncodeToBytes(rpc::Void{}), params_.mirror);
    if (!r.ok()) co_return;
    Result<StatusResponse> st =
        serde::DecodeFromBytes<StatusResponse>(View(r.payload));
    if (!st.ok()) co_return;
    if (st->epoch > epoch_) co_return;
    if (!st->syncing) co_return;
  }
  // State may have moved while the polls were parked (a join completed,
  // a crash hit, a peer claimed first).
  if (stopped_ || context_->crashed() || !syncing_ || epoch_ == 0) co_return;
  Result<naming::NameRecord> rec =
      co_await context_->names().Lookup(params_.name);
  if (rec.ok() || rec.status().code() != StatusCode::kNotFound) co_return;

  naming::NameRecord claim;
  claim.kind = naming::RecordKind::kService;
  claim.binding = self_;
  claim.lease_ns = params_.lease.ttl_ns;
  Result<rpc::Void> won = co_await context_->names().Register(
      params_.name, claim, /*overwrite=*/false);
  if (!won.ok()) co_return;  // lost the race: rejoin the winner instead
  if (stopped_ || context_->crashed()) co_return;  // record expires unrenewed

  promotions_++;
  rescues_++;
  role_ = ReplicaRole::kPrimary;
  syncing_ = false;
  rejoin_misses_ = 0;
  epoch_++;
  // Start alone; the peers (all syncing) rejoin through the name we just
  // registered, and writes stay unavailable until one does (the mirror
  // never acknowledges a write this replica alone holds).
  std::vector<core::ServiceBinding> view{self_};
  active_ = std::move(view);
  PROXY_LOG(kInfo, context_->scheduler().now(), "rkv",
            "replica " << self_.object.ToString()
                       << " rescued deposed group as primary at epoch "
                       << epoch_);
  context_->spans().Event(context_->scheduler().now(),
                          "rkv " + self_.object.ToString() +
                              " rescued deposed group at epoch " +
                              std::to_string(epoch_));
  lease_ = std::make_unique<core::LeaseMaintainer>(*context_, params_.name,
                                                   self_, params_.lease);
}

// --- skeleton ----------------------------------------------------------

std::shared_ptr<rpc::Dispatch> MakeReplicatedKvDispatch(
    std::shared_ptr<KvReplica> impl) {
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<GetRequest, GetResponse>(
      *dispatch, kvwire::kGet,
      [impl](GetRequest req,
             const rpc::CallContext&) -> sim::Co<Result<GetResponse>> {
        Result<std::optional<std::string>> value =
            co_await impl->Get(std::move(req.key));
        if (!value.ok()) co_return value.status();
        co_return GetResponse{std::move(*value)};
      });
  rpc::RegisterTyped<PutRequest, rpc::Void>(
      *dispatch, kvwire::kPut,
      [impl](PutRequest req, const rpc::CallContext& ctx) {
        return impl->Put(std::move(req.key), std::move(req.value), ctx.trace);
      });
  rpc::RegisterTyped<DelRequest, DelResponse>(
      *dispatch, kvwire::kDel,
      [impl](DelRequest req,
             const rpc::CallContext& ctx) -> sim::Co<Result<DelResponse>> {
        Result<bool> existed = co_await impl->Del(std::move(req.key),
                                                  ctx.trace);
        if (!existed.ok()) co_return existed.status();
        co_return DelResponse{*existed};
      });
  rpc::RegisterTyped<rpc::Void, SizeResponse>(
      *dispatch, kvwire::kSize,
      [impl](rpc::Void, const rpc::CallContext&)
          -> sim::Co<Result<SizeResponse>> {
        Result<std::uint64_t> size = co_await impl->Size();
        if (!size.ok()) co_return size.status();
        co_return SizeResponse{*size};
      });
  rpc::RegisterTyped<ListRequest, ListResponse>(
      *dispatch, kvwire::kList,
      [impl](ListRequest req,
             const rpc::CallContext&) -> sim::Co<Result<ListResponse>> {
        Result<std::vector<std::string>> keys =
            co_await impl->List(std::move(req.prefix));
        if (!keys.ok()) co_return keys.status();
        co_return ListResponse{std::move(*keys)};
      });
  rpc::RegisterTyped<SubscribeRequest, rpc::Void>(
      *dispatch, kvwire::kSubscribe,
      [impl](SubscribeRequest req,
             const rpc::CallContext&) -> sim::Co<Result<rpc::Void>> {
        const Status st =
            impl->local()->Subscribe(req.sink_server, req.sink_object);
        if (!st.ok()) co_return st;
        co_return rpc::Void{};
      });
  rpc::RegisterTyped<rpc::Void, ReplicaListResponse>(
      *dispatch, kvwire::kGetReplicas,
      [impl](rpc::Void, const rpc::CallContext&) {
        return impl->HandleGetReplicas();
      });
  rpc::RegisterTyped<ReplicateBatchRequest, rpc::Void>(
      *dispatch, kvwire::kReplicateBatch,
      [impl](ReplicateBatchRequest req, const rpc::CallContext&) {
        return impl->HandleReplicateBatch(std::move(req));
      });
  rpc::RegisterTyped<JoinRequest, JoinResponse>(
      *dispatch, kvwire::kJoin,
      [impl](JoinRequest req, const rpc::CallContext&) {
        return impl->HandleJoin(std::move(req));
      });
  rpc::RegisterTyped<rpc::Void, StatusResponse>(
      *dispatch, kvwire::kGetStatus,
      [impl](rpc::Void, const rpc::CallContext&) {
        return impl->HandleGetStatus();
      });
  rpc::RegisterTyped<PutRequest, EpochPutResponse>(
      *dispatch, kvwire::kEpochPut,
      [impl](PutRequest req,
             const rpc::CallContext& ctx) -> sim::Co<Result<EpochPutResponse>> {
        const std::string key = req.key;  // stamps the reply after the move
        std::uint64_t ack_epoch = 0;
        Result<rpc::Void> applied = co_await impl->Put(
            std::move(req.key), std::move(req.value), ctx.trace, &ack_epoch);
        if (!applied.ok()) co_return applied.status();
        co_return EpochPutResponse{ack_epoch, impl->ShardEpochOf(key)};
      });
  rpc::RegisterTyped<DelRequest, EpochDelResponse>(
      *dispatch, kvwire::kEpochDel,
      [impl](DelRequest req,
             const rpc::CallContext& ctx) -> sim::Co<Result<EpochDelResponse>> {
        const std::string key = req.key;
        std::uint64_t ack_epoch = 0;
        Result<bool> existed = co_await impl->Del(std::move(req.key),
                                                  ctx.trace, &ack_epoch);
        if (!existed.ok()) co_return existed.status();
        co_return EpochDelResponse{*existed, ack_epoch,
                                   impl->ShardEpochOf(key)};
      });
  rpc::RegisterTyped<GetRequest, EpochGetResponse>(
      *dispatch, kvwire::kEpochGet,
      [impl](GetRequest req,
             const rpc::CallContext&) -> sim::Co<Result<EpochGetResponse>> {
        const std::string key = req.key;
        Result<std::optional<std::string>> value =
            co_await impl->Get(std::move(req.key));
        if (!value.ok()) co_return value.status();
        co_return EpochGetResponse{std::move(*value), impl->epoch(),
                                   impl->ShardEpochOf(key)};
      });
  rpc::RegisterTyped<ShardFreezeRequest, ShardFreezeResponse>(
      *dispatch, kvwire::kShardFreeze,
      [impl](ShardFreezeRequest req, const rpc::CallContext&) {
        return impl->HandleShardFreeze(req);
      });
  rpc::RegisterTyped<ShardInstallRequest, ShardInstallResponse>(
      *dispatch, kvwire::kShardInstall,
      [impl](ShardInstallRequest req, const rpc::CallContext&) {
        return impl->HandleShardInstall(std::move(req));
      });
  rpc::RegisterTyped<ShardReleaseRequest, rpc::Void>(
      *dispatch, kvwire::kShardRelease,
      [impl](ShardReleaseRequest req, const rpc::CallContext&) {
        return impl->HandleShardRelease(req);
      });
  rpc::RegisterTyped<ShardUnfreezeRequest, rpc::Void>(
      *dispatch, kvwire::kShardUnfreeze,
      [impl](ShardUnfreezeRequest req, const rpc::CallContext&) {
        return impl->HandleShardUnfreeze(req);
      });
  return dispatch;
}

Result<ReplicatedKvExport> ExportReplicatedKv(
    core::Context& primary_ctx, std::vector<core::Context*> backup_ctxs,
    ReplicatedKvParams params) {
  ReplicatedKvExport out;
  std::vector<core::Context*> ctxs{&primary_ctx};
  ctxs.insert(ctxs.end(), backup_ctxs.begin(), backup_ctxs.end());

  std::vector<core::ServiceBinding> bindings;
  for (core::Context* ctx : ctxs) {
    auto impl = std::make_shared<KvReplica>(*ctx, params);
    auto dispatch = MakeReplicatedKvDispatch(impl);
    PROXY_ASSIGN_OR_RETURN(
        auto exported,
        core::ServiceExport<IKeyValue>::Create(*ctx, impl, dispatch,
                                               /*protocol=*/4));
    bindings.push_back(exported.binding());
    out.replicas.push_back(std::move(impl));
  }
  for (std::size_t i = 0; i < out.replicas.size(); ++i) {
    out.replicas[i]->Configure(
        bindings[i], bindings,
        i == 0 ? ReplicaRole::kPrimary : ReplicaRole::kBackup);
  }
  if (!params.name.empty()) {
    for (auto& replica : out.replicas) replica->StartFailover();
  }
  out.primary = out.replicas[0];
  out.binding = bindings[0];
  out.backup_bindings.assign(bindings.begin() + 1, bindings.end());
  out.backup_impls.assign(out.replicas.begin() + 1, out.replicas.end());
  return out;
}

// --- failover proxy ----------------------------------------------------

sim::Co<Status> KvFailoverProxy::EnsureReplicaList(
    bool force, obs::TraceContext trace,
    std::shared_ptr<rpc::AttemptBudget> budget) {
  if (!force && !replicas_.empty()) co_return Status::Ok();
  const std::vector<core::ServiceBinding> known = replicas_;
  if (force) {
    replicas_.clear();
    list_refreshes_++;
    context().spans().Annotate(trace, context().scheduler().now(),
                               "replica list refresh");
  }
  rpc::CallOptions traced = options_;
  traced.trace = trace;
  traced.attempt_budget = std::move(budget);  // share the op's allowance
  // Ask the bound primary first; CallRaw re-resolves the service name if
  // the bound address stopped answering (the new primary re-registers
  // the name when it promotes).
  Result<ReplicaListResponse> resp = FailedPreconditionError("unset");
  Result<Bytes> raw = co_await CallRaw(
      kvwire::kGetReplicas, serde::EncodeToBytes(rpc::Void{}), traced);
  if (raw.ok()) {
    resp = serde::DecodeFromBytes<ReplicaListResponse>(View(*raw));
  } else {
    resp = raw.status();
    // The primary is dark and the name not (yet) re-registered: any
    // replica we already knew about can serve its view of the list.
    for (const auto& replica : known) {
      rpc::RpcResult alt = co_await context().client().Call(
          replica.server, replica.object, kvwire::kGetReplicas,
          serde::EncodeToBytes(rpc::Void{}), traced);
      if (!alt.ok()) continue;
      Result<ReplicaListResponse> decoded =
          serde::DecodeFromBytes<ReplicaListResponse>(View(alt.payload));
      if (decoded.ok()) {
        resp = std::move(decoded);
        break;
      }
    }
  }
  if (!resp.ok()) co_return resp.status();
  if (resp->replicas.empty()) {
    co_return FailedPreconditionError("empty replica list");
  }
  replicas_ = std::move(resp->replicas);
  list_epoch_ = resp->epoch;
  preferred_ = 0;
  co_return Status::Ok();
}

template <typename Resp, typename Req>
sim::Co<Result<Resp>> KvFailoverProxy::ReadCall(std::uint32_t method,
                                                Req req) {
  obs::SpanRecorder& spans = context().spans();
  const obs::TraceContext span =
      spans.Begin(options_.trace, "rkv.read m" + std::to_string(method),
                  context().scheduler().now());
  rpc::CallOptions opts = options_;
  if (span.active()) opts.trace = span;
  opts.attempt_budget = MintOpBudget();  // one allowance across all passes

  Result<Resp> outcome = UnavailableError("no replicas");
  bool done = false;
  const Status ready =
      co_await EnsureReplicaList(false, span, opts.attempt_budget);
  if (!ready.ok()) {
    outcome = ready;
    done = true;
  }
  Bytes args;
  if (!done) args = serde::EncodeToBytes(req);
  Status last = UnavailableError("no replicas");
  for (int pass = 0; pass < 2 && !done; ++pass) {
    for (std::size_t i = 0; i < replicas_.size() && !done; ++i) {
      const std::size_t idx = (preferred_ + i) % replicas_.size();
      const core::ServiceBinding& replica = replicas_[idx];
      rpc::RpcResult raw = co_await context().client().Call(
          replica.server, replica.object, method, args, opts);
      if (raw.ok()) {
        if (idx != preferred_) {
          failovers_++;
          spans.Annotate(span, context().scheduler().now(),
                         "failover -> replica " + std::to_string(idx));
          preferred_ = idx;  // stick with the replica that answered
        }
        outcome = serde::DecodeFromBytes<Resp>(View(raw.payload));
        done = true;
        break;
      }
      // Only liveness failures trigger failover; semantic errors are
      // final.
      if (raw.status.code() != StatusCode::kTimeout &&
          raw.status.code() != StatusCode::kUnavailable) {
        outcome = raw.status;
        done = true;
        break;
      }
      last = raw.status;
    }
    if (!done && pass == 0) {
      // Every cached replica failed: the whole set may have moved on
      // (failover reshuffled it, or our list is from a dead epoch).
      // Re-fetch once and give the fresh set one more chance.
      const Status refreshed =
          co_await EnsureReplicaList(true, span, opts.attempt_budget);
      if (!refreshed.ok()) {
        outcome = last;
        done = true;
      }
    } else if (!done && pass == 1) {
      outcome = last;
    }
  }
  spans.End(span, context().scheduler().now(), outcome.status());
  co_return outcome;
}

template <typename Resp, typename Req>
sim::Co<Result<Resp>> KvFailoverProxy::WriteCall(std::uint32_t method,
                                                 Req req) {
  obs::SpanRecorder& spans = context().spans();
  const obs::TraceContext span =
      spans.Begin(options_.trace, "rkv.write m" + std::to_string(method),
                  context().scheduler().now());
  rpc::CallOptions opts = options_;
  if (span.active()) opts.trace = span;
  opts.attempt_budget = MintOpBudget();  // one allowance across all passes

  const Bytes args = serde::EncodeToBytes(req);
  // If every pass fails, report the FIRST actual write attempt's status:
  // once that attempt times out, the client's circuit breaker to the dead
  // primary opens and later passes fast-fail with UNAVAILABLE ("circuit
  // open"), which would mask the honest diagnosis (e.g. TIMEOUT on a
  // partitioned primary).
  Status verdict = UnavailableError("no replicas");
  bool attempted = false;
  Result<Resp> outcome = UnavailableError("no replicas");
  bool done = false;
  for (int pass = 0; pass < kWritePasses && !done; ++pass) {
    const Status ready =
        co_await EnsureReplicaList(pass > 0, span, opts.attempt_budget);
    if (!ready.ok()) {
      if (!attempted) verdict = ready;
      continue;
    }
    const core::ServiceBinding primary = replicas_[0];
    rpc::RpcResult raw = co_await context().client().Call(
        primary.server, primary.object, method, args, opts);
    if (raw.ok()) {
      last_write_acker_ = primary.object;
      outcome = serde::DecodeFromBytes<Resp>(View(raw.payload));
      done = true;
      break;
    }
    const StatusCode code = raw.status.code();
    // FENCED means our primary is deposed; UNAVAILABLE/TIMEOUT may mean
    // the same (a backup refusing writes, a dead node). All three:
    // refresh the list and follow the new primary.
    if (code != StatusCode::kTimeout && code != StatusCode::kUnavailable &&
        code != StatusCode::kFenced) {
      outcome = raw.status;
      done = true;
      break;
    }
    if (code == StatusCode::kFenced) {
      spans.Annotate(span, context().scheduler().now(),
                     "primary fenced; following the new epoch");
    }
    if (!attempted) {
      verdict = raw.status;
      attempted = true;
    }
  }
  if (!done) outcome = verdict;
  spans.End(span, context().scheduler().now(), outcome.status());
  co_return outcome;
}

sim::Co<Result<std::optional<std::string>>> KvFailoverProxy::Get(
    std::string key) {
  GetRequest req{std::move(key)};  // named: see stub.h "GCC note"
  Result<EpochGetResponse> resp =
      co_await ReadCall<EpochGetResponse>(kvwire::kEpochGet, std::move(req));
  if (!resp.ok()) co_return resp.status();
  last_op_epoch_ = resp->epoch;
  last_op_shard_epoch_ = resp->shard_epoch;
  co_return std::move(resp->value);
}

sim::Co<Result<std::vector<std::string>>> KvFailoverProxy::List(
    std::string prefix) {
  ListRequest req{std::move(prefix)};  // named: see stub.h "GCC note"
  Result<ListResponse> resp =
      co_await ReadCall<ListResponse>(kvwire::kList, std::move(req));
  if (!resp.ok()) co_return resp.status();
  co_return std::move(resp->keys);
}

sim::Co<Result<std::uint64_t>> KvFailoverProxy::Size() {
  Result<SizeResponse> resp =
      co_await ReadCall<SizeResponse>(kvwire::kSize, rpc::Void{});
  if (!resp.ok()) co_return resp.status();
  co_return resp->size;
}

sim::Co<Result<rpc::Void>> KvFailoverProxy::Put(std::string key,
                                                std::string value) {
  PutRequest req{std::move(key), std::move(value), ObjectId{}};
  Result<EpochPutResponse> resp =
      co_await WriteCall<EpochPutResponse>(kvwire::kEpochPut, std::move(req));
  if (!resp.ok()) co_return resp.status();
  last_op_epoch_ = resp->epoch;
  last_op_shard_epoch_ = resp->shard_epoch;
  co_return rpc::Void{};
}

sim::Co<Result<bool>> KvFailoverProxy::Del(std::string key) {
  DelRequest req{std::move(key), ObjectId{}};
  Result<EpochDelResponse> resp =
      co_await WriteCall<EpochDelResponse>(kvwire::kEpochDel, std::move(req));
  if (!resp.ok()) co_return resp.status();
  last_op_epoch_ = resp->epoch;
  last_op_shard_epoch_ = resp->shard_epoch;
  co_return resp->existed;
}

void RegisterReplicatedKvFactories() {
  const InterfaceId iface = InterfaceIdOf(IKeyValue::kInterfaceName);
  auto& proxies = core::ProxyFactoryRegistry::Instance();
  if (!proxies.Has(iface, 4)) {
    (void)proxies.Register(
        iface, 4, [](core::Context& ctx, const core::ServiceBinding& b) {
          return std::static_pointer_cast<void>(
              std::static_pointer_cast<IKeyValue>(
                  std::make_shared<KvFailoverProxy>(ctx, b)));
        });
  }
}

}  // namespace proxy::services
