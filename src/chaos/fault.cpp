#include "chaos/fault.h"

#include <algorithm>
#include <sstream>

#include "common/rng.h"

namespace proxy::chaos {

std::string FaultEvent::ToString() const {
  std::ostringstream out;
  out << FormatDuration(at) << " ";
  switch (kind) {
    case FaultKind::kPartition:
      out << "partition n" << a << "<->n" << b << " for "
          << FormatDuration(duration);
      break;
    case FaultKind::kIsolate:
      out << "isolate n" << a << " for " << FormatDuration(duration);
      break;
    case FaultKind::kPause:
      out << "pause n" << a << " for " << FormatDuration(duration);
      break;
    case FaultKind::kLossBurst:
      out << "loss n" << a << "<->n" << b << " p=" << loss << " for "
          << FormatDuration(duration);
      break;
    case FaultKind::kJitterBurst:
      out << "jitter n" << a << "<->n" << b << " +" << FormatDuration(jitter)
          << " for " << FormatDuration(duration);
      break;
    case FaultKind::kLinkChurn:
      out << "churn n" << a << "<->n" << b << " latency="
          << FormatDuration(latency) << " jitter=" << FormatDuration(jitter);
      break;
    case FaultKind::kSpoofBurst:
      out << "spoof-burst at client " << a;
      break;
    case FaultKind::kCrashRestart:
      out << "crash n" << a << " for " << FormatDuration(duration);
      break;
  }
  return out.str();
}

std::vector<FaultEvent> GenerateSchedule(std::uint64_t seed,
                                         std::uint32_t node_count,
                                         std::uint32_t client_count,
                                         const AdversaryParams& params) {
  std::vector<FaultEvent> schedule;
  if (node_count < 2) return schedule;
  Rng rng(SplitMix64(seed ^ 0xadf0cafeULL).Next());

  SimTime t = 0;
  for (;;) {
    // Episode onsets arrive with a mean gap; +1 keeps time advancing.
    t += rng.UniformU64(2 * params.mean_gap) + 1;
    if (t >= params.horizon) break;

    FaultEvent ev;
    ev.at = t;
    // Episodes never outlive the horizon: the post-horizon world is
    // healed by construction, which is what the recovery invariants
    // (breaker re-close, final availability) quantify over.
    const SimDuration max_len =
        std::min<SimDuration>(params.max_fault_len, params.horizon - t);
    ev.duration = rng.UniformU64(max_len) + 1;
    ev.a = static_cast<std::uint32_t>(rng.UniformU64(node_count));
    do {
      ev.b = static_cast<std::uint32_t>(rng.UniformU64(node_count));
    } while (ev.b == ev.a);

    std::uint64_t roll = rng.UniformU64(100);
    if (roll >= 90 && (!params.spoof || client_count == 0)) {
      roll = 40;  // redistribute the spoof share onto loss bursts
    }
    if (roll < 20) {
      ev.kind = FaultKind::kPartition;
    } else if (roll < 30) {
      ev.kind = FaultKind::kIsolate;
    } else if (roll < 40) {
      ev.kind = FaultKind::kPause;
    } else if (roll < 65) {
      ev.kind = FaultKind::kLossBurst;
      ev.loss = 0.3 + (params.max_loss - 0.3) * rng.UniformDouble();
    } else if (roll < 80) {
      ev.kind = FaultKind::kJitterBurst;
      ev.jitter = rng.UniformU64(params.max_extra_jitter) + 1;
    } else if (roll < 90) {
      ev.kind = FaultKind::kLinkChurn;
      ev.duration = 0;
      ev.latency = Microseconds(20) + rng.UniformU64(Microseconds(980));
      ev.jitter = rng.UniformU64(params.max_extra_jitter + 1);
    } else {
      ev.kind = FaultKind::kSpoofBurst;
      ev.duration = 0;
      ev.a = static_cast<std::uint32_t>(rng.UniformU64(client_count));
      ev.b = 0;
    }
    schedule.push_back(ev);
  }

  // Crash-restart episodes run on their own timeline, drawn from a
  // separate stream so adding/removing them never perturbs the link
  // faults of the same seed. Sequential generation makes them
  // non-overlapping by construction (see AdversaryParams::crash_targets).
  if (!params.crash_targets.empty()) {
    Rng crash_rng(SplitMix64(seed ^ 0xc4a54e57ULL).Next());
    SimTime ct = 0;
    for (;;) {
      ct += crash_rng.UniformU64(2 * params.mean_crash_gap) + 1;
      if (ct >= params.horizon) break;
      FaultEvent ev;
      ev.at = ct;
      ev.kind = FaultKind::kCrashRestart;
      ev.a = params.crash_targets[crash_rng.UniformU64(
          params.crash_targets.size())];
      const SimDuration max_len =
          std::min<SimDuration>(params.max_crash_len, params.horizon - ct);
      ev.duration = crash_rng.UniformU64(max_len) + 1;
      schedule.push_back(ev);
      ct += ev.duration;  // the next crash starts after this restart
    }
  }
  return schedule;
}

}  // namespace proxy::chaos
