// The adversary: applies a fault schedule to a running world.
//
// Arm() posts every episode's onset on the scheduler; each onset applies
// its perturbation (through the Network's injection hooks) and schedules
// its own restore. HealAll() force-undoes whatever is still active —
// the harness calls it after the horizon so recovery invariants are
// checked against a genuinely healed network.
//
// The ReplySpoofer is the adversary's accomplice for the reply-
// authentication invariant: from a rogue node it forges well-formed RPC
// replies carrying the *real* client nonce (a white-box attacker) and a
// sweep of plausible sequence numbers. With reply authentication on,
// every forgery must bounce off the from-address check; with it off (the
// deliberately reintroduced PR-1 bug) a forgery completes a pending call
// with a poisoned value and the history checkers light up.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "chaos/fault.h"
#include "chaos/trace.h"
#include "core/runtime.h"
#include "net/endpoint.h"

namespace proxy::chaos {

class ReplySpoofer {
 public:
  struct Target {
    net::Address client;       // the victim client's RPC endpoint
    std::uint64_t nonce = 0;   // its (known to a white-box attacker) nonce
  };

  /// Poison value carried by forged counter replies: far outside any
  /// reachable counter value, so a completed forgery is unmissable.
  static constexpr std::int64_t kPoisonValue = 1LL << 42;

  /// Sequence numbers swept per burst, from 1 upward. Covers every call
  /// a workload client issues in one run.
  static constexpr std::uint64_t kSeqSweep = 768;

  explicit ReplySpoofer(net::Endpoint& endpoint) : endpoint_(&endpoint) {}

  void SetTargets(std::vector<Target> targets) {
    targets_ = std::move(targets);
  }

  /// Forges kSeqSweep replies at `targets_[client_index]`.
  void Burst(std::uint32_t client_index);

  [[nodiscard]] std::uint64_t forged() const noexcept { return forged_; }

 private:
  net::Endpoint* endpoint_;
  std::vector<Target> targets_;
  std::uint64_t forged_ = 0;
};

class Adversary {
 public:
  /// `spoofer` may be null (spoof events are then skipped).
  Adversary(core::Runtime& runtime, TraceRecorder& trace,
            ReplySpoofer* spoofer, std::vector<FaultEvent> schedule);

  Adversary(const Adversary&) = delete;
  Adversary& operator=(const Adversary&) = delete;

  /// Posts every episode onset. Call once, before driving the sim.
  void Arm();

  /// Undoes every still-active episode and clears every partition and
  /// pause, restoring a fully connected world. Loss/jitter bursts are
  /// restored to their pre-burst parameters; permanent churn stays (it
  /// only retunes performance, not connectivity).
  void HealAll();

  [[nodiscard]] const std::vector<FaultEvent>& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] std::size_t applied() const noexcept { return applied_; }

 private:
  void Apply(const FaultEvent& ev);
  /// Registers an undo closure and schedules it to run (once) after
  /// `duration`; HealAll runs whatever has not fired yet.
  void ScheduleRestore(SimDuration duration, std::function<void()> undo);

  core::Runtime* runtime_;
  TraceRecorder* trace_;
  ReplySpoofer* spoofer_;
  std::vector<FaultEvent> schedule_;
  std::size_t applied_ = 0;
  std::uint64_t next_undo_ = 0;
  std::map<std::uint64_t, std::function<void()>> active_undos_;
};

}  // namespace proxy::chaos
