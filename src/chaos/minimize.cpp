#include "chaos/minimize.h"

#include <algorithm>
#include <utility>

namespace proxy::chaos {

namespace {

/// Does this subset still break the invariant under investigation?
bool StillFails(ChaosOptions& options, const std::vector<FaultEvent>& subset,
                const std::string& invariant, ChaosReport& out) {
  options.schedule = subset;
  ChaosReport report = RunChaos(options);
  const bool hit = std::any_of(
      report.violations.begin(), report.violations.end(),
      [&invariant](const Violation& v) { return v.invariant == invariant; });
  if (hit) out = std::move(report);
  return hit;
}

}  // namespace

MinimizeResult MinimizeSchedule(ChaosOptions options,
                                std::vector<FaultEvent> schedule,
                                const std::string& invariant,
                                std::size_t max_runs) {
  MinimizeResult result;
  result.invariant = invariant;

  // Baseline: the full schedule must fail, or there is nothing to shrink.
  if (!StillFails(options, schedule, invariant, result.report)) {
    ++result.runs;
    result.schedule = std::move(schedule);
    return result;
  }
  ++result.runs;

  // ddmin: split into n chunks, try each complement (schedule minus one
  // chunk); on success restart at coarse granularity over the smaller
  // schedule, otherwise refine until chunks are single events.
  std::size_t n = 2;
  while (schedule.size() >= 2 && n <= schedule.size() &&
         result.runs < max_runs) {
    const std::size_t chunk = (schedule.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0;
         start < schedule.size() && result.runs < max_runs; start += chunk) {
      std::vector<FaultEvent> complement;
      complement.reserve(schedule.size());
      for (std::size_t i = 0; i < schedule.size(); ++i) {
        if (i < start || i >= start + chunk) complement.push_back(schedule[i]);
      }
      if (complement.empty()) continue;
      ++result.runs;
      if (StillFails(options, complement, invariant, result.report)) {
        schedule = std::move(complement);
        n = std::max<std::size_t>(n - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= schedule.size()) {
        result.converged = true;
        break;
      }
      n = std::min(n * 2, schedule.size());
    }
  }
  if (schedule.size() <= 1) result.converged = true;
  result.schedule = std::move(schedule);
  return result;
}

}  // namespace proxy::chaos
