#include "chaos/harness.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "chaos/adversary.h"
#include "chaos/trace.h"
#include "common/rng.h"
#include "core/export.h"
#include "core/runtime.h"
#include "net/reliable.h"
#include "services/counter.h"
#include "services/kv.h"
#include "services/lock.h"
#include "services/register_all.h"
#include "services/replicated_kv.h"
#include "services/shard_map.h"
#include "services/shard_router.h"
#include "sim/future.h"
#include "sim/task.h"

namespace proxy::chaos {

namespace {

constexpr SimDuration kArqSendGap = Milliseconds(2);
constexpr SimDuration kSettle = Milliseconds(300);
constexpr SimDuration kRecloseGap = Milliseconds(250);
constexpr int kRecloseAttempts = 40;

Bytes EncodeSeq(std::uint64_t seq) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return out;
}

std::uint64_t DecodeSeq(const Bytes& payload) {
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    seq |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  }
  return seq;
}

void Append(std::vector<Violation>& into, std::vector<Violation> more) {
  for (Violation& v : more) into.push_back(std::move(v));
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::ostringstream out;
  out << "seed=" << seed << " fp=" << std::hex << fingerprint << std::dec
      << " events=" << trace_events << " faults=" << faults_applied << "/"
      << schedule.size() << " ops=" << history_ops
      << " ctr=" << final_counter << " forged=" << forged_replies
      << " rejected=" << spoofed_rejected << " arq=" << arq_delivered
      << " promotions=" << kv_promotions << " epoch=" << kv_max_epoch
      << " fenced=" << kv_fenced;
  if (sharded) {
    out << " mapv=" << shard_map_version << " moves=" << shard_moves_ok
        << " movefail=" << shard_move_failures
        << " wrongshard=" << wrong_shard_rejections
        << " reroutes=" << wrong_shard_retries
        << " wiped=" << wiped_groups;
  }
  if (overload) {
    out << " ovl=" << overload_ok << "/" << overload_offered
        << " shed=" << overload_shed << " rejected=" << overload_rejected
        << " evicted=" << overload_evicted
        << " qshed=" << overload_deadline_shed
        << " qpeak=" << overload_queue_peak
        << " retrans=" << overload_retransmissions;
  }
  out << " violations=" << violations.size();
  for (const Violation& v : violations) out << "\n  " << v.ToString();
  return out.str();
}

ChaosReport RunChaos(const ChaosOptions& options) {
  services::RegisterAllServices();

  ChaosReport report;
  report.seed = options.seed;

  // The recorder outlives the Runtime (reverse destruction order): the
  // scheduler/network hooks it installs stay valid to the last event.
  TraceRecorder trace(options.trace_tail);

  core::Runtime::Params params;
  params.seed = options.seed;
  core::Runtime rt(params);
  if (options.collect_spans) rt.spans().set_enabled(true);
  sim::Scheduler& sched = rt.scheduler();
  trace.Attach(sched, rt.network());

  // --- topology ---
  const NodeId ns_node = rt.AddNode("ns");
  const NodeId srv_a_node = rt.AddNode("srv-a");  // counter + lock
  const NodeId srv_b_node = rt.AddNode("srv-b");  // kv primary (g0 sharded)
  const NodeId srv_c_node = rt.AddNode("srv-c");  // kv backup
  const NodeId srv_d_node = rt.AddNode("srv-d");  // kv backup
  // Sharded runs: a second 3-replica group. The shard map service rides
  // srv-a, which never crashes (like the name service, it is the
  // configuration plane, not the data plane under test).
  std::vector<NodeId> g1_nodes;
  if (options.sharded) {
    g1_nodes.push_back(rt.AddNode("srv-e"));
    g1_nodes.push_back(rt.AddNode("srv-f"));
    g1_nodes.push_back(rt.AddNode("srv-g"));
  }
  std::vector<NodeId> client_nodes;
  for (std::uint32_t i = 0; i < options.workload.clients; ++i) {
    client_nodes.push_back(rt.AddNode("client-" + std::to_string(i)));
  }
  const NodeId rogue_node = rt.AddNode("rogue");
  const NodeId arq_src_node = rt.AddNode("arq-src");
  const NodeId arq_dst_node = rt.AddNode("arq-dst");
  // Overload world: a dedicated throttled server plus one client node
  // per priority class. Disjoint from the main topology — the lanes
  // stress admission control without perturbing the other invariants'
  // workloads (beyond sharing the fault schedule's link faults, which is
  // the point: overload + partitions compose).
  std::optional<NodeId> ovl_srv_node;
  std::vector<NodeId> ovl_client_nodes;
  if (options.overload) {
    ovl_srv_node = rt.AddNode("ovl-srv");
    for (std::uint32_t i = 0; i < rpc::kPriorityLevels; ++i) {
      ovl_client_nodes.push_back(rt.AddNode("ovl-client-" + std::to_string(i)));
    }
  }
  const auto node_count = static_cast<std::uint32_t>(rt.network().node_count());

  rt.StartNameService(ns_node);
  core::Context& srv_a = rt.CreateContext(srv_a_node, "srv-a");
  core::Context& srv_b = rt.CreateContext(srv_b_node, "srv-b");
  core::Context& srv_c = rt.CreateContext(srv_c_node, "srv-c");
  core::Context& srv_d = rt.CreateContext(srv_d_node, "srv-d");
  std::vector<core::Context*> g1_ctxs;
  if (options.sharded) {
    g1_ctxs.push_back(&rt.CreateContext(g1_nodes[0], "srv-e"));
    g1_ctxs.push_back(&rt.CreateContext(g1_nodes[1], "srv-f"));
    g1_ctxs.push_back(&rt.CreateContext(g1_nodes[2], "srv-g"));
  }

  Result<services::CounterExport> ctr =
      services::ExportCounterService(srv_a, /*protocol=*/1, /*initial=*/0);
  Result<services::LockExport> lock = services::ExportLockService(srv_a);

  // The KV is a 3-way replicated group with automatic failover under the
  // name "chaos/kv": the primary's lease maintainer owns the name record,
  // and the chaos-tuned timers keep promotion well inside a crash episode.
  services::ReplicatedKvParams rparams;
  rparams.name = "chaos/kv";
  // Failure detection + promotion must fit inside a link-fault episode
  // (max_fault_len, 150ms): a partition or isolation that cuts the
  // primary off from the name service long enough deposes it while it is
  // still alive and client-reachable — the stale-primary scenario epoch
  // fencing exists for. With a 150ms TTL nothing but a crash (250ms)
  // ever promoted, and fencing went unexercised.
  rparams.lease.ttl_ns = Milliseconds(60);
  rparams.lease.renew_fraction = 0.4;
  rparams.lease.max_consecutive_failures = 2;
  rparams.watch_interval = Milliseconds(20);
  rparams.promote_stagger = Milliseconds(10);
  rparams.rejoin_interval = Milliseconds(30);
  rparams.mirror.retry_interval = Milliseconds(6);
  rparams.mirror.max_retries = 2;
  rparams.mirror.deadline = Milliseconds(40);
  rparams.testing_disable_fencing = options.bug == Bug::kStalePrimary;
  rparams.testing_disable_shard_fencing = options.bug == Bug::kStaleShardMap;
  // Sharded runs put two such groups behind the routing binding; either
  // way the clients below Acquire the same "chaos/kv" name and speak
  // plain IKeyValue — the deployment shape is invisible to them.
  constexpr std::uint32_t kNumShards = 8;
  std::optional<services::ReplicatedKvExport> kv;
  std::optional<services::ShardedKvExport> skv;
  if (options.sharded) {
    services::ShardedKvParams sparams;
    sparams.name = "chaos/kv";
    sparams.num_shards = kNumShards;
    sparams.group = rparams;
    std::vector<std::vector<core::Context*>> group_ctxs;
    group_ctxs.push_back({&srv_b, &srv_c, &srv_d});
    group_ctxs.push_back(g1_ctxs);
    auto export_sharded = [&]() -> sim::Co<void> {
      Result<services::ShardedKvExport> exported =
          co_await services::ExportShardedKv(srv_a, std::move(group_ctxs),
                                             std::move(sparams));
      if (exported.ok()) skv = std::move(*exported);
    };
    rt.Run(export_sharded());
  } else {
    Result<services::ReplicatedKvExport> exported =
        services::ExportReplicatedKv(srv_b, {&srv_c, &srv_d}, rparams);
    if (exported.ok()) kv = std::move(*exported);
  }
  if (!ctr.ok() || !lock.ok() ||
      (options.sharded ? !skv.has_value() : !kv.has_value())) {
    report.violations.push_back({"harness-setup", "service export failed"});
    return report;
  }

  bool setup_ok = true;
  auto publish = [&]() -> sim::Co<void> {
    Result<rpc::Void> a = co_await srv_a.names().RegisterService(
        "chaos/ctr", ctr->binding);
    Result<rpc::Void> b = co_await srv_a.names().RegisterService(
        "chaos/lock", lock->binding);
    setup_ok = a.ok() && b.ok();
  };
  rt.Run(publish());
  // "chaos/kv" is registered by the primary's lease heartbeat, not here;
  // give it a beat to land before the clients bind through the name.
  sched.RunFor(Milliseconds(20));

  // --- workload clients ---
  std::vector<std::unique_ptr<WorkloadClient>> clients;
  for (std::uint32_t i = 0; i < options.workload.clients; ++i) {
    core::Context& ctx =
        rt.CreateContext(client_nodes[i], "client-" + std::to_string(i));
    if (options.bug == Bug::kReplyAuth) {
      ctx.client().set_testing_reply_auth(false);
    }
    clients.push_back(
        std::make_unique<WorkloadClient>(ctx, i, options.seed));
  }

  auto bind_all = [&]() -> sim::Co<void> {
    for (auto& client : clients) {
      Result<rpc::Void> bound = co_await client->BindAll(options.workload);
      if (!bound.ok()) setup_ok = false;
    }
  };
  rt.Run(bind_all());
  if (!setup_ok) {
    report.violations.push_back(
        {"harness-setup", "publish or pre-chaos bind failed"});
    return report;
  }

  // --- overload world: throttled server + one open-loop lane per
  // priority class ---
  // Capacity model: max_concurrency / service_time = 4 / 1ms = 4000
  // ops/s; three lanes at 2000/s each offer 1.5x that, so the admission
  // queue is permanently past its knee while the lanes run. The
  // admission log feeds CheckAdmission; the lanes' history feeds
  // CheckShedNotExecuted; the lane clients' counters feed
  // CheckRetryAmplification.
  constexpr std::size_t kOvlMaxConcurrency = 4;
  constexpr std::size_t kOvlQueueCapacity = 16;
  constexpr SimDuration kOvlServiceTime = Milliseconds(1);
  struct OvlLane {
    core::Context* ctx = nullptr;
    std::unique_ptr<services::KvStub> proxy;
    OpenLoopParams params;
    OpenLoopStats stats;
  };
  std::vector<rpc::AdmissionEvent> admission_log;
  std::shared_ptr<services::KvService> ovl_impl;
  core::Context* ovl_srv = nullptr;
  std::vector<OvlLane> lanes;
  History ovl_history;
  if (options.overload) {
    ovl_srv = &rt.CreateContext(*ovl_srv_node, "ovl-srv");
    ovl_impl = std::make_shared<services::KvService>(*ovl_srv);
    const ObjectId ovl_id = ovl_srv->MintObjectId();
    const Status exported = ovl_srv->server().ExportObject(
        ovl_id, MakeThrottledKvDispatch(ovl_impl, sched, kOvlServiceTime));
    if (!exported.ok()) {
      report.violations.push_back(
          {"harness-setup", "overload server export failed"});
      return report;
    }
    ovl_srv->server().set_admission(kOvlMaxConcurrency, kOvlQueueCapacity,
                                    Milliseconds(5));
    ovl_srv->server().set_admission_log(&admission_log);
    core::ServiceBinding ovl_binding;
    ovl_binding.server = ovl_srv->server_address();
    ovl_binding.object = ovl_id;
    ovl_binding.interface =
        InterfaceIdOf(services::IKeyValue::kInterfaceName);
    ovl_binding.protocol = 1;
    lanes.resize(rpc::kPriorityLevels);
    for (std::uint32_t i = 0; i < rpc::kPriorityLevels; ++i) {
      OvlLane& lane = lanes[i];
      lane.ctx = &rt.CreateContext(ovl_client_nodes[i],
                                   "ovl-client-" + std::to_string(i));
      if (options.bug == Bug::kRetryStorm) {
        lane.ctx->client().set_testing_retry_governors(false);
      }
      lane.proxy =
          std::make_unique<services::KvStub>(*lane.ctx, ovl_binding);
      rpc::CallOptions call;
      call.deadline = Milliseconds(60);
      call.retry_interval = Milliseconds(5);
      call.max_retries = 16;
      call.priority = static_cast<rpc::Priority>(i);
      lane.proxy->set_call_options(call);
      lane.params.rate_per_sec = 2000.0;
      lane.params.duration = Milliseconds(400);
      lane.params.seed = options.seed ^ (0x07E10ADULL + i);
      lane.params.priority = static_cast<rpc::Priority>(i);
      lane.params.value_tag = "ovl" + std::to_string(i);
      // Shared key space across the lanes: a shed P2 write must stay
      // invisible to P0 readers too, and the checker can see that.
      lane.params.key_prefix = "ov";
    }
  }

  // --- ARQ probe stream (covers the ordered-transport invariant) ---
  net::Endpoint* arq_src = rt.stack(arq_src_node).OpenEphemeral();
  net::Endpoint* arq_dst = rt.stack(arq_dst_node).OpenEphemeral();
  net::ArqParams arq_params;
  arq_params.probe_interval = Milliseconds(20);
  net::ReliableChannel arq_tx(*arq_src, arq_params);
  net::ReliableChannel arq_rx(*arq_dst, arq_params);
  std::vector<std::uint64_t> arq_received;
  arq_rx.SetHandler([&arq_received](const net::Address&, Bytes payload) {
    if (payload.size() == 8) arq_received.push_back(DecodeSeq(payload));
  });
  const net::Address arq_dst_addr = arq_dst->address();
  const SimDuration horizon = options.adversary.horizon;
  auto arq_pump = [&]() -> sim::Co<void> {
    std::uint64_t next = 1;
    while (sched.now() < horizon) {
      // A refused send (peer declared failed, queue full) skips the
      // sequence number: the receiver sees a gap, never a regression.
      (void)arq_tx.Send(arq_dst_addr, EncodeSeq(next));
      ++next;
      co_await sim::SleepFor(sched, kArqSendGap);
    }
  };
  sim::Future<bool> arq_done = sim::Spawn(sched, arq_pump());

  // --- adversary ---
  net::Endpoint* rogue = rt.stack(rogue_node).OpenEphemeral();
  ReplySpoofer spoofer(*rogue);
  {
    std::vector<ReplySpoofer::Target> targets;
    for (auto& client : clients) {
      rpc::RpcClient& rpc = client->context().client();
      targets.push_back({rpc.address(), rpc.nonce()});
    }
    spoofer.SetTargets(std::move(targets));
  }

  // Crash-restart targets default to the replica nodes (never the name
  // service); a caller-supplied list wins.
  AdversaryParams adversary_params = options.adversary;
  if (adversary_params.crash_targets.empty()) {
    adversary_params.crash_targets = {srv_b_node.value(), srv_c_node.value(),
                                      srv_d_node.value()};
    for (const NodeId node : g1_nodes) {
      adversary_params.crash_targets.push_back(node.value());
    }
  }
  std::vector<FaultEvent> schedule =
      options.schedule.has_value()
          ? *options.schedule
          : GenerateSchedule(options.seed, node_count,
                             options.workload.clients, adversary_params);
  Adversary adversary(rt, trace, &spoofer, std::move(schedule));
  adversary.Arm();

  // --- sharded runs: online migrations race the workload ---
  // The move plan is seed-pure; the rebalancer walks it while clients
  // keep writing, so every handoff step can collide with the schedule's
  // crashes and partitions. Failed moves are re-run to completion after
  // heal-all (MigrateShard is its own recovery procedure).
  std::unique_ptr<services::ShardRebalancer> rebalancer;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> moves;
  if (options.sharded) {
    services::ShardRebalancerParams rb;
    rb.step_attempts = 4;
    rb.step_pause = Milliseconds(15);
    rb.call.retry_interval = Milliseconds(8);
    rb.call.max_retries = 2;
    rb.call.deadline = Milliseconds(60);
    rebalancer =
        std::make_unique<services::ShardRebalancer>(srv_a, skv->binding, rb);
    Rng move_rng(SplitMix64(options.seed ^ 0x5a4d5a4dULL).Next());
    const auto group_count =
        static_cast<std::uint32_t>(skv->group_names.size());
    for (std::uint32_t m = 0; m < options.shard_moves; ++m) {
      moves.emplace_back(
          static_cast<std::uint32_t>(move_rng.UniformU64(kNumShards)),
          static_cast<std::uint32_t>(move_rng.UniformU64(group_count)));
    }
  }
  auto migration_driver = [&]() -> sim::Co<void> {
    Rng gap_rng(SplitMix64(options.seed ^ 0x3a9e3a9eULL).Next());
    for (std::size_t i = 0; i < moves.size(); ++i) {
      co_await sim::SleepFor(
          sched, Milliseconds(60) + gap_rng.UniformU64(Milliseconds(220)));
      const Status moved =
          co_await rebalancer->MigrateShard(moves[i].first, moves[i].second);
      trace.Note(sched.now(),
                 "migrate shard " + std::to_string(moves[i].first) + " -> g" +
                     std::to_string(moves[i].second) +
                     (moved.ok() ? " ok" : " failed: " + moved.ToString()));
    }
  };

  // --- drive: workload through the fault window ---
  History history;
  std::vector<sim::Future<bool>> runs;
  for (auto& client : clients) {
    runs.push_back(
        sim::Spawn(sched, client->Run(options.workload, history)));
  }
  // The overload lanes run concurrently with the fault window: admission
  // control must hold its invariants while the schedule partitions and
  // crashes the rest of the world around it.
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    runs.push_back(sim::Spawn(
        sched, RunOpenLoop(sched, *lanes[i].proxy, lanes[i].params,
                           lanes[i].stats, &ovl_history,
                           static_cast<std::uint32_t>(1000 + i))));
  }
  std::optional<sim::Future<bool>> migrations_done;
  if (options.sharded) {
    migrations_done = sim::Spawn(sched, migration_driver());
  }
  sched.RunUntil([&runs, &migrations_done] {
    return std::all_of(runs.begin(), runs.end(),
                       [](const sim::Future<bool>& f) { return f.ready(); }) &&
           (!migrations_done.has_value() || migrations_done->ready());
  });
  // Let the rest of the fault window elapse (a fast workload can finish
  // before the last scheduled onsets; their restores must still fire).
  if (sched.now() < horizon) sched.RunFor(horizon - sched.now());
  sched.RunUntil([&arq_done] { return arq_done.ready(); });

  adversary.HealAll();
  trace.Note(sched.now(), "heal-complete; settling");
  sched.RunFor(kSettle);

  // --- sharded recovery: finish every interrupted move ---
  // A move that died mid-handoff (crashed source or destination primary,
  // lost commit ack, unreachable map) left a frozen or doubly-resident
  // shard behind; re-running the same move is the designed recovery path
  // and must converge now that the network is healed.
  //
  // Exception: a group whose every replica is crash-wiped (syncing at
  // epoch 0) can hold no state and can never elect a primary — the
  // schedule sequentially destroyed all copies, which volatile
  // crash-stop storage cannot survive by any protocol. That is a
  // fault-model limit, not a protocol bug: recovery and the residency
  // sweep exempt the group, loudly, while every history invariant stays
  // fully enforced.
  std::vector<bool> group_wiped;
  bool any_wiped = false;
  if (options.sharded) {
    for (std::size_t g = 0; g < skv->groups.size(); ++g) {
      bool wiped = true;
      for (const auto& replica : skv->groups[g].replicas) {
        if (!(replica->syncing() && replica->epoch() == 0)) {
          wiped = false;
          break;
        }
      }
      group_wiped.push_back(wiped);
      if (wiped) {
        any_wiped = true;
        report.wiped_groups++;
        trace.Note(sched.now(),
                   "group " + skv->group_names[g] +
                       " crash-wiped (every replica syncing at epoch 0); "
                       "exempting it from move recovery and the residency "
                       "sweep");
      }
    }
  }
  if (options.sharded && any_wiped) {
    // Every move's freeze/install/release touches both groups; none can
    // complete against a group that no longer exists.
    trace.Note(sched.now(), "skipping move recovery: wiped group present");
  }
  if (options.sharded && !any_wiped) {
    auto recover_moves = [&]() -> sim::Co<void> {
      for (std::size_t i = 0; i < moves.size(); ++i) {
        Status done = UnavailableError("not attempted");
        for (int attempt = 0; attempt < 10 && !done.ok(); ++attempt) {
          if (attempt > 0) co_await sim::SleepFor(sched, Milliseconds(120));
          done = co_await rebalancer->MigrateShard(moves[i].first,
                                                   moves[i].second);
        }
        if (!done.ok()) {
          report.violations.push_back(
              {"shard-move-recovery",
               "move of shard " + std::to_string(moves[i].first) + " to g" +
                   std::to_string(moves[i].second) +
                   " unfinishable after heal-all: " + done.ToString()});
        }
      }
    };
    rt.Run(recover_moves());
  }

  // --- recovery: every client must reach the counter again (breakers
  // reclose after their cooldown; partitions are gone) ---
  std::int64_t final_counter = -1;
  auto finale = [&]() -> sim::Co<void> {
    for (auto& client : clients) {
      bool reached = false;
      for (int attempt = 0; attempt < kRecloseAttempts && !reached;
           ++attempt) {
        Result<std::int64_t> r = co_await client->counter()->Read();
        if (r.ok()) {
          reached = true;
          final_counter = *r;
        } else {
          co_await sim::SleepFor(sched, kRecloseGap);
        }
      }
      if (!reached) {
        report.violations.push_back(
            {"breaker-reclose",
             "client " + std::to_string(client->index()) +
                 " cannot reach the counter after heal-all"});
      }
    }
  };
  rt.Run(finale());

  // --- sharded quiescence sweep: after recovery, every acknowledged key
  // must be resident in exactly one group — the one the final map says
  // owns its shard. A miss at the owner is a lost key; a leftover copy
  // at a non-owner is a shard served (or never released) outside its
  // custody chain. ---
  if (options.sharded) {
    auto sweep = [&]() -> sim::Co<void> {
      const services::shardwire::ShardMap final_map = skv->map_service->map();
      report.shard_map_version = final_map.version;
      core::AcquireOptions opts;
      opts.allow_direct = false;
      opts.call = options.workload.call;
      std::vector<std::vector<std::string>> listings;
      const std::vector<std::string> group_names = skv->group_names;
      for (std::size_t gi = 0; gi < group_names.size(); ++gi) {
        const std::string& name = group_names[gi];
        if (group_wiped[gi]) {
          // Provably empty (all replicas crash-wiped) and unreachable by
          // construction: an empty listing keeps the indices aligned.
          listings.emplace_back();
          continue;
        }
        Result<std::shared_ptr<services::IKeyValue>> group =
            co_await core::Acquire<services::IKeyValue>(srv_a, name, opts);
        if (!group.ok()) {
          report.violations.push_back(
              {"shard-sweep", "group " + name +
                                  " unreachable after heal-all: " +
                                  group.status().ToString()});
          co_return;
        }
        bool listed = false;
        for (int attempt = 0; attempt < kRecloseAttempts && !listed;
             ++attempt) {
          Result<std::vector<std::string>> keys = co_await (*group)->List("");
          if (keys.ok()) {
            listings.push_back(std::move(*keys));
            listed = true;
          } else {
            co_await sim::SleepFor(sched, kRecloseGap);
          }
        }
        if (!listed) {
          report.violations.push_back(
              {"shard-sweep",
               "group " + name + " unlistable after heal-all"});
          co_return;
        }
      }
      std::set<std::string> acked;
      for (const OpRecord& op : history.ops) {
        if (op.kind == OpKind::kKvPut && op.outcome == OpOutcome::kOk) {
          acked.insert(op.key);
        }
      }
      for (const std::string& key : acked) {
        const std::uint32_t shard =
            services::ShardOf(key, final_map.num_shards);
        const std::uint32_t owner = final_map.owner[shard];
        if (group_wiped[owner]) {
          // The owning group lost every copy to the schedule (see the
          // wipe exemption above). The key is gone with it, and a live
          // group may legitimately still hold a fenced remnant copy (the
          // release that would have cleared it needs the dead owner's
          // committed epoch) — neither is a custody violation.
          continue;
        }
        for (std::uint32_t g = 0; g < listings.size(); ++g) {
          const bool present = std::find(listings[g].begin(),
                                         listings[g].end(),
                                         key) != listings[g].end();
          if (g == owner && !present) {
            report.violations.push_back(
                {"kv-lost-key",
                 "acknowledged key \"" + key + "\" (shard " +
                     std::to_string(shard) + ") absent from owning group " +
                     group_names[g] + " at quiescence"});
          } else if (g != owner && present) {
            report.violations.push_back(
                {"kv-split-shard",
                 "key \"" + key + "\" (shard " + std::to_string(shard) +
                     ") still resident at non-owner " + group_names[g] +
                     " at quiescence"});
          }
        }
      }
    };
    rt.Run(sweep());
  }

  // --- verdict ---
  Append(report.violations, CheckCounter(history, final_counter));
  Append(report.violations, CheckKv(history));
  Append(report.violations, CheckLocks(history));
  Append(report.violations, CheckArqStream(arq_received));
  Append(report.violations, CheckKvDurability(history));
  Append(report.violations, CheckKvEpochs(history));
  Append(report.violations, CheckKvLostKey(history));
  Append(report.violations, CheckKvSplitShard(history));
  if (options.overload) {
    Append(report.violations,
           CheckAdmission(admission_log, kOvlQueueCapacity,
                          ovl_srv->server().admission_queue_peak()));
    Append(report.violations, CheckShedNotExecuted(ovl_history));
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const rpc::ClientStats& cs = lanes[i].ctx->client().stats();
      Append(report.violations,
             CheckRetryAmplification(
                 cs.retransmissions.value(), cs.calls_ok.value(),
                 /*destinations=*/1,
                 rpc::RpcClient::RetryBudgetParams{}.initial_tokens,
                 rpc::RpcClient::RetryBudgetParams{}.refill_per_success,
                 "ovl-client-" + std::to_string(i)));
    }
    ovl_srv->server().set_admission_log(nullptr);
  }

  report.fingerprint = trace.fingerprint();
  report.trace_events = trace.events();
  report.schedule = adversary.schedule();
  report.faults_applied = adversary.applied();
  report.history_ops = history.ops.size();
  report.final_counter = final_counter;
  report.forged_replies = spoofer.forged();
  for (auto& client : clients) {
    report.spoofed_rejected +=
        client->context().client().stats().spoofed_replies;
  }
  report.arq_delivered = arq_received.size();
  {
    std::vector<services::KvReplica*> replicas;
    if (options.sharded) {
      for (const auto& group : skv->groups) {
        replicas.push_back(group.primary.get());
        for (const auto& backup : group.backup_impls) {
          replicas.push_back(backup.get());
        }
      }
    } else {
      replicas.push_back(kv->primary.get());
      for (const auto& backup : kv->backup_impls) {
        replicas.push_back(backup.get());
      }
    }
    for (services::KvReplica* replica : replicas) {
      report.kv_promotions += replica->promotions();
      report.kv_max_epoch = std::max(report.kv_max_epoch, replica->epoch());
      report.kv_fenced += replica->fenced_rejections();
      report.wrong_shard_rejections += replica->wrong_shard_rejections();
    }
  }
  if (options.sharded) {
    report.sharded = true;
    report.shard_moves_ok = rebalancer->moves();
    report.shard_move_failures = rebalancer->move_failures();
    for (auto& client : clients) {
      const auto* router =
          dynamic_cast<const services::KvShardRouterProxy*>(client->kv());
      if (router != nullptr) {
        report.wrong_shard_retries += router->wrong_shard_retries();
      }
    }
  }
  if (options.overload) {
    report.overload = true;
    for (const OvlLane& lane : lanes) {
      report.overload_offered += lane.stats.offered;
      report.overload_ok += lane.stats.ok;
      report.overload_shed += lane.stats.shed;
      report.overload_retransmissions +=
          lane.ctx->client().stats().retransmissions.value();
    }
    const rpc::ServerStats& ss = ovl_srv->server().stats();
    report.overload_rejected = ss.admission_rejected.value();
    report.overload_evicted = ss.admission_evicted.value();
    report.overload_deadline_shed = ss.shed_expired_queued.value();
    report.overload_queue_peak = ovl_srv->server().admission_queue_peak();
  }
  if (!report.violations.empty()) {
    report.trace_tail = trace.DumpTail(64);
  }
  if (options.collect_metrics) {
    report.metrics_table = rt.metrics().RenderTable();
    report.metrics_json = rt.metrics().RenderJson();
  }
  if (options.collect_spans) {
    report.span_trees = options.trace_filter != 0
                            ? rt.spans().RenderTree(options.trace_filter)
                            : rt.spans().RenderAll();
    report.trace_ids = rt.spans().TraceIds();
  }
  return report;
}

}  // namespace proxy::chaos
