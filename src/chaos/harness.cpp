#include "chaos/harness.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "chaos/adversary.h"
#include "chaos/trace.h"
#include "core/export.h"
#include "core/runtime.h"
#include "net/reliable.h"
#include "services/counter.h"
#include "services/kv.h"
#include "services/lock.h"
#include "services/register_all.h"
#include "sim/future.h"
#include "sim/task.h"

namespace proxy::chaos {

namespace {

constexpr SimDuration kArqSendGap = Milliseconds(2);
constexpr SimDuration kSettle = Milliseconds(300);
constexpr SimDuration kRecloseGap = Milliseconds(250);
constexpr int kRecloseAttempts = 40;

Bytes EncodeSeq(std::uint64_t seq) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return out;
}

std::uint64_t DecodeSeq(const Bytes& payload) {
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    seq |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  }
  return seq;
}

void Append(std::vector<Violation>& into, std::vector<Violation> more) {
  for (Violation& v : more) into.push_back(std::move(v));
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::ostringstream out;
  out << "seed=" << seed << " fp=" << std::hex << fingerprint << std::dec
      << " events=" << trace_events << " faults=" << faults_applied << "/"
      << schedule.size() << " ops=" << history_ops
      << " ctr=" << final_counter << " forged=" << forged_replies
      << " rejected=" << spoofed_rejected << " arq=" << arq_delivered
      << " violations=" << violations.size();
  for (const Violation& v : violations) out << "\n  " << v.ToString();
  return out.str();
}

ChaosReport RunChaos(const ChaosOptions& options) {
  services::RegisterAllServices();

  ChaosReport report;
  report.seed = options.seed;

  // The recorder outlives the Runtime (reverse destruction order): the
  // scheduler/network hooks it installs stay valid to the last event.
  TraceRecorder trace(options.trace_tail);

  core::Runtime::Params params;
  params.seed = options.seed;
  core::Runtime rt(params);
  sim::Scheduler& sched = rt.scheduler();
  trace.Attach(sched, rt.network());

  // --- topology ---
  const NodeId ns_node = rt.AddNode("ns");
  const NodeId srv_a_node = rt.AddNode("srv-a");  // counter + lock
  const NodeId srv_b_node = rt.AddNode("srv-b");  // kv
  std::vector<NodeId> client_nodes;
  for (std::uint32_t i = 0; i < options.workload.clients; ++i) {
    client_nodes.push_back(rt.AddNode("client-" + std::to_string(i)));
  }
  const NodeId rogue_node = rt.AddNode("rogue");
  const NodeId arq_src_node = rt.AddNode("arq-src");
  const NodeId arq_dst_node = rt.AddNode("arq-dst");
  const auto node_count = static_cast<std::uint32_t>(rt.network().node_count());

  rt.StartNameService(ns_node);
  core::Context& srv_a = rt.CreateContext(srv_a_node, "srv-a");
  core::Context& srv_b = rt.CreateContext(srv_b_node, "srv-b");

  Result<services::CounterExport> ctr =
      services::ExportCounterService(srv_a, /*protocol=*/1, /*initial=*/0);
  Result<services::LockExport> lock = services::ExportLockService(srv_a);
  Result<services::KvExport> kv =
      services::ExportKvService(srv_b, /*protocol=*/1);
  if (!ctr.ok() || !lock.ok() || !kv.ok()) {
    report.violations.push_back({"harness-setup", "service export failed"});
    return report;
  }

  bool setup_ok = true;
  auto publish = [&]() -> sim::Co<void> {
    Result<rpc::Void> a = co_await srv_a.names().RegisterService(
        "chaos/ctr", ctr->binding);
    Result<rpc::Void> b = co_await srv_a.names().RegisterService(
        "chaos/lock", lock->binding);
    Result<rpc::Void> c = co_await srv_b.names().RegisterService(
        "chaos/kv", kv->binding);
    setup_ok = a.ok() && b.ok() && c.ok();
  };
  rt.Run(publish());

  // --- workload clients ---
  std::vector<std::unique_ptr<WorkloadClient>> clients;
  for (std::uint32_t i = 0; i < options.workload.clients; ++i) {
    core::Context& ctx =
        rt.CreateContext(client_nodes[i], "client-" + std::to_string(i));
    if (options.bug == Bug::kReplyAuth) {
      ctx.client().set_testing_reply_auth(false);
    }
    clients.push_back(
        std::make_unique<WorkloadClient>(ctx, i, options.seed));
  }

  auto bind_all = [&]() -> sim::Co<void> {
    for (auto& client : clients) {
      Result<rpc::Void> bound = co_await client->BindAll(options.workload);
      if (!bound.ok()) setup_ok = false;
    }
  };
  rt.Run(bind_all());
  if (!setup_ok) {
    report.violations.push_back(
        {"harness-setup", "publish or pre-chaos bind failed"});
    return report;
  }

  // --- ARQ probe stream (covers the ordered-transport invariant) ---
  net::Endpoint* arq_src = rt.stack(arq_src_node).OpenEphemeral();
  net::Endpoint* arq_dst = rt.stack(arq_dst_node).OpenEphemeral();
  net::ArqParams arq_params;
  arq_params.probe_interval = Milliseconds(20);
  net::ReliableChannel arq_tx(*arq_src, arq_params);
  net::ReliableChannel arq_rx(*arq_dst, arq_params);
  std::vector<std::uint64_t> arq_received;
  arq_rx.SetHandler([&arq_received](const net::Address&, Bytes payload) {
    if (payload.size() == 8) arq_received.push_back(DecodeSeq(payload));
  });
  const net::Address arq_dst_addr = arq_dst->address();
  const SimDuration horizon = options.adversary.horizon;
  auto arq_pump = [&]() -> sim::Co<void> {
    std::uint64_t next = 1;
    while (sched.now() < horizon) {
      // A refused send (peer declared failed, queue full) skips the
      // sequence number: the receiver sees a gap, never a regression.
      (void)arq_tx.Send(arq_dst_addr, EncodeSeq(next));
      ++next;
      co_await sim::SleepFor(sched, kArqSendGap);
    }
  };
  sim::Future<bool> arq_done = sim::Spawn(sched, arq_pump());

  // --- adversary ---
  net::Endpoint* rogue = rt.stack(rogue_node).OpenEphemeral();
  ReplySpoofer spoofer(*rogue);
  {
    std::vector<ReplySpoofer::Target> targets;
    for (auto& client : clients) {
      rpc::RpcClient& rpc = client->context().client();
      targets.push_back({rpc.address(), rpc.nonce()});
    }
    spoofer.SetTargets(std::move(targets));
  }

  std::vector<FaultEvent> schedule =
      options.schedule.has_value()
          ? *options.schedule
          : GenerateSchedule(options.seed, node_count,
                             options.workload.clients, options.adversary);
  Adversary adversary(rt, trace, &spoofer, std::move(schedule));
  adversary.Arm();

  // --- drive: workload through the fault window ---
  History history;
  std::vector<sim::Future<bool>> runs;
  for (auto& client : clients) {
    runs.push_back(
        sim::Spawn(sched, client->Run(options.workload, history)));
  }
  sched.RunUntil([&runs] {
    return std::all_of(runs.begin(), runs.end(),
                       [](const sim::Future<bool>& f) { return f.ready(); });
  });
  // Let the rest of the fault window elapse (a fast workload can finish
  // before the last scheduled onsets; their restores must still fire).
  if (sched.now() < horizon) sched.RunFor(horizon - sched.now());
  sched.RunUntil([&arq_done] { return arq_done.ready(); });

  adversary.HealAll();
  trace.Note(sched.now(), "heal-complete; settling");
  sched.RunFor(kSettle);

  // --- recovery: every client must reach the counter again (breakers
  // reclose after their cooldown; partitions are gone) ---
  std::int64_t final_counter = -1;
  auto finale = [&]() -> sim::Co<void> {
    for (auto& client : clients) {
      bool reached = false;
      for (int attempt = 0; attempt < kRecloseAttempts && !reached;
           ++attempt) {
        Result<std::int64_t> r = co_await client->counter()->Read();
        if (r.ok()) {
          reached = true;
          final_counter = *r;
        } else {
          co_await sim::SleepFor(sched, kRecloseGap);
        }
      }
      if (!reached) {
        report.violations.push_back(
            {"breaker-reclose",
             "client " + std::to_string(client->index()) +
                 " cannot reach the counter after heal-all"});
      }
    }
  };
  rt.Run(finale());

  // --- verdict ---
  Append(report.violations, CheckCounter(history, final_counter));
  Append(report.violations, CheckKv(history));
  Append(report.violations, CheckLocks(history));
  Append(report.violations, CheckArqStream(arq_received));

  report.fingerprint = trace.fingerprint();
  report.trace_events = trace.events();
  report.schedule = adversary.schedule();
  report.faults_applied = adversary.applied();
  report.history_ops = history.ops.size();
  report.final_counter = final_counter;
  report.forged_replies = spoofer.forged();
  for (auto& client : clients) {
    report.spoofed_rejected +=
        client->context().client().stats().spoofed_replies;
  }
  report.arq_delivered = arq_received.size();
  if (!report.violations.empty()) {
    report.trace_tail = trace.DumpTail(64);
  }
  return report;
}

}  // namespace proxy::chaos
