#include "chaos/harness.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "chaos/adversary.h"
#include "chaos/trace.h"
#include "core/export.h"
#include "core/runtime.h"
#include "net/reliable.h"
#include "services/counter.h"
#include "services/kv.h"
#include "services/lock.h"
#include "services/register_all.h"
#include "services/replicated_kv.h"
#include "sim/future.h"
#include "sim/task.h"

namespace proxy::chaos {

namespace {

constexpr SimDuration kArqSendGap = Milliseconds(2);
constexpr SimDuration kSettle = Milliseconds(300);
constexpr SimDuration kRecloseGap = Milliseconds(250);
constexpr int kRecloseAttempts = 40;

Bytes EncodeSeq(std::uint64_t seq) {
  Bytes out(8);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return out;
}

std::uint64_t DecodeSeq(const Bytes& payload) {
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) {
    seq |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  }
  return seq;
}

void Append(std::vector<Violation>& into, std::vector<Violation> more) {
  for (Violation& v : more) into.push_back(std::move(v));
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::ostringstream out;
  out << "seed=" << seed << " fp=" << std::hex << fingerprint << std::dec
      << " events=" << trace_events << " faults=" << faults_applied << "/"
      << schedule.size() << " ops=" << history_ops
      << " ctr=" << final_counter << " forged=" << forged_replies
      << " rejected=" << spoofed_rejected << " arq=" << arq_delivered
      << " promotions=" << kv_promotions << " epoch=" << kv_max_epoch
      << " fenced=" << kv_fenced
      << " violations=" << violations.size();
  for (const Violation& v : violations) out << "\n  " << v.ToString();
  return out.str();
}

ChaosReport RunChaos(const ChaosOptions& options) {
  services::RegisterAllServices();

  ChaosReport report;
  report.seed = options.seed;

  // The recorder outlives the Runtime (reverse destruction order): the
  // scheduler/network hooks it installs stay valid to the last event.
  TraceRecorder trace(options.trace_tail);

  core::Runtime::Params params;
  params.seed = options.seed;
  core::Runtime rt(params);
  if (options.collect_spans) rt.spans().set_enabled(true);
  sim::Scheduler& sched = rt.scheduler();
  trace.Attach(sched, rt.network());

  // --- topology ---
  const NodeId ns_node = rt.AddNode("ns");
  const NodeId srv_a_node = rt.AddNode("srv-a");  // counter + lock
  const NodeId srv_b_node = rt.AddNode("srv-b");  // kv primary
  const NodeId srv_c_node = rt.AddNode("srv-c");  // kv backup
  const NodeId srv_d_node = rt.AddNode("srv-d");  // kv backup
  std::vector<NodeId> client_nodes;
  for (std::uint32_t i = 0; i < options.workload.clients; ++i) {
    client_nodes.push_back(rt.AddNode("client-" + std::to_string(i)));
  }
  const NodeId rogue_node = rt.AddNode("rogue");
  const NodeId arq_src_node = rt.AddNode("arq-src");
  const NodeId arq_dst_node = rt.AddNode("arq-dst");
  const auto node_count = static_cast<std::uint32_t>(rt.network().node_count());

  rt.StartNameService(ns_node);
  core::Context& srv_a = rt.CreateContext(srv_a_node, "srv-a");
  core::Context& srv_b = rt.CreateContext(srv_b_node, "srv-b");
  core::Context& srv_c = rt.CreateContext(srv_c_node, "srv-c");
  core::Context& srv_d = rt.CreateContext(srv_d_node, "srv-d");

  Result<services::CounterExport> ctr =
      services::ExportCounterService(srv_a, /*protocol=*/1, /*initial=*/0);
  Result<services::LockExport> lock = services::ExportLockService(srv_a);

  // The KV is a 3-way replicated group with automatic failover under the
  // name "chaos/kv": the primary's lease maintainer owns the name record,
  // and the chaos-tuned timers keep promotion well inside a crash episode.
  services::ReplicatedKvParams rparams;
  rparams.name = "chaos/kv";
  // Failure detection + promotion must fit inside a link-fault episode
  // (max_fault_len, 150ms): a partition or isolation that cuts the
  // primary off from the name service long enough deposes it while it is
  // still alive and client-reachable — the stale-primary scenario epoch
  // fencing exists for. With a 150ms TTL nothing but a crash (250ms)
  // ever promoted, and fencing went unexercised.
  rparams.lease.ttl_ns = Milliseconds(60);
  rparams.lease.renew_fraction = 0.4;
  rparams.lease.max_consecutive_failures = 2;
  rparams.watch_interval = Milliseconds(20);
  rparams.promote_stagger = Milliseconds(10);
  rparams.rejoin_interval = Milliseconds(30);
  rparams.mirror.retry_interval = Milliseconds(6);
  rparams.mirror.max_retries = 2;
  rparams.mirror.deadline = Milliseconds(40);
  rparams.testing_disable_fencing = options.bug == Bug::kStalePrimary;
  Result<services::ReplicatedKvExport> kv =
      services::ExportReplicatedKv(srv_b, {&srv_c, &srv_d}, rparams);
  if (!ctr.ok() || !lock.ok() || !kv.ok()) {
    report.violations.push_back({"harness-setup", "service export failed"});
    return report;
  }

  bool setup_ok = true;
  auto publish = [&]() -> sim::Co<void> {
    Result<rpc::Void> a = co_await srv_a.names().RegisterService(
        "chaos/ctr", ctr->binding);
    Result<rpc::Void> b = co_await srv_a.names().RegisterService(
        "chaos/lock", lock->binding);
    setup_ok = a.ok() && b.ok();
  };
  rt.Run(publish());
  // "chaos/kv" is registered by the primary's lease heartbeat, not here;
  // give it a beat to land before the clients bind through the name.
  sched.RunFor(Milliseconds(20));

  // --- workload clients ---
  std::vector<std::unique_ptr<WorkloadClient>> clients;
  for (std::uint32_t i = 0; i < options.workload.clients; ++i) {
    core::Context& ctx =
        rt.CreateContext(client_nodes[i], "client-" + std::to_string(i));
    if (options.bug == Bug::kReplyAuth) {
      ctx.client().set_testing_reply_auth(false);
    }
    clients.push_back(
        std::make_unique<WorkloadClient>(ctx, i, options.seed));
  }

  auto bind_all = [&]() -> sim::Co<void> {
    for (auto& client : clients) {
      Result<rpc::Void> bound = co_await client->BindAll(options.workload);
      if (!bound.ok()) setup_ok = false;
    }
  };
  rt.Run(bind_all());
  if (!setup_ok) {
    report.violations.push_back(
        {"harness-setup", "publish or pre-chaos bind failed"});
    return report;
  }

  // --- ARQ probe stream (covers the ordered-transport invariant) ---
  net::Endpoint* arq_src = rt.stack(arq_src_node).OpenEphemeral();
  net::Endpoint* arq_dst = rt.stack(arq_dst_node).OpenEphemeral();
  net::ArqParams arq_params;
  arq_params.probe_interval = Milliseconds(20);
  net::ReliableChannel arq_tx(*arq_src, arq_params);
  net::ReliableChannel arq_rx(*arq_dst, arq_params);
  std::vector<std::uint64_t> arq_received;
  arq_rx.SetHandler([&arq_received](const net::Address&, Bytes payload) {
    if (payload.size() == 8) arq_received.push_back(DecodeSeq(payload));
  });
  const net::Address arq_dst_addr = arq_dst->address();
  const SimDuration horizon = options.adversary.horizon;
  auto arq_pump = [&]() -> sim::Co<void> {
    std::uint64_t next = 1;
    while (sched.now() < horizon) {
      // A refused send (peer declared failed, queue full) skips the
      // sequence number: the receiver sees a gap, never a regression.
      (void)arq_tx.Send(arq_dst_addr, EncodeSeq(next));
      ++next;
      co_await sim::SleepFor(sched, kArqSendGap);
    }
  };
  sim::Future<bool> arq_done = sim::Spawn(sched, arq_pump());

  // --- adversary ---
  net::Endpoint* rogue = rt.stack(rogue_node).OpenEphemeral();
  ReplySpoofer spoofer(*rogue);
  {
    std::vector<ReplySpoofer::Target> targets;
    for (auto& client : clients) {
      rpc::RpcClient& rpc = client->context().client();
      targets.push_back({rpc.address(), rpc.nonce()});
    }
    spoofer.SetTargets(std::move(targets));
  }

  // Crash-restart targets default to the replica nodes (never the name
  // service); a caller-supplied list wins.
  AdversaryParams adversary_params = options.adversary;
  if (adversary_params.crash_targets.empty()) {
    adversary_params.crash_targets = {srv_b_node.value(), srv_c_node.value(),
                                      srv_d_node.value()};
  }
  std::vector<FaultEvent> schedule =
      options.schedule.has_value()
          ? *options.schedule
          : GenerateSchedule(options.seed, node_count,
                             options.workload.clients, adversary_params);
  Adversary adversary(rt, trace, &spoofer, std::move(schedule));
  adversary.Arm();

  // --- drive: workload through the fault window ---
  History history;
  std::vector<sim::Future<bool>> runs;
  for (auto& client : clients) {
    runs.push_back(
        sim::Spawn(sched, client->Run(options.workload, history)));
  }
  sched.RunUntil([&runs] {
    return std::all_of(runs.begin(), runs.end(),
                       [](const sim::Future<bool>& f) { return f.ready(); });
  });
  // Let the rest of the fault window elapse (a fast workload can finish
  // before the last scheduled onsets; their restores must still fire).
  if (sched.now() < horizon) sched.RunFor(horizon - sched.now());
  sched.RunUntil([&arq_done] { return arq_done.ready(); });

  adversary.HealAll();
  trace.Note(sched.now(), "heal-complete; settling");
  sched.RunFor(kSettle);

  // --- recovery: every client must reach the counter again (breakers
  // reclose after their cooldown; partitions are gone) ---
  std::int64_t final_counter = -1;
  auto finale = [&]() -> sim::Co<void> {
    for (auto& client : clients) {
      bool reached = false;
      for (int attempt = 0; attempt < kRecloseAttempts && !reached;
           ++attempt) {
        Result<std::int64_t> r = co_await client->counter()->Read();
        if (r.ok()) {
          reached = true;
          final_counter = *r;
        } else {
          co_await sim::SleepFor(sched, kRecloseGap);
        }
      }
      if (!reached) {
        report.violations.push_back(
            {"breaker-reclose",
             "client " + std::to_string(client->index()) +
                 " cannot reach the counter after heal-all"});
      }
    }
  };
  rt.Run(finale());

  // --- verdict ---
  Append(report.violations, CheckCounter(history, final_counter));
  Append(report.violations, CheckKv(history));
  Append(report.violations, CheckLocks(history));
  Append(report.violations, CheckArqStream(arq_received));
  Append(report.violations, CheckKvDurability(history));
  Append(report.violations, CheckKvEpochs(history));

  report.fingerprint = trace.fingerprint();
  report.trace_events = trace.events();
  report.schedule = adversary.schedule();
  report.faults_applied = adversary.applied();
  report.history_ops = history.ops.size();
  report.final_counter = final_counter;
  report.forged_replies = spoofer.forged();
  for (auto& client : clients) {
    report.spoofed_rejected +=
        client->context().client().stats().spoofed_replies;
  }
  report.arq_delivered = arq_received.size();
  {
    std::vector<services::KvReplica*> replicas{kv->primary.get()};
    for (auto& backup : kv->backup_impls) replicas.push_back(backup.get());
    for (services::KvReplica* replica : replicas) {
      report.kv_promotions += replica->promotions();
      report.kv_max_epoch = std::max(report.kv_max_epoch, replica->epoch());
      report.kv_fenced += replica->fenced_rejections();
    }
  }
  if (!report.violations.empty()) {
    report.trace_tail = trace.DumpTail(64);
  }
  if (options.collect_metrics) {
    report.metrics_table = rt.metrics().RenderTable();
    report.metrics_json = rt.metrics().RenderJson();
  }
  if (options.collect_spans) {
    report.span_trees = options.trace_filter != 0
                            ? rt.spans().RenderTree(options.trace_filter)
                            : rt.spans().RenderAll();
    report.trace_ids = rt.spans().TraceIds();
  }
  return report;
}

}  // namespace proxy::chaos
