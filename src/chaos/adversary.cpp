#include "chaos/adversary.h"

#include <utility>

#include "rpc/frame.h"
#include "serde/traits.h"
#include "services/counter.h"

namespace proxy::chaos {

void ReplySpoofer::Burst(std::uint32_t client_index) {
  if (targets_.empty()) return;
  const Target& target = targets_[client_index % targets_.size()];
  const Bytes poison =
      serde::EncodeToBytes(services::counterwire::ValueResponse{kPoisonValue});
  for (std::uint64_t seq = 1; seq <= kSeqSweep; ++seq) {
    rpc::ReplyFrame reply;
    reply.call = rpc::CallId{target.nonce, seq};
    reply.code = StatusCode::kOk;
    reply.result = poison;
    // The adversary forges wire frames on purpose — its whole job is to
    // violate the encapsulation boundary the proxies defend.
    // NOLINTNEXTLINE(proxy-lint:L3)
    (void)endpoint_->Send(target.client, rpc::EncodeReply(reply));
    ++forged_;
  }
}

Adversary::Adversary(core::Runtime& runtime, TraceRecorder& trace,
                     ReplySpoofer* spoofer, std::vector<FaultEvent> schedule)
    : runtime_(&runtime),
      trace_(&trace),
      spoofer_(spoofer),
      schedule_(std::move(schedule)) {}

void Adversary::Arm() {
  sim::Scheduler& sched = runtime_->scheduler();
  for (const FaultEvent& ev : schedule_) {
    sched.PostAt(ev.at, [this, &ev] { Apply(ev); }).Detach();
  }
}

void Adversary::ScheduleRestore(SimDuration duration,
                                std::function<void()> undo) {
  const std::uint64_t token = next_undo_++;
  active_undos_.emplace(token, std::move(undo));
  runtime_->scheduler()
      .PostAfter(duration,
                 [this, token] {
                   const auto it = active_undos_.find(token);
                   if (it == active_undos_.end()) return;  // healed already
                   auto fn = std::move(it->second);
                   active_undos_.erase(it);
                   fn();
                 })
      .Detach();
}

void Adversary::Apply(const FaultEvent& ev) {
  sim::Network& net = runtime_->network();
  const SimTime now = runtime_->scheduler().now();
  trace_->Note(now, "inject: " + ev.ToString());
  ++applied_;

  switch (ev.kind) {
    case FaultKind::kPartition: {
      const NodeId a(ev.a), b(ev.b);
      net.SetPartitioned(a, b, true);
      ScheduleRestore(ev.duration, [this, a, b] {
        runtime_->network().SetPartitioned(a, b, false);
        trace_->Note(runtime_->scheduler().now(),
                     "heal: partition n" + std::to_string(a.value()) +
                         "<->n" + std::to_string(b.value()));
      });
      break;
    }
    case FaultKind::kIsolate: {
      const NodeId a(ev.a);
      const auto n = static_cast<std::uint32_t>(net.node_count());
      for (std::uint32_t other = 0; other < n; ++other) {
        if (other != ev.a) net.SetPartitioned(a, NodeId(other), true);
      }
      ScheduleRestore(ev.duration, [this, a, n] {
        for (std::uint32_t other = 0; other < n; ++other) {
          if (other != a.value()) {
            runtime_->network().SetPartitioned(a, NodeId(other), false);
          }
        }
        trace_->Note(runtime_->scheduler().now(),
                     "heal: isolate n" + std::to_string(a.value()));
      });
      break;
    }
    case FaultKind::kPause: {
      const NodeId a(ev.a);
      net.SetNodePaused(a, true);
      ScheduleRestore(ev.duration, [this, a] {
        runtime_->network().SetNodePaused(a, false);
        trace_->Note(runtime_->scheduler().now(),
                     "heal: unpause n" + std::to_string(a.value()));
      });
      break;
    }
    case FaultKind::kLossBurst:
    case FaultKind::kJitterBurst: {
      const NodeId a(ev.a), b(ev.b);
      const sim::LinkParams prev = net.link_params(a, b);
      sim::LinkParams perturbed = prev;
      if (ev.kind == FaultKind::kLossBurst) {
        perturbed.loss = ev.loss;
      } else {
        perturbed.jitter += ev.jitter;
      }
      net.SetLink(a, b, perturbed);
      ScheduleRestore(ev.duration, [this, a, b, prev] {
        runtime_->network().SetLink(a, b, prev);
        trace_->Note(runtime_->scheduler().now(),
                     "heal: link n" + std::to_string(a.value()) + "<->n" +
                         std::to_string(b.value()) + " restored");
      });
      break;
    }
    case FaultKind::kLinkChurn: {
      const NodeId a(ev.a), b(ev.b);
      sim::LinkParams churned = net.link_params(a, b);
      churned.latency = ev.latency;
      churned.jitter = ev.jitter;
      net.SetLink(a, b, churned);  // permanent: no restore
      break;
    }
    case FaultKind::kSpoofBurst: {
      if (spoofer_ != nullptr) spoofer_->Burst(ev.a);
      break;
    }
    case FaultKind::kCrashRestart: {
      const NodeId a(ev.a);
      runtime_->CrashNode(a);
      ScheduleRestore(ev.duration, [this, a] {
        runtime_->RestartNode(a);
        trace_->Note(runtime_->scheduler().now(),
                     "heal: restart n" + std::to_string(a.value()));
      });
      break;
    }
  }
}

void Adversary::HealAll() {
  // Run restores that have not fired (their scheduled twin then no-ops).
  std::map<std::uint64_t, std::function<void()>> undos;
  undos.swap(active_undos_);
  for (auto& [token, fn] : undos) fn();
  // Belt and braces: a fully connected, unpaused world with every node
  // running (a crashed node restarts empty and resyncs).
  sim::Network& net = runtime_->network();
  net.ClearPartitions();
  const auto n = static_cast<std::uint32_t>(net.node_count());
  for (std::uint32_t node = 0; node < n; ++node) {
    net.SetNodePaused(NodeId(node), false);
    if (net.IsNodeCrashed(NodeId(node))) runtime_->RestartNode(NodeId(node));
  }
  trace_->Note(runtime_->scheduler().now(), "heal-all");
}

}  // namespace proxy::chaos
