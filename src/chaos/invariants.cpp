#include "chaos/invariants.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace proxy::chaos {

namespace {

std::string OpName(const OpRecord& op) {
  std::ostringstream out;
  out << "c" << op.client << "/op" << op.op;
  return out.str();
}

}  // namespace

std::vector<Violation> CheckCounter(const History& history,
                                    std::int64_t final_value) {
  std::vector<Violation> out;

  // Acknowledged counter operations, i.e. those that returned a value.
  std::vector<const OpRecord*> acked;
  std::int64_t ok_incs = 0;
  std::int64_t unknown_incs = 0;
  for (const OpRecord& op : history.ops) {
    if (op.kind != OpKind::kCtrInc && op.kind != OpKind::kCtrRead) continue;
    if (op.outcome == OpOutcome::kOk) {
      acked.push_back(&op);
      if (op.kind == OpKind::kCtrInc) ++ok_incs;
    } else if (op.kind == OpKind::kCtrInc) {
      ++unknown_incs;
    }
  }

  // Unit increments are distinct: two acks of the same value is a lost
  // update (or a forged reply).
  std::unordered_map<std::int64_t, const OpRecord*> inc_values;
  for (const OpRecord* op : acked) {
    if (op->kind != OpKind::kCtrInc) continue;
    const auto [it, inserted] = inc_values.emplace(op->number, op);
    if (!inserted) {
      out.push_back({"counter-linearizable",
                     "increments " + OpName(*it->second) + " and " +
                         OpName(*op) + " both returned " +
                         std::to_string(op->number)});
    }
  }

  // Real-time order: if op1 completed before op2 started, op2's value
  // must not be smaller (and an increment must strictly exceed it). The
  // max over completed ops dominates, so one sweep suffices.
  std::vector<const OpRecord*> by_start = acked;
  std::sort(by_start.begin(), by_start.end(),
            [](const OpRecord* a, const OpRecord* b) {
              return a->start < b->start;
            });
  std::vector<const OpRecord*> by_end = acked;
  std::sort(by_end.begin(), by_end.end(),
            [](const OpRecord* a, const OpRecord* b) {
              return a->end < b->end;
            });
  std::size_t completed = 0;
  std::int64_t max_completed = std::numeric_limits<std::int64_t>::min();
  const OpRecord* max_op = nullptr;
  for (const OpRecord* op : by_start) {
    while (completed < by_end.size() && by_end[completed]->end < op->start) {
      if (by_end[completed]->number > max_completed) {
        max_completed = by_end[completed]->number;
        max_op = by_end[completed];
      }
      ++completed;
    }
    if (max_op == nullptr) continue;
    const std::int64_t floor =
        op->kind == OpKind::kCtrInc ? max_completed + 1 : max_completed;
    if (op->number < floor) {
      out.push_back({"counter-linearizable",
                     OpName(*op) + " returned " + std::to_string(op->number) +
                         " after " + OpName(*max_op) + " had completed with " +
                         std::to_string(max_completed)});
    }
  }

  // Final-state accounting: every acknowledged increment executed, every
  // failed one may have; nothing else moves the counter.
  if (final_value >= 0) {
    std::int64_t max_acked = 0;
    for (const OpRecord* op : acked) max_acked = std::max(max_acked, op->number);
    if (final_value < ok_incs || final_value > ok_incs + unknown_incs) {
      out.push_back({"counter-final-bound",
                     "final value " + std::to_string(final_value) +
                         " outside [" + std::to_string(ok_incs) + ", " +
                         std::to_string(ok_incs + unknown_incs) + "]"});
    }
    if (final_value < max_acked) {
      out.push_back({"counter-final-bound",
                     "final value " + std::to_string(final_value) +
                         " below acknowledged value " +
                         std::to_string(max_acked)});
    }
  }
  return out;
}

std::vector<Violation> CheckKv(const History& history) {
  std::vector<Violation> out;

  // Every value any Put *attempted* (an unacknowledged Put may still have
  // executed), with its start time.
  struct Written {
    SimTime start;
  };
  std::unordered_map<std::string, std::unordered_map<std::string, Written>>
      writes;  // key -> value -> earliest start
  for (const OpRecord& op : history.ops) {
    if (op.kind != OpKind::kKvPut) continue;
    auto& per_key = writes[op.key];
    const auto it = per_key.find(op.value);
    if (it == per_key.end()) {
      per_key.emplace(op.value, Written{op.start});
    } else {
      it->second.start = std::min(it->second.start, op.start);
    }
  }

  for (const OpRecord& op : history.ops) {
    if (op.kind != OpKind::kKvGet || op.outcome != OpOutcome::kOk) continue;
    if (!op.flag) continue;  // absent is always admissible
    const Written* written = nullptr;
    if (const auto key_it = writes.find(op.key); key_it != writes.end()) {
      if (const auto val_it = key_it->second.find(op.value);
          val_it != key_it->second.end()) {
        written = &val_it->second;
      }
    }
    if (written == nullptr) {
      out.push_back({"kv-integrity",
                     OpName(op) + " read \"" + op.value + "\" from \"" +
                         op.key + "\", which no Put ever wrote"});
      continue;
    }
    if (written->start >= op.end) {
      out.push_back({"kv-integrity",
                     OpName(op) + " read \"" + op.value + "\" from \"" +
                         op.key + "\" before its Put started"});
    }
  }
  return out;
}

std::vector<Violation> CheckLocks(const History& history) {
  std::vector<Violation> out;

  // Definite-hold intervals: [successful TryAcquire completion, first
  // subsequent Release *start* by the same client]. Outside that window
  // the client may have lost the lock without knowing (a timed-out
  // Release can still have executed), so only the definite window is
  // checked for mutual exclusion.
  struct Hold {
    std::uint32_t client;
    SimTime from;
    SimTime until;
  };
  std::map<std::string, std::vector<Hold>> holds;
  std::map<std::pair<std::string, std::uint32_t>, std::size_t> open;

  for (const OpRecord& op : history.ops) {
    if (op.kind == OpKind::kLockTry && op.outcome == OpOutcome::kOk &&
        op.flag) {
      auto& per_lock = holds[op.key];
      open[{op.key, op.client}] = per_lock.size();
      per_lock.push_back(
          Hold{op.client, op.end, std::numeric_limits<SimTime>::max()});
    } else if (op.kind == OpKind::kLockRelease) {
      const auto it = open.find({op.key, op.client});
      if (it == open.end()) continue;
      Hold& hold = holds[op.key][it->second];
      hold.until = std::min(hold.until, op.start);
      open.erase(it);
    }
  }

  for (auto& [name, intervals] : holds) {
    std::sort(intervals.begin(), intervals.end(),
              [](const Hold& a, const Hold& b) { return a.from < b.from; });
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      const Hold& prev = intervals[i - 1];
      const Hold& cur = intervals[i];
      if (prev.client != cur.client && cur.from < prev.until) {
        out.push_back({"lock-mutex",
                       "lock \"" + name + "\" held by client " +
                           std::to_string(prev.client) + " and client " +
                           std::to_string(cur.client) +
                           " simultaneously at " + FormatDuration(cur.from)});
      }
    }
  }
  return out;
}

std::vector<Violation> CheckKvDurability(const History& history) {
  std::vector<Violation> out;

  // Acknowledged, epoch-stamped Puts. The workload never deletes, so once
  // a Put for a key is acknowledged, "absent" is only defensible from a
  // replica still serving an older epoch than the ack's.
  std::vector<const OpRecord*> puts;
  for (const OpRecord& op : history.ops) {
    if (op.kind == OpKind::kKvPut && op.outcome == OpOutcome::kOk &&
        op.epoch != 0) {
      puts.push_back(&op);
    }
  }

  for (const OpRecord& get : history.ops) {
    if (get.kind != OpKind::kKvGet || get.outcome != OpOutcome::kOk ||
        get.epoch == 0 || get.flag) {
      continue;  // only epoch-stamped absent reads can violate durability
    }
    for (const OpRecord* put : puts) {
      if (put->key != get.key) continue;
      if (put->group != get.group) continue;   // cross-group: kv-lost-key's job
      if (put->end >= get.start) continue;     // not real-time ordered
      if (get.epoch < put->epoch) continue;    // stale-epoch server: exempt
      out.push_back({"kv-durability",
                     OpName(get) + " (epoch " + std::to_string(get.epoch) +
                         ") found \"" + get.key + "\" absent after " +
                         OpName(*put) + " was acknowledged at epoch " +
                         std::to_string(put->epoch)});
      break;  // one witness per Get is enough
    }
  }
  return out;
}

std::vector<Violation> CheckKvEpochs(const History& history) {
  std::vector<Violation> out;

  // One bucket per serving group: replication epochs are per-group
  // counters (an unsharded history is a single "" bucket, so the
  // pre-shard behaviour is unchanged).
  std::map<std::string, std::vector<const OpRecord*>> by_group;
  for (const OpRecord& op : history.ops) {
    if (op.kind == OpKind::kKvPut && op.outcome == OpOutcome::kOk &&
        op.epoch != 0) {
      by_group[op.group].push_back(&op);
    }
  }

  for (const auto& [group, puts] : by_group) {
    // Split-brain: one acknowledging replica per epoch. Epochs only move
    // by view changes, and a view has a single primary, so two distinct
    // ackers under the same epoch means two nodes believed they led the
    // same view of this group.
    std::unordered_map<std::uint64_t, const OpRecord*> acker_by_epoch;
    for (const OpRecord* op : puts) {
      const auto [it, inserted] = acker_by_epoch.emplace(op->epoch, op);
      if (!inserted && it->second->acker != op->acker) {
        out.push_back({"kv-split-brain",
                       OpName(*it->second) + " and " + OpName(*op) +
                           " were acknowledged by different replicas under "
                           "epoch " +
                           std::to_string(op->epoch) +
                           (group.empty() ? "" : " of group " + group)});
      }
    }

    // Epoch regression: across real-time ordered acks, the serving epoch
    // never decreases. A fenced-off ex-primary that keeps acknowledging
    // writes at its old epoch after its successor's reign began lands
    // here.
    std::vector<const OpRecord*> by_start = puts;
    std::sort(by_start.begin(), by_start.end(),
              [](const OpRecord* a, const OpRecord* b) {
                return a->start < b->start;
              });
    std::vector<const OpRecord*> by_end = puts;
    std::sort(by_end.begin(), by_end.end(),
              [](const OpRecord* a, const OpRecord* b) {
                return a->end < b->end;
              });
    std::size_t completed = 0;
    std::uint64_t max_epoch = 0;
    const OpRecord* max_op = nullptr;
    for (const OpRecord* op : by_start) {
      while (completed < by_end.size() && by_end[completed]->end < op->start) {
        if (by_end[completed]->epoch > max_epoch) {
          max_epoch = by_end[completed]->epoch;
          max_op = by_end[completed];
        }
        ++completed;
      }
      if (max_op != nullptr && op->epoch < max_epoch) {
        out.push_back({"kv-epoch-regression",
                       OpName(*op) + " was acknowledged at epoch " +
                           std::to_string(op->epoch) + " after " +
                           OpName(*max_op) + " completed at epoch " +
                           std::to_string(max_epoch) +
                           (group.empty() ? "" : " in group " + group)});
      }
    }
  }
  return out;
}

std::vector<Violation> CheckKvLostKey(const History& history) {
  std::vector<Violation> out;

  // Router-recorded acknowledged Puts. The workload never deletes, so an
  // acknowledged key must stay readable through any number of shard
  // migrations — that is exactly the handoff chain of custody (freeze
  // before snapshot, install mirrored before ack, release only with a
  // committed-epoch proof) this checker pins down.
  std::vector<const OpRecord*> puts;
  for (const OpRecord& op : history.ops) {
    if (op.kind == OpKind::kKvPut && op.outcome == OpOutcome::kOk &&
        !op.group.empty()) {
      puts.push_back(&op);
    }
  }

  for (const OpRecord& get : history.ops) {
    if (get.kind != OpKind::kKvGet || get.outcome != OpOutcome::kOk ||
        get.group.empty() || get.flag) {
      continue;  // only router-recorded absent reads can lose a key
    }
    for (const OpRecord* put : puts) {
      if (put->key != get.key) continue;
      if (put->end >= get.start) continue;  // not real-time ordered
      if (get.shard_epoch != 0 && put->shard_epoch != 0 &&
          get.shard_epoch < put->shard_epoch) {
        continue;  // answered under an older ownership regime: exempt
      }
      if (get.group == put->group && get.epoch < put->epoch) {
        continue;  // stale in-group replica: kv-durability's exemption
      }
      out.push_back({"kv-lost-key",
                     OpName(get) + " (group " + get.group + ", shard epoch " +
                         std::to_string(get.shard_epoch) + ") found \"" +
                         get.key + "\" absent after " + OpName(*put) +
                         " was acknowledged by " + put->group +
                         " at shard epoch " +
                         std::to_string(put->shard_epoch)});
      break;  // one witness per Get is enough
    }
  }
  return out;
}

std::vector<Violation> CheckKvSplitShard(const History& history) {
  std::vector<Violation> out;

  // One shard, one owner: a shard-ownership epoch names exactly one
  // custody interval, granted by the map service to exactly one group.
  std::map<std::pair<std::uint32_t, std::uint64_t>, const OpRecord*> owners;
  for (const OpRecord& op : history.ops) {
    if (op.kind != OpKind::kKvPut || op.outcome != OpOutcome::kOk ||
        op.group.empty()) {
      continue;
    }
    if (op.shard_epoch == 0) {
      // With fencing on, an ack implies ownership and a nonzero stamp: a
      // zero stamp means a group accepted a write to a shard it had
      // already released (or never held).
      out.push_back({"kv-split-shard",
                     OpName(op) + " was acknowledged by " + op.group +
                         " for shard " + std::to_string(op.shard) +
                         " with no ownership claim (shard epoch 0)"});
      continue;
    }
    const auto [it, inserted] =
        owners.emplace(std::make_pair(op.shard, op.shard_epoch), &op);
    if (!inserted && it->second->group != op.group) {
      out.push_back({"kv-split-shard",
                     OpName(*it->second) + " (group " + it->second->group +
                         ") and " + OpName(op) + " (group " + op.group +
                         ") were both acknowledged for shard " +
                         std::to_string(op.shard) + " at shard epoch " +
                         std::to_string(op.shard_epoch)});
    }
  }
  return out;
}

std::vector<Violation> CheckArqStream(
    const std::vector<std::uint64_t>& received) {
  std::vector<Violation> out;
  for (std::size_t i = 1; i < received.size(); ++i) {
    if (received[i] <= received[i - 1]) {
      out.push_back({"arq-order",
                     "sequence regressed: #" + std::to_string(received[i]) +
                         " delivered after #" +
                         std::to_string(received[i - 1])});
    }
  }
  return out;
}

std::vector<Violation> CheckAdmission(
    const std::vector<rpc::AdmissionEvent>& log, std::size_t queue_capacity,
    std::size_t queue_peak) {
  std::vector<Violation> out;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const rpc::AdmissionEvent& ev = log[i];
    // A fast-reject with a strictly worse waiter still queued means the
    // server preferred old low-priority work over a new high-priority
    // arrival: the definition of a priority inversion. worst_waiting ==
    // kPriorityLevels encodes an empty queue (rejecting with nothing to
    // evict is legitimate when queue_capacity is 0).
    if (ev.action == rpc::AdmissionEvent::Action::kReject &&
        ev.worst_waiting != rpc::kPriorityLevels &&
        ev.worst_waiting > static_cast<std::uint8_t>(ev.priority)) {
      out.push_back(
          {"no-priority-inversion",
           "admission event #" + std::to_string(i) + " at t=" +
               std::to_string(ev.at) + ": rejected " +
               rpc::PriorityName(ev.priority) + " while a P" +
               std::to_string(ev.worst_waiting) + " waiter sat in the queue"});
    }
    if (ev.depth > queue_capacity) {
      out.push_back({"bounded-queue",
                     "admission event #" + std::to_string(i) +
                         " observed queue depth " + std::to_string(ev.depth) +
                         " > capacity " + std::to_string(queue_capacity)});
    }
  }
  if (queue_peak > queue_capacity) {
    out.push_back({"bounded-queue",
                   "queue high-water mark " + std::to_string(queue_peak) +
                       " > capacity " + std::to_string(queue_capacity)});
  }
  return out;
}

std::vector<Violation> CheckShedNotExecuted(const History& history) {
  std::vector<Violation> out;
  // Unique value -> the shed Put that wrote it. Values are unique per
  // generator op, so one lookup table suffices.
  std::unordered_map<std::string, const OpRecord*> shed_values;
  for (const OpRecord& op : history.ops) {
    if (op.kind == OpKind::kKvPut && op.outcome == OpOutcome::kShed) {
      shed_values.emplace(op.value, &op);
    }
  }
  if (shed_values.empty()) return out;
  for (const OpRecord& op : history.ops) {
    if (op.kind != OpKind::kKvGet || op.outcome != OpOutcome::kOk ||
        !op.flag) {
      continue;
    }
    const auto it = shed_values.find(op.value);
    if (it != shed_values.end() && it->second->key == op.key) {
      out.push_back(
          {"shed-not-executed",
           OpName(op) + " read value \"" + op.value + "\" of key \"" +
               op.key + "\" that " + OpName(*it->second) +
               " wrote in a Put the server claims it shed"});
    }
  }
  return out;
}

std::vector<Violation> CheckRetryAmplification(
    std::uint64_t retransmissions, std::uint64_t ok_replies,
    std::uint64_t destinations, double initial_tokens,
    double refill_per_success, const std::string& who) {
  std::vector<Violation> out;
  // Token-bucket conservation: every retransmission spends one token,
  // tokens only arrive as `initial` (per destination) plus the
  // per-success refill. "+1" absorbs the fractional token a client may
  // legitimately still be holding.
  const double income = initial_tokens * static_cast<double>(destinations) +
                        refill_per_success * static_cast<double>(ok_replies) +
                        1.0;
  if (static_cast<double>(retransmissions) > income) {
    out.push_back(
        {"bounded-retry-amplification",
         who + ": " + std::to_string(retransmissions) +
             " retransmissions exceed the retry budget's total income " +
             std::to_string(income) + " (" + std::to_string(ok_replies) +
             " ok replies over " + std::to_string(destinations) +
             " destinations) — retry governors are not holding"});
  }
  return out;
}

}  // namespace proxy::chaos
