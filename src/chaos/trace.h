// Structured event trace for chaos runs.
//
// A TraceRecorder hooks the Scheduler (every executed event) and the
// Network (every message send/deliver/drop/hold/release), and takes
// explicit notes from the adversary and the harness (fault injections,
// workload milestones, invariant checkpoints). Two artifacts come out:
//
//   - a rolling 64-bit fingerprint folded over *every* observed event:
//     two runs share it iff they executed the identical interleaving,
//     which is the replays-byte-identically check a reported seed must
//     pass before anyone starts debugging it;
//   - a bounded tail of human-readable records for diagnosis, so a
//     violating run can print what the system was doing when it broke.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/clock.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace proxy::chaos {

class TraceRecorder {
 public:
  struct Record {
    SimTime time = 0;
    std::string text;
  };

  explicit TraceRecorder(std::size_t keep_tail = 2048)
      : keep_tail_(keep_tail) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Installs the scheduler and network hooks. The recorder must outlive
  /// both (the harness declares it before the Runtime).
  void Attach(sim::Scheduler& sched, sim::Network& net);

  /// Appends a named record — folded into the fingerprint and kept in
  /// the tail. Used for fault injections and harness milestones.
  void Note(SimTime time, std::string text);

  /// Fingerprint over every observed scheduler event, network message
  /// event, and note, in order.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fp_; }

  /// Total events folded (scheduler steps + network events + notes).
  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }

  [[nodiscard]] const std::deque<Record>& tail() const noexcept {
    return tail_;
  }

  /// Renders the last `max_lines` records, one per line.
  [[nodiscard]] std::string DumpTail(std::size_t max_lines) const;

 private:
  void Fold(std::uint64_t v) noexcept {
    // FNV-1a-style mix; order-sensitive by construction.
    fp_ = (fp_ ^ v) * 0x100000001b3ULL;
    fp_ ^= fp_ >> 29;
    ++events_;
  }

  std::size_t keep_tail_;
  std::uint64_t fp_ = 0xcbf29ce484222325ULL;
  std::uint64_t events_ = 0;
  std::deque<Record> tail_;
};

}  // namespace proxy::chaos
