#include "chaos/workload.h"

#include <string>
#include <utility>

#include "core/factory.h"
#include "core/proxy.h"
#include "services/replicated_kv.h"
#include "services/shard_router.h"
#include "sim/future.h"

namespace proxy::chaos {

sim::Co<Result<rpc::Void>> WorkloadClient::BindAll(
    const WorkloadParams& params) {
  core::AcquireOptions opts;
  opts.allow_direct = false;
  // Call policy is declared at acquisition: every proxy the workload
  // acquires gets the chaos-tuned options.
  opts.call = params.call;
  Result<std::shared_ptr<services::ICounter>> counter =
      co_await core::Acquire<services::ICounter>(*context_, "chaos/ctr", opts);
  if (!counter.ok()) co_return counter.status();
  counter_ = *counter;
  Result<std::shared_ptr<services::IKeyValue>> kv =
      co_await core::Acquire<services::IKeyValue>(*context_, "chaos/kv", opts);
  if (!kv.ok()) co_return kv.status();
  kv_ = *kv;
  Result<std::shared_ptr<services::ILockService>> lock =
      co_await core::Acquire<services::ILockService>(*context_, "chaos/lock",
                                                  opts);
  if (!lock.ok()) co_return lock.status();
  lock_ = *lock;

  kv_failover_ = dynamic_cast<services::KvFailoverProxy*>(kv_.get());
  kv_router_ = dynamic_cast<services::KvShardRouterProxy*>(kv_.get());
  co_return rpc::Void{};
}

OpRecord& WorkloadClient::Record(History& history, OpKind kind,
                                 SimTime start) {
  OpRecord r;
  r.client = index_;
  r.op = next_op_++;
  r.kind = kind;
  r.start = start;
  r.end = context_->scheduler().now();
  return history.Append(std::move(r));
}

sim::Co<void> WorkloadClient::Run(const WorkloadParams& params,
                                  History& history) {
  sim::Scheduler& sched = context_->scheduler();
  for (std::uint32_t i = 0; i < params.ops_per_client; ++i) {
    co_await sim::SleepFor(sched, rng_.UniformU64(params.max_think + 1));
    const std::uint64_t roll = rng_.UniformU64(100);
    const SimTime start = sched.now();

    if (roll < 40) {
      Result<std::int64_t> r = co_await counter_->Increment(1);
      OpRecord& rec = Record(history, OpKind::kCtrInc, start);
      rec.outcome = r.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
      if (r.ok()) rec.number = *r;
    } else if (roll < 55) {
      Result<std::int64_t> r = co_await counter_->Read();
      OpRecord& rec = Record(history, OpKind::kCtrRead, start);
      rec.outcome = r.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
      if (r.ok()) rec.number = *r;
    } else if (roll < 75) {
      const std::string key =
          "k" + std::to_string(rng_.UniformU64(params.kv_keys));
      const std::string value =
          "c" + std::to_string(index_) + "-o" + std::to_string(next_op_);
      Result<rpc::Void> r = co_await kv_->Put(key, value);
      OpRecord& rec = Record(history, OpKind::kKvPut, start);
      rec.outcome = r.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
      rec.key = key;
      rec.value = value;
      if (r.ok() && kv_router_ != nullptr) {
        rec.epoch = kv_router_->last_op_epoch();
        const ObjectId acker = kv_router_->last_write_acker();
        rec.acker = acker.hi ^ acker.lo;
        rec.shard = kv_router_->last_op_shard();
        rec.shard_epoch = kv_router_->last_op_shard_epoch();
        rec.group = kv_router_->last_op_group();
      } else if (r.ok() && kv_failover_ != nullptr) {
        rec.epoch = kv_failover_->last_op_epoch();
        const ObjectId acker = kv_failover_->last_write_acker();
        rec.acker = acker.hi ^ acker.lo;
      }
    } else if (roll < 90) {
      const std::string key =
          "k" + std::to_string(rng_.UniformU64(params.kv_keys));
      Result<std::optional<std::string>> r = co_await kv_->Get(key);
      OpRecord& rec = Record(history, OpKind::kKvGet, start);
      rec.outcome = r.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
      rec.key = key;
      if (r.ok() && r->has_value()) {
        rec.flag = true;
        rec.value = **r;
      }
      if (r.ok() && kv_router_ != nullptr) {
        rec.epoch = kv_router_->last_op_epoch();
        rec.shard = kv_router_->last_op_shard();
        rec.shard_epoch = kv_router_->last_op_shard_epoch();
        rec.group = kv_router_->last_op_group();
      } else if (r.ok() && kv_failover_ != nullptr) {
        rec.epoch = kv_failover_->last_op_epoch();
      }
    } else {
      const std::string name =
          "l" + std::to_string(rng_.UniformU64(params.lock_names));
      const std::uint64_t owner = index_ + 1;  // 0 is "no owner"
      Result<bool> acquired = co_await lock_->TryAcquire(name, owner);
      {
        OpRecord& rec = Record(history, OpKind::kLockTry, start);
        rec.outcome = acquired.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
        rec.key = name;
        rec.flag = acquired.ok() && *acquired;
      }
      if (acquired.ok() && *acquired) {
        co_await sim::SleepFor(sched, rng_.UniformU64(Milliseconds(3)));
        // The definite-hold interval ends at the *first* release attempt;
        // retry a couple of times so the lock usually frees for real.
        for (int attempt = 0; attempt < 3; ++attempt) {
          const SimTime rel_start = sched.now();
          Result<rpc::Void> released = co_await lock_->Release(name, owner);
          OpRecord& rec = Record(history, OpKind::kLockRelease, rel_start);
          rec.outcome = released.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
          rec.key = name;
          if (released.ok()) break;
        }
      }
    }
  }
  done_ = true;
}

}  // namespace proxy::chaos
