#include "chaos/workload.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/factory.h"
#include "core/proxy.h"
#include "rpc/stub.h"
#include "services/replicated_kv.h"
#include "services/shard_router.h"
#include "sim/future.h"

namespace proxy::chaos {

namespace {

/// State shared between an open-loop lane and its in-flight operations.
/// Heap-held: the ops are detached coroutines that may outlive the body
/// of the spawning loop's stack frame between suspensions.
struct OpenLoopShared {
  OpenLoopStats* stats = nullptr;
  History* history = nullptr;
  std::uint32_t client_id = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t next_op = 0;
};

sim::Co<void> OpenLoopOp(sim::Scheduler& sched, services::IKeyValue& kv,
                         const OpenLoopParams params,
                         std::shared_ptr<OpenLoopShared> shared, bool write,
                         std::string key, std::string value) {
  const SimTime start = sched.now();
  const std::uint64_t op_index = shared->next_op++;
  shared->in_flight++;
  Status verdict = Status::Ok();
  bool found = false;
  std::string read_value;
  if (write) {
    Result<rpc::Void> r = co_await kv.Put(key, value);
    verdict = r.status();
  } else {
    Result<std::optional<std::string>> r = co_await kv.Get(key);
    verdict = r.status();
    if (r.ok() && r->has_value()) {
      found = true;
      read_value = std::move(**r);
    }
  }
  shared->in_flight--;
  const SimTime end = sched.now();
  if (verdict.ok()) {
    shared->stats->ok++;
    shared->stats->total_ok_latency += end - start;
    shared->stats->ok_latencies.push_back(end - start);
  } else if (verdict.code() == StatusCode::kResourceExhausted) {
    shared->stats->shed++;
  } else {
    shared->stats->failed++;
  }
  if (shared->history != nullptr) {
    OpRecord rec;
    rec.client = shared->client_id;
    rec.op = op_index;
    rec.kind = write ? OpKind::kKvPut : OpKind::kKvGet;
    rec.outcome = verdict.ok() ? OpOutcome::kOk
                  : verdict.code() == StatusCode::kResourceExhausted
                      ? OpOutcome::kShed
                      : OpOutcome::kFailed;
    rec.start = start;
    rec.end = end;
    rec.key = std::move(key);
    rec.value = write ? std::move(value) : std::move(read_value);
    rec.flag = found;
    rec.priority = static_cast<std::uint8_t>(params.priority);
    shared->history->Append(std::move(rec));
  }
}

}  // namespace

sim::Co<void> RunOpenLoop(sim::Scheduler& sched, services::IKeyValue& kv,
                          const OpenLoopParams& params, OpenLoopStats& stats,
                          History* history, std::uint32_t client_id) {
  auto shared = std::make_shared<OpenLoopShared>();
  shared->stats = &stats;
  shared->history = history;
  shared->client_id = client_id;
  Rng rng(SplitMix64(params.seed ^ 0x09e37779b97f4a7cULL).Next());
  ZipfGenerator zipf(params.keys, params.zipf_skew,
                     SplitMix64(params.seed ^ 0x21edd5a1ULL).Next());
  const SimTime deadline = sched.now() + params.duration;
  const double mean_gap_ns = 1e9 / params.rate_per_sec;
  std::vector<sim::Future<bool>> ops;
  while (sched.now() < deadline) {
    const bool write = rng.UniformU64(100) < params.write_percent;
    const std::string key =
        params.key_prefix + std::to_string(zipf.Next());
    std::string value;
    if (write) {
      value = params.value_tag + "-" + std::to_string(stats.offered);
    }
    stats.offered++;
    ops.push_back(sim::Spawn(
        sched, OpenLoopOp(sched, kv, params, shared, write, key,
                          std::move(value))));
    // Poisson arrivals: exponential gaps, independent of completions —
    // the open loop. A zero gap still advances one scheduler grain.
    const auto gap =
        static_cast<SimDuration>(rng.Exponential(mean_gap_ns));
    co_await sim::SleepFor(sched, std::max<SimDuration>(gap, 1));
  }
  // Drain: per-call deadlines bound every op, so this terminates.
  while (shared->in_flight > 0) {
    co_await sim::SleepFor(sched, Milliseconds(1));
  }
}

std::shared_ptr<rpc::Dispatch> MakeThrottledKvDispatch(
    std::shared_ptr<services::KvService> impl, sim::Scheduler& sched,
    SimDuration service_time) {
  using services::kvwire::GetRequest;
  using services::kvwire::GetResponse;
  using services::kvwire::ListRequest;
  using services::kvwire::ListResponse;
  using services::kvwire::PutRequest;
  auto dispatch = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<GetRequest, GetResponse>(
      *dispatch, services::kvwire::kGet,
      [impl, &sched, service_time](
          GetRequest req,
          const rpc::CallContext&) -> sim::Co<Result<GetResponse>> {
        co_await sim::SleepFor(sched, service_time);
        Result<std::optional<std::string>> value =
            co_await impl->Get(std::move(req.key));
        if (!value.ok()) co_return value.status();
        co_return GetResponse{std::move(*value)};
      });
  rpc::RegisterTyped<PutRequest, rpc::Void>(
      *dispatch, services::kvwire::kPut,
      [impl, &sched, service_time](
          PutRequest req,
          const rpc::CallContext&) -> sim::Co<Result<rpc::Void>> {
        co_await sim::SleepFor(sched, service_time);
        co_return co_await impl->PutExcluding(
            std::move(req.key), std::move(req.value), req.exclude_sink);
      });
  rpc::RegisterTyped<ListRequest, ListResponse>(
      *dispatch, services::kvwire::kList,
      [impl, &sched, service_time](
          ListRequest req,
          const rpc::CallContext&) -> sim::Co<Result<ListResponse>> {
        co_await sim::SleepFor(sched, service_time);
        Result<std::vector<std::string>> keys =
            co_await impl->List(std::move(req.prefix));
        if (!keys.ok()) co_return keys.status();
        co_return ListResponse{std::move(*keys)};
      });
  return dispatch;
}

sim::Co<Result<rpc::Void>> WorkloadClient::BindAll(
    const WorkloadParams& params) {
  core::AcquireOptions opts;
  opts.allow_direct = false;
  // Call policy is declared at acquisition: every proxy the workload
  // acquires gets the chaos-tuned options.
  opts.call = params.call;
  Result<std::shared_ptr<services::ICounter>> counter =
      co_await core::Acquire<services::ICounter>(*context_, "chaos/ctr", opts);
  if (!counter.ok()) co_return counter.status();
  counter_ = *counter;
  Result<std::shared_ptr<services::IKeyValue>> kv =
      co_await core::Acquire<services::IKeyValue>(*context_, "chaos/kv", opts);
  if (!kv.ok()) co_return kv.status();
  kv_ = *kv;
  Result<std::shared_ptr<services::ILockService>> lock =
      co_await core::Acquire<services::ILockService>(*context_, "chaos/lock",
                                                  opts);
  if (!lock.ok()) co_return lock.status();
  lock_ = *lock;

  kv_failover_ = dynamic_cast<services::KvFailoverProxy*>(kv_.get());
  kv_router_ = dynamic_cast<services::KvShardRouterProxy*>(kv_.get());
  co_return rpc::Void{};
}

OpRecord& WorkloadClient::Record(History& history, OpKind kind,
                                 SimTime start) {
  OpRecord r;
  r.client = index_;
  r.op = next_op_++;
  r.kind = kind;
  r.start = start;
  r.end = context_->scheduler().now();
  return history.Append(std::move(r));
}

sim::Co<void> WorkloadClient::Run(const WorkloadParams& params,
                                  History& history) {
  sim::Scheduler& sched = context_->scheduler();
  for (std::uint32_t i = 0; i < params.ops_per_client; ++i) {
    co_await sim::SleepFor(sched, rng_.UniformU64(params.max_think + 1));
    const std::uint64_t roll = rng_.UniformU64(100);
    const SimTime start = sched.now();

    if (roll < 40) {
      Result<std::int64_t> r = co_await counter_->Increment(1);
      OpRecord& rec = Record(history, OpKind::kCtrInc, start);
      rec.outcome = r.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
      if (r.ok()) rec.number = *r;
    } else if (roll < 55) {
      Result<std::int64_t> r = co_await counter_->Read();
      OpRecord& rec = Record(history, OpKind::kCtrRead, start);
      rec.outcome = r.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
      if (r.ok()) rec.number = *r;
    } else if (roll < 75) {
      const std::string key =
          "k" + std::to_string(rng_.UniformU64(params.kv_keys));
      const std::string value =
          "c" + std::to_string(index_) + "-o" + std::to_string(next_op_);
      Result<rpc::Void> r = co_await kv_->Put(key, value);
      OpRecord& rec = Record(history, OpKind::kKvPut, start);
      rec.outcome = r.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
      rec.key = key;
      rec.value = value;
      if (r.ok() && kv_router_ != nullptr) {
        rec.epoch = kv_router_->last_op_epoch();
        const ObjectId acker = kv_router_->last_write_acker();
        rec.acker = acker.hi ^ acker.lo;
        rec.shard = kv_router_->last_op_shard();
        rec.shard_epoch = kv_router_->last_op_shard_epoch();
        rec.group = kv_router_->last_op_group();
      } else if (r.ok() && kv_failover_ != nullptr) {
        rec.epoch = kv_failover_->last_op_epoch();
        const ObjectId acker = kv_failover_->last_write_acker();
        rec.acker = acker.hi ^ acker.lo;
      }
    } else if (roll < 90) {
      const std::string key =
          "k" + std::to_string(rng_.UniformU64(params.kv_keys));
      Result<std::optional<std::string>> r = co_await kv_->Get(key);
      OpRecord& rec = Record(history, OpKind::kKvGet, start);
      rec.outcome = r.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
      rec.key = key;
      if (r.ok() && r->has_value()) {
        rec.flag = true;
        rec.value = **r;
      }
      if (r.ok() && kv_router_ != nullptr) {
        rec.epoch = kv_router_->last_op_epoch();
        rec.shard = kv_router_->last_op_shard();
        rec.shard_epoch = kv_router_->last_op_shard_epoch();
        rec.group = kv_router_->last_op_group();
      } else if (r.ok() && kv_failover_ != nullptr) {
        rec.epoch = kv_failover_->last_op_epoch();
      }
    } else {
      const std::string name =
          "l" + std::to_string(rng_.UniformU64(params.lock_names));
      const std::uint64_t owner = index_ + 1;  // 0 is "no owner"
      Result<bool> acquired = co_await lock_->TryAcquire(name, owner);
      {
        OpRecord& rec = Record(history, OpKind::kLockTry, start);
        rec.outcome = acquired.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
        rec.key = name;
        rec.flag = acquired.ok() && *acquired;
      }
      if (acquired.ok() && *acquired) {
        co_await sim::SleepFor(sched, rng_.UniformU64(Milliseconds(3)));
        // The definite-hold interval ends at the *first* release attempt;
        // retry a couple of times so the lock usually frees for real.
        for (int attempt = 0; attempt < 3; ++attempt) {
          const SimTime rel_start = sched.now();
          Result<rpc::Void> released = co_await lock_->Release(name, owner);
          OpRecord& rec = Record(history, OpKind::kLockRelease, rel_start);
          rec.outcome = released.ok() ? OpOutcome::kOk : OpOutcome::kFailed;
          rec.key = name;
          if (released.ok()) break;
        }
      }
    }
  }
  done_ = true;
}

}  // namespace proxy::chaos
