// Fault schedules: the adversary's playbook as data.
//
// A fault schedule is a flat list of timed episodes generated from a
// seed by a pure function. Keeping it a value (rather than inline random
// draws while the sim runs) is what makes exploration minimizable: the
// ddmin pass in minimize.h deletes entries and re-runs, and a deleted
// episode removes both its onset and its restore.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace proxy::chaos {

enum class FaultKind : std::uint8_t {
  kPartition = 1,   // cut nodes a<->b for `duration`, then heal
  kIsolate = 2,     // cut node a from every other node for `duration`
  kPause = 3,       // hold node a's inbound messages for `duration`
  kLossBurst = 4,   // link a<->b drops with probability `loss` for `duration`
  kJitterBurst = 5, // link a<->b gains up-to-`jitter` reordering delay
  kLinkChurn = 6,   // permanently retune link a<->b latency/jitter
  kSpoofBurst = 7,  // forge replies at workload client index `a`
  kCrashRestart = 8,  // crash-stop node a for `duration`, then restart it
};

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kPartition;
  std::uint32_t a = 0;       // node id (or client index for kSpoofBurst)
  std::uint32_t b = 0;       // peer node id, when the fault is a link fault
  SimDuration duration = 0;  // episode length; 0 for permanent churn
  double loss = 0.0;         // kLossBurst
  SimDuration latency = 0;   // kLinkChurn
  SimDuration jitter = 0;    // kJitterBurst / kLinkChurn

  [[nodiscard]] std::string ToString() const;
};

/// Adversary tuning. The generated schedule confines every episode to
/// [0, horizon]; the harness runs the workload through that window and
/// heals whatever is left before checking recovery invariants.
struct AdversaryParams {
  SimDuration horizon = Milliseconds(1200);
  SimDuration mean_gap = Milliseconds(25);      // between episode onsets
  SimDuration max_fault_len = Milliseconds(150);
  double max_loss = 0.9;
  SimDuration max_extra_jitter = Milliseconds(2);
  /// Include reply-spoofing bursts. Harmless while reply authentication
  /// is on (they must be rejected); the teeth of the reintroduced-bug
  /// acceptance check when it is off.
  bool spoof = true;
  /// Nodes eligible for crash-restart episodes (the replicated-kv
  /// replica nodes in the standard harness). Empty = no crash faults.
  /// Crash episodes are generated on their own timeline and never
  /// overlap each other — at most one node is down at any instant, the
  /// crash-stop budget the replication layer's durability argument (and
  /// therefore the kv-durability checker) assumes.
  std::vector<std::uint32_t> crash_targets;
  SimDuration max_crash_len = Milliseconds(250);
  SimDuration mean_crash_gap = Milliseconds(280);
};

/// Pure: (seed, topology, params) -> schedule. `node_count` spans every
/// node in the world (name service, servers, clients, probes);
/// `client_count` scopes spoof-burst targets.
std::vector<FaultEvent> GenerateSchedule(std::uint64_t seed,
                                         std::uint32_t node_count,
                                         std::uint32_t client_count,
                                         const AdversaryParams& params);

}  // namespace proxy::chaos
