#include "chaos/trace.h"

#include <sstream>

namespace proxy::chaos {

void TraceRecorder::Attach(sim::Scheduler& sched, sim::Network& net) {
  sched.SetStepHook([this](SimTime t, std::uint64_t seq) {
    Fold(t);
    Fold(seq);
  });
  net.SetTraceHook([this](sim::NetTraceKind kind, NodeId from, NodeId to,
                          PortId to_port, std::size_t bytes) {
    Fold((static_cast<std::uint64_t>(kind) << 56) ^
         (static_cast<std::uint64_t>(from.value()) << 40) ^
         (static_cast<std::uint64_t>(to.value()) << 24) ^
         (static_cast<std::uint64_t>(to_port.value()) << 8) ^ bytes);
  });
}

void TraceRecorder::Note(SimTime time, std::string text) {
  Fold(time);
  Fold(Fnv1a(text));
  tail_.push_back(Record{time, std::move(text)});
  if (tail_.size() > keep_tail_) tail_.pop_front();
}

std::string TraceRecorder::DumpTail(std::size_t max_lines) const {
  std::ostringstream out;
  const std::size_t skip =
      tail_.size() > max_lines ? tail_.size() - max_lines : 0;
  std::size_t i = 0;
  for (const Record& r : tail_) {
    if (i++ < skip) continue;
    out << FormatDuration(r.time) << "  " << r.text << "\n";
  }
  return out.str();
}

}  // namespace proxy::chaos
