// The chaos harness: one seed in, one verdict out.
//
// RunChaos(options) builds a fresh simulated world (name service, a
// counter+lock server, a KV server, N workload clients, a rogue spoofer
// node, and an ARQ probe stream on two more nodes), arms the adversary
// with the seed's fault schedule, drives the workload through the fault
// window, heals everything, and then checks every global invariant
// against the recorded history. The entire run — topology, workload,
// faults, message timing — is a pure function of ChaosOptions, so a
// violating seed replays byte-identically (same trace fingerprint) and
// its schedule can be minimized by re-running subsets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "chaos/invariants.h"
#include "chaos/workload.h"

namespace proxy::chaos {

/// Deliberately reintroducible regressions, for proving the harness has
/// teeth: a sweep that cannot catch a known-bad build catches nothing.
enum class Bug : std::uint8_t {
  kNone = 0,
  /// Disables the RPC client's reply from-address check (the PR-1
  /// hardening): any host that guesses nonce+seq completes a call.
  kReplyAuth = 1,
  /// Disables epoch fencing in the replicated KV: a deposed primary
  /// ignores higher-epoch batches and keeps acknowledging writes at its
  /// stale epoch. Caught by kv-epoch-regression / kv-durability.
  kStalePrimary = 2,
  /// Disables shard-ownership fencing (sharded runs): a group keeps
  /// serving keys of shards it froze or released, so a client's stale
  /// map is never corrected and its traffic lands on the wrong group
  /// across migrations. Caught by kv-split-shard / kv-lost-key.
  kStaleShardMap = 3,
  /// Disables the client-side retry governors (per-call attempt budget
  /// and per-destination retry token bucket) on the overload lanes: a
  /// congested server now breeds retransmission storms — the classic
  /// retry-amplification collapse. Caught by
  /// bounded-retry-amplification (requires --overload).
  kRetryStorm = 4,
};

struct ChaosOptions {
  std::uint64_t seed = 1;
  WorkloadParams workload;
  AdversaryParams adversary;
  /// Overrides the seed-generated fault schedule (the minimizer re-runs
  /// subsets through here). nullopt = GenerateSchedule(seed, ...).
  std::optional<std::vector<FaultEvent>> schedule;
  Bug bug = Bug::kNone;
  /// Sharded topology: the KV becomes two 3-replica groups behind a
  /// routing proxy (protocol 5), and a seeded rebalancer drives
  /// `shard_moves` online shard migrations through the fault window.
  /// The clients' code is identical either way — they Acquire the same
  /// name and speak plain IKeyValue; only the binding differs.
  bool sharded = false;
  std::uint32_t shard_moves = 3;
  /// Overload phase: a dedicated throttled KV server with a bounded
  /// admission queue, driven past its knee by three open-loop lanes (one
  /// per priority class) concurrently with the fault window. Adds the
  /// admission/shed/retry-amplification checkers to the verdict. The
  /// overload world is disjoint from the main topology (own server, own
  /// clients, own history), so it composes with --sharded and every bug.
  bool overload = false;
  /// Human-readable trace records kept for diagnosis.
  std::size_t trace_tail = 2048;
  /// Export the Runtime's MetricsRegistry into the report (table + JSON).
  bool collect_metrics = false;
  /// Enable the SpanRecorder for the whole run and render the call trees
  /// into the report. Deterministic: same seed, byte-identical render.
  bool collect_spans = false;
  /// With collect_spans: render only this trace id (0 = every tree).
  std::uint64_t trace_filter = 0;
};

struct ChaosReport {
  std::uint64_t seed = 0;
  std::vector<Violation> violations;

  /// Rolling hash over every scheduler step, network message event, and
  /// injection note — equal across runs iff the interleaving was
  /// identical.
  std::uint64_t fingerprint = 0;
  std::uint64_t trace_events = 0;

  std::vector<FaultEvent> schedule;  // as executed
  std::size_t faults_applied = 0;
  std::size_t history_ops = 0;
  std::int64_t final_counter = -1;
  std::uint64_t forged_replies = 0;    // sent by the spoofer
  std::uint64_t spoofed_rejected = 0;  // bounced off reply authentication
  std::uint64_t arq_delivered = 0;     // probe stream messages received
  std::uint64_t kv_promotions = 0;     // primary takeovers across replicas
  std::uint64_t kv_max_epoch = 0;      // highest epoch any replica reached
  std::uint64_t kv_fenced = 0;         // stale-epoch requests rejected
  bool sharded = false;                // sharded topology ran
  std::uint64_t shard_map_version = 0;     // final committed map version
  std::uint64_t shard_moves_ok = 0;        // completed migrations
  std::uint64_t shard_move_failures = 0;   // failed attempts (recoverable)
  std::uint64_t wrong_shard_rejections = 0;  // replica-side fencing hits
  std::uint64_t wrong_shard_retries = 0;   // router refresh-and-retry count
  /// Groups whose every replica ended crash-wiped (syncing at epoch 0):
  /// the schedule sequentially destroyed all copies, which volatile
  /// crash-stop storage cannot survive. Such a group is provably empty
  /// and terminal, so move recovery and the quiescence residency checks
  /// exempt it (loudly) instead of reporting protocol violations.
  std::uint64_t wiped_groups = 0;
  bool overload = false;                  // overload phase ran
  std::uint64_t overload_offered = 0;     // open-loop arrivals, all lanes
  std::uint64_t overload_ok = 0;          // completed OK (goodput)
  std::uint64_t overload_shed = 0;        // RESOURCE_EXHAUSTED verdicts
  std::uint64_t overload_rejected = 0;    // server fast-rejects
  std::uint64_t overload_evicted = 0;     // queued waiters displaced
  std::uint64_t overload_deadline_shed = 0;  // expired in queue, dropped
  std::uint64_t overload_queue_peak = 0;  // admission queue high-water
  std::uint64_t overload_retransmissions = 0;  // all lanes, client-side
  std::string trace_tail;              // populated when violations exist
  std::string metrics_table;           // collect_metrics: RenderTable()
  std::string metrics_json;            // collect_metrics: RenderJson()
  std::string span_trees;              // collect_spans: RenderAll()
  std::vector<std::uint64_t> trace_ids;  // collect_spans: every trace id

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string Summary() const;
};

/// Runs one complete chaos scenario. Deterministic in `options`.
ChaosReport RunChaos(const ChaosOptions& options);

}  // namespace proxy::chaos
