// The chaos harness: one seed in, one verdict out.
//
// RunChaos(options) builds a fresh simulated world (name service, a
// counter+lock server, a KV server, N workload clients, a rogue spoofer
// node, and an ARQ probe stream on two more nodes), arms the adversary
// with the seed's fault schedule, drives the workload through the fault
// window, heals everything, and then checks every global invariant
// against the recorded history. The entire run — topology, workload,
// faults, message timing — is a pure function of ChaosOptions, so a
// violating seed replays byte-identically (same trace fingerprint) and
// its schedule can be minimized by re-running subsets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "chaos/invariants.h"
#include "chaos/workload.h"

namespace proxy::chaos {

/// Deliberately reintroducible regressions, for proving the harness has
/// teeth: a sweep that cannot catch a known-bad build catches nothing.
enum class Bug : std::uint8_t {
  kNone = 0,
  /// Disables the RPC client's reply from-address check (the PR-1
  /// hardening): any host that guesses nonce+seq completes a call.
  kReplyAuth = 1,
  /// Disables epoch fencing in the replicated KV: a deposed primary
  /// ignores higher-epoch batches and keeps acknowledging writes at its
  /// stale epoch. Caught by kv-epoch-regression / kv-durability.
  kStalePrimary = 2,
};

struct ChaosOptions {
  std::uint64_t seed = 1;
  WorkloadParams workload;
  AdversaryParams adversary;
  /// Overrides the seed-generated fault schedule (the minimizer re-runs
  /// subsets through here). nullopt = GenerateSchedule(seed, ...).
  std::optional<std::vector<FaultEvent>> schedule;
  Bug bug = Bug::kNone;
  /// Human-readable trace records kept for diagnosis.
  std::size_t trace_tail = 2048;
  /// Export the Runtime's MetricsRegistry into the report (table + JSON).
  bool collect_metrics = false;
  /// Enable the SpanRecorder for the whole run and render the call trees
  /// into the report. Deterministic: same seed, byte-identical render.
  bool collect_spans = false;
  /// With collect_spans: render only this trace id (0 = every tree).
  std::uint64_t trace_filter = 0;
};

struct ChaosReport {
  std::uint64_t seed = 0;
  std::vector<Violation> violations;

  /// Rolling hash over every scheduler step, network message event, and
  /// injection note — equal across runs iff the interleaving was
  /// identical.
  std::uint64_t fingerprint = 0;
  std::uint64_t trace_events = 0;

  std::vector<FaultEvent> schedule;  // as executed
  std::size_t faults_applied = 0;
  std::size_t history_ops = 0;
  std::int64_t final_counter = -1;
  std::uint64_t forged_replies = 0;    // sent by the spoofer
  std::uint64_t spoofed_rejected = 0;  // bounced off reply authentication
  std::uint64_t arq_delivered = 0;     // probe stream messages received
  std::uint64_t kv_promotions = 0;     // primary takeovers across replicas
  std::uint64_t kv_max_epoch = 0;      // highest epoch any replica reached
  std::uint64_t kv_fenced = 0;         // stale-epoch requests rejected
  std::string trace_tail;              // populated when violations exist
  std::string metrics_table;           // collect_metrics: RenderTable()
  std::string metrics_json;            // collect_metrics: RenderJson()
  std::string span_trees;              // collect_spans: RenderAll()
  std::vector<std::uint64_t> trace_ids;  // collect_spans: every trace id

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string Summary() const;
};

/// Runs one complete chaos scenario. Deterministic in `options`.
ChaosReport RunChaos(const ChaosOptions& options);

}  // namespace proxy::chaos
