// Fault-schedule minimization (delta debugging).
//
// A violating seed usually carries a schedule full of bystander faults.
// MinimizeSchedule re-runs subsets of the schedule (everything else about
// the scenario held fixed) and keeps the smallest one that still violates
// the *same* invariant — the classic ddmin loop, sound here because a
// chaos run is a pure function of (options, schedule).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "chaos/harness.h"

namespace proxy::chaos {

struct MinimizeResult {
  /// 1-minimal subset: removing any single remaining event no longer
  /// reproduces the violation (unless the run budget cut the loop short).
  std::vector<FaultEvent> schedule;
  /// The invariant the subset still violates (== the requested one).
  std::string invariant;
  /// The violating run on the minimized schedule.
  ChaosReport report;
  /// Chaos executions spent.
  std::size_t runs = 0;
  /// True when ddmin ran to 1-minimality within the budget.
  bool converged = false;
};

/// Shrinks `schedule` while RunChaos(options + subset) still violates
/// `invariant`. `options.schedule` is overwritten per probe; the caller's
/// other fields (seed, workload, bug) are what pins the scenario.
MinimizeResult MinimizeSchedule(ChaosOptions options,
                                std::vector<FaultEvent> schedule,
                                const std::string& invariant,
                                std::size_t max_runs = 256);

}  // namespace proxy::chaos
