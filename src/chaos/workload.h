// Concurrent workload over the proxy invocation path.
//
// Each workload client is a coroutine on its own node, bound through the
// name service to the shared counter, KV, and lock services. It issues a
// seeded random mix of operations with per-call deadlines (so every
// operation terminates under any fault pattern) and records each one in
// the shared History for the invariant checkers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chaos/invariants.h"
#include "common/rng.h"
#include "core/runtime.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "services/counter.h"
#include "services/kv.h"
#include "services/lock.h"
#include "sim/task.h"

namespace proxy::services {
class KvFailoverProxy;
class KvShardRouterProxy;
}  // namespace proxy::services

namespace proxy::chaos {

struct WorkloadParams {
  std::uint32_t clients = 4;
  std::uint32_t ops_per_client = 60;
  SimDuration max_think = Milliseconds(8);  // uniform gap between ops
  std::uint32_t kv_keys = 8;                // small space -> contention
  std::uint32_t lock_names = 2;
  rpc::CallOptions call;                    // per-op budget

  WorkloadParams() {
    call.retry_interval = Milliseconds(4);
    call.max_retries = 64;
    call.deadline = Milliseconds(120);
  }
};

/// Open-loop overload driver: arrivals fire on a Poisson clock with no
/// regard for completions — the defining property of an overload test
/// (a closed loop self-throttles and can never push a server past its
/// knee). Each arrival models an independent client: it picks a Zipf
/// key, issues a Get or Put through `kv`, and its latency/outcome is
/// recorded regardless of how many earlier arrivals are still in
/// flight, so thousands of logical clients ride one generator lane.
struct OpenLoopParams {
  double rate_per_sec = 2000.0;  // Poisson arrival rate, virtual time
  SimDuration duration = Milliseconds(400);
  std::uint32_t keys = 64;
  double zipf_skew = 1.1;
  std::uint32_t write_percent = 20;
  std::uint64_t seed = 1;
  /// Stamped into history records; the proxy driven by this lane must
  /// carry the same priority in its CallOptions for the stamp to mean
  /// anything.
  rpc::Priority priority = rpc::Priority::kNormal;
  std::string key_prefix = "ov";
  /// Unique tag baked into every written value ("<tag>-<n>") so the
  /// shed-not-executed checker can match a value to its exact Put.
  std::string value_tag = "ovl";
};

struct OpenLoopStats {
  std::uint64_t offered = 0;  // arrivals fired
  std::uint64_t ok = 0;       // completed OK (goodput)
  std::uint64_t shed = 0;     // RESOURCE_EXHAUSTED after pushback retries
  std::uint64_t failed = 0;   // any other failure (timeouts, ...)
  SimDuration total_ok_latency = 0;
  std::vector<SimDuration> ok_latencies;  // per OK op, arrival order
};

/// Runs one open-loop lane against `kv`. Returns when the arrival window
/// has closed AND every spawned operation finished (per-call deadlines
/// guarantee that happens). `history` (optional) receives one OpRecord
/// per operation under client id `client_id`, with OpOutcome::kShed for
/// RESOURCE_EXHAUSTED outcomes.
sim::Co<void> RunOpenLoop(sim::Scheduler& sched, services::IKeyValue& kv,
                          const OpenLoopParams& params, OpenLoopStats& stats,
                          History* history = nullptr,
                          std::uint32_t client_id = 0);

/// Wraps a KvService in a dispatch whose Get/Put/List handlers burn
/// `service_time` of virtual time before answering — the capacity model
/// for overload scenarios (with RpcServer::set_admission bounding
/// concurrency, the server saturates at max_concurrency / service_time
/// ops per second).
std::shared_ptr<rpc::Dispatch> MakeThrottledKvDispatch(
    std::shared_ptr<services::KvService> impl, sim::Scheduler& sched,
    SimDuration service_time);

/// One workload client: its context, proxies, and op generator state.
class WorkloadClient {
 public:
  WorkloadClient(core::Context& context, std::uint32_t index,
                 std::uint64_t seed)
      : context_(&context),
        index_(index),
        rng_(SplitMix64(seed ^ (0x10ad0000ULL + index)).Next()) {}

  /// Binds the three service proxies through the name service and applies
  /// the workload call options. Run to completion before the adversary
  /// is armed (chaos targets the invocation path, not bootstrap).
  sim::Co<Result<rpc::Void>> BindAll(const WorkloadParams& params);

  /// Issues the op mix, recording every operation into `history`.
  sim::Co<void> Run(const WorkloadParams& params, History& history);

  [[nodiscard]] core::Context& context() noexcept { return *context_; }
  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] bool done() const noexcept { return done_; }

  [[nodiscard]] services::ICounter* counter() noexcept {
    return counter_.get();
  }
  [[nodiscard]] services::IKeyValue* kv() noexcept { return kv_.get(); }
  [[nodiscard]] services::ILockService* lock() noexcept {
    return lock_.get();
  }

 private:
  OpRecord& Record(History& history, OpKind kind, SimTime start);

  core::Context* context_;
  std::uint32_t index_;
  Rng rng_;
  std::uint64_t next_op_ = 0;
  bool done_ = false;
  std::shared_ptr<services::ICounter> counter_;
  std::shared_ptr<services::IKeyValue> kv_;
  std::shared_ptr<services::ILockService> lock_;
  /// Non-owning view of kv_ when the bound proxy speaks the replicated
  /// protocol; lets ops record the serving epoch and acknowledging
  /// replica for the replication invariants. Null for a plain KvProxy.
  services::KvFailoverProxy* kv_failover_ = nullptr;
  /// Non-owning view of kv_ when the name resolved to a sharded
  /// deployment (protocol 5); adds the shard, serving group and
  /// shard-ownership epoch to each record for the sharding invariants.
  /// The client issues the same calls either way — the extra stamping is
  /// observability, not behaviour.
  services::KvShardRouterProxy* kv_router_ = nullptr;
};

}  // namespace proxy::chaos
