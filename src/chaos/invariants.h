// Operation history and global invariant checkers.
//
// The workload records every operation it issues (kind, key/value,
// virtual start/end, outcome); at the run's quiescent point the checkers
// validate global properties over the whole history. Every check is
// *sound under uncertainty*: an operation that failed (timeout,
// breaker shed, decode error) may or may not have executed server-side,
// so the checkers only flag states no correct execution could produce.
//
//   counter-linearizable   unit increments return distinct values, and a
//                          value never runs backwards across real-time
//                          ordered operations
//   counter-final-bound    final value within [acks, acks + unknowns] and
//                          >= every acknowledged value
//   kv-integrity           a Get only ever returns a value some Put with
//                          that key actually wrote, and never one whose
//                          Put started after the Get completed
//   lock-mutex             definite-hold intervals of different owners
//                          never overlap
//   arq-order              a ReliableChannel stream arrives strictly
//                          ascending (ordered, duplicate-free; gaps only
//                          from declared-failure drops)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "rpc/server.h"

namespace proxy::chaos {

enum class OpKind : std::uint8_t {
  kCtrInc = 1,
  kCtrRead = 2,
  kKvPut = 3,
  kKvGet = 4,
  kLockTry = 5,
  kLockRelease = 6,
};

enum class OpOutcome : std::uint8_t {
  kOk = 1,
  kFailed = 2,  // timeout / error: may or may not have executed
  /// The server explicitly rejected the call with RESOURCE_EXHAUSTED
  /// (admission control). Unlike kFailed this is a *definite* verdict:
  /// rejects are reply-cached, so a shed operation never executed and
  /// its effects must never become visible (CheckShedNotExecuted).
  kShed = 3,
};

struct OpRecord {
  std::uint32_t client = 0;
  std::uint64_t op = 0;       // per-client sequence
  OpKind kind = OpKind::kCtrInc;
  OpOutcome outcome = OpOutcome::kFailed;
  SimTime start = 0;
  SimTime end = 0;
  std::string key;            // kv key / lock name
  std::string value;          // kv value written or read ("" = absent)
  std::int64_t number = 0;    // counter value returned
  bool flag = false;          // kKvGet: value present; kLockTry: acquired
  /// Replication epoch reported by the replica that served a successful
  /// kv operation (0 when the op failed or the service is unreplicated).
  std::uint64_t epoch = 0;
  /// Identity (folded object id) of the replica that acknowledged a
  /// successful kv Put — the split-brain checker's evidence.
  std::uint64_t acker = 0;
  /// Sharded deployments only (recorded off the routing proxy): the
  /// shard the key hashed to, the shard-ownership epoch the serving
  /// group stamped on the reply, and that group's name. `group` empty
  /// means the op went through an unsharded binding; the sharding
  /// checkers ignore such records entirely.
  std::uint32_t shard = 0;
  std::uint64_t shard_epoch = 0;
  std::string group;
  /// Priority the op was issued at (rpc::Priority value; 0 = P0/high).
  /// Stamped by the open-loop overload generator; the priority checkers
  /// ignore records from the closed-loop workload (all default P1).
  std::uint8_t priority = 1;
};

struct History {
  std::vector<OpRecord> ops;

  OpRecord& Append(OpRecord r) {
    ops.push_back(std::move(r));
    return ops.back();
  }
};

struct Violation {
  std::string invariant;  // stable name, e.g. "counter-linearizable"
  std::string detail;

  [[nodiscard]] std::string ToString() const {
    return invariant + ": " + detail;
  }
};

std::vector<Violation> CheckCounter(const History& history,
                                    std::int64_t final_value);
std::vector<Violation> CheckKv(const History& history);
std::vector<Violation> CheckLocks(const History& history);
std::vector<Violation> CheckArqStream(
    const std::vector<std::uint64_t>& received);

/// Replication invariants over the epoch-stamped kv history. Both only
/// consider operations that carry an epoch (epoch != 0), and both scope
/// comparisons to operations served by the same replica group:
/// replication epochs are per-group counters, meaningless across groups
/// (the cross-group story belongs to the sharding checkers below).
///
/// kv-durability: an acknowledged Put is never missing from a later Get
/// answered by the same group at an epoch >= the ack's epoch. (A Get
/// served at a lower epoch may legitimately come from a stale, evicted
/// replica; the workload issues no deletes, so "absent" is otherwise
/// indefensible.)
std::vector<Violation> CheckKvDurability(const History& history);

/// kv-split-brain: two different replicas of one group never acknowledge
/// writes under the same epoch.
/// kv-epoch-regression: across real-time ordered acknowledged Puts
/// served by one group (one completes before the other starts), the
/// acknowledging epoch never decreases — a deposed primary that keeps
/// acknowledging after its successor took over shows up here.
std::vector<Violation> CheckKvEpochs(const History& history);

/// Sharding invariants over router-recorded operations (group != "").
/// Both are vacuous on unsharded histories.
///
/// kv-lost-key: an acknowledged Put is never read back "absent". The
/// only exemptions a correct sharded system can produce: the Get was
/// answered under an older shard-ownership epoch (a reply raced a
/// migration commit), or by the same group at an older replication
/// epoch (a stale, deposed replica). In particular a zero shard-epoch
/// stamp on either side is *never* exempt — with fencing on, a group
/// only acknowledges keys of shards it owns, so stamp 0 on an
/// acknowledged sharded op already implies a non-owner served it.
std::vector<Violation> CheckKvLostKey(const History& history);

/// kv-split-shard: one shard, one owner. Two different groups never
/// acknowledge writes to the same shard under the same shard-ownership
/// epoch, and no group ever acknowledges a write to a shard while
/// disclaiming ownership of it (shard-epoch stamp 0).
std::vector<Violation> CheckKvSplitShard(const History& history);

/// Overload invariants over a server's admission-decision log (installed
/// via RpcServer::set_admission_log).
///
/// no-priority-inversion: at the moment a request is fast-rejected, no
/// strictly lower-priority request may be left sitting in the admission
/// queue — the arrival should have displaced it instead. Checked per
/// decision (the event records the worst waiting class *after* the
/// decision), so it is sound under any interleaving.
/// bounded-queue: no decision ever observes the queue deeper than its
/// configured capacity, and the lifetime high-water mark agrees.
std::vector<Violation> CheckAdmission(
    const std::vector<rpc::AdmissionEvent>& log, std::size_t queue_capacity,
    std::size_t queue_peak);

/// shed-means-not-executed: a Put the server shed (OpOutcome::kShed —
/// the client saw RESOURCE_EXHAUSTED, and rejects are reply-cached so no
/// retransmission can sneak it in later) must never have its unique
/// value observed by any successful Get, at any time. The generator
/// writes a distinct value per operation, so value equality identifies
/// the exact shed write.
std::vector<Violation> CheckShedNotExecuted(const History& history);

/// bounded-retry-amplification: with the retry governors on, one
/// client's total retransmissions cannot exceed its per-destination
/// token bucket's income — `initial_tokens + refill_per_success *
/// ok_replies` per destination (`destinations` = how many the client
/// talked to; the overload clients talk to exactly one). The retry-storm
/// bug (governors disabled) blows through this bound under overload.
std::vector<Violation> CheckRetryAmplification(
    std::uint64_t retransmissions, std::uint64_t ok_replies,
    std::uint64_t destinations, double initial_tokens,
    double refill_per_success, const std::string& who);

}  // namespace proxy::chaos
