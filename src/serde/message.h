// Message envelope.
//
// Every datagram the runtime puts on the (simulated) wire is wrapped in
// an envelope carrying a magic number, a format version and a CRC, so a
// receiver can reject foreign, stale, or corrupted traffic before
// interpreting a single payload byte. Corruption injection in tests
// exercises this path.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace proxy::serde {

inline constexpr std::uint16_t kEnvelopeMagic = 0x5053;  // "PS"
inline constexpr std::uint8_t kEnvelopeVersion = 1;

class Writer;

/// Wraps `payload` in an envelope: magic(2) version(1) crc(4) len payload.
Bytes WrapEnvelope(BytesView payload);

/// Chain-aware wrap: checksums `payload`'s buffer chain incrementally
/// and gathers it straight into the framed output — the send path's
/// single flatten, done once at the network boundary. `payload` is
/// consumed. Wire bytes are identical to the BytesView overload.
Bytes WrapEnvelope(Writer&& payload);

/// Validates and strips the envelope, returning the payload.
Result<Bytes> UnwrapEnvelope(BytesView framed);

/// Borrowing variant: the returned payload is a window of `framed`,
/// valid only while the caller's buffer lives. No copy — the receive
/// path narrows its arrival buffer instead of duplicating it.
Result<BytesView> UnwrapEnvelopeView(BytesView framed);

/// Size overhead added by WrapEnvelope for a payload of `n` bytes.
std::size_t EnvelopeOverhead(std::size_t payload_size);

}  // namespace proxy::serde
