// Serializing archive.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.h"
#include "serde/wire.h"

namespace proxy::serde {

/// Append-only encoder. Methods never fail; size limits are enforced at
/// the framing/transport boundary.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void WriteU8(std::uint8_t v) { buf_.push_back(v); }
  void WriteU16(std::uint16_t v) { PutFixed16(buf_, v); }
  void WriteU32(std::uint32_t v) { PutFixed32(buf_, v); }
  void WriteU64(std::uint64_t v) { PutFixed64(buf_, v); }
  void WriteVarint(std::uint64_t v) { PutVarint(buf_, v); }
  void WriteSigned(std::int64_t v) { PutVarint(buf_, ZigZagEncode(v)); }
  void WriteBool(bool v) { buf_.push_back(v ? 1 : 0); }

  void WriteDouble(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    PutFixed64(buf_, bits);
  }

  /// Length-prefixed byte string.
  void WriteBytes(BytesView v) {
    PutVarint(buf_, v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  void WriteString(std::string_view v) {
    PutVarint(buf_, v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }

  /// Raw append without a length prefix (for already-framed payloads).
  void WriteRaw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& buffer() const noexcept { return buf_; }

  /// Moves the encoded bytes out; the writer is empty afterwards.
  [[nodiscard]] Bytes Take() noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

}  // namespace proxy::serde
