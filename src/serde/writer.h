// Serializing archive over a buffer chain.
//
// The encoder appends into a chain of slab chunks instead of one flat
// vector: field encodes land in the current tail slab, large payloads
// are *adopted* as their own chunk (ownership moves, no copy), and a
// nested writer's chain is *spliced* onto its parent's. The bytes are
// gathered into one contiguous buffer exactly once, at the network
// boundary (Take() or the envelope layer's chunk walk) — the
// rethinkdb-style gather-on-send shape. Only that gather and explicit
// view copies tick serde::WireCopyCounter.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "serde/wire.h"

namespace proxy::serde {

/// Append-only encoder. Methods never fail; size limits are enforced at
/// the framing/transport boundary.
class Writer {
 public:
  /// Target slab size: a tail chunk that grows past this is sealed and a
  /// fresh slab started, so field encodes stay cache-friendly without
  /// ever re-copying what previous slabs hold.
  static constexpr std::size_t kChunkSize = 4096;

  /// Buffers below this are cheaper to copy into the tail slab than to
  /// carry as their own chunk (header + gather bookkeeping).
  static constexpr std::size_t kAdoptThreshold = 32;

  Writer() = default;
  explicit Writer(std::size_t reserve) { tail_.reserve(reserve); }

  void WriteU8(std::uint8_t v) { Tail().push_back(v); }
  void WriteU16(std::uint16_t v) { PutFixed16(Tail(), v); }
  void WriteU32(std::uint32_t v) { PutFixed32(Tail(), v); }
  void WriteU64(std::uint64_t v) { PutFixed64(Tail(), v); }
  void WriteVarint(std::uint64_t v) { PutVarint(Tail(), v); }
  void WriteSigned(std::int64_t v) { PutVarint(Tail(), ZigZagEncode(v)); }
  void WriteBool(bool v) { Tail().push_back(v ? 1 : 0); }

  void WriteDouble(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    PutFixed64(Tail(), bits);
  }

  /// Length-prefixed byte string (copying: the caller keeps `v`).
  void WriteBytes(BytesView v) {
    PutVarint(Tail(), v.size());
    AppendCopy(v);
  }

  /// Length-prefixed byte string, adopting the buffer: no copy, the
  /// chain takes ownership and the gather step emits it in place.
  void WriteBytes(Bytes&& v) {
    PutVarint(Tail(), v.size());
    AppendOwned(std::move(v));
  }

  void WriteString(std::string_view v) {
    PutVarint(Tail(), v.size());
    AppendCopy(BytesView(reinterpret_cast<const std::uint8_t*>(v.data()),
                         v.size()));
  }

  /// Raw append without a length prefix (for already-framed payloads).
  void WriteRaw(BytesView v) { AppendCopy(v); }
  void WriteRaw(Bytes&& v) { AppendOwned(std::move(v)); }

  /// Splices another writer's whole chain onto this one — ownership of
  /// the chunks moves, no bytes are copied. `other` is empty afterwards.
  void SpliceFrom(Writer&& other) {
    SealTail();
    for (Bytes& chunk : other.chunks_) {
      sealed_size_ += chunk.size();
      chunks_.push_back(std::move(chunk));
    }
    other.chunks_.clear();
    if (!other.tail_.empty()) {
      sealed_size_ += other.tail_.size();
      chunks_.push_back(std::move(other.tail_));
    }
    other.tail_.clear();
    other.sealed_size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return sealed_size_ + tail_.size();
  }

  /// Walks the chain in wire order without flattening (incremental CRC,
  /// scatter-gather send).
  template <typename Fn>
  void ForEachChunk(Fn&& fn) const {
    for (const Bytes& chunk : chunks_) fn(View(chunk));
    if (!tail_.empty()) fn(View(tail_));
  }

  /// Gathers the chain into one contiguous buffer; the writer is empty
  /// afterwards. A single-chunk chain moves out copy-free; otherwise
  /// this is the one bulk copy of the send path and is counted.
  [[nodiscard]] Bytes Take() noexcept {
    if (chunks_.empty()) {
      sealed_size_ = 0;
      return std::move(tail_);
    }
    if (tail_.empty() && chunks_.size() == 1) {
      Bytes out = std::move(chunks_.front());
      chunks_.clear();
      sealed_size_ = 0;
      return out;
    }
    Bytes out;
    out.reserve(size());
    ForEachChunk([&out](BytesView v) {
      out.insert(out.end(), v.begin(), v.end());
    });
    CountWireCopy(out.size());
    chunks_.clear();
    tail_.clear();
    sealed_size_ = 0;
    return out;
  }

 private:
  /// The slab the next field encode appends to.
  Bytes& Tail() {
    if (tail_.size() >= kChunkSize) {
      SealTail();
      tail_.reserve(kChunkSize);
    }
    return tail_;
  }

  void SealTail() {
    if (tail_.empty()) return;
    sealed_size_ += tail_.size();
    chunks_.push_back(std::move(tail_));
    tail_.clear();
  }

  void AppendCopy(BytesView v) {
    if (v.empty()) return;
    CountWireCopy(v.size());
    Bytes& t = Tail();
    t.insert(t.end(), v.begin(), v.end());
  }

  void AppendOwned(Bytes&& v) {
    if (v.size() < kAdoptThreshold) {
      AppendCopy(View(v));
      return;
    }
    SealTail();
    sealed_size_ += v.size();
    chunks_.push_back(std::move(v));
  }

  std::vector<Bytes> chunks_;  // sealed slabs, in wire order
  Bytes tail_;                 // active slab
  std::size_t sealed_size_ = 0;
};

}  // namespace proxy::serde
