// Deserializing archive.
//
// Every read is bounds-checked and returns Status: decode failures from a
// hostile or corrupted peer are *expected* conditions at a trust boundary,
// never undefined behaviour.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "serde/wire.h"

namespace proxy::serde {

class Reader {
 public:
  explicit Reader(BytesView data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool AtEnd() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  Status ReadU8(std::uint8_t& out) {
    PROXY_RETURN_IF_ERROR(Need(1));
    out = data_[pos_++];
    return Status::Ok();
  }

  Status ReadU16(std::uint16_t& out) {
    PROXY_RETURN_IF_ERROR(Need(2));
    out = GetFixed16(data_, pos_);
    pos_ += 2;
    return Status::Ok();
  }

  Status ReadU32(std::uint32_t& out) {
    PROXY_RETURN_IF_ERROR(Need(4));
    out = GetFixed32(data_, pos_);
    pos_ += 4;
    return Status::Ok();
  }

  Status ReadU64(std::uint64_t& out) {
    PROXY_RETURN_IF_ERROR(Need(8));
    out = GetFixed64(data_, pos_);
    pos_ += 8;
    return Status::Ok();
  }

  Status ReadVarint(std::uint64_t& out) {
    if (!GetVarint(data_, pos_, out)) {
      return CorruptError("truncated or overlong varint");
    }
    return Status::Ok();
  }

  Status ReadSigned(std::int64_t& out) {
    std::uint64_t raw = 0;
    PROXY_RETURN_IF_ERROR(ReadVarint(raw));
    out = ZigZagDecode(raw);
    return Status::Ok();
  }

  Status ReadBool(bool& out) {
    std::uint8_t b = 0;
    PROXY_RETURN_IF_ERROR(ReadU8(b));
    if (b > 1) return CorruptError("bool byte out of range");
    out = b != 0;
    return Status::Ok();
  }

  Status ReadDouble(double& out) {
    std::uint64_t bits = 0;
    PROXY_RETURN_IF_ERROR(ReadU64(bits));
    __builtin_memcpy(&out, &bits, sizeof out);
    return Status::Ok();
  }

  Status ReadBytes(Bytes& out) {
    std::uint64_t len = 0;
    PROXY_RETURN_IF_ERROR(ReadVarint(len));
    PROXY_RETURN_IF_ERROR(Need(len));
    out.clear();
    // len == 0 must not touch data_.data(): over an empty buffer that is
    // nullptr, and nullptr arithmetic / nonnull libc args are UB.
    if (len > 0) {
      CountWireCopy(len);
      out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                 data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
      pos_ += len;
    }
    return Status::Ok();
  }

  /// Borrowing variant of ReadBytes: `out` is a window of this reader's
  /// buffer, valid only while that buffer lives (arena / request-scoped
  /// arrival buffers). No bytes are copied.
  Status ReadBytesView(BytesView& out) {
    std::uint64_t len = 0;
    PROXY_RETURN_IF_ERROR(ReadVarint(len));
    PROXY_RETURN_IF_ERROR(Need(len));
    out = data_.subspan(pos_, static_cast<std::size_t>(len));
    pos_ += len;
    return Status::Ok();
  }

  Status ReadString(std::string& out) {
    std::uint64_t len = 0;
    PROXY_RETURN_IF_ERROR(ReadVarint(len));
    PROXY_RETURN_IF_ERROR(Need(len));
    out.clear();
    if (len > 0) {  // see ReadBytes: empty-span data() may be nullptr
      CountWireCopy(len);
      out.assign(reinterpret_cast<const char*>(data_.data()) + pos_, len);
      pos_ += len;
    }
    return Status::Ok();
  }

  /// View over the next `len` bytes without copying; advances.
  Status ReadRaw(std::size_t len, BytesView& out) {
    PROXY_RETURN_IF_ERROR(Need(len));
    out = data_.subspan(pos_, len);
    pos_ += len;
    return Status::Ok();
  }

  /// Fails unless the whole input was consumed — catches messages with
  /// trailing garbage.
  Status ExpectEnd() const {
    if (!AtEnd()) return CorruptError("trailing bytes after message");
    return Status::Ok();
  }

 private:
  Status Need(std::uint64_t n) const {
    if (n > remaining()) return CorruptError("unexpected end of input");
    return Status::Ok();
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace proxy::serde
