// Wire-format evolution.
//
// A service that upgrades its proxy protocol (the whole point of the
// proxy principle) usually also evolves its message types. VersionedBody
// gives messages a skippable envelope: the encoder writes a version tag
// and a length-prefixed body; a decoder built from older code can read
// the fields it knows and *skip the rest*, and a decoder built from newer
// code can detect that optional trailing fields are absent.
//
// Usage:
//   Writer w;
//   VersionedWriter vw(w, /*version=*/2);
//   serde::Serialize(vw.body(), old_fields...);   // v1 fields
//   serde::Serialize(vw.body(), new_field);       // added in v2
//   vw.Finish();
//
//   VersionedReader vr;
//   PROXY_RETURN_IF_ERROR(vr.Open(reader));
//   PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), old_fields...));
//   if (vr.version() >= 2 && !vr.body().AtEnd()) { ... read new_field ... }
//   PROXY_RETURN_IF_ERROR(vr.Close());  // skips / verifies the tail
#pragma once

#include <cstdint>
#include <optional>

#include "serde/reader.h"
#include "serde/writer.h"

namespace proxy::serde {

/// Encodes `version` and a length-prefixed body built via body().
class VersionedWriter {
 public:
  VersionedWriter(Writer& out, std::uint32_t version)
      : out_(&out), version_(version) {}

  VersionedWriter(const VersionedWriter&) = delete;
  VersionedWriter& operator=(const VersionedWriter&) = delete;

  /// The archive the message's fields are written into.
  [[nodiscard]] Writer& body() noexcept { return body_; }

  /// Seals the envelope into the outer writer. Call exactly once.
  /// The body's buffer chain is spliced onto the outer writer — the
  /// length prefix is written from the chain's known size, and no body
  /// byte is re-copied.
  void Finish() {
    out_->WriteVarint(version_);
    out_->WriteVarint(body_.size());
    out_->SpliceFrom(std::move(body_));
    out_ = nullptr;
  }

  ~VersionedWriter() {
    // Forgetting Finish() would silently drop the message; fail loudly.
    if (out_ != nullptr) std::abort();
  }

 private:
  Writer* out_;
  std::uint32_t version_;
  Writer body_;
};

/// What Close() does with body bytes the caller never read.
enum class TailPolicy {
  /// Tolerate and skip the tail: it is trailing fields from a schema
  /// newer than this build (forward compatibility). The default.
  kSkipUnknown,
  /// Reject a non-empty tail as corruption. Use when `version()` is one
  /// this build fully understands — then every legal byte has been read
  /// and leftovers can only be garbage.
  kRejectUnread,
};

/// Decodes a VersionedWriter envelope, tolerating unknown trailing
/// fields (forward compatibility) and absent new fields (backward).
class VersionedReader {
 public:
  /// Reads the version tag and the body extent from `outer`, copying the
  /// body into owned storage. Use when the decoded message must outlive
  /// the buffer `outer` reads from.
  Status Open(Reader& outer) {
    PROXY_RETURN_IF_ERROR(OpenCommon(outer, /*borrow=*/false));
    return Status::Ok();
  }

  /// Borrowing mode: body() reads a view of `outer`'s buffer directly —
  /// no copy. The caller guarantees the underlying buffer outlives every
  /// value decoded through this reader (arena / request-scoped arrival
  /// buffers).
  Status OpenBorrowed(Reader& outer) {
    PROXY_RETURN_IF_ERROR(OpenCommon(outer, /*borrow=*/true));
    return Status::Ok();
  }

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }

  /// The archive the known fields are read from. Position tracks how far
  /// this build's schema knowledge reaches; the tail may remain.
  [[nodiscard]] Reader& body() {
    return *body_;
  }

  /// Ends the message, applying `policy` to whatever body() never read:
  /// skip it as newer-schema fields (default) or reject it as corruption
  /// when the version is fully understood.
  Status Close(TailPolicy policy = TailPolicy::kSkipUnknown) {
    if (!body_.has_value()) return InternalError("Close before Open");
    const std::size_t unread = body_->remaining();
    body_.reset();
    body_bytes_.clear();
    if (unread > 0 && policy == TailPolicy::kRejectUnread) {
      return CorruptError("unread trailing bytes in fully-known version");
    }
    return Status::Ok();
  }

 private:
  Status OpenCommon(Reader& outer, bool borrow) {
    std::uint64_t version = 0;
    PROXY_RETURN_IF_ERROR(outer.ReadVarint(version));
    if (version > 0xffffffffULL) return CorruptError("version overflow");
    version_ = static_cast<std::uint32_t>(version);
    if (borrow) {
      BytesView body;
      PROXY_RETURN_IF_ERROR(outer.ReadBytesView(body));
      body_.emplace(body);
    } else {
      Bytes body;
      PROXY_RETURN_IF_ERROR(outer.ReadBytes(body));
      body_bytes_ = std::move(body);
      body_.emplace(View(body_bytes_));
    }
    return Status::Ok();
  }

  std::uint32_t version_ = 0;
  Bytes body_bytes_;  // empty in borrowed mode
  std::optional<Reader> body_;
};

}  // namespace proxy::serde
