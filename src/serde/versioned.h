// Wire-format evolution.
//
// A service that upgrades its proxy protocol (the whole point of the
// proxy principle) usually also evolves its message types. VersionedBody
// gives messages a skippable envelope: the encoder writes a version tag
// and a length-prefixed body; a decoder built from older code can read
// the fields it knows and *skip the rest*, and a decoder built from newer
// code can detect that optional trailing fields are absent.
//
// Usage:
//   Writer w;
//   VersionedWriter vw(w, /*version=*/2);
//   serde::Serialize(vw.body(), old_fields...);   // v1 fields
//   serde::Serialize(vw.body(), new_field);       // added in v2
//   vw.Finish();
//
//   VersionedReader vr;
//   PROXY_RETURN_IF_ERROR(vr.Open(reader));
//   PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), old_fields...));
//   if (vr.version() >= 2 && !vr.body().AtEnd()) { ... read new_field ... }
//   PROXY_RETURN_IF_ERROR(vr.Close(reader));      // skips unread tail
#pragma once

#include <cstdint>

#include "serde/reader.h"
#include "serde/writer.h"

namespace proxy::serde {

/// Encodes `version` and a length-prefixed body built via body().
class VersionedWriter {
 public:
  VersionedWriter(Writer& out, std::uint32_t version)
      : out_(&out), version_(version) {}

  VersionedWriter(const VersionedWriter&) = delete;
  VersionedWriter& operator=(const VersionedWriter&) = delete;

  /// The archive the message's fields are written into.
  [[nodiscard]] Writer& body() noexcept { return body_; }

  /// Seals the envelope into the outer writer. Call exactly once.
  void Finish() {
    out_->WriteVarint(version_);
    out_->WriteBytes(View(body_.buffer()));
    out_ = nullptr;
  }

  ~VersionedWriter() {
    // Forgetting Finish() would silently drop the message; fail loudly.
    if (out_ != nullptr) std::abort();
  }

 private:
  Writer* out_;
  std::uint32_t version_;
  Writer body_;
};

/// Decodes a VersionedWriter envelope, tolerating unknown trailing
/// fields (forward compatibility) and absent new fields (backward).
class VersionedReader {
 public:
  /// Reads the version tag and the body extent from `outer`.
  Status Open(Reader& outer) {
    std::uint64_t version = 0;
    PROXY_RETURN_IF_ERROR(outer.ReadVarint(version));
    if (version > 0xffffffffULL) return CorruptError("version overflow");
    version_ = static_cast<std::uint32_t>(version);
    Bytes body;
    PROXY_RETURN_IF_ERROR(outer.ReadBytes(body));
    body_bytes_ = std::move(body);
    body_.emplace(View(body_bytes_));
    return Status::Ok();
  }

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }

  /// The archive the known fields are read from. Position tracks how far
  /// this build's schema knowledge reaches; the tail may remain.
  [[nodiscard]] Reader& body() {
    return *body_;
  }

  /// Ends the message: unread tail bytes (fields from a newer schema) are
  /// skipped rather than treated as corruption.
  Status Close() {
    if (!body_.has_value()) return InternalError("Close before Open");
    body_.reset();
    return Status::Ok();
  }

 private:
  std::uint32_t version_ = 0;
  Bytes body_bytes_;
  std::optional<Reader> body_;
};

}  // namespace proxy::serde
