#include "serde/message.h"

#include "serde/reader.h"
#include "serde/wire.h"
#include "serde/writer.h"

namespace proxy::serde {

Bytes WrapEnvelope(BytesView payload) {
  Writer w(payload.size() + 16);
  w.WriteU16(kEnvelopeMagic);
  w.WriteU8(kEnvelopeVersion);
  w.WriteU32(Crc32c(payload));
  w.WriteBytes(payload);
  return w.Take();
}

Bytes WrapEnvelope(Writer&& payload) {
  const std::size_t n = payload.size();
  // Checksum the chain in place, then gather it once, straight into the
  // framed buffer: the send path's single counted bulk copy.
  std::uint32_t crc = kCrc32cInit;
  payload.ForEachChunk(
      [&crc](BytesView v) { crc = Crc32cExtend(crc, v); });
  Bytes out;
  out.reserve(n + EnvelopeOverhead(n));
  PutFixed16(out, kEnvelopeMagic);
  out.push_back(kEnvelopeVersion);
  PutFixed32(out, Crc32cFinish(crc));
  PutVarint(out, n);
  payload.ForEachChunk([&out](BytesView v) {
    out.insert(out.end(), v.begin(), v.end());
  });
  CountWireCopy(n);
  return out;
}

Result<BytesView> UnwrapEnvelopeView(BytesView framed) {
  Reader r(framed);
  std::uint16_t magic = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU16(magic));
  if (magic != kEnvelopeMagic) return CorruptError("bad envelope magic");
  std::uint8_t version = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU8(version));
  if (version != kEnvelopeVersion) {
    return CorruptError("unsupported envelope version");
  }
  std::uint32_t crc = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU32(crc));
  BytesView payload;
  PROXY_RETURN_IF_ERROR(r.ReadBytesView(payload));
  PROXY_RETURN_IF_ERROR(r.ExpectEnd());
  if (Crc32c(payload) != crc) {
    return CorruptError("envelope checksum mismatch");
  }
  return payload;
}

Result<Bytes> UnwrapEnvelope(BytesView framed) {
  Result<BytesView> payload = UnwrapEnvelopeView(framed);
  if (!payload.ok()) return payload.status();
  if (payload->empty()) return Bytes{};
  CountWireCopy(payload->size());
  return Bytes(payload->begin(), payload->end());
}

std::size_t EnvelopeOverhead(std::size_t payload_size) {
  // magic + version + crc + varint length prefix.
  std::size_t varint = 1;
  for (std::size_t v = payload_size; v >= 0x80; v >>= 7) ++varint;
  return 2 + 1 + 4 + varint;
}

}  // namespace proxy::serde
