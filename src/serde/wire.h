// Wire-format primitives.
//
// The format is explicitly little-endian with LEB128 varints, so encoded
// bytes mean the same thing on every (simulated) node regardless of host
// architecture — the marshalling concern the RPC literature calls
// "ensuring addresses and representations have a valid interpretation at
// the remote site".
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace proxy::serde {

/// Appends a fixed-width little-endian integer.
void PutFixed16(Bytes& out, std::uint16_t v);
void PutFixed32(Bytes& out, std::uint32_t v);
void PutFixed64(Bytes& out, std::uint64_t v);

/// Reads a fixed-width little-endian integer at `pos`; caller checks
/// bounds beforehand.
std::uint16_t GetFixed16(BytesView in, std::size_t pos) noexcept;
std::uint32_t GetFixed32(BytesView in, std::size_t pos) noexcept;
std::uint64_t GetFixed64(BytesView in, std::size_t pos) noexcept;

/// LEB128 unsigned varint (1..10 bytes).
void PutVarint(Bytes& out, std::uint64_t v);

/// Decodes a varint at `pos`; on success advances `pos` and returns true.
bool GetVarint(BytesView in, std::size_t& pos, std::uint64_t& out) noexcept;

/// ZigZag mapping for signed values.
constexpr std::uint64_t ZigZagEncode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t ZigZagDecode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// CRC-32 (Castagnoli polynomial), used by the frame layer to detect
/// corruption injected by tests.
std::uint32_t Crc32c(BytesView data) noexcept;

}  // namespace proxy::serde
