// Wire-format primitives.
//
// The format is explicitly little-endian with LEB128 varints, so encoded
// bytes mean the same thing on every (simulated) node regardless of host
// architecture — the marshalling concern the RPC literature calls
// "ensuring addresses and representations have a valid interpretation at
// the remote site".
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "obs/metrics.h"

namespace proxy::serde {

/// Appends a fixed-width little-endian integer.
void PutFixed16(Bytes& out, std::uint16_t v);
void PutFixed32(Bytes& out, std::uint32_t v);
void PutFixed64(Bytes& out, std::uint64_t v);

/// Reads a fixed-width little-endian integer at `pos`; caller checks
/// bounds beforehand.
std::uint16_t GetFixed16(BytesView in, std::size_t pos) noexcept;
std::uint32_t GetFixed32(BytesView in, std::size_t pos) noexcept;
std::uint64_t GetFixed64(BytesView in, std::size_t pos) noexcept;

/// LEB128 unsigned varint (1..10 bytes).
void PutVarint(Bytes& out, std::uint64_t v);

/// Decodes a varint at `pos`; on success advances `pos` and returns true.
bool GetVarint(BytesView in, std::size_t& pos, std::uint64_t& out) noexcept;

/// ZigZag mapping for signed values.
constexpr std::uint64_t ZigZagEncode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t ZigZagDecode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// CRC-32 (Castagnoli polynomial), used by the frame layer to detect
/// corruption injected by tests.
std::uint32_t Crc32c(BytesView data) noexcept;

/// Incremental CRC-32C: extends a running checksum with another span, so
/// the framing layer can checksum a buffer chain without flattening it.
/// Start from kCrc32cInit and finish with Crc32cFinish.
inline constexpr std::uint32_t kCrc32cInit = 0xFFFFFFFFu;
std::uint32_t Crc32cExtend(std::uint32_t state, BytesView data) noexcept;
constexpr std::uint32_t Crc32cFinish(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// Process-global tally of payload bytes memcpy'd through the
/// marshalling -> framing -> transport path (bulk copies only: field
/// encoding into a slab is serialization, not a copy; chunk adoption and
/// chain splicing move ownership and count nothing). The wire benches
/// report deltas of this counter as bytes-copied-per-op, the number the
/// perf trajectory in BENCH_wire.json tracks. Deliberately NOT attached
/// to any per-Runtime MetricsRegistry: it is per-process and monotonic,
/// which would break the byte-identical replay gates.
obs::Counter& WireCopyCounter() noexcept;

inline void CountWireCopy(std::size_t n) noexcept { WireCopyCounter().Inc(n); }

}  // namespace proxy::serde
