#include "serde/wire.h"

#include <array>

namespace proxy::serde {

void PutFixed16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void PutFixed32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void PutFixed64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t GetFixed16(BytesView in, std::size_t pos) noexcept {
  return static_cast<std::uint16_t>(in[pos]) |
         static_cast<std::uint16_t>(in[pos + 1]) << 8;
}

std::uint32_t GetFixed32(BytesView in, std::size_t pos) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[pos + i]) << (8 * i);
  }
  return v;
}

std::uint64_t GetFixed64(BytesView in, std::size_t pos) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + i]) << (8 * i);
  }
  return v;
}

void PutVarint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool GetVarint(BytesView in, std::size_t& pos, std::uint64_t& out) noexcept {
  std::uint64_t result = 0;
  int shift = 0;
  std::size_t p = pos;
  while (p < in.size() && shift < 64) {
    const std::uint8_t byte = in[p++];
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical 10th-byte overflow.
      if (shift == 63 && byte > 1) return false;
      pos = p;
      out = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated or too long
}

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPoly = 0x82f63b78;  // reversed Castagnoli
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(BytesView data) noexcept {
  return Crc32cFinish(Crc32cExtend(kCrc32cInit, data));
}

std::uint32_t Crc32cExtend(std::uint32_t state, BytesView data) noexcept {
  static const auto kTable = MakeCrcTable();
  for (const std::uint8_t b : data) {
    state = (state >> 8) ^ kTable[(state ^ b) & 0xff];
  }
  return state;
}

obs::Counter& WireCopyCounter() noexcept {
  static obs::Counter counter;
  return counter;
}

}  // namespace proxy::serde
