// Generic Serialize / Deserialize over the archive types.
//
// A type is wire-able if it is a primitive, a standard container of
// wire-able types, one of the runtime id types, or a struct that exposes
// its fields with PROXY_SERDE_FIELDS(...). All overloads live in
// proxy::serde; forward declarations precede definitions so that nested
// containers resolve regardless of declaration order.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/id.h"
#include "common/status.h"
#include "serde/reader.h"
#include "serde/writer.h"

namespace proxy::serde {

// --- forward declarations (ordinary-lookup set for nested templates) ---

inline void Serialize(Writer& w, std::uint8_t v);
inline void Serialize(Writer& w, std::uint16_t v);
inline void Serialize(Writer& w, std::uint32_t v);
inline void Serialize(Writer& w, std::uint64_t v);
inline void Serialize(Writer& w, std::int32_t v);
inline void Serialize(Writer& w, std::int64_t v);
inline void Serialize(Writer& w, bool v);
inline void Serialize(Writer& w, double v);
inline void Serialize(Writer& w, const std::string& v);
inline void Serialize(Writer& w, const Bytes& v);
inline void Serialize(Writer& w, const ObjectId& v);
inline void Serialize(Writer& w, NodeId v);
inline void Serialize(Writer& w, PortId v);
inline void Serialize(Writer& w, ContextId v);
inline void Serialize(Writer& w, InterfaceId v);
template <typename E>
  requires std::is_enum_v<E>
void Serialize(Writer& w, E v);
template <typename T>
void Serialize(Writer& w, const std::vector<T>& v);
template <typename T>
void Serialize(Writer& w, const std::optional<T>& v);
template <typename A, typename B>
void Serialize(Writer& w, const std::pair<A, B>& v);
template <typename K, typename V>
void Serialize(Writer& w, const std::map<K, V>& v);

inline Status Deserialize(Reader& r, std::uint8_t& v);
inline Status Deserialize(Reader& r, std::uint16_t& v);
inline Status Deserialize(Reader& r, std::uint32_t& v);
inline Status Deserialize(Reader& r, std::uint64_t& v);
inline Status Deserialize(Reader& r, std::int32_t& v);
inline Status Deserialize(Reader& r, std::int64_t& v);
inline Status Deserialize(Reader& r, bool& v);
inline Status Deserialize(Reader& r, double& v);
inline Status Deserialize(Reader& r, std::string& v);
inline Status Deserialize(Reader& r, Bytes& v);
inline Status Deserialize(Reader& r, ObjectId& v);
inline Status Deserialize(Reader& r, NodeId& v);
inline Status Deserialize(Reader& r, PortId& v);
inline Status Deserialize(Reader& r, ContextId& v);
inline Status Deserialize(Reader& r, InterfaceId& v);
template <typename E>
  requires std::is_enum_v<E>
Status Deserialize(Reader& r, E& v);
template <typename T>
Status Deserialize(Reader& r, std::vector<T>& v);
template <typename T>
Status Deserialize(Reader& r, std::optional<T>& v);
template <typename A, typename B>
Status Deserialize(Reader& r, std::pair<A, B>& v);
template <typename K, typename V>
Status Deserialize(Reader& r, std::map<K, V>& v);

/// Struct support: a type with PROXY_SERDE_FIELDS(...) exposes its fields
/// as a tie; (de)serialization visits them in declaration order.
template <typename T>
concept WireStruct = requires(T t, const T ct) {
  t.SerdeFields();
  ct.SerdeFields();
};

template <WireStruct T>
void Serialize(Writer& w, const T& v);
template <WireStruct T>
Status Deserialize(Reader& r, T& v);

// --- definitions ---

inline void Serialize(Writer& w, std::uint8_t v) { w.WriteU8(v); }
inline void Serialize(Writer& w, std::uint16_t v) { w.WriteU16(v); }
inline void Serialize(Writer& w, std::uint32_t v) { w.WriteVarint(v); }
inline void Serialize(Writer& w, std::uint64_t v) { w.WriteVarint(v); }
inline void Serialize(Writer& w, std::int32_t v) { w.WriteSigned(v); }
inline void Serialize(Writer& w, std::int64_t v) { w.WriteSigned(v); }
inline void Serialize(Writer& w, bool v) { w.WriteBool(v); }
inline void Serialize(Writer& w, double v) { w.WriteDouble(v); }
inline void Serialize(Writer& w, const std::string& v) { w.WriteString(v); }
inline void Serialize(Writer& w, const Bytes& v) { w.WriteBytes(v); }

inline void Serialize(Writer& w, const ObjectId& v) {
  w.WriteU64(v.hi);
  w.WriteU64(v.lo);
}
inline void Serialize(Writer& w, NodeId v) { w.WriteVarint(v.value()); }
inline void Serialize(Writer& w, PortId v) { w.WriteVarint(v.value()); }
inline void Serialize(Writer& w, ContextId v) { w.WriteVarint(v.value()); }
inline void Serialize(Writer& w, InterfaceId v) { w.WriteU64(v.value()); }

template <typename E>
  requires std::is_enum_v<E>
void Serialize(Writer& w, E v) {
  w.WriteVarint(static_cast<std::uint64_t>(
      static_cast<std::underlying_type_t<E>>(v)));
}

template <typename T>
void Serialize(Writer& w, const std::vector<T>& v) {
  w.WriteVarint(v.size());
  for (const auto& item : v) Serialize(w, item);
}

template <typename T>
void Serialize(Writer& w, const std::optional<T>& v) {
  w.WriteBool(v.has_value());
  if (v) Serialize(w, *v);
}

template <typename A, typename B>
void Serialize(Writer& w, const std::pair<A, B>& v) {
  Serialize(w, v.first);
  Serialize(w, v.second);
}

template <typename K, typename V>
void Serialize(Writer& w, const std::map<K, V>& v) {
  w.WriteVarint(v.size());
  for (const auto& [k, val] : v) {
    Serialize(w, k);
    Serialize(w, val);
  }
}

inline Status Deserialize(Reader& r, std::uint8_t& v) { return r.ReadU8(v); }
inline Status Deserialize(Reader& r, std::uint16_t& v) { return r.ReadU16(v); }

inline Status Deserialize(Reader& r, std::uint32_t& v) {
  std::uint64_t raw = 0;
  PROXY_RETURN_IF_ERROR(r.ReadVarint(raw));
  if (raw > 0xffffffffULL) return CorruptError("u32 overflow");
  v = static_cast<std::uint32_t>(raw);
  return Status::Ok();
}

inline Status Deserialize(Reader& r, std::uint64_t& v) {
  return r.ReadVarint(v);
}

inline Status Deserialize(Reader& r, std::int32_t& v) {
  std::int64_t raw = 0;
  PROXY_RETURN_IF_ERROR(r.ReadSigned(raw));
  if (raw < INT32_MIN || raw > INT32_MAX) return CorruptError("i32 overflow");
  v = static_cast<std::int32_t>(raw);
  return Status::Ok();
}

inline Status Deserialize(Reader& r, std::int64_t& v) {
  return r.ReadSigned(v);
}

inline Status Deserialize(Reader& r, bool& v) { return r.ReadBool(v); }
inline Status Deserialize(Reader& r, double& v) { return r.ReadDouble(v); }
inline Status Deserialize(Reader& r, std::string& v) {
  return r.ReadString(v);
}
inline Status Deserialize(Reader& r, Bytes& v) { return r.ReadBytes(v); }

inline Status Deserialize(Reader& r, ObjectId& v) {
  PROXY_RETURN_IF_ERROR(r.ReadU64(v.hi));
  return r.ReadU64(v.lo);
}

namespace detail {
template <typename Id>
Status ReadStrongId32(Reader& r, Id& v) {
  std::uint64_t raw = 0;
  PROXY_RETURN_IF_ERROR(r.ReadVarint(raw));
  if (raw > 0xffffffffULL) return CorruptError("id overflow");
  v = Id(static_cast<std::uint32_t>(raw));
  return Status::Ok();
}
}  // namespace detail

inline Status Deserialize(Reader& r, NodeId& v) {
  return detail::ReadStrongId32(r, v);
}
inline Status Deserialize(Reader& r, PortId& v) {
  return detail::ReadStrongId32(r, v);
}
inline Status Deserialize(Reader& r, ContextId& v) {
  return detail::ReadStrongId32(r, v);
}
inline Status Deserialize(Reader& r, InterfaceId& v) {
  std::uint64_t raw = 0;
  PROXY_RETURN_IF_ERROR(r.ReadU64(raw));
  v = InterfaceId(raw);
  return Status::Ok();
}

template <typename E>
  requires std::is_enum_v<E>
Status Deserialize(Reader& r, E& v) {
  std::uint64_t raw = 0;
  PROXY_RETURN_IF_ERROR(r.ReadVarint(raw));
  v = static_cast<E>(static_cast<std::underlying_type_t<E>>(raw));
  return Status::Ok();
}

template <typename T>
Status Deserialize(Reader& r, std::vector<T>& v) {
  std::uint64_t count = 0;
  PROXY_RETURN_IF_ERROR(r.ReadVarint(count));
  // A hostile length must not trigger a huge allocation before the data
  // proves it: each element consumes >= 1 byte on the wire.
  if (count > r.remaining()) return CorruptError("vector length exceeds input");
  v.clear();
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    T item{};
    PROXY_RETURN_IF_ERROR(Deserialize(r, item));
    v.push_back(std::move(item));
  }
  return Status::Ok();
}

template <typename T>
Status Deserialize(Reader& r, std::optional<T>& v) {
  bool present = false;
  PROXY_RETURN_IF_ERROR(r.ReadBool(present));
  if (!present) {
    v.reset();
    return Status::Ok();
  }
  T item{};
  PROXY_RETURN_IF_ERROR(Deserialize(r, item));
  v.emplace(std::move(item));
  return Status::Ok();
}

template <typename A, typename B>
Status Deserialize(Reader& r, std::pair<A, B>& v) {
  PROXY_RETURN_IF_ERROR(Deserialize(r, v.first));
  return Deserialize(r, v.second);
}

template <typename K, typename V>
Status Deserialize(Reader& r, std::map<K, V>& v) {
  std::uint64_t count = 0;
  PROXY_RETURN_IF_ERROR(r.ReadVarint(count));
  if (count > r.remaining()) return CorruptError("map length exceeds input");
  v.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    K key{};
    V val{};
    PROXY_RETURN_IF_ERROR(Deserialize(r, key));
    PROXY_RETURN_IF_ERROR(Deserialize(r, val));
    v.emplace(std::move(key), std::move(val));
  }
  return Status::Ok();
}

template <WireStruct T>
void Serialize(Writer& w, const T& v) {
  std::apply([&w](const auto&... fields) { (Serialize(w, fields), ...); },
             v.SerdeFields());
}

template <WireStruct T>
Status Deserialize(Reader& r, T& v) {
  Status st;
  std::apply(
      [&](auto&... fields) {
        // Fold with short-circuit: stop decoding after the first failure.
        ((st.ok() ? void(st = Deserialize(r, fields)) : void()), ...);
      },
      v.SerdeFields());
  return st;
}

/// One-shot helpers.
template <typename T>
Bytes EncodeToBytes(const T& v) {
  Writer w;
  Serialize(w, v);
  return w.Take();
}

/// Decodes a whole buffer into T; trailing bytes are an error.
template <typename T>
Result<T> DecodeFromBytes(BytesView data) {
  Reader r(data);
  T out{};
  PROXY_RETURN_IF_ERROR(Deserialize(r, out));
  PROXY_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

/// Decodes a prefix of the buffer, leaving the reader position for the
/// caller (used when a header precedes an opaque payload).
template <typename T>
Result<T> DecodePrefix(Reader& r) {
  T out{};
  PROXY_RETURN_IF_ERROR(Deserialize(r, out));
  return out;
}

}  // namespace proxy::serde

/// Declares the wire fields of a struct, in encoding order. Changing the
/// order or types of existing fields is a wire break; append new fields
/// and bump the containing message's version instead.
#define PROXY_SERDE_FIELDS(...)                              \
  auto SerdeFields() { return std::tie(__VA_ARGS__); }       \
  auto SerdeFields() const { return std::tie(__VA_ARGS__); }
