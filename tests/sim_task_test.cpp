// Unit tests for coroutine tasks, futures, promises and sleep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/future.h"
#include "sim/task.h"

namespace proxy::sim {
namespace {

Co<int> ReturnImmediately(int v) { co_return v; }

Co<int> AwaitFuture(Future<int> f) {
  const int v = co_await f;
  co_return v * 2;
}

Co<int> Chain(Future<int> f) {
  const int v = co_await AwaitFuture(f);
  co_return v + 1;
}

Co<void> SleepThenSet(Scheduler& s, SimDuration d, bool& flag) {
  co_await SleepFor(s, d);
  flag = true;
}

TEST(Task, ImmediateCompletionDeliveredViaFuture) {
  Scheduler s;
  Future<int> f = Spawn(s, ReturnImmediately(42));
  // Completion is posted, not synchronous — the value lands after a step.
  EXPECT_FALSE(f.ready());
  s.Run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.take(), 42);
}

TEST(Task, AwaitedFutureResumesCoroutine) {
  Scheduler s;
  Promise<int> p(s);
  Future<int> done = Spawn(s, AwaitFuture(p.future()));
  s.Run();
  EXPECT_FALSE(done.ready());  // still parked on the promise
  p.Set(21);
  s.Run();
  ASSERT_TRUE(done.ready());
  EXPECT_EQ(done.take(), 42);
}

TEST(Task, NestedCoroutinesChain) {
  Scheduler s;
  Promise<int> p(s);
  Future<int> done = Spawn(s, Chain(p.future()));
  p.Set(10);
  s.Run();
  ASSERT_TRUE(done.ready());
  EXPECT_EQ(done.take(), 21);
}

TEST(Task, VoidCoroutineReportsCompletion) {
  Scheduler s;
  bool flag = false;
  Future<bool> done = Spawn(s, SleepThenSet(s, Milliseconds(3), flag));
  EXPECT_FALSE(flag);
  s.Run();
  EXPECT_TRUE(flag);
  EXPECT_TRUE(done.ready());
  EXPECT_EQ(s.now(), Milliseconds(3));
}

TEST(Future, ReadyBeforeAwaitShortCircuits) {
  Scheduler s;
  Promise<int> p(s);
  p.Set(5);
  Future<int> done = Spawn(s, AwaitFuture(p.future()));
  s.Run();
  ASSERT_TRUE(done.ready());
  EXPECT_EQ(done.take(), 10);
}

TEST(Future, SecondSetIsIgnored) {
  Scheduler s;
  Promise<int> p(s);
  EXPECT_TRUE(p.Set(1));
  EXPECT_FALSE(p.Set(2));
  Future<int> f = p.future();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.peek(), 1);
}

TEST(Future, ThenCallbackFires) {
  Scheduler s;
  Promise<int> p(s);
  int seen = 0;
  Future<int> f = p.future();
  f.Then([&](int&& v) { seen = v; });
  p.Set(9);
  EXPECT_EQ(seen, 0);  // posted, not inline
  s.Run();
  EXPECT_EQ(seen, 9);
}

TEST(Future, ThenOnAlreadyReadyFutureStillFires) {
  Scheduler s;
  Promise<int> p(s);
  p.Set(4);
  int seen = 0;
  Future<int> f = p.future();
  f.Then([&](int&& v) { seen = v; });
  s.Run();
  EXPECT_EQ(seen, 4);
}

TEST(Sleep, ZeroDurationDoesNotSuspend) {
  Scheduler s;
  bool flag = false;
  (void)Spawn(s, SleepThenSet(s, 0, flag));
  // Zero sleep is ready immediately; the body runs without any event.
  EXPECT_TRUE(flag);
}

Co<void> GatherOrder(Scheduler& s, std::vector<int>& order, int tag,
                     SimDuration d) {
  co_await SleepFor(s, d);
  order.push_back(tag);
}

TEST(Task, ConcurrentCoroutinesInterleaveDeterministically) {
  Scheduler s;
  std::vector<int> order;
  (void)Spawn(s, GatherOrder(s, order, 1, Milliseconds(30)));
  (void)Spawn(s, GatherOrder(s, order, 2, Milliseconds(10)));
  (void)Spawn(s, GatherOrder(s, order, 3, Milliseconds(20)));
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

Co<std::string> BuildString(Scheduler& s) {
  std::string out = "a-fairly-long-string-that-heap-allocates-for-sure";
  co_await SleepFor(s, 10);
  out += "-suffix";
  co_return out;
}

TEST(Task, LocalsSurviveSuspension) {
  Scheduler s;
  Future<std::string> f = Spawn(s, BuildString(s));
  s.Run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.take(),
            "a-fairly-long-string-that-heap-allocates-for-sure-suffix");
}

Co<int> AwaitTwice(Scheduler& s) {
  co_await SleepFor(s, 5);
  co_await SleepFor(s, 5);
  co_return static_cast<int>(s.now());
}

TEST(Task, MultipleSuspensionsAccumulateTime) {
  Scheduler s;
  Future<int> f = Spawn(s, AwaitTwice(s));
  s.Run();
  EXPECT_EQ(f.take(), 10);
}

// Deep chain: completion posting keeps native stack bounded; this would
// overflow with naive recursive resumption.
Co<int> DeepChain(Scheduler& s, int depth) {
  if (depth == 0) {
    co_await SleepFor(s, 1);
    co_return 0;
  }
  const int below = co_await DeepChain(s, depth - 1);
  co_return below + 1;
}

TEST(Task, DeepChainCompletesWithoutStackOverflow) {
  Scheduler s;
  Future<int> f = Spawn(s, DeepChain(s, 2000));
  s.Run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.take(), 2000);
}

}  // namespace
}  // namespace proxy::sim
