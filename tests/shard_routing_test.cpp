// Shard-invariant test battery for the routed KV (protocol 5): map
// versioning at the ShardMapService, WRONG_SHARD refresh-and-retry at
// the router (including the bounded stale-map retry), fan-out List/Size
// merge semantics, online migration under concurrent writes, recovery of
// half-finished moves (crashed rebalancer, crashed source primary), and
// the TryRescue liveness backstop for a fully-deposed replica group.
//
// The battery's framing claim is the paper's: a client bound to plain
// IKeyValue through core::Acquire runs unmodified whether the name
// resolves to one replica group or four — sharding is the service's
// business, introduced entirely behind the proxy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/factory.h"
#include "services/replicated_kv.h"
#include "services/shard_map.h"
#include "services/shard_router.h"
#include "sim/future.h"
#include "sim/task.h"
#include "test_util.h"

namespace proxy::services {
namespace {

using proxy::testing::TestWorld;

constexpr std::uint32_t kShards = 8;

/// Chaos-scale group timers so a full crash -> promote cycle and several
/// migration steps fit in a short virtual run (name per group is
/// assigned by ExportShardedKv).
ReplicatedKvParams FastGroupParams() {
  ReplicatedKvParams p;
  p.lease.ttl_ns = Milliseconds(150);
  p.lease.renew_fraction = 0.4;
  p.lease.max_consecutive_failures = 2;
  p.watch_interval = Milliseconds(45);
  p.promote_stagger = Milliseconds(25);
  p.rejoin_interval = Milliseconds(60);
  p.mirror.retry_interval = Milliseconds(6);
  p.mirror.max_retries = 2;
  p.mirror.deadline = Milliseconds(40);
  return p;
}

ShardRebalancerParams FastRebalancerParams() {
  ShardRebalancerParams p;
  p.step_attempts = 8;
  p.step_pause = Milliseconds(30);
  return p;
}

/// A key that hashes into `shard` under the battery's shard count.
/// Distinct salts scan disjoint ranges, so they yield distinct keys of
/// the same shard.
std::string KeyInShard(std::uint32_t shard, int salt = 0) {
  for (int i = salt * 1000;; ++i) {
    std::string key = "key-" + std::to_string(i);
    if (ShardOf(key, kShards) == shard) return key;
  }
}

/// A sharded deployment on its own nodes: name service, the map-service
/// node, one client node, and `groups` replica groups of
/// `replicas_per_group` nodes each.
struct ShardedWorld {
  ShardedWorld(std::uint32_t groups, std::uint32_t replicas_per_group,
               std::uint64_t seed = 17) {
    RegisterAllServices();
    core::Runtime::Params params;
    params.seed = seed;
    rt = std::make_unique<core::Runtime>(params);
    rt->StartNameService(rt->AddNode("ns"));
    map_ctx = &rt->CreateContext(rt->AddNode("map"), "map");
    client_ctx = &rt->CreateContext(rt->AddNode("client"), "client");
    std::vector<std::vector<core::Context*>> group_ctxs;
    for (std::uint32_t g = 0; g < groups; ++g) {
      std::vector<core::Context*> ctxs;
      std::vector<NodeId> nodes;
      for (std::uint32_t r = 0; r < replicas_per_group; ++r) {
        const std::string label =
            "g" + std::to_string(g) + "-r" + std::to_string(r);
        const NodeId node = rt->AddNode(label);
        nodes.push_back(node);
        ctxs.push_back(&rt->CreateContext(node, label));
      }
      replica_nodes.push_back(std::move(nodes));
      group_ctxs.push_back(std::move(ctxs));
    }

    ShardedKvParams sparams;
    sparams.name = "app/kv";
    sparams.num_shards = kShards;
    sparams.group = FastGroupParams();
    auto export_all = [&]() -> sim::Co<void> {
      Result<ShardedKvExport> exported = co_await ExportShardedKv(
          *map_ctx, std::move(group_ctxs), std::move(sparams));
      EXPECT_TRUE(exported.ok()) << exported.status().ToString();
      if (exported.ok()) skv = std::move(*exported);
    };
    rt->Run(export_all());
    // Let every group primary's lease heartbeat publish its group name.
    rt->scheduler().RunFor(Milliseconds(40));
  }

  template <typename L>
  void Run(L& lambda) {
    rt->Run(lambda());
  }

  /// The deployment-shape-blind binding: plain IKeyValue by name, proxy
  /// path forced — exactly what an application client would hold.
  std::shared_ptr<IKeyValue> AcquireKv() {
    std::shared_ptr<IKeyValue> out;
    auto bind = [&]() -> sim::Co<void> {
      core::AcquireOptions opts;
      opts.allow_direct = false;
      Result<std::shared_ptr<IKeyValue>> bound =
          co_await core::Acquire<IKeyValue>(*client_ctx, "app/kv", opts);
      EXPECT_TRUE(bound.ok()) << bound.status().ToString();
      if (bound.ok()) out = *bound;
    };
    rt->Run(bind());
    return out;
  }

  /// The same binding, downcast for the routing observables the
  /// white-box assertions read.
  std::shared_ptr<KvShardRouterProxy> AcquireRouter() {
    auto typed = std::dynamic_pointer_cast<KvShardRouterProxy>(AcquireKv());
    EXPECT_NE(typed, nullptr) << "protocol 5 must bind the routing proxy";
    return typed;
  }

  std::unique_ptr<core::Runtime> rt;
  core::Context* map_ctx = nullptr;
  core::Context* client_ctx = nullptr;
  std::vector<std::vector<NodeId>> replica_nodes;  // [group][replica]
  ShardedKvExport skv;
};

// --- the shard map service: versioning and the move CAS ----------------

TEST(ShardMap, StableHashStaysInRangeAndAgreesWithItself) {
  // Routers and replicas must agree on key -> shard forever: the
  // function is part of the wire contract, not an implementation detail.
  for (int i = 0; i < 512; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::uint32_t shard = ShardOf(key, kShards);
    EXPECT_LT(shard, kShards);
    EXPECT_EQ(shard, ShardOf(key, kShards)) << key;
  }
  // Every shard is reachable by some key (the helper would loop forever
  // otherwise — this pins the fold's spread, not perfection).
  for (std::uint32_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(ShardOf(KeyInShard(s), kShards), s);
  }
}

TEST(ShardMap, CommitMoveBumpsVersionAndCasRejectsStaleCommits) {
  TestWorld w(31);
  auto svc = std::make_shared<ShardMapService>(
      *w.server_ctx, MakeInitialShardMap(kShards, {"app/kv/g0", "app/kv/g1"}));
  EXPECT_EQ(svc->map().version, 1u);
  EXPECT_EQ(svc->map().owner[0], 0u);

  auto drive = [&]() -> sim::Co<void> {
    // A well-formed move commits: version bumps, owner and epoch follow.
    shardwire::CommitMoveRequest move;
    move.shard = 0;
    move.to_group = 1;
    move.expect_version = 1;
    move.new_shard_epoch = 2;
    Result<shardwire::CommitMoveResponse> committed =
        co_await svc->HandleCommitMove(move);
    CO_ASSERT_OK(committed);
    EXPECT_EQ(committed->map.version, 2u);
    EXPECT_EQ(committed->map.owner[0], 1u);
    EXPECT_EQ(committed->map.shard_epoch[0], 2u);

    // The CAS: a commit built against the superseded map is refused.
    shardwire::CommitMoveRequest stale;
    stale.shard = 1;
    stale.to_group = 1;
    stale.expect_version = 1;  // map is at 2 now
    stale.new_shard_epoch = 2;
    Result<shardwire::CommitMoveResponse> lost =
        co_await svc->HandleCommitMove(stale);
    CO_ASSERT_TRUE(!lost.ok());
    EXPECT_EQ(lost.status().code(), StatusCode::kFailedPrecondition);

    // Ownership epochs only advance: a duplicate of the committed move
    // (same epoch, fresh version) is refused rather than replayed.
    shardwire::CommitMoveRequest replay;
    replay.shard = 0;
    replay.to_group = 0;
    replay.expect_version = 2;
    replay.new_shard_epoch = 2;
    Result<shardwire::CommitMoveResponse> refused =
        co_await svc->HandleCommitMove(replay);
    CO_ASSERT_TRUE(!refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

    // Out-of-range coordinates are malformed, not raceable.
    shardwire::CommitMoveRequest bogus;
    bogus.shard = kShards;
    bogus.to_group = 0;
    bogus.expect_version = 2;
    bogus.new_shard_epoch = 9;
    Result<shardwire::CommitMoveResponse> malformed =
        co_await svc->HandleCommitMove(bogus);
    CO_ASSERT_TRUE(!malformed.ok());
    EXPECT_EQ(malformed.status().code(), StatusCode::kInvalidArgument);
  };
  w.Run(drive);

  EXPECT_EQ(svc->map().version, 2u);
  EXPECT_EQ(svc->commits(), 1u);
}

// --- the proxy principle at scale: deployment shape is invisible -------

/// The portable client: everything it does is plain IKeyValue. Run
/// verbatim against different deployment shapes below.
void RunPortableClient(ShardedWorld& w) {
  auto kv = w.AcquireKv();
  ASSERT_NE(kv, nullptr);
  auto body = [&]() -> sim::Co<void> {
    for (int i = 0; i < 16; ++i) {
      const std::string key = "user-" + std::to_string(i);
      const std::string value = "v" + std::to_string(i);
      CO_ASSERT_OK(co_await kv->Put(key, value));
    }
    Result<std::uint64_t> size = co_await kv->Size();
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 16u);
    Result<std::vector<std::string>> listed = co_await kv->List("user-");
    CO_ASSERT_OK(listed);
    EXPECT_EQ(listed->size(), 16u);
    EXPECT_TRUE(std::is_sorted(listed->begin(), listed->end()));
    for (int i = 0; i < 16; ++i) {
      const std::string key = "user-" + std::to_string(i);
      Result<std::optional<std::string>> got = co_await kv->Get(key);
      CO_ASSERT_OK(got);
      CO_ASSERT_TRUE(got->has_value());
      EXPECT_EQ(**got, "v" + std::to_string(i));
    }
    Result<bool> deleted = co_await kv->Del("user-3");
    CO_ASSERT_OK(deleted);
    EXPECT_TRUE(*deleted);
    Result<std::optional<std::string>> gone = co_await kv->Get("user-3");
    CO_ASSERT_OK(gone);
    EXPECT_FALSE(gone->has_value());
    Result<std::uint64_t> after = co_await kv->Size();
    CO_ASSERT_OK(after);
    EXPECT_EQ(*after, 15u);
  };
  w.Run(body);
}

TEST(ShardRouting, ClientRunsUnmodifiedAgainstOneAndFourGroups) {
  // Acceptance bar: the same client code, bound to plain IKeyValue via
  // core::Acquire, against a 1-group and a 4-group deployment.
  ShardedWorld one(/*groups=*/1, /*replicas_per_group=*/1, /*seed=*/101);
  RunPortableClient(one);

  ShardedWorld four(/*groups=*/4, /*replicas_per_group=*/1, /*seed=*/102);
  RunPortableClient(four);

  // The four-group run really was distributed: the keys spread over
  // several groups' local stores (deterministic under the fixed hash).
  std::uint32_t populated = 0;
  std::uint64_t total = 0;
  auto census = [&]() -> sim::Co<void> {
    for (const auto& group : four.skv.groups) {
      Result<std::uint64_t> size = co_await group.primary->Size();
      CO_ASSERT_OK(size);
      if (*size > 0) populated++;
      total += *size;
    }
  };
  four.Run(census);
  EXPECT_GE(populated, 2u);
  EXPECT_EQ(total, 15u);
}

TEST(ShardRouting, RouterRoutesEveryShardToItsOwningGroup) {
  ShardedWorld w(/*groups=*/2, /*replicas_per_group=*/1);
  auto router = w.AcquireRouter();
  ASSERT_NE(router, nullptr);

  auto write_all = [&]() -> sim::Co<void> {
    for (std::uint32_t s = 0; s < kShards; ++s) {
      const std::string key = KeyInShard(s);
      CO_ASSERT_OK(co_await router->Put(key, "v" + std::to_string(s)));
      // Routing observables: the op was stamped with the shard it hashed
      // to, the initial map's owner (shard s -> group s % 2), and that
      // group's ownership epoch (1 everywhere pre-migration).
      EXPECT_EQ(router->last_op_shard(), s);
      EXPECT_EQ(router->last_op_group(), w.skv.group_names[s % 2]);
      EXPECT_EQ(router->last_op_shard_epoch(), 1u);
    }
  };
  w.Run(write_all);
  EXPECT_EQ(router->map_version(), 1u);
  EXPECT_EQ(router->wrong_shard_retries(), 0u);

  // White-box residency: each group's local store holds exactly the keys
  // of the shards the initial map assigned it.
  auto census = [&]() -> sim::Co<void> {
    for (std::uint32_t g = 0; g < 2; ++g) {
      Result<std::vector<std::string>> held =
          co_await w.skv.groups[g].primary->List("");
      CO_ASSERT_OK(held);
      EXPECT_EQ(held->size(), kShards / 2) << "group " << g;
      for (const auto& key : *held) {
        EXPECT_EQ(ShardOf(key, kShards) % 2, g) << key;
      }
    }
  };
  w.Run(census);
}

// --- WRONG_SHARD: refresh-and-retry, and its bound ---------------------

TEST(ShardRouting, StaleMapRefreshesAndRetriesAfterAMigration) {
  ShardedWorld w(/*groups=*/2, /*replicas_per_group=*/1);
  auto router = w.AcquireRouter();
  ASSERT_NE(router, nullptr);
  const std::string key = KeyInShard(0);  // owner: g0 under the initial map

  auto seed = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await router->Put(key, "before"));
  };
  w.Run(seed);
  EXPECT_EQ(router->map_version(), 1u);

  // Migrate shard 0 to g1 behind the router's back.
  ShardRebalancer reb(*w.map_ctx, w.skv.binding, FastRebalancerParams());
  auto move = [&]() -> sim::Co<void> {
    Status moved = co_await reb.MigrateShard(0, 1);
    EXPECT_OK(moved);
  };
  w.Run(move);
  EXPECT_EQ(reb.moves(), 1u);
  EXPECT_EQ(reb.move_failures(), 0u);

  // The router still holds map v1 and routes to g0 first; the released
  // group answers WRONG_SHARD, the router re-fetches the map and lands
  // the write at g1 — one transient retry, invisible to the caller.
  auto rewrite = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await router->Put(key, "after"));
    Result<std::optional<std::string>> got = co_await router->Get(key);
    CO_ASSERT_OK(got);
    CO_ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, "after");
  };
  w.Run(rewrite);
  EXPECT_EQ(router->wrong_shard_retries(), 1u);
  EXPECT_GE(router->map_refreshes(), 1u);
  EXPECT_EQ(router->map_version(), 2u);
  EXPECT_EQ(router->last_op_group(), w.skv.group_names[1]);
  EXPECT_EQ(router->last_op_shard_epoch(), 2u);

  // The source really released: its store is empty and it fences the
  // shard (the replica-side half of the retry the router just absorbed).
  auto drained = [&]() -> sim::Co<void> {
    Result<std::uint64_t> left = co_await w.skv.groups[0].primary->Size();
    CO_ASSERT_OK(left);
    EXPECT_EQ(*left, 0u);
  };
  w.Run(drained);
  EXPECT_FALSE(w.skv.groups[0].primary->shard().Owns(0));
  EXPECT_GE(w.skv.groups[0].primary->wrong_shard_rejections(), 1u);
}

TEST(ShardRouting, StaleMapRetryIsBoundedAndSurfacesWrongShard) {
  ShardedWorld w(/*groups=*/2, /*replicas_per_group=*/1);
  auto router = w.AcquireRouter();
  ASSERT_NE(router, nullptr);
  const std::uint32_t shard = 2;  // owner: g0
  const std::string key = KeyInShard(shard);

  // Freeze the shard at its owner with no migration behind it: every
  // route lands WRONG_SHARD and every refresh returns the same map, so
  // the router must give up after exactly kRoutePasses passes rather
  // than spin forever on a map that never changes.
  auto freeze = [&]() -> sim::Co<void> {
    kvwire::ShardFreezeRequest req;
    req.shard = shard;
    Result<kvwire::ShardFreezeResponse> frozen =
        co_await w.skv.groups[0].primary->HandleShardFreeze(req);
    CO_ASSERT_OK(frozen);
  };
  w.Run(freeze);

  auto blocked = [&]() -> sim::Co<void> {
    Result<rpc::Void> put = co_await router->Put(key, "never");
    CO_ASSERT_TRUE(!put.ok());
    EXPECT_EQ(put.status().code(), StatusCode::kWrongShard);
  };
  w.Run(blocked);
  EXPECT_EQ(KvShardRouterProxy::kRoutePasses, 3);
  EXPECT_EQ(router->wrong_shard_retries(),
            static_cast<std::uint64_t>(KvShardRouterProxy::kRoutePasses));

  // Thaw (the abort path a failed move takes) and the same op succeeds.
  auto thaw = [&]() -> sim::Co<void> {
    kvwire::ShardUnfreezeRequest req;
    req.shard = shard;
    Result<rpc::Void> thawed =
        co_await w.skv.groups[0].primary->HandleShardUnfreeze(req);
    CO_ASSERT_OK(thawed);
    CO_ASSERT_OK(co_await router->Put(key, "now"));
  };
  w.Run(thaw);
  EXPECT_EQ(router->wrong_shard_retries(),
            static_cast<std::uint64_t>(KvShardRouterProxy::kRoutePasses));
}

// --- fan-out: List/Size across groups, dedup mid-migration -------------

TEST(ShardRouting, ListMergesSortedAndDedupsAcrossAHalfFinishedMove) {
  ShardedWorld w(/*groups=*/2, /*replicas_per_group=*/1);
  auto router = w.AcquireRouter();
  ASSERT_NE(router, nullptr);
  const std::uint32_t shard = 4;  // owner: g0
  std::vector<std::string> keys;
  keys.push_back(KeyInShard(shard, /*salt=*/0));
  keys.push_back(KeyInShard(shard, /*salt=*/1));
  keys.push_back(KeyInShard(5, /*salt=*/0));  // owner: g1
  keys.push_back(KeyInShard(6, /*salt=*/0));  // owner: g0

  auto seed = [&]() -> sim::Co<void> {
    for (const auto& key : keys) {
      CO_ASSERT_OK(co_await router->Put(key, "v-" + key));
    }
    Result<std::vector<std::string>> listed = co_await router->List("");
    CO_ASSERT_OK(listed);
    EXPECT_EQ(listed->size(), keys.size());
    EXPECT_TRUE(std::is_sorted(listed->begin(), listed->end()));
    Result<std::uint64_t> size = co_await router->Size();
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, keys.size());
  };
  w.Run(seed);
  EXPECT_EQ(router->fanouts(), 2u);

  // Half-finish a move by hand: freeze at the source, install the copy
  // at the destination, but never commit or release — the two shard-4
  // keys are now resident at both groups, the mid-migration window every
  // fan-out must tolerate.
  auto half_move = [&]() -> sim::Co<void> {
    kvwire::ShardFreezeRequest freeze;
    freeze.shard = shard;
    Result<kvwire::ShardFreezeResponse> frozen =
        co_await w.skv.groups[0].primary->HandleShardFreeze(freeze);
    CO_ASSERT_OK(frozen);
    EXPECT_EQ(frozen->entries.size(), 2u);
    kvwire::ShardInstallRequest install;
    install.shard = shard;
    install.shard_epoch = frozen->shard_epoch + 1;
    install.entries = frozen->entries;
    Result<kvwire::ShardInstallResponse> installed =
        co_await w.skv.groups[1].primary->HandleShardInstall(install);
    CO_ASSERT_OK(installed);
    EXPECT_EQ(installed->shard_epoch, 2u);
  };
  w.Run(half_move);

  auto fanout = [&]() -> sim::Co<void> {
    // List dedups the doubly-resident keys: still exactly |keys| names.
    Result<std::vector<std::string>> listed = co_await router->List("");
    CO_ASSERT_OK(listed);
    EXPECT_EQ(listed->size(), keys.size());
    EXPECT_TRUE(std::is_sorted(listed->begin(), listed->end()));
    // Size is advisory during a migration: the frozen-but-unreleased
    // shard is counted at both ends (documented, pinned here).
    Result<std::uint64_t> size = co_await router->Size();
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, keys.size() + 2);
  };
  w.Run(fanout);
}

// --- online migration: concurrent writes, crash recovery ---------------

TEST(ShardRouting, MigrationUnderConcurrentWritesLosesNoAckedWrite) {
  ShardedWorld w(/*groups=*/2, /*replicas_per_group=*/3, /*seed=*/55);
  auto router = w.AcquireRouter();
  ASSERT_NE(router, nullptr);
  const std::string busy = KeyInShard(0);    // migrates mid-write
  const std::string steady = KeyInShard(1);  // stays put at g1
  ShardRebalancer reb(*w.map_ctx, w.skv.binding, FastRebalancerParams());

  bool writes_done = false;
  bool move_done = false;
  constexpr int kWrites = 12;
  auto writer = [&]() -> sim::Co<void> {
    for (int i = 0; i < kWrites; ++i) {
      const std::string value = "v" + std::to_string(i);
      // Ack-or-retry, like a real client: a write that lands in the
      // freeze window fails after the router's bounded passes and is
      // simply re-issued; once acked it may never be lost again.
      bool acked = false;
      for (int attempt = 0; attempt < 40 && !acked; ++attempt) {
        Result<rpc::Void> put = co_await router->Put(busy, value);
        if (put.ok()) {
          acked = true;
          break;
        }
        co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(8));
      }
      EXPECT_TRUE(acked) << "write " << i << " never acknowledged";
      CO_ASSERT_OK(co_await router->Put(steady, value));
      // Read-your-write through the router, across the migration: the
      // just-acked value is what a subsequent read returns (single
      // writer, so equality is exact).
      bool read_back = false;
      for (int attempt = 0; attempt < 40 && !read_back; ++attempt) {
        Result<std::optional<std::string>> got = co_await router->Get(busy);
        if (got.ok()) {
          CO_ASSERT_TRUE(got->has_value());
          EXPECT_EQ(**got, value) << "after write " << i;
          read_back = true;
          break;
        }
        co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(8));
      }
      EXPECT_TRUE(read_back) << "read after write " << i << " never served";
      co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(4));
    }
    writes_done = true;
  };
  auto mover = [&]() -> sim::Co<void> {
    // Land the move squarely inside the write stream.
    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(30));
    Status moved = co_await reb.MigrateShard(0, 1);
    EXPECT_OK(moved);
    move_done = true;
  };
  (void)sim::Spawn(w.rt->scheduler(), writer());
  (void)sim::Spawn(w.rt->scheduler(), mover());
  w.rt->scheduler().RunUntil([&] { return writes_done && move_done; });
  ASSERT_TRUE(writes_done);
  ASSERT_TRUE(move_done);
  EXPECT_EQ(reb.moves(), 1u);

  // Quiescent: the final acked values survive at the new owner.
  auto verify = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> got = co_await router->Get(busy);
    CO_ASSERT_OK(got);
    CO_ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, "v" + std::to_string(kWrites - 1));
    Result<std::optional<std::string>> still = co_await router->Get(steady);
    CO_ASSERT_OK(still);
    CO_ASSERT_TRUE(still->has_value());
    EXPECT_EQ(**still, "v" + std::to_string(kWrites - 1));
  };
  w.Run(verify);
  EXPECT_EQ(router->map_version(), 2u);
  EXPECT_EQ(router->last_op_group(), w.skv.group_names[1]);
}

TEST(ShardRouting, RerunRecoversAMoveAbandonedAfterFreeze) {
  // Crash-mid-copy: the rebalancer froze the source and died before
  // installing anything. The shard is fenced (safe, unavailable) until a
  // re-run of the same move finds it frozen, gets the identical
  // snapshot, and completes the handoff.
  ShardedWorld w(/*groups=*/2, /*replicas_per_group=*/1);
  auto router = w.AcquireRouter();
  ASSERT_NE(router, nullptr);
  const std::uint32_t shard = 2;  // owner: g0
  const std::string k1 = KeyInShard(shard, /*salt=*/0);
  const std::string k2 = KeyInShard(shard, /*salt=*/1);

  auto seed_then_freeze = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await router->Put(k1, "one"));
    CO_ASSERT_OK(co_await router->Put(k2, "two"));
    kvwire::ShardFreezeRequest req;
    req.shard = shard;
    Result<kvwire::ShardFreezeResponse> frozen =
        co_await w.skv.groups[0].primary->HandleShardFreeze(req);
    CO_ASSERT_OK(frozen);
    EXPECT_EQ(frozen->entries.size(), 2u);
  };
  w.Run(seed_then_freeze);
  EXPECT_TRUE(w.skv.groups[0].primary->shard().Frozen(shard));

  ShardRebalancer reb(*w.map_ctx, w.skv.binding, FastRebalancerParams());
  auto recover = [&]() -> sim::Co<void> {
    Status moved = co_await reb.MigrateShard(shard, 1);
    EXPECT_OK(moved);
  };
  w.Run(recover);
  EXPECT_EQ(reb.moves(), 1u);
  EXPECT_EQ(w.skv.map_service->map().owner[shard], 1u);
  EXPECT_EQ(w.skv.map_service->map().version, 2u);
  EXPECT_FALSE(w.skv.groups[0].primary->shard().Owns(shard));

  auto verify = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> one = co_await router->Get(k1);
    CO_ASSERT_OK(one);
    CO_ASSERT_TRUE(one->has_value());
    EXPECT_EQ(**one, "one");
    Result<std::optional<std::string>> two = co_await router->Get(k2);
    CO_ASSERT_OK(two);
    CO_ASSERT_TRUE(two->has_value());
    EXPECT_EQ(**two, "two");
  };
  w.Run(verify);
}

TEST(ShardRouting, RerunReleasesTheSourceAfterACommittedHandoff) {
  // Crash-mid-handoff: freeze, install and commit all landed, the
  // release never did. The committed map already names the destination;
  // re-running the move must short-circuit straight to the release sweep
  // and retire the source's fenced copy under the committed-epoch proof.
  ShardedWorld w(/*groups=*/2, /*replicas_per_group=*/1);
  auto router = w.AcquireRouter();
  ASSERT_NE(router, nullptr);
  const std::uint32_t shard = 6;  // owner: g0
  const std::string key = KeyInShard(shard);

  auto handoff_no_release = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await router->Put(key, "carried"));
    kvwire::ShardFreezeRequest freeze;
    freeze.shard = shard;
    Result<kvwire::ShardFreezeResponse> frozen =
        co_await w.skv.groups[0].primary->HandleShardFreeze(freeze);
    CO_ASSERT_OK(frozen);
    kvwire::ShardInstallRequest install;
    install.shard = shard;
    install.shard_epoch = frozen->shard_epoch + 1;
    install.entries = frozen->entries;
    Result<kvwire::ShardInstallResponse> installed =
        co_await w.skv.groups[1].primary->HandleShardInstall(install);
    CO_ASSERT_OK(installed);
    shardwire::CommitMoveRequest commit;
    commit.shard = shard;
    commit.to_group = 1;
    commit.expect_version = 1;
    commit.new_shard_epoch = frozen->shard_epoch + 1;
    Result<shardwire::CommitMoveResponse> committed =
        co_await w.skv.map_service->HandleCommitMove(commit);
    CO_ASSERT_OK(committed);
  };
  w.Run(handoff_no_release);
  EXPECT_TRUE(w.skv.groups[0].primary->shard().Owns(shard));  // dangling

  ShardRebalancer reb(*w.map_ctx, w.skv.binding, FastRebalancerParams());
  auto recover = [&]() -> sim::Co<void> {
    Status moved = co_await reb.MigrateShard(shard, 1);
    EXPECT_OK(moved);
  };
  w.Run(recover);
  EXPECT_EQ(reb.moves(), 1u);
  EXPECT_FALSE(w.skv.groups[0].primary->shard().Owns(shard));
  EXPECT_FALSE(w.skv.groups[0].primary->shard().Frozen(shard));

  auto verify = [&]() -> sim::Co<void> {
    Result<std::uint64_t> left = co_await w.skv.groups[0].primary->Size();
    CO_ASSERT_OK(left);
    EXPECT_EQ(*left, 0u);
    Result<std::optional<std::string>> got = co_await router->Get(key);
    CO_ASSERT_OK(got);
    CO_ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, "carried");
  };
  w.Run(verify);
  EXPECT_EQ(router->last_op_group(), w.skv.group_names[1]);
}

TEST(ShardRouting, SourcePrimaryCrashMidMoveIsRecoveredViaPromotion) {
  // The freeze is mirrored to every active backup before any data leaves
  // the group, so a source primary that dies mid-move hands a *frozen*
  // shard to its successor — and a re-run of the move completes against
  // the promoted primary with the acked data intact.
  ShardedWorld w(/*groups=*/2, /*replicas_per_group=*/3, /*seed=*/77);
  auto router = w.AcquireRouter();
  ASSERT_NE(router, nullptr);
  const std::uint32_t shard = 0;  // owner: g0
  const std::string k1 = KeyInShard(shard, /*salt=*/0);
  const std::string k2 = KeyInShard(shard, /*salt=*/1);

  auto seed_then_freeze = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await router->Put(k1, "alpha"));
    CO_ASSERT_OK(co_await router->Put(k2, "beta"));
    kvwire::ShardFreezeRequest req;
    req.shard = shard;
    Result<kvwire::ShardFreezeResponse> frozen =
        co_await w.skv.groups[0].primary->HandleShardFreeze(req);
    CO_ASSERT_OK(frozen);
  };
  w.Run(seed_then_freeze);

  w.rt->CrashNode(w.replica_nodes[0][0]);
  w.rt->scheduler().RunFor(Milliseconds(450));  // lease lapse + promotion

  const KvReplica* successor = nullptr;
  for (const auto& replica : w.skv.groups[0].replicas) {
    if (replica->role() == ReplicaRole::kPrimary && !replica->syncing()) {
      EXPECT_EQ(successor, nullptr) << "two serving primaries in g0";
      successor = replica.get();
    }
  }
  ASSERT_NE(successor, nullptr) << "no g0 backup promoted";
  // The chain of custody: the successor inherited the freeze.
  EXPECT_TRUE(successor->shard().Frozen(shard));

  ShardRebalancer reb(*w.map_ctx, w.skv.binding, FastRebalancerParams());
  auto recover = [&]() -> sim::Co<void> {
    Status moved = co_await reb.MigrateShard(shard, 1);
    EXPECT_OK(moved);
  };
  w.Run(recover);
  EXPECT_EQ(reb.moves(), 1u);
  EXPECT_FALSE(successor->shard().Owns(shard));

  auto verify = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> one = co_await router->Get(k1);
    CO_ASSERT_OK(one);
    CO_ASSERT_TRUE(one->has_value());
    EXPECT_EQ(**one, "alpha");
    Result<std::optional<std::string>> two = co_await router->Get(k2);
    CO_ASSERT_OK(two);
    CO_ASSERT_TRUE(two->has_value());
    EXPECT_EQ(**two, "beta");
  };
  w.Run(verify);
  EXPECT_EQ(router->last_op_group(), w.skv.group_names[1]);

  // The crashed ex-primary restarts empty and rejoins as a resynced
  // backup of the post-move group.
  w.rt->RestartNode(w.replica_nodes[0][0]);
  w.rt->scheduler().RunFor(Milliseconds(400));
  EXPECT_FALSE(w.skv.groups[0].primary->syncing());
  EXPECT_EQ(w.skv.groups[0].primary->role(), ReplicaRole::kBackup);
  EXPECT_FALSE(w.skv.groups[0].primary->shard().Owns(shard));
}

// --- the rescue backstop: a fully-deposed group revives ----------------

/// Three replicas in named mode on their own nodes, plus a client node,
/// with the fast failover timers. The deposition below is wire-level, so
/// this world hands out raw access to the replica bindings.
struct RescueWorld {
  RescueWorld() {
    RegisterAllServices();
    core::Runtime::Params params;
    params.seed = 23;
    rt = std::make_unique<core::Runtime>(params);
    rt->StartNameService(rt->AddNode("ns"));
    n1 = rt->AddNode("kv-1");
    n2 = rt->AddNode("kv-2");
    n3 = rt->AddNode("kv-3");
    c1 = &rt->CreateContext(n1, "kv-1");
    c2 = &rt->CreateContext(n2, "kv-2");
    c3 = &rt->CreateContext(n3, "kv-3");
    client_ctx = &rt->CreateContext(rt->AddNode("client"), "client");
    ReplicatedKvParams params_kv = FastGroupParams();
    params_kv.name = "rkv/rescue";
    Result<ReplicatedKvExport> exported =
        ExportReplicatedKv(*c1, {c2, c3}, params_kv);
    EXPECT_TRUE(exported.ok());
    exp = std::move(*exported);
    rt->scheduler().RunFor(Milliseconds(30));  // lease publishes the name
  }

  template <typename L>
  void Run(L& lambda) {
    rt->Run(lambda());
  }

  [[nodiscard]] std::uint64_t TotalRescues() const {
    std::uint64_t total = 0;
    for (const auto& replica : exp.replicas) total += replica->rescues();
    return total;
  }

  std::unique_ptr<core::Runtime> rt;
  NodeId n1, n2, n3;
  core::Context* c1 = nullptr;
  core::Context* c2 = nullptr;
  core::Context* c3 = nullptr;
  core::Context* client_ctx = nullptr;
  ReplicatedKvExport exp;
};

TEST(ShardRouting, RescueRevivesAFullyDeposedGroupWithoutLosingData) {
  RescueWorld w;
  std::shared_ptr<IKeyValue> kv;
  auto bind = [&]() -> sim::Co<void> {
    core::AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<IKeyValue>> bound =
        co_await core::Acquire<IKeyValue>(*w.client_ctx, "rkv/rescue", opts);
    CO_ASSERT_OK(bound);
    kv = *bound;
    CO_ASSERT_OK(co_await kv->Put("k1", "v1"));
  };
  w.Run(bind);
  ASSERT_NE(kv, nullptr);

  // Depose the primary at the wire: a higher-epoch membership announce
  // that excludes it — exactly what a partitioned successor's mirror
  // frame looks like. The ex-primary must step down into resync (its
  // data is intact, its epoch stays) without adopting the new view.
  auto depose = [&]() -> sim::Co<void> {
    kvwire::ReplicateBatchRequest evict;
    evict.epoch = w.exp.primary->epoch() + 1;
    evict.replicas = w.exp.backup_bindings;  // the primary is not in it
    rpc::CallOptions opts;
    opts.retry_interval = Milliseconds(5);
    opts.max_retries = 3;
    opts.deadline = Milliseconds(100);
    const Bytes args = serde::EncodeToBytes(evict);
    rpc::RpcResult r = co_await w.client_ctx->client().Call(
        w.exp.binding.server, w.exp.binding.object, kvwire::kReplicateBatch,
        args, opts);
    CO_ASSERT_TRUE(!r.ok());
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  };
  w.Run(depose);
  EXPECT_EQ(w.exp.primary->role(), ReplicaRole::kBackup);
  EXPECT_TRUE(w.exp.primary->syncing());
  EXPECT_GE(w.exp.primary->epoch(), 1u);  // store and epoch survive

  // Crash-wipe both backups before they can promote: now every replica
  // is syncing — nobody can promote (no serving backup) and nobody can
  // rejoin (the name record expires unrenewed). Without the rescue
  // backstop this group is dead forever.
  w.rt->CrashNode(w.n2);
  w.rt->CrashNode(w.n3);

  // Safety half: with one peer still unreachable the data holder must
  // NOT claim — the missing replica could be strictly ahead.
  w.rt->RestartNode(w.n2);
  w.rt->scheduler().RunFor(Milliseconds(900));
  EXPECT_EQ(w.TotalRescues(), 0u);
  EXPECT_TRUE(w.exp.primary->syncing());

  // Liveness half: every peer reachable, all syncing, none ahead — the
  // ex-primary (the only replica with data, epoch > 0) claims the name,
  // serves again, and the wiped peers rejoin through it.
  w.rt->RestartNode(w.n3);
  w.rt->scheduler().RunFor(Milliseconds(1500));
  EXPECT_EQ(w.TotalRescues(), 1u);
  EXPECT_EQ(w.exp.primary->rescues(), 1u);
  EXPECT_EQ(w.exp.primary->role(), ReplicaRole::kPrimary);
  EXPECT_FALSE(w.exp.primary->syncing());
  EXPECT_GE(w.exp.primary->epoch(), 2u);  // rescue opens a fresh reign
  for (const auto& backup : w.exp.backup_impls) {
    EXPECT_FALSE(backup->syncing());
    EXPECT_EQ(backup->role(), ReplicaRole::kBackup);
    EXPECT_EQ(backup->epoch(), w.exp.primary->epoch());
  }

  // The acked pre-deposition write survived the whole ordeal, and the
  // revived group accepts new writes (the mirror set is whole again).
  auto after = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> got = co_await kv->Get("k1");
    CO_ASSERT_OK(got);
    CO_ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, "v1");
    CO_ASSERT_OK(co_await kv->Put("k2", "v2"));
  };
  w.Run(after);
}

}  // namespace
}  // namespace proxy::services
