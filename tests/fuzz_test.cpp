// Adversarial-input sweeps: every trust boundary must turn arbitrary
// bytes into a clean error (or a valid value), never UB. These tests are
// deterministic "fuzzing" — seeded random buffers through every decoder.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "naming/protocol.h"
#include "net/endpoint.h"
#include "rpc/frame.h"
#include "serde/message.h"
#include "serde/traits.h"
#include "services/file.h"
#include "services/kv.h"
#include "sim/network.h"

namespace proxy {
namespace {

Bytes RandomBuffer(Rng& rng, std::size_t max_len) {
  Bytes b(rng.UniformU64(max_len + 1));
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.NextU64());
  return b;
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, RandomBytesThroughEveryDecoder) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    const Bytes junk = RandomBuffer(rng, 256);
    // None of these may crash; results are unconstrained otherwise.
    (void)serde::UnwrapEnvelope(View(junk));
    (void)rpc::PeekFrameType(View(junk));
    (void)rpc::DecodeRequest(View(junk));
    (void)rpc::DecodeReply(View(junk));
    (void)serde::DecodeFromBytes<naming::NameRecord>(View(junk));
    (void)serde::DecodeFromBytes<naming::ListResponse>(View(junk));
    (void)serde::DecodeFromBytes<services::kvwire::BatchPutRequest>(
        View(junk));
    (void)serde::DecodeFromBytes<services::filewire::WriteVecRequest>(
        View(junk));
    (void)serde::DecodeFromBytes<std::map<std::string, std::string>>(
        View(junk));
    (void)serde::DecodeFromBytes<std::vector<std::optional<std::string>>>(
        View(junk));
  }
}

TEST_P(FuzzSeed, RandomDatagramsIntoALiveStack) {
  // Junk straight off the wire into a node stack with a bound endpoint:
  // must be rejected at the envelope, everything stays alive.
  sim::Scheduler sched;
  sim::Network net(sched, GetParam());
  const NodeId a = net.AddNode("attacker");
  const NodeId v = net.AddNode("victim");
  net::NodeStack stack(net, v);
  net::Endpoint* ep = stack.OpenEndpoint(PortId(1));
  int delivered = 0;
  ep->SetHandler([&](const net::Address&, OwnedBytes) { ++delivered; });

  Rng rng(GetParam() ^ 0xF00D);
  for (int i = 0; i < 200; ++i) {
    (void)net.Send(a, v, PortId(1), RandomBuffer(rng, 128));
  }
  sched.Run();
  EXPECT_EQ(delivered, 0);  // nothing random passes the CRC envelope
  EXPECT_EQ(stack.rejected_datagrams(), 200u);
}

TEST_P(FuzzSeed, TruncatedValidFramesRejectedCleanly) {
  Rng rng(GetParam());
  rpc::RequestFrame frame;
  frame.call = rpc::CallId{rng.NextU64(), rng.NextU64()};
  frame.object = ObjectId{rng.NextU64(), rng.NextU64()};
  frame.method = static_cast<std::uint32_t>(rng.NextU64());
  frame.args = RandomBuffer(rng, 64);
  const Bytes good = rpc::EncodeRequest(frame);
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(rpc::DecodeRequest(BytesView(good.data(), cut)).ok());
  }
  // And the unmutated frame still decodes (the encoder is sane).
  EXPECT_TRUE(rpc::DecodeRequest(View(good)).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(0xA, 0xB, 0xC, 0xD, 0xE, 0xF));

}  // namespace
}  // namespace proxy
