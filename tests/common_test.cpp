// Unit tests for src/common: error model, ids, rng, hexdump, time.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/hexdump.h"
#include "common/id.h"
#include "common/rng.h"
#include "common/status.h"

namespace proxy {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = TimeoutError("no reply");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(s.message(), "no reply");
  EXPECT_EQ(s.ToString(), "TIMEOUT: no reply");
}

TEST(Status, EveryConstructorMatchesItsCode) {
  EXPECT_EQ(TimeoutError("").code(), StatusCode::kTimeout);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(CorruptError("").code(), StatusCode::kCorrupt);
  EXPECT_EQ(ObjectMovedError("").code(), StatusCode::kObjectMoved);
  EXPECT_EQ(CancelledError("").code(), StatusCode::kCancelled);
  EXPECT_EQ(ResourceExhaustedError("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kObjectMoved), "OBJECT_MOVED");
  EXPECT_EQ(StatusCodeName(StatusCode::kPermissionDenied),
            "PERMISSION_DENIED");
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFoundError("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, OkStatusIsPromotedToInternalError) {
  Result<int> r = Status::Ok();  // misuse: value-less OK
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, MapTransformsValueAndPropagatesError) {
  Result<int> ok(21);
  auto doubled = std::move(ok).map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);

  Result<int> err = TimeoutError("t");
  auto mapped = std::move(err).map([](int v) { return v * 2; });
  EXPECT_EQ(mapped.status().code(), StatusCode::kTimeout);
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return InvalidArgumentError("boom");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    PROXY_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kInvalidArgument);
}

TEST(Ids, StrongIdsCompare) {
  NodeId a(1), b(2), a2(1);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(Ids, ObjectIdNilAndFormat) {
  ObjectId nil;
  EXPECT_TRUE(nil.IsNil());
  ObjectId id{0x1234, 0xabcd};
  EXPECT_FALSE(id.IsNil());
  EXPECT_EQ(id.ToString(), "0000000000001234-000000000000abcd");
}

TEST(Ids, InterfaceIdIsStableHash) {
  constexpr InterfaceId a = InterfaceIdOf("proxy.services.KeyValue");
  constexpr InterfaceId b = InterfaceIdOf("proxy.services.KeyValue");
  constexpr InterfaceId c = InterfaceIdOf("proxy.services.File");
  static_assert(a == b);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
    const auto v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.UniformU64(0), 0u);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / kTrials, 5.0, 0.25);
}

TEST(Zipf, RanksWithinBoundsAndSkewed) {
  ZipfGenerator zipf(100, 1.0, 17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto rank = zipf.Next();
    ASSERT_LT(rank, 100u);
    counts[rank]++;
  }
  // Rank 0 should be roughly twice as popular as rank 1 (1/1 vs 1/2).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.4);
  // And overwhelmingly more popular than the tail.
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(Zipf, SkewZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0, 19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Next()]++;
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Bytes, Conversions) {
  const Bytes b = ToBytes("abc");
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(ToString(View(b)), "abc");
}

TEST(HexDump, FormatsAndTruncates) {
  Bytes data;
  for (int i = 0; i < 20; ++i) data.push_back(static_cast<std::uint8_t>(i));
  const std::string dump = HexDump(View(data), 16);
  EXPECT_NE(dump.find("0000:"), std::string::npos);
  EXPECT_NE(dump.find("more bytes"), std::string::npos);

  EXPECT_EQ(HexString(View(ToBytes("AB")), 32), "4142");
  EXPECT_NE(HexString(View(data), 4).find("…"), std::string::npos);
}

TEST(Clock, UnitHelpersAndFormatting) {
  EXPECT_EQ(Microseconds(1), 1000u);
  EXPECT_EQ(Milliseconds(1), 1000'000u);
  EXPECT_EQ(Seconds(1), 1000'000'000u);
  EXPECT_DOUBLE_EQ(ToMicros(1500), 1.5);
  EXPECT_EQ(FormatDuration(500), "500ns");
  EXPECT_EQ(FormatDuration(Microseconds(2)), "2.000us");
  EXPECT_EQ(FormatDuration(Milliseconds(3)), "3.000ms");
  EXPECT_EQ(FormatDuration(Seconds(4)), "4.000s");
}

}  // namespace
}  // namespace proxy
