// Wire-evolution coverage for the RPC request frame's versioned envelope:
// v1 frames (no deadline on the wire) decode with no deadline, v2 frames
// round-trip it, v3 frames with unknown trailing fields still decode, v4
// frames round-trip the causal trace triple (and pre-v4 senders decode
// against the v4 reader with an inactive trace), v5 frames round-trip
// the admission priority (and pre-v5 senders decode as kNormal) — and
// truncating an encoded frame at any byte either decodes cleanly or
// fails with an error, never crashes or hangs.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.h"
#include "rpc/frame.h"
#include "serde/reader.h"
#include "serde/traits.h"
#include "serde/versioned.h"
#include "serde/writer.h"
#include "services/shard_map.h"

namespace proxy::rpc {
namespace {

RequestFrame SampleRequest() {
  RequestFrame frame;
  frame.call = CallId{0xABCDEF0123456789ULL, 42};
  frame.object = ObjectId{7, 0x1122334455667788ULL};
  frame.method = 3;
  frame.args = Bytes{1, 2, 3, 4, 5};
  frame.deadline = Milliseconds(250);
  return frame;
}

RequestFrame SampleTracedRequest() {
  RequestFrame frame = SampleRequest();
  frame.trace.trace_id = 0x1111222233334444ULL;
  frame.trace.span_id = 0x5555666677778888ULL;
  frame.trace.parent_span_id = 0x9999AAAABBBBCCCCULL;
  return frame;
}

/// Encodes `frame` under an explicit envelope version, appending
/// `extra_fields` unknown varints after the known ones (a "v3" sender).
/// Versions >= 4 carry the trace triple, >= 5 the priority — exactly
/// what a real sender of that vintage would put on the wire.
Bytes EncodeRequestAs(const RequestFrame& frame, std::uint32_t version,
                      int extra_fields = 0) {
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(FrameType::kRequest));
  serde::VersionedWriter vw(w, version);
  serde::Serialize(vw.body(), frame);  // v1 fields
  if (version >= 2) vw.body().WriteVarint(frame.deadline);
  if (version >= kTraceWireVersion) {
    vw.body().WriteVarint(frame.trace.trace_id);
    vw.body().WriteVarint(frame.trace.span_id);
    vw.body().WriteVarint(frame.trace.parent_span_id);
  }
  if (version >= kPriorityWireVersion) {
    vw.body().WriteVarint(static_cast<std::uint64_t>(frame.priority));
  }
  for (int i = 0; i < extra_fields; ++i) {
    vw.body().WriteVarint(0xF00D + static_cast<std::uint64_t>(i));
  }
  vw.Finish();
  return w.Take();
}

void ExpectV1FieldsMatch(const RequestFrame& got, const RequestFrame& want) {
  EXPECT_EQ(got.call, want.call);
  EXPECT_EQ(got.object, want.object);
  EXPECT_EQ(got.method, want.method);
  EXPECT_EQ(got.args, want.args);
}

TEST(FrameRoundtrip, CurrentVersionRoundTripsDeadline) {
  const RequestFrame frame = SampleRequest();
  const Result<RequestFrame> decoded = DecodeRequest(View(EncodeRequest(frame)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectV1FieldsMatch(*decoded, frame);
  EXPECT_EQ(decoded->deadline, frame.deadline);
}

TEST(FrameRoundtrip, ZeroDeadlineMeansNone) {
  RequestFrame frame = SampleRequest();
  frame.deadline = 0;
  const Result<RequestFrame> decoded = DecodeRequest(View(EncodeRequest(frame)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->deadline, 0u);
}

TEST(FrameRoundtrip, V1FrameDecodesWithNoDeadline) {
  const RequestFrame frame = SampleRequest();
  const Bytes v1 = EncodeRequestAs(frame, /*version=*/1);
  const Result<RequestFrame> decoded = DecodeRequest(View(v1));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectV1FieldsMatch(*decoded, frame);
  EXPECT_EQ(decoded->deadline, 0u) << "v1 sender cannot carry a deadline";
}

TEST(FrameRoundtrip, V3FrameWithUnknownTrailingFieldsDecodes) {
  const RequestFrame frame = SampleRequest();
  const Bytes v3 = EncodeRequestAs(frame, /*version=*/3, /*extra_fields=*/4);
  const Result<RequestFrame> decoded = DecodeRequest(View(v3));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectV1FieldsMatch(*decoded, frame);
  EXPECT_EQ(decoded->deadline, frame.deadline)
      << "known v2 field read even when a v3 tail follows";
}

TEST(FrameRoundtrip, V4RoundTripsTraceContext) {
  const RequestFrame frame = SampleTracedRequest();
  const Result<RequestFrame> decoded =
      DecodeRequest(View(EncodeRequest(frame)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectV1FieldsMatch(*decoded, frame);
  EXPECT_EQ(decoded->trace.trace_id, frame.trace.trace_id);
  EXPECT_EQ(decoded->trace.span_id, frame.trace.span_id);
  EXPECT_EQ(decoded->trace.parent_span_id, frame.trace.parent_span_id);
  EXPECT_TRUE(decoded->trace.active());
}

TEST(FrameRoundtrip, UntracedV4FrameDecodesInactive) {
  const RequestFrame frame = SampleRequest();  // trace all-zero
  const Result<RequestFrame> decoded =
      DecodeRequest(View(EncodeRequest(frame)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->trace.active());
}

TEST(FrameRoundtrip, PreV4FramesDecodeWithInactiveTrace) {
  // A v2 or v3 sender cannot carry a trace; the v4 decoder must yield an
  // inactive (all-zero) context, not garbage from the tail.
  const RequestFrame frame = SampleRequest();
  for (const std::uint32_t version : {1u, 2u, 3u}) {
    const Bytes old = EncodeRequestAs(frame, version,
                                      /*extra_fields=*/version == 3 ? 4 : 0);
    const Result<RequestFrame> decoded = DecodeRequest(View(old));
    ASSERT_TRUE(decoded.ok()) << "version " << version;
    EXPECT_FALSE(decoded->trace.active()) << "version " << version;
    EXPECT_EQ(decoded->trace.trace_id, 0u) << "version " << version;
  }
}

TEST(FrameRoundtrip, V5RoundTripsEveryPriority) {
  for (const Priority p :
       {Priority::kHigh, Priority::kNormal, Priority::kLow}) {
    RequestFrame frame = SampleTracedRequest();
    frame.priority = p;
    const Result<RequestFrame> decoded =
        DecodeRequest(View(EncodeRequest(frame)));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->priority, p) << PriorityName(p);
    EXPECT_EQ(decoded->trace.trace_id, frame.trace.trace_id)
        << "priority must not disturb the v4 fields before it";
  }
}

TEST(FrameRoundtrip, PreV5FramesDecodeAsNormalPriority) {
  // A v1/v2/v4 sender cannot carry a priority; the v5 decoder must
  // default to kNormal — unannotated traffic is the middle class, never
  // accidentally promoted or shed.
  const RequestFrame frame = SampleTracedRequest();
  for (const std::uint32_t version : {1u, 2u, 4u}) {
    const Bytes old = EncodeRequestAs(frame, version);
    const Result<RequestFrame> decoded = DecodeRequest(View(old));
    ASSERT_TRUE(decoded.ok()) << "version " << version << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->priority, Priority::kNormal) << "version " << version;
    if (version >= kTraceWireVersion) {
      EXPECT_EQ(decoded->trace.trace_id, frame.trace.trace_id);
    }
  }
}

TEST(FrameRoundtrip, OutOfRangePriorityIsCorrupt) {
  // The priority lattice has exactly kPriorityLevels values; a frame
  // claiming a level beyond it is corruption, not a future extension
  // (new levels would be a new wire version).
  const RequestFrame frame = SampleRequest();
  serde::Writer w;
  w.WriteU8(static_cast<std::uint8_t>(FrameType::kRequest));
  serde::VersionedWriter vw(w, kPriorityWireVersion);
  serde::Serialize(vw.body(), frame);
  vw.body().WriteVarint(frame.deadline);
  vw.body().WriteVarint(0);  // trace triple
  vw.body().WriteVarint(0);
  vw.body().WriteVarint(0);
  vw.body().WriteVarint(kPriorityLevels);  // first invalid level
  vw.Finish();
  EXPECT_FALSE(DecodeRequest(View(w.Take())).ok());
}

TEST(FrameRoundtrip, TruncatedPriorityRequestNeverDecodesAsValid) {
  // The priority byte is the very last body byte of a v5 frame; every
  // truncation point — including just that byte — must fail the whole
  // decode (a frame with its priority sheared off is corrupt, not
  // "normal priority").
  RequestFrame frame = SampleTracedRequest();
  frame.priority = Priority::kLow;
  const Bytes full = EncodeRequest(frame);
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(BytesView(full.data(), len)).ok())
        << "prefix of length " << len << " decoded";
  }
  const Result<RequestFrame> whole = DecodeRequest(View(full));
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->priority, Priority::kLow);
}

TEST(FrameRoundtrip, ReplyFrameRoundTripsRetryAfter) {
  // The pushback hint must survive the wire exactly: the client's
  // backoff is seeded from it.
  ReplyFrame reply;
  reply.call = CallId{0xD00F, 3};
  reply.code = StatusCode::kResourceExhausted;
  reply.error_message = "admission queue full";
  reply.retry_after = Milliseconds(15);
  const Result<ReplyFrame> decoded = DecodeReply(View(EncodeReply(reply)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->retry_after, Milliseconds(15));
  EXPECT_EQ(decoded->error_message, reply.error_message);
}

TEST(FrameRoundtrip, TruncatedTracedRequestNeverDecodesAsValid) {
  // The trace triple sits at the very end of the v4 body; every
  // truncation point inside it must fail the whole decode (a frame with
  // half a trace is a corrupt frame, not an untraced one).
  const Bytes full = EncodeRequest(SampleTracedRequest());
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(BytesView(full.data(), len)).ok())
        << "prefix of length " << len << " decoded";
  }
  EXPECT_TRUE(DecodeRequest(View(full)).ok());
}

TEST(FrameRoundtrip, ReplyFrameRoundTrips) {
  ReplyFrame reply;
  reply.call = CallId{99, 7};
  reply.code = StatusCode::kFailedPrecondition;
  reply.error_message = "held elsewhere";
  const Result<ReplyFrame> decoded = DecodeReply(View(EncodeReply(reply)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->call, reply.call);
  EXPECT_EQ(decoded->code, reply.code);
  EXPECT_EQ(decoded->error_message, reply.error_message);
}

TEST(FrameRoundtrip, TruncatedRequestNeverDecodesAsValid) {
  const Bytes full = EncodeRequest(SampleRequest());
  // Every strict prefix must be rejected: a truncated frame that decoded
  // "successfully" would be silent wire corruption.
  for (std::size_t len = 0; len < full.size(); ++len) {
    const Result<RequestFrame> decoded =
        DecodeRequest(BytesView(full.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
  const Result<RequestFrame> whole = DecodeRequest(View(full));
  EXPECT_TRUE(whole.ok());
}

TEST(FrameRoundtrip, TruncatedReplyNeverDecodesAsValid) {
  ReplyFrame reply;
  reply.call = CallId{0x1234, 56};
  reply.result = Bytes{9, 8, 7, 6};
  const Bytes full = EncodeReply(reply);
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_FALSE(DecodeReply(BytesView(full.data(), len)).ok())
        << "prefix of length " << len << " decoded";
  }
}

TEST(FrameRoundtrip, RandomCorruptionFuzzNeverCrashes) {
  Rng rng(2026);
  const Bytes base = EncodeRequest(SampleRequest());
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = base;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = rng.UniformU64(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.UniformU64(255));
    }
    // Must terminate with ok-or-error; the decoded value (if any) need
    // not match, corruption rejection end-to-end is the CRC envelope's
    // job one transport layer below.
    (void)DecodeRequest(View(mutated));
    (void)DecodeReply(View(mutated));
    (void)PeekFrameType(View(mutated));
  }
}

TEST(FrameRoundtrip, BorrowedDecodeMatchesOwningDecode) {
  const RequestFrame frame = SampleTracedRequest();
  const Bytes full = EncodeRequest(frame);
  const Result<RequestFrameView> view = DecodeRequestView(View(full));
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->call, frame.call);
  EXPECT_EQ(view->object, frame.object);
  EXPECT_EQ(view->method, frame.method);
  EXPECT_EQ(Bytes(view->args.begin(), view->args.end()), frame.args);
  EXPECT_EQ(view->deadline, frame.deadline);
  EXPECT_EQ(view->trace.trace_id, frame.trace.trace_id);
  // The whole point: args is a window of `full`, not a copy.
  EXPECT_GE(view->args.data(), full.data());
  EXPECT_LE(view->args.data() + view->args.size(),
            full.data() + full.size());
}

TEST(FrameRoundtrip, BorrowedDecodeRejectsEveryTruncation) {
  // Byte-boundary fuzz of the zero-copy decode path: every strict prefix
  // of an encoded v4 frame must fail cleanly (no crash, no stale view),
  // exactly as the owning decoder does. Run under ASan/UBSan in the
  // sanitizer preset, this is the regression net for the borrowed
  // reader's bounds handling.
  const Bytes full = EncodeRequest(SampleTracedRequest());
  for (std::size_t len = 0; len < full.size(); ++len) {
    const Result<RequestFrameView> decoded =
        DecodeRequestView(BytesView(full.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len << " decoded";
  }
  EXPECT_TRUE(DecodeRequestView(View(full)).ok());
}

TEST(FrameRoundtrip, FullyKnownVersionsRejectTrailingGarbage) {
  // v1/v2/v4/v5 are versions this build completely understands, so bytes
  // after the last known field are corruption, not forward compatibility
  // — only the reserved v3 (and futures) may carry a tail.
  const RequestFrame frame = SampleRequest();
  for (const std::uint32_t version : {1u, 2u, 4u, kRequestWireVersion}) {
    const Bytes tailed = EncodeRequestAs(frame, version, /*extra_fields=*/1);
    EXPECT_FALSE(DecodeRequest(View(tailed)).ok())
        << "v" << version << " frame with a tail decoded";
  }
}

TEST(FrameRoundtrip, RandomFramesRoundTripUnderRandomDeadlines) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    RequestFrame frame;
    frame.call = CallId{rng.UniformU64(~0ULL), rng.UniformU64(1 << 20)};
    frame.object = ObjectId{static_cast<std::uint32_t>(rng.UniformU64(100)),
                            rng.UniformU64(~0ULL)};
    frame.method = static_cast<std::uint32_t>(rng.UniformU64(16));
    frame.args.resize(rng.UniformU64(64));
    for (auto& b : frame.args) {
      b = static_cast<std::uint8_t>(rng.UniformU64(256));
    }
    frame.deadline = rng.UniformU64(Seconds(10));
    frame.trace.trace_id = rng.UniformU64(~0ULL);
    frame.trace.span_id = rng.UniformU64(~0ULL);
    frame.trace.parent_span_id = rng.UniformU64(~0ULL);
    frame.priority = static_cast<Priority>(rng.UniformU64(kPriorityLevels));
    const Result<RequestFrame> decoded =
        DecodeRequest(View(EncodeRequest(frame)));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectV1FieldsMatch(*decoded, frame);
    EXPECT_EQ(decoded->deadline, frame.deadline);
    EXPECT_EQ(decoded->trace.trace_id, frame.trace.trace_id);
    EXPECT_EQ(decoded->trace.span_id, frame.trace.span_id);
    EXPECT_EQ(decoded->trace.parent_span_id, frame.trace.parent_span_id);
    EXPECT_EQ(decoded->priority, frame.priority);
  }
}

TEST(FrameRoundtrip, ReplyFrameRoundTripsWrongShard) {
  // WRONG_SHARD is a routing signal, not a failure detail: the router's
  // refresh-and-retry keys off the exact code surviving the wire.
  ReplyFrame reply;
  reply.call = CallId{0xBEEF, 21};
  reply.code = StatusCode::kWrongShard;
  reply.error_message = "shard 3 not owned here";
  const Result<ReplyFrame> decoded = DecodeReply(View(EncodeReply(reply)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kWrongShard);
  EXPECT_EQ(decoded->error_message, reply.error_message);
}

// --- shard-map payloads: the routing metadata's own wire contract ------

services::shardwire::ShardMap SampleShardMap() {
  return services::MakeInitialShardMap(8, {"app/kv/g0", "app/kv/g1"});
}

TEST(FrameRoundtrip, ShardMapRoundTripsAndValidates) {
  services::shardwire::ShardMap map = SampleShardMap();
  map.version = 7;
  map.owner[3] = 1;
  map.shard_epoch[3] = 4;
  const Result<services::shardwire::ShardMap> decoded =
      serde::DecodeFromBytes<services::shardwire::ShardMap>(
          View(serde::EncodeToBytes(map)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->Valid());
  EXPECT_EQ(decoded->version, 7u);
  EXPECT_EQ(decoded->num_shards, 8u);
  EXPECT_EQ(decoded->groups, map.groups);
  EXPECT_EQ(decoded->owner, map.owner);
  EXPECT_EQ(decoded->shard_epoch, map.shard_epoch);
}

TEST(FrameRoundtrip, TruncatedShardPayloadsNeverDecodeAsValid) {
  // Every strict prefix of each shard wire payload must fail cleanly: a
  // router that adopted a half-decoded map would route every key wrong
  // with full confidence.
  const Bytes map_bytes = serde::EncodeToBytes(SampleShardMap());
  for (std::size_t len = 0; len < map_bytes.size(); ++len) {
    EXPECT_FALSE(serde::DecodeFromBytes<services::shardwire::ShardMap>(
                     BytesView(map_bytes.data(), len))
                     .ok())
        << "map prefix of length " << len << " decoded";
  }

  services::ShardConfig config;
  config.num_shards = 8;
  config.Adopt(2, 3);
  config.Adopt(5, 1);
  config.Freeze(2);
  const Bytes config_bytes = serde::EncodeToBytes(config);
  for (std::size_t len = 0; len < config_bytes.size(); ++len) {
    EXPECT_FALSE(serde::DecodeFromBytes<services::ShardConfig>(
                     BytesView(config_bytes.data(), len))
                     .ok())
        << "config prefix of length " << len << " decoded";
  }
  const Result<services::ShardConfig> whole =
      serde::DecodeFromBytes<services::ShardConfig>(View(config_bytes));
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->Owns(2));
  EXPECT_TRUE(whole->Frozen(2));
  EXPECT_EQ(whole->EpochOf(5), 1u);

  services::shardwire::CommitMoveRequest commit;
  commit.shard = 3;
  commit.to_group = 1;
  commit.expect_version = 7;
  commit.new_shard_epoch = 4;
  const Bytes commit_bytes = serde::EncodeToBytes(commit);
  for (std::size_t len = 0; len < commit_bytes.size(); ++len) {
    EXPECT_FALSE(
        serde::DecodeFromBytes<services::shardwire::CommitMoveRequest>(
            BytesView(commit_bytes.data(), len))
            .ok())
        << "commit prefix of length " << len << " decoded";
  }
}

TEST(FrameRoundtrip, CorruptedShardMapEitherFailsOrStaysStructural) {
  // Bit-flip fuzz over the encoded map: the decoder must terminate with
  // ok-or-error every time, and anything it does accept must be
  // structurally coherent after Valid() — the router's adoption gate.
  Rng rng(4242);
  const Bytes base = serde::EncodeToBytes(SampleShardMap());
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = base;
    const int flips = 1 + static_cast<int>(rng.UniformU64(4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = rng.UniformU64(mutated.size());
      mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.UniformU64(255));
    }
    const Result<services::shardwire::ShardMap> decoded =
        serde::DecodeFromBytes<services::shardwire::ShardMap>(View(mutated));
    if (decoded.ok() && decoded->Valid()) accepted++;
  }
  // Some mutations decode (varint payloads are dense); that is fine —
  // corruption *rejection* is the CRC envelope's job a layer below. The
  // decoder just must never crash, hang, or index out of bounds.
  (void)accepted;
}

}  // namespace
}  // namespace proxy::rpc
