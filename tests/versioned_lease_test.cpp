// Tests for wire-format evolution (serde/versioned.h) and lease
// maintenance (core/lease.h).
#include <gtest/gtest.h>

#include "core/lease.h"
#include "serde/traits.h"
#include "serde/versioned.h"
#include "test_util.h"

namespace proxy {
namespace {

using proxy::testing::TestWorld;

// A message type as seen by two builds of the software.
struct RecordV1 {
  std::string name;
  std::uint32_t count = 0;
};
struct RecordV2 {
  std::string name;
  std::uint32_t count = 0;
  std::string comment;  // added in v2
};

Bytes EncodeV1(const RecordV1& r) {
  serde::Writer w;
  serde::VersionedWriter vw(w, 1);
  serde::Serialize(vw.body(), r.name);
  serde::Serialize(vw.body(), r.count);
  vw.Finish();
  return w.Take();
}

Bytes EncodeV2(const RecordV2& r) {
  serde::Writer w;
  serde::VersionedWriter vw(w, 2);
  serde::Serialize(vw.body(), r.name);
  serde::Serialize(vw.body(), r.count);
  serde::Serialize(vw.body(), r.comment);
  vw.Finish();
  return w.Take();
}

Result<RecordV1> DecodeAsV1(BytesView data) {
  serde::Reader outer(data);
  serde::VersionedReader vr;
  PROXY_RETURN_IF_ERROR(vr.Open(outer));
  RecordV1 r;
  PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), r.name));
  PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), r.count));
  PROXY_RETURN_IF_ERROR(vr.Close());  // skips any v2+ tail
  PROXY_RETURN_IF_ERROR(outer.ExpectEnd());
  return r;
}

Result<RecordV2> DecodeAsV2(BytesView data) {
  serde::Reader outer(data);
  serde::VersionedReader vr;
  PROXY_RETURN_IF_ERROR(vr.Open(outer));
  RecordV2 r;
  PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), r.name));
  PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), r.count));
  if (vr.version() >= 2 && !vr.body().AtEnd()) {
    PROXY_RETURN_IF_ERROR(serde::Deserialize(vr.body(), r.comment));
  }
  PROXY_RETURN_IF_ERROR(vr.Close());
  PROXY_RETURN_IF_ERROR(outer.ExpectEnd());
  return r;
}

TEST(Versioned, SameVersionRoundTrips) {
  const RecordV2 r{"alpha", 7, "note"};
  const auto decoded = DecodeAsV2(View(EncodeV2(r)));
  ASSERT_OK(decoded);
  EXPECT_EQ(decoded->name, "alpha");
  EXPECT_EQ(decoded->count, 7u);
  EXPECT_EQ(decoded->comment, "note");
}

TEST(Versioned, OldReaderSkipsNewFields) {
  // Forward compatibility: a v1 build reads a v2 message.
  const RecordV2 r{"beta", 9, "this field did not exist in v1"};
  const auto decoded = DecodeAsV1(View(EncodeV2(r)));
  ASSERT_OK(decoded);
  EXPECT_EQ(decoded->name, "beta");
  EXPECT_EQ(decoded->count, 9u);
}

TEST(Versioned, NewReaderToleratesOldMessage) {
  // Backward compatibility: a v2 build reads a v1 message.
  const RecordV1 r{"gamma", 3};
  const auto decoded = DecodeAsV2(View(EncodeV1(r)));
  ASSERT_OK(decoded);
  EXPECT_EQ(decoded->name, "gamma");
  EXPECT_EQ(decoded->count, 3u);
  EXPECT_TRUE(decoded->comment.empty());
}

TEST(Versioned, TruncatedEnvelopeRejected) {
  Bytes good = EncodeV2(RecordV2{"x", 1, "y"});
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(DecodeAsV2(BytesView(good.data(), cut)).ok());
  }
}

TEST(Versioned, EnvelopeComposesWithSurroundingFields) {
  serde::Writer w;
  serde::Serialize(w, std::string("prefix"));
  {
    serde::VersionedWriter vw(w, 1);
    serde::Serialize(vw.body(), std::uint32_t{42});
    vw.Finish();
  }
  serde::Serialize(w, std::string("suffix"));
  const Bytes buf = w.Take();

  serde::Reader r(View(buf));
  std::string prefix, suffix;
  ASSERT_TRUE(serde::Deserialize(r, prefix).ok());
  serde::VersionedReader vr;
  ASSERT_TRUE(vr.Open(r).ok());
  std::uint32_t value = 0;
  ASSERT_TRUE(serde::Deserialize(vr.body(), value).ok());
  ASSERT_TRUE(vr.Close().ok());
  ASSERT_TRUE(serde::Deserialize(r, suffix).ok());
  EXPECT_EQ(prefix, "prefix");
  EXPECT_EQ(value, 42u);
  EXPECT_EQ(suffix, "suffix");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

// --- leases ---

TEST(Lease, MaintainerKeepsNameAlive) {
  TestWorld w;
  core::ServiceBinding binding;
  binding.server = w.server_ctx->server_address();
  binding.object = ObjectId{1, 2};
  binding.interface = InterfaceIdOf("lease.Test");

  core::LeaseMaintainer::Params params;
  params.ttl_ns = Milliseconds(100);
  core::LeaseMaintainer lease(*w.server_ctx, "leased/svc", binding, params);

  // Far beyond the TTL, the record is still resolvable.
  w.rt->scheduler().RunFor(Milliseconds(600));
  auto body = [&]() -> sim::Co<void> {
    Result<core::ServiceBinding> resolved =
        co_await w.client_ctx->names().ResolvePath("leased/svc");
    CO_ASSERT_OK(resolved);
    EXPECT_EQ(*resolved, binding);
  };
  w.Run(body);
  EXPECT_GT(lease.renewals(), 3u);
  EXPECT_FALSE(lease.lost());
  lease.Stop();
}

TEST(Lease, RecordExpiresAfterStop) {
  TestWorld w;
  core::ServiceBinding binding;
  binding.server = w.server_ctx->server_address();
  binding.object = ObjectId{3, 4};
  binding.interface = InterfaceIdOf("lease.Test");

  core::LeaseMaintainer::Params params;
  params.ttl_ns = Milliseconds(100);
  auto lease = std::make_unique<core::LeaseMaintainer>(
      *w.server_ctx, "mortal/svc", binding, params);
  w.rt->scheduler().RunFor(Milliseconds(200));
  lease->Stop();
  // One TTL later the record is gone — the "crashed service" story.
  w.rt->scheduler().RunFor(Milliseconds(300));

  auto body = [&]() -> sim::Co<void> {
    Result<core::ServiceBinding> resolved =
        co_await w.client_ctx->names().ResolvePath("mortal/svc");
    EXPECT_EQ(resolved.status().code(), StatusCode::kNotFound);
  };
  w.Run(body);
}

TEST(Lease, LostAfterRepeatedFailures) {
  TestWorld w;
  core::ServiceBinding binding;
  binding.server = w.server_ctx->server_address();
  binding.object = ObjectId{5, 6};
  binding.interface = InterfaceIdOf("lease.Test");

  // Heartbeats from the *client* node, then partition it from the name
  // service: renewals fail and the lease is declared lost.
  core::LeaseMaintainer::Params params;
  params.ttl_ns = Milliseconds(100);
  params.max_consecutive_failures = 2;
  core::LeaseMaintainer lease(*w.client_ctx, "doomed/svc", binding, params);
  w.rt->scheduler().RunFor(Milliseconds(150));
  w.rt->network().SetPartitioned(w.client_node, w.server_node, true);
  w.rt->scheduler().RunFor(Seconds(2));
  EXPECT_TRUE(lease.lost());
}

TEST(Lease, RenewalFailureLosesNameToNextClaimant) {
  // The failover-critical consequence of a lost lease: the *name* itself
  // expires at the server and becomes claimable by a new owner, even
  // after the unlucky original owner is reachable again.
  TestWorld w;
  core::ServiceBinding binding;
  binding.server = w.client_ctx->server_address();
  binding.object = ObjectId{9, 1};
  binding.interface = InterfaceIdOf("lease.Test");

  core::LeaseMaintainer::Params params;
  params.ttl_ns = Milliseconds(100);
  params.max_consecutive_failures = 2;
  core::LeaseMaintainer lease(*w.client_ctx, "takeover/svc", binding, params);
  w.rt->scheduler().RunFor(Milliseconds(150));
  w.rt->network().SetPartitioned(w.client_node, w.server_node, true);
  w.rt->scheduler().RunFor(Seconds(2));
  ASSERT_TRUE(lease.lost());

  // Heal. The maintainer has given up (lost is terminal), so the record
  // stays expired and a rival's first-register-wins claim succeeds.
  w.rt->network().SetPartitioned(w.client_node, w.server_node, false);
  core::ServiceBinding rival;
  rival.server = w.server_ctx->server_address();
  rival.object = ObjectId{9, 2};
  rival.interface = binding.interface;
  auto body = [&]() -> sim::Co<void> {
    Result<core::ServiceBinding> gone =
        co_await w.client_ctx->names().ResolvePath("takeover/svc");
    EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);

    naming::NameRecord record;
    record.kind = naming::RecordKind::kService;
    record.binding = rival;
    Result<rpc::Void> claimed = co_await w.server_ctx->names().Register(
        "takeover/svc", record, /*overwrite=*/false);
    CO_ASSERT_OK(claimed);
    Result<core::ServiceBinding> resolved =
        co_await w.client_ctx->names().ResolvePath("takeover/svc");
    CO_ASSERT_OK(resolved);
    EXPECT_EQ(*resolved, rival);
  };
  w.Run(body);
}

TEST(Lease, ExpirySweepRacesReRegister) {
  // The NameServer sweeps expired records lazily, inside the very
  // Register/Lookup that observes them. A contender's overwrite=false
  // claim must lose while the lease is live and win the moment it lapses
  // — with no window where both owners resolve.
  TestWorld w;
  core::ServiceBinding original;
  original.server = w.server_ctx->server_address();
  original.object = ObjectId{10, 1};
  original.interface = InterfaceIdOf("lease.Test");
  core::ServiceBinding contender = original;
  contender.object = ObjectId{10, 2};

  auto claim = [&]() -> sim::Co<void> {
    naming::NameRecord record;
    record.kind = naming::RecordKind::kService;
    record.binding = original;
    record.lease_ns = Milliseconds(100);
    CO_ASSERT_OK(co_await w.server_ctx->names().Register(
        "contended/svc", record, /*overwrite=*/false));

    // Live lease: the rival bounces off first-register-wins.
    naming::NameRecord rival_record;
    rival_record.kind = naming::RecordKind::kService;
    rival_record.binding = contender;
    Result<rpc::Void> early = co_await w.client_ctx->names().Register(
        "contended/svc", rival_record, /*overwrite=*/false);
    EXPECT_EQ(early.status().code(), StatusCode::kAlreadyExists);
  };
  w.Run(claim);

  // Let the lease lapse with *no* intervening lookup: the expired record
  // is still physically present, so the rival's Register is what sweeps
  // it — the race under test.
  w.rt->scheduler().RunFor(Milliseconds(150));
  auto race = [&]() -> sim::Co<void> {
    naming::NameRecord rival_record;
    rival_record.kind = naming::RecordKind::kService;
    rival_record.binding = contender;
    Result<rpc::Void> late = co_await w.client_ctx->names().Register(
        "contended/svc", rival_record, /*overwrite=*/false);
    CO_ASSERT_OK(late);
    Result<core::ServiceBinding> resolved =
        co_await w.client_ctx->names().ResolvePath("contended/svc");
    CO_ASSERT_OK(resolved);
    EXPECT_EQ(*resolved, contender);
  };
  w.Run(race);
}

TEST(Lease, DestructionStopsHeartbeatCleanly) {
  TestWorld w;
  core::ServiceBinding binding;
  binding.server = w.server_ctx->server_address();
  binding.object = ObjectId{7, 8};
  binding.interface = InterfaceIdOf("lease.Test");
  {
    core::LeaseMaintainer::Params params;
    params.ttl_ns = Milliseconds(100);
    core::LeaseMaintainer lease(*w.server_ctx, "raii/svc", binding, params);
    w.rt->scheduler().RunFor(Milliseconds(150));
  }  // destroyed while the heartbeat coroutine is mid-sleep
  // The loop must wind down without touching freed state.
  w.rt->scheduler().Run();
}

}  // namespace
}  // namespace proxy
