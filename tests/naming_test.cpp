// Tests for the name service: registration, lookup, leases, federation
// across multiple name servers, and the caching name-client proxy.
#include <gtest/gtest.h>

#include "core/runtime.h"
#include "naming/client.h"
#include "naming/server.h"
#include "test_util.h"

namespace proxy::naming {
namespace {

using core::Runtime;
using core::ServiceBinding;

struct NamingFixture : public ::testing::Test {
  NamingFixture() {
    node = rt.AddNode("n0");
    rt.StartNameService(node);
    ctx = &rt.CreateContext(node, "tester");
  }

  ServiceBinding MakeBinding(std::uint32_t port = 7) {
    ServiceBinding b;
    b.server = net::Address{node, PortId(port)};
    b.object = ObjectId{1, port};
    b.interface = InterfaceIdOf("test.Interface");
    b.protocol = 1;
    return b;
  }

  Runtime rt;
  NodeId node;
  core::Context* ctx = nullptr;
};

TEST_F(NamingFixture, RegisterLookupRoundTrip) {
  auto body = [this]() -> sim::Co<void> {
    const ServiceBinding b = MakeBinding();
    Result<rpc::Void> reg = co_await ctx->names().RegisterService("svc", b);
    CO_ASSERT_OK(reg);
    Result<NameRecord> rec = co_await ctx->names().Lookup("svc");
    CO_ASSERT_OK(rec);
    EXPECT_EQ(rec->kind, RecordKind::kService);
    EXPECT_EQ(rec->binding, b);
  };
  rt.Run(body());
}

TEST_F(NamingFixture, LookupUnboundIsNotFound) {
  auto body = [this]() -> sim::Co<void> {
    Result<NameRecord> rec = co_await ctx->names().Lookup("missing");
    EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);
  };
  rt.Run(body());
}

TEST_F(NamingFixture, DuplicateRegistrationRefusedWithoutOverwrite) {
  auto body = [this]() -> sim::Co<void> {
    NameRecord record;
    record.kind = RecordKind::kService;
    record.binding = MakeBinding();
    Result<rpc::Void> first =
        co_await ctx->names().Register("dup", record, /*overwrite=*/false);
    CO_ASSERT_OK(first);
    Result<rpc::Void> second =
        co_await ctx->names().Register("dup", record, /*overwrite=*/false);
    EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
    Result<rpc::Void> forced =
        co_await ctx->names().Register("dup", record, /*overwrite=*/true);
    EXPECT_OK(forced);
  };
  rt.Run(body());
}

TEST_F(NamingFixture, UnregisterRemoves) {
  auto body = [this]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await ctx->names().RegisterService("gone", MakeBinding()));
    CO_ASSERT_OK(co_await ctx->names().Unregister("gone"));
    Result<NameRecord> rec = co_await ctx->names().Lookup("gone");
    EXPECT_EQ(rec.status().code(), StatusCode::kNotFound);
    Result<rpc::Void> again = co_await ctx->names().Unregister("gone");
    EXPECT_EQ(again.status().code(), StatusCode::kNotFound);
  };
  rt.Run(body());
}

TEST_F(NamingFixture, ListByPrefix) {
  auto body = [this]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await ctx->names().RegisterService("app/a", MakeBinding(1)));
    CO_ASSERT_OK(co_await ctx->names().RegisterService("app/b", MakeBinding(2)));
    CO_ASSERT_OK(co_await ctx->names().RegisterService("sys/c", MakeBinding(3)));
    auto listed = co_await ctx->names().List("app/");
    CO_ASSERT_OK(listed);
    EXPECT_EQ(listed->size(), 2u);
    auto all = co_await ctx->names().List("");
    CO_ASSERT_OK(all);
    EXPECT_EQ(all->size(), 3u);
  };
  rt.Run(body());
}

TEST_F(NamingFixture, LeaseExpires) {
  auto body = [this]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await ctx->names().RegisterService(
        "leased", MakeBinding(), /*lease_ns=*/Milliseconds(100)));
    Result<NameRecord> live = co_await ctx->names().Lookup("leased");
    CO_ASSERT_OK(live);
    co_await sim::SleepFor(rt.scheduler(), Milliseconds(150));
    Result<NameRecord> dead = co_await ctx->names().Lookup("leased");
    EXPECT_EQ(dead.status().code(), StatusCode::kNotFound);
  };
  rt.Run(body());
}

TEST_F(NamingFixture, ExpiredEntriesSkippedInList) {
  auto body = [this]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await ctx->names().RegisterService("perm", MakeBinding(1)));
    CO_ASSERT_OK(co_await ctx->names().RegisterService("temp", MakeBinding(2),
                                                    Milliseconds(50)));
    co_await sim::SleepFor(rt.scheduler(), Milliseconds(100));
    auto listed = co_await ctx->names().List("");
    CO_ASSERT_OK(listed);
    EXPECT_EQ(listed->size(), 1u);
    EXPECT_EQ((*listed)[0].first, "perm");
  };
  rt.Run(body());
}

TEST_F(NamingFixture, ResolveFlatSlashedName) {
  auto body = [this]() -> sim::Co<void> {
    const ServiceBinding b = MakeBinding();
    CO_ASSERT_OK(co_await ctx->names().RegisterService("kv/main", b));
    Result<ServiceBinding> resolved =
        co_await ctx->names().ResolvePath("kv/main");
    CO_ASSERT_OK(resolved);
    EXPECT_EQ(*resolved, b);
  };
  rt.Run(body());
}

TEST(NamingFederation, ResolveAcrossDirectoryReferrals) {
  Runtime rt;
  const NodeId n0 = rt.AddNode("root-node");
  const NodeId n1 = rt.AddNode("leaf-node");
  rt.StartNameService(n0);  // root name server

  // Second name server on n1.
  core::Context& leaf_host = rt.CreateContext(n1, "leaf-ns");
  (void)leaf_host;
  // Build it manually: a server on the conventional port of n1.
  // (StartNameService only creates the root; federation peers are wired
  // by the application.)
  auto& net = rt.network();
  static net::NodeStack* leaked_stack = nullptr;  // test-scope lifetime
  leaked_stack = nullptr;
  core::Context& peer_ctx = rt.CreateContext(n1, "peer");
  rpc::RpcServer& peer_server = peer_ctx.server();
  NameServer leaf_ns(peer_server);
  (void)net;

  core::Context& client_ctx = rt.CreateContext(n0, "client");

  // Root: "branch" -> directory referral to the leaf server.
  NameRecord referral;
  referral.kind = RecordKind::kDirectory;
  referral.directory_server = peer_ctx.server_address();
  ASSERT_TRUE(
      rt.name_server()->RegisterDirect("branch", referral).ok());

  // Leaf: "svc" -> a service binding.
  ServiceBinding target;
  target.server = net::Address{n1, PortId(99)};
  target.object = ObjectId{4, 2};
  target.interface = InterfaceIdOf("test.Interface");
  NameRecord leaf_record;
  leaf_record.kind = RecordKind::kService;
  leaf_record.binding = target;
  ASSERT_TRUE(leaf_ns.RegisterDirect("svc", leaf_record).ok());

  auto body = [&]() -> sim::Co<void> {
    Result<ServiceBinding> resolved =
        co_await client_ctx.names().ResolvePath("branch/svc");
    CO_ASSERT_OK(resolved);
    EXPECT_EQ(*resolved, target);

    // Descending into a leaf is an error.
    CO_ASSERT_TRUE(rt.name_server()
                    ->RegisterDirect("leafy", leaf_record).ok());
    Result<ServiceBinding> bad =
        co_await client_ctx.names().ResolvePath("leafy/deeper");
    EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);

    // A path ending at a directory is an error.
    Result<ServiceBinding> dir_end =
        co_await client_ctx.names().ResolvePath("branch");
    EXPECT_EQ(dir_end.status().code(), StatusCode::kFailedPrecondition);
  };
  rt.Run(body());
}

TEST_F(NamingFixture, CachingClientHitsAfterFirstResolve) {
  auto body = [this]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await ctx->names().RegisterService("c/svc", MakeBinding()));
    CachingNameClient& cached = ctx->cached_names();
    CO_ASSERT_OK(co_await cached.ResolvePath("c/svc"));
    EXPECT_EQ(cached.misses(), 1u);
    for (int i = 0; i < 5; ++i) {
      CO_ASSERT_OK(co_await cached.ResolvePath("c/svc"));
    }
    EXPECT_EQ(cached.hits(), 5u);
    EXPECT_EQ(cached.misses(), 1u);
  };
  rt.Run(body());
}

TEST_F(NamingFixture, CachingClientTtlExpiry) {
  auto body = [this]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await ctx->names().RegisterService("t/svc", MakeBinding()));
    CachingNameClient cached(ctx->client(), rt.name_server_address(),
                             /*ttl=*/Milliseconds(10));
    CO_ASSERT_OK(co_await cached.ResolvePath("t/svc"));
    co_await sim::SleepFor(rt.scheduler(), Milliseconds(20));
    CO_ASSERT_OK(co_await cached.ResolvePath("t/svc"));
    EXPECT_EQ(cached.misses(), 2u);  // TTL forced a re-resolve
  };
  rt.Run(body());
}

TEST_F(NamingFixture, CachingClientInvalidateForcesRefetch) {
  auto body = [this]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await ctx->names().RegisterService("i/svc", MakeBinding(1)));
    CachingNameClient& cached = ctx->cached_names();
    CO_ASSERT_OK(co_await cached.ResolvePath("i/svc"));

    // Rebind the name, invalidate, and observe the new target.
    CO_ASSERT_OK(co_await ctx->names().RegisterService("i/svc", MakeBinding(2)));
    cached.Invalidate("i/svc");
    Result<ServiceBinding> fresh = co_await cached.ResolvePath("i/svc");
    CO_ASSERT_OK(fresh);
    EXPECT_EQ(fresh->server.port, PortId(2));
  };
  rt.Run(body());
}

TEST_F(NamingFixture, NegativeResultsAreNotCached) {
  auto body = [this]() -> sim::Co<void> {
    CachingNameClient& cached = ctx->cached_names();
    Result<ServiceBinding> miss = co_await cached.ResolvePath("late/svc");
    EXPECT_FALSE(miss.ok());
    CO_ASSERT_OK(co_await ctx->names().RegisterService("late/svc",
                                                    MakeBinding()));
    Result<ServiceBinding> hit = co_await cached.ResolvePath("late/svc");
    EXPECT_OK(hit);
  };
  rt.Run(body());
}

}  // namespace
}  // namespace proxy::naming
