// Fault-injection suite: the invocation path under loss, partition, and
// recovery. Exercises deadline enforcement (calls complete or fail
// TIMEOUT, never hang), the circuit breaker's full lifecycle, bounded
// retry traffic during an outage, and proxy rebinding through the name
// service after a host failure. Every scenario is deterministic: the
// network and the client's jitter generator are seeded.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/factory.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "net/endpoint.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/stub.h"
#include "serde/traits.h"
#include "services/counter.h"
#include "services/register_all.h"
#include "sim/network.h"
#include "sim/task.h"
#include "test_util.h"

namespace proxy {
namespace {

// The two-node RPC pair and its ping wire structs live in test_util.h
// (shared with the chaos suite).
using proxy::testing::PingRequest;
using proxy::testing::RpcWorld;

TEST(FaultInjection, LossyCallsCompleteOrTimeoutWithinDeadline) {
  const double losses[] = {0.2, 0.35, 0.5};
  for (const double loss : losses) {
    // Breaker disabled: this test isolates the deadline guarantee.
    rpc::RpcClient::BreakerParams no_breaker;
    no_breaker.open_after = 1 << 30;
    RpcWorld w(/*seed=*/1000 + static_cast<std::uint64_t>(loss * 100),
               no_breaker);
    sim::LinkParams lossy;
    lossy.loss = loss;
    w.net.SetLink(w.node_client, w.node_server, lossy);

    rpc::CallOptions options;
    options.retry_interval = Milliseconds(5);
    options.max_retries = 1000;  // deadline is the only terminator
    options.deadline = Milliseconds(200);
    int ok = 0;
    for (std::uint32_t i = 0; i < 30; ++i) {
      const SimTime start = w.sched.now();
      const rpc::RpcResult r = w.CallSync(i, options);
      const SimDuration elapsed = w.sched.now() - start;
      // The deadline bounds every outcome; nothing hangs past it.
      ASSERT_LE(elapsed, options.deadline) << "loss=" << loss << " call " << i;
      ASSERT_TRUE(r.ok() || r.status.code() == StatusCode::kTimeout)
          << "loss=" << loss << ": " << r.status.ToString();
      if (r.ok()) ++ok;
    }
    // Retransmission makes most calls land even at 50% loss.
    EXPECT_GE(ok, 20) << "loss=" << loss;
    if (loss >= 0.3) {
      EXPECT_GT(w.client->stats().retransmissions, 0u);
    }
  }
}

TEST(FaultInjection, BreakerLifecycleOpenProbeGrowReclose) {
  rpc::RpcClient::BreakerParams tuning;
  tuning.open_after = 3;
  tuning.cooldown = Milliseconds(50);
  tuning.cooldown_growth = 2.0;
  tuning.max_cooldown = Milliseconds(400);
  RpcWorld w(/*seed=*/7, tuning);

  rpc::CallOptions options;
  options.retry_interval = Milliseconds(10);
  options.max_retries = 100;
  options.deadline = Milliseconds(30);

  w.Partition(true);
  // Three consecutive timeouts open the breaker; each costs its full
  // deadline.
  for (std::uint32_t i = 0; i < 3; ++i) {
    const SimTime start = w.sched.now();
    EXPECT_EQ(w.CallSync(i, options).status.code(), StatusCode::kTimeout);
    EXPECT_EQ(w.sched.now() - start, options.deadline);
  }
  EXPECT_TRUE(w.client->CircuitOpen(w.server_ep->address()));
  EXPECT_EQ(w.client->stats().breaker_opens, 1u);

  // While open, calls fail immediately — no deadline is burned.
  {
    const SimTime start = w.sched.now();
    EXPECT_EQ(w.CallSync(10, options).status.code(),
              StatusCode::kUnavailable);
    EXPECT_EQ(w.sched.now(), start);
  }
  EXPECT_EQ(w.client->stats().breaker_fast_fails, 1u);

  // After the cooldown one probe is admitted; the partition still holds,
  // so it times out and the breaker re-opens with a grown cooldown.
  w.sched.RunFor(tuning.cooldown);
  EXPECT_FALSE(w.client->CircuitOpen(w.server_ep->address()));
  EXPECT_EQ(w.CallSync(11, options).status.code(), StatusCode::kTimeout);
  EXPECT_EQ(w.client->stats().breaker_opens, 2u);
  EXPECT_EQ(w.CallSync(12, options).status.code(), StatusCode::kUnavailable);

  // Cooldown grew to 100ms: after the *old* cooldown it is still open.
  w.sched.RunFor(tuning.cooldown);
  EXPECT_TRUE(w.client->CircuitOpen(w.server_ep->address()));
  EXPECT_EQ(w.CallSync(13, options).status.code(), StatusCode::kUnavailable);

  // Heal; once the grown cooldown elapses the probe goes through, closes
  // the breaker, and normal traffic resumes.
  w.Partition(false);
  w.sched.RunFor(tuning.cooldown);
  EXPECT_TRUE(w.CallSync(14, options).ok());
  EXPECT_FALSE(w.client->CircuitOpen(w.server_ep->address()));
  EXPECT_TRUE(w.CallSync(15, options).ok());
  EXPECT_EQ(w.client->stats().breaker_opens, 2u);
}

TEST(FaultInjection, HalfOpenAdmitsExactlyOneConcurrentProbe) {
  rpc::RpcClient::BreakerParams tuning;
  tuning.open_after = 3;
  tuning.cooldown = Milliseconds(50);
  tuning.cooldown_growth = 2.0;
  tuning.max_cooldown = Milliseconds(400);
  RpcWorld w(/*seed=*/91, tuning);

  rpc::CallOptions options;
  options.retry_interval = Milliseconds(10);
  options.max_retries = 100;
  options.deadline = Milliseconds(30);

  w.Partition(true);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.CallSync(i, options).status.code(), StatusCode::kTimeout);
  }
  EXPECT_TRUE(w.client->CircuitOpen(w.server_ep->address()));
  w.sched.RunFor(tuning.cooldown);
  EXPECT_FALSE(w.client->CircuitOpen(w.server_ep->address()));

  // Five callers arrive at the same half-open instant. Exactly one is
  // admitted as the probe; the rest are fast-failed without waiting.
  std::vector<sim::Future<rpc::RpcResult>> burst;
  for (std::uint32_t i = 0; i < 5; ++i) {
    burst.push_back(w.client->Call(w.server_ep->address(), w.object, 1,
                                   serde::EncodeToBytes(PingRequest{100 + i}),
                                   options));
    // While the probe is in flight the breaker reads as open again.
    EXPECT_TRUE(w.client->CircuitOpen(w.server_ep->address()));
  }
  EXPECT_FALSE(burst[0].ready());  // the probe is on the wire
  for (std::size_t i = 1; i < burst.size(); ++i) {
    ASSERT_TRUE(burst[i].ready()) << "concurrent call " << i << " waited";
  }
  EXPECT_EQ(w.client->stats().breaker_fast_fails, 4u);

  // The partition still holds: the probe times out and the breaker
  // re-opens ONCE — the rejected concurrent callers contribute no extra
  // opens — with the cooldown grown to 100ms.
  w.sched.Run();
  EXPECT_EQ(burst[0].take().status.code(), StatusCode::kTimeout);
  for (std::size_t i = 1; i < burst.size(); ++i) {
    EXPECT_EQ(burst[i].take().status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(w.client->stats().breaker_opens, 2u);
  EXPECT_TRUE(w.client->CircuitOpen(w.server_ep->address()));
  w.sched.RunFor(tuning.cooldown);
  EXPECT_TRUE(w.client->CircuitOpen(w.server_ep->address()));
  w.sched.RunFor(tuning.cooldown);
  EXPECT_FALSE(w.client->CircuitOpen(w.server_ep->address()));
}

TEST(FaultInjection, HalfOpenProbeSuccessClosesDespiteConcurrentRejections) {
  rpc::RpcClient::BreakerParams tuning;
  tuning.open_after = 3;
  tuning.cooldown = Milliseconds(50);
  RpcWorld w(/*seed=*/92, tuning);

  rpc::CallOptions options;
  options.retry_interval = Milliseconds(10);
  options.max_retries = 100;
  options.deadline = Milliseconds(30);

  w.Partition(true);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(w.CallSync(i, options).status.code(), StatusCode::kTimeout);
  }
  ASSERT_TRUE(w.client->CircuitOpen(w.server_ep->address()));

  // Heal before the cooldown elapses; the breaker cannot know yet.
  w.Partition(false);
  w.sched.RunFor(tuning.cooldown);

  // A burst at the half-open instant: the probe goes through and
  // succeeds, so one request's worth of load — not the whole burst —
  // hits the recovering server.
  std::vector<sim::Future<rpc::RpcResult>> burst;
  for (std::uint32_t i = 0; i < 4; ++i) {
    burst.push_back(w.client->Call(w.server_ep->address(), w.object, 1,
                                   serde::EncodeToBytes(PingRequest{200 + i}),
                                   options));
  }
  w.sched.Run();
  ASSERT_TRUE(burst[0].ready());
  EXPECT_TRUE(burst[0].take().ok());
  for (std::size_t i = 1; i < burst.size(); ++i) {
    EXPECT_EQ(burst[i].take().status.code(), StatusCode::kUnavailable);
  }
  // One reply closed the breaker for everyone; traffic resumes at once.
  EXPECT_FALSE(w.client->CircuitOpen(w.server_ep->address()));
  EXPECT_TRUE(w.CallSync(300, options).ok());
  EXPECT_EQ(w.client->stats().breaker_opens, 1u);
  EXPECT_EQ(w.client->stats().breaker_fast_fails, 3u);
}

TEST(FaultInjection, BreakerBoundsRetryTrafficDuringOutage) {
  rpc::RpcClient::BreakerParams tuning;  // defaults: open after 5, 100ms
  RpcWorld w(/*seed=*/21, tuning);
  w.Partition(true);

  rpc::CallOptions options;
  options.retry_interval = Milliseconds(10);
  options.max_retries = 100;
  options.deadline = Milliseconds(40);

  // A client that keeps calling through a 2-second outage: one call every
  // 20ms. Without the breaker each would burn its full retry schedule.
  std::vector<sim::Future<rpc::RpcResult>> futures;
  futures.reserve(100);
  for (std::uint32_t i = 0; i < 100; ++i) {
    futures.push_back(w.client->Call(w.server_ep->address(), w.object, 1,
                                     serde::EncodeToBytes(PingRequest{i}),
                                     options));
    w.sched.RunFor(Milliseconds(20));
  }
  w.sched.Run();
  for (auto& f : futures) {
    ASSERT_TRUE(f.ready());
    const StatusCode code = f.take().status.code();
    EXPECT_TRUE(code == StatusCode::kTimeout ||
                code == StatusCode::kUnavailable);
  }
  const rpc::ClientStats& stats = w.client->stats();
  EXPECT_EQ(stats.calls_started, 100u);
  // Most calls were shed instantly; only the pre-open window and the
  // occasional half-open probe actually hit the wire.
  EXPECT_GE(stats.breaker_fast_fails, 70u);
  EXPECT_LE(stats.timeouts, 25u);
  EXPECT_LE(stats.retransmissions, 60u);  // vs ~300 with per-call retries

  // The outage heals. Calls keep coming; once the breaker's cooldown
  // expires, its probe succeeds and goodput returns — bounded by the
  // breaker's max cooldown, not by the length of the outage.
  w.Partition(false);
  const SimTime healed = w.sched.now();
  SimTime first_success = 0;
  for (std::uint32_t i = 0; i < 200 && first_success == 0; ++i) {
    if (w.CallSync(1000 + i, options).ok()) {
      first_success = w.sched.now();
      break;
    }
    w.sched.RunFor(Milliseconds(20));
  }
  ASSERT_NE(first_success, SimTime{0}) << "service never recovered";
  EXPECT_LE(first_success - healed, tuning.max_cooldown + options.deadline);
  EXPECT_FALSE(w.client->CircuitOpen(w.server_ep->address()));
}

TEST(FaultInjection, ProxyRebindsThroughNameServiceAfterHostFailure) {
  services::RegisterAllServices();
  core::Runtime::Params params;
  params.seed = 33;
  core::Runtime rt(params);
  const NodeId ns_node = rt.AddNode("ns");
  const NodeId host1 = rt.AddNode("host1");
  const NodeId host2 = rt.AddNode("host2");
  const NodeId client_node = rt.AddNode("client");
  rt.StartNameService(ns_node);
  core::Context& s1 = rt.CreateContext(host1, "s1");
  core::Context& s2 = rt.CreateContext(host2, "s2");
  core::Context& c = rt.CreateContext(client_node, "client");

  auto exported1 = services::ExportCounterService(s1, /*protocol=*/1,
                                                  /*initial=*/1);
  ASSERT_OK(exported1);
  auto publish1 = [&]() -> sim::Co<void> {
    auto ok = co_await s1.names().RegisterService("ctr", exported1->binding);
    CO_ASSERT_OK(ok);
  };
  rt.Run(publish1());

  std::shared_ptr<services::ICounter> counter;
  auto bind = [&]() -> sim::Co<void> {
    auto bound = co_await core::Acquire<services::ICounter>(c, "ctr");
    CO_ASSERT_OK(bound);
    counter = *bound;
    auto v = co_await counter->Read();
    CO_ASSERT_OK(v);
    EXPECT_EQ(*v, 1);
  };
  rt.Run(bind());
  ASSERT_NE(counter, nullptr);
  auto* proxy = dynamic_cast<core::ProxyBase*>(counter.get());
  ASSERT_NE(proxy, nullptr);
  EXPECT_EQ(proxy->name_path(), "ctr");
  rpc::CallOptions impatient;
  impatient.retry_interval = Milliseconds(10);
  impatient.max_retries = 100;
  impatient.deadline = Milliseconds(60);
  proxy->set_call_options(impatient);

  // The service is re-homed on host2 and the authoritative name updated
  // (a failover manager would do this; here the test plays that role).
  auto exported2 = services::ExportCounterService(s2, /*protocol=*/1,
                                                  /*initial=*/2);
  ASSERT_OK(exported2);
  auto republish = [&]() -> sim::Co<void> {
    auto gone = co_await s2.names().Unregister("ctr");
    CO_ASSERT_OK(gone);
    auto ok = co_await s2.names().RegisterService("ctr", exported2->binding);
    CO_ASSERT_OK(ok);
  };
  rt.Run(republish());

  // host1 drops off the network. The proxy's next call times out against
  // the stale binding, re-resolves "ctr" through the (reachable) name
  // service, rebinds to host2, and completes — the client code never sees
  // the failure.
  rt.network().SetPartitioned(client_node, host1, true);
  auto call_through_failure = [&]() -> sim::Co<void> {
    auto v = co_await counter->Increment(10);
    CO_ASSERT_OK(v);
    EXPECT_EQ(*v, 12);  // served by the host2 replica
  };
  rt.Run(call_through_failure());
  EXPECT_EQ(proxy->proxy_stats().recoveries, 1u);
  EXPECT_EQ(proxy->binding().server, exported2->binding.server);

  // Subsequent calls go straight to the new home — no re-resolution.
  auto steady = [&]() -> sim::Co<void> {
    auto v = co_await counter->Read();
    CO_ASSERT_OK(v);
    EXPECT_EQ(*v, 12);
  };
  rt.Run(steady());
  EXPECT_EQ(proxy->proxy_stats().recoveries, 1u);
}

}  // namespace
}  // namespace proxy
