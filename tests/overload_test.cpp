// Overload battery: admission control at the server, pushback and the
// retry governors at the client, and the graceful-degradation hooks in
// the proxies above them.
//
// Server side: the bounded admission queue enforces its concurrency
// ceiling and depth bound, serves the queue strictly by priority (and
// evicts lowest-priority first when it overflows), fast-rejects with
// RESOURCE_EXHAUSTED + retry-after when there is nothing better to do,
// caches those rejections so a retransmission of a shed call can never
// execute, and sheds queued work whose deadline already expired.
//
// Client side: ProxyBase honors the retry-after hint (bounded pushback
// backoff), the per-destination token bucket and the shared per-operation
// attempt budget stop retry storms, and the degradation hooks take over
// when exhaustion finally surfaces — the caching proxy serves its stale
// pool, the shard router stops offering work to a shedding group.
//
// Labelled `overload` (ctest -L overload) so check.sh can run the
// battery on its own under every preset.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/export.h"
#include "core/factory.h"
#include "core/proxy.h"
#include "core/runtime.h"
#include "net/endpoint.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/stub.h"
#include "serde/traits.h"
#include "services/kv.h"
#include "services/register_all.h"
#include "services/replicated_kv.h"
#include "services/shard_router.h"
#include "sim/network.h"
#include "sim/task.h"
#include "test_util.h"

namespace proxy {
namespace {

using proxy::testing::PingRequest;
using proxy::testing::PingResponse;
using proxy::testing::TestWorld;

// --- fixture: a two-node pair whose handler burns virtual service time,
// so a bounded-concurrency server can actually be saturated -------------

struct SlowWorld {
  SlowWorld(std::uint64_t seed, SimDuration service_time)
      : service(service_time), net(sched, seed) {
    node_client = net.AddNode("client");
    node_server = net.AddNode("server");
    stack_client = std::make_unique<net::NodeStack>(net, node_client);
    stack_server = std::make_unique<net::NodeStack>(net, node_server);
    client = std::make_unique<rpc::RpcClient>(*stack_client->OpenEphemeral(),
                                              seed ^ 0xFA17u);
    server_ep = stack_server->OpenEndpoint(PortId(40));
    server = std::make_unique<rpc::RpcServer>(*server_ep);
    object = ObjectId{1, 1};
    auto dispatch = std::make_shared<rpc::Dispatch>();
    rpc::RegisterTyped<PingRequest, PingResponse>(
        *dispatch, 1,
        [this](PingRequest req,
               const rpc::CallContext&) -> sim::Co<Result<PingResponse>> {
          co_await sim::SleepFor(sched, service);
          co_return PingResponse{req.id};
        });
    EXPECT_TRUE(server->ExportObject(object, dispatch).ok());
  }

  sim::Future<rpc::RpcResult> Call(std::uint32_t id,
                                   const rpc::CallOptions& options) {
    return client->Call(server_ep->address(), object, 1,
                        serde::EncodeToBytes(PingRequest{id}), options);
  }

  SimDuration service;
  sim::Scheduler sched;
  sim::Network net;
  NodeId node_client, node_server;
  std::unique_ptr<net::NodeStack> stack_client, stack_server;
  std::unique_ptr<rpc::RpcClient> client;
  net::Endpoint* server_ep = nullptr;
  std::unique_ptr<rpc::RpcServer> server;
  ObjectId object;
};

rpc::CallOptions NoRetryOptions(SimDuration deadline) {
  rpc::CallOptions o;
  o.deadline = deadline;
  o.max_retries = 0;
  o.retry_interval = Milliseconds(1000);  // never fires within `deadline`
  return o;
}

// --- the admission queue itself ----------------------------------------

TEST(Overload, ConcurrencyCeilingAndQueueBoundHold) {
  SlowWorld w(/*seed=*/11, Milliseconds(10));
  w.server->set_admission(/*max_concurrency=*/2, /*queue_capacity=*/3,
                          Milliseconds(1));

  const rpc::CallOptions options = NoRetryOptions(Milliseconds(200));
  std::vector<sim::Future<rpc::RpcResult>> calls;
  for (std::uint32_t i = 0; i < 10; ++i) calls.push_back(w.Call(i, options));

  // Sample the server while the burst drains: the ceiling and the depth
  // bound must hold at every instant, not just at the end.
  auto all_ready = [&calls] {
    for (const auto& f : calls)
      if (!f.ready()) return false;
    return true;
  };
  while (!all_ready()) {
    EXPECT_LE(w.server->admission_running(), 2u);
    EXPECT_LE(w.server->admission_queue_depth(), 3u);
    w.sched.RunFor(Microseconds(500));
  }

  // 2 ran at once, 3 waited, 5 were pushed back with a usable hint.
  int ok = 0;
  int rejected = 0;
  for (auto& f : calls) {
    rpc::RpcResult r = f.take();
    if (r.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status.code(), StatusCode::kResourceExhausted)
          << r.status.ToString();
      EXPECT_GT(r.retry_after, 0u);
      ++rejected;
    }
  }
  EXPECT_EQ(ok, 5);
  EXPECT_EQ(rejected, 5);
  EXPECT_EQ(w.server->stats().executions.value(), 5u);
  EXPECT_EQ(w.server->stats().admission_queued.value(), 3u);
  EXPECT_EQ(w.server->stats().admission_rejected.value(), 5u);
  EXPECT_EQ(w.server->admission_queue_peak(), 3u);
  EXPECT_EQ(w.server->admission_running(), 0u);
  EXPECT_EQ(w.server->admission_queue_depth(), 0u);
}

TEST(Overload, QueueServesByPriorityAndEvictsLowestFirst) {
  SlowWorld w(/*seed=*/12, Milliseconds(10));
  w.server->set_admission(/*max_concurrency=*/1, /*queue_capacity=*/2,
                          Milliseconds(1));
  const rpc::CallOptions base = NoRetryOptions(Milliseconds(300));

  // Occupy the single slot.
  auto running = w.Call(0, base);
  w.sched.RunFor(Milliseconds(2));

  // Two background (kLow) calls fill the queue.
  rpc::CallOptions low = base;
  low.priority = rpc::Priority::kLow;
  auto low1 = w.Call(1, low);
  auto low2 = w.Call(2, low);
  w.sched.RunFor(Milliseconds(1));
  EXPECT_EQ(w.server->admission_queue_depth(), 2u);

  // A normal and then a high arrival displace them one by one: the queue
  // is full, but each newcomer outranks a waiting kLow.
  auto normal = w.Call(3, base);
  w.sched.RunFor(Milliseconds(1));
  rpc::CallOptions high = base;
  high.priority = rpc::Priority::kHigh;
  auto high1 = w.Call(4, high);
  w.sched.RunFor(Milliseconds(1));

  ASSERT_TRUE(low1.ready());
  ASSERT_TRUE(low2.ready());
  EXPECT_EQ(low1.take().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(low2.take().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(w.server->stats().admission_evicted.value(), 2u);
  EXPECT_EQ(w.server->admission_queue_depth(), 2u);

  // The slot frees: the queue drains strictly best-first — kHigh runs to
  // completion before kNormal, though kNormal arrived first.
  w.sched.RunUntil([&high1] { return high1.ready(); });
  EXPECT_TRUE(high1.take().ok());
  EXPECT_FALSE(normal.ready());
  w.sched.RunUntil([&normal] { return normal.ready(); });
  EXPECT_TRUE(normal.take().ok());
  EXPECT_TRUE(running.take().ok());
}

TEST(Overload, RejectionsAreReplyCachedSoShedMeansNeverExecuted) {
  SlowWorld w(/*seed=*/13, Milliseconds(20));
  w.server->set_admission(/*max_concurrency=*/1, /*queue_capacity=*/0,
                          Milliseconds(2));

  // Occupy the slot; every other arrival must be fast-rejected.
  auto running = w.Call(0, NoRetryOptions(Milliseconds(100)));
  w.sched.RunFor(Milliseconds(2));

  // A hand-rolled caller, so the *same* CallId can be retransmitted
  // verbatim — the RpcClient would mint a fresh seq per Call().
  net::Endpoint* raw = w.stack_client->OpenEphemeral();
  std::vector<rpc::ReplyFrame> replies;
  raw->SetHandler([&replies](const net::Address&, OwnedBytes payload) {
    Result<rpc::ReplyFrame> reply = rpc::DecodeReply(payload.view());
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    replies.push_back(std::move(*reply));
  });
  rpc::RequestFrame frame;
  frame.call = rpc::CallId{/*client_nonce=*/999, /*seq=*/1};
  frame.object = w.object;
  frame.method = 1;
  frame.args = serde::EncodeToBytes(PingRequest{7});
  frame.deadline = w.sched.now() + Milliseconds(100);
  const Bytes wire = rpc::EncodeRequest(frame);

  EXPECT_TRUE(raw->Send(w.server_ep->address(), wire).ok());
  w.sched.RunFor(Milliseconds(2));
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].code, StatusCode::kResourceExhausted);
  EXPECT_GT(replies[0].retry_after, 0u);
  EXPECT_EQ(w.server->stats().admission_rejected.value(), 1u);

  // The retransmission is answered from the reply cache: the identical
  // rejection (hint included), no second admission decision, and — the
  // invariant the cache exists for — no execution, ever.
  EXPECT_TRUE(raw->Send(w.server_ep->address(), wire).ok());
  w.sched.RunFor(Milliseconds(2));
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1].code, StatusCode::kResourceExhausted);
  EXPECT_EQ(replies[1].retry_after, replies[0].retry_after);
  EXPECT_EQ(w.server->stats().admission_rejected.value(), 1u);
  EXPECT_EQ(w.server->stats().duplicate_suppressed.value(), 1u);
  EXPECT_EQ(w.server->stats().executions.value(), 1u);  // the occupant

  w.sched.RunUntil([&running] { return running.ready(); });
  EXPECT_TRUE(running.take().ok());
  EXPECT_EQ(w.server->stats().executions.value(), 1u);
}

TEST(Overload, QueuedWorkPastItsDeadlineIsShedNotExecuted) {
  SlowWorld w(/*seed=*/14, Milliseconds(20));
  w.server->set_admission(/*max_concurrency=*/1, /*queue_capacity=*/4,
                          Milliseconds(1));

  auto running = w.Call(0, NoRetryOptions(Milliseconds(100)));
  w.sched.RunFor(Milliseconds(2));

  // Queued behind 20ms of work with a 10ms deadline: by the time the
  // slot frees, nobody wants the answer — the server must not burn a
  // handler slot computing it.
  auto doomed = w.Call(1, NoRetryOptions(Milliseconds(10)));
  w.sched.RunFor(Milliseconds(1));
  EXPECT_EQ(w.server->admission_queue_depth(), 1u);

  w.sched.RunUntil([&running] { return running.ready(); });
  EXPECT_TRUE(running.take().ok());
  w.sched.RunFor(Milliseconds(5));
  ASSERT_TRUE(doomed.ready());
  EXPECT_EQ(doomed.take().status.code(), StatusCode::kTimeout);
  EXPECT_EQ(w.server->stats().shed_expired_queued.value(), 1u);
  EXPECT_EQ(w.server->stats().executions.value(), 1u);
  EXPECT_EQ(w.server->admission_queue_depth(), 0u);
}

// --- client-side retry governors ---------------------------------------

TEST(Overload, RetryBudgetBoundsRetransmissionsWhenNothingSucceeds) {
  // A partition with a generous per-call retry schedule: without the
  // per-destination token bucket the client would retransmit ~19 times
  // within the deadline.
  proxy::testing::RpcWorld w(/*seed=*/15);
  rpc::RpcClient::RetryBudgetParams tight;
  tight.initial_tokens = 4.0;
  tight.max_tokens = 4.0;
  tight.refill_per_success = 0.5;
  w.client->set_retry_budget_params(tight);
  w.Partition(true);

  rpc::CallOptions options;
  options.retry_interval = Milliseconds(5);
  options.max_backoff = Milliseconds(5);  // flat schedule: ~40 slots
  options.max_retries = 100;
  options.deadline = Milliseconds(200);
  EXPECT_EQ(w.CallSync(1, options).status.code(), StatusCode::kTimeout);

  const rpc::ClientStats& stats = w.client->stats();
  EXPECT_LE(stats.retransmissions.value(), 4u);
  EXPECT_GE(stats.retry_budget_stops.value(), 1u);

  // Ablation: the chaos fault hook that disables the governors restores
  // the retry storm the budget exists to prevent.
  proxy::testing::RpcWorld storm(/*seed=*/15);
  storm.client->set_retry_budget_params(tight);
  storm.client->set_testing_retry_governors(false);
  storm.Partition(true);
  EXPECT_EQ(storm.CallSync(1, options).status.code(), StatusCode::kTimeout);
  EXPECT_GE(storm.client->stats().retransmissions.value(), 10u);
  EXPECT_EQ(storm.client->stats().retry_budget_stops.value(), 0u);
}

TEST(Overload, SharedAttemptBudgetCapsRetransmissionsAcrossCalls) {
  rpc::RpcClient::BreakerParams no_breaker;
  no_breaker.open_after = 1 << 30;
  proxy::testing::RpcWorld w(/*seed=*/16, no_breaker);
  w.Partition(true);

  // One logical operation spanning two RPC hops (the failover-proxy
  // shape): both share one attempt budget, so the pair cannot spend more
  // retransmissions than the operation was granted.
  auto budget = std::make_shared<rpc::AttemptBudget>(3);
  rpc::CallOptions options;
  options.retry_interval = Milliseconds(5);
  options.max_retries = 100;
  options.deadline = Milliseconds(100);
  options.attempt_budget = budget;
  EXPECT_EQ(w.CallSync(1, options).status.code(), StatusCode::kTimeout);
  EXPECT_EQ(w.CallSync(2, options).status.code(), StatusCode::kTimeout);

  EXPECT_LE(w.client->stats().retransmissions.value(), 3u);
  EXPECT_GE(w.client->stats().attempt_budget_stops.value(), 1u);
  EXPECT_FALSE(budget->TryConsume());
}

// --- pushback and the degradation hooks --------------------------------

/// Exports a KV service whose kPut burns `put_service` of virtual time
/// (the other methods stay instant), so one write can pin a
/// bounded-concurrency server.
struct SlowPutKv {
  SlowPutKv(core::Context& ctx, SimDuration put_service) {
    impl = std::make_shared<services::KvService>(ctx);
    auto dispatch = services::MakeKvDispatch(impl);
    sim::Scheduler& sched = ctx.scheduler();
    dispatch->Register(
        services::kvwire::kPut,
        [this, &sched, put_service](
            BytesView args,
            const rpc::CallContext&) -> sim::Co<Result<Bytes>> {
          Result<services::kvwire::PutRequest> req =
              serde::DecodeFromBytes<services::kvwire::PutRequest>(args);
          if (!req.ok()) co_return req.status();
          co_await sim::SleepFor(sched, put_service);
          Result<rpc::Void> done = co_await impl->PutExcluding(
              req->key, req->value, req->exclude_sink);
          if (!done.ok()) co_return done.status();
          co_return serde::EncodeToBytes(rpc::Void{});
        });
    binding.object = ctx.MintObjectId();
    binding.server = ctx.server_address();
    binding.interface = InterfaceIdOf(services::IKeyValue::kInterfaceName);
    binding.protocol = 1;
    EXPECT_TRUE(ctx.server().ExportObject(binding.object, dispatch).ok());
  }

  std::shared_ptr<services::KvService> impl;
  core::ServiceBinding binding;
};

TEST(Overload, ProxyHonorsRetryAfterAndGetsThroughAfterBackoff) {
  TestWorld w(/*seed=*/51);
  // 3ms of write service; one slot, no queue, 2ms base hint. Two bounded
  // pushback waits (each >= the hint) always outlast the occupant.
  SlowPutKv kv(*w.server_ctx, Milliseconds(3));
  w.server_ctx->server().set_admission(1, 0, Milliseconds(2));

  core::Context& victim_ctx =
      w.rt->CreateContext(w.client_node, "client-victim");
  services::KvStub occupant(*w.client_ctx, kv.binding);
  services::KvStub victim(victim_ctx, kv.binding);
  occupant.set_call_options(NoRetryOptions(Milliseconds(50)));
  victim.set_call_options(NoRetryOptions(Milliseconds(50)));

  auto occupy = [&]() -> sim::Co<void> {
    Result<rpc::Void> r = co_await occupant.Put("k", "v");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  };
  sim::Future<bool> held = sim::Spawn(w.rt->scheduler(), occupy());
  w.rt->scheduler().RunFor(Microseconds(500));

  // The victim's first offer is rejected with a retry-after hint; the
  // proxy waits it out (plus jitter) instead of hammering, and the
  // retried call lands once the slot frees — the caller never sees the
  // rejection.
  auto read = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> r = co_await victim.Get("k");
    CO_ASSERT_OK(r);
    CO_ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, "v");  // the occupant's write finished first
  };
  w.Run(read);
  EXPECT_GE(victim.proxy_stats().pushback_backoffs.value(), 1u);
  EXPECT_LE(victim.proxy_stats().pushback_backoffs.value(),
            static_cast<std::uint64_t>(core::ProxyBase::kMaxPushbackRetries));
  EXPECT_GE(victim_ctx.client().stats().rejected_pushback.value(), 1u);
  w.rt->scheduler().RunUntil([&held] { return held.ready(); });
}

TEST(Overload, CachingProxyServesStaleOnShedInsteadOfFailing) {
  TestWorld w(/*seed=*/61);
  // 30ms of write service: far longer than the proxy's bounded pushback
  // schedule, so a Get offered while a write holds the slot is shed for
  // good and the stale fallback must answer.
  SlowPutKv kv(*w.server_ctx, Milliseconds(30));

  services::KvCachingProxy proxy(*w.client_ctx, kv.binding);
  core::Context& other_ctx = w.rt->CreateContext(w.client_node, "client-2");
  services::KvStub other(other_ctx, kv.binding);
  other.set_call_options(NoRetryOptions(Milliseconds(100)));

  // Admission stays off while the caches warm: the proxy writes v1
  // (write-through populates both the coherent cache and the stale
  // pool), then an uncached writer replaces it with v2, whose
  // invalidation evicts the coherent entry but — by design — not the
  // stale one.
  auto warm = [&]() -> sim::Co<void> {
    Result<rpc::Void> r = co_await proxy.Put("k", "v1");
    CO_ASSERT_OK(r);
  };
  w.Run(warm);
  auto clobber = [&]() -> sim::Co<void> {
    Result<rpc::Void> r = co_await other.Put("k", "v2");
    CO_ASSERT_OK(r);
  };
  w.Run(clobber);
  w.rt->scheduler().RunFor(Milliseconds(5));  // invalidation delivery

  // Overload: one slot, no queue, and a 30ms write pinning it.
  w.server_ctx->server().set_admission(1, 0, Milliseconds(1));
  auto occupy = [&]() -> sim::Co<void> {
    Result<rpc::Void> r = co_await other.Put("pin", "x");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  };
  sim::Future<bool> held = sim::Spawn(w.rt->scheduler(), occupy());
  w.rt->scheduler().RunFor(Microseconds(500));

  // The coherent entry is gone, the remote read is shed — and the proxy
  // degrades to the last value it ever observed rather than failing.
  // Stale by construction: the true value is v2.
  auto read = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> r = co_await proxy.Get("k");
    CO_ASSERT_OK(r);
    CO_ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, "v1");
  };
  w.Run(read);
  EXPECT_EQ(proxy.stale_served(), 1u);
  w.rt->scheduler().RunUntil([&held] { return held.ready(); });

  // Once the overload clears, reads are coherent again (v2), and the
  // stale pool silently re-learns the fresh value.
  auto read_fresh = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> r = co_await proxy.Get("k");
    CO_ASSERT_OK(r);
    CO_ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, "v2");
  };
  w.Run(read_fresh);
  EXPECT_EQ(proxy.stale_served(), 1u);
}

TEST(Overload, ShardRouterStopsOfferingWorkToASheddingGroup) {
  services::RegisterAllServices();
  core::Runtime::Params params;
  params.seed = 71;
  core::Runtime rt(params);
  rt.StartNameService(rt.AddNode("ns"));
  core::Context& map_ctx = rt.CreateContext(rt.AddNode("map"), "map");
  core::Context& client_ctx = rt.CreateContext(rt.AddNode("client"), "client");
  core::Context& replica_ctx = rt.CreateContext(rt.AddNode("g0-r0"), "g0-r0");

  services::ShardedKvParams sparams;
  sparams.name = "app/kv";
  sparams.num_shards = 4;
  sparams.group.lease.ttl_ns = Milliseconds(150);
  sparams.group.lease.renew_fraction = 0.4;
  // Kept alive for the whole test: the export owns the map service and
  // the replica-group machinery. (The context matrix is built outside
  // the coroutine — see DESIGN.md toolchain notes on braced init lists
  // inside co_await expressions.)
  std::vector<std::vector<core::Context*>> group_ctxs{{&replica_ctx}};
  services::ShardedKvExport skv;
  auto export_all = [&]() -> sim::Co<void> {
    Result<services::ShardedKvExport> exported = co_await
        services::ExportShardedKv(map_ctx, std::move(group_ctxs),
                                  std::move(sparams));
    CO_ASSERT_OK(exported);
    skv = std::move(*exported);
  };
  rt.Run(export_all());
  rt.scheduler().RunFor(Milliseconds(40));  // lease publishes the group name

  std::shared_ptr<services::IKeyValue> kv;
  auto bind = [&]() -> sim::Co<void> {
    core::AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<services::IKeyValue>> bound =
        co_await core::Acquire<services::IKeyValue>(client_ctx, "app/kv",
                                                    opts);
    CO_ASSERT_OK(bound);
    kv = *bound;
  };
  rt.Run(bind());
  auto* router = dynamic_cast<services::KvShardRouterProxy*>(kv.get());
  ASSERT_NE(router, nullptr);

  // Warm: resolves the map and the group proxy.
  auto warm = [&]() -> sim::Co<void> {
    Result<rpc::Void> r = co_await kv->Put("key-1", "v");
    CO_ASSERT_OK(r);
  };
  rt.Run(warm());

  // Saturate the group's primary: a foreign slow object pins the
  // server's single admission slot for 20ms (admission is a per-server
  // property — every object behind that endpoint feels it).
  const ObjectId slow_id = replica_ctx.MintObjectId();
  auto slow = std::make_shared<rpc::Dispatch>();
  rpc::RegisterTyped<PingRequest, PingResponse>(
      *slow, 1,
      [&rt](PingRequest req,
            const rpc::CallContext&) -> sim::Co<Result<PingResponse>> {
        co_await sim::SleepFor(rt.scheduler(), Milliseconds(20));
        co_return PingResponse{req.id};
      });
  ASSERT_TRUE(replica_ctx.server().ExportObject(slow_id, slow).ok());
  replica_ctx.server().set_admission(1, 0, Milliseconds(2));
  sim::Future<rpc::RpcResult> pin = client_ctx.client().Call(
      replica_ctx.server_address(), slow_id, 1,
      serde::EncodeToBytes(PingRequest{1}), NoRetryOptions(Milliseconds(100)));
  rt.scheduler().RunFor(Milliseconds(1));

  // First op: the shed fights through the pushback retries and surfaces;
  // the router marks the group overloaded.
  const std::uint64_t wire_before_shed =
      replica_ctx.server().stats().requests_received.value();
  auto shed = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> r = co_await kv->Get("key-1");
    CO_ASSERT_TRUE(!r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  };
  rt.Run(shed());
  EXPECT_GT(replica_ctx.server().stats().requests_received.value(),
            wire_before_shed);

  // Second op, inside the backoff window: fails fast at the router —
  // same verdict, zero additional work offered to the drowning group.
  const std::uint64_t wire_before_fast =
      replica_ctx.server().stats().requests_received.value();
  rt.Run(shed());
  EXPECT_EQ(router->shed_fail_fast(), 1u);
  EXPECT_EQ(replica_ctx.server().stats().requests_received.value(),
            wire_before_fast);

  // The window expires and the pin drains: work flows again.
  rt.scheduler().RunFor(services::KvShardRouterProxy::kGroupBackoff +
                        Milliseconds(5));
  rt.scheduler().RunUntil([&pin] { return pin.ready(); });
  EXPECT_TRUE(pin.take().ok());
  auto recovered = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> r = co_await kv->Get("key-1");
    CO_ASSERT_OK(r);
    CO_ASSERT_TRUE(r->has_value());
    EXPECT_EQ(**r, "v");
  };
  rt.Run(recovered());
  EXPECT_EQ(router->shed_fail_fast(), 1u);
}

}  // namespace
}  // namespace proxy
