// proxy_lint's own suite: each fixture under tests/lint_fixtures/ trips
// exactly its rule at the marked line, suppressions silence it, and the
// baseline ratchet admits frozen findings while failing new ones.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proxy_lint/lint.h"

namespace {

using proxy_lint::Baseline;
using proxy_lint::Finding;
using proxy_lint::Linter;

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(PROXY_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// 1-based line of the first line containing `needle` (0 if absent).
int LineOf(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.find(needle) != std::string::npos) return n;
  }
  return 0;
}

/// Lints one fixture under a virtual repo path (rules are path-scoped).
std::vector<Finding> Lint(const std::string& fixture,
                          const std::string& virtual_path) {
  const std::string text = ReadFixture(fixture);
  Linter linter;
  linter.CollectDeclarations(virtual_path, text);
  return linter.Analyze(virtual_path, text);
}

std::set<std::string> Rules(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

bool HasFindingAt(const std::vector<Finding>& findings, const std::string& rule,
                  int line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line) return true;
  }
  return false;
}

TEST(ProxyLintL1, MirrorBugReportedAtTheRangeFor) {
  const std::string text = ReadFixture("l1_mirror_bug.cpp");
  const std::vector<Finding> f = Lint("l1_mirror_bug.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L1"});
  EXPECT_TRUE(HasFindingAt(f, "L1", LineOf(text, "MARK:l1-mirror")));
}

TEST(ProxyLintL1, HeldReferenceAndIteratorAcrossAwait) {
  const std::string text = ReadFixture("l1_held_reference.cpp");
  const std::vector<Finding> f =
      Lint("l1_held_reference.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L1"});
  EXPECT_TRUE(HasFindingAt(f, "L1", LineOf(text, "MARK:l1-reference")));
  EXPECT_TRUE(HasFindingAt(f, "L1", LineOf(text, "MARK:l1-iterator")));
  // Audit() uses its iterator only inside the awaiting statement — the
  // arguments are evaluated before the suspension, so no finding there.
  EXPECT_EQ(f.size(), 2u);
}

TEST(ProxyLintL1, AppliesInTestsToo) {
  // L1/L2 are not path-scoped: a hazard in a test is still a hazard.
  const std::string text = ReadFixture("l1_mirror_bug.cpp");
  const std::vector<Finding> f = Lint("l1_mirror_bug.cpp", "tests/x_test.cpp");
  EXPECT_TRUE(HasFindingAt(f, "L1", LineOf(text, "MARK:l1-mirror")));
}

TEST(ProxyLintL2, DiscardedTaskReportedOnceHandledFormsPass) {
  const std::string text = ReadFixture("l2_discarded_task.cpp");
  const std::vector<Finding> f =
      Lint("l2_discarded_task.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L2"});
  EXPECT_TRUE(HasFindingAt(f, "L2", LineOf(text, "MARK:l2-discarded")));
  // co_await / Spawn / (void) / named binding are all handled; the
  // ambiguous name (void in one class, Co in another) stays silent.
  EXPECT_EQ(f.size(), 1u);
}

TEST(ProxyLintL5, DiscardedTimerReportedOnceHandledFormsPass) {
  const std::string text = ReadFixture("l5_discarded_timer.cpp");
  const std::vector<Finding> f =
      Lint("l5_discarded_timer.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L5"});
  EXPECT_TRUE(HasFindingAt(f, "L5", LineOf(text, "MARK:l5-discarded")));
  // .Detach() / .Cancel() / assignment / named binding / (void) / stored
  // in a container are all handled; the free function named Post (no
  // member access) stays out of scope.
  EXPECT_EQ(f.size(), 1u);
}

TEST(ProxyLintL5, AppliesInTestsToo) {
  // Like L1/L2, L5 is not path-scoped: a heartbeat that never fires is
  // just as silent in a test harness.
  const std::string text = ReadFixture("l5_discarded_timer.cpp");
  const std::vector<Finding> f =
      Lint("l5_discarded_timer.cpp", "tests/x_test.cpp");
  EXPECT_TRUE(HasFindingAt(f, "L5", LineOf(text, "MARK:l5-discarded")));
}

TEST(ProxyLintL3, LeaksReportedInSrcExemptInTests) {
  const std::string text = ReadFixture("l3_encapsulation_leak.cpp");
  const std::vector<Finding> in_src =
      Lint("l3_encapsulation_leak.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(in_src), std::set<std::string>{"L3"});
  EXPECT_TRUE(HasFindingAt(in_src, "L3", LineOf(text, "MARK:l3-client")));
  EXPECT_TRUE(HasFindingAt(in_src, "L3", LineOf(text, "MARK:l3-frame")));
  EXPECT_TRUE(HasFindingAt(in_src, "L3", LineOf(text, "MARK:l3-send")));

  // The transport layers and white-box tests own the wire format.
  EXPECT_TRUE(Lint("l3_encapsulation_leak.cpp", "tests/x_test.cpp").empty());
  EXPECT_TRUE(Lint("l3_encapsulation_leak.cpp", "src/rpc/x.cpp").empty());
}

TEST(ProxyLintL4, BareCallReportedOptionsFormAndTestsPass) {
  const std::string text = ReadFixture("l4_unchecked_deadline.cpp");
  const std::vector<Finding> in_src =
      Lint("l4_unchecked_deadline.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(in_src), std::set<std::string>{"L4"});
  EXPECT_TRUE(HasFindingAt(in_src, "L4", LineOf(text, "MARK:l4-call")));
  EXPECT_EQ(in_src.size(), 1u);

  EXPECT_TRUE(Lint("l4_unchecked_deadline.cpp", "tests/x_test.cpp").empty());
  EXPECT_TRUE(Lint("l4_unchecked_deadline.cpp", "bench/x.cpp").empty());
}

TEST(ProxyLintL6, ViewEscapesReportedSanctionedPatternsPass) {
  const std::string text = ReadFixture("l6_borrowed_view.cpp");
  const std::vector<Finding> f =
      Lint("l6_borrowed_view.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L6"});
  EXPECT_TRUE(HasFindingAt(f, "L6", LineOf(text, "MARK:l6-member-store")));
  EXPECT_TRUE(HasFindingAt(f, "L6", LineOf(text, "MARK:l6-container")));
  EXPECT_TRUE(HasFindingAt(f, "L6", LineOf(text, "MARK:l6-detached")));
  EXPECT_TRUE(HasFindingAt(f, "L6", LineOf(text, "MARK:l6-return")));
  // Scalar derivations, owning copies, same-frame consumption, the
  // view+arena pattern, and view-returning accessors are all exempt.
  EXPECT_EQ(f.size(), 4u);
}

TEST(ProxyLintL7, FaithfulPairProducesNoFindings) {
  EXPECT_TRUE(Lint("l7_frame_clean.cpp", "src/rpc/probe.cpp").empty());
}

TEST(ProxyLintL7, FieldOrderDriftAndGateRegressionCaught) {
  const std::string text = ReadFixture("l7_frame_drift.cpp");
  const std::vector<Finding> f =
      Lint("l7_frame_drift.cpp", "src/rpc/probe.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L7"});
  // The injected one-field drift in the v5-frame copy is reported at
  // the first diverging decoder op, the gate regression at the op whose
  // guard loosened.
  EXPECT_TRUE(HasFindingAt(f, "L7", LineOf(text, "MARK:l7-drift")));
  EXPECT_TRUE(HasFindingAt(f, "L7", LineOf(text, "MARK:l7-gate")));
  EXPECT_EQ(f.size(), 2u);
}

TEST(ProxyLintL7, OnlyAppliesToWirePaths) {
  // The same drifted pair outside src/rpc and src/serde is out of
  // scope: Encode/Decode names elsewhere are not the wire protocol.
  EXPECT_TRUE(Lint("l7_frame_drift.cpp", "src/services/x.cpp").empty());
}

TEST(ProxyLintL8, DirectAndAwaitedDiscardsReportedHandledFormsPass) {
  const std::string text = ReadFixture("l8_unchecked_status.cpp");
  const std::vector<Finding> f =
      Lint("l8_unchecked_status.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L8"});
  EXPECT_TRUE(HasFindingAt(f, "L8", LineOf(text, "MARK:l8-direct")));
  EXPECT_TRUE(HasFindingAt(f, "L8", LineOf(text, "MARK:l8-awaited")));
  // (void) casts, bound names, and Co<void> awaits are all handled.
  EXPECT_EQ(f.size(), 2u);

  // L8 is scoped to src/: a test deliberately dropping a status (e.g.
  // poking a crashed replica) is not a finding.
  EXPECT_TRUE(Lint("l8_unchecked_status.cpp", "tests/x_test.cpp").empty());
}

TEST(ProxyLintIndex, ResolvesCalleesAcrossTranslationUnits) {
  // The Co return type lives in one file, the discarding call in
  // another: only a cross-TU index can connect them.
  const std::string decl =
      "namespace s {\n"
      "class Pump {\n"
      " public:\n"
      "  sim::Co<void> Kick();\n"
      "};\n"
      "}  // namespace s\n";
  const std::string use =
      "namespace s {\n"
      "void Drive(Pump& p) {\n"
      "  p.Kick();\n"
      "}\n"
      "}  // namespace s\n";
  Linter linter;
  linter.CollectDeclarations("src/pump.h", decl);
  linter.CollectDeclarations("src/drive.cpp", use);
  const std::vector<Finding> f = linter.Analyze("src/drive.cpp", use);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "L2");
  EXPECT_EQ(f[0].line, 3);
}

TEST(ProxyLintSarif, RendersRuleCatalogueAndLocations) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 7, "L6", "view \"v\" escapes"}};
  const std::string sarif = proxy_lint::RenderSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"proxy_lint\""), std::string::npos);
  // All eight rules are declared in the driver's catalogue.
  for (const char* rule : {"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8"}) {
    EXPECT_NE(sarif.find(std::string("\"id\": \"") + rule + "\""),
              std::string::npos)
        << rule;
  }
  EXPECT_NE(sarif.find("\"uri\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  // The quote in the message survives escaping.
  EXPECT_NE(sarif.find("view \\\"v\\\" escapes"), std::string::npos);
}

TEST(ProxyLintDiff, SubtractMatchesLineAgnosticallyAndMultisetAware) {
  const std::vector<Finding> base = {
      {"src/a.cpp", 10, "L8", "drop"},
      {"src/a.cpp", 20, "L8", "drop"},
  };
  const std::vector<Finding> current = {
      {"src/a.cpp", 12, "L8", "drop"},   // shifted: still covered
      {"src/a.cpp", 25, "L8", "drop"},   // second identical: covered
      {"src/a.cpp", 30, "L8", "drop"},   // third: new
      {"src/a.cpp", 31, "L6", "escape"}, // different rule: new
  };
  const std::vector<Finding> fresh =
      proxy_lint::SubtractFindings(current, base);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].line, 30);
  EXPECT_EQ(fresh[1].rule, "L6");
}

TEST(ProxyLintSuppression, NolintSilencesEveryRule) {
  EXPECT_TRUE(Lint("nolint_suppressed.cpp", "src/services/x.cpp").empty());
}

TEST(ProxyLintClean, SanctionedIdiomsProduceNoFindings) {
  EXPECT_TRUE(Lint("clean.cpp", "src/services/x.cpp").empty());
}

TEST(ProxyLintBaseline, RoundTripAndRatchet) {
  const std::vector<Finding> frozen = {
      {"src/a.cpp", 10, "L4", "m"},
      {"src/a.cpp", 20, "L4", "m"},
      {"src/b.cpp", 5, "L3", "m"},
  };
  const std::string json = Baseline::Render(frozen);
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(Baseline::Parse(json, baseline, error)) << error;
  EXPECT_EQ(baseline.allowed.size(), 2u);
  EXPECT_EQ((baseline.allowed.at({"src/a.cpp", "L4"})), 2);

  // Frozen findings pass; one more than the budget fails; a shrink is
  // reported as a stale entry, never an error.
  std::vector<std::string> stale;
  EXPECT_TRUE(ApplyBaseline(frozen, baseline, &stale).empty());
  EXPECT_TRUE(stale.empty());

  std::vector<Finding> grown = frozen;
  grown.push_back({"src/a.cpp", 30, "L4", "m"});
  EXPECT_EQ(ApplyBaseline(grown, baseline, &stale).size(), 1u);

  stale.clear();
  const std::vector<Finding> shrunk = {frozen[0], frozen[2]};
  EXPECT_TRUE(ApplyBaseline(shrunk, baseline, &stale).empty());
  EXPECT_EQ(stale.size(), 1u);
}

TEST(ProxyLintBaseline, MalformedJsonRejected) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(Baseline::Parse("{\"version\": 1, \"entries\": [", baseline,
                               error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
