// proxy_lint's own suite: each fixture under tests/lint_fixtures/ trips
// exactly its rule at the marked line, suppressions silence it, and the
// baseline ratchet admits frozen findings while failing new ones.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proxy_lint/lint.h"

namespace {

using proxy_lint::Baseline;
using proxy_lint::Finding;
using proxy_lint::Linter;

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(PROXY_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// 1-based line of the first line containing `needle` (0 if absent).
int LineOf(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.find(needle) != std::string::npos) return n;
  }
  return 0;
}

/// Lints one fixture under a virtual repo path (rules are path-scoped).
std::vector<Finding> Lint(const std::string& fixture,
                          const std::string& virtual_path) {
  const std::string text = ReadFixture(fixture);
  Linter linter;
  linter.CollectDeclarations(text);
  return linter.Analyze(virtual_path, text);
}

std::set<std::string> Rules(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

bool HasFindingAt(const std::vector<Finding>& findings, const std::string& rule,
                  int line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line) return true;
  }
  return false;
}

TEST(ProxyLintL1, MirrorBugReportedAtTheRangeFor) {
  const std::string text = ReadFixture("l1_mirror_bug.cpp");
  const std::vector<Finding> f = Lint("l1_mirror_bug.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L1"});
  EXPECT_TRUE(HasFindingAt(f, "L1", LineOf(text, "MARK:l1-mirror")));
}

TEST(ProxyLintL1, HeldReferenceAndIteratorAcrossAwait) {
  const std::string text = ReadFixture("l1_held_reference.cpp");
  const std::vector<Finding> f =
      Lint("l1_held_reference.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L1"});
  EXPECT_TRUE(HasFindingAt(f, "L1", LineOf(text, "MARK:l1-reference")));
  EXPECT_TRUE(HasFindingAt(f, "L1", LineOf(text, "MARK:l1-iterator")));
  // Audit() uses its iterator only inside the awaiting statement — the
  // arguments are evaluated before the suspension, so no finding there.
  EXPECT_EQ(f.size(), 2u);
}

TEST(ProxyLintL1, AppliesInTestsToo) {
  // L1/L2 are not path-scoped: a hazard in a test is still a hazard.
  const std::string text = ReadFixture("l1_mirror_bug.cpp");
  const std::vector<Finding> f = Lint("l1_mirror_bug.cpp", "tests/x_test.cpp");
  EXPECT_TRUE(HasFindingAt(f, "L1", LineOf(text, "MARK:l1-mirror")));
}

TEST(ProxyLintL2, DiscardedTaskReportedOnceHandledFormsPass) {
  const std::string text = ReadFixture("l2_discarded_task.cpp");
  const std::vector<Finding> f =
      Lint("l2_discarded_task.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L2"});
  EXPECT_TRUE(HasFindingAt(f, "L2", LineOf(text, "MARK:l2-discarded")));
  // co_await / Spawn / (void) / named binding are all handled; the
  // ambiguous name (void in one class, Co in another) stays silent.
  EXPECT_EQ(f.size(), 1u);
}

TEST(ProxyLintL5, DiscardedTimerReportedOnceHandledFormsPass) {
  const std::string text = ReadFixture("l5_discarded_timer.cpp");
  const std::vector<Finding> f =
      Lint("l5_discarded_timer.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(f), std::set<std::string>{"L5"});
  EXPECT_TRUE(HasFindingAt(f, "L5", LineOf(text, "MARK:l5-discarded")));
  // .Detach() / .Cancel() / assignment / named binding / (void) / stored
  // in a container are all handled; the free function named Post (no
  // member access) stays out of scope.
  EXPECT_EQ(f.size(), 1u);
}

TEST(ProxyLintL5, AppliesInTestsToo) {
  // Like L1/L2, L5 is not path-scoped: a heartbeat that never fires is
  // just as silent in a test harness.
  const std::string text = ReadFixture("l5_discarded_timer.cpp");
  const std::vector<Finding> f =
      Lint("l5_discarded_timer.cpp", "tests/x_test.cpp");
  EXPECT_TRUE(HasFindingAt(f, "L5", LineOf(text, "MARK:l5-discarded")));
}

TEST(ProxyLintL3, LeaksReportedInSrcExemptInTests) {
  const std::string text = ReadFixture("l3_encapsulation_leak.cpp");
  const std::vector<Finding> in_src =
      Lint("l3_encapsulation_leak.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(in_src), std::set<std::string>{"L3"});
  EXPECT_TRUE(HasFindingAt(in_src, "L3", LineOf(text, "MARK:l3-client")));
  EXPECT_TRUE(HasFindingAt(in_src, "L3", LineOf(text, "MARK:l3-frame")));
  EXPECT_TRUE(HasFindingAt(in_src, "L3", LineOf(text, "MARK:l3-send")));

  // The transport layers and white-box tests own the wire format.
  EXPECT_TRUE(Lint("l3_encapsulation_leak.cpp", "tests/x_test.cpp").empty());
  EXPECT_TRUE(Lint("l3_encapsulation_leak.cpp", "src/rpc/x.cpp").empty());
}

TEST(ProxyLintL4, BareCallReportedOptionsFormAndTestsPass) {
  const std::string text = ReadFixture("l4_unchecked_deadline.cpp");
  const std::vector<Finding> in_src =
      Lint("l4_unchecked_deadline.cpp", "src/services/x.cpp");
  EXPECT_EQ(Rules(in_src), std::set<std::string>{"L4"});
  EXPECT_TRUE(HasFindingAt(in_src, "L4", LineOf(text, "MARK:l4-call")));
  EXPECT_EQ(in_src.size(), 1u);

  EXPECT_TRUE(Lint("l4_unchecked_deadline.cpp", "tests/x_test.cpp").empty());
  EXPECT_TRUE(Lint("l4_unchecked_deadline.cpp", "bench/x.cpp").empty());
}

TEST(ProxyLintSuppression, NolintSilencesEveryRule) {
  EXPECT_TRUE(Lint("nolint_suppressed.cpp", "src/services/x.cpp").empty());
}

TEST(ProxyLintClean, SanctionedIdiomsProduceNoFindings) {
  EXPECT_TRUE(Lint("clean.cpp", "src/services/x.cpp").empty());
}

TEST(ProxyLintBaseline, RoundTripAndRatchet) {
  const std::vector<Finding> frozen = {
      {"src/a.cpp", 10, "L4", "m"},
      {"src/a.cpp", 20, "L4", "m"},
      {"src/b.cpp", 5, "L3", "m"},
  };
  const std::string json = Baseline::Render(frozen);
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(Baseline::Parse(json, baseline, error)) << error;
  EXPECT_EQ(baseline.allowed.size(), 2u);
  EXPECT_EQ((baseline.allowed.at({"src/a.cpp", "L4"})), 2);

  // Frozen findings pass; one more than the budget fails; a shrink is
  // reported as a stale entry, never an error.
  std::vector<std::string> stale;
  EXPECT_TRUE(ApplyBaseline(frozen, baseline, &stale).empty());
  EXPECT_TRUE(stale.empty());

  std::vector<Finding> grown = frozen;
  grown.push_back({"src/a.cpp", 30, "L4", "m"});
  EXPECT_EQ(ApplyBaseline(grown, baseline, &stale).size(), 1u);

  stale.clear();
  const std::vector<Finding> shrunk = {frozen[0], frozen[2]};
  EXPECT_TRUE(ApplyBaseline(shrunk, baseline, &stale).empty());
  EXPECT_EQ(stale.size(), 1u);
}

TEST(ProxyLintBaseline, MalformedJsonRejected) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(Baseline::Parse("{\"version\": 1, \"entries\": [", baseline,
                               error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
