// Unit tests for the discrete-event scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"

namespace proxy::sim {
namespace {

TEST(Scheduler, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.PostAt(300, [&] { order.push_back(3); });
  s.PostAt(100, [&] { order.push_back(1); });
  s.PostAt(200, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 300u);
}

TEST(Scheduler, FifoAmongEqualTimestamps) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.PostAt(50, [&order, i] { order.push_back(i); });
  }
  s.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, PostInThePastClampsToNow) {
  Scheduler s;
  SimTime seen = 1;
  s.PostAt(100, [&] {
    s.PostAt(10, [&] { seen = s.now(); });  // 10 < now
  });
  s.Run();
  EXPECT_EQ(seen, 100u);
}

TEST(Scheduler, HandlersMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.PostAfter(10, recurse);
  };
  s.PostAfter(10, recurse);
  s.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 50u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const TimerId id = s.PostAt(10, [&] { ran = true; });
  EXPECT_TRUE(s.Cancel(id));
  s.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.events_run(), 0u);
}

TEST(Scheduler, CancelOfFiredTimerIsNoop) {
  Scheduler s;
  const TimerId id = s.PostAt(10, [] {});
  s.Run();
  EXPECT_FALSE(s.Cancel(id));
}

TEST(Scheduler, CancelUnknownIdIsNoop) {
  Scheduler s;
  EXPECT_FALSE(s.Cancel(kInvalidTimer));
  EXPECT_FALSE(s.Cancel(9999));
}

TEST(Scheduler, DoubleCancelReturnsFalse) {
  Scheduler s;
  const TimerId id = s.PostAt(10, [] {});
  EXPECT_TRUE(s.Cancel(id));
  EXPECT_FALSE(s.Cancel(id));
}

TEST(Scheduler, RunUntilStopsAtPredicate) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.PostAt(static_cast<SimTime>(i) * 10, [&] { ++count; });
  }
  const bool reached = s.RunUntil([&] { return count == 4; });
  EXPECT_TRUE(reached);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.now(), 40u);
  s.Run();
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RunUntilReturnsFalseWhenQueueDrains) {
  Scheduler s;
  s.PostAt(10, [] {});
  EXPECT_FALSE(s.RunUntil([] { return false; }));
}

TEST(Scheduler, RunForAdvancesTimeEvenWithoutEvents) {
  Scheduler s;
  s.RunFor(Milliseconds(5));
  EXPECT_EQ(s.now(), Milliseconds(5));
}

TEST(Scheduler, RunForExecutesOnlyEventsWithinWindow) {
  Scheduler s;
  int ran = 0;
  s.PostAt(100, [&] { ++ran; });
  s.PostAt(200, [&] { ++ran; });
  s.PostAt(300, [&] { ++ran; });
  s.RunFor(250);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(s.now(), 250u);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, EventsRunCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.Post([] {});
  s.Run();
  EXPECT_EQ(s.events_run(), 7u);
}

TEST(Scheduler, CurrentIsSetWhileStepping) {
  Scheduler s;
  Scheduler* seen = nullptr;
  s.Post([&] { seen = Scheduler::Current(); });
  s.Run();
  EXPECT_EQ(seen, &s);
}

TEST(Scheduler, StepReturnsFalseOnEmptyQueue) {
  Scheduler s;
  EXPECT_FALSE(s.Step());
  s.Post([] {});
  EXPECT_TRUE(s.Step());
  EXPECT_FALSE(s.Step());
}

}  // namespace
}  // namespace proxy::sim
