// Crash-stop/restart failover tests for the replicated KV (named mode):
// the primary crashes, a backup promotes under a fresh epoch within the
// lease TTL, clients keep writing through the *same* IKeyValue proxy,
// and the restarted old primary rejoins as a resynced backup. This is
// the proxy principle under failure: nothing on the client changed.
#include <gtest/gtest.h>

#include "core/factory.h"
#include "services/replicated_kv.h"
#include "test_util.h"

namespace proxy::services {
namespace {

using proxy::testing::TestWorld;

/// Three replicas on their own nodes (never the name-service node, which
/// cannot crash), exported in named mode with chaos-scale timers so a
/// full crash -> promote -> rejoin cycle fits in a short virtual run.
struct FailoverWorld {
  FailoverWorld() : w(99) {
    n1 = w.rt->AddNode("kv-1");
    n2 = w.rt->AddNode("kv-2");
    n3 = w.rt->AddNode("kv-3");
    c1 = &w.rt->CreateContext(n1, "kv-1");
    c2 = &w.rt->CreateContext(n2, "kv-2");
    c3 = &w.rt->CreateContext(n3, "kv-3");

    ReplicatedKvParams p;
    p.name = "rkv/ha";
    p.lease.ttl_ns = Milliseconds(150);
    p.lease.renew_fraction = 0.4;
    p.lease.max_consecutive_failures = 2;
    p.watch_interval = Milliseconds(45);
    p.promote_stagger = Milliseconds(25);
    p.rejoin_interval = Milliseconds(60);
    p.mirror.retry_interval = Milliseconds(6);
    p.mirror.max_retries = 2;
    p.mirror.deadline = Milliseconds(40);
    auto exported = ExportReplicatedKv(*c1, {c2, c3}, p);
    EXPECT_TRUE(exported.ok());
    exp = std::move(*exported);
    // Let the primary's lease heartbeat publish "rkv/ha".
    w.rt->scheduler().RunFor(Milliseconds(30));
  }

  [[nodiscard]] int ServingPrimaries() const {
    int primaries = 0;
    for (const auto& replica : exp.replicas) {
      if (replica->role() == ReplicaRole::kPrimary && !replica->syncing()) {
        ++primaries;
      }
    }
    return primaries;
  }

  [[nodiscard]] std::uint64_t TotalPromotions() const {
    std::uint64_t total = 0;
    for (const auto& replica : exp.replicas) total += replica->promotions();
    return total;
  }

  TestWorld w;
  NodeId n1, n2, n3;
  core::Context* c1 = nullptr;
  core::Context* c2 = nullptr;
  core::Context* c3 = nullptr;
  ReplicatedKvExport exp;
};

TEST(ReplicationFailover, CrashPromotesBackupWithinLeaseTtl) {
  FailoverWorld fw;
  auto kv = proxy::testing::AcquireByName<IKeyValue>(fw.w, *fw.w.client_ctx,
                                                  "rkv/ha");
  ASSERT_NE(kv, nullptr);

  auto before = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await kv->Put("k1", "v1"));
    Result<std::optional<std::string>> got = co_await kv->Get("k1");
    CO_ASSERT_OK(got);
    EXPECT_EQ(got->value(), "v1");
  };
  fw.w.Run(before);
  ASSERT_EQ(fw.ServingPrimaries(), 1);

  fw.w.rt->CrashNode(fw.n1);
  // Lease TTL (150ms) + watchdog poll + promotion handshake: well inside
  // 400ms of virtual time a backup must be serving as the one primary.
  fw.w.rt->scheduler().RunFor(Milliseconds(400));
  EXPECT_EQ(fw.ServingPrimaries(), 1);
  EXPECT_EQ(fw.TotalPromotions(), 1u);
  EXPECT_NE(fw.exp.primary->role(), ReplicaRole::kPrimary);

  // The client's proxy is unchanged; writes follow the new primary and
  // the pre-crash write is still there (it was on every replica).
  auto after = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await kv->Put("k2", "v2"));
    Result<std::optional<std::string>> got = co_await kv->Get("k1");
    CO_ASSERT_OK(got);
    EXPECT_EQ(got->value(), "v1");
  };
  fw.w.Run(after);

  auto* proxy = dynamic_cast<KvFailoverProxy*>(kv.get());
  ASSERT_NE(proxy, nullptr);
  EXPECT_GE(proxy->list_refreshes(), 1u);
  EXPECT_GE(proxy->last_op_epoch(), 2u);  // served by the new reign
}

TEST(ReplicationFailover, RestartedPrimaryRejoinsAsBackupAndResyncs) {
  FailoverWorld fw;
  auto kv = proxy::testing::AcquireByName<IKeyValue>(fw.w, *fw.w.client_ctx,
                                                  "rkv/ha");
  ASSERT_NE(kv, nullptr);

  auto seed_data = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await kv->Put("k1", "v1"));
  };
  fw.w.Run(seed_data);

  fw.w.rt->CrashNode(fw.n1);
  fw.w.rt->scheduler().RunFor(Milliseconds(400));

  // Write while the old primary is down: it must catch up on rejoin.
  auto mid_crash = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await kv->Put("k2", "v2"));
  };
  fw.w.Run(mid_crash);

  fw.w.rt->RestartNode(fw.n1);
  fw.w.rt->scheduler().RunFor(Milliseconds(500));

  // Rejoined: a backup again, resynced, and back in the mirror set.
  EXPECT_EQ(fw.exp.primary->role(), ReplicaRole::kBackup);
  EXPECT_FALSE(fw.exp.primary->syncing());
  EXPECT_EQ(fw.ServingPrimaries(), 1);

  auto verify = [&]() -> sim::Co<void> {
    // The snapshot resync recovered both the pre-crash and the mid-crash
    // writes on the restarted node (served locally, as a backup read).
    Result<std::optional<std::string>> k1 =
        co_await fw.exp.primary->Get("k1");
    CO_ASSERT_OK(k1);
    EXPECT_EQ(k1->value(), "v1");
    Result<std::optional<std::string>> k2 =
        co_await fw.exp.primary->Get("k2");
    CO_ASSERT_OK(k2);
    EXPECT_EQ(k2->value(), "v2");
    // New writes mirror to the rejoined replica again.
    CO_ASSERT_OK(co_await kv->Put("k3", "v3"));
    Result<std::optional<std::string>> k3 =
        co_await fw.exp.primary->Get("k3");
    CO_ASSERT_OK(k3);
    EXPECT_EQ(k3->value(), "v3");
  };
  fw.w.Run(verify);
}

TEST(ReplicationFailover, CrashedBackupDoesNotBlockWritesAndResyncs) {
  FailoverWorld fw;
  auto kv = proxy::testing::AcquireByName<IKeyValue>(fw.w, *fw.w.client_ctx,
                                                  "rkv/ha");
  ASSERT_NE(kv, nullptr);

  auto seed_data = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await kv->Put("k1", "v1"));
  };
  fw.w.Run(seed_data);

  // Crash a backup: the primary evicts it under a bumped epoch and keeps
  // acknowledging writes (still two live replicas — the ack floor).
  fw.w.rt->CrashNode(fw.n3);
  auto during = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await kv->Put("k2", "v2"));
  };
  fw.w.Run(during);
  EXPECT_EQ(fw.TotalPromotions(), 0u);
  EXPECT_EQ(fw.exp.primary->role(), ReplicaRole::kPrimary);

  fw.w.rt->RestartNode(fw.n3);
  fw.w.rt->scheduler().RunFor(Milliseconds(500));
  EXPECT_FALSE(fw.exp.backup_impls[1]->syncing());

  auto verify = [&]() -> sim::Co<void> {
    Result<std::optional<std::string>> k2 =
        co_await fw.exp.backup_impls[1]->Get("k2");
    CO_ASSERT_OK(k2);
    EXPECT_EQ(k2->value(), "v2");  // caught up via the snapshot join
  };
  fw.w.Run(verify);
}

TEST(ReplicationFailover, PartitionedPrimaryStepsDownNoSplitBrain) {
  FailoverWorld fw;
  auto kv = proxy::testing::AcquireByName<IKeyValue>(fw.w, *fw.w.client_ctx,
                                                  "rkv/ha");
  ASSERT_NE(kv, nullptr);

  auto seed_data = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await kv->Put("k1", "v1"));
  };
  fw.w.Run(seed_data);

  // Cut the primary off from everyone (name service included). Its lease
  // lapses; a backup promotes; the old primary notices the lost lease and
  // steps down rather than serving a second reign.
  auto& net = fw.w.rt->network();
  const auto node_count = static_cast<std::uint32_t>(net.node_count());
  for (std::uint32_t other = 0; other < node_count; ++other) {
    if (other != fw.n1.value()) {
      net.SetPartitioned(fw.n1, NodeId(other), true);
    }
  }
  fw.w.rt->scheduler().RunFor(Milliseconds(600));
  EXPECT_EQ(fw.TotalPromotions(), 1u);
  EXPECT_NE(fw.exp.primary->role(), ReplicaRole::kPrimary);

  for (std::uint32_t other = 0; other < node_count; ++other) {
    if (other != fw.n1.value()) {
      net.SetPartitioned(fw.n1, NodeId(other), false);
    }
  }
  fw.w.rt->scheduler().RunFor(Milliseconds(500));

  // Healed: exactly one primary, and the old one is an in-sync backup.
  EXPECT_EQ(fw.ServingPrimaries(), 1);
  EXPECT_EQ(fw.exp.primary->role(), ReplicaRole::kBackup);
  EXPECT_FALSE(fw.exp.primary->syncing());

  auto after = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await kv->Put("k2", "v2"));
    Result<std::optional<std::string>> got = co_await kv->Get("k1");
    CO_ASSERT_OK(got);
    EXPECT_EQ(got->value(), "v1");
  };
  fw.w.Run(after);
}

}  // namespace
}  // namespace proxy::services
