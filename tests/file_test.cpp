// File service tests: stub semantics, block cache + prefetch + range
// invalidation, write-behind batching, and the protocol-equivalence
// property (T4's foundation): identical client code, identical results,
// under all three proxy protocols.
#include <gtest/gtest.h>

#include "core/factory.h"
#include "services/file.h"
#include "test_util.h"

namespace proxy::services {
namespace {

using core::Acquire;
using core::AcquireOptions;
using proxy::testing::TestWorld;

std::shared_ptr<IFile> BindFile(TestWorld& w, const std::string& name,
                                std::uint32_t protocol = 0) {
  std::shared_ptr<IFile> out;
  auto body = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.protocol_override = protocol;
    opts.allow_direct = false;
    Result<std::shared_ptr<IFile>> f =
        co_await Acquire<IFile>(*w.client_ctx, name, opts);
    CO_ASSERT_OK(f);
    out = *f;
  };
  w.Run(body);
  return out;
}

TEST(FileStubTest, ReadWriteSizeTruncate) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 1);
  ASSERT_OK(exported);
  w.Publish("file", exported->binding);
  auto file = BindFile(w, "file");

  auto body = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await file->Write(0, ToBytes("hello world")));
    Result<std::uint64_t> size = co_await file->Size();
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 11u);

    Result<Bytes> read = co_await file->Read(6, 5);
    CO_ASSERT_OK(read);
    EXPECT_EQ(ToString(View(*read)), "world");

    // Reads past EOF are short, not errors.
    Result<Bytes> past = co_await file->Read(100, 10);
    CO_ASSERT_OK(past);
    EXPECT_TRUE(past->empty());
    Result<Bytes> partial = co_await file->Read(9, 100);
    CO_ASSERT_OK(partial);
    EXPECT_EQ(ToString(View(*partial)), "ld");

    // Writing past EOF zero-fills the gap.
    CO_ASSERT_OK(co_await file->Write(20, ToBytes("far")));
    Result<Bytes> gap = co_await file->Read(11, 9);
    CO_ASSERT_OK(gap);
    EXPECT_EQ(gap->size(), 9u);
    for (const auto b : *gap) EXPECT_EQ(b, 0);

    CO_ASSERT_OK(co_await file->Truncate(5));
    Result<std::uint64_t> size2 = co_await file->Size();
    CO_ASSERT_OK(size2);
    EXPECT_EQ(*size2, 5u);
  };
  w.Run(body);
}

TEST(FileStubTest, OversizeWriteRefused) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 1);
  ASSERT_OK(exported);
  w.Publish("file", exported->binding);
  auto file = BindFile(w, "file");

  auto body = [&]() -> sim::Co<void> {
    Result<rpc::Void> too_big =
        co_await file->Write(FileService::kMaxFileSize, ToBytes("x"));
    EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
    Result<rpc::Void> trunc_big =
        co_await file->Truncate(FileService::kMaxFileSize + 1);
    EXPECT_EQ(trunc_big.status().code(), StatusCode::kResourceExhausted);
  };
  w.Run(body);
}

TEST(FileCachingTest, SequentialReadsHitCacheAndPrefetch) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  exported->impl->FillPattern(64 * 1024);
  w.Publish("file", exported->binding);
  auto file = BindFile(w, "file");

  auto body = [&]() -> sim::Co<void> {
    // Sequential 1 KiB reads through 32 KiB: after the first block, the
    // prefetcher should stay ahead.
    for (std::uint64_t off = 0; off < 32 * 1024; off += 1024) {
      Result<Bytes> chunk = co_await file->Read(off, 1024);
      CO_ASSERT_OK(chunk);
      EXPECT_EQ(chunk->size(), 1024u);
    }
    // Give stragglers time to land, then re-read: all from cache.
    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(10));
    const auto msgs = w.rt->network().stats().messages_sent;
    for (std::uint64_t off = 0; off < 32 * 1024; off += 1024) {
      CO_ASSERT_OK(co_await file->Read(off, 1024));
    }
    EXPECT_EQ(w.rt->network().stats().messages_sent, msgs);
  };
  w.Run(body);

  auto* proxy = dynamic_cast<FileCachingProxy*>(file.get());
  ASSERT_NE(proxy, nullptr);
  EXPECT_GT(proxy->cache_stats().hits, 0u);
}

TEST(FileCachingTest, ReadSpanningBlocksAssembles) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  exported->impl->FillPattern(16 * 1024);
  w.Publish("file", exported->binding);
  auto file = BindFile(w, "file");

  auto body = [&]() -> sim::Co<void> {
    // 6000 bytes starting mid-block spans two 4 KiB blocks.
    Result<Bytes> chunk = co_await file->Read(3000, 6000);
    CO_ASSERT_OK(chunk);
    CO_ASSERT_TRUE(chunk->size() == 6000u);
    // Compare against a stub read of the same range.
    AcquireOptions opts;
    opts.protocol_override = 1;
    opts.allow_direct = false;
    Result<std::shared_ptr<IFile>> stub =
        co_await Acquire<IFile>(*w.client_ctx, "file", opts);
    CO_ASSERT_OK(stub);
    Result<Bytes> expected = co_await (*stub)->Read(3000, 6000);
    CO_ASSERT_OK(expected);
    EXPECT_EQ(*chunk, *expected);
  };
  w.Run(body);
}

TEST(FileCachingTest, WriteInvalidatesOverlappingBlocks) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  exported->impl->FillPattern(16 * 1024);
  w.Publish("file", exported->binding);
  auto file = BindFile(w, "file");

  auto body = [&]() -> sim::Co<void> {
    Result<Bytes> before = co_await file->Read(4096, 16);
    CO_ASSERT_OK(before);
    CO_ASSERT_OK(co_await file->Write(4096, ToBytes("overwritten data")));
    Result<Bytes> after = co_await file->Read(4096, 16);
    CO_ASSERT_OK(after);
    EXPECT_EQ(ToString(View(*after)), "overwritten data");
  };
  w.Run(body);
}

TEST(FileCachingTest, RemoteWriterInvalidatesThroughSubscription) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  exported->impl->FillPattern(8 * 1024);
  w.Publish("file", exported->binding);
  auto reader = BindFile(w, "file", 2);

  core::Context& writer_ctx = w.rt->CreateContext(w.client_node, "writer");
  std::shared_ptr<IFile> writer;
  auto bindw = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.protocol_override = 1;
    opts.allow_direct = false;
    Result<std::shared_ptr<IFile>> f =
        co_await Acquire<IFile>(writer_ctx, "file", opts);
    CO_ASSERT_OK(f);
    writer = *f;
  };
  w.Run(bindw);

  auto body = [&]() -> sim::Co<void> {
    Result<Bytes> cached = co_await reader->Read(0, 4);
    CO_ASSERT_OK(cached);

    CO_ASSERT_OK(co_await writer->Write(0, ToBytes("NEW!")));
    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(5));

    Result<Bytes> fresh = co_await reader->Read(0, 4);
    CO_ASSERT_OK(fresh);
    EXPECT_EQ(ToString(View(*fresh)), "NEW!");
  };
  w.Run(body);
}

TEST(FileCachingTest, TruncateInvalidatesTail) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  exported->impl->FillPattern(16 * 1024);
  w.Publish("file", exported->binding);
  auto file = BindFile(w, "file");

  auto body = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await file->Read(12 * 1024, 1024));  // cache a tail block
    CO_ASSERT_OK(co_await file->Truncate(8 * 1024));
    Result<Bytes> gone = co_await file->Read(12 * 1024, 1024);
    CO_ASSERT_OK(gone);
    EXPECT_TRUE(gone->empty());
  };
  w.Run(body);
}

TEST(FileBatchTest, WritesCoalesceAndReadsFlushFirst) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 3);
  ASSERT_OK(exported);
  w.Publish("file", exported->binding);
  auto file = BindFile(w, "file");

  auto body = [&]() -> sim::Co<void> {
    for (int i = 0; i < 8; ++i) {
      CO_ASSERT_OK(co_await file->Write(static_cast<std::uint64_t>(i) * 4,
                                        ToBytes("abcd")));
    }
    // The read must observe every buffered write (flush-before-read).
    Result<Bytes> all = co_await file->Read(0, 32);
    CO_ASSERT_OK(all);
    CO_ASSERT_TRUE(all->size() == 32u);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(ToString(BytesView(all->data() + i * 4, 4)), "abcd");
    }
  };
  w.Run(body);

  auto* proxy = dynamic_cast<FileBatchProxy*>(file.get());
  ASSERT_NE(proxy, nullptr);
  EXPECT_LE(proxy->batch_stats().batches, 2u);
  EXPECT_EQ(proxy->batch_stats().items, 8u);
}

// Protocol equivalence: one scripted client run, three protocols, the
// final file contents must be byte-identical. This is experiment T4's
// correctness leg.
class FileProtocolEquivalence
    : public ::testing::TestWithParam<std::uint32_t> {};

sim::Co<void> ScriptedSession(std::shared_ptr<IFile> file,
                              sim::Scheduler& sched) {
  (void)co_await file->Write(0, ToBytes("The proxy principle, 1986."));
  (void)co_await file->Read(0, 10);
  (void)co_await file->Write(10, ToBytes("PRINCIPLE"));
  (void)co_await file->Read(5, 20);
  (void)co_await file->Write(100, ToBytes("tail data beyond a gap"));
  (void)co_await file->Truncate(110);
  (void)co_await file->Write(50, ToBytes("mid"));
  (void)co_await file->Read(0, 200);
  co_await sim::SleepFor(sched, Milliseconds(50));  // drain write-behind
}

TEST_P(FileProtocolEquivalence, SameClientScriptSameFinalBytes) {
  // Reference run with the plain stub.
  static Bytes reference;
  {
    TestWorld w(/*seed=*/99);
    auto exported = ExportFileService(*w.server_ctx, 1);
    ASSERT_OK(exported);
    w.Publish("file", exported->binding);
    auto file = BindFile(w, "file", 1);
    w.rt->Run(ScriptedSession(file, w.rt->scheduler()));
    reference = exported->impl->SnapshotState();
  }

  TestWorld w(/*seed=*/99);
  auto exported = ExportFileService(*w.server_ctx, GetParam());
  ASSERT_OK(exported);
  w.Publish("file", exported->binding);
  auto file = BindFile(w, "file", GetParam());
  w.rt->Run(ScriptedSession(file, w.rt->scheduler()));

  // Compare the *content* part of the snapshots (subscriber lists differ
  // by protocol, so decode and compare contents).
  FileService ref_svc(*w.server_ctx), got_svc(*w.server_ctx);
  ASSERT_TRUE(ref_svc.RestoreState(View(reference)).ok());
  ASSERT_TRUE(got_svc.RestoreState(View(exported->impl->SnapshotState())).ok());
  const Bytes ref_content = w.rt->Run(ref_svc.Read(0, 1 << 20)).value();
  const Bytes got_content = w.rt->Run(got_svc.Read(0, 1 << 20)).value();
  EXPECT_EQ(ref_content, got_content)
      << "protocol " << GetParam() << " diverged from the stub";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, FileProtocolEquivalence,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace proxy::services
