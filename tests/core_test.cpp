// Tests for the core runtime: contexts, unforgeable references, binding
// (direct vs proxy), factories, export/publish/revoke.
#include <gtest/gtest.h>

#include <set>

#include "core/export.h"
#include "core/factory.h"
#include "core/runtime.h"
#include "services/counter.h"
#include "services/kv.h"
#include "test_util.h"

namespace proxy::core {
namespace {

using services::CounterService;
using services::ICounter;
using services::IKeyValue;
using proxy::testing::TestWorld;

TEST(Runtime, ContextsGetDistinctEndpoints) {
  Runtime rt;
  const NodeId n = rt.AddNode("n");
  rt.StartNameService(n);
  Context& c1 = rt.CreateContext(n, "c1");
  Context& c2 = rt.CreateContext(n, "c2");
  EXPECT_NE(c1.server_address(), c2.server_address());
  EXPECT_NE(c1.id(), c2.id());
  EXPECT_EQ(c1.node(), c2.node());
}

TEST(Runtime, MintedObjectIdsAreUniqueAndNonNil) {
  Runtime rt;
  const NodeId n = rt.AddNode("n");
  Context& ctx = rt.CreateContext(n, "c");
  std::set<ObjectId> seen;
  for (int i = 0; i < 1000; ++i) {
    const ObjectId id = ctx.MintObjectId();
    EXPECT_FALSE(id.IsNil());
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(Runtime, SameSeedSameIds) {
  auto mint = [](std::uint64_t seed) {
    Runtime::Params p;
    p.seed = seed;
    Runtime rt(p);
    Context& ctx = rt.CreateContext(rt.AddNode("n"), "c");
    return ctx.MintObjectId();
  };
  EXPECT_EQ(mint(1), mint(1));
  EXPECT_NE(mint(1), mint(2));
}

TEST(Context, LocalRegistryBasics) {
  Runtime rt;
  Context& ctx = rt.CreateContext(rt.AddNode("n"), "c");
  auto impl = std::make_shared<CounterService>(5);
  const ObjectId id = ctx.MintObjectId();
  const InterfaceId iface = InterfaceIdOf(ICounter::kInterfaceName);

  ASSERT_TRUE(ctx.RegisterLocal(id, iface, impl).ok());
  EXPECT_EQ(ctx.RegisterLocal(id, iface, impl).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(ctx.RegisterLocal(ObjectId{}, iface, impl).ok());
  EXPECT_FALSE(ctx.RegisterLocal(ctx.MintObjectId(), iface, nullptr).ok());

  const auto* entry = ctx.FindLocal(id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->iface, iface);
  EXPECT_EQ(ctx.local_object_count(), 1u);

  ctx.UnregisterLocal(id);
  EXPECT_EQ(ctx.FindLocal(id), nullptr);
}

TEST(Runtime, FindObjectOnNodeSearchesAllContexts) {
  Runtime rt;
  const NodeId n = rt.AddNode("n");
  const NodeId other = rt.AddNode("other");
  Context& c1 = rt.CreateContext(n, "c1");
  Context& c2 = rt.CreateContext(n, "c2");
  (void)c1;
  auto impl = std::make_shared<CounterService>();
  const ObjectId id = c2.MintObjectId();
  ASSERT_TRUE(c2.RegisterLocal(id, InterfaceIdOf(ICounter::kInterfaceName),
                               impl).ok());
  auto hit = rt.FindObjectOnNode(n, id);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->context, &c2);
  EXPECT_FALSE(rt.FindObjectOnNode(other, id).has_value());
  EXPECT_FALSE(rt.FindObjectOnNode(n, ObjectId{9, 9}).has_value());
}

TEST(FactoryRegistry, RegisterAndCreate) {
  services::RegisterAllServices();
  auto& registry = ProxyFactoryRegistry::Instance();
  const InterfaceId kv = InterfaceIdOf(IKeyValue::kInterfaceName);
  EXPECT_TRUE(registry.Has(kv, 1));
  EXPECT_TRUE(registry.Has(kv, 2));
  EXPECT_TRUE(registry.Has(kv, 3));
  EXPECT_FALSE(registry.Has(kv, 99));
  EXPECT_FALSE(registry.Has(InterfaceIdOf("no.such.Interface"), 1));

  // Re-registration of a taken slot is refused.
  const Status dup = registry.Register(
      kv, 1, [](Context&, const ServiceBinding&) { return nullptr; });
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(registry.Register(kv, 98, nullptr).ok());
}

TEST(FactoryRegistry, CreateUnknownProtocolFails) {
  services::RegisterAllServices();
  Runtime rt;
  Context& ctx = rt.CreateContext(rt.AddNode("n"), "c");
  ServiceBinding b;
  b.interface = InterfaceIdOf(IKeyValue::kInterfaceName);
  b.protocol = 42;
  const auto created = ProxyFactoryRegistry::Instance().Create(ctx, b);
  EXPECT_EQ(created.status().code(), StatusCode::kNotFound);
}

TEST(Bind, DirectWhenObjectIsLocal) {
  TestWorld w;
  auto exported = services::ExportCounterService(*w.server_ctx, 1, 10);
  ASSERT_OK(exported);
  w.Publish("counter", exported->binding);

  // Binding from the hosting context returns the implementation itself.
  auto body = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<ICounter>> bound =
        co_await Acquire<ICounter>(*w.server_ctx, "counter");
    CO_ASSERT_OK(bound);
    EXPECT_EQ(bound->get(),
              static_cast<ICounter*>(exported->impl.get()));
  };
  w.Run(body);
}

TEST(Bind, ProxyWhenRemoteAndDirectWhenDisallowed) {
  TestWorld w;
  auto exported = services::ExportCounterService(*w.server_ctx, 1, 10);
  ASSERT_OK(exported);
  w.Publish("counter", exported->binding);

  auto body = [&]() -> sim::Co<void> {
    // Remote client: must get a proxy, and it must work.
    Result<std::shared_ptr<ICounter>> remote =
        co_await Acquire<ICounter>(*w.client_ctx, "counter");
    CO_ASSERT_OK(remote);
    EXPECT_NE(remote->get(), static_cast<ICounter*>(exported->impl.get()));
    Result<std::int64_t> v = co_await (*remote)->Increment(5);
    CO_ASSERT_OK(v);
    EXPECT_EQ(*v, 15);

    // Even locally, allow_direct=false forces a proxy.
    AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<ICounter>> forced =
        co_await Acquire<ICounter>(*w.server_ctx, "counter", opts);
    CO_ASSERT_OK(forced);
    EXPECT_NE(forced->get(), static_cast<ICounter*>(exported->impl.get()));
    Result<std::int64_t> v2 = co_await (*forced)->Read();
    CO_ASSERT_OK(v2);
    EXPECT_EQ(*v2, 15);
  };
  w.Run(body);
}

TEST(Bind, InterfaceMismatchRefused) {
  TestWorld w;
  auto exported = services::ExportCounterService(*w.server_ctx, 1);
  ASSERT_OK(exported);
  w.Publish("counter", exported->binding);

  auto body = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<IKeyValue>> wrong =
        co_await Acquire<IKeyValue>(*w.client_ctx, "counter");
    EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
  };
  w.Run(body);
}

TEST(Bind, UnboundNameFails) {
  TestWorld w;
  auto body = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<ICounter>> missing =
        co_await Acquire<ICounter>(*w.client_ctx, "nothing/here");
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  };
  w.Run(body);
}

TEST(Bind, ProtocolOverrideSelectsDifferentProxy) {
  TestWorld w;
  auto exported = services::ExportKvService(*w.server_ctx, /*protocol=*/1);
  ASSERT_OK(exported);
  w.Publish("kv", exported->binding);

  auto body = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.protocol_override = 2;  // caching proxy instead of stub
    Result<std::shared_ptr<IKeyValue>> kv =
        co_await Acquire<IKeyValue>(*w.client_ctx, "kv", opts);
    CO_ASSERT_OK(kv);
    // A caching proxy serves the second read locally: message count stays
    // flat between the two reads.
    CO_ASSERT_OK(co_await (*kv)->Put("k", "v"));
    CO_ASSERT_OK(co_await (*kv)->Get("k"));
    const auto msgs_before = w.rt->network().stats().messages_sent;
    CO_ASSERT_OK(co_await (*kv)->Get("k"));
    EXPECT_EQ(w.rt->network().stats().messages_sent, msgs_before);
  };
  w.Run(body);
}

TEST(ServiceExport, RevokeCutsEveryProxyOff) {
  TestWorld w;
  auto impl = std::make_shared<CounterService>(1);
  auto dispatch = services::MakeCounterDispatch(impl);
  auto exported = ServiceExport<ICounter>::Create(*w.server_ctx, impl,
                                                  dispatch, 1, impl);
  ASSERT_OK(exported);
  w.Publish("rev", exported->binding());

  auto body = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<ICounter>> bound =
        co_await Acquire<ICounter>(*w.client_ctx, "rev");
    CO_ASSERT_OK(bound);
    CO_ASSERT_OK(co_await (*bound)->Read());
    exported->Revoke();
    Result<std::int64_t> denied = co_await (*bound)->Read();
    EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
  };
  w.Run(body);
}

TEST(ServiceExport, WithdrawMakesNotFoundNotDenied) {
  TestWorld w;
  auto impl = std::make_shared<CounterService>(1);
  auto dispatch = services::MakeCounterDispatch(impl);
  auto exported = ServiceExport<ICounter>::Create(*w.server_ctx, impl,
                                                  dispatch, 1, impl);
  ASSERT_OK(exported);
  w.Publish("wd", exported->binding());

  auto body = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<ICounter>> bound =
        co_await Acquire<ICounter>(*w.client_ctx, "wd");
    CO_ASSERT_OK(bound);
    exported->Withdraw();
    Result<std::int64_t> gone = co_await (*bound)->Read();
    EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  };
  w.Run(body);
}

TEST(ServiceExport, PublishThenAcquireByName) {
  TestWorld w;
  auto impl = std::make_shared<CounterService>(3);
  auto dispatch = services::MakeCounterDispatch(impl);
  auto exported = ServiceExport<ICounter>::Create(*w.server_ctx, impl,
                                                  dispatch, 1, impl);
  ASSERT_OK(exported);

  auto body = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await exported->Publish("pub/counter"));
    Result<std::shared_ptr<ICounter>> bound =
        co_await Acquire<ICounter>(*w.client_ctx, "pub/counter");
    CO_ASSERT_OK(bound);
    Result<std::int64_t> v = co_await (*bound)->Read();
    CO_ASSERT_OK(v);
    EXPECT_EQ(*v, 3);
  };
  w.Run(body);
}

TEST(Binding, ToStringAndEquality) {
  ServiceBinding a;
  a.server = net::Address{NodeId(1), PortId(2)};
  a.object = ObjectId{3, 4};
  a.interface = InterfaceIdOf("x");
  a.protocol = 2;
  ServiceBinding b = a;
  EXPECT_EQ(a, b);
  b.protocol = 3;
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.ToString().find("proto2"), std::string::npos);
}

}  // namespace
}  // namespace proxy::core
