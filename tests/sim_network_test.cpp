// Unit tests for the simulated network: delay math, loss, partitions,
// loopback, store-and-forward serialization.
#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"

namespace proxy::sim {
namespace {

struct NetFixture : public ::testing::Test {
  NetFixture() : net(sched, /*seed=*/7) {
    a = net.AddNode("a");
    b = net.AddNode("b");
    net.AttachReceiver(b, [this](NodeId from, PortId port, Bytes payload) {
      deliveries.push_back({from, port, std::move(payload), sched.now()});
    });
    net.AttachReceiver(a, [this](NodeId from, PortId port, Bytes payload) {
      deliveries.push_back({from, port, std::move(payload), sched.now()});
    });
  }

  struct Delivery {
    NodeId from;
    PortId port;
    Bytes payload;
    SimTime at;
  };

  Scheduler sched;
  Network net;
  NodeId a, b;
  std::vector<Delivery> deliveries;
};

TEST_F(NetFixture, DeliversWithLatencyPlusTransmitTime) {
  LinkParams link;
  link.latency = Microseconds(100);
  link.bandwidth_bps = 8e6;  // 1 byte per microsecond
  net.SetLink(a, b, link);

  ASSERT_TRUE(net.Send(a, b, PortId(5), Bytes(50, 0xaa)).ok());
  sched.Run();

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].from, a);
  EXPECT_EQ(deliveries[0].port, PortId(5));
  EXPECT_EQ(deliveries[0].payload.size(), 50u);
  // 50 B at 1 B/us = 50us transmit + 100us latency.
  EXPECT_EQ(deliveries[0].at, Microseconds(150));
}

TEST_F(NetFixture, StoreAndForwardSerializesBackToBackSends) {
  LinkParams link;
  link.latency = Microseconds(10);
  link.bandwidth_bps = 8e6;  // 1 byte/us
  net.SetLink(a, b, link);

  // Two 100-byte messages sent at t=0: the second waits for the first
  // to finish transmitting.
  ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes(100, 1)).ok());
  ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes(100, 2)).ok());
  sched.Run();

  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].at, Microseconds(110));  // 100us tx + 10us prop
  EXPECT_EQ(deliveries[1].at, Microseconds(210));  // queued behind first
}

TEST_F(NetFixture, LossDropsDeterministically) {
  LinkParams link;
  link.loss = 0.5;
  net.SetLink(a, b, link);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes{1}).ok());
  }
  sched.Run();
  const auto& stats = net.stats();
  EXPECT_EQ(stats.messages_sent, 200u);
  EXPECT_EQ(stats.messages_delivered + stats.messages_dropped, 200u);
  EXPECT_NEAR(static_cast<double>(stats.messages_dropped), 100.0, 25.0);
  EXPECT_EQ(deliveries.size(), stats.messages_delivered);
}

TEST(NetworkDeterminism, SameSeedSameDrops) {
  for (int round = 0; round < 2; ++round) {
    static std::vector<std::uint64_t> first_run;
    Scheduler sched;
    Network net(sched, 99);
    const NodeId a = net.AddNode("a");
    const NodeId b = net.AddNode("b");
    LinkParams link;
    link.loss = 0.3;
    net.SetLink(a, b, link);
    std::vector<std::uint64_t> delivered_ids;
    net.AttachReceiver(b, [&](NodeId, PortId, Bytes payload) {
      delivered_ids.push_back(payload[0]);
    });
    for (std::uint8_t i = 0; i < 100; ++i) {
      (void)net.Send(a, b, PortId(1), Bytes{i});
    }
    sched.Run();
    if (round == 0) {
      first_run = delivered_ids;
    } else {
      EXPECT_EQ(delivered_ids, first_run);
    }
  }
}

TEST_F(NetFixture, PartitionDropsSilently) {
  net.SetPartitioned(a, b, true);
  ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes{1}).ok());  // no sender error
  sched.Run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);

  net.SetPartitioned(a, b, false);
  ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes{2}).ok());
  sched.Run();
  EXPECT_EQ(deliveries.size(), 1u);
}

TEST_F(NetFixture, PartitionRaisedMidFlightEatsMessage) {
  LinkParams link;
  link.latency = Milliseconds(10);
  net.SetLink(a, b, link);
  ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes{1}).ok());
  // Cut the link while the message is in flight.
  sched.PostAt(Milliseconds(1), [this] { net.SetPartitioned(a, b, true); })
      .Detach();
  sched.Run();
  EXPECT_TRUE(deliveries.empty());
}

TEST_F(NetFixture, LoopbackIsCheapAndCounted) {
  ASSERT_TRUE(net.Send(a, a, PortId(3), Bytes(2048, 7)).ok());
  sched.Run();
  ASSERT_EQ(deliveries.size(), 1u);
  // Default loopback: 5us fixed + 1us per KiB => 7us for 2 KiB.
  EXPECT_EQ(deliveries[0].at, Microseconds(7));
  EXPECT_EQ(net.stats().loopback_messages, 1u);
}

TEST_F(NetFixture, UnknownNodeIsAnError) {
  EXPECT_FALSE(net.Send(a, NodeId(42), PortId(1), Bytes{1}).ok());
  EXPECT_FALSE(net.Send(NodeId(42), a, PortId(1), Bytes{1}).ok());
}

TEST_F(NetFixture, JitterVariesDelivery) {
  LinkParams link;
  link.latency = Microseconds(100);
  link.jitter = Microseconds(50);
  net.SetLink(a, b, link);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes{1}).ok());
  }
  sched.Run();
  ASSERT_EQ(deliveries.size(), 20u);
  SimTime min_at = UINT64_MAX, max_at = 0;
  for (const auto& d : deliveries) {
    min_at = std::min(min_at, d.at);
    max_at = std::max(max_at, d.at);
  }
  EXPECT_LT(min_at, max_at);  // jitter actually spread arrivals
}

TEST_F(NetFixture, StatsTrackBytes) {
  ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes(10, 1)).ok());
  ASSERT_TRUE(net.Send(a, b, PortId(1), Bytes(20, 2)).ok());
  sched.Run();
  EXPECT_EQ(net.stats().bytes_sent, 30u);
  EXPECT_EQ(net.stats().bytes_delivered, 30u);
}

TEST_F(NetFixture, NodeNamesAreKept) {
  EXPECT_EQ(net.node_name(a), "a");
  EXPECT_EQ(net.node_name(b), "b");
  EXPECT_EQ(net.node_count(), 2u);
}

}  // namespace
}  // namespace proxy::sim
