// Rule L4: a direct RpcClient::Call with no CallOptions — no deadline,
// no retry policy; under a partition the caller hangs on the transport
// default. Analyzed under a virtual src/services/ path (tests/ and
// bench/ are exempt). Not compiled — exercised by proxy_lint_test only.
#include "rpc/client.h"

namespace services {

sim::Co<void> Notifier::Nudge(const core::ServiceBinding& peer) {
  rpc::RpcResult r = co_await context_->client().Call(  // MARK:l4-call
      peer.server, peer.object, kNudgeMethod,
      serde::EncodeToBytes(rpc::Void{}));
  (void)r;
  rpc::RpcResult ok = co_await context_->client().Call(  // handled: options
      peer.server, peer.object, kNudgeMethod,
      serde::EncodeToBytes(rpc::Void{}), options_);
  (void)ok;
  co_return;
}

}  // namespace services
