// Rule L5: a statement-level Post / PostAt / PostAfter whose RAII
// sim::Timer result is dropped. The temporary cancels the event at the
// semicolon, so the callback silently never runs — the exact bug the
// move-only Timer API exists to prevent. Not compiled — exercised by
// proxy_lint_test.
#include "sim/scheduler.h"

namespace services {

void Heartbeater::Arm() {
  sched_->PostAfter(interval_, [this] { Beat(); });  // MARK:l5-discarded
  sched_->PostAfter(interval_, [this] { Beat(); }).Detach();  // handled
  sched_->Post([this] { Beat(); }).Cancel();  // handled: arm-then-cancel
  timer_ = sched_->PostAt(deadline_, [this] { Beat(); });  // handled: member
  sim::Timer keep = sched_->Post([this] { Beat(); });      // handled: bound
  keep.Cancel();
  (void)sched_->Post([this] { Beat(); });  // handled: explicit discard
  pending_.push_back(sched.Post([this] { Beat(); }));  // handled: stored
}

// A free function that happens to share the name is not a scheduler arm:
// the rule requires the member access.
void Post(int fd);
void Mailbox::Flush() {
  Post(fd_);  // no finding: unqualified free function
}

}  // namespace services
