// Rule L2: a statement-level call whose sim::Co / sim::Future result is
// dropped. A lazy Co destroyed unstarted never runs; a dropped Future
// loses the completion. Not compiled — exercised by proxy_lint_test.
#include "sim/task.h"

namespace services {

sim::Co<void> Spooler::FlushSideline();
sim::Co<void> Spooler::Drain() {
  FlushSideline();  // MARK:l2-discarded
  co_await FlushSideline();            // handled: awaited
  (void)sim::Spawn(*sched_, FlushSideline());  // handled: explicit detach
  sim::Co<void> kept = FlushSideline();        // handled: bound to a name
  co_await std::move(kept);
  co_return;
}

// Ambiguous name: Poke is declared void here and Co elsewhere — the
// name-based lookup must stay silent rather than guess.
void Harness::Poke();
sim::Co<void> Worker::Poke(int depth);
void Harness::Step() {
  Poke();  // MARK:l2-ambiguous (must NOT be reported)
}

}  // namespace services
