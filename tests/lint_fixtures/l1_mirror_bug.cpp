// Reconstruction of the PR-4 KvReplica::Mirror heap-use-after-free, the
// bug rule L1 exists to catch. The hidden range-for iterator points into
// active_; every co_await parks this frame, a concurrent ReplicateBatch
// frame reassigns active_, and the next ++it walks freed storage.
//
// Not compiled — exercised by proxy_lint_test only (path filter keeps
// lint_fixtures/ out of tree runs).
#include "services/replicated_kv.h"

namespace services {

sim::Co<void> KvReplica::Mirror(const kvwire::ReplicateBatchRequest& req,
                                obs::TraceContext trace) {
  for (const auto& peer : active_) {  // MARK:l1-mirror
    if (SameObject(peer, self_)) continue;
    rpc::RpcResult ack = co_await SendBatch(peer, req, trace);
    if (!ack.ok()) suspects_.push_back(peer);
  }
  co_return;
}

}  // namespace services
