// Rule L7 (negative): a faithful encoder/decoder pair in the shape of
// the v5 request frame — same op kinds, same order, same field names,
// version gates that only tighten down the frame, and the v5 gate
// spelled through a named constant the symbol index resolves. Must
// produce zero findings. Not compiled — exercised by proxy_lint_test.
#include "serde/reader.h"
#include "serde/writer.h"

namespace rpc {

inline constexpr std::uint32_t kProbeWireVersion = 5;

struct ProbeFrame {
  std::uint8_t kind;
  std::string method;
  BytesView args;
  std::uint64_t deadline;
  std::uint64_t attempt;
  std::uint64_t priority;
};

void EncodeProbe(serde::Writer& w, const ProbeFrame& f,
                 std::uint32_t version) {
  w.WriteU8(f.kind);
  Serialize(w, f.method);
  w.WriteBytes(f.args);
  w.WriteVarint(f.deadline);
  if (version >= 4) {
    w.WriteVarint(f.attempt);
  }
  if (version >= kProbeWireVersion) {
    w.WriteVarint(f.priority);
  }
}

Status DecodeProbe(serde::Reader& r, ProbeFrame& f, std::uint32_t version) {
  PROXY_RETURN_IF_ERROR(r.ReadU8(f.kind));
  PROXY_RETURN_IF_ERROR(Deserialize(r, f.method));
  PROXY_RETURN_IF_ERROR(r.ReadBytesView(f.args));
  PROXY_RETURN_IF_ERROR(r.ReadVarint(f.deadline));
  if (version >= 4) {
    PROXY_RETURN_IF_ERROR(r.ReadVarint(f.attempt));
  }
  if (version >= kProbeWireVersion) {
    PROXY_RETURN_IF_ERROR(r.ReadVarint(f.priority));
  }
  return OkStatus();
}

}  // namespace rpc
