// Rule L7 (positive): two broken encoder/decoder pairs.
//
//   Probe — the decoder reads the args bytes before the method field,
//   a one-field order drift in an otherwise faithful copy of the v5
//   request frame. Reported at the first diverging decoder op.
//
//   Gauge — the decoder's version gates regress partway down the frame
//   (a v4-gated field after a v5-gated one): old peers would consume
//   the v5 tail as the v4 field. Reported at the regressing op.
//
// Not compiled — exercised by proxy_lint_test.
#include "serde/reader.h"
#include "serde/writer.h"

namespace rpc {

inline constexpr std::uint32_t kDriftWireVersion = 5;

struct ProbeFrame {
  std::uint8_t kind;
  std::string method;
  BytesView args;
  std::uint64_t deadline;
  std::uint64_t attempt;
  std::uint64_t priority;
};

void EncodeProbe(serde::Writer& w, const ProbeFrame& f,
                 std::uint32_t version) {
  w.WriteU8(f.kind);
  Serialize(w, f.method);
  w.WriteBytes(f.args);
  w.WriteVarint(f.deadline);
  if (version >= 4) {
    w.WriteVarint(f.attempt);
  }
  if (version >= kDriftWireVersion) {
    w.WriteVarint(f.priority);
  }
}

Status DecodeProbe(serde::Reader& r, ProbeFrame& f, std::uint32_t version) {
  PROXY_RETURN_IF_ERROR(r.ReadU8(f.kind));
  PROXY_RETURN_IF_ERROR(r.ReadBytesView(f.args));  // MARK:l7-drift
  PROXY_RETURN_IF_ERROR(Deserialize(r, f.method));
  PROXY_RETURN_IF_ERROR(r.ReadVarint(f.deadline));
  if (version >= 4) {
    PROXY_RETURN_IF_ERROR(r.ReadVarint(f.attempt));
  }
  if (version >= kDriftWireVersion) {
    PROXY_RETURN_IF_ERROR(r.ReadVarint(f.priority));
  }
  return OkStatus();
}

struct GaugeFrame {
  std::uint64_t seq;
  std::uint64_t cost;
  std::uint64_t flags;
};

void EncodeGauge(serde::Writer& w, const GaugeFrame& f,
                 std::uint32_t version) {
  w.WriteVarint(f.seq);
  if (version >= kDriftWireVersion) {
    w.WriteVarint(f.cost);
  }
  if (version >= 4) {
    w.WriteVarint(f.flags);
  }
}

Status DecodeGauge(serde::Reader& r, GaugeFrame& f, std::uint32_t version) {
  PROXY_RETURN_IF_ERROR(r.ReadVarint(f.seq));
  if (version >= kDriftWireVersion) {
    PROXY_RETURN_IF_ERROR(r.ReadVarint(f.cost));
  }
  if (version >= 4) {
    PROXY_RETURN_IF_ERROR(r.ReadVarint(f.flags));  // MARK:l7-gate
  }
  return OkStatus();
}

}  // namespace rpc
