// Rule L6: a borrowed view (BytesView / string_view / a class that
// transitively holds one) escaping the lifetime of its arrival
// OwnedBytes arena — stored into member state, inserted into a member
// container, captured by a detached task, or returned from a function
// whose return type owns no view. The sanctioned zero-copy pattern (the
// view travels together with its std::move'd arena) and explicit copies
// are exempt. Not compiled — exercised by proxy_lint_test.
#include "common/bytes.h"

namespace services {

/// Owns no view: returning it with a view smuggled inside the braces is
/// a dangling pointer the moment the handler's arena dies.
struct Receipt {
  int tag;
};

class Sink {
 public:
  sim::Co<void> Handle(BytesView args);
  sim::Co<void> HandleOwned(BytesView args, OwnedBytes arena);
  Receipt Pack(BytesView data);
  BytesView Window();

 private:
  BytesView stash_;
  std::vector<BytesView> parts_;
  Bytes copy_;
  std::size_t offset_ = 0;
};

sim::Co<void> Sink::Handle(BytesView args) {
  stash_ = args;                               // MARK:l6-member-store
  parts_.push_back(args);                      // MARK:l6-container
  (void)sim::Spawn(*sched_, Consume(args));    // MARK:l6-detached

  offset_ = args.size();          // handled: scalar derived from the view
  copy_ = Bytes(args.begin(), args.end());     // handled: owning copy
  copy_.assign(args.begin(), args.end());      // handled: owning copy
  co_await Validate(args);        // handled: consumed within this frame
  co_return;
}

sim::Co<void> Sink::HandleOwned(BytesView args, OwnedBytes arena) {
  // The sanctioned pattern: the arena rides along with the view, so the
  // bytes stay alive as long as the task does.
  (void)sim::Spawn(*sched_, Park(args, std::move(arena)));
  co_return;
}

Receipt Sink::Pack(BytesView data) {
  return Receipt{data};  // MARK:l6-return
}

BytesView Sink::Window() {
  return stash_;  // handled: the return type itself holds the view
}

}  // namespace services
