// Rule L8: a statement-level call discarding a core::Status / Result.
// The direct form is a compile error in-tree ([[nodiscard]] + Werror),
// but the awaited form is the compiler's blind spot: `co_await Fn();`
// where Fn returns Co<Status> discards the status that comes out of
// await_resume, and no diagnostic fires. Not compiled — exercised by
// proxy_lint_test.
#include "common/status.h"

namespace services {

class Store {
 public:
  Status Flush();
  sim::Co<Status> Sync();
  sim::Co<Result<bool>> Remove(std::string key);
  sim::Co<void> Tick();
  sim::Co<void> Run();
};

sim::Co<void> Store::Run() {
  Flush();          // MARK:l8-direct
  co_await Sync();  // MARK:l8-awaited

  (void)Flush();                          // handled: explicit drop
  Status st = Flush();                    // handled: bound
  if (!st.ok()) co_return;
  Status synced = co_await Sync();        // handled: bound awaited
  (void)synced;
  Result<bool> gone = co_await Remove("k");  // handled: bound awaited
  (void)gone;
  co_await Tick();  // Co<void>: nothing to discard
  co_return;
}

}  // namespace services
