// Rule L1, declaration shapes: a reference / pointer / iterator /
// structured binding into member state used again after a co_await.
// Not compiled — exercised by proxy_lint_test only.
#include "sim/task.h"

namespace services {

sim::Co<void> Registry::Refresh(std::uint64_t key) {
  Entry& slot = entries_[key];  // MARK:l1-reference
  co_await lease_->Renew();
  slot.generation++;  // dangling if entries_ rehashed while suspended
  co_return;
}

sim::Co<void> Registry::Expire(std::uint64_t key) {
  auto it = entries_.find(key);  // MARK:l1-iterator
  co_await lease_->Renew();
  if (it != entries_.end()) entries_.erase(it);
  co_return;
}

sim::Co<void> Registry::Audit() {
  // Safe: uses within the awaiting statement evaluate before suspension.
  auto cursor = entries_.find(0);
  co_await Report(cursor->second);
  co_return;
}

}  // namespace services
