// Rule L3: distribution protocol touched outside the transport / proxy
// layers. Analyzed under a virtual src/services/ path (L3 is path
// scoped); the same bytes under tests/ must report nothing.
// Not compiled — exercised by proxy_lint_test only.
#include "rpc/client.h"

namespace services {

void Sideband::Connect(core::Context& ctx) {
  auto client = std::make_unique<rpc::RpcClient>(ctx.endpoint());  // MARK:l3-client
  rpc::RequestFrame req;
  req.method = 7;
  Bytes wire = rpc::EncodeRequest(req);  // MARK:l3-frame
  ctx.network().Send(self_, peer_, kRpcPort, wire);  // MARK:l3-send
}

}  // namespace services
