// The sanctioned idioms: snapshot before iterating across a suspension,
// await or detach every task, carry CallOptions. Zero findings expected
// even under a virtual src/ path. Not compiled — exercised by
// proxy_lint_test only.
#include "services/replicated_kv.h"

namespace services {

sim::Co<void> KvReplica::Mirror(const kvwire::ReplicateBatchRequest& req,
                                obs::TraceContext trace) {
  const std::vector<core::ServiceBinding> mirror_view = active_;
  for (const auto& peer : mirror_view) {
    rpc::RpcResult ack = co_await SendBatch(peer, req, trace);
    if (!ack.ok()) co_return;
  }
  Entry snapshot = entries_[0];  // value copy: never a finding
  co_await lease_->Renew();
  snapshot.generation++;
  (void)sim::Spawn(context_->scheduler(), Compact());
  context_->scheduler().PostAfter(params_.mirror_interval, [] {}).Detach();
  rpc::RpcResult r = co_await context_->client().Call(
      self_.server, self_.object, kvwire::kGetStatus,
      serde::EncodeToBytes(rpc::Void{}), params_.mirror);
  (void)r;
  co_return;
}

sim::Co<void> KvReplica::Compact();

}  // namespace services
