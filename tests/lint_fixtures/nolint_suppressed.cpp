// Every hazard here carries a NOLINT suppression — the analyzer must
// report nothing. Not compiled — exercised by proxy_lint_test only.
#include "services/replicated_kv.h"

namespace services {

sim::Co<void> KvReplica::Mirror(const kvwire::ReplicateBatchRequest& req) {
  for (const auto& peer : active_) {  // NOLINT(proxy-lint:L1)
    (void)co_await SendBatch(peer, req);
  }
  // NOLINTNEXTLINE(proxy-lint:L2)
  FlushSideline();
  // NOLINTNEXTLINE(proxy-lint:*)
  Bytes wire = rpc::EncodeRequest(req_frame_);
  sched_->Post([] {});  // NOLINT(proxy-lint:L5)
  co_return;
}

sim::Co<void> KvReplica::FlushSideline();

}  // namespace services
