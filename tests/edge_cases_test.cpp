// Edge cases across layers that the per-module suites don't reach:
// cross-client reply-cache isolation, service migration of rich state,
// rebinding under name-cache staleness, endpoint lifecycle races,
// and proxy behaviour on half-broken topologies.
#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/migration.h"
#include "services/counter.h"
#include "services/file.h"
#include "services/kv.h"
#include "test_util.h"

namespace proxy {
namespace {

using core::Acquire;
using core::AcquireOptions;
using proxy::testing::TestWorld;
using namespace proxy::services;  // NOLINT

TEST(EdgeCases, ReplyCachesAreIsolatedPerClient) {
  // Two clients using the same call sequence numbers must not receive
  // each other's cached replies (the cache keys on the client nonce).
  TestWorld w;
  auto exported = ExportKvService(*w.server_ctx, 1);
  ASSERT_OK(exported);
  w.Publish("kv", exported->binding);

  core::Context& other = w.rt->CreateContext(w.client_node, "other");
  std::shared_ptr<IKeyValue> kv1, kv2;
  auto bind = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<IKeyValue>> a =
        co_await Acquire<IKeyValue>(*w.client_ctx, "kv", opts);
    Result<std::shared_ptr<IKeyValue>> b =
        co_await Acquire<IKeyValue>(other, "kv", opts);
    CO_ASSERT_OK(a);
    CO_ASSERT_OK(b);
    kv1 = *a;
    kv2 = *b;
  };
  w.Run(bind);

  auto body = [&]() -> sim::Co<void> {
    // Interleave identical-looking operations from both clients.
    for (int i = 0; i < 10; ++i) {
      CO_ASSERT_OK(co_await kv1->Put("k", "from-1-" + std::to_string(i)));
      CO_ASSERT_OK(co_await kv2->Put("k", "from-2-" + std::to_string(i)));
      Result<std::optional<std::string>> got = co_await kv1->Get("k");
      CO_ASSERT_OK(got);
      EXPECT_EQ(got->value(), "from-2-" + std::to_string(i));
    }
  };
  w.Run(body);
}

TEST(EdgeCases, FileServiceMigratesWithContentAndSubscribers) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  exported->impl->FillPattern(8 * 1024);
  w.Publish("file", exported->binding);

  std::shared_ptr<IFile> file;
  auto bind = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<IFile>> f =
        co_await Acquire<IFile>(*w.client_ctx, "file", opts);
    CO_ASSERT_OK(f);
    file = *f;
  };
  w.Run(bind);

  core::Context& new_home = w.rt->CreateContext(w.client_node, "new-home");
  new_home.migration();

  auto body = [&]() -> sim::Co<void> {
    Result<Bytes> before = co_await file->Read(0, 64);  // subscribes + caches
    CO_ASSERT_OK(before);

    Result<core::ServiceBinding> moved =
        co_await w.server_ctx->migration().PushTo(exported->binding.object,
                                                  new_home.server_address());
    CO_ASSERT_OK(moved);

    // Content survived the move; the proxy rebinds transparently.
    CO_ASSERT_OK(co_await file->Write(0, ToBytes("MOVED")));
    Result<Bytes> after = co_await file->Read(0, 5);
    CO_ASSERT_OK(after);
    EXPECT_EQ(ToString(View(*after)), "MOVED");
    Result<std::uint64_t> size = co_await file->Size();
    CO_ASSERT_OK(size);
    EXPECT_EQ(*size, 8u * 1024);
  };
  w.Run(body);
}

TEST(EdgeCases, StaleNameCacheRecoversViaForwarding) {
  // A client binds through the caching name client; the object then
  // migrates. The cached (stale) binding still works because the old
  // home forwards — the name cache need not be eagerly invalidated.
  TestWorld w;
  auto exported = ExportCounterService(*w.server_ctx, 1, 5);
  ASSERT_OK(exported);
  w.Publish("ctr", exported->binding);

  core::Context& target = w.rt->CreateContext(w.client_node, "target");
  target.migration();

  auto body = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<ICounter>> first =
        co_await Acquire<ICounter>(*w.client_ctx, "ctr", opts);
    CO_ASSERT_OK(first);
    CO_ASSERT_OK(co_await (*first)->Read());

    Result<core::ServiceBinding> moved =
        co_await w.server_ctx->migration().PushTo(exported->binding.object,
                                                  target.server_address());
    CO_ASSERT_OK(moved);

    // A *new* bind resolves from the (stale) name cache, yet works.
    Result<std::shared_ptr<ICounter>> second =
        co_await Acquire<ICounter>(*w.client_ctx, "ctr", opts);
    CO_ASSERT_OK(second);
    Result<std::int64_t> v = co_await (*second)->Read();
    CO_ASSERT_OK(v);
    EXPECT_EQ(*v, 5);
  };
  w.Run(body);
}

TEST(EdgeCases, BindingWithWrongProtocolNumberFailsCleanly) {
  TestWorld w;
  auto exported = ExportKvService(*w.server_ctx, 1);
  ASSERT_OK(exported);
  // A service advertising a protocol nobody registered a factory for.
  core::ServiceBinding bogus = exported->binding;
  bogus.protocol = 77;
  w.Publish("bogus", bogus);

  auto body = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<IKeyValue>> kv =
        co_await Acquire<IKeyValue>(*w.client_ctx, "bogus");
    EXPECT_EQ(kv.status().code(), StatusCode::kNotFound);
  };
  w.Run(body);
}

TEST(EdgeCases, DsmPullRefusesWhenNoAcceptorAtSource) {
  // Pulling from a context that never enabled migration yields a clean
  // NOT_FOUND (the control object does not exist there), not a hang.
  TestWorld w;
  core::ServiceBinding fake;
  fake.server = w.server_ctx->server_address();
  fake.object = ObjectId{1, 1};
  fake.interface = InterfaceIdOf(ICounter::kInterfaceName);

  // Fresh context with no exports (so no migration manager on it)...
  core::Context& lonely = w.rt->CreateContext(w.server_node, "lonely");
  fake.server = lonely.server_address();

  auto body = [&]() -> sim::Co<void> {
    Result<core::ServiceBinding> pulled =
        co_await w.client_ctx->migration().Pull(fake);
    EXPECT_EQ(pulled.status().code(), StatusCode::kNotFound);
  };
  w.Run(body);
}

TEST(EdgeCases, ZeroByteValuesAndOddKeysRoundTrip) {
  TestWorld w;
  auto exported = ExportKvService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  w.Publish("kv", exported->binding);

  auto body = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<IKeyValue>> kv =
        co_await Acquire<IKeyValue>(*w.client_ctx, "kv");
    CO_ASSERT_OK(kv);
    // Empty value, empty-ish keys, embedded NULs and slashes.
    const std::string weird_key = std::string("a\0b/c\xff", 6);
    CO_ASSERT_OK(co_await (*kv)->Put(weird_key, ""));
    Result<std::optional<std::string>> got = co_await (*kv)->Get(weird_key);
    CO_ASSERT_OK(got);
    CO_ASSERT_TRUE(got->has_value());
    EXPECT_EQ(got->value(), "");
    // Cached read of it too.
    Result<std::optional<std::string>> again = co_await (*kv)->Get(weird_key);
    CO_ASSERT_OK(again);
    CO_ASSERT_TRUE(again->has_value());
  };
  w.Run(body);
}

TEST(EdgeCases, LargePayloadCrossesTheWire) {
  TestWorld w;
  auto exported = ExportFileService(*w.server_ctx, 1);
  ASSERT_OK(exported);
  w.Publish("file", exported->binding);

  auto body = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<IFile>> file =
        co_await Acquire<IFile>(*w.client_ctx, "file", opts);
    CO_ASSERT_OK(file);
    // 512 KiB takes ~420ms to transmit at 10 Mb/s — far beyond the
    // default retry budget. A bulk-transfer client must be patient.
    rpc::CallOptions patient;
    patient.retry_interval = Seconds(2);
    patient.max_retries = 2;
    dynamic_cast<FileStub*>(file->get())->set_call_options(patient);
    // 512 KiB write: under the 1 MiB datagram cap with headers, and big
    // enough to exercise bandwidth-dominated delivery.
    Bytes big(512 * 1024);
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<std::uint8_t>(i * 31);
    }
    CO_ASSERT_OK(co_await (*file)->Write(0, big));
    Result<Bytes> back = co_await (*file)->Read(0, 512 * 1024);
    CO_ASSERT_OK(back);
    EXPECT_EQ(*back, big);
  };
  w.Run(body);
}

TEST(EdgeCases, ManyConcurrentClientsOneServer) {
  TestWorld w;
  auto exported = ExportCounterService(*w.server_ctx, 1, 0);
  ASSERT_OK(exported);
  w.Publish("ctr", exported->binding);

  constexpr int kClients = 24;
  constexpr int kOpsEach = 20;
  int done = 0;

  std::vector<core::Context*> ctxs;
  for (int i = 0; i < kClients; ++i) {
    const NodeId n = w.rt->AddNode("c" + std::to_string(i));
    ctxs.push_back(&w.rt->CreateContext(n, "cc" + std::to_string(i)));
  }

  auto client = [&](core::Context& ctx) -> sim::Co<void> {
    AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<ICounter>> ctr =
        co_await Acquire<ICounter>(ctx, "ctr", opts);
    CO_ASSERT_OK(ctr);
    for (int i = 0; i < kOpsEach; ++i) {
      CO_ASSERT_OK(co_await (*ctr)->Increment(1));
    }
    ++done;
  };

  for (auto* ctx : ctxs) {
    (void)sim::Spawn(w.rt->scheduler(), client(*ctx));
  }
  w.rt->scheduler().Run();
  ASSERT_EQ(done, kClients);

  auto verify = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<ICounter>> ctr =
        co_await Acquire<ICounter>(*w.server_ctx, "ctr");
    CO_ASSERT_OK(ctr);
    Result<std::int64_t> v = co_await (*ctr)->Read();
    CO_ASSERT_OK(v);
    EXPECT_EQ(*v, kClients * kOpsEach);
  };
  w.Run(verify);
}

TEST(EdgeCases, WithdrawnNameYieldsCleanBindFailure) {
  TestWorld w;
  auto body = [&]() -> sim::Co<void> {
    auto exported = ExportKvService(*w.server_ctx, 1);
    CO_ASSERT_OK(exported);
    CO_ASSERT_OK(co_await w.server_ctx->names().RegisterService(
        "ephemeral", exported->binding));
    CO_ASSERT_OK(co_await w.server_ctx->names().Unregister("ephemeral"));
    AcquireOptions opts;
    opts.use_name_cache = false;
    Result<std::shared_ptr<IKeyValue>> kv =
        co_await Acquire<IKeyValue>(*w.client_ctx, "ephemeral", opts);
    EXPECT_EQ(kv.status().code(), StatusCode::kNotFound);
  };
  w.Run(body);
}

}  // namespace
}  // namespace proxy
