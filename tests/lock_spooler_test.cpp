// Lock service (blocking acquire, FIFO handover, ownership checks) and
// spooler service (batching proxy) tests.
#include <gtest/gtest.h>

#include <vector>

#include "core/factory.h"
#include "services/lock.h"
#include "services/spooler.h"
#include "test_util.h"

namespace proxy::services {
namespace {

using core::Acquire;
using core::AcquireOptions;
using proxy::testing::TestWorld;

std::shared_ptr<ILockService> BindLock(TestWorld& w, core::Context& ctx) {
  std::shared_ptr<ILockService> out;
  auto body = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<ILockService>> l =
        co_await Acquire<ILockService>(ctx, "locks", opts);
    CO_ASSERT_OK(l);
    out = *l;
  };
  w.Run(body);
  return out;
}

struct LockFixture : public ::testing::Test {
  LockFixture() {
    auto exported = ExportLockService(*w.server_ctx);
    EXPECT_TRUE(exported.ok());
    impl = exported->impl;
    w.Publish("locks", exported->binding);
    lock = BindLock(w, *w.client_ctx);
  }

  TestWorld w;
  std::shared_ptr<LockServiceImpl> impl;
  std::shared_ptr<ILockService> lock;
};

TEST_F(LockFixture, TryAcquireAndRelease) {
  auto body = [&]() -> sim::Co<void> {
    Result<bool> got = co_await lock->TryAcquire("m", 1);
    CO_ASSERT_OK(got);
    EXPECT_TRUE(*got);
    Result<bool> blocked = co_await lock->TryAcquire("m", 2);
    CO_ASSERT_OK(blocked);
    EXPECT_FALSE(*blocked);
    Result<bool> reentrant = co_await lock->TryAcquire("m", 1);
    CO_ASSERT_OK(reentrant);
    EXPECT_TRUE(*reentrant);

    Result<std::optional<std::uint64_t>> holder = co_await lock->Holder("m");
    CO_ASSERT_OK(holder);
    EXPECT_EQ(holder->value(), 1u);

    CO_ASSERT_OK(co_await lock->Release("m", 1));
    Result<std::optional<std::uint64_t>> free_now = co_await lock->Holder("m");
    CO_ASSERT_OK(free_now);
    EXPECT_FALSE(free_now->has_value());
  };
  w.Run(body);
}

TEST_F(LockFixture, ReleaseByNonHolderDenied) {
  auto body = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await lock->Acquire("m", 1));
    Result<rpc::Void> denied = co_await lock->Release("m", 99);
    EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);
    Result<rpc::Void> not_held = co_await lock->Release("unknown", 1);
    EXPECT_EQ(not_held.status().code(), StatusCode::kFailedPrecondition);
  };
  w.Run(body);
}

TEST_F(LockFixture, BlockingAcquireParksUntilRelease) {
  std::vector<int> order;

  auto contender = [&](std::uint64_t owner, int tag) -> sim::Co<void> {
    Result<rpc::Void> got = co_await lock->Acquire("m", owner);
    CO_ASSERT_OK(got);
    order.push_back(tag);
  };

  auto driver = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await lock->Acquire("m", 100));
    order.push_back(0);
    // Contenders 1 and 2 queue up behind us, in order.
    (void)sim::Spawn(w.rt->scheduler(), contender(101, 1));
    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(5));
    (void)sim::Spawn(w.rt->scheduler(), contender(102, 2));
    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(5));
    EXPECT_EQ(order.size(), 1u);  // both still parked

    CO_ASSERT_OK(co_await lock->Release("m", 100));
    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(5));
    EXPECT_EQ(order.size(), 2u);  // 101 woke, FIFO

    CO_ASSERT_OK(co_await lock->Release("m", 101));
    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(5));
  };
  w.Run(driver);
  w.rt->scheduler().Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_F(LockFixture, IndependentLocksDontInterfere) {
  auto body = [&]() -> sim::Co<void> {
    CO_ASSERT_OK(co_await lock->Acquire("a", 1));
    Result<bool> other = co_await lock->TryAcquire("b", 2);
    CO_ASSERT_OK(other);
    EXPECT_TRUE(*other);
    EXPECT_EQ(impl->lock_count(), 2u);
  };
  w.Run(body);
}

// --- spooler ---

std::shared_ptr<ISpooler> BindSpooler(TestWorld& w,
                                      std::uint32_t protocol = 0) {
  std::shared_ptr<ISpooler> out;
  auto body = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.protocol_override = protocol;
    opts.allow_direct = false;
    Result<std::shared_ptr<ISpooler>> s =
        co_await Acquire<ISpooler>(*w.client_ctx, "spool", opts);
    CO_ASSERT_OK(s);
    out = *s;
  };
  w.Run(body);
  return out;
}

TEST(SpoolerTest, SubmitAndComplete) {
  TestWorld w;
  auto exported = ExportSpoolerService(*w.server_ctx, 1);
  ASSERT_OK(exported);
  w.Publish("spool", exported->binding);
  auto spool = BindSpooler(w);

  auto body = [&]() -> sim::Co<void> {
    SpoolJob job1{"report.pdf", Bytes(64, 1)};
    Result<std::uint64_t> id1 = co_await spool->Submit(std::move(job1));
    CO_ASSERT_OK(id1);
    SpoolJob job2{"photo.png", Bytes(64, 2)};
    Result<std::uint64_t> id2 = co_await spool->Submit(std::move(job2));
    CO_ASSERT_OK(id2);
    EXPECT_NE(*id1, *id2);

    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(5));
    Result<std::uint64_t> done = co_await spool->CompletedCount();
    CO_ASSERT_OK(done);
    EXPECT_EQ(*done, 2u);
  };
  w.Run(body);
}

TEST(SpoolerTest, EmptyBatchRefused) {
  TestWorld w;
  auto exported = ExportSpoolerService(*w.server_ctx, 1);
  ASSERT_OK(exported);
  w.Publish("spool", exported->binding);
  auto spool = BindSpooler(w);

  auto body = [&]() -> sim::Co<void> {
    Result<std::uint64_t> bad = co_await spool->SubmitMany({});
    EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  };
  w.Run(body);
}

TEST(SpoolerBatchTest, ManySubmitsFewRpcs) {
  TestWorld w;
  auto exported = ExportSpoolerService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  w.Publish("spool", exported->binding);
  auto spool = BindSpooler(w);

  auto body = [&]() -> sim::Co<void> {
    const auto msgs_before = w.rt->network().stats().messages_sent;
    for (int i = 0; i < 64; ++i) {
      SpoolJob job{"job" + std::to_string(i), Bytes(16, 0)};
      CO_ASSERT_OK(co_await spool->Submit(std::move(job)));
    }
    Result<std::uint64_t> done = co_await spool->CompletedCount();
    CO_ASSERT_OK(done);
    co_await sim::SleepFor(w.rt->scheduler(), Milliseconds(50));
    Result<std::uint64_t> final_count = co_await spool->CompletedCount();
    CO_ASSERT_OK(final_count);
    EXPECT_EQ(*final_count, 64u);
    // 64 submissions collapsed into a handful of SubmitMany RPCs: far
    // fewer network messages than 64 request/response pairs.
    const auto msgs = w.rt->network().stats().messages_sent - msgs_before;
    EXPECT_LT(msgs, 64u);
  };
  w.Run(body);

  auto* proxy = dynamic_cast<SpoolerBatchProxy*>(spool.get());
  ASSERT_NE(proxy, nullptr);
  EXPECT_EQ(proxy->batch_stats().items, 64u);
  EXPECT_LE(proxy->batch_stats().batches, 4u);
}

TEST(SpoolerBatchTest, CompletedCountFlushesPendingJobs) {
  TestWorld w;
  auto exported = ExportSpoolerService(*w.server_ctx, 2);
  ASSERT_OK(exported);
  w.Publish("spool", exported->binding);
  auto spool = BindSpooler(w);

  auto body = [&]() -> sim::Co<void> {
    SpoolJob job{"only", Bytes(8, 9)};
    CO_ASSERT_OK(co_await spool->Submit(std::move(job)));
    // CompletedCount must first flush, so the server has seen the job
    // (completion may still take processing time).
    CO_ASSERT_OK(co_await spool->CompletedCount());
    EXPECT_EQ(exported->impl->submitted(), 1u);
  };
  w.Run(body);
}

}  // namespace
}  // namespace proxy::services
