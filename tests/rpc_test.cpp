// Unit tests for the RPC runtime: dispatch, timeouts, retries, and the
// at-most-once guarantee under loss.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "net/endpoint.h"
#include "rpc/client.h"
#include "rpc/frame.h"
#include "rpc/server.h"
#include "rpc/stub.h"
#include "serde/traits.h"
#include "serde/versioned.h"
#include "serde/writer.h"
#include "sim/network.h"
#include "sim/task.h"

namespace proxy::rpc {
namespace {

struct EchoRequest {
  std::string text;
  std::uint32_t repeat = 1;
  PROXY_SERDE_FIELDS(text, repeat)
};
struct EchoResponse {
  std::string text;
  PROXY_SERDE_FIELDS(text)
};

struct RpcFixture : public ::testing::Test {
  RpcFixture() : net(sched, 11) {
    node_a = net.AddNode("client-node");
    node_b = net.AddNode("server-node");
    stack_a = std::make_unique<net::NodeStack>(net, node_a);
    stack_b = std::make_unique<net::NodeStack>(net, node_b);
    client = std::make_unique<RpcClient>(*stack_a->OpenEphemeral(), 0xC11E);
    server_ep = stack_b->OpenEndpoint(PortId(40));
    server = std::make_unique<RpcServer>(*server_ep);

    object = ObjectId{1, 2};
    auto dispatch = std::make_shared<Dispatch>();
    RegisterTyped<EchoRequest, EchoResponse>(
        *dispatch, 1,
        [this](EchoRequest req,
               const CallContext&) -> sim::Co<Result<EchoResponse>> {
          ++executions;
          std::string out;
          for (std::uint32_t i = 0; i < req.repeat; ++i) out += req.text;
          co_return EchoResponse{out};
        });
    // A slow method exercising coroutine handlers.
    RegisterTyped<EchoRequest, EchoResponse>(
        *dispatch, 2,
        [this](EchoRequest req,
               const CallContext&) -> sim::Co<Result<EchoResponse>> {
          co_await sim::SleepFor(sched, Milliseconds(30));
          co_return EchoResponse{req.text};
        });
    // A method that fails.
    RegisterTyped<EchoRequest, EchoResponse>(
        *dispatch, 3,
        [](EchoRequest, const CallContext&) -> sim::Co<Result<EchoResponse>> {
          co_return FailedPreconditionError("nope");
        });
    EXPECT_TRUE(server->ExportObject(object, dispatch).ok());
  }

  /// Drives the scheduler until the call completes; returns its result.
  RpcResult CallSync(std::uint32_t method, const EchoRequest& req,
                     const CallOptions& options = {}) {
    auto future = client->Call(server_ep->address(), object, method,
                               serde::EncodeToBytes(req), options);
    sched.RunUntil([&] { return future.ready(); });
    return future.take();
  }

  sim::Scheduler sched;
  sim::Network net;
  NodeId node_a, node_b;
  std::unique_ptr<net::NodeStack> stack_a, stack_b;
  std::unique_ptr<RpcClient> client;
  net::Endpoint* server_ep = nullptr;
  std::unique_ptr<RpcServer> server;
  ObjectId object;
  int executions = 0;
};

TEST_F(RpcFixture, BasicCallRoundTrips) {
  const RpcResult r = CallSync(1, EchoRequest{"hi", 3});
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  const auto resp = serde::DecodeFromBytes<EchoResponse>(View(r.payload));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->text, "hihihi");
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(client->stats().calls_ok, 1u);
}

TEST_F(RpcFixture, UnknownObjectIsNotFound) {
  auto future = client->Call(server_ep->address(), ObjectId{9, 9}, 1,
                             serde::EncodeToBytes(EchoRequest{"x", 1}));
  sched.RunUntil([&] { return future.ready(); });
  EXPECT_EQ(future.take().status.code(), StatusCode::kNotFound);
  EXPECT_EQ(server->stats().unknown_object, 1u);
}

TEST_F(RpcFixture, UnknownMethodIsNotFound) {
  const RpcResult r = CallSync(77, EchoRequest{"x", 1});
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(server->stats().unknown_method, 1u);
}

TEST_F(RpcFixture, ServerErrorPropagates) {
  const RpcResult r = CallSync(3, EchoRequest{"x", 1});
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(r.status.message(), "nope");
}

TEST_F(RpcFixture, MalformedArgsRejectedByTypedSkeleton) {
  auto future = client->Call(server_ep->address(), object, 1,
                             ToBytes("\xff\xff garbage"));
  sched.RunUntil([&] { return future.ready(); });
  EXPECT_EQ(future.take().status.code(), StatusCode::kCorrupt);
  EXPECT_EQ(executions, 0);
}

TEST_F(RpcFixture, BorrowedArgsViewSurvivesHandlerSuspension) {
  // The server hands handlers a BytesView aliasing the request's arrival
  // buffer and keeps that buffer alive as a request-scoped arena. The
  // view must still read the same bytes after the handler suspends —
  // that lifetime promise is what makes the zero-copy dispatch safe.
  auto dispatch = std::make_shared<Dispatch>();
  const Bytes sent = ToBytes("arena-resident-args-0123456789");
  dispatch->Register(
      5, [this, &sent](BytesView args,
                       const CallContext&) -> sim::Co<Result<Bytes>> {
        const Bytes before(args.begin(), args.end());
        EXPECT_EQ(before, sent);
        // Suspend long enough for other deliveries and timers to run —
        // if the arrival buffer died with the dispatch turn, the view
        // would now dangle (ASan catches the read, the EXPECT the data).
        co_await sim::SleepFor(sched, Milliseconds(25));
        const Bytes after(args.begin(), args.end());
        EXPECT_EQ(after, sent);
        co_return Bytes(args.begin(), args.end());
      });
  const ObjectId raw_object{3, 4};
  ASSERT_TRUE(server->ExportObject(raw_object, dispatch).ok());
  auto future = client->Call(server_ep->address(), raw_object, 5, sent);
  // Interleave another call so the scheduler has unrelated work (and
  // unrelated arrival buffers) while the handler is suspended.
  auto noise = client->Call(server_ep->address(), object, 1,
                            serde::EncodeToBytes(EchoRequest{"noise", 2}));
  sched.RunUntil([&] { return future.ready() && noise.ready(); });
  const RpcResult r = future.take();
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.payload, sent);
  EXPECT_TRUE(noise.take().ok());
}

TEST_F(RpcFixture, SlowHandlerDoesNotBlockOthers) {
  auto slow = client->Call(server_ep->address(), object, 2,
                           serde::EncodeToBytes(EchoRequest{"slow", 1}));
  auto fast = client->Call(server_ep->address(), object, 1,
                           serde::EncodeToBytes(EchoRequest{"fast", 1}));
  sched.RunUntil([&] { return fast.ready(); });
  EXPECT_FALSE(slow.ready());  // still sleeping server-side
  sched.RunUntil([&] { return slow.ready(); });
  EXPECT_TRUE(slow.take().ok());
}

TEST_F(RpcFixture, TimeoutAfterRetryBudget) {
  net.SetPartitioned(node_a, node_b, true);
  CallOptions options;
  options.retry_interval = Milliseconds(10);
  options.max_retries = 3;
  const RpcResult r = CallSync(1, EchoRequest{"x", 1}, options);
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(client->stats().retransmissions, 3u);
  EXPECT_EQ(client->stats().timeouts, 1u);
}

TEST_F(RpcFixture, RetransmissionSurvivesRequestLoss) {
  sim::LinkParams lossy;
  lossy.loss = 0.5;
  net.SetLink(node_a, node_b, lossy);
  CallOptions options;
  options.retry_interval = Milliseconds(5);
  options.max_retries = 30;
  int ok_calls = 0;
  for (int i = 0; i < 20; ++i) {
    const RpcResult r = CallSync(1, EchoRequest{"r", 1}, options);
    if (r.ok()) ++ok_calls;
  }
  EXPECT_EQ(ok_calls, 20);
}

TEST_F(RpcFixture, AtMostOnceUnderHeavyLoss) {
  sim::LinkParams lossy;
  lossy.loss = 0.4;
  net.SetLink(node_a, node_b, lossy);
  CallOptions options;
  options.retry_interval = Milliseconds(5);
  options.max_retries = 50;
  for (int i = 0; i < 25; ++i) {
    const RpcResult r = CallSync(1, EchoRequest{"once", 1}, options);
    ASSERT_TRUE(r.ok());
  }
  // Retransmissions happened, yet each call executed exactly once.
  EXPECT_GT(client->stats().retransmissions, 0u);
  EXPECT_EQ(executions, 25);
  EXPECT_GT(server->stats().duplicate_suppressed +
                server->stats().in_progress_dropped,
            0u);
}

TEST_F(RpcFixture, DuplicateOfInFlightCallNotReExecuted) {
  // Slow method + aggressive retry: duplicates arrive while the handler
  // still runs; they must be dropped, and the final reply answers all.
  CallOptions options;
  options.retry_interval = Milliseconds(5);  // handler takes 30ms
  options.max_retries = 20;
  const RpcResult r = CallSync(2, EchoRequest{"inflight", 1}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(server->stats().in_progress_dropped, 0u);
  EXPECT_EQ(server->stats().executions, 1u);
}

TEST_F(RpcFixture, RevokedObjectAnswersPermissionDenied) {
  server->Revoke(object);
  const RpcResult r = CallSync(1, EchoRequest{"x", 1});
  EXPECT_EQ(r.status.code(), StatusCode::kPermissionDenied);
  EXPECT_TRUE(server->IsRevoked(object));
  EXPECT_EQ(executions, 0);
}

TEST_F(RpcFixture, ReExportAfterRevokeIsRefusedByRevocationCheck) {
  server->Revoke(object);
  // Revocation is permanent: even re-exporting does not resurrect.
  auto dispatch = std::make_shared<Dispatch>();
  EXPECT_TRUE(server->ExportObject(object, dispatch).ok());
  const RpcResult r = CallSync(1, EchoRequest{"x", 1});
  EXPECT_EQ(r.status.code(), StatusCode::kPermissionDenied);
}

TEST_F(RpcFixture, ForwardingAnswersObjectMoved) {
  ASSERT_TRUE(server->RemoveObject(object).ok());
  server->SetForwarding(object, ToBytes("new-binding-hint"));
  const RpcResult r = CallSync(1, EchoRequest{"x", 1});
  EXPECT_EQ(r.status.code(), StatusCode::kObjectMoved);
  EXPECT_EQ(ToString(View(r.payload)), "new-binding-hint");
  server->ClearForwarding(object);
  const RpcResult r2 = CallSync(1, EchoRequest{"x", 1});
  EXPECT_EQ(r2.status.code(), StatusCode::kNotFound);
}

TEST_F(RpcFixture, RemoveObjectMakesItNotFound) {
  EXPECT_TRUE(server->RemoveObject(object).ok());
  const RpcResult r = CallSync(1, EchoRequest{"x", 1});
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(server->RemoveObject(object).ok());
}

TEST_F(RpcFixture, ReplyCacheBoundedEviction) {
  RpcServer::Params params;
  params.reply_cache_per_client = 4;
  net::Endpoint* ep2 = stack_b->OpenEndpoint(PortId(41));
  RpcServer small_server(*ep2, params);
  ObjectId obj{5, 5};
  auto dispatch = std::make_shared<Dispatch>();
  int execs = 0;
  RegisterTyped<EchoRequest, EchoResponse>(
      *dispatch, 1,
      [&execs](EchoRequest req,
               const CallContext&) -> sim::Co<Result<EchoResponse>> {
        ++execs;
        co_return EchoResponse{req.text};
      });
  ASSERT_TRUE(small_server.ExportObject(obj, dispatch).ok());
  for (int i = 0; i < 10; ++i) {
    auto f = client->Call(ep2->address(), obj, 1,
                          serde::EncodeToBytes(EchoRequest{"c", 1}));
    sched.RunUntil([&] { return f.ready(); });
    ASSERT_TRUE(f.take().ok());
  }
  EXPECT_EQ(execs, 10);  // cache holds replies, not executions
}

TEST_F(RpcFixture, SpoofedReplyFromWrongAddressRejected) {
  // An attacker who guesses the nonce and sequence number must not be
  // able to answer a call from a third address. Start a slow call so the
  // forged reply races the genuine one.
  auto future = client->Call(server_ep->address(), object, 2,
                             serde::EncodeToBytes(EchoRequest{"real", 1}));
  sched.RunFor(Milliseconds(5));  // request delivered, handler sleeping
  ASSERT_FALSE(future.ready());

  ReplyFrame forged;
  forged.call = CallId{client->nonce(), 1};  // correctly guessed identity
  forged.code = StatusCode::kOk;
  forged.result = serde::EncodeToBytes(EchoResponse{"forged"});
  net::Endpoint* rogue = stack_b->OpenEphemeral();
  ASSERT_TRUE(rogue->Send(client->address(), EncodeReply(forged)).ok());

  sched.RunUntil([&] { return future.ready(); });
  const RpcResult r = future.take();
  ASSERT_TRUE(r.ok());
  const auto resp = serde::DecodeFromBytes<EchoResponse>(View(r.payload));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->text, "real");  // the forgery did not complete the call
  EXPECT_EQ(client->stats().spoofed_replies, 1u);
  EXPECT_GE(client->stats().stray_replies, 1u);
}

TEST_F(RpcFixture, DeadlineFailsFastUnderPartition) {
  net.SetPartitioned(node_a, node_b, true);
  CallOptions options;
  options.retry_interval = Milliseconds(10);
  options.max_retries = 1000;  // the deadline, not the budget, must end it
  options.deadline = Milliseconds(50);
  const SimTime start = sched.now();
  const RpcResult r = CallSync(1, EchoRequest{"x", 1}, options);
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(sched.now() - start, Milliseconds(50));
  EXPECT_GE(client->stats().deadline_expirations, 1u);
  // Retries stopped with the call: nothing left in the event queue but
  // in-flight datagrams, which drain without reviving the call.
  sched.Run();
  EXPECT_EQ(client->stats().calls_failed, 1u);
}

TEST_F(RpcFixture, ServerShedsExpiredRequests) {
  // A slow link delivers the request after its deadline already passed:
  // the server must answer TIMEOUT without dispatching the handler.
  sim::LinkParams slow;
  slow.latency = Milliseconds(100);
  net.SetLink(node_a, node_b, slow);
  CallOptions options;
  options.retry_interval = Milliseconds(200);  // no retransmission noise
  options.max_retries = 0;
  options.deadline = Milliseconds(20);
  const RpcResult r = CallSync(1, EchoRequest{"late", 1}, options);
  EXPECT_EQ(r.status.code(), StatusCode::kTimeout);
  sched.Run();  // let the late request reach the server
  EXPECT_EQ(server->stats().expired_dropped, 1u);
  EXPECT_EQ(executions, 0);
}

TEST_F(RpcFixture, StrayReplyIgnored) {
  // A reply with a foreign nonce must be counted and dropped.
  ReplyFrame reply;
  reply.call = CallId{0xDEAD, 1};
  reply.code = StatusCode::kOk;
  net::Endpoint* rogue = stack_b->OpenEphemeral();
  ASSERT_TRUE(
      rogue->Send(client->address(), EncodeReply(reply)).ok());
  sched.Run();
  EXPECT_EQ(client->stats().stray_replies, 1u);
}

TEST(FrameCodec, RequestReplyRoundTrip) {
  RequestFrame req;
  req.call = CallId{0xAB, 7};
  req.object = ObjectId{1, 2};
  req.method = 9;
  req.args = ToBytes("args");
  const Bytes encoded = EncodeRequest(req);
  ASSERT_TRUE(PeekFrameType(View(encoded)).ok());
  EXPECT_EQ(*PeekFrameType(View(encoded)), FrameType::kRequest);
  const auto decoded = DecodeRequest(View(encoded));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->call.client_nonce, 0xABu);
  EXPECT_EQ(decoded->method, 9u);
  EXPECT_EQ(ToString(View(decoded->args)), "args");

  ReplyFrame reply;
  reply.call = req.call;
  reply.code = StatusCode::kNotFound;
  reply.error_message = "gone";
  const Bytes encoded_reply = EncodeReply(reply);
  const auto decoded_reply = DecodeReply(View(encoded_reply));
  ASSERT_TRUE(decoded_reply.ok());
  EXPECT_EQ(decoded_reply->code, StatusCode::kNotFound);
  EXPECT_EQ(decoded_reply->error_message, "gone");
  // Cross-decoding fails cleanly.
  EXPECT_FALSE(DecodeRequest(View(encoded_reply)).ok());
  EXPECT_FALSE(DecodeReply(View(encoded)).ok());
  EXPECT_FALSE(PeekFrameType(BytesView{}).ok());
}

TEST(FrameCodec, RequestWireVersionCompatibility) {
  RequestFrame frame;
  frame.call = CallId{0xAB, 7};
  frame.object = ObjectId{1, 2};
  frame.method = 9;
  frame.args = ToBytes("args");

  // A v1 peer omits the deadline entirely; current code must decode the
  // frame and leave the deadline at "none".
  serde::Writer v1;
  v1.WriteU8(static_cast<std::uint8_t>(FrameType::kRequest));
  {
    serde::VersionedWriter vw(v1, 1);
    serde::Serialize(vw.body(), frame);
    vw.Finish();
  }
  const Bytes v1_bytes = v1.Take();
  const auto from_v1 = DecodeRequest(View(v1_bytes));
  ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();
  EXPECT_EQ(from_v1->method, 9u);
  EXPECT_EQ(from_v1->deadline, SimTime{0});

  // A hypothetical v3 peer appends fields we do not know; they must be
  // skipped, with the v2 deadline still understood.
  serde::Writer v3;
  v3.WriteU8(static_cast<std::uint8_t>(FrameType::kRequest));
  {
    serde::VersionedWriter vw(v3, 3);
    serde::Serialize(vw.body(), frame);
    vw.body().WriteVarint(Milliseconds(25));  // v2: deadline
    vw.body().WriteString("field-from-the-future");
    vw.Finish();
  }
  const Bytes v3_bytes = v3.Take();
  const auto from_v3 = DecodeRequest(View(v3_bytes));
  ASSERT_TRUE(from_v3.ok()) << from_v3.status().ToString();
  EXPECT_EQ(from_v3->deadline, Milliseconds(25));
  EXPECT_EQ(ToString(View(from_v3->args)), "args");

  // Today's encoder round-trips the deadline.
  frame.deadline = Milliseconds(40);
  const auto round = DecodeRequest(View(EncodeRequest(frame)));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->deadline, Milliseconds(40));
}

}  // namespace
}  // namespace proxy::rpc
