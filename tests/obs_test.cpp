// Unit coverage for the observability layer (src/obs): histogram bucket
// and percentile edge cases, registry attach/detach fold semantics,
// deterministic export rendering, and span-tree reconstruction including
// orphans, open spans, and the capacity backstop.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace proxy::obs {
namespace {

// --- Histogram ---------------------------------------------------------

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
}

TEST(Histogram, SingleValueDrivesEveryPercentile) {
  Histogram h;
  h.Record(1500);  // between the 1µs and 2µs bounds -> 2µs bucket
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1500u);
  EXPECT_EQ(h.max(), 1500u);
  EXPECT_EQ(h.min(), 1500u);
  EXPECT_EQ(h.Percentile(0.0), 2000u);
  EXPECT_EQ(h.Percentile(0.5), 2000u);
  EXPECT_EQ(h.Percentile(1.0), 2000u);
}

TEST(Histogram, ExactBoundLandsInItsBucket) {
  // Bounds are inclusive upper bounds: a value equal to a bound must not
  // spill into the next bucket.
  Histogram h(std::vector<std::uint64_t>{10, 20, 30});
  h.Record(10);
  h.Record(20);
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.Percentile(0.5), 10u);
  EXPECT_EQ(h.Percentile(1.0), 20u);
}

TEST(Histogram, OverflowBucketReportsObservedMax) {
  Histogram h(std::vector<std::uint64_t>{10, 20});
  h.Record(5000);
  h.Record(9999);
  EXPECT_EQ(h.buckets().back(), 2u);
  // No upper bound exists above the ladder; the honest answer is the max
  // actually seen, not some synthetic bound.
  EXPECT_EQ(h.Percentile(0.5), 9999u);
  EXPECT_EQ(h.Percentile(0.99), 9999u);
}

TEST(Histogram, PercentileRanksAcrossBuckets) {
  Histogram h(std::vector<std::uint64_t>{10, 20, 30});
  for (int i = 0; i < 50; ++i) h.Record(5);   // bucket <=10
  for (int i = 0; i < 45; ++i) h.Record(15);  // bucket <=20
  for (int i = 0; i < 5; ++i) h.Record(25);   // bucket <=30
  EXPECT_EQ(h.Percentile(0.50), 10u);
  EXPECT_EQ(h.Percentile(0.95), 20u);
  EXPECT_EQ(h.Percentile(0.99), 30u);
}

TEST(Histogram, QuantileArgumentIsClamped) {
  Histogram h(std::vector<std::uint64_t>{10});
  h.Record(1);
  EXPECT_EQ(h.Percentile(-0.5), 10u);
  EXPECT_EQ(h.Percentile(2.0), 10u);
}

TEST(Histogram, MergeSumsBucketsAndExtremes) {
  Histogram a(std::vector<std::uint64_t>{10, 20});
  Histogram b(std::vector<std::uint64_t>{10, 20});
  a.Record(5);
  b.Record(15);
  b.Record(99);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 119u);
  EXPECT_EQ(a.max(), 99u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.buckets()[0], 1u);
  EXPECT_EQ(a.buckets()[1], 1u);
  EXPECT_EQ(a.buckets()[2], 1u);  // overflow
}

TEST(Histogram, ResetRestoresEmptyState) {
  Histogram h;
  h.Record(123);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(Histogram, DefaultLadderCoversMicrosecondsToSeconds) {
  const auto& bounds = DefaultLatencyBounds();
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front(), 1000u);            // 1µs
  EXPECT_EQ(bounds.back(), 500'000'000'000u);  // 500s
  EXPECT_TRUE(std::is_sorted(bounds.begin(), bounds.end()));
}

// --- MetricsRegistry ---------------------------------------------------

TEST(MetricsRegistry, OwnedHandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("a.count");
  Counter& c2 = reg.counter("a.count");
  EXPECT_EQ(&c1, &c2);
  c1.Inc(3);
  EXPECT_EQ(c2.value(), 3u);
}

TEST(MetricsRegistry, AttachedCellsSumWithOwned) {
  MetricsRegistry reg;
  reg.counter("x").Inc(5);
  Counter mine;
  mine.Inc(7);
  reg.Attach("x", &mine);
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "x");
  EXPECT_EQ(snap[0].counter, 12u);
}

TEST(MetricsRegistry, DetachFoldsSoTotalsNeverRegress) {
  MetricsRegistry reg;
  {
    Counter shortlived;
    shortlived.Inc(9);
    reg.Attach("x", &shortlived);
    reg.Detach("x", &shortlived);
  }  // the cell is gone; its tally must not be
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].counter, 9u);

  Counter next;
  next.Inc(1);
  reg.Attach("x", &next);
  EXPECT_EQ(reg.Snapshot()[0].counter, 10u);
}

TEST(MetricsRegistry, HistogramDetachFoldsObservations) {
  MetricsRegistry reg;
  {
    Histogram h;
    h.Record(1000);
    h.Record(2000);
    reg.Attach("lat", &h);
    reg.Detach("lat", &h);
  }
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].histogram.count(), 2u);
  EXPECT_EQ(snap[0].histogram.sum(), 3000u);
}

TEST(MetricsRegistry, SnapshotSortsByName) {
  MetricsRegistry reg;
  reg.counter("zz");
  reg.counter("aa");
  reg.counter("mm");
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aa");
  EXPECT_EQ(snap[1].name, "mm");
  EXPECT_EQ(snap[2].name, "zz");
}

TEST(MetricsRegistry, IdenticalFeedsRenderByteIdentically) {
  auto feed = [](MetricsRegistry& reg) {
    reg.counter("calls").Inc(42);
    reg.gauge("depth").Set(-3);
    Histogram& h = reg.histogram("lat");
    h.Record(1000);
    h.Record(250'000);
    h.Record(7'000'000'000ULL);
  };
  MetricsRegistry a;
  MetricsRegistry b;
  feed(a);
  feed(b);
  EXPECT_EQ(a.RenderTable(), b.RenderTable());
  EXPECT_EQ(a.RenderJson(), b.RenderJson());
  EXPECT_NE(a.RenderTable().find("calls 42"), std::string::npos);
  EXPECT_NE(a.RenderJson().find("\"calls\":42"), std::string::npos);
}

// --- SpanRecorder ------------------------------------------------------

TEST(SpanRecorder, DisabledRecorderIsInert) {
  SpanRecorder rec;  // disabled by default
  const TraceContext ctx = rec.Begin(TraceContext{}, "op", 10);
  EXPECT_FALSE(ctx.active());
  rec.Annotate(ctx, 20, "note");
  rec.End(ctx, 30, Status::Ok());
  rec.Event(40, "event");
  EXPECT_EQ(rec.span_count(), 0u);
  EXPECT_TRUE(rec.RenderAll().empty());
}

TEST(SpanRecorder, ChildSpansInheritTraceId) {
  SpanRecorder rec;
  rec.set_enabled(true);
  const TraceContext root = rec.Begin(TraceContext{}, "root", 0);
  const TraceContext child = rec.Begin(root, "child", 5);
  ASSERT_TRUE(root.active());
  ASSERT_TRUE(child.active());
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
}

TEST(SpanRecorder, TreeRendersNestedAndOrdered) {
  SpanRecorder rec;
  rec.set_enabled(true);
  const TraceContext root = rec.Begin(TraceContext{}, "root", 0);
  const TraceContext late = rec.Begin(root, "late", 200);
  const TraceContext early = rec.Begin(root, "early", 100);
  rec.End(early, 150, Status::Ok());
  rec.End(late, 250, Status::Ok());
  rec.End(root, 300, Status::Ok());
  const std::string tree = rec.RenderTree(root.trace_id);
  const auto root_at = tree.find("root");
  const auto early_at = tree.find("early");
  const auto late_at = tree.find("late");
  ASSERT_NE(root_at, std::string::npos);
  ASSERT_NE(early_at, std::string::npos);
  ASSERT_NE(late_at, std::string::npos);
  // Siblings sort by start time, not creation order.
  EXPECT_LT(root_at, early_at);
  EXPECT_LT(early_at, late_at);
}

TEST(SpanRecorder, AnnotationsRenderInline) {
  SpanRecorder rec;
  rec.set_enabled(true);
  const TraceContext span = rec.Begin(TraceContext{}, "call", 0);
  rec.Annotate(span, 10, "rebind -> node-2");
  rec.End(span, 20, Status::Ok());
  EXPECT_NE(rec.RenderTree(span.trace_id).find("rebind -> node-2"),
            std::string::npos);
}

TEST(SpanRecorder, UnfinishedSpanRendersOpen) {
  SpanRecorder rec;
  rec.set_enabled(true);
  const TraceContext span = rec.Begin(TraceContext{}, "stuck", 0);
  EXPECT_NE(rec.RenderTree(span.trace_id).find("OPEN"), std::string::npos);
}

TEST(SpanRecorder, OrphanedChildSurfacesAsRoot) {
  SpanRecorder rec;
  rec.set_enabled(true);
  // A parent context whose span was never recorded (e.g. dropped at
  // capacity on another layer): the child must not vanish from the tree.
  TraceContext ghost_parent;
  ghost_parent.trace_id = 0xDEAD;
  ghost_parent.span_id = 0xBEEF;
  const TraceContext orphan = rec.Begin(ghost_parent, "orphan", 7);
  ASSERT_TRUE(orphan.active());
  EXPECT_EQ(orphan.trace_id, 0xDEADu);
  EXPECT_NE(rec.RenderTree(0xDEAD).find("orphan"), std::string::npos);
}

TEST(SpanRecorder, CapacityBoundsSpansAndCountsDrops) {
  SpanRecorder rec;
  rec.set_enabled(true);
  rec.set_capacity(2);
  const TraceContext a = rec.Begin(TraceContext{}, "a", 0);
  const TraceContext b = rec.Begin(TraceContext{}, "b", 1);
  const TraceContext c = rec.Begin(TraceContext{}, "c", 2);
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_FALSE(c.active());
  EXPECT_EQ(rec.span_count(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
  EXPECT_NE(rec.RenderAll().find("dropped at capacity"), std::string::npos);
}

TEST(SpanRecorder, EventsRenderWithEveryDump) {
  SpanRecorder rec;
  rec.set_enabled(true);
  rec.Event(42, "promoted to primary at epoch 2");
  EXPECT_NE(rec.RenderAll().find("promoted to primary at epoch 2"),
            std::string::npos);
}

TEST(SpanRecorder, IdenticalSequencesRenderByteIdentically) {
  auto feed = [](SpanRecorder& rec) {
    rec.set_enabled(true);
    const TraceContext root = rec.Begin(TraceContext{}, "proxy m1", 1000);
    const TraceContext child = rec.Begin(root, "exec m1", 2000);
    rec.Annotate(root, 1500, "rebind");
    rec.End(child, 2500, Status::Ok());
    rec.End(root, 3000, Status::Ok());
    rec.Event(4000, "heal");
  };
  SpanRecorder a;
  SpanRecorder b;
  feed(a);
  feed(b);
  EXPECT_EQ(a.RenderAll(), b.RenderAll());
  EXPECT_EQ(a.TraceIds(), b.TraceIds());
}

TEST(SpanRecorder, ClearResetsIdsForReplay) {
  SpanRecorder rec;
  rec.set_enabled(true);
  const TraceContext first = rec.Begin(TraceContext{}, "x", 0);
  rec.Clear();
  const TraceContext again = rec.Begin(TraceContext{}, "x", 0);
  // Monotonic ids restart from the same origin: a replay after Clear
  // mints the exact same identifiers.
  EXPECT_EQ(first.trace_id, again.trace_id);
  EXPECT_EQ(first.span_id, again.span_id);
}

}  // namespace
}  // namespace proxy::obs
