// Tests for the proxy building blocks: LRU cache and batcher.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/batcher.h"
#include "core/cache.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace proxy::core {
namespace {

TEST(LruCache, GetMissThenHit) {
  LruCache<std::string, int> cache(4);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", 1);
  const auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCache, OverwriteKeepsSize) {
  LruCache<std::string, int> cache(4);
  cache.Put("a", 1);
  cache.Put("a", 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get("a"), 2);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(3);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Put(3, 3);
  (void)cache.Get(1);  // 1 is now most recent; 2 is LRU
  cache.Put(4, 4);     // evicts 2
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_TRUE(cache.Get(4).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCache, InvalidateRemovesAndCounts) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  EXPECT_TRUE(cache.Invalidate(1));
  EXPECT_FALSE(cache.Invalidate(1));
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(LruCache, PeekDoesNotTouchStatsOrRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  EXPECT_NE(cache.Peek(1), nullptr);  // no recency bump
  cache.Put(3, 30);                   // evicts 1 (still LRU despite Peek)
  EXPECT_EQ(cache.Peek(1), nullptr);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(LruCache, ZeroCapacityStoresNothing) {
  LruCache<int, int> cache(0);
  cache.Put(1, 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(LruCache, ClearAndForEach) {
  LruCache<int, int> cache(4);
  cache.Put(1, 10);
  cache.Put(2, 20);
  std::vector<int> keys;
  cache.ForEach([&](int k, int) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<int>{2, 1}));  // most recent first
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, HitRate) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  (void)cache.Get(1);
  (void)cache.Get(1);
  (void)cache.Get(2);
  EXPECT_NEAR(cache.stats().hit_rate(), 2.0 / 3.0, 1e-9);
}

// --- batcher ---

struct BatcherFixture : public ::testing::Test {
  BatcherFixture()
      : batcher(
            sched,
            [this](std::vector<int> batch) { return Flush(std::move(batch)); },
            /*max_items=*/3, /*window=*/Milliseconds(10)) {}

  sim::Co<Status> Flush(std::vector<int> batch) {
    co_await sim::SleepFor(sched, Microseconds(100));
    if (fail_next) {
      fail_next = false;
      co_return UnavailableError("flush failed");
    }
    flushed.push_back(std::move(batch));
    co_return Status::Ok();
  }

  sim::Scheduler sched;
  std::vector<std::vector<int>> flushed;
  bool fail_next = false;
  Batcher<int> batcher;
};

TEST_F(BatcherFixture, SizeTriggeredFlush) {
  (void)batcher.Add(1);
  (void)batcher.Add(2);
  EXPECT_EQ(batcher.pending(), 2u);
  (void)batcher.Add(3);  // hits max_items
  EXPECT_EQ(batcher.pending(), 0u);
  sched.Run();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(batcher.stats().size_flushes, 1u);
}

TEST_F(BatcherFixture, WindowTriggeredFlush) {
  (void)batcher.Add(7);
  sched.Run();  // window timer fires at 10ms
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0], (std::vector<int>{7}));
  EXPECT_EQ(batcher.stats().window_flushes, 1u);
  EXPECT_GE(sched.now(), Milliseconds(10));
}

TEST_F(BatcherFixture, PerItemFuturesResolve) {
  auto f1 = batcher.Add(1);
  auto f2 = batcher.Add(2);
  auto f3 = batcher.Add(3);
  sched.Run();
  ASSERT_TRUE(f1.ready());
  ASSERT_TRUE(f2.ready());
  ASSERT_TRUE(f3.ready());
  EXPECT_TRUE(f1.take().ok());
  EXPECT_TRUE(f3.take().ok());
}

TEST_F(BatcherFixture, FlushFailurePropagatesToItems) {
  fail_next = true;
  auto f = batcher.Add(1);
  sched.Run();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.take().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(flushed.empty());
}

TEST_F(BatcherFixture, ManualFlushShipsEarly) {
  (void)batcher.Add(9);
  auto done = batcher.Flush();
  sched.RunUntil([&] { return done.ready(); });
  EXPECT_TRUE(done.take().ok());
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_LT(sched.now(), Milliseconds(10));  // did not wait for the window
  EXPECT_EQ(batcher.stats().manual_flushes, 1u);
}

TEST_F(BatcherFixture, ManualFlushOnEmptyIsImmediateOk) {
  auto done = batcher.Flush();
  ASSERT_TRUE(done.ready());
  EXPECT_TRUE(done.take().ok());
  EXPECT_EQ(batcher.stats().batches, 0u);
}

TEST_F(BatcherFixture, ItemsDuringFlightFormNextBatch) {
  (void)batcher.Add(1);
  (void)batcher.Add(2);
  (void)batcher.Add(3);  // flush #1 departs (takes 100us)
  (void)batcher.Add(4);
  (void)batcher.Add(5);
  sched.Run();
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(flushed[1], (std::vector<int>{4, 5}));
}

TEST_F(BatcherFixture, StatsCountItemsAndBatches) {
  for (int i = 0; i < 7; ++i) (void)batcher.Add(i);
  sched.Run();
  EXPECT_EQ(batcher.stats().items, 7u);
  EXPECT_EQ(batcher.stats().batches, 3u);  // 3+3+1
}

}  // namespace
}  // namespace proxy::core
