// Shared fixtures for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/export.h"
#include "core/factory.h"
#include "core/runtime.h"
#include "net/endpoint.h"
#include "rpc/client.h"
#include "rpc/server.h"
#include "rpc/stub.h"
#include "serde/traits.h"
#include "services/register_all.h"
#include "sim/network.h"
#include "sim/task.h"

namespace proxy::testing {

/// A ready-to-use two-node world: name service on the server node, one
/// server context and one client context. Most service tests start here.
class TestWorld {
 public:
  explicit TestWorld(std::uint64_t seed = 42,
                     sim::LinkParams link = sim::LinkParams{}) {
    services::RegisterAllServices();
    core::Runtime::Params params;
    params.seed = seed;
    params.default_link = link;
    rt = std::make_unique<core::Runtime>(params);
    server_node = rt->AddNode("server-node");
    client_node = rt->AddNode("client-node");
    rt->StartNameService(server_node);
    server_ctx = &rt->CreateContext(server_node, "server");
    client_ctx = &rt->CreateContext(client_node, "client");
  }

  /// Publishes a binding under `name` (driving the scheduler).
  void Publish(const std::string& name, const core::ServiceBinding& binding) {
    auto body = [this, &name, &binding]() -> sim::Co<void> {
      Result<rpc::Void> ok =
          co_await server_ctx->names().RegisterService(name, binding);
      EXPECT_TRUE(ok.ok()) << ok.status().ToString();
    };
    Run(body);
  }

  /// Runs a *named* coroutine lambda to completion. The lambda must be an
  /// lvalue (see DESIGN.md toolchain notes on lambda coroutines).
  template <typename L>
  void Run(L& lambda) {
    rt->Run(lambda());
  }

  std::unique_ptr<core::Runtime> rt;
  NodeId server_node;
  NodeId client_node;
  core::Context* server_ctx = nullptr;
  core::Context* client_ctx = nullptr;
};

/// Binds interface `I` in `ctx` through the name service, forcing the
/// proxy path (the pattern every multi-node service test repeats).
template <typename I>
std::shared_ptr<I> AcquireByName(TestWorld& w, core::Context& ctx,
                              const std::string& name) {
  std::shared_ptr<I> out;
  auto body = [&]() -> sim::Co<void> {
    core::AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<I>> bound = co_await core::Acquire<I>(ctx, name, opts);
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    if (bound.ok()) out = *bound;
  };
  w.Run(body);
  return out;
}

struct PingRequest {
  std::uint32_t id = 0;
  PROXY_SERDE_FIELDS(id)
};
struct PingResponse {
  std::uint32_t id = 0;
  PROXY_SERDE_FIELDS(id)
};

/// A minimal client/server pair on two raw nodes (no Runtime, no naming),
/// with controllable breaker tuning. Not a TEST_F fixture so one test can
/// build several worlds (e.g. a loss grid).
struct RpcWorld {
  explicit RpcWorld(std::uint64_t seed,
                    rpc::RpcClient::BreakerParams breaker =
                        rpc::RpcClient::BreakerParams{})
      : net(sched, seed) {
    node_client = net.AddNode("client");
    node_server = net.AddNode("server");
    stack_client = std::make_unique<net::NodeStack>(net, node_client);
    stack_server = std::make_unique<net::NodeStack>(net, node_server);
    client = std::make_unique<rpc::RpcClient>(*stack_client->OpenEphemeral(),
                                              seed ^ 0xFA17u, breaker);
    server_ep = stack_server->OpenEndpoint(PortId(40));
    server = std::make_unique<rpc::RpcServer>(*server_ep);
    object = ObjectId{1, 1};
    auto dispatch = std::make_shared<rpc::Dispatch>();
    rpc::RegisterTyped<PingRequest, PingResponse>(
        *dispatch, 1,
        [](PingRequest req,
           const rpc::CallContext&) -> sim::Co<Result<PingResponse>> {
          co_return PingResponse{req.id};
        });
    EXPECT_TRUE(server->ExportObject(object, dispatch).ok());
  }

  rpc::RpcResult CallSync(std::uint32_t id, const rpc::CallOptions& options) {
    auto future = client->Call(server_ep->address(), object, 1,
                               serde::EncodeToBytes(PingRequest{id}), options);
    sched.RunUntil([&] { return future.ready(); });
    return future.take();
  }

  void Partition(bool on) { net.SetPartitioned(node_client, node_server, on); }

  sim::Scheduler sched;
  sim::Network net;
  NodeId node_client, node_server;
  std::unique_ptr<net::NodeStack> stack_client, stack_server;
  std::unique_ptr<rpc::RpcClient> client;
  net::Endpoint* server_ep = nullptr;
  std::unique_ptr<rpc::RpcServer> server;
  ObjectId object;
};

// gtest's ASSERT_* macros expand to `return;`, which is ill-formed inside
// a coroutine. CO_ASSERT_* are the coroutine-safe equivalents: they record
// the failure and co_return.
#define CO_ASSERT_TRUE(cond)                    \
  do {                                          \
    if (!(cond)) {                              \
      ADD_FAILURE() << "expected true: " #cond; \
      co_return;                                \
    }                                           \
  } while (false)

#define CO_ASSERT_OK(expr)                                             \
  do {                                                                 \
    const auto& _r = (expr);                                           \
    if (!_r.ok()) {                                                    \
      ADD_FAILURE() << #expr << " failed: "                            \
                    << ::proxy::testing::StatusOf(_r).ToString();      \
      co_return;                                                       \
    }                                                                  \
  } while (false)

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
Status StatusOf(const Result<T>& r) {
  return r.status();
}

/// Expects a Status or Result<T> to be OK, printing the status otherwise.
#define EXPECT_OK(expr)                                               \
  do {                                                                \
    const auto& _r = (expr);                                          \
    EXPECT_TRUE(_r.ok()) << ::proxy::testing::StatusOf(_r).ToString(); \
  } while (false)

#define ASSERT_OK(expr)                                               \
  do {                                                                \
    const auto& _r = (expr);                                          \
    ASSERT_TRUE(_r.ok()) << ::proxy::testing::StatusOf(_r).ToString(); \
  } while (false)

}  // namespace proxy::testing
