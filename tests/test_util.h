// Shared fixtures for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/export.h"
#include "core/factory.h"
#include "core/runtime.h"
#include "services/register_all.h"

namespace proxy::testing {

/// A ready-to-use two-node world: name service on the server node, one
/// server context and one client context. Most service tests start here.
class TestWorld {
 public:
  explicit TestWorld(std::uint64_t seed = 42,
                     sim::LinkParams link = sim::LinkParams{}) {
    services::RegisterAllServices();
    core::Runtime::Params params;
    params.seed = seed;
    params.default_link = link;
    rt = std::make_unique<core::Runtime>(params);
    server_node = rt->AddNode("server-node");
    client_node = rt->AddNode("client-node");
    rt->StartNameService(server_node);
    server_ctx = &rt->CreateContext(server_node, "server");
    client_ctx = &rt->CreateContext(client_node, "client");
  }

  /// Publishes a binding under `name` (driving the scheduler).
  void Publish(const std::string& name, const core::ServiceBinding& binding) {
    auto body = [this, &name, &binding]() -> sim::Co<void> {
      Result<rpc::Void> ok =
          co_await server_ctx->names().RegisterService(name, binding);
      EXPECT_TRUE(ok.ok()) << ok.status().ToString();
    };
    Run(body);
  }

  /// Runs a *named* coroutine lambda to completion. The lambda must be an
  /// lvalue (see DESIGN.md toolchain notes on lambda coroutines).
  template <typename L>
  void Run(L& lambda) {
    rt->Run(lambda());
  }

  std::unique_ptr<core::Runtime> rt;
  NodeId server_node;
  NodeId client_node;
  core::Context* server_ctx = nullptr;
  core::Context* client_ctx = nullptr;
};

// gtest's ASSERT_* macros expand to `return;`, which is ill-formed inside
// a coroutine. CO_ASSERT_* are the coroutine-safe equivalents: they record
// the failure and co_return.
#define CO_ASSERT_TRUE(cond)                    \
  do {                                          \
    if (!(cond)) {                              \
      ADD_FAILURE() << "expected true: " #cond; \
      co_return;                                \
    }                                           \
  } while (false)

#define CO_ASSERT_OK(expr)                                             \
  do {                                                                 \
    const auto& _r = (expr);                                           \
    if (!_r.ok()) {                                                    \
      ADD_FAILURE() << #expr << " failed: "                            \
                    << ::proxy::testing::StatusOf(_r).ToString();      \
      co_return;                                                       \
    }                                                                  \
  } while (false)

inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
Status StatusOf(const Result<T>& r) {
  return r.status();
}

/// Expects a Status or Result<T> to be OK, printing the status otherwise.
#define EXPECT_OK(expr)                                               \
  do {                                                                \
    const auto& _r = (expr);                                          \
    EXPECT_TRUE(_r.ok()) << ::proxy::testing::StatusOf(_r).ToString(); \
  } while (false)

#define ASSERT_OK(expr)                                               \
  do {                                                                \
    const auto& _r = (expr);                                          \
    ASSERT_TRUE(_r.ok()) << ::proxy::testing::StatusOf(_r).ToString(); \
  } while (false)

}  // namespace proxy::testing
