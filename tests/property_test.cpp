// Property-based sweeps (parameterized gtest).
//
// 1. KV linearizability-against-model: a random single-client operation
//    stream produces exactly the same observable results through every
//    proxy protocol as an in-memory map model.
// 2. ARQ delivery property: everything sent is delivered exactly once,
//    in order, across a loss/jitter sweep.
// 3. RPC at-most-once property: executed calls == acknowledged calls
//    across loss rates.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/factory.h"
#include "net/reliable.h"
#include "services/counter.h"
#include "services/kv.h"
#include "test_util.h"

namespace proxy {
namespace {

using core::Acquire;
using core::AcquireOptions;
using proxy::testing::TestWorld;
using namespace proxy::services;  // NOLINT

// --- property 1: KV proxies behave like a map -------------------------

class KvModelProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

sim::Co<void> RandomOpsAgainstModel(std::shared_ptr<IKeyValue> kv,
                                    std::uint64_t seed, int ops,
                                    sim::Scheduler& sched) {
  Rng rng(seed);
  std::map<std::string, std::string> model;
  for (int i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(rng.UniformU64(12));
    const double dice = rng.UniformDouble();
    if (dice < 0.5) {
      Result<std::optional<std::string>> got = co_await kv->Get(key);
      CO_ASSERT_OK(got);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(got->has_value()) << "op " << i << " key " << key;
      } else {
        CO_ASSERT_TRUE(got->has_value());
        EXPECT_EQ(got->value(), it->second) << "op " << i << " key " << key;
      }
    } else if (dice < 0.85) {
      const std::string value = "v" + std::to_string(rng.NextU64() % 1000);
      CO_ASSERT_OK(co_await kv->Put(key, value));
      model[key] = value;
    } else {
      Result<bool> existed = co_await kv->Del(key);
      CO_ASSERT_OK(existed);
      EXPECT_EQ(*existed, model.erase(key) > 0) << "op " << i;
    }
    if (rng.Chance(0.1)) {
      co_await sim::SleepFor(sched, Milliseconds(rng.UniformU64(10)));
    }
  }
  // Final: the full model must be visible through the proxy.
  for (const auto& [key, value] : model) {
    Result<std::optional<std::string>> got = co_await kv->Get(key);
    CO_ASSERT_OK(got);
    CO_ASSERT_TRUE(got->has_value());
    EXPECT_EQ(got->value(), value);
  }
}

TEST_P(KvModelProperty, RandomOpsMatchInMemoryModel) {
  const auto [protocol, seed] = GetParam();
  TestWorld w(seed);
  auto exported = ExportKvService(*w.server_ctx, protocol);
  ASSERT_OK(exported);
  w.Publish("kv", exported->binding);

  std::shared_ptr<IKeyValue> kv;
  auto bind = [&]() -> sim::Co<void> {
    Result<std::shared_ptr<IKeyValue>> bound =
        co_await Acquire<IKeyValue>(*w.client_ctx, "kv");
    CO_ASSERT_OK(bound);
    kv = *bound;
  };
  w.Run(bind);
  ASSERT_NE(kv, nullptr);

  w.rt->Run(RandomOpsAgainstModel(kv, seed * 31 + protocol, 200,
                                  w.rt->scheduler()));
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsBySeeds, KvModelProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1u, 7u, 42u, 1234u)),
    [](const auto& info) {
      return "proto" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- property 2: ARQ exactly-once in-order across loss/jitter ---------

class ArqProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(ArqProperty, AllMessagesDeliveredExactlyOnceInOrder) {
  const auto [loss, jitter_us] = GetParam();
  sim::Scheduler sched;
  sim::Network net(sched, 17);
  const NodeId a = net.AddNode("a");
  const NodeId b = net.AddNode("b");
  sim::LinkParams link;
  link.loss = loss;
  link.jitter = Microseconds(jitter_us);
  net.SetLink(a, b, link);

  net::NodeStack stack_a(net, a), stack_b(net, b);
  net::Endpoint* ep_a = stack_a.OpenEndpoint(PortId(1));
  net::Endpoint* ep_b = stack_b.OpenEndpoint(PortId(2));
  net::ArqParams params;
  params.retransmit_timeout = Milliseconds(5);
  params.max_retries = 100;
  net::ReliableChannel chan_a(*ep_a, params);
  net::ReliableChannel chan_b(*ep_b, params);

  std::vector<std::uint64_t> received;
  chan_b.SetHandler([&](const net::Address&, Bytes payload) {
    received.push_back(serde::DecodeFromBytes<std::uint64_t>(View(payload))
                           .value_or(UINT64_MAX));
  });

  std::uint64_t sent = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 16; ++i) {
      if (chan_a.Send(ep_b->address(), serde::EncodeToBytes(sent)).ok()) {
        ++sent;
      }
    }
    sched.RunFor(Milliseconds(100));
  }
  sched.Run();

  ASSERT_EQ(received.size(), sent);
  for (std::uint64_t i = 0; i < sent; ++i) EXPECT_EQ(received[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    LossJitterGrid, ArqProperty,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3, 0.5),
                       ::testing::Values(0u, 200u, 2000u)),
    [](const auto& info) {
      return "loss" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_jitter" + std::to_string(std::get<1>(info.param));
    });

// --- property 3: RPC at-most-once across loss rates --------------------

class AtMostOnceProperty : public ::testing::TestWithParam<double> {};

TEST_P(AtMostOnceProperty, ExecutionsEqualSuccessfulCalls) {
  const double loss = GetParam();
  sim::LinkParams link;
  link.loss = loss;
  TestWorld w(/*seed=*/5, link);
  auto exported = ExportCounterService(*w.server_ctx, 1, 0);
  ASSERT_OK(exported);
  w.Publish("ctr", exported->binding);

  int acknowledged = 0;
  auto body = [&]() -> sim::Co<void> {
    AcquireOptions opts;
    opts.allow_direct = false;
    Result<std::shared_ptr<ICounter>> ctr =
        co_await Acquire<ICounter>(*w.client_ctx, "ctr", opts);
    CO_ASSERT_OK(ctr);
    auto* stub = dynamic_cast<CounterStub*>(ctr->get());
    rpc::CallOptions patient;
    patient.retry_interval = Milliseconds(10);
    patient.max_retries = 100;
    stub->set_call_options(patient);

    for (int i = 0; i < 30; ++i) {
      Result<std::int64_t> v = co_await (*ctr)->Increment(1);
      if (v.ok()) ++acknowledged;
    }
    Result<std::int64_t> total = co_await (*ctr)->Read();
    CO_ASSERT_OK(total);
    // Every acknowledged increment executed exactly once. (With enough
    // retries all 30 are acknowledged; the invariant is equality.)
    EXPECT_EQ(*total, acknowledged);
  };
  w.Run(body);
}

INSTANTIATE_TEST_SUITE_P(LossSweep, AtMostOnceProperty,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3),
                         [](const auto& info) {
                           return "loss" + std::to_string(static_cast<int>(
                                               info.param * 100));
                         });

}  // namespace
}  // namespace proxy
